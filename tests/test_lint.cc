/**
 * @file
 * tvarak-lint rule-engine tests: lexer behaviour, config-field
 * extraction, exact rule hits over the seeded fixture trees
 * (tests/lint_fixtures/), suppression handling, and the requirement
 * that the repo itself stays lint-clean.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hh"
#include "repo_model.hh"
#include "sarif.hh"

namespace tvarak::lint {
namespace {

std::vector<Finding>
runOn(const std::string &root)
{
    Options opts;
    opts.root = root;
    return run(opts);
}

std::map<std::string, int>
countByRule(const std::vector<Finding> &findings)
{
    std::map<std::string, int> n;
    for (const Finding &f : findings)
        n[f.rule]++;
    return n;
}

bool
hasFinding(const std::vector<Finding> &findings, const std::string &file,
           std::size_t line, const std::string &rule)
{
    return std::any_of(findings.begin(), findings.end(),
                       [&](const Finding &f) {
                           return f.file == file && f.line == line &&
                               f.rule == rule;
                       });
}

// ------------------------------------------------------------- lexer

TEST(LintLexer, StripsCommentsButKeepsLineStructure)
{
    SourceFile f = lexText("int a; // trailing 64\n"
                           "/* block\n"
                           "   spanning */ int b;\n",
                           "t.cc");
    ASSERT_EQ(f.code.size(), 3u);
    EXPECT_EQ(f.code[0].substr(0, 6), "int a;");
    EXPECT_EQ(f.code[0].find("64"), std::string::npos);
    EXPECT_EQ(f.code[1].find("block"), std::string::npos);
    EXPECT_NE(f.code[2].find("int b;"), std::string::npos);
}

TEST(LintLexer, ExtractsStringLiteralsWithLineNumbers)
{
    SourceFile f = lexText("const char *a = \"cache.l1.misses\";\n"
                           "const char *b = \"plain\";\n",
                           "t.cc");
    ASSERT_EQ(f.strings.size(), 2u);
    EXPECT_EQ(f.strings[0].line, 1u);
    EXPECT_EQ(f.strings[0].value, "cache.l1.misses");
    EXPECT_EQ(f.strings[1].value, "plain");
    // Literal contents must not leak into the code view.
    EXPECT_EQ(f.code[0].find("misses"), std::string::npos);
}

TEST(LintLexer, CharLiteralsAndDigitSeparators)
{
    SourceFile f = lexText("char c = '\"'; int n = 1'000'000;\n", "t.cc");
    EXPECT_TRUE(f.strings.empty()) << "quote inside char literal";
    EXPECT_NE(f.code[0].find("1'000'000"), std::string::npos);
}

TEST(LintLexer, SuppressionAppliesToSameAndNextLine)
{
    SourceFile f = lexText("// lint:allow(R1, R4)\n"
                           "int a;\n"
                           "int b;\n",
                           "t.cc");
    EXPECT_TRUE(f.allows("R1", 1));
    EXPECT_TRUE(f.allows("R4", 2));
    EXPECT_TRUE(f.allows("R1", 2));
    EXPECT_FALSE(f.allows("R2", 2));
    EXPECT_FALSE(f.allows("R1", 3));
}

// ------------------------------------------------- config-field parse

TEST(LintConfig, ParsesMembersSkipsFunctionsAndEnums)
{
    SourceFile f = lexText(
        "enum class Kind { A, B };\n"
        "struct Inner {\n"
        "    std::size_t sizeBytes;\n"
        "    double factor = 0.25;\n"
        "    Thing braceInit{1, 2, 3};\n"
        "    Cycles toCycles(double ns) const\n"
        "    {\n"
        "        return static_cast<Cycles>(ns);\n"
        "    }\n"
        "    void validate() const;\n"
        "};\n",
        "config.hh");
    std::vector<ConfigField> fields = parseConfigFields(f);
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0].structName, "Inner");
    EXPECT_EQ(fields[0].name, "sizeBytes");
    EXPECT_EQ(fields[0].line, 3u);
    EXPECT_EQ(fields[1].name, "factor");
    EXPECT_EQ(fields[2].name, "braceInit");
}

TEST(LintConfig, ParsesTheRealConfigHeader)
{
    SourceFile f = lexFile(std::string(TVARAK_REPO_ROOT) +
                               "/src/sim/config.hh",
                           "src/sim/config.hh");
    std::vector<ConfigField> fields = parseConfigFields(f);
    auto has = [&](const char *s, const char *n) {
        return std::any_of(fields.begin(), fields.end(),
                           [&](const ConfigField &c) {
                               return c.structName == s && c.name == n;
                           });
    };
    EXPECT_TRUE(has("CacheParams", "sizeBytes"));
    EXPECT_TRUE(has("NvmParams", "occupancyWriteFactor"));
    EXPECT_TRUE(has("TvarakParams", "useDataDiffs"));
    EXPECT_TRUE(has("SimConfig", "prefetchDegree"));
    EXPECT_TRUE(has("SimConfig", "llcBank"));
    // Member functions and enums must not show up as fields.
    EXPECT_FALSE(has("SimConfig", "nsToCycles"));
    EXPECT_FALSE(has("SimConfig", "validate"));
    EXPECT_FALSE(has("DesignKind", "Baseline"));
}

// -------------------------------------------------------- fixtures

const std::string kFixtures = TVARAK_LINT_FIXTURES;

TEST(LintFixtures, GoodRootIsClean)
{
    std::vector<Finding> findings = runOn(kFixtures + "/goodroot");
    for (const Finding &f : findings)
        ADD_FAILURE() << f.str();
}

TEST(LintFixtures, BadRootTripsEveryRuleExactly)
{
    std::vector<Finding> findings = runOn(kFixtures + "/badroot");
    std::map<std::string, int> n = countByRule(findings);
    EXPECT_EQ(n["R1"], 2) << "naked 63 mask + naked 4096 divide";
    EXPECT_EQ(n["R2"], 2) << "duplicate registration + typo'd key";
    EXPECT_EQ(n["R3"], 2) << "undocumentedKnob missing from dump and doc";
    EXPECT_EQ(n["R4"], 2) << "missing guard + using namespace";
    EXPECT_EQ(n["R5"], 2) << "inline float + inline latency assignment";
    EXPECT_EQ(n["R6"], 2) << "threading header + std::thread member";
    EXPECT_EQ(n["R7"], 2) << "binary fopen + std::ios::binary stream";
    EXPECT_EQ(n["R8"], 2) << "two DesignKind comparisons outside registry";
    EXPECT_EQ(n["R9"], 4)
        << "upward nvm->mem edge + harness->service edge + layout "
           "cycle + checksum->mem edge";
    EXPECT_EQ(n["R10"], 3)
        << "rand() + unordered-container iteration + random_device";
    EXPECT_EQ(n["R11"], 2) << "unreported 'misses' + unincremented 'stale'";
    EXPECT_EQ(n["R12"], 2) << "dead 'deadKnob' + write-only 'writeOnlyKnob'";
    EXPECT_EQ(n["R13"], 2) << "naked .lock() + naked .unlock()";
    EXPECT_EQ(n["R14"], 2) << "SIMD header include + intrinsic call";
    EXPECT_EQ(findings.size(), 31u);
}

TEST(LintFixtures, BadRootFindingLocations)
{
    std::vector<Finding> findings = runOn(kFixtures + "/badroot");
    EXPECT_TRUE(hasFinding(findings, "src/bad_addr_math.cc", 7, "R1"));
    EXPECT_TRUE(hasFinding(findings, "src/bad_addr_math.cc", 13, "R1"));
    EXPECT_TRUE(hasFinding(findings, "src/sim/stats.cc", 13, "R2"));
    EXPECT_TRUE(hasFinding(findings, "src/bad_stats_user.cc", 5, "R2"));
    EXPECT_TRUE(hasFinding(findings, "src/sim/config.hh", 8, "R3"));
    EXPECT_TRUE(hasFinding(findings, "src/bad_header.hh", 1, "R4"));
    EXPECT_TRUE(hasFinding(findings, "src/bad_header.hh", 3, "R4"));
    EXPECT_TRUE(hasFinding(findings, "src/mem/bad_timing.cc", 5, "R5"));
    EXPECT_TRUE(hasFinding(findings, "src/mem/bad_timing.cc", 6, "R5"));
    EXPECT_TRUE(hasFinding(findings, "src/bad_threading.cc", 2, "R6"));
    EXPECT_TRUE(hasFinding(findings, "src/bad_threading.cc", 7, "R6"));
    EXPECT_TRUE(hasFinding(findings, "src/bad_binary_io.cc", 8, "R7"));
    EXPECT_TRUE(hasFinding(findings, "src/bad_binary_io.cc", 15, "R7"));
    EXPECT_TRUE(hasFinding(findings, "src/bad_design_dispatch.cc", 9,
                           "R8"));
    EXPECT_TRUE(hasFinding(findings, "src/bad_design_dispatch.cc", 15,
                           "R8"));
    EXPECT_TRUE(hasFinding(findings, "src/nvm/bad_upward.cc", 3, "R9"));
    EXPECT_TRUE(hasFinding(findings, "src/checksum/bad_gf_upward.cc", 4,
                           "R9"));
    EXPECT_TRUE(hasFinding(findings, "src/harness/bad_service_upward.cc",
                           4, "R9"));
    EXPECT_TRUE(hasFinding(findings, "src/layout/a.hh", 4, "R9"));
    EXPECT_TRUE(hasFinding(findings, "src/core/bad_nondet.cc", 20, "R10"));
    EXPECT_TRUE(hasFinding(findings, "src/core/bad_nondet.cc", 33, "R10"));
    EXPECT_TRUE(hasFinding(findings, "src/service/bad_nondet_service.cc",
                           12, "R10"));
    EXPECT_TRUE(hasFinding(findings, "src/sim/stats.hh", 9, "R11"));
    EXPECT_TRUE(hasFinding(findings, "src/sim/stats.hh", 10, "R11"));
    EXPECT_TRUE(hasFinding(findings, "src/sim/config.hh", 9, "R12"));
    EXPECT_TRUE(hasFinding(findings, "src/sim/config.hh", 10, "R12"));
    EXPECT_TRUE(hasFinding(findings, "src/harness/bad_locks.cc", 8,
                           "R13"));
    EXPECT_TRUE(hasFinding(findings, "src/harness/bad_locks.cc", 10,
                           "R13"));
    EXPECT_TRUE(hasFinding(findings, "src/bad_simd.cc", 2, "R14"));
    EXPECT_TRUE(hasFinding(findings, "src/bad_simd.cc", 7, "R14"));
}

TEST(LintFixtures, SuppressedSiteStaysQuiet)
{
    std::vector<Finding> findings = runOn(kFixtures + "/badroot");
    EXPECT_FALSE(hasFinding(findings, "src/bad_addr_math.cc", 19, "R1"))
        << "lint:allow(R1) on the line must suppress the finding";
    EXPECT_FALSE(hasFinding(findings, "src/bad_threading.cc", 15, "R6"))
        << "lint:allow(R6) on the line must suppress the finding";
    EXPECT_FALSE(hasFinding(findings, "src/bad_binary_io.cc", 32, "R7"))
        << "lint:allow(R7) on the line above must suppress the finding";
    EXPECT_FALSE(
        hasFinding(findings, "src/bad_design_dispatch.cc", 21, "R8"))
        << "lint:allow(R8) on the line must suppress the finding";
    EXPECT_FALSE(hasFinding(findings, "src/nvm/bad_upward.cc", 6, "R9"))
        << "lint:allow(R9) on the line above must suppress the finding";
    EXPECT_FALSE(hasFinding(findings, "src/core/bad_nondet.cc", 26,
                            "R10"))
        << "lint:allow(R10) on the line must suppress the finding";
    EXPECT_FALSE(hasFinding(findings, "src/harness/bad_locks.cc", 17,
                            "R13"))
        << "lint:allow(R13) on the line must suppress the finding";
    EXPECT_FALSE(hasFinding(findings, "src/harness/bad_locks.cc", 19,
                            "R13"))
        << "lint:allow(R13) on the line must suppress the finding";
    EXPECT_FALSE(hasFinding(findings, "src/bad_simd.cc", 13, "R14"))
        << "lint:allow(R14) on the line must suppress the finding";
}

// ------------------------------------------------- repo model (R9+)

TEST(LintModel, ParsesAndResolvesIncludes)
{
    std::vector<SourceFile> files;
    files.push_back(lexText("#include <vector>\n"
                            "#include \"sim/types.hh\"\n"
                            "#include \"cache.hh\"\n"
                            "#include \"missing.hh\"\n",
                            "src/mem/memory_system.cc"));
    files.push_back(lexText("#pragma once\n", "src/sim/types.hh"));
    files.push_back(lexText("#pragma once\n", "src/mem/cache.hh"));
    RepoModel m = buildRepoModel(files);

    const std::vector<IncludeEdge> &e = m.includes[0];
    ASSERT_EQ(e.size(), 4u);
    EXPECT_TRUE(e[0].angled);
    EXPECT_FALSE(e[0].resolved()) << "system headers stay external";
    EXPECT_EQ(m.files[e[1].target].path, "src/sim/types.hh")
        << "quoted specs resolve against src/";
    EXPECT_EQ(m.files[e[2].target].path, "src/mem/cache.hh")
        << "quoted specs resolve against the includer's directory";
    EXPECT_FALSE(e[3].resolved());

    std::set<std::size_t> closure = m.includeClosure(0);
    EXPECT_EQ(closure.size(), 3u);
    EXPECT_TRUE(m.closureHas(0, "sim/types.hh"));
    EXPECT_FALSE(m.closureHas(0, "sim/stats.hh"));
}

TEST(LintModel, ClassifiesModulesAndRanks)
{
    EXPECT_EQ(moduleOf("src/sim/config.hh"), "sim");
    EXPECT_EQ(moduleOf("src/redundancy/scheme.cc"), "redundancy");
    EXPECT_EQ(moduleOf("tools/lint/lint.cc"), "tools");
    EXPECT_EQ(moduleOf("bench/bench_common.hh"), "bench");
    EXPECT_EQ(moduleOf("tests/test_lint.cc"), "tests");
    EXPECT_EQ(moduleOf("src/toplevel.cc"), "") << "no subdirectory";
    // Sanctioned interface-header overrides.
    EXPECT_EQ(moduleOf("src/trace/sink.hh"), "trace_abi");
    EXPECT_EQ(moduleOf("src/trace/writer.cc"), "trace");
    EXPECT_EQ(moduleOf("src/redundancy/registry.hh"), "design_api");
    EXPECT_EQ(moduleOf("src/mem/cache.hh"), "cache");
    EXPECT_EQ(moduleOf("src/harness/workload.hh"), "workload_api");

    EXPECT_EQ(moduleOf("src/service/dispatcher.cc"), "service");

    EXPECT_EQ(moduleOf("src/kernels/dispatch.cc"), "kernels");

    EXPECT_EQ(moduleRank("sim"), 0);
    // The kernel layer sits between sim/ and every byte-moving module.
    EXPECT_LT(moduleRank("sim"), moduleRank("kernels"));
    EXPECT_LT(moduleRank("kernels"), moduleRank("checksum"));
    EXPECT_LT(moduleRank("kernels"), moduleRank("mem"));
    EXPECT_LT(moduleRank("checksum"), moduleRank("nvm"));
    EXPECT_LT(moduleRank("core"), moduleRank("mem"));
    EXPECT_LT(moduleRank("mem"), moduleRank("redundancy"));
    EXPECT_LT(moduleRank("harness"), moduleRank("service"));
    EXPECT_LT(moduleRank("service"), moduleRank("bench"));
    EXPECT_LT(moduleRank("harness"), moduleRank("tests"));
    EXPECT_EQ(moduleRank("no_such_module"), -1);
}

TEST(LintModel, ClassifiesLayerEdges)
{
    // Downward: higher rank may include lower rank.
    EXPECT_TRUE(layerEdgeLegal("src/mem/memory_system.cc",
                               "src/sim/types.hh"));
    EXPECT_TRUE(layerEdgeLegal("tests/test_lint.cc",
                               "src/harness/parallel.hh"));
    // Same module: always fine.
    EXPECT_TRUE(layerEdgeLegal("src/mem/memory_system.cc",
                               "src/mem/dram.hh"));
    // The service front-end drives the harness, never the reverse.
    EXPECT_TRUE(layerEdgeLegal("src/service/sweep.cc",
                               "src/harness/parallel.hh"));
    EXPECT_TRUE(layerEdgeLegal("bench/bench_service.cc",
                               "src/service/sweep.hh"));
    // Upward: forbidden.
    EXPECT_FALSE(layerEdgeLegal("src/sim/config.hh",
                                "src/mem/memory_system.hh"));
    EXPECT_FALSE(layerEdgeLegal("src/harness/report.cc",
                                "src/service/dispatcher.hh"));
    EXPECT_FALSE(layerEdgeLegal("src/fs/scrubber.cc",
                                "src/pmemlib/pmem_pool.hh"));
    // Interface-header overrides change the verdict: the registry
    // *interface* is below the cache, the implementation is not.
    EXPECT_TRUE(layerEdgeLegal("src/mem/cache.cc",
                               "src/redundancy/registry.hh"));
    EXPECT_FALSE(layerEdgeLegal("src/mem/cache.cc",
                                "src/redundancy/registry.cc"));
    // Unclassified paths never violate the DAG.
    EXPECT_TRUE(layerEdgeLegal("src/toplevel.cc", "src/sim/types.hh"));
    EXPECT_TRUE(layerEdgeLegal("src/sim/config.hh", "src/toplevel.hh"));
}

TEST(LintModel, DetectsIncludeCycles)
{
    std::vector<SourceFile> files;
    files.push_back(lexText("#include \"layout/b.hh\"\n",
                            "src/layout/a.hh"));
    files.push_back(lexText("#include \"layout/c.hh\"\n",
                            "src/layout/b.hh"));
    files.push_back(lexText("#include \"layout/a.hh\"\n",
                            "src/layout/c.hh"));
    files.push_back(lexText("#include \"layout/a.hh\"\n",
                            "src/layout/standalone.hh"));
    std::vector<std::vector<std::string>> cycles =
        findIncludeCycles(buildRepoModel(files));
    ASSERT_EQ(cycles.size(), 1u) << "one 3-cycle, standalone is not in it";
    EXPECT_EQ(cycles[0],
              (std::vector<std::string>{"src/layout/a.hh",
                                        "src/layout/b.hh",
                                        "src/layout/c.hh"}));

    std::vector<SourceFile> acyclic;
    acyclic.push_back(lexText("#include \"sim/types.hh\"\n",
                              "src/sim/config.hh"));
    acyclic.push_back(lexText("#pragma once\n", "src/sim/types.hh"));
    EXPECT_TRUE(findIncludeCycles(buildRepoModel(acyclic)).empty());
}

// ------------------------------------------------- SARIF + baseline

TEST(LintSarif, EscapesAndMarksSuppressions)
{
    std::vector<Finding> findings{
        {"src/a.cc", 3, "R1", "quote \" backslash \\ and\ttab"},
        {"src/b.cc", 7, "R10", "baselined finding"},
    };
    std::set<std::string> baseline{baselineKey(findings[1])};
    std::string sarif = toSarif(findings, baseline);
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("quote \\\" backslash \\\\ and\\ttab"),
              std::string::npos);
    EXPECT_NE(sarif.find("\"suppressions\": [{\"kind\": \"external\"}]"),
              std::string::npos);
    // Only the baselined result carries a suppression.
    EXPECT_EQ(sarif.find("suppressions"), sarif.rfind("suppressions"));
}

TEST(LintSarif, BadRootMatchesGoldenByteForByte)
{
    std::vector<Finding> findings = runOn(kFixtures + "/badroot");
    std::string sarif = toSarif(findings, {});
    std::ifstream is(std::string(TVARAK_REPO_ROOT) +
                     "/tests/golden/lint_badroot.sarif");
    ASSERT_TRUE(is.good()) << "golden SARIF missing";
    std::ostringstream golden;
    golden << is.rdbuf();
    EXPECT_EQ(sarif, golden.str())
        << "SARIF output drifted; regenerate with tvarak-lint --root "
           "tests/lint_fixtures/badroot --sarif "
           "tests/golden/lint_badroot.sarif";
}

TEST(LintBaseline, KeyIsLineNumberInsensitive)
{
    Finding a{"src/a.cc", 3, "R1", "msg"};
    Finding b{"src/a.cc", 99, "R1", "msg"};
    EXPECT_EQ(baselineKey(a), baselineKey(b));
    EXPECT_EQ(baselineKey(a), "src/a.cc: [R1] msg");
}

TEST(LintBaseline, LoadsEntriesSkipsCommentsThrowsOnMissing)
{
    std::string path = ::testing::TempDir() + "lint_baseline_test.txt";
    {
        std::ofstream os(path);
        os << "# comment line\n"
           << "\n"
           << "  src/a.cc: [R1] msg  \n";
    }
    std::set<std::string> entries = loadBaseline(path);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_TRUE(entries.count("src/a.cc: [R1] msg"));
    EXPECT_THROW(loadBaseline(path + ".does_not_exist"),
                 std::runtime_error);
}

TEST(LintRun, ExplicitMissingPathThrows)
{
    Options opts;
    opts.root = kFixtures + "/goodroot";
    opts.paths = {"no_such_dir"};
    EXPECT_THROW(run(opts), std::runtime_error);
}

TEST(LintRun, SingleThreadedScanMatchesParallel)
{
    Options serial;
    serial.root = kFixtures + "/badroot";
    serial.jobs = 1;
    Options parallel;
    parallel.root = kFixtures + "/badroot";
    parallel.jobs = 8;
    std::vector<Finding> a = run(serial);
    std::vector<Finding> b = run(parallel);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i++)
        EXPECT_EQ(a[i].str(), b[i].str());
}

// ------------------------------------------------------------- repo

TEST(LintRepo, RepositoryIsLintClean)
{
    std::vector<Finding> findings = runOn(TVARAK_REPO_ROOT);
    for (const Finding &f : findings)
        ADD_FAILURE() << f.str();
}

}  // namespace
}  // namespace tvarak::lint
