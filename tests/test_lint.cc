/**
 * @file
 * tvarak-lint rule-engine tests: lexer behaviour, config-field
 * extraction, exact rule hits over the seeded fixture trees
 * (tests/lint_fixtures/), suppression handling, and the requirement
 * that the repo itself stays lint-clean.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "lint.hh"

namespace tvarak::lint {
namespace {

std::vector<Finding>
runOn(const std::string &root)
{
    Options opts;
    opts.root = root;
    return run(opts);
}

std::map<std::string, int>
countByRule(const std::vector<Finding> &findings)
{
    std::map<std::string, int> n;
    for (const Finding &f : findings)
        n[f.rule]++;
    return n;
}

bool
hasFinding(const std::vector<Finding> &findings, const std::string &file,
           std::size_t line, const std::string &rule)
{
    return std::any_of(findings.begin(), findings.end(),
                       [&](const Finding &f) {
                           return f.file == file && f.line == line &&
                               f.rule == rule;
                       });
}

// ------------------------------------------------------------- lexer

TEST(LintLexer, StripsCommentsButKeepsLineStructure)
{
    SourceFile f = lexText("int a; // trailing 64\n"
                           "/* block\n"
                           "   spanning */ int b;\n",
                           "t.cc");
    ASSERT_EQ(f.code.size(), 3u);
    EXPECT_EQ(f.code[0].substr(0, 6), "int a;");
    EXPECT_EQ(f.code[0].find("64"), std::string::npos);
    EXPECT_EQ(f.code[1].find("block"), std::string::npos);
    EXPECT_NE(f.code[2].find("int b;"), std::string::npos);
}

TEST(LintLexer, ExtractsStringLiteralsWithLineNumbers)
{
    SourceFile f = lexText("const char *a = \"cache.l1.misses\";\n"
                           "const char *b = \"plain\";\n",
                           "t.cc");
    ASSERT_EQ(f.strings.size(), 2u);
    EXPECT_EQ(f.strings[0].line, 1u);
    EXPECT_EQ(f.strings[0].value, "cache.l1.misses");
    EXPECT_EQ(f.strings[1].value, "plain");
    // Literal contents must not leak into the code view.
    EXPECT_EQ(f.code[0].find("misses"), std::string::npos);
}

TEST(LintLexer, CharLiteralsAndDigitSeparators)
{
    SourceFile f = lexText("char c = '\"'; int n = 1'000'000;\n", "t.cc");
    EXPECT_TRUE(f.strings.empty()) << "quote inside char literal";
    EXPECT_NE(f.code[0].find("1'000'000"), std::string::npos);
}

TEST(LintLexer, SuppressionAppliesToSameAndNextLine)
{
    SourceFile f = lexText("// lint:allow(R1, R4)\n"
                           "int a;\n"
                           "int b;\n",
                           "t.cc");
    EXPECT_TRUE(f.allows("R1", 1));
    EXPECT_TRUE(f.allows("R4", 2));
    EXPECT_TRUE(f.allows("R1", 2));
    EXPECT_FALSE(f.allows("R2", 2));
    EXPECT_FALSE(f.allows("R1", 3));
}

// ------------------------------------------------- config-field parse

TEST(LintConfig, ParsesMembersSkipsFunctionsAndEnums)
{
    SourceFile f = lexText(
        "enum class Kind { A, B };\n"
        "struct Inner {\n"
        "    std::size_t sizeBytes;\n"
        "    double factor = 0.25;\n"
        "    Thing braceInit{1, 2, 3};\n"
        "    Cycles toCycles(double ns) const\n"
        "    {\n"
        "        return static_cast<Cycles>(ns);\n"
        "    }\n"
        "    void validate() const;\n"
        "};\n",
        "config.hh");
    std::vector<ConfigField> fields = parseConfigFields(f);
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0].structName, "Inner");
    EXPECT_EQ(fields[0].name, "sizeBytes");
    EXPECT_EQ(fields[0].line, 3u);
    EXPECT_EQ(fields[1].name, "factor");
    EXPECT_EQ(fields[2].name, "braceInit");
}

TEST(LintConfig, ParsesTheRealConfigHeader)
{
    SourceFile f = lexFile(std::string(TVARAK_REPO_ROOT) +
                               "/src/sim/config.hh",
                           "src/sim/config.hh");
    std::vector<ConfigField> fields = parseConfigFields(f);
    auto has = [&](const char *s, const char *n) {
        return std::any_of(fields.begin(), fields.end(),
                           [&](const ConfigField &c) {
                               return c.structName == s && c.name == n;
                           });
    };
    EXPECT_TRUE(has("CacheParams", "sizeBytes"));
    EXPECT_TRUE(has("NvmParams", "occupancyWriteFactor"));
    EXPECT_TRUE(has("TvarakParams", "useDataDiffs"));
    EXPECT_TRUE(has("SimConfig", "prefetchDegree"));
    EXPECT_TRUE(has("SimConfig", "llcBank"));
    // Member functions and enums must not show up as fields.
    EXPECT_FALSE(has("SimConfig", "nsToCycles"));
    EXPECT_FALSE(has("SimConfig", "validate"));
    EXPECT_FALSE(has("DesignKind", "Baseline"));
}

// -------------------------------------------------------- fixtures

const std::string kFixtures = TVARAK_LINT_FIXTURES;

TEST(LintFixtures, GoodRootIsClean)
{
    std::vector<Finding> findings = runOn(kFixtures + "/goodroot");
    for (const Finding &f : findings)
        ADD_FAILURE() << f.str();
}

TEST(LintFixtures, BadRootTripsEveryRuleExactly)
{
    std::vector<Finding> findings = runOn(kFixtures + "/badroot");
    std::map<std::string, int> n = countByRule(findings);
    EXPECT_EQ(n["R1"], 2) << "naked 63 mask + naked 4096 divide";
    EXPECT_EQ(n["R2"], 2) << "duplicate registration + typo'd key";
    EXPECT_EQ(n["R3"], 2) << "undocumentedKnob missing from dump and doc";
    EXPECT_EQ(n["R4"], 2) << "missing guard + using namespace";
    EXPECT_EQ(n["R5"], 2) << "inline float + inline latency assignment";
    EXPECT_EQ(n["R6"], 2) << "threading header + std::thread member";
    EXPECT_EQ(n["R7"], 2) << "binary fopen + std::ios::binary stream";
    EXPECT_EQ(n["R8"], 2) << "two DesignKind comparisons outside registry";
    EXPECT_EQ(findings.size(), 16u);
}

TEST(LintFixtures, BadRootFindingLocations)
{
    std::vector<Finding> findings = runOn(kFixtures + "/badroot");
    EXPECT_TRUE(hasFinding(findings, "src/bad_addr_math.cc", 7, "R1"));
    EXPECT_TRUE(hasFinding(findings, "src/bad_addr_math.cc", 13, "R1"));
    EXPECT_TRUE(hasFinding(findings, "src/sim/stats.cc", 9, "R2"));
    EXPECT_TRUE(hasFinding(findings, "src/bad_stats_user.cc", 5, "R2"));
    EXPECT_TRUE(hasFinding(findings, "src/sim/config.hh", 5, "R3"));
    EXPECT_TRUE(hasFinding(findings, "src/bad_header.hh", 1, "R4"));
    EXPECT_TRUE(hasFinding(findings, "src/bad_header.hh", 3, "R4"));
    EXPECT_TRUE(hasFinding(findings, "src/mem/bad_timing.cc", 5, "R5"));
    EXPECT_TRUE(hasFinding(findings, "src/mem/bad_timing.cc", 6, "R5"));
    EXPECT_TRUE(hasFinding(findings, "src/bad_threading.cc", 2, "R6"));
    EXPECT_TRUE(hasFinding(findings, "src/bad_threading.cc", 7, "R6"));
    EXPECT_TRUE(hasFinding(findings, "src/bad_binary_io.cc", 8, "R7"));
    EXPECT_TRUE(hasFinding(findings, "src/bad_binary_io.cc", 15, "R7"));
    EXPECT_TRUE(hasFinding(findings, "src/bad_design_dispatch.cc", 9,
                           "R8"));
    EXPECT_TRUE(hasFinding(findings, "src/bad_design_dispatch.cc", 15,
                           "R8"));
}

TEST(LintFixtures, SuppressedSiteStaysQuiet)
{
    std::vector<Finding> findings = runOn(kFixtures + "/badroot");
    EXPECT_FALSE(hasFinding(findings, "src/bad_addr_math.cc", 19, "R1"))
        << "lint:allow(R1) on the line must suppress the finding";
    EXPECT_FALSE(hasFinding(findings, "src/bad_threading.cc", 15, "R6"))
        << "lint:allow(R6) on the line must suppress the finding";
    EXPECT_FALSE(hasFinding(findings, "src/bad_binary_io.cc", 32, "R7"))
        << "lint:allow(R7) on the line above must suppress the finding";
    EXPECT_FALSE(
        hasFinding(findings, "src/bad_design_dispatch.cc", 21, "R8"))
        << "lint:allow(R8) on the line must suppress the finding";
}

// ------------------------------------------------------------- repo

TEST(LintRepo, RepositoryIsLintClean)
{
    std::vector<Finding> findings = runOn(TVARAK_REPO_ROOT);
    for (const Finding &f : findings)
        ADD_FAILURE() << f.str();
}

}  // namespace
}  // namespace tvarak::lint
