/**
 * @file
 * Functional tests for the persistent maps (C-Tree, B-Tree, RB-Tree):
 * correctness against a reference std::map, structure invariants, and
 * at-rest redundancy invariants when running under TVARAK.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>

#include "apps/trees/pmem_map.hh"
#include "apps/trees/trees_impl.hh"
#include "sim/rng.hh"
#include "test_util.hh"

namespace tvarak {
namespace {

class MapTest : public ::testing::TestWithParam<MapKind>
{
  protected:
    void SetUp() override
    {
        mem = std::make_unique<MemorySystem>(test::smallConfig(),
                                             DesignKind::Tvarak);
        fs = std::make_unique<DaxFs>(*mem);
        pool = std::make_unique<PmemPool>(*mem, *fs, "p", 4ull << 20,
                                          nullptr, 1);
        map = makeMap(GetParam(), *mem, *pool, 64);
    }

    void fill(std::uint8_t *buf, std::uint64_t seed)
    {
        for (std::size_t i = 0; i < 64; i++)
            buf[i] = static_cast<std::uint8_t>(seed * 31 + i);
    }

    std::unique_ptr<MemorySystem> mem;
    std::unique_ptr<DaxFs> fs;
    std::unique_ptr<PmemPool> pool;
    std::unique_ptr<PmemMap> map;
};

TEST_P(MapTest, MissingKeyNotFound)
{
    std::uint8_t buf[64];
    EXPECT_FALSE(map->get(0, 42, buf));
    EXPECT_FALSE(map->update(0, 42, buf));
}

TEST_P(MapTest, InsertGetRoundtrip)
{
    std::uint8_t w[64], r[64];
    fill(w, 7);
    map->insert(0, 7, w);
    ASSERT_TRUE(map->get(0, 7, r));
    EXPECT_EQ(std::memcmp(w, r, 64), 0);
}

TEST_P(MapTest, InsertOverwritesDuplicate)
{
    std::uint8_t a[64], b[64], r[64];
    fill(a, 1);
    fill(b, 2);
    map->insert(0, 5, a);
    map->insert(0, 5, b);
    ASSERT_TRUE(map->get(0, 5, r));
    EXPECT_EQ(std::memcmp(b, r, 64), 0);
}

TEST_P(MapTest, UpdateInPlace)
{
    std::uint8_t a[64], b[64], r[64];
    fill(a, 3);
    fill(b, 4);
    map->insert(0, 9, a);
    ASSERT_TRUE(map->update(0, 9, b));
    ASSERT_TRUE(map->get(0, 9, r));
    EXPECT_EQ(std::memcmp(b, r, 64), 0);
}

TEST_P(MapTest, MatchesReferenceMapUnderRandomOps)
{
    Rng rng(17);
    std::map<std::uint64_t, std::uint64_t> ref;  // key -> seed
    std::uint8_t buf[64], r[64];
    for (int i = 0; i < 3000; i++) {
        std::uint64_t key = rng.nextBounded(500);  // force collisions
        double p = rng.nextDouble();
        if (p < 0.45) {
            fill(buf, key + static_cast<std::uint64_t>(i));
            map->insert(0, key, buf);
            ref[key] = key + static_cast<std::uint64_t>(i);
        } else if (p < 0.65 && !ref.empty()) {
            fill(buf, key * 3);
            bool found = map->update(0, key, buf);
            EXPECT_EQ(found, ref.count(key) == 1) << "key " << key;
            if (found)
                ref[key] = key * 3;
        } else if (p < 0.8) {
            bool found = map->erase(0, key);
            EXPECT_EQ(found, ref.count(key) == 1) << "key " << key;
            ref.erase(key);
        } else {
            bool found = map->get(0, key, r);
            ASSERT_EQ(found, ref.count(key) == 1) << "key " << key;
            if (found) {
                fill(buf, ref[key]);
                EXPECT_EQ(std::memcmp(buf, r, 64), 0) << "key " << key;
            }
        }
    }
    // Full verification sweep.
    for (const auto &[key, seed] : ref) {
        ASSERT_TRUE(map->get(0, key, r)) << "key " << key;
        fill(buf, seed);
        EXPECT_EQ(std::memcmp(buf, r, 64), 0) << "key " << key;
    }
}

TEST_P(MapTest, MonotonicAndReverseInsertions)
{
    std::uint8_t buf[64], r[64];
    for (std::uint64_t k = 0; k < 300; k++) {
        fill(buf, k);
        map->insert(0, k, buf);
    }
    for (std::uint64_t k = 1000; k > 700; k--) {
        fill(buf, k);
        map->insert(0, k, buf);
    }
    for (std::uint64_t k = 0; k < 300; k++) {
        ASSERT_TRUE(map->get(0, k, r));
        fill(buf, k);
        EXPECT_EQ(std::memcmp(buf, r, 64), 0);
    }
    EXPECT_FALSE(map->get(0, 500, r));
}

TEST_P(MapTest, TvarakInvariantsAfterWorkload)
{
    Rng rng(23);
    std::uint8_t buf[64];
    for (int i = 0; i < 2000; i++) {
        fill(buf, static_cast<std::uint64_t>(i));
        map->insert(0, rng.nextBounded(1000), buf);
    }
    mem->flushAll();
    EXPECT_EQ(fs->scrub(false), 0u);
    EXPECT_EQ(fs->verifyParity(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, MapTest,
                         ::testing::Values(MapKind::CTree,
                                           MapKind::BTree,
                                           MapKind::RBTree),
                         [](const auto &info) {
                             return std::string(
                                 mapKindName(info.param));
                         });

TEST_P(MapTest, EraseBasics)
{
    std::uint8_t buf[64], r[64];
    EXPECT_FALSE(map->erase(0, 1));
    fill(buf, 1);
    map->insert(0, 1, buf);
    EXPECT_TRUE(map->erase(0, 1));
    EXPECT_FALSE(map->get(0, 1, r));
    EXPECT_FALSE(map->erase(0, 1)) << "double erase";
    // Reinsert after erase works.
    fill(buf, 2);
    map->insert(0, 1, buf);
    ASSERT_TRUE(map->get(0, 1, r));
    EXPECT_EQ(std::memcmp(buf, r, 64), 0);
}

TEST_P(MapTest, EraseEverythingThenRebuild)
{
    std::uint8_t buf[64], r[64];
    for (std::uint64_t k = 0; k < 400; k++) {
        fill(buf, k);
        map->insert(0, k, buf);
    }
    // Erase in an interleaved order to exercise rebalancing.
    for (std::uint64_t k = 0; k < 400; k += 2)
        EXPECT_TRUE(map->erase(0, k)) << k;
    for (std::uint64_t k = 1; k < 400; k += 2)
        EXPECT_TRUE(map->erase(0, k)) << k;
    for (std::uint64_t k = 0; k < 400; k++)
        EXPECT_FALSE(map->get(0, k, r)) << k;
    // The structure is empty but healthy: rebuild on top of it.
    for (std::uint64_t k = 0; k < 100; k++) {
        fill(buf, k * 7);
        map->insert(0, k, buf);
    }
    for (std::uint64_t k = 0; k < 100; k++) {
        ASSERT_TRUE(map->get(0, k, r)) << k;
        fill(buf, k * 7);
        EXPECT_EQ(std::memcmp(buf, r, 64), 0) << k;
    }
}

TEST_P(MapTest, EraseKeepsRedundancyInvariants)
{
    Rng rng(31);
    std::uint8_t buf[64];
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 600; i++) {
        std::uint64_t k = rng.next();
        fill(buf, k);
        map->insert(0, k, buf);
        keys.push_back(k);
    }
    for (std::size_t i = 0; i < keys.size(); i += 2)
        EXPECT_TRUE(map->erase(0, keys[i]));
    mem->flushAll();
    EXPECT_EQ(fs->scrub(false), 0u);
    EXPECT_EQ(fs->verifyParity(), 0u);
}

TEST(RBTree, InvariantsHoldDuringErase)
{
    MemorySystem mem(test::smallConfig(), DesignKind::Baseline);
    DaxFs fs(mem);
    PmemPool pool(mem, fs, "p", 4ull << 20, nullptr, 1);
    RBTreeMap tree(mem, pool, 64);
    Rng rng(6);
    std::uint8_t buf[64] = {};
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 400; i++) {
        std::uint64_t k = rng.next();
        tree.insert(0, k, buf);
        keys.push_back(k);
    }
    for (std::size_t i = 0; i < keys.size(); i++) {
        ASSERT_TRUE(tree.erase(0, keys[i]));
        if (i % 25 == 0) {
            ASSERT_GT(tree.checkInvariants(0), 0) << "after " << i;
        }
    }
    EXPECT_GT(tree.checkInvariants(0), 0);
}

TEST(RBTree, InvariantsHoldDuringInserts)
{
    MemorySystem mem(test::smallConfig(), DesignKind::Baseline);
    DaxFs fs(mem);
    PmemPool pool(mem, fs, "p", 4ull << 20, nullptr, 1);
    RBTreeMap tree(mem, pool, 64);
    Rng rng(5);
    std::uint8_t buf[64] = {};
    for (int i = 0; i < 500; i++) {
        tree.insert(0, rng.next(), buf);
        if (i % 50 == 0) {
            ASSERT_GT(tree.checkInvariants(0), 0) << "after " << i;
        }
    }
    EXPECT_GT(tree.checkInvariants(0), 0);
}

}  // namespace
}  // namespace tvarak
