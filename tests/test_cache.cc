/**
 * @file
 * Cache container tests: LRU, eviction, invalidation, flush walks.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace tvarak {
namespace {

// Line index probed by the insert/probe tests.
constexpr std::size_t kProbeLine = 8;

TEST(Cache, FromSizeGeometry)
{
    Cache c = Cache::fromSize("t", 64 * 1024, 16);
    EXPECT_EQ(c.sets(), 64u);
    EXPECT_EQ(c.ways(), 16u);
    EXPECT_EQ(c.sizeBytes(), 64u * 1024);
}

TEST(Cache, ProbeMissOnEmpty)
{
    Cache c("t", 4, 2);
    EXPECT_EQ(c.probe(0), nullptr);
}

TEST(Cache, InsertThenProbeHits)
{
    Cache c("t", 4, 2);
    Cache::Victim v;
    Cache::Line &line = c.insert(kLineBytes * kProbeLine, v);
    EXPECT_FALSE(v.valid);
    EXPECT_EQ(line.addr, kLineBytes * kProbeLine);
    EXPECT_EQ(c.probe(kLineBytes * kProbeLine), &line);
}

TEST(Cache, LruEvictionOrder)
{
    Cache c("t", 1, 2);  // one set, two ways
    Cache::Victim v;
    c.insert(0 * kLineBytes, v);
    c.insert(1 * kLineBytes, v);
    // Touch line 0 so line 1 is LRU.
    c.touch(*c.probe(0));
    c.insert(2 * kLineBytes, v);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.addr, 1 * kLineBytes);
    EXPECT_NE(c.probe(0), nullptr);
    EXPECT_NE(c.probe(2 * kLineBytes), nullptr);
}

TEST(Cache, VictimCarriesStateAndData)
{
    Cache c("t", 1, 1, 1, true);
    Cache::Victim v;
    Cache::Line &line = c.insert(0, v);
    line.dirty = true;
    line.sharers = 0b101;
    c.dataOf(line)[7] = 0xab;
    c.insert(kLineBytes, v);
    ASSERT_TRUE(v.valid);
    EXPECT_TRUE(v.dirty);
    EXPECT_EQ(v.sharers, 0b101u);
    EXPECT_EQ(v.data[7], 0xab);
}

TEST(Cache, TagOnlyCacheRejectsDataAccess)
{
    Cache c("t", 1, 1);
    Cache::Victim v;
    Cache::Line &line = c.insert(0, v);
    EXPECT_FALSE(c.carriesData());
    EXPECT_DEATH(c.dataOf(line), "tag-only");
}

TEST(Cache, DataSurvivesUnrelatedInserts)
{
    Cache c("t", 2, 2, 1, true);
    Cache::Victim v;
    Cache::Line &a = c.insert(0, v);
    c.dataOf(a)[0] = 0x5a;
    c.insert(kLineBytes, v);      // other set
    c.insert(2 * kLineBytes, v);  // same set as a, second way
    Cache::Line *line = c.probe(0);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(c.dataOf(*line)[0], 0x5a);
}

TEST(Cache, SetIndexingSeparatesSets)
{
    Cache c("t", 4, 1);
    Cache::Victim v;
    // Same tag bits, different sets: no eviction among them.
    for (Addr s = 0; s < 4; s++)
        c.insert(s * kLineBytes, v);
    EXPECT_EQ(c.validLines(), 4u);
}

TEST(Cache, InvalidateDropsLine)
{
    Cache c("t", 4, 2);
    Cache::Victim v;
    Cache::Line &line = c.insert(0, v);
    line.dirty = true;
    c.invalidate(0);
    EXPECT_EQ(c.probe(0), nullptr);
    // Idempotent.
    c.invalidate(0);
    EXPECT_EQ(c.validLines(), 0u);
}

TEST(Cache, ForEachVisitsOnlyValid)
{
    Cache c("t", 4, 2);
    Cache::Victim v;
    c.insert(0, v);
    c.insert(kLineBytes, v);
    c.invalidate(0);
    std::size_t n = 0;
    c.forEachLine([&](Cache::Line &) { n++; });
    EXPECT_EQ(n, 1u);
}

TEST(Cache, InsertPrefersInvalidWays)
{
    Cache c("t", 1, 4);
    Cache::Victim v;
    c.insert(0, v);
    c.insert(kLineBytes, v);
    c.invalidate(0);
    c.insert(2 * kLineBytes, v);
    EXPECT_FALSE(v.valid) << "free way must be used before eviction";
    EXPECT_NE(c.probe(kLineBytes), nullptr);
}

TEST(Cache, SetDivisorSpreadsBankInterleavedLines)
{
    // Regression test: a bank that receives every 12th line (bank =
    // line % 12) must strip the interleave factor before set indexing,
    // or — because gcd(12, sets) > 1 — only 1/4 of its sets are ever
    // used and the effective capacity collapses.
    constexpr std::size_t kBanks = 12;
    Cache with_divisor("good", 8, 1, kBanks);
    Cache without("bad", 8, 1, 1);
    // Feed both caches bank 0's line stream: lines 0, 12, 24, ...
    Cache::Victim v;
    std::size_t evictions_good = 0, evictions_bad = 0;
    for (Addr n = 0; n < 8; n++) {
        with_divisor.insert(n * kBanks * kLineBytes, v);
        evictions_good += v.valid ? 1 : 0;
        without.insert(n * kBanks * kLineBytes, v);
        evictions_bad += v.valid ? 1 : 0;
    }
    EXPECT_EQ(evictions_good, 0u)
        << "8 lines fit the 8 sets when the divisor strips the bank";
    EXPECT_EQ(with_divisor.validLines(), 8u);
    EXPECT_GT(evictions_bad, 0u)
        << "without the divisor the stream collides in a subset of sets";
}

TEST(Cache, LruVictimOrderAcrossManyWays)
{
    // Pin the exact victim sequence of a 4-way set so the single-walk
    // insert rewrite is locked in by behavior, not benchmarks.
    Cache c("t", 1, 4);
    Cache::Victim v;
    for (Addr n = 0; n < 4; n++)
        c.insert(n * kLineBytes, v);
    // Recency (old -> new): 0, 1, 2, 3. Touch everything but 2.
    c.touch(*c.probe(0));
    c.touch(*c.probe(1 * kLineBytes));
    c.touch(*c.probe(3 * kLineBytes));
    // Recency now: 2, 0, 1, 3 — victims must come out in that order
    // (each inserted line becomes MRU, so it is never the next victim).
    const Addr expect[] = {2 * kLineBytes, 0, 1 * kLineBytes,
                           3 * kLineBytes};
    for (std::size_t i = 0; i < 4; i++) {
        c.insert((4 + i) * kLineBytes, v);
        ASSERT_TRUE(v.valid);
        EXPECT_EQ(v.addr, expect[i]) << "victim " << i;
    }
}

TEST(Cache, ReinsertionAfterInvalidateResetsState)
{
    Cache c("t", 1, 2, 1, true);
    Cache::Victim v;
    Cache::Line &a = c.insert(0, v);
    c.insert(kLineBytes, v);
    a.dirty = true;
    a.sharers = 0b11;
    a.owner = 1;
    c.dataOf(a)[3] = 0x77;
    c.invalidate(0);
    // Re-insertion must take the freed way (no eviction) and come
    // back clean: no stale dirty/sharers/owner/payload.
    Cache::Line &b = c.insert(0, v);
    EXPECT_FALSE(v.valid) << "freed way must be reused, not evicted";
    EXPECT_FALSE(b.dirty);
    EXPECT_EQ(b.sharers, 0u);
    EXPECT_EQ(b.owner, -1);
    EXPECT_EQ(c.dataOf(b)[3], 0u);
    EXPECT_NE(c.probe(kLineBytes), nullptr);
    // And it is MRU again: the untouched neighbor is the next victim.
    c.insert(2 * kLineBytes, v);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.addr, kLineBytes);
}

TEST(CacheDeathTest, DoubleInsertPanics)
{
    Cache c("t", 4, 2);
    Cache::Victim v;
    c.insert(0, v);
    EXPECT_DEATH(c.insert(0, v), "double insert");
}

TEST(CacheDeathTest, DoubleInsertPanicsPastFreeWays)
{
    // The duplicate check must scan the whole set, not stop at the
    // first free way the victim search would settle on.
    Cache c("t", 1, 4);
    Cache::Victim v;
    c.insert(0, v);
    c.insert(kLineBytes, v);
    c.invalidate(0);  // frees way 0; duplicate sits in way 1
    EXPECT_DEATH(c.insert(kLineBytes, v), "double insert");
}

TEST(CacheDeathTest, UnalignedProbePanics)
{
    Cache c("t", 4, 2);
    EXPECT_DEATH(c.probe(3), "unaligned");
}

}  // namespace
}  // namespace tvarak
