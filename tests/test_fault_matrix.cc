/**
 * @file
 * Fault-injection matrix: every firmware bug class against every
 * application substrate under TVARAK — detection on first read,
 * recovery to the acknowledged data, and restored at-rest invariants.
 * This is the end-to-end statement of the paper's coverage claim
 * ("updating redundancy for every write and verifying
 * system-checksums for every read").
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <tuple>

#include "apps/redis/redis.hh"
#include "apps/trees/pmem_map.hh"
#include "pmemlib/pmem_pool.hh"
#include "test_util.hh"

namespace tvarak {
namespace {

enum class Bug { LostWrite, MisdirectedWrite, MisdirectedRead };

const char *
bugName(Bug b)
{
    switch (b) {
      case Bug::LostWrite:        return "LostWrite";
      case Bug::MisdirectedWrite: return "MisdirectedWrite";
      case Bug::MisdirectedRead:  return "MisdirectedRead";
    }
    return "?";
}

class FaultMatrix
    : public ::testing::TestWithParam<std::tuple<Bug, MapKind>>
{};

TEST_P(FaultMatrix, DetectAndRecover)
{
    auto [bug, kind] = GetParam();
    MemorySystem mem(test::smallConfig(), DesignKind::Tvarak);
    DaxFs fs(mem);
    PmemPool pool(mem, fs, "p", 4ull << 20, nullptr, 1);
    auto map = makeMap(kind, mem, pool, 48);

    // Populate several keys so the tree has structure around the
    // victim, then pick one value line to attack.
    std::uint8_t value[48];
    for (std::uint64_t k = 0; k < 64; k++) {
        std::memset(value, static_cast<int>('a' + k % 26),
                    sizeof(value));
        map->insert(0, k, value);
    }
    mem.flushAll();

    const std::uint64_t victim_key = 29;
    Addr vaddr = map->valueAddr(0, victim_key);
    ASSERT_NE(vaddr, 0u);
    Addr paddr;
    bool is_nvm;
    ASSERT_TRUE(mem.translate(vaddr, paddr, is_nvm) && is_nvm);
    Addr g = lineBase(paddr - kNvmPhysBase);
    auto &nvm = mem.nvmArray();
    auto &dimm = nvm.dimm(nvm.dimmOf(g));

    switch (bug) {
      case Bug::LostWrite:
        // Overwrite in place; the writeback is dropped.
        dimm.injectLostWrite(nvm.mediaAddrOf(g));
        std::memset(value, 'Z', sizeof(value));
        map->update(0, victim_key, value);
        mem.dropCaches();
        break;
      case Bug::MisdirectedWrite: {
        // A *different* line's writeback lands on our victim. Use a
        // line of the same DIMM from another page.
        std::uint64_t other_key = victim_key + 1;
        Addr other_v = map->valueAddr(0, other_key);
        Addr other_p;
        ASSERT_TRUE(mem.translate(other_v, other_p, is_nvm));
        Addr og = lineBase(other_p - kNvmPhysBase);
        while (nvm.dimmOf(og) != nvm.dimmOf(g)) {
            other_key++;
            other_v = map->valueAddr(0, other_key);
            ASSERT_NE(other_v, 0u);
            ASSERT_TRUE(mem.translate(other_v, other_p, is_nvm));
            og = lineBase(other_p - kNvmPhysBase);
        }
        dimm.injectMisdirectedWrite(nvm.mediaAddrOf(og),
                                    nvm.mediaAddrOf(g));
        std::memset(value, 'Y', sizeof(value));
        map->update(0, other_key, value);
        mem.dropCaches();
        std::memset(value, 'Z', sizeof(value));  // expected for other
        break;
      }
      case Bug::MisdirectedRead: {
        // Reads of the victim line return the neighbouring line of
        // the same page once (same DIMM; different content, since the
        // neighbour holds an object header).
        Addr other = lineInPage(g) + 1 < kLinesPerPage
            ? g + kLineBytes
            : g - kLineBytes;
        dimm.injectMisdirectedRead(nvm.mediaAddrOf(g),
                                   nvm.mediaAddrOf(other));
        mem.dropCaches();
        break;
      }
    }

    // Reading the victim's value must return exactly what the
    // application last wrote, with the corruption detected.
    std::uint8_t expect[48];
    if (bug == Bug::LostWrite)
        std::memset(expect, 'Z', sizeof(expect));
    else
        std::memset(expect, static_cast<int>('a' + victim_key % 26),
                    sizeof(expect));
    std::uint8_t got[48] = {};
    ASSERT_TRUE(map->get(0, victim_key, got))
        << bugName(bug) << "/" << mapKindName(kind);
    EXPECT_EQ(std::memcmp(expect, got, sizeof(expect)), 0)
        << bugName(bug) << "/" << mapKindName(kind);
    EXPECT_GE(mem.stats().corruptionsDetected, 1u);

    // And the system is whole again.
    mem.flushAll();
    EXPECT_EQ(fs.scrub(false), 0u);
    EXPECT_EQ(fs.verifyParity(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FaultMatrix,
    ::testing::Combine(::testing::Values(Bug::LostWrite,
                                         Bug::MisdirectedWrite,
                                         Bug::MisdirectedRead),
                       ::testing::Values(MapKind::CTree, MapKind::BTree,
                                         MapKind::RBTree)),
    [](const auto &info) {
        return std::string(bugName(std::get<0>(info.param))) +
            mapKindName(std::get<1>(info.param));
    });

TEST(FaultRedis, LostWriteOnHashtableEntry)
{
    MemorySystem mem(test::smallConfig(), DesignKind::Tvarak);
    DaxFs fs(mem);
    PmemPool pool(mem, fs, "redis", 8ull << 20, nullptr, 1);
    RedisStore store(mem, pool, 8, 64);
    char key[16];
    std::snprintf(key, sizeof(key), "key:%011d", 7);
    std::uint64_t v1 = 0x1111;
    store.set(0, key, &v1);
    mem.flushAll();

    // Lose the next write of every line of every heap page — brute
    // force, but guarantees we hit the entry no matter where it lives.
    std::uint64_t v2 = 0x2222;
    int fd = fs.open("redis");
    auto &nvm = mem.nvmArray();
    for (std::size_t p = 0; p < fs.filePages(fd); p++) {
        Addr page = fs.filePage(fd, p);
        for (std::size_t l = 0; l < kLinesPerPage; l++) {
            nvm.dimm(nvm.dimmOf(page)).injectLostWrite(
                nvm.mediaAddrOf(page + l * kLineBytes));
        }
    }
    store.set(0, key, &v2);
    mem.dropCaches();

    std::uint64_t r = 0;
    ASSERT_TRUE(store.get(0, key, &r));
    EXPECT_EQ(r, 0x2222u) << "every lost write recovered from parity";
    EXPECT_GE(mem.stats().corruptionsDetected, 1u);
    // Disarm the un-triggered injections, then let a repairing scrub
    // mop up any latent lost writes on lines the application never
    // re-read (the background-scrubbing role of Section II).
    for (std::size_t d = 0; d < nvm.numDimms(); d++)
        nvm.dimm(d).clearInjectedBugs();
    mem.flushAll();
    fs.scrub(true);
    EXPECT_EQ(fs.scrub(false), 0u);
    EXPECT_EQ(fs.verifyParity(), 0u);
}

}  // namespace
}  // namespace tvarak
