/**
 * @file
 * Fault-injection matrix: every firmware bug class against every
 * application substrate under TVARAK — detection on first read,
 * recovery to the acknowledged data, and restored at-rest invariants.
 * This is the end-to-end statement of the paper's coverage claim
 * ("updating redundancy for every write and verifying
 * system-checksums for every read").
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <tuple>

#include "apps/redis/redis.hh"
#include "apps/trees/pmem_map.hh"
#include "pmemlib/pmem_pool.hh"
#include "redundancy/scheme.hh"
#include "test_util.hh"

namespace tvarak {
namespace {

enum class Bug { LostWrite, MisdirectedWrite, MisdirectedRead };

const char *
bugName(Bug b)
{
    switch (b) {
      case Bug::LostWrite:        return "LostWrite";
      case Bug::MisdirectedWrite: return "MisdirectedWrite";
      case Bug::MisdirectedRead:  return "MisdirectedRead";
    }
    return "?";
}

class FaultMatrix
    : public ::testing::TestWithParam<std::tuple<Bug, MapKind>>
{};

TEST_P(FaultMatrix, DetectAndRecover)
{
    auto [bug, kind] = GetParam();
    MemorySystem mem(test::smallConfig(), DesignKind::Tvarak);
    DaxFs fs(mem);
    PmemPool pool(mem, fs, "p", 4ull << 20, nullptr, 1);
    auto map = makeMap(kind, mem, pool, 48);

    // Populate several keys so the tree has structure around the
    // victim, then pick one value line to attack.
    std::uint8_t value[48];
    for (std::uint64_t k = 0; k < 64; k++) {
        std::memset(value, static_cast<int>('a' + k % 26),
                    sizeof(value));
        map->insert(0, k, value);
    }
    mem.flushAll();

    const std::uint64_t victim_key = 29;
    Addr vaddr = map->valueAddr(0, victim_key);
    ASSERT_NE(vaddr, 0u);
    Addr paddr;
    bool is_nvm;
    ASSERT_TRUE(mem.translate(vaddr, paddr, is_nvm) && is_nvm);
    Addr g = lineBase(paddr - kNvmPhysBase);
    auto &nvm = mem.nvmArray();
    auto &dimm = nvm.dimm(nvm.dimmOf(g));

    switch (bug) {
      case Bug::LostWrite:
        // Overwrite in place; the writeback is dropped.
        dimm.injectLostWrite(nvm.mediaAddrOf(g));
        std::memset(value, 'Z', sizeof(value));
        map->update(0, victim_key, value);
        mem.dropCaches();
        break;
      case Bug::MisdirectedWrite: {
        // A *different* line's writeback lands on our victim. Use a
        // line of the same DIMM from another page.
        std::uint64_t other_key = victim_key + 1;
        Addr other_v = map->valueAddr(0, other_key);
        Addr other_p;
        ASSERT_TRUE(mem.translate(other_v, other_p, is_nvm));
        Addr og = lineBase(other_p - kNvmPhysBase);
        while (nvm.dimmOf(og) != nvm.dimmOf(g)) {
            other_key++;
            other_v = map->valueAddr(0, other_key);
            ASSERT_NE(other_v, 0u);
            ASSERT_TRUE(mem.translate(other_v, other_p, is_nvm));
            og = lineBase(other_p - kNvmPhysBase);
        }
        dimm.injectMisdirectedWrite(nvm.mediaAddrOf(og),
                                    nvm.mediaAddrOf(g));
        std::memset(value, 'Y', sizeof(value));
        map->update(0, other_key, value);
        mem.dropCaches();
        std::memset(value, 'Z', sizeof(value));  // expected for other
        break;
      }
      case Bug::MisdirectedRead: {
        // Reads of the victim line return the neighbouring line of
        // the same page once (same DIMM; different content, since the
        // neighbour holds an object header).
        Addr other = lineInPage(g) + 1 < kLinesPerPage
            ? g + kLineBytes
            : g - kLineBytes;
        dimm.injectMisdirectedRead(nvm.mediaAddrOf(g),
                                   nvm.mediaAddrOf(other));
        mem.dropCaches();
        break;
      }
    }

    // Reading the victim's value must return exactly what the
    // application last wrote, with the corruption detected.
    std::uint8_t expect[48];
    if (bug == Bug::LostWrite)
        std::memset(expect, 'Z', sizeof(expect));
    else
        std::memset(expect, static_cast<int>('a' + victim_key % 26),
                    sizeof(expect));
    std::uint8_t got[48] = {};
    ASSERT_TRUE(map->get(0, victim_key, got))
        << bugName(bug) << "/" << mapKindName(kind);
    EXPECT_EQ(std::memcmp(expect, got, sizeof(expect)), 0)
        << bugName(bug) << "/" << mapKindName(kind);
    EXPECT_GE(mem.stats().corruptionsDetected, 1u);

    // And the system is whole again.
    mem.flushAll();
    EXPECT_EQ(fs.scrub(false), 0u);
    EXPECT_EQ(fs.verifyParity(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FaultMatrix,
    ::testing::Combine(::testing::Values(Bug::LostWrite,
                                         Bug::MisdirectedWrite,
                                         Bug::MisdirectedRead),
                       ::testing::Values(MapKind::CTree, MapKind::BTree,
                                         MapKind::RBTree)),
    [](const auto &info) {
        return std::string(bugName(std::get<0>(info.param))) +
            mapKindName(std::get<1>(info.param));
    });

/*
 * The same firmware bugs against every design: each detects at its own
 * granularity (or, for Baseline, detectably does not detect).
 *
 *   Tvarak            read-time: the fill verifies the DAX-CL checksum
 *                     and transparently recovers from parity.
 *   TxB-Page-Csums    quiesce-time: a page-granular scrub finds the
 *                     mismatch; repair is parity-based per page.
 *   Vilamb            as TxB-Page-Csums once its epoch is drained; the
 *                     test drains cache-hot before every flush so the
 *                     deferred checksums describe the acknowledged
 *                     bytes (faults inside an open epoch are the
 *                     design's documented window, see test_vilamb).
 *   TxB-Object-Csums  quiesce-time: the object-checksum sweep (plus
 *                     the parity cross-check) finds it; the design has
 *                     no locate-and-repair for mapped lines, so the
 *                     test restores from a pre-fault good copy.
 *   Baseline          never: reads serve wrong bytes silently, pinned
 *                     by corruptionsDetected == 0.
 *
 * Misdirected reads are transient — the bug corrupts a fill, not the
 * media — so no at-rest sweep can see them: only TVARAK's fill-time
 * verification catches the wrong bytes. For the other designs the test
 * pins silence AND that the at-rest state is clean once the polluted
 * cache copy is dropped.
 *
 * Observation reads go through mem.read at the value's address rather
 * than the map, so a corrupted line never feeds a tree traversal.
 */
class DesignMatrix
    : public ::testing::TestWithParam<std::tuple<Bug, DesignKind>>
{};

TEST_P(DesignMatrix, DetectionAtDesignGranularity)
{
    auto [bug, design] = GetParam();
    MemorySystem mem(test::smallConfig(), design);
    DaxFs fs(mem);
    auto scheme = makeScheme(design, mem);
    PmemPool pool(mem, fs, "p", 4ull << 20, scheme.get(), 1);
    auto map = makeMap(MapKind::CTree, mem, pool, 48);
    int fd = fs.open("p");
    ASSERT_GE(fd, 0);

    std::uint8_t value[48];
    for (std::uint64_t k = 0; k < 64; k++) {
        std::memset(value, static_cast<int>('a' + k % 26),
                    sizeof(value));
        map->insert(0, k, value);
    }
    if (scheme != nullptr)
        scheme->drain(0);  // Vilamb: close the load epoch
    mem.flushAll();

    const std::uint64_t victim_key = 29;
    Addr vaddr = map->valueAddr(0, victim_key);
    ASSERT_NE(vaddr, 0u);
    Addr paddr;
    bool is_nvm;
    ASSERT_TRUE(mem.translate(vaddr, paddr, is_nvm) && is_nvm);
    Addr g = lineBase(paddr - kNvmPhysBase);
    auto &nvm = mem.nvmArray();
    auto &dimm = nvm.dimm(nvm.dimmOf(g));

    auto pageIdxOf = [&](Addr va) {
        Addr pa;
        bool nv;
        EXPECT_TRUE(mem.translate(va, pa, nv) && nv);
        for (std::size_t p = 0; p < fs.filePages(fd); p++)
            if (fs.filePage(fd, p) == pageBase(pa - kNvmPhysBase))
                return p;
        ADD_FAILURE() << "value page not in pool file";
        return std::size_t{0};
    };

    // Acknowledged contents, and a line-granular good copy for the
    // designs that detect but cannot locate-and-repair.
    std::uint8_t acked[48];
    std::uint8_t wk_acked[48] = {};
    std::memset(acked, static_cast<int>('a' + victim_key % 26),
                sizeof(acked));
    struct Saved {
        Addr vline;
        Addr global;
        std::uint8_t bytes[kLineBytes];
    };
    std::vector<Saved> saved;
    auto snapshot = [&](Addr va) {
        Saved s;
        s.vline = lineBase(va);
        Addr pa;
        bool nv;
        ASSERT_TRUE(mem.translate(s.vline, pa, nv) && nv);
        s.global = pa - kNvmPhysBase;
        mem.peek(s.vline, s.bytes, kLineBytes);
        saved.push_back(s);
    };
    auto restore = [&] {
        for (const Saved &s : saved) {
            nvm.rawWrite(s.global, s.bytes, kLineBytes);
            mem.refreshFromMedia(s.vline, kLineBytes);
        }
    };

    std::uint64_t wk = 0;  // misdirected write's redirected writer
    Addr wk_vaddr = 0;
    switch (bug) {
      case Bug::LostWrite:
        dimm.injectLostWrite(nvm.mediaAddrOf(g));
        std::memset(value, 'Z', sizeof(value));
        map->update(0, victim_key, value);
        // Cache-hot epoch close: Vilamb's deferred checksums must
        // describe the acknowledged bytes before the flush hits the
        // armed bug (draining later would read the corrupted media).
        if (scheme != nullptr)
            scheme->drain(0);
        mem.flushAll();
        std::memset(acked, 'Z', sizeof(acked));
        snapshot(vaddr);
        break;
      case Bug::MisdirectedWrite: {
        wk = victim_key + 1;
        wk_vaddr = map->valueAddr(0, wk);
        Addr wp;
        ASSERT_TRUE(mem.translate(wk_vaddr, wp, is_nvm));
        Addr og = lineBase(wp - kNvmPhysBase);
        while (nvm.dimmOf(og) != nvm.dimmOf(g)) {
            wk++;
            wk_vaddr = map->valueAddr(0, wk);
            ASSERT_NE(wk_vaddr, 0u);
            ASSERT_TRUE(mem.translate(wk_vaddr, wp, is_nvm));
            og = lineBase(wp - kNvmPhysBase);
        }
        dimm.injectMisdirectedWrite(nvm.mediaAddrOf(og),
                                    nvm.mediaAddrOf(g));
        std::memset(value, 'Y', sizeof(value));
        map->update(0, wk, value);
        if (scheme != nullptr)
            scheme->drain(0);  // cache-hot, as for lost writes
        mem.flushAll();
        std::memset(wk_acked, 'Y', sizeof(wk_acked));
        snapshot(vaddr);
        snapshot(wk_vaddr);
        break;
      }
      case Bug::MisdirectedRead: {
        Addr other = lineInPage(g) + 1 < kLinesPerPage
            ? g + kLineBytes
            : g - kLineBytes;
        dimm.injectMisdirectedRead(nvm.mediaAddrOf(g),
                                   nvm.mediaAddrOf(other));
        break;
      }
    }
    mem.dropCaches();

    // Cold observation read of the victim's payload.
    std::uint8_t got[48] = {};
    std::uint64_t before = mem.stats().corruptionsDetected;
    mem.read(0, vaddr, got, sizeof(got));
    bool observed_correct =
        std::memcmp(acked, got, sizeof(acked)) == 0;

    switch (design) {
      case DesignKind::Tvarak:
        // Detected at the fill and transparently recovered.
        EXPECT_TRUE(observed_correct) << bugName(bug);
        EXPECT_GT(mem.stats().corruptionsDetected, before)
            << bugName(bug);
        if (wk_vaddr != 0) {
            mem.read(0, wk_vaddr, got, sizeof(got));
            EXPECT_EQ(std::memcmp(wk_acked, got, sizeof(got)), 0);
        }
        mem.flushAll();
        EXPECT_EQ(fs.scrub(false), 0u);
        EXPECT_EQ(fs.verifyParity(), 0u);
        break;
      case DesignKind::TxBPageCsums:
      case DesignKind::Vilamb: {
        // Vilamb's epoch was drained at every injection boundary, so
        // both behave as the page-checksum machine model here.
        // Silent at read time...
        EXPECT_FALSE(observed_correct)
            << bugName(bug);
        EXPECT_EQ(mem.stats().corruptionsDetected, before);
        if (bug == Bug::MisdirectedRead) {
            // ...and gone before any sweep can run: at-rest is clean.
            mem.dropCaches();
            EXPECT_EQ(fs.scrub(false), 0u);
        } else {
            // ...caught at page granularity at the next quiesce.
            EXPECT_GT(fs.scrubPage(fd, pageIdxOf(vaddr), false), 0u)
                << bugName(bug);
            fs.scrubPage(fd, pageIdxOf(vaddr), true);
            if (wk_vaddr != 0)
                fs.scrubPage(fd, pageIdxOf(wk_vaddr), true);
            EXPECT_EQ(fs.scrubPage(fd, pageIdxOf(vaddr), false), 0u);
            mem.dropCaches();
        }
        mem.read(0, vaddr, got, sizeof(got));
        EXPECT_EQ(std::memcmp(acked, got, sizeof(got)), 0)
            << bugName(bug);
        EXPECT_EQ(fs.verifyParity(), 0u);
        break;
      }
      case DesignKind::TxBObjectCsums: {
        EXPECT_FALSE(observed_correct)
            << bugName(bug);
        EXPECT_EQ(mem.stats().corruptionsDetected, before);
        if (bug == Bug::MisdirectedRead) {
            mem.dropCaches();
            EXPECT_EQ(pool.verifyObjects(), 0u);
        } else {
            // Caught at object granularity by the quiesce sweep.
            mem.dropCaches();
            EXPECT_GT(pool.verifyObjects() + fs.verifyParity(), 0u)
                << bugName(bug);
            restore();
            EXPECT_EQ(pool.verifyObjects(), 0u);
        }
        mem.read(0, vaddr, got, sizeof(got));
        EXPECT_EQ(std::memcmp(acked, got, sizeof(got)), 0)
            << bugName(bug);
        EXPECT_EQ(fs.verifyParity(), 0u);
        break;
      }
      case DesignKind::Baseline:
        // Pinned: wrong bytes served, nothing ever notices.
        EXPECT_FALSE(observed_correct)
            << bugName(bug);
        EXPECT_EQ(mem.stats().corruptionsDetected, 0u);
        if (bug == Bug::MisdirectedRead)
            mem.dropCaches();
        else
            restore();
        mem.read(0, vaddr, got, sizeof(got));
        EXPECT_EQ(std::memcmp(acked, got, sizeof(got)), 0)
            << bugName(bug);
        EXPECT_EQ(mem.stats().corruptionsDetected, 0u);
        break;
    }

    // The map itself survived: the victim is still reachable with its
    // acknowledged value.
    std::uint8_t final_got[48] = {};
    ASSERT_TRUE(map->get(0, victim_key, final_got)) << bugName(bug);
    EXPECT_EQ(std::memcmp(acked, final_got, sizeof(acked)), 0)
        << bugName(bug);
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, DesignMatrix,
    ::testing::Combine(::testing::Values(Bug::LostWrite,
                                         Bug::MisdirectedWrite,
                                         Bug::MisdirectedRead),
                       ::testing::Values(DesignKind::Baseline,
                                         DesignKind::Tvarak,
                                         DesignKind::TxBObjectCsums,
                                         DesignKind::TxBPageCsums,
                                         DesignKind::Vilamb)),
    [](const auto &info) {
        std::string d = designName(std::get<1>(info.param));
        std::string out = std::string(bugName(std::get<0>(info.param)));
        for (char c : d)
            if (c != '-')
                out.push_back(c);
        return out;
    });

TEST(FaultRedis, LostWriteOnHashtableEntry)
{
    MemorySystem mem(test::smallConfig(), DesignKind::Tvarak);
    DaxFs fs(mem);
    PmemPool pool(mem, fs, "redis", 8ull << 20, nullptr, 1);
    RedisStore store(mem, pool, 8, 64);
    char key[16];
    std::snprintf(key, sizeof(key), "key:%011d", 7);
    std::uint64_t v1 = 0x1111;
    store.set(0, key, &v1);
    mem.flushAll();

    // Lose the next write of every line of every heap page — brute
    // force, but guarantees we hit the entry no matter where it lives.
    std::uint64_t v2 = 0x2222;
    int fd = fs.open("redis");
    auto &nvm = mem.nvmArray();
    for (std::size_t p = 0; p < fs.filePages(fd); p++) {
        Addr page = fs.filePage(fd, p);
        for (std::size_t l = 0; l < kLinesPerPage; l++) {
            nvm.dimm(nvm.dimmOf(page)).injectLostWrite(
                nvm.mediaAddrOf(page + l * kLineBytes));
        }
    }
    store.set(0, key, &v2);
    mem.dropCaches();

    std::uint64_t r = 0;
    ASSERT_TRUE(store.get(0, key, &r));
    EXPECT_EQ(r, 0x2222u) << "every lost write recovered from parity";
    EXPECT_GE(mem.stats().corruptionsDetected, 1u);
    // Disarm the un-triggered injections, then let a repairing scrub
    // mop up any latent lost writes on lines the application never
    // re-read (the background-scrubbing role of Section II).
    for (std::size_t d = 0; d < nvm.numDimms(); d++)
        nvm.dimm(d).clearInjectedBugs();
    mem.flushAll();
    fs.scrub(true);
    EXPECT_EQ(fs.scrub(false), 0u);
    EXPECT_EQ(fs.verifyParity(), 0u);
}

}  // namespace
}  // namespace tvarak
