/**
 * @file
 * Trace input hardening: hostile bytes must never crash the loader.
 *
 * The contract under test (ISSUE 4): a truncated, corrupt or garbage
 * trace file is rejected by TraceData::load with a diagnostic and a
 * null result — it must never reach the cursor or the simulator, and
 * decoding hostile bytes must never be undefined behaviour. A load
 * that *does* succeed guarantees the record stream is structurally
 * sound, so TraceCursor can walk it without bounds faults.
 */

#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.hh"
#include "trace/trace.hh"

namespace tvarak {
namespace {

/** @name Byte-level file fixture helpers */
/**@{*/
std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");  // lint:allow(R7)
    EXPECT_NE(f, nullptr);
    std::vector<std::uint8_t> bytes;
    int c = 0;
    while ((c = std::fgetc(f)) != EOF)
        bytes.push_back(static_cast<std::uint8_t>(c));
    std::fclose(f);
    return bytes;
}

void
writeFile(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");  // lint:allow(R7)
    ASSERT_NE(f, nullptr);
    if (!bytes.empty()) {
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f),
                  bytes.size());
    }
    std::fclose(f);
}
/**@}*/

/** A small but representative trace covering every record shape. */
std::shared_ptr<trace::TraceData>
fixtureTrace()
{
    trace::TraceWriter w(test::smallConfig(), DesignKind::Baseline,
                         "harden");
    const std::uint8_t payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    w.onRead(0, 0x1000, 64);
    w.onWrite(1, 0x2000, payload, sizeof(payload));
    w.onCompute(0, 42);
    w.onComputeChecksum(1, 4096);
    w.onDropCaches();
    DirtyRange r;
    r.vaddr = 0x3000;
    r.len = 16;
    r.objBase = lineBase(r.vaddr);
    r.objLen = kLineBytes;
    r.csumVaddr = 0x9000;
    w.onCommit(1, {r}, true, true);
    w.onFsCreate("f", 4096, 3);
    w.onFsDaxMap(3);
    w.onFsPwrite(0, 3, 128, payload, sizeof(payload));
    w.onFsPread(1, 3, 128, 8);
    w.onFsDaxUnmap(3);
    w.onFsRemove(3);
    w.onRead(17, 0x5000, 64);  // escaped-tid head byte
    w.onMarker(trace::kMarkerResetStats);
    return w.finish();
}

TEST(TraceHarden, VarintCheckedRejectsTruncationAndRunaway)
{
    // Truncated: continuation bit set on the last available byte.
    const std::uint8_t truncated[] = {0x80, 0x80};
    const std::uint8_t *p = truncated;
    std::uint64_t v = 0;
    EXPECT_FALSE(trace::getVarintChecked(p, truncated + 2, v));

    // Runaway: more continuation groups than a u64 can hold. The
    // shift must saturate instead of running past the word (UB).
    std::vector<std::uint8_t> runaway(64, 0x80);
    p = runaway.data();
    EXPECT_FALSE(
        trace::getVarintChecked(p, p + runaway.size(), v));

    // Empty input.
    p = runaway.data();
    EXPECT_FALSE(trace::getVarintChecked(p, p, v));

    // Maximal valid encoding round-trips.
    std::vector<std::uint8_t> buf;
    trace::putVarint(buf, ~0ull);
    p = buf.data();
    ASSERT_TRUE(trace::getVarintChecked(p, p + buf.size(), v));
    EXPECT_EQ(v, ~0ull);
    EXPECT_EQ(p, buf.data() + buf.size());
}

TEST(TraceHarden, LoadRejectsCraftedCorruptStreams)
{
    const char *path = "test_trace_harden_crafted.trace";
    auto mangle = [&](const std::function<void(trace::TraceData &)> &fn) {
        auto t = fixtureTrace();
        fn(*t);
        EXPECT_TRUE(t->save(path));
        return trace::TraceData::load(path);
    };

    // Unknown opcode in a head byte.
    EXPECT_EQ(mangle([](trace::TraceData &t) {
                  t.records.push_back(0xD0);  // opcode 13
                  t.eventCount++;
              }),
              nullptr);

    // Runaway varint continuation run where a length belongs.
    EXPECT_EQ(mangle([](trace::TraceData &t) {
                  t.records.push_back(0x20);  // Compute, tid 0
                  t.records.insert(t.records.end(), 16, 0x80);
                  t.eventCount++;
              }),
              nullptr);

    // Write whose payload length exceeds the remaining bytes.
    EXPECT_EQ(mangle([](trace::TraceData &t) {
                  t.records.push_back(0x10);  // Write, tid 0
                  t.records.push_back(0x00);  // delta 0
                  t.records.push_back(0x7F);  // len 127, but no payload
                  t.eventCount++;
              }),
              nullptr);

    // Header event count disagreeing with the stream.
    EXPECT_EQ(mangle([](trace::TraceData &t) { t.eventCount++; }),
              nullptr);

    // Truncated trailing record.
    EXPECT_EQ(mangle([](trace::TraceData &t) {
                  t.records.push_back(0x60);  // FsCreate, tid 0
                  t.eventCount++;
              }),
              nullptr);

    std::remove(path);
}

/**
 * Every possible single-byte corruption of a valid trace file either
 * fails to load (with a diagnostic) or yields a stream the cursor can
 * fully decode: no crash, no bounds fault, no hang, whatever the byte.
 */
TEST(TraceHarden, SingleByteCorruptionSweepNeverCrashes)
{
    const char *path = "test_trace_harden_sweep.trace";
    auto t = fixtureTrace();
    ASSERT_TRUE(t->save(path));
    const std::vector<std::uint8_t> good = readFile(path);
    ASSERT_FALSE(good.empty());

    std::size_t rejected = 0;
    for (std::size_t i = 0; i < good.size(); i++) {
        std::vector<std::uint8_t> bad = good;
        bad[i] ^= 0xFF;
        writeFile(path, bad);
        auto loaded = trace::TraceData::load(path);
        if (loaded == nullptr) {
            rejected++;
            continue;
        }
        // Accepted: the structural guarantee must hold all the way
        // through the stream.
        trace::TraceCursor c(*loaded);
        trace::TraceEvent e;
        std::uint64_t n = 0;
        while (c.next(e))
            n++;
        EXPECT_EQ(n, loaded->eventCount) << "byte " << i;
    }
    // The header (magic, version, fingerprint-protected config) and
    // most structural bytes must reject; only payload-content flips
    // may legitimately load.
    EXPECT_GT(rejected, good.size() / 2);

    // Truncation at every prefix length is likewise rejected cleanly.
    for (std::size_t len = 0; len < good.size(); len++) {
        writeFile(path,
                  std::vector<std::uint8_t>(good.begin(),
                                            good.begin() + len));
        EXPECT_EQ(trace::TraceData::load(path), nullptr)
            << "prefix " << len;
    }
    std::remove(path);
}

}  // namespace
}  // namespace tvarak
