/**
 * @file
 * Property tests with a shadow-memory oracle: arbitrary access
 * sequences through the full simulated hierarchy must always agree
 * with a flat reference buffer, under every design, every TVARAK
 * ablation configuration, and across flushes, cold restarts, map/unmap
 * cycles and FS I/O.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "fs/dax_fs.hh"
#include "mem/memory_system.hh"
#include "pmemlib/pmem_pool.hh"
#include "redundancy/scheme.hh"
#include "sim/rng.hh"
#include "test_util.hh"

namespace tvarak {
namespace {

class ShadowOracle : public ::testing::TestWithParam<DesignKind>
{};

TEST_P(ShadowOracle, RandomAccessSequencesMatchReference)
{
    MemorySystem mem(test::smallConfig(), GetParam());
    DaxFs fs(mem);
    const std::size_t bytes = 32 * kPageBytes;
    int fd = fs.create("oracle", bytes);
    Addr base = fs.daxMap(fd);
    std::vector<std::uint8_t> shadow(bytes, 0);
    Rng rng(101);

    for (int step = 0; step < 15000; step++) {
        std::size_t off = rng.nextBounded(bytes - 16);
        std::size_t len = 1 + rng.nextBounded(16);
        int tid = static_cast<int>(rng.nextBounded(2));
        double p = rng.nextDouble();
        if (p < 0.45) {
            std::uint8_t buf[16];
            for (std::size_t i = 0; i < len; i++)
                buf[i] = static_cast<std::uint8_t>(rng.next());
            mem.write(tid, base + off, buf, len);
            std::memcpy(shadow.data() + off, buf, len);
        } else if (p < 0.9) {
            std::uint8_t buf[16];
            mem.read(tid, base + off, buf, len);
            ASSERT_EQ(std::memcmp(buf, shadow.data() + off, len), 0)
                << "step " << step << " off " << off;
        } else if (p < 0.97) {
            mem.flushAll();
        } else {
            mem.dropCaches();
        }
    }
    // Final at-rest state equals the shadow, byte for byte.
    mem.flushAll();
    std::vector<std::uint8_t> at_rest(bytes);
    for (std::size_t p = 0; p < bytes / kPageBytes; p++) {
        mem.nvmArray().rawRead(fs.filePage(fd, p),
                               at_rest.data() + p * kPageBytes,
                               kPageBytes);
    }
    EXPECT_EQ(at_rest, shadow);
}

INSTANTIATE_TEST_SUITE_P(
    Designs, ShadowOracle,
    ::testing::Values(DesignKind::Baseline, DesignKind::Tvarak,
                      DesignKind::TxBObjectCsums,
                      DesignKind::TxBPageCsums),
    [](const auto &info) {
        std::string n = designName(info.param);
        std::erase(n, '-');
        return n;
    });

class AblationOracle
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>>
{};

TEST_P(AblationOracle, FunctionalUnderEveryTvarakConfig)
{
    auto [dax_cl, red_cache, diffs] = GetParam();
    SimConfig cfg = test::smallConfig();
    cfg.tvarak.useDaxClChecksums = dax_cl;
    cfg.tvarak.useRedundancyCaching = red_cache;
    cfg.tvarak.useDataDiffs = diffs;
    MemorySystem mem(cfg, DesignKind::Tvarak);
    DaxFs fs(mem);
    const std::size_t bytes = 16 * kPageBytes;
    int fd = fs.create("oracle", bytes);
    Addr base = fs.daxMap(fd);
    std::vector<std::uint8_t> shadow(bytes, 0);
    Rng rng(7 + (dax_cl ? 1 : 0) + (red_cache ? 2 : 0) +
            (diffs ? 4 : 0));

    for (int step = 0; step < 4000; step++) {
        std::size_t off = rng.nextBounded(bytes - 8);
        if (rng.nextBool(0.5)) {
            std::uint64_t v = rng.next();
            mem.write(0, base + off, &v, 8);
            std::memcpy(shadow.data() + off, &v, 8);
        } else {
            std::uint64_t v;
            mem.read(0, base + off, &v, 8);
            std::uint64_t expect;
            std::memcpy(&expect, shadow.data() + off, 8);
            ASSERT_EQ(v, expect) << "step " << step;
        }
        if (step % 1000 == 999)
            mem.dropCaches();
    }
}

INSTANTIATE_TEST_SUITE_P(Configs, AblationOracle,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

TEST(MapUnmapProperty, RepeatedCyclesPreserveDataAndCoverage)
{
    MemorySystem mem(test::smallConfig(), DesignKind::Tvarak);
    DaxFs fs(mem);
    constexpr std::size_t kFilePages = 8;
    const std::size_t bytes = kFilePages * kPageBytes;
    int fd = fs.create("cycling", bytes);
    std::vector<std::uint8_t> shadow(bytes, 0);
    Rng rng(55);

    for (int cycle = 0; cycle < 6; cycle++) {
        Addr base = fs.daxMap(fd);
        for (int i = 0; i < 300; i++) {
            std::size_t off = rng.nextBounded(bytes - 8);
            std::uint64_t v = rng.next();
            mem.write(0, base + off, &v, 8);
            std::memcpy(shadow.data() + off, &v, 8);
        }
        fs.daxUnmap(fd);
        // Unmapped: page checksums cover the file; FS reads verify.
        std::size_t off = rng.nextBounded(bytes - 64);
        std::uint8_t buf[64];
        ASSERT_TRUE(fs.pread(0, fd, off, buf, sizeof(buf)));
        ASSERT_EQ(std::memcmp(buf, shadow.data() + off, sizeof(buf)), 0)
            << "cycle " << cycle;
        EXPECT_EQ(fs.scrub(false), 0u) << "cycle " << cycle;
        // FS-path writes while unmapped join the shadow too.
        std::uint8_t wbuf[32];
        for (auto &b : wbuf)
            b = static_cast<std::uint8_t>(rng.next());
        std::size_t woff = rng.nextBounded(bytes - sizeof(wbuf));
        fs.pwrite(0, fd, woff, wbuf, sizeof(wbuf));
        std::memcpy(shadow.data() + woff, wbuf, sizeof(wbuf));
    }
    Addr base = fs.daxMap(fd);
    std::uint8_t buf[kLineBytes];
    for (std::size_t off = 0; off < bytes; off += 1031) {
        std::size_t len = std::min<std::size_t>(64, bytes - off);
        mem.read(0, base + off, buf, len);
        ASSERT_EQ(std::memcmp(buf, shadow.data() + off, len), 0);
    }
}

TEST(PoolProperty, TransactionAbortsNeverLeak)
{
    MemorySystem mem(test::smallConfig(), DesignKind::Tvarak);
    DaxFs fs(mem);
    PmemPool pool(mem, fs, "p", 2ull << 20, nullptr, 1);
    Rng rng(77);
    Addr obj = pool.alloc(0, 256);
    std::vector<std::uint8_t> shadow(256, 0);
    std::uint8_t buf[64];

    for (int i = 0; i < 300; i++) {
        std::size_t off = rng.nextBounded(256 - 32);
        std::size_t len = 1 + rng.nextBounded(32);
        for (std::size_t j = 0; j < len; j++)
            buf[j] = static_cast<std::uint8_t>(rng.next());
        pool.txBegin(0);
        pool.txWrite(0, obj + off, buf, len);
        if (rng.nextBool(0.4)) {
            pool.txAbort(0);  // must restore shadow state
        } else {
            pool.txCommit(0);
            std::memcpy(shadow.data() + off, buf, len);
        }
        std::uint8_t cur[256];
        mem.read(0, obj, cur, sizeof(cur));
        ASSERT_EQ(std::memcmp(cur, shadow.data(), 256), 0)
            << "iteration " << i;
    }
    mem.flushAll();
    EXPECT_EQ(fs.scrub(false), 0u);
    EXPECT_EQ(fs.verifyParity(), 0u);
}

}  // namespace
}  // namespace tvarak
