/**
 * @file
 * Crash-consistency tests: NVM image checkpointing across simulator
 * "power cycles" plus PmemPool reattach recovery (undo-log rollback of
 * interrupted transactions, allocator-index rebuild). Together these
 * model the full life cycle the paper assumes: battery-backed caches
 * flush on power failure, NVM survives, software recovers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>

#include "apps/trees/pmem_map.hh"
#include "pmemlib/pmem_pool.hh"
#include "test_util.hh"

namespace tvarak {
namespace {

// Size of the checkpointed test file, in pages.
constexpr std::size_t kFilePages = 8;

struct TempImage {
    std::string path;
    TempImage()
    {
        char buf[] = "/tmp/tvarak-img-XXXXXX";
        int fd = mkstemp(buf);
        if (fd >= 0)
            close(fd);
        path = buf;
    }
    ~TempImage() { std::remove(path.c_str()); }
};

TEST(Checkpoint, PowerCyclePreservesFlushedData)
{
    TempImage img;
    {
        MemorySystem mem(test::smallConfig(), DesignKind::Tvarak);
        DaxFs fs(mem);
        int fd = fs.create("data", 16 * kPageBytes);
        Addr base = fs.daxMap(fd);
        mem.write64(0, base + 4096, 0xfeedface);
        ASSERT_TRUE(mem.saveNvmImage(img.path));  // battery flush + save
    }
    {
        // A fresh machine boots from the image; the file system's
        // superblock brings the namespace back (unmapped, like any
        // DAX file system after reboot).
        MemorySystem mem(test::smallConfig(), DesignKind::Tvarak);
        ASSERT_TRUE(mem.loadNvmImage(img.path));
        DaxFs fs(mem);
        int fd = fs.open("data");
        ASSERT_GE(fd, 0) << "namespace persisted in the superblock";
        EXPECT_FALSE(fs.isMapped(fd));
        Addr base = fs.daxMap(fd);
        EXPECT_EQ(mem.read64(0, base + 4096), 0xfeedfaceull);
        EXPECT_EQ(fs.verifyParity(), 0u);
    }
}

TEST(Checkpoint, UnflushedDataDoesNotSurvive)
{
    TempImage img;
    MemorySystem mem(test::smallConfig(), DesignKind::Baseline);
    DaxFs fs(mem);
    int fd = fs.create("data", kFilePages * kPageBytes);
    Addr base = fs.daxMap(fd);
    mem.write64(0, base, 0xAAAA);
    mem.flushAll();
    mem.write64(0, base, 0xBBBB);
    // Save WITHOUT the implicit flush: raw media only.
    ASSERT_TRUE(mem.nvmArray().saveImage(img.path));

    MemorySystem mem2(test::smallConfig(), DesignKind::Baseline);
    ASSERT_TRUE(mem2.loadNvmImage(img.path));
    DaxFs fs2(mem2);
    int fd2 = fs2.open("data");
    ASSERT_GE(fd2, 0);
    EXPECT_EQ(mem2.read64(0, fs2.daxMap(fd2)), 0xAAAAull)
        << "cache-resident data is lost without the battery flush";
}

TEST(Checkpoint, GeometryMismatchRejected)
{
    TempImage img;
    MemorySystem mem(test::smallConfig(), DesignKind::Baseline);
    ASSERT_TRUE(mem.saveNvmImage(img.path));
    SimConfig other = test::smallConfig();
    other.nvm.dimmBytes *= 2;
    MemorySystem mem2(other, DesignKind::Baseline);
    EXPECT_FALSE(mem2.loadNvmImage(img.path));
}

class PoolRecovery : public ::testing::Test
{
  protected:
    PoolRecovery()
        : mem(test::smallConfig(), DesignKind::Tvarak), fs(mem)
    {}

    MemorySystem mem;
    DaxFs fs;
};

TEST_F(PoolRecovery, InterruptedTransactionRollsBack)
{
    Addr obj;
    {
        PmemPool pool(mem, fs, "p", 2ull << 20, nullptr, 1);
        obj = pool.alloc(0, 64);
        std::uint64_t committed = 0x600d;
        pool.txBegin(0);
        pool.txWrite(0, obj, &committed, 8);
        pool.txCommit(0);

        // Crash mid-transaction: data written, commit never reached.
        std::uint64_t torn = 0xbad;
        pool.txBegin(0);
        pool.txWrite(0, obj, &torn, 8);
        EXPECT_EQ(mem.read64(0, obj), 0xbadull);
        // The pool object goes away without commit/abort (process
        // death); battery flush pushes caches to NVM.
        mem.flushAll();
    }
    PmemPool again(mem, fs, "p", 2ull << 20, nullptr, 1);
    EXPECT_TRUE(again.recoveredFromCrash());
    EXPECT_EQ(mem.read64(0, obj), 0x600dull)
        << "recovery must roll the torn write back";
    // The recovered pool is fully usable.
    std::uint64_t v = 0x1234;
    again.txBegin(0);
    again.txWrite(0, obj, &v, 8);
    again.txCommit(0);
    EXPECT_EQ(mem.read64(0, obj), 0x1234ull);
}

TEST_F(PoolRecovery, CleanShutdownIsNotACrash)
{
    {
        PmemPool pool(mem, fs, "p", 2ull << 20, nullptr, 1);
        Addr obj = pool.alloc(0, 64);
        std::uint64_t v = 1;
        pool.txBegin(0);
        pool.txWrite(0, obj, &v, 8);
        pool.txCommit(0);
    }
    PmemPool again(mem, fs, "p", 2ull << 20, nullptr, 1);
    EXPECT_FALSE(again.recoveredFromCrash());
}

TEST_F(PoolRecovery, AllocatorIndexRebuiltOnReattach)
{
    Addr a, b;
    {
        PmemPool pool(mem, fs, "p", 2ull << 20, nullptr, 1);
        a = pool.alloc(0, 100);
        b = pool.alloc(0, 100);
        pool.free(0, a);  // a free slot that must be rediscovered
        EXPECT_EQ(pool.liveObjects(), 1u);
    }
    PmemPool again(mem, fs, "p", 2ull << 20, nullptr, 1);
    EXPECT_EQ(again.liveObjects(), 1u) << "index rebuilt from headers";
    EXPECT_EQ(again.objectSize(b), 100u);
    // The freed slot is recycled by the rebuilt free list.
    Addr c = again.alloc(0, 100);
    EXPECT_EQ(c, a);
}

TEST_F(PoolRecovery, TreeSurvivesCrashDuringInsert)
{
    TempImage img;
    std::uint8_t val[64];
    {
        PmemPool pool(mem, fs, "p", 4ull << 20, nullptr, 1);
        auto map = makeMap(MapKind::RBTree, mem, pool, 64);
        for (std::uint64_t k = 0; k < 200; k++) {
            std::memset(val, static_cast<int>(k & 0xff), sizeof(val));
            map->insert(0, k, val);
        }
        // Begin an insert but "crash" before commit: leave the tx
        // open with a partially linked node.
        pool.txBegin(0);
        Addr node = pool.alloc(0, 64);
        std::uint64_t junk = 0xdeadbeef;
        pool.txWrite(0, node, &junk, 8);
        mem.saveNvmImage(img.path);  // power fails here
    }
    // Reboot.
    MemorySystem mem2(test::smallConfig(), DesignKind::Tvarak);
    ASSERT_TRUE(mem2.loadNvmImage(img.path));
    DaxFs fs2(mem2);
    PmemPool pool2(mem2, fs2, "p", 4ull << 20, nullptr, 1);
    EXPECT_TRUE(pool2.recoveredFromCrash());
    auto map2 = makeMap(MapKind::RBTree, mem2, pool2, 64);
    std::uint8_t got[64];
    for (std::uint64_t k = 0; k < 200; k += 13) {
        ASSERT_TRUE(map2->get(0, k, got)) << "key " << k;
        EXPECT_EQ(got[0], static_cast<std::uint8_t>(k & 0xff));
    }
}

}  // namespace
}  // namespace tvarak
