/**
 * @file
 * TVARAK engine integration tests.
 *
 * These exercise the paper's core claims end-to-end on the real
 * system: every NVM->LLC fill of a DAX line is verified, every
 * LLC->NVM writeback updates DAX-CL-checksums and cross-DIMM parity,
 * injected firmware bugs (lost write / misdirected write / misdirected
 * read) are detected on first read and repaired from parity, and the
 * at-rest invariants (checksums match lines, parity matches stripes)
 * hold after arbitrary workloads under every ablation configuration.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "checksum/checksum.hh"
#include "fs/dax_fs.hh"
#include "mem/memory_system.hh"
#include "sim/rng.hh"
#include "test_util.hh"

namespace tvarak {
namespace {

// Size of the DAX-backed test file, in pages.
constexpr std::size_t kFilePages = 64;

/** Verify all at-rest redundancy for a mapped file: every line's
 *  DAX-CL-checksum and every stripe's parity. */
::testing::AssertionResult
atRestConsistent(MemorySystem &mem, DaxFs &fs, int /*fd*/)
{
    mem.flushAll();
    std::size_t bad = fs.scrub(false);
    if (bad != 0) {
        return ::testing::AssertionFailure()
            << bad << " lines fail checksum verification";
    }
    std::size_t parity_bad = fs.verifyParity();
    if (parity_bad != 0) {
        return ::testing::AssertionFailure()
            << parity_bad << " stripes violate the parity invariant";
    }
    return ::testing::AssertionSuccess();
}

class TvarakTest : public ::testing::Test
{
  protected:
    void build(DesignKind design, SimConfig cfg = test::smallConfig())
    {
        mem = std::make_unique<MemorySystem>(cfg, design);
        fs = std::make_unique<DaxFs>(*mem);
        fd = fs->create("data", kFilePages * kPageBytes);
        base = fs->daxMap(fd);
    }

    std::unique_ptr<MemorySystem> mem;
    std::unique_ptr<DaxFs> fs;
    int fd = -1;
    Addr base = 0;
};

TEST_F(TvarakTest, FillsAreVerified)
{
    build(DesignKind::Tvarak);
    mem->stats().reset();
    (void)mem->read64(0, base);  // cold fill
    EXPECT_EQ(mem->stats().readVerifications, 1u);
    (void)mem->read64(0, base);  // hit: no verification
    EXPECT_EQ(mem->stats().readVerifications, 1u);
}

TEST_F(TvarakTest, WritebacksUpdateRedundancy)
{
    build(DesignKind::Tvarak);
    mem->stats().reset();
    mem->write64(0, base, 1234);
    EXPECT_EQ(mem->stats().redundancyUpdates, 0u);
    mem->flushAll();
    EXPECT_GE(mem->stats().redundancyUpdates, 1u);
    EXPECT_GE(mem->stats().diffCaptures, 1u);

    // The at-rest checksum now matches the new data...
    Addr line = fs->filePage(fd, 0);
    std::uint8_t data[kLineBytes];
    mem->nvmArray().rawRead(line, data, kLineBytes);
    std::uint64_t stored;
    mem->nvmArray().rawRead(mem->layout().daxClCsumAddr(line), &stored,
                            8);
    EXPECT_EQ(stored, lineChecksum(data));
}

TEST_F(TvarakTest, RandomWorkloadKeepsInvariants)
{
    build(DesignKind::Tvarak);
    Rng rng(42);
    for (int i = 0; i < 20000; i++) {
        Addr a = base + rng.nextBounded(kFilePages * kPageBytes - 8);
        if (rng.nextBool(0.5))
            mem->write64(static_cast<int>(rng.nextBounded(2)), a,
                         rng.next());
        else
            (void)mem->read64(static_cast<int>(rng.nextBounded(2)), a);
    }
    EXPECT_TRUE(atRestConsistent(*mem, *fs, fd));
}

struct AblationParam {
    bool daxCl;
    bool redCache;
    bool diffs;
};

class TvarakAblation
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool>>
{};

TEST_P(TvarakAblation, InvariantsHoldInEveryConfiguration)
{
    auto [dax_cl, red_cache, diffs] = GetParam();
    SimConfig cfg = test::smallConfig();
    cfg.tvarak.useDaxClChecksums = dax_cl;
    cfg.tvarak.useRedundancyCaching = red_cache;
    cfg.tvarak.useDataDiffs = diffs;
    MemorySystem mem(cfg, DesignKind::Tvarak);
    DaxFs fs(mem);
    int fd = fs.create("data", 32 * kPageBytes);
    Addr base = fs.daxMap(fd);

    Rng rng(7);
    for (int i = 0; i < 5000; i++) {
        Addr a = base + rng.nextBounded(32 * kPageBytes - 8);
        if (rng.nextBool(0.6))
            mem.write64(0, a, rng.next());
        else
            (void)mem.read64(0, a);
    }
    mem.flushAll();
    EXPECT_EQ(fs.verifyParity(), 0u);
    if (dax_cl) {
        EXPECT_EQ(fs.scrub(false), 0u);
    } else {
        // Page-granular naive mode: verify page checksums directly.
        for (std::size_t p = 0; p < 32; p++) {
            Addr page = fs.filePage(fd, p);
            std::uint8_t buf[kPageBytes];
            mem.nvmArray().rawRead(page, buf, kPageBytes);
            std::uint64_t stored;
            mem.nvmArray().rawRead(mem.layout().pageCsumAddr(page),
                                   &stored, 8);
            EXPECT_EQ(stored, pageChecksum(buf)) << "page " << p;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Configs, TvarakAblation,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

//
// Fault injection: the three firmware bug classes of Section II.
//

class TvarakFaults : public TvarakTest {};

TEST_F(TvarakFaults, LostWriteDetectedAndRecovered)
{
    build(DesignKind::Tvarak);
    Addr target = fs->filePage(fd, 3) + 5 * kLineBytes;
    Addr vaddr = base + 3 * kPageBytes + 5 * kLineBytes;

    mem->write64(0, vaddr, 0x1111);
    mem->flushAll();  // v1 at rest
    mem->write64(0, vaddr, 0x2222);

    // The *next* writeback of this line is lost by the firmware.
    auto &dimm = mem->nvmArray().dimm(mem->nvmArray().dimmOf(target));
    dimm.injectLostWrite(mem->nvmArray().mediaAddrOf(target));
    mem->dropCaches();  // cold restart: next read must go to media
    EXPECT_EQ(dimm.bugsTriggered(), 1u);

    // Media still holds v1; device ECC is clean (blind to the bug).
    std::uint64_t at_rest = 0;
    mem->nvmArray().rawRead(target, &at_rest, 8);
    EXPECT_EQ(at_rest, 0x1111u);
    EXPECT_TRUE(dimm.eccCheck(mem->nvmArray().mediaAddrOf(target)));

    // TVARAK detects the mismatch on the next read and recovers the
    // *acknowledged* value from parity.
    mem->stats().reset();
    EXPECT_EQ(mem->read64(0, vaddr), 0x2222u);
    EXPECT_EQ(mem->stats().corruptionsDetected, 1u);
    EXPECT_EQ(mem->stats().recoveries, 1u);
    // Media repaired in place.
    mem->nvmArray().rawRead(target, &at_rest, 8);
    EXPECT_EQ(at_rest, 0x2222u);
    EXPECT_TRUE(atRestConsistent(*mem, *fs, fd));
}

TEST_F(TvarakFaults, MisdirectedWriteVictimRecovered)
{
    build(DesignKind::Tvarak);
    // Intended target and victim: different pages on the same DIMM
    // (misdirection happens within one device's firmware).
    auto &nvm = mem->nvmArray();
    Addr intended = fs->filePage(fd, 0);
    std::size_t victim_idx = 1;
    while (nvm.dimmOf(fs->filePage(fd, victim_idx)) !=
           nvm.dimmOf(intended)) {
        victim_idx++;
    }
    Addr victim = fs->filePage(fd, victim_idx);
    Addr v_intended = base;
    Addr v_victim = base + victim_idx * kPageBytes;

    mem->write64(0, v_victim, 0xAAAA);
    mem->flushAll();

    auto &dimm = nvm.dimm(nvm.dimmOf(intended));
    dimm.injectMisdirectedWrite(nvm.mediaAddrOf(intended),
                                nvm.mediaAddrOf(victim));
    mem->write64(0, v_intended, 0xBBBB);
    mem->dropCaches();
    EXPECT_EQ(dimm.bugsTriggered(), 1u);

    // The victim's media is corrupted with the intended line's data;
    // reading the victim detects and repairs it.
    mem->stats().reset();
    EXPECT_EQ(mem->read64(1, v_victim), 0xAAAAu);
    EXPECT_GE(mem->stats().corruptionsDetected, 1u);

    // The intended line's media never got its data; reading it
    // recovers the acknowledged value from parity too.
    EXPECT_EQ(mem->read64(1, v_intended), 0xBBBBu);
    EXPECT_TRUE(atRestConsistent(*mem, *fs, fd));
}

TEST_F(TvarakFaults, MisdirectedReadDetectedViaRetry)
{
    build(DesignKind::Tvarak);
    auto &nvm = mem->nvmArray();
    Addr a = fs->filePage(fd, 2);
    std::size_t b_idx = 3;
    while (nvm.dimmOf(fs->filePage(fd, b_idx)) != nvm.dimmOf(a))
        b_idx++;
    Addr b = fs->filePage(fd, b_idx);

    mem->write64(0, base + 2 * kPageBytes, 0xCCCC);
    mem->write64(0, base + b_idx * kPageBytes, 0xDDDD);
    mem->dropCaches();

    auto &dimm = nvm.dimm(nvm.dimmOf(a));
    dimm.injectMisdirectedRead(nvm.mediaAddrOf(a), nvm.mediaAddrOf(b));
    mem->stats().reset();
    EXPECT_EQ(mem->read64(1, base + 2 * kPageBytes), 0xCCCCu)
        << "misdirected read must be caught and retried";
    EXPECT_EQ(mem->stats().corruptionsDetected, 1u);
    EXPECT_TRUE(atRestConsistent(*mem, *fs, fd));
}

TEST_F(TvarakFaults, BaselineSilentlyConsumesCorruption)
{
    build(DesignKind::Baseline);
    Addr vaddr = base + kPageBytes;
    Addr target = fs->filePage(fd, 1);
    mem->write64(0, vaddr, 0x1111);
    mem->flushAll();
    mem->write64(0, vaddr, 0x2222);
    auto &dimm = mem->nvmArray().dimm(mem->nvmArray().dimmOf(target));
    dimm.injectLostWrite(mem->nvmArray().mediaAddrOf(target));
    mem->dropCaches();
    mem->stats().reset();
    // Baseline returns stale data with no detection whatsoever.
    EXPECT_EQ(mem->read64(1, vaddr), 0x1111u);
    EXPECT_EQ(mem->stats().corruptionsDetected, 0u);
}

TEST_F(TvarakFaults, RecoveryUnderNaivePageChecksums)
{
    SimConfig cfg = test::smallConfig();
    cfg.tvarak.useDaxClChecksums = false;
    build(DesignKind::Tvarak, cfg);
    Addr vaddr = base + 2 * kPageBytes + 9 * kLineBytes;
    Addr target = fs->filePage(fd, 2) + 9 * kLineBytes;
    mem->write64(0, vaddr, 0x3333);
    mem->flushAll();
    mem->write64(0, vaddr, 0x4444);
    auto &dimm = mem->nvmArray().dimm(mem->nvmArray().dimmOf(target));
    dimm.injectLostWrite(mem->nvmArray().mediaAddrOf(target));
    mem->dropCaches();
    mem->stats().reset();
    EXPECT_EQ(mem->read64(0, vaddr), 0x4444u);
    EXPECT_GE(mem->stats().corruptionsDetected, 1u);
}

//
// Structural checks
//

TEST(TvarakArea, DedicatedAreaMatchesPaper)
{
    SimConfig cfg;  // full Table III machine
    MemorySystem mem(cfg, DesignKind::Tvarak);
    double fraction =
        static_cast<double>(
            mem.tvarak().dedicatedBytesPerController()) /
        static_cast<double>(cfg.llcBank.sizeBytes);
    EXPECT_NEAR(fraction, 0.002, 0.0001)
        << "paper: 4KB per 2MB bank = 0.2% dedicated area";
}

TEST(TvarakCaching, RedundancyCachingCutsNvmTraffic)
{
    SimConfig cached_cfg = test::smallConfig();
    SimConfig uncached_cfg = cached_cfg;
    uncached_cfg.tvarak.useRedundancyCaching = false;

    auto run = [](SimConfig cfg) {
        MemorySystem mem(cfg, DesignKind::Tvarak);
        DaxFs fs(mem);
        int fd = fs.create("d", 32 * kPageBytes);
        Addr base = fs.daxMap(fd);
        mem.stats().reset();
        // Sequential read sweep: high checksum-line reuse (8 data
        // lines per checksum line).
        for (Addr a = 0; a < 32 * kPageBytes; a += kLineBytes)
            (void)mem.read64(0, base + a);
        return mem.stats().nvmRedundancyReads;
    };
    std::uint64_t with_cache = run(cached_cfg);
    std::uint64_t without = run(uncached_cfg);
    EXPECT_LT(with_cache, without / 4)
        << "caching must exploit checksum-line reuse";
}

TEST(TvarakDiffs, DiffsAvoidOldDataReads)
{
    SimConfig with_cfg = test::smallConfig();
    SimConfig without_cfg = with_cfg;
    without_cfg.tvarak.useDataDiffs = false;

    auto run = [](SimConfig cfg) {
        MemorySystem mem(cfg, DesignKind::Tvarak);
        DaxFs fs(mem);
        int fd = fs.create("d", 16 * kPageBytes);
        Addr base = fs.daxMap(fd);
        // Warm all lines so later writes hit.
        for (Addr a = 0; a < 16 * kPageBytes; a += kLineBytes)
            (void)mem.read64(0, base + a);
        mem.stats().reset();
        for (Addr a = 0; a < 16 * kPageBytes; a += kLineBytes)
            mem.write64(0, base + a, a);
        mem.flushAll();
        return mem.stats().nvmDataReads;
    };
    EXPECT_LT(run(with_cfg), run(without_cfg));
}

}  // namespace
}  // namespace tvarak
