/**
 * @file
 * Service front-end tests: seeded arrival streams replay exactly, the
 * log-bucketed histogram tracks exact percentiles within its error
 * bound, the dispatcher's cycle accounting is conserved, and sweeps
 * are bit-identical for any worker count.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "redundancy/registry.hh"
#include "service/arrival.hh"
#include "service/histogram.hh"
#include "service/sweep.hh"
#include "sim/rng.hh"
#include "test_util.hh"

using namespace tvarak;
using namespace tvarak::service;

namespace {

std::vector<Cycles>
gaps(const ArrivalParams &p, std::size_t n)
{
    std::unique_ptr<ArrivalProcess> a = makeArrivalProcess(p);
    std::vector<Cycles> out;
    for (std::size_t i = 0; i < n; i++)
        out.push_back(a->nextGap());
    return out;
}

double
meanOf(const std::vector<Cycles> &v)
{
    double sum = 0;
    for (Cycles g : v)
        sum += static_cast<double>(g);
    return sum / static_cast<double>(v.size());
}

// ---------------------------------------------------------- arrivals

TEST(Arrival, SameSeedReplaysExactly)
{
    for (ArrivalKind kind : {ArrivalKind::Poisson, ArrivalKind::Bursty}) {
        ArrivalParams p;
        p.kind = kind;
        p.meanGapCycles = 500.0;
        p.seed = 42;
        EXPECT_EQ(gaps(p, 4096), gaps(p, 4096));

        ArrivalParams q = p;
        q.seed = 43;
        EXPECT_NE(gaps(p, 4096), gaps(q, 4096));
    }
}

TEST(Arrival, PoissonMeanMatchesOfferedRate)
{
    ArrivalParams p;
    p.kind = ArrivalKind::Poisson;
    p.meanGapCycles = 1000.0;
    double mean = meanOf(gaps(p, 65536));
    EXPECT_NEAR(mean, 1000.0, 25.0) << "exponential gaps, mean 1/lambda";
}

TEST(Arrival, BurstyPreservesLongRunRate)
{
    // The ON-OFF stream must offer the same long-run rate as Poisson
    // at the same meanGapCycles: short intra-burst gaps are paid for
    // by long OFF gaps.
    ArrivalParams p;
    p.kind = ArrivalKind::Bursty;
    p.meanGapCycles = 1000.0;
    std::vector<Cycles> g = gaps(p, 65536);
    EXPECT_NEAR(meanOf(g), 1000.0, 50.0);
    // And it must actually be bursty: the minimum gap is the
    // intra-burst spacing, far below the mean.
    Cycles shortest = *std::min_element(g.begin(), g.end());
    EXPECT_LE(shortest, static_cast<Cycles>(
                  p.burstGapFactor * p.meanGapCycles) + 1);
}

TEST(Arrival, ClosedLoopLimitIsUnitGap)
{
    ArrivalParams p;
    p.meanGapCycles = 0.0;  // closed loop
    for (Cycles g : gaps(p, 64))
        EXPECT_EQ(g, 1u);
}

// --------------------------------------------------------- histogram

TEST(Histogram, BucketGeometryRoundTrips)
{
    // Exact unit buckets below 16.
    for (Cycles v = 0; v < 16; v++) {
        EXPECT_EQ(LatencyHistogram::bucketIndex(v), v);
        EXPECT_EQ(LatencyHistogram::bucketUpper(v), v);
    }
    // Every value must land in a bucket whose range contains it.
    for (Cycles v : {16ull, 17ull, 255ull, 256ull, 4095ull, 1ull << 40}) {
        std::size_t idx = LatencyHistogram::bucketIndex(v);
        EXPECT_LE(v, LatencyHistogram::bucketUpper(idx));
        if (idx > 0) {
            EXPECT_GT(v, LatencyHistogram::bucketUpper(idx - 1));
        }
    }
}

TEST(Histogram, PercentilesTrackExactReferenceWithinBound)
{
    // Record a heavy-tailed sample and compare against the exact
    // sorted reference: the reported quantile must be >= the exact one
    // (upper bucket edge) and within the 1/16 relative error bound.
    Rng rng(7);
    LatencyHistogram h;
    std::vector<Cycles> exact;
    for (int i = 0; i < 100000; i++) {
        double u = rng.nextDouble();
        Cycles v = static_cast<Cycles>(std::pow(10.0, 2.0 + 4.0 * u));
        h.record(v);
        exact.push_back(v);
    }
    std::sort(exact.begin(), exact.end());
    for (double q : {0.50, 0.90, 0.99, 0.999}) {
        std::size_t rank = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(exact.size())));
        Cycles ref = exact[rank - 1];
        Cycles got = h.percentile(q);
        EXPECT_GE(got, ref) << "q=" << q;
        EXPECT_LE(static_cast<double>(got),
                  static_cast<double>(ref) * (1.0 + 1.0 / 16.0) + 1.0)
            << "q=" << q;
    }
    EXPECT_EQ(h.count(), exact.size());
    EXPECT_EQ(h.min(), exact.front());
    EXPECT_EQ(h.max(), exact.back());
    EXPECT_EQ(h.percentile(1.0), exact.back())
        << "p100 clamps to the observed max";
}

TEST(Histogram, MergeEqualsRecordingEverything)
{
    Rng rng(3);
    LatencyHistogram all, a, b;
    for (int i = 0; i < 4096; i++) {
        Cycles v = rng.nextBounded(1u << 20);
        all.record(v);
        (i % 2 ? a : b).record(v);
    }
    a.merge(b);
    EXPECT_EQ(a, all);
    EXPECT_NE(a, b);
}

// -------------------------------------------------------- dispatcher

ServiceConfig
tinyService()
{
    ServiceConfig svc;
    svc.workload = "redis-set";
    svc.servers = 2;  // smallConfig() has 2 cores
    svc.requests = 192;
    svc.arrival.meanGapCycles = 2000.0;
    svc.arrival.seed = 9;
    return svc;
}

TEST(Service, AccountingIsConserved)
{
    const Design *d = findDesign("baseline");
    ASSERT_NE(d, nullptr);
    ServiceResult r = runService(test::smallConfig(), *d, tinyService());
    const ServiceStats &s = r.service;

    EXPECT_EQ(s.requests, 192u);
    EXPECT_EQ(s.completed, 192u) << "open loop completes every request";
    EXPECT_EQ(s.latency.count(), s.completed);
    EXPECT_EQ(s.totalLatencyCycles,
              s.totalQueueCycles + s.totalServiceCycles)
        << "latency = queueing delay + service time, exactly";
    EXPECT_GT(s.totalServiceCycles, 0u);
    EXPECT_GE(s.spanCycles, s.lastArrivalCycle);
    EXPECT_GT(s.offeredPerMcycle, 0.0);
    EXPECT_GT(s.achievedPerMcycle, 0.0);
    EXPECT_GE(s.maxOutstanding, 1u);
}

TEST(Service, SameSeedIsBitIdentical)
{
    const Design *d = findDesign("tvarak");
    ASSERT_NE(d, nullptr);
    ServiceResult a = runService(test::smallConfig(), *d, tinyService());
    ServiceResult b = runService(test::smallConfig(), *d, tinyService());
    EXPECT_EQ(serviceStatsDiff(a.service, b.service), "");
    EXPECT_EQ(statsDiff(a.sim, b.sim), "");

    ServiceConfig other = tinyService();
    other.arrival.seed = 10;
    ServiceResult c = runService(test::smallConfig(), *d, other);
    EXPECT_NE(serviceStatsDiff(a.service, c.service), "");
}

TEST(Service, SweepIsJobCountInvariant)
{
    // Every (design x load) point is an independent machine; the
    // assembled sweep must be bit-identical for any worker count.
    std::vector<const Design *> designs = {findDesign("baseline"),
                                           findDesign("vilamb")};
    ASSERT_NE(designs[0], nullptr);
    ASSERT_NE(designs[1], nullptr);
    ServiceConfig svc = tinyService();
    svc.requests = 96;
    SimConfig cfg = test::smallConfig();

    std::vector<double> cap1 = calibrateCapacities(cfg, designs, svc, 1);
    std::vector<double> cap4 = calibrateCapacities(cfg, designs, svc, 4);
    ASSERT_EQ(cap1.size(), 2u);
    for (std::size_t i = 0; i < cap1.size(); i++)
        EXPECT_EQ(cap1[i], cap4[i]) << designs[i]->cliName();

    const std::vector<double> fracs = {0.5, 1.0};
    std::vector<DesignSweep> s1 =
        runSweep(cfg, designs, svc, cap1, fracs, 1);
    std::vector<DesignSweep> s4 =
        runSweep(cfg, designs, svc, cap4, fracs, 4);
    ASSERT_EQ(s1.size(), s4.size());
    for (std::size_t d = 0; d < s1.size(); d++) {
        EXPECT_EQ(s1[d].kneeIndex, s4[d].kneeIndex);
        ASSERT_EQ(s1[d].points.size(), s4[d].points.size());
        for (std::size_t i = 0; i < s1[d].points.size(); i++) {
            EXPECT_EQ(serviceStatsDiff(s1[d].points[i].result.service,
                                       s4[d].points[i].result.service),
                      "")
                << designs[d]->cliName() << " point " << i;
        }
    }
}

TEST(Service, KneeDetectionUsesPrefixSemantics)
{
    auto mkSweep = [](std::vector<std::pair<double, double>> points) {
        DesignSweep sw;
        for (auto [offered, achieved] : points) {
            SweepPoint p;
            p.result.service.offeredPerMcycle = offered;
            p.result.service.achievedPerMcycle = achieved;
            sw.points.push_back(p);
        }
        detectKnee(sw);
        return sw;
    };
    // Monotone-then-saturating: knee at the last sustained point.
    EXPECT_EQ(mkSweep({{10, 10}, {20, 20}, {30, 24}}).kneeIndex, 1);
    // Saturated from the first point: no knee.
    EXPECT_EQ(mkSweep({{10, 5}, {20, 6}}).kneeIndex, -1);
    // A sustained point after a saturated one is a finite-run artifact
    // and must not resurrect the knee.
    EXPECT_EQ(mkSweep({{10, 10}, {20, 15}, {30, 30}}).kneeIndex, 0);
}

TEST(Service, FaultScheduleCompletesWithRebuild)
{
    const Design *d = findDesign("tvarak");
    ASSERT_NE(d, nullptr);
    ASSERT_TRUE(d->maintainsMappedParity());
    ServiceConfig svc = tinyService();
    svc.requests = 128;
    svc.failAtRequest = 32;
    svc.replaceAtRequest = 64;
    ServiceResult r = runService(test::smallConfig(), *d, svc);
    EXPECT_EQ(r.service.completed, 128u)
        << "degraded mode absorbs every request";
    EXPECT_GT(r.service.rebuildIdleLines, 0u)
        << "rebuild progressed in reactor idle gaps";

    // The fault path must not break determinism.
    ServiceResult r2 = runService(test::smallConfig(), *d, svc);
    EXPECT_EQ(serviceStatsDiff(r.service, r2.service), "");
}

TEST(Service, MultiDimmFaultScheduleCompletesWithRebuild)
{
    // Staggered two-DIMM schedule under an erasure-coded design: DIMM 1
    // fails while DIMM 0's rebuild is still in flight, so the run
    // passes through genuine two-failure operation. The open loop must
    // still complete every request, the single rebuild engine must
    // adopt both DIMMs, and the whole thing must stay deterministic.
    const Design *d = findDesign("tvarak-rs4+2");
    ASSERT_NE(d, nullptr);
    ASSERT_GE(d->survivableFailures(), 2u);
    ServiceConfig svc = tinyService();
    svc.requests = 160;
    svc.faults = {{0, 32, 64}, {1, 80, 112}};
    ServiceResult r = runService(test::smallConfig(), *d, svc);
    EXPECT_EQ(r.service.completed, 160u)
        << "two-failure operation absorbs every request";
    EXPECT_GT(r.service.rebuildIdleLines, 0u)
        << "rebuild progressed in reactor idle gaps";
    EXPECT_GT(r.sim.rebuildLines, 0u);
    EXPECT_EQ(r.sim.corruptionsDetected, 0u)
        << "a 2-of-6 schedule is inside rs4+2's budget";

    ServiceResult r2 = runService(test::smallConfig(), *d, svc);
    EXPECT_EQ(serviceStatsDiff(r.service, r2.service), "");
}

}  // namespace
