/**
 * @file
 * The paper's headline claims as executable assertions. Each test
 * runs a scaled-down experiment on the small test machine and checks
 * the *qualitative* result the paper reports — who wins, in which
 * direction, never absolute numbers. If a model change breaks one of
 * these, the reproduction has regressed.
 */

#include <gtest/gtest.h>

#include <memory>

#include "apps/fio/fio.hh"
#include "apps/redis/redis.hh"
#include "apps/trees/tree_workload.hh"
#include "harness/runner.hh"
#include "redundancy/scheme.hh"
#include "test_util.hh"

namespace tvarak {
namespace {

WorkloadFactory
treeInsertFactory(int instances = 2)
{
    return [instances](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        auto scheme = makeScheme(mem.design(), mem);
        WorkloadSet set;
        TreeWorkload::Params p;
        p.kind = MapKind::CTree;
        p.preload = 2048;
        p.ops = 4096;
        p.poolBytes = 4ull << 20;
        for (int t = 0; t < instances; t++) {
            set.workloads.push_back(std::make_unique<TreeWorkload>(
                mem, fs, t, scheme.get(), p));
        }
        set.shared = std::shared_ptr<void>(
            scheme.release(),
            [](void *q) { delete static_cast<RedundancyScheme *>(q); });
        return set;
    };
}

WorkloadFactory
redisFactory(RedisWorkload::Mode mode)
{
    return [mode](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        auto scheme = makeScheme(mem.design(), mem);
        WorkloadSet set;
        RedisWorkload::Params p;
        p.mode = mode;
        p.requests = 4096;
        p.keyspace = 4096;
        p.poolBytes = 4ull << 20;
        for (int t = 0; t < 2; t++) {
            set.workloads.push_back(std::make_unique<RedisWorkload>(
                mem, fs, t, scheme.get(), p));
        }
        set.shared = std::shared_ptr<void>(
            scheme.release(),
            [](void *q) { delete static_cast<RedundancyScheme *>(q); });
        return set;
    };
}

WorkloadFactory
fioFactory(FioWorkload::Pattern pattern)
{
    return [pattern](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        auto scheme = makeScheme(mem.design(), mem);
        WorkloadSet set;
        FioWorkload::Params p;
        p.pattern = pattern;
        p.regionBytes = 2ull << 20;
        // 12 threads on 4 DIMMs, as in the paper: the random-write
        // penalty is a bandwidth effect and needs the full machine.
        for (int t = 0; t < 12; t++) {
            set.workloads.push_back(std::make_unique<FioWorkload>(
                mem, fs, t, scheme.get(), p));
        }
        set.shared = std::shared_ptr<void>(
            scheme.release(),
            [](void *q) { delete static_cast<RedundancyScheme *>(q); });
        set.beforeMeasure = [](MemorySystem &m) { m.dropCaches(); };
        return set;
    };
}

Cycles
runtimeOf(DesignKind design, const WorkloadFactory &make)
{
    return runExperiment(test::smallConfig(), design, make)
        .runtimeCycles;
}

/** The Table III machine with a small NVM array: claims about cache
 *  partitions, prefetching and bandwidth need the real geometry. */
SimConfig
evalConfig()
{
    SimConfig cfg;
    cfg.nvm.dimmBytes = 32ull << 20;
    cfg.dram.sizeBytes = 32ull << 20;
    return cfg;
}

// Claim (abstract): "TVARAK reduces Redis set-only performance by only
// 3%, compared to 50% for a state-of-the-art software-only approach."
TEST(PaperClaims, TvarakFarCheaperThanSoftwareOnRedisSets)
{
    auto factory = redisFactory(RedisWorkload::Mode::SetOnly);
    Cycles base = runtimeOf(DesignKind::Baseline, factory);
    Cycles tvarak = runtimeOf(DesignKind::Tvarak, factory);
    Cycles txb_o = runtimeOf(DesignKind::TxBObjectCsums, factory);
    double tv = static_cast<double>(tvarak) / static_cast<double>(base);
    double to = static_cast<double>(txb_o) / static_cast<double>(base);
    EXPECT_LT(tv, 1.25) << "TVARAK must stay within a few percent";
    EXPECT_GT(to, tv + 0.10)
        << "software redundancy must cost far more";
}

// Claim (IV-B): the software schemes pay even on get-only workloads
// (transactional metadata writes), and page granularity pays most.
TEST(PaperClaims, SoftwareSchemesPayOnGetsPageWorstObjectNext)
{
    auto factory = redisFactory(RedisWorkload::Mode::GetOnly);
    Cycles base = runtimeOf(DesignKind::Baseline, factory);
    Cycles tvarak = runtimeOf(DesignKind::Tvarak, factory);
    Cycles txb_o = runtimeOf(DesignKind::TxBObjectCsums, factory);
    Cycles txb_p = runtimeOf(DesignKind::TxBPageCsums, factory);
    EXPECT_LT(tvarak, txb_o);
    EXPECT_LT(txb_o, txb_p);
    EXPECT_GT(txb_p, base) << "page checksums cost even for gets";
}

// Claim (IV-A): TVARAK provides efficient redundancy for inserts
// ("only 1.5% overhead ... insert-only ... tree-based stores").
TEST(PaperClaims, TreeInsertOrderingAcrossAllDesigns)
{
    auto factory = treeInsertFactory();
    Cycles base = runtimeOf(DesignKind::Baseline, factory);
    Cycles tvarak = runtimeOf(DesignKind::Tvarak, factory);
    Cycles txb_o = runtimeOf(DesignKind::TxBObjectCsums, factory);
    Cycles txb_p = runtimeOf(DesignKind::TxBPageCsums, factory);
    EXPECT_LT(static_cast<double>(tvarak) / static_cast<double>(base),
              1.30);
    EXPECT_LT(tvarak, txb_o);
    EXPECT_LT(txb_o, txb_p);
}

// Claim (IV-E): locality drives TVARAK's cost — sequential writes are
// (nearly) free, random writes are its expensive case.
TEST(PaperClaims, SequentialCheaperThanRandomForTvarak)
{
    auto seq = fioFactory(FioWorkload::Pattern::SeqWrite);
    auto rand = fioFactory(FioWorkload::Pattern::RandWrite);
    SimConfig cfg = evalConfig();
    auto runtime = [&](DesignKind d, const WorkloadFactory &f) {
        return static_cast<double>(
            runExperiment(cfg, d, f).runtimeCycles);
    };
    double seq_overhead = runtime(DesignKind::Tvarak, seq) /
        runtime(DesignKind::Baseline, seq);
    double rand_overhead = runtime(DesignKind::Tvarak, rand) /
        runtime(DesignKind::Baseline, rand);
    EXPECT_GT(rand_overhead, seq_overhead + 0.05)
        << "random writes must cost TVARAK visibly more";
    EXPECT_LT(seq_overhead, 1.10);
}

// Claim (III/IV-G): the naive controller is much slower than TVARAK;
// DAX-CL-checksums are the dominant optimization.
TEST(PaperClaims, NaiveControllerFarWorseThanTvarak)
{
    auto factory = treeInsertFactory(12);  // full machine load
    SimConfig cfg = evalConfig();
    Cycles tvarak = runExperiment(cfg, DesignKind::Tvarak, factory)
                        .runtimeCycles;
    SimConfig naive_cfg = cfg;
    naive_cfg.tvarak.useDaxClChecksums = false;
    naive_cfg.tvarak.useRedundancyCaching = false;
    naive_cfg.tvarak.useDataDiffs = false;
    Cycles naive =
        runExperiment(naive_cfg, DesignKind::Tvarak, factory)
            .runtimeCycles;
    EXPECT_GT(static_cast<double>(naive),
              1.5 * static_cast<double>(tvarak));
}

// Claim (IV-A, energy): efficiency shows up in energy too.
TEST(PaperClaims, TvarakEnergyBelowSoftwareSchemes)
{
    auto factory = treeInsertFactory();
    SimConfig cfg = test::smallConfig();
    double tvarak =
        runExperiment(cfg, DesignKind::Tvarak, factory).energyMj;
    double txb_p =
        runExperiment(cfg, DesignKind::TxBPageCsums, factory).energyMj;
    EXPECT_LT(tvarak, txb_p);
}

// Claim (II/III): coverage without compromise — every NVM->LLC fill of
// DAX data is verified, every DAX writeback updates redundancy.
TEST(PaperClaims, FullCoverageCounters)
{
    auto factory = fioFactory(FioWorkload::Pattern::RandWrite);
    RunResult r =
        runExperiment(test::smallConfig(), DesignKind::Tvarak, factory);
    EXPECT_GT(r.stats.readVerifications, 0u);
    // Every DAX fill is verified; the handful of extra data-reads are
    // old-data fetches for writebacks whose diff was unavailable.
    EXPECT_GE(r.stats.nvmDataReads, r.stats.readVerifications);
    EXPECT_LE(static_cast<double>(r.stats.nvmDataReads -
                                  r.stats.readVerifications),
              0.05 * static_cast<double>(r.stats.readVerifications));
    EXPECT_EQ(r.stats.redundancyUpdates, r.stats.nvmDataWrites)
        << "every DAX writeback covered";
}

}  // namespace
}  // namespace tvarak
