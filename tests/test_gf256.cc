/**
 * @file
 * Known-answer and property tests for the GF(2^8) Reed-Solomon codec.
 *
 * The field tests pin the log/antilog tables against a bit-by-bit
 * reference (carry-less multiply reduced mod 0x11D) so a table-build
 * bug cannot hide; the codec tests exhaustively erase every k-subset
 * of members for the shipped geometries and require bit-exact
 * recovery from the survivors.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "checksum/checksum.hh"
#include "checksum/gf256.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace tvarak {
namespace {

/** Bit-by-bit reference multiply in GF(2^8) / 0x11D. */
std::uint8_t
refMul(std::uint8_t a, std::uint8_t b)
{
    unsigned r = 0;
    unsigned aa = a;
    for (unsigned bit = 0; bit < 8; bit++) {
        if (b & (1u << bit))
            r ^= aa << bit;
    }
    for (int bit = 15; bit >= 8; bit--) {
        if (r & (1u << bit))
            r ^= 0x11Du << (bit - 8);
    }
    return static_cast<std::uint8_t>(r);
}

TEST(Gf256, KnownVectors)
{
    // alpha = 2, poly 0x11D: 2^8 = 0x1D, and a classic spot product.
    EXPECT_EQ(gf256::mul(2, 128), 0x1D);
    EXPECT_EQ(gf256::mul(0x53, 0xCA), refMul(0x53, 0xCA));
    EXPECT_EQ(gf256::mul(0, 0x7F), 0);
    EXPECT_EQ(gf256::mul(1, 0x7F), 0x7F);
}

TEST(Gf256, MulMatchesReferenceExhaustively)
{
    for (unsigned a = 0; a < 256; a++) {
        for (unsigned b = 0; b < 256; b++) {
            ASSERT_EQ(gf256::mul(static_cast<std::uint8_t>(a),
                                 static_cast<std::uint8_t>(b)),
                      refMul(static_cast<std::uint8_t>(a),
                             static_cast<std::uint8_t>(b)))
                << a << " * " << b;
        }
    }
}

TEST(Gf256, InverseRoundTrips)
{
    for (unsigned a = 1; a < 256; a++) {
        std::uint8_t ai = gf256::inv(static_cast<std::uint8_t>(a));
        EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), ai), 1)
            << "a = " << a;
    }
}

TEST(Gf256, MulLineIntoMatchesScalar)
{
    Rng rng(11);
    std::array<std::uint8_t, kLineBytes> src, dst, expect;
    for (std::size_t i = 0; i < kLineBytes; i++) {
        src[i] = static_cast<std::uint8_t>(rng.next());
        dst[i] = static_cast<std::uint8_t>(rng.next());
    }
    for (unsigned c : {0u, 1u, 2u, 0x1Du, 0xFFu}) {
        expect = dst;
        for (std::size_t i = 0; i < kLineBytes; i++)
            expect[i] ^= refMul(src[i], static_cast<std::uint8_t>(c));
        std::array<std::uint8_t, kLineBytes> got = dst;
        gf256::mulLineInto(got.data(), src.data(),
                           static_cast<std::uint8_t>(c));
        EXPECT_EQ(got, expect) << "c = " << c;
    }
}

class RsGeometry
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>>
{};

/** Fill an n+k stripe with seeded data and encoded parity. */
std::vector<std::array<std::uint8_t, kLineBytes>>
makeStripe(const RsCode &rs, std::uint64_t seed)
{
    std::vector<std::array<std::uint8_t, kLineBytes>> stripe(
        rs.n() + rs.k());
    Rng rng(seed);
    for (std::size_t i = 0; i < rs.n(); i++)
        for (auto &b : stripe[i])
            b = static_cast<std::uint8_t>(rng.next());
    std::vector<std::uint8_t *> ptrs;
    for (auto &m : stripe)
        ptrs.push_back(m.data());
    rs.encode(ptrs.data());
    return stripe;
}

TEST_P(RsGeometry, ParityRowZeroIsXor)
{
    RsCode rs(GetParam().first, GetParam().second);
    auto stripe = makeStripe(rs, 42);
    std::array<std::uint8_t, kLineBytes> x{};
    for (std::size_t i = 0; i < rs.n(); i++)
        xorLine(x.data(), stripe[i].data());
    EXPECT_EQ(x, stripe[rs.n()]);
}

TEST_P(RsGeometry, DecodeFromEveryTwoEraseSubset)
{
    RsCode rs(GetParam().first, GetParam().second);
    const std::size_t total = rs.n() + rs.k();
    auto pristine = makeStripe(rs, 7);
    for (std::size_t e1 = 0; e1 < total; e1++) {
        for (std::size_t e2 = e1; e2 < total; e2++) {
            auto stripe = pristine;
            std::vector<std::uint8_t *> ptrs;
            std::vector<char> present(total, 1);
            for (auto &m : stripe)
                ptrs.push_back(m.data());
            std::memset(stripe[e1].data(), 0xDB, kLineBytes);
            present[e1] = 0;
            std::size_t erased = 1;
            if (e2 != e1) {
                std::memset(stripe[e2].data(), 0xDB, kLineBytes);
                present[e2] = 0;
                erased = 2;
            }
            bool presArr[255];
            for (std::size_t m = 0; m < total; m++)
                presArr[m] = present[m] != 0;
            bool ok = rs.decode(ptrs.data(), presArr);
            if (erased <= rs.k()) {
                ASSERT_TRUE(ok) << "erased " << e1 << "," << e2;
                for (std::size_t m = 0; m < total; m++)
                    ASSERT_EQ(stripe[m], pristine[m])
                        << "member " << m << " after erasing " << e1
                        << "," << e2;
            } else {
                EXPECT_FALSE(ok);
            }
        }
    }
}

TEST_P(RsGeometry, IncrementalUpdateMatchesFullEncode)
{
    RsCode rs(GetParam().first, GetParam().second);
    auto stripe = makeStripe(rs, 99);
    Rng rng(100);
    // Mutate data member 1, maintain parity via diffs only.
    std::array<std::uint8_t, kLineBytes> neu, diff;
    for (std::size_t i = 0; i < kLineBytes; i++) {
        neu[i] = static_cast<std::uint8_t>(rng.next());
        diff[i] = static_cast<std::uint8_t>(stripe[1][i] ^ neu[i]);
    }
    for (std::size_t j = 0; j < rs.k(); j++)
        rs.updateParity(stripe[rs.n() + j].data(), diff.data(), j, 1);
    stripe[1] = neu;

    auto full = stripe;
    std::vector<std::uint8_t *> ptrs;
    for (auto &m : full)
        ptrs.push_back(m.data());
    rs.encode(ptrs.data());
    for (std::size_t j = 0; j < rs.k(); j++)
        EXPECT_EQ(stripe[rs.n() + j], full[rs.n() + j]) << "parity " << j;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RsGeometry,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(4, 2),
                      std::make_pair<std::size_t, std::size_t>(6, 2),
                      std::make_pair<std::size_t, std::size_t>(3, 1),
                      std::make_pair<std::size_t, std::size_t>(8, 3)));

}  // namespace
}  // namespace tvarak
