/**
 * @file
 * Shared helpers for the test suites: a small, fast machine
 * configuration and common assertions.
 */

#pragma once

#include "sim/config.hh"

namespace tvarak::test {

/** A scaled-down machine that keeps unit tests fast: 2 cores, small
 *  caches (so evictions happen quickly), 4 x 16 MB NVM DIMMs. */
inline SimConfig
smallConfig()
{
    SimConfig cfg;
    cfg.cores = 2;
    cfg.l1 = {4 * 1024, 4, 4, 15.0, 33.0};
    cfg.l2 = {16 * 1024, 8, 7, 46.0, 94.0};
    cfg.llcBank = {64 * 1024, 16, 27, 240.0, 500.0};
    cfg.llcBanks = 4;
    cfg.dram.sizeBytes = 8ull << 20;
    cfg.nvm.dimms = 4;
    cfg.nvm.dimmBytes = 16ull << 20;
    return cfg;
}

}  // namespace tvarak::test

