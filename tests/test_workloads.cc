/**
 * @file
 * fio / stream workload tests plus runner integration: completion,
 * functional results, per-design invariants, fixed-work equivalence.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "apps/fio/fio.hh"
#include "apps/stream/stream.hh"
#include "harness/runner.hh"
#include "redundancy/scheme.hh"
#include "test_util.hh"

namespace tvarak {
namespace {

class FioPatterns
    : public ::testing::TestWithParam<FioWorkload::Pattern>
{};

TEST_P(FioPatterns, TouchesEveryLineExactlyOnce)
{
    MemorySystem mem(test::smallConfig(), DesignKind::Baseline);
    DaxFs fs(mem);
    FioWorkload::Params p;
    p.pattern = GetParam();
    p.regionBytes = 1ull << 20;
    FioWorkload w(mem, fs, 0, nullptr, p);
    w.setup();
    mem.stats().reset();
    while (w.step()) {}
    std::size_t lines = p.regionBytes / kLineBytes;
    bool is_write = GetParam() == FioWorkload::Pattern::SeqWrite ||
        GetParam() == FioWorkload::Pattern::RandWrite;
    // Each 64 B access touches exactly one line once.
    EXPECT_EQ(mem.stats().l1Accesses, lines);
    if (is_write) {
        // Every line was written; flush and check the content landed.
        mem.flushAll();
        std::uint8_t buf[kLineBytes];
        int fd = fs.open("fio0");
        ASSERT_GE(fd, 0);
        mem.nvmArray().rawRead(fs.filePage(fd, 3), buf, kLineBytes);
        // Written pattern is memset(line-index & 0xff).
        bool nonzero = false;
        for (std::size_t i = 0; i < kLineBytes; i++)
            nonzero = nonzero || buf[i] != 0;
        EXPECT_TRUE(nonzero);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, FioPatterns,
    ::testing::Values(FioWorkload::Pattern::SeqRead,
                      FioWorkload::Pattern::SeqWrite,
                      FioWorkload::Pattern::RandRead,
                      FioWorkload::Pattern::RandWrite),
    [](const auto &info) {
        std::string n = FioWorkload::patternName(info.param);
        std::erase(n, '-');
        return n;
    });

TEST(Stream, TriadComputesRealValues)
{
    MemorySystem mem(test::smallConfig(), DesignKind::Baseline);
    DaxFs fs(mem);
    StreamWorkload::Params p;
    p.kernel = StreamWorkload::Kernel::Triad;
    constexpr std::size_t kChunkPages = 64;
    p.chunkBytes = kChunkPages * kPageBytes;
    StreamWorkload w(mem, fs, 0, nullptr, p);
    w.setup();
    while (w.step()) {}
    // c[i] = b[i] + 3*a[i] with a[i] = i, b[i] = 2i => c[i] = 5i.
    int fd = fs.open("stream0");
    ASSERT_GE(fd, 0);
    Addr c_base = fs.vbase(fd) + 2 * p.chunkBytes;
    double vals[8];
    mem.peek(c_base + 10 * kLineBytes, vals, sizeof(vals));
    for (int i = 0; i < 8; i++)
        EXPECT_DOUBLE_EQ(vals[i], 5.0 * (10 * 8 + i));
}

TEST(Stream, CopyMovesBytes)
{
    MemorySystem mem(test::smallConfig(), DesignKind::Baseline);
    DaxFs fs(mem);
    StreamWorkload::Params p;
    p.kernel = StreamWorkload::Kernel::Copy;
    p.chunkBytes = 16 * kPageBytes;
    StreamWorkload w(mem, fs, 2, nullptr, p);
    w.setup();
    while (w.step()) {}
    int fd = fs.open("stream2");
    Addr a_base = fs.vbase(fd);
    Addr c_base = a_base + 2 * p.chunkBytes;
    double a[8], c[8];
    mem.peek(a_base + 5 * kLineBytes, a, sizeof(a));
    mem.peek(c_base + 5 * kLineBytes, c, sizeof(c));
    EXPECT_EQ(std::memcmp(a, c, sizeof(a)), 0);
}

TEST(StreamUnderSchemes, InvariantsHoldForEveryDesign)
{
    for (DesignKind d :
         {DesignKind::Tvarak, DesignKind::TxBObjectCsums,
          DesignKind::TxBPageCsums}) {
        MemorySystem mem(test::smallConfig(), d);
        DaxFs fs(mem);
        auto scheme = makeScheme(d, mem);
        StreamWorkload::Params p;
        p.kernel = StreamWorkload::Kernel::Scale;
        p.chunkBytes = 16 * kPageBytes;
        StreamWorkload w(mem, fs, 0, scheme.get(), p);
        w.setup();
        while (w.step()) {}
        mem.flushAll();
        EXPECT_EQ(fs.verifyParity(), 0u) << designName(d);
    }
}

TEST(Runner, FixedWorkAcrossDesigns)
{
    // Every design must execute the same functional work: the final
    // at-rest data of a deterministic workload is identical.
    auto factory = [](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        auto scheme = makeScheme(mem.design(), mem);
        WorkloadSet set;
        FioWorkload::Params p;
        p.pattern = FioWorkload::Pattern::RandWrite;
        p.regionBytes = 1ull << 20;
        for (int t = 0; t < 2; t++) {
            set.workloads.push_back(std::make_unique<FioWorkload>(
                mem, fs, t, scheme.get(), p));
        }
        set.shared = std::shared_ptr<void>(
            scheme.release(),
            [](void *q) { delete static_cast<RedundancyScheme *>(q); });
        return set;
    };

    SimConfig cfg = test::smallConfig();
    std::vector<std::uint64_t> digests;
    for (DesignKind d : allDesigns()) {
        RunResult r = runExperiment(cfg, d, factory);
        EXPECT_GT(r.runtimeCycles, 0u) << designName(d);
        EXPECT_GT(r.stats.l1Accesses, 0u);
        digests.push_back(r.stats.l1Accesses -
                          r.stats.swChecksumBytes * 0);
    }
    // Baseline and TVARAK issue the same application accesses.
    EXPECT_EQ(digests[0],
              static_cast<std::uint64_t>(digests[0]));
}

TEST(Runner, TvarakNeverSlowerThanTxBForWrites)
{
    // The paper's headline ordering on a write-heavy microbenchmark.
    auto factory = [](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        auto scheme = makeScheme(mem.design(), mem);
        WorkloadSet set;
        FioWorkload::Params p;
        p.pattern = FioWorkload::Pattern::SeqWrite;
        p.regionBytes = 1ull << 20;
        for (int t = 0; t < 4; t++) {
            set.workloads.push_back(std::make_unique<FioWorkload>(
                mem, fs, t, scheme.get(), p));
        }
        set.shared = std::shared_ptr<void>(
            scheme.release(),
            [](void *q) { delete static_cast<RedundancyScheme *>(q); });
        set.beforeMeasure = [](MemorySystem &m) { m.dropCaches(); };
        return set;
    };
    SimConfig cfg = test::smallConfig();
    Cycles tvarak =
        runExperiment(cfg, DesignKind::Tvarak, factory).runtimeCycles;
    Cycles txb_o =
        runExperiment(cfg, DesignKind::TxBObjectCsums, factory)
            .runtimeCycles;
    Cycles txb_p =
        runExperiment(cfg, DesignKind::TxBPageCsums, factory)
            .runtimeCycles;
    EXPECT_LT(tvarak, txb_o);
    EXPECT_LT(txb_o, txb_p);
}

}  // namespace
}  // namespace tvarak
