/**
 * @file
 * PmemPool tests: allocator, undo-log transactions, and the TxB
 * software redundancy schemes hooked at commit.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "pmemlib/pmem_pool.hh"
#include "test_util.hh"

namespace tvarak {
namespace {

class PoolTest : public ::testing::TestWithParam<DesignKind>
{
  protected:
    void SetUp() override
    {
        mem = std::make_unique<MemorySystem>(test::smallConfig(),
                                             GetParam());
        fs = std::make_unique<DaxFs>(*mem);
        scheme = makeScheme(GetParam(), *mem);
        pool = std::make_unique<PmemPool>(*mem, *fs, "pool",
                                          2ull << 20, scheme.get(), 2);
    }

    std::unique_ptr<MemorySystem> mem;
    std::unique_ptr<DaxFs> fs;
    std::unique_ptr<RedundancyScheme> scheme;
    std::unique_ptr<PmemPool> pool;
};

TEST_P(PoolTest, AllocWriteReadBack)
{
    Addr obj = pool->alloc(0, 100);
    std::uint8_t w[100];
    for (std::size_t i = 0; i < sizeof(w); i++)
        w[i] = static_cast<std::uint8_t>(i);
    pool->txBegin(0);
    pool->txWrite(0, obj, w, sizeof(w));
    pool->txCommit(0);
    std::uint8_t r[100];
    mem->read(0, obj, r, sizeof(r));
    EXPECT_EQ(std::memcmp(w, r, sizeof(w)), 0);
    EXPECT_EQ(pool->objectSize(obj), 100u);
}

TEST_P(PoolTest, FreeReusesMemory)
{
    Addr a = pool->alloc(0, 64);
    pool->free(0, a);
    Addr b = pool->alloc(0, 64);
    EXPECT_EQ(a, b) << "same size class must recycle the slot";
    EXPECT_EQ(pool->liveObjects(), 1u);
}

TEST_P(PoolTest, DistinctLanesDistinctArenas)
{
    Addr a = pool->alloc(0, 64);  // lane 0
    Addr b = pool->alloc(1, 64);  // lane 1
    EXPECT_NE(pageBase(a), pageBase(b));
}

TEST_P(PoolTest, AbortRollsBack)
{
    Addr obj = pool->alloc(0, 64);
    std::uint64_t v1 = 111, v2 = 222;
    pool->txBegin(0);
    pool->txWrite(0, obj, &v1, 8);
    pool->txCommit(0);

    pool->txBegin(0);
    pool->txWrite(0, obj, &v2, 8);
    EXPECT_EQ(mem->read64(0, obj), 222u);
    pool->txAbort(0);
    EXPECT_EQ(mem->read64(0, obj), 111u)
        << "undo log must restore the old value";
}

TEST_P(PoolTest, RootPersists)
{
    Addr obj = pool->alloc(0, 64);
    pool->setRoot(0, obj);
    EXPECT_EQ(pool->getRoot(0), obj);
}

TEST_P(PoolTest, SetRootInsideTxIsLogged)
{
    Addr obj = pool->alloc(0, 64);
    pool->txBegin(0);
    pool->setRoot(0, obj);
    pool->txAbort(0);
    EXPECT_EQ(pool->getRoot(0), 0u);
}

TEST_P(PoolTest, ReattachFindsExistingPool)
{
    Addr obj = pool->alloc(0, 64);
    pool->setRoot(0, obj);
    PmemPool again(*mem, *fs, "pool", 2ull << 20, scheme.get(), 2);
    EXPECT_EQ(again.getRoot(0), obj);
    EXPECT_EQ(again.base(), pool->base());
}

TEST_P(PoolTest, CommitCountsTracked)
{
    mem->stats().reset();
    Addr obj = pool->alloc(0, 64);
    for (int i = 0; i < 5; i++) {
        pool->txBegin(0);
        std::uint64_t v = static_cast<std::uint64_t>(i);
        pool->txWrite(0, obj, &v, 8);
        pool->txCommit(0);
    }
    EXPECT_EQ(mem->stats().txCommits, 5u);
}

INSTANTIATE_TEST_SUITE_P(
    Designs, PoolTest,
    ::testing::Values(DesignKind::Baseline, DesignKind::Tvarak,
                      DesignKind::TxBObjectCsums,
                      DesignKind::TxBPageCsums),
    [](const auto &info) {
        std::string n = designName(info.param);
        std::erase(n, '-');
        return n;
    });

//
// Scheme-specific behaviour.
//

TEST(TxBObject, ObjectChecksumsVerifyAfterCommits)
{
    MemorySystem mem(test::smallConfig(), DesignKind::TxBObjectCsums);
    DaxFs fs(mem);
    auto scheme = makeScheme(DesignKind::TxBObjectCsums, mem);
    PmemPool pool(mem, fs, "p", 2ull << 20, scheme.get(), 2);

    constexpr std::size_t kObjSizeStep = 8;
    std::vector<Addr> objs;
    for (int i = 0; i < 16; i++) {
        Addr o = pool.alloc(0, 48 + i * kObjSizeStep);
        pool.txBegin(0);
        std::uint64_t v = static_cast<std::uint64_t>(i) * 0x1111;
        pool.txWrite(0, o, &v, 8);
        pool.txCommit(0);
        objs.push_back(o);
    }
    EXPECT_EQ(pool.verifyObjects(), 0u)
        << "every committed object must carry a valid checksum";

    // A silent in-place corruption is caught by object verification.
    Addr paddr;
    bool is_nvm;
    ASSERT_TRUE(mem.translate(objs[3], paddr, is_nvm));
    mem.flushAll();
    std::uint8_t junk = 0x66;
    mem.nvmArray().rawWrite(paddr - kNvmPhysBase, &junk, 1);
    mem.dropCaches();
    EXPECT_EQ(pool.verifyObjects(), 1u);
}

TEST(TxBPage, PageChecksumsVerifyAfterCommits)
{
    MemorySystem mem(test::smallConfig(), DesignKind::TxBPageCsums);
    DaxFs fs(mem);
    auto scheme = makeScheme(DesignKind::TxBPageCsums, mem);
    PmemPool pool(mem, fs, "p", 2ull << 20, scheme.get(), 2);

    for (int i = 0; i < 32; i++) {
        Addr o = pool.alloc(0, 200);
        pool.txBegin(0);
        std::uint64_t v = static_cast<std::uint64_t>(i);
        pool.txWrite(0, o, &v, 8);
        pool.txCommit(0);
    }
    mem.flushAll();
    // The FS scrub checks page checksums for mapped files under the
    // TxB-Page design; everything the scheme touched must verify.
    EXPECT_EQ(fs.scrub(false), 0u);
}

TEST(TxBSchemes, ParityMaintainedByRecomputation)
{
    for (DesignKind d :
         {DesignKind::TxBObjectCsums, DesignKind::TxBPageCsums}) {
        MemorySystem mem(test::smallConfig(), d);
        DaxFs fs(mem);
        auto scheme = makeScheme(d, mem);
        PmemPool pool(mem, fs, "p", 2ull << 20, scheme.get(), 2);
        for (int i = 0; i < 64; i++) {
            Addr o = pool.alloc(i % 2, 64);
            pool.txBegin(i % 2);
            std::uint64_t v = static_cast<std::uint64_t>(i) * 7;
            pool.txWrite(i % 2, o, &v, 8);
            pool.txCommit(i % 2);
        }
        mem.flushAll();
        EXPECT_EQ(fs.verifyParity(), 0u) << designName(d);
    }
}

TEST(TxBSchemes, CommitCostOrdering)
{
    // The defining cost relationship (paper Fig 8): page-granular
    // checksums force whole-page reads at commit, so TxB-Page must
    // issue more cache accesses than TxB-Object for small writes.
    auto commits = [](DesignKind d) {
        MemorySystem mem(test::smallConfig(), d);
        DaxFs fs(mem);
        auto scheme = makeScheme(d, mem);
        PmemPool pool(mem, fs, "p", 2ull << 20, scheme.get(), 2);
        Addr o = pool.alloc(0, 64);
        mem.stats().reset();
        for (int i = 0; i < 100; i++) {
            pool.txBegin(0);
            std::uint64_t v = static_cast<std::uint64_t>(i);
            pool.txWrite(0, o, &v, 8);
            pool.txCommit(0);
        }
        return mem.stats().cacheAccesses();
    };
    std::uint64_t baseline = commits(DesignKind::Baseline);
    std::uint64_t object = commits(DesignKind::TxBObjectCsums);
    std::uint64_t page = commits(DesignKind::TxBPageCsums);
    EXPECT_LT(baseline, object);
    EXPECT_LT(object, page);
}

}  // namespace
}  // namespace tvarak
