/**
 * @file
 * MemorySystem tests: translation, functional read/write through the
 * hierarchy, persistence at flush, timing/energy accounting, and
 * cross-core coherence of the tag state.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "fs/dax_fs.hh"
#include "mem/memory_system.hh"
#include "sim/rng.hh"
#include "test_util.hh"

namespace tvarak {
namespace {

// Size of the DAX-backed test file, in pages; kColdPage is an index
// far enough in to be untouched (and thus uncached) by earlier tests.
constexpr std::size_t kFilePages = 64;
constexpr std::size_t kColdPage = 8;

class MemorySystemTest : public ::testing::Test
{
  protected:
    MemorySystemTest()
        : mem(test::smallConfig(), DesignKind::Baseline), fs(mem)
    {}

    MemorySystem mem;
    DaxFs fs;
};

TEST_F(MemorySystemTest, DramRoundtrip)
{
    Addr a = mem.dramAlloc(256);
    std::uint8_t w[256], r[256];
    for (std::size_t i = 0; i < sizeof(w); i++)
        w[i] = static_cast<std::uint8_t>(i);
    mem.write(0, a, w, sizeof(w));
    mem.read(0, a, r, sizeof(r));
    EXPECT_EQ(std::memcmp(w, r, sizeof(w)), 0);
}

TEST_F(MemorySystemTest, DramAllocAlignment)
{
    Addr a = mem.dramAlloc(10, 64);
    Addr b = mem.dramAlloc(10, 64);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_GE(b, a + 10);
}

TEST_F(MemorySystemTest, UnmappedAccessDies)
{
    EXPECT_DEATH(mem.read64(0, kDaxBase), "unmapped");
}

TEST_F(MemorySystemTest, NvmRoundtripThroughDaxFile)
{
    int fd = fs.create("f", kFilePages * kPageBytes);
    Addr base = fs.daxMap(fd);
    std::uint8_t w[3 * kLineBytes];
    for (std::size_t i = 0; i < sizeof(w); i++)
        w[i] = static_cast<std::uint8_t>(i * 3);
    // Unaligned, line-crossing write.
    mem.write(1, base + 30, w, sizeof(w));
    std::uint8_t r[sizeof(w)];
    mem.read(1, base + 30, r, sizeof(r));
    EXPECT_EQ(std::memcmp(w, r, sizeof(w)), 0);
}

TEST_F(MemorySystemTest, FlushPersistsToMedia)
{
    int fd = fs.create("f", 16 * kPageBytes);
    Addr base = fs.daxMap(fd);
    mem.write64(0, base + 8, 0xdeadbeefcafef00dull);
    mem.flushAll();
    // At-rest media must now hold the value.
    std::uint64_t at_rest = 0;
    mem.nvmArray().rawRead(fs.filePage(fd, 0) + 8, &at_rest, 8);
    EXPECT_EQ(at_rest, 0xdeadbeefcafef00dull);
}

TEST_F(MemorySystemTest, WritebackOnlyOnEviction)
{
    int fd = fs.create("f", 16 * kPageBytes);
    Addr base = fs.daxMap(fd);
    mem.stats().reset();
    mem.write64(0, base, 42);
    // Dirty data sits in the caches: no NVM write yet.
    EXPECT_EQ(mem.stats().nvmDataWrites, 0u);
    std::uint64_t at_rest = ~0ull;
    mem.nvmArray().rawRead(fs.filePage(fd, 0), &at_rest, 8);
    EXPECT_EQ(at_rest, 0u);
    mem.flushAll();
    EXPECT_GE(mem.stats().nvmDataWrites, 1u);
}

TEST_F(MemorySystemTest, LoadLatencyChargedStoreCheap)
{
    int fd = fs.create("f", 16 * kPageBytes);
    Addr base = fs.daxMap(fd);
    mem.stats().reset();
    std::uint64_t v = mem.read64(0, base);  // cold NVM load
    (void)v;
    const SimConfig &cfg = mem.config();
    Cycles load_cycles = mem.stats().threadCycles[0];
    EXPECT_GE(load_cycles, cfg.nsToCycles(cfg.nvm.readNs));

    mem.stats().reset();
    mem.write64(0, base + kColdPage * kPageBytes, 1);  // cold store
    // Only a storeMissLatencyFactor fraction of the miss path stalls
    // the thread (store-queue draining), so a cold store is far
    // cheaper than a cold load.
    EXPECT_LT(mem.stats().threadCycles[0], load_cycles / 2)
        << "stores retire through the store buffer";
    EXPECT_GE(mem.stats().threadCycles[0], cfg.storeIssueCycles);
}

TEST_F(MemorySystemTest, CacheHitsAvoidNvm)
{
    int fd = fs.create("f", 16 * kPageBytes);
    Addr base = fs.daxMap(fd);
    (void)mem.read64(0, base);
    mem.stats().reset();
    for (int i = 0; i < 10; i++)
        (void)mem.read64(0, base);
    EXPECT_EQ(mem.stats().nvmDataReads, 0u);
    EXPECT_EQ(mem.stats().l1Misses, 0u);
}

TEST_F(MemorySystemTest, CrossCoreSharingKeepsValues)
{
    int fd = fs.create("f", 16 * kPageBytes);
    Addr base = fs.daxMap(fd);
    mem.write64(0, base, 7);           // core 0 writes
    EXPECT_EQ(mem.read64(1, base), 7u);  // core 1 reads
    mem.write64(1, base, 9);           // core 1 overwrites
    EXPECT_EQ(mem.read64(0, base), 9u);
    mem.flushAll();
    std::uint64_t at_rest = 0;
    mem.nvmArray().rawRead(fs.filePage(fd, 0), &at_rest, 8);
    EXPECT_EQ(at_rest, 9u);
}

TEST_F(MemorySystemTest, PeekSeesCurrentValueBeforeFlush)
{
    int fd = fs.create("f", 16 * kPageBytes);
    Addr base = fs.daxMap(fd);
    mem.write64(0, base + 128, 77);
    std::uint64_t v = 0;
    mem.peek(base + 128, &v, 8);
    EXPECT_EQ(v, 77u);
}

TEST_F(MemorySystemTest, PokeForbiddenOnNvm)
{
    int fd = fs.create("f", 16 * kPageBytes);
    Addr base = fs.daxMap(fd);
    std::uint8_t b = 0;
    EXPECT_DEATH(mem.poke(base, &b, 1), "forbidden");
}

TEST_F(MemorySystemTest, EnergyAccumulates)
{
    Addr a = mem.dramAlloc(kLineBytes);
    mem.stats().reset();
    mem.write64(0, a, 1);
    (void)mem.read64(0, a);
    EXPECT_GT(mem.stats().l1Energy, 0.0);
    EXPECT_GT(mem.stats().totalEnergy(), mem.stats().l1Energy);
}

TEST_F(MemorySystemTest, ComputeChecksumChargesCycles)
{
    mem.stats().reset();
    mem.computeChecksum(3, 3000);
    EXPECT_NEAR(static_cast<double>(mem.stats().threadCycles[1]),
                3000 / mem.config().swChecksumBytesPerCycle, 2.0)
        << "tid 3 maps to core 1 in the 2-core test config";
    EXPECT_EQ(mem.stats().swChecksumBytes, 3000u);
}

TEST_F(MemorySystemTest, RuntimeIsMaxOfThreadsAndDimms)
{
    Stats &s = mem.stats();
    s.reset();
    s.threadCycles[0] = 100;
    s.threadCycles[1] = 250;
    s.dimmBusyCycles[2] = 400;
    EXPECT_EQ(s.runtimeCycles(), 400u);
    s.threadCycles[1] = 999;
    EXPECT_EQ(s.runtimeCycles(), 999u);
}

TEST_F(MemorySystemTest, WorkingSetLargerThanCachesStillCorrect)
{
    int fd = fs.create("big", 512 * kPageBytes);  // 2 MB > LLC (256 KB)
    Addr base = fs.daxMap(fd);
    Rng rng(11);
    std::vector<std::uint64_t> expect(512 * kLinesPerPage);
    for (std::size_t i = 0; i < expect.size(); i++) {
        expect[i] = rng.next();
        mem.write64(0, base + i * kLineBytes, expect[i]);
    }
    // Lots of capacity evictions happened; values must survive.
    for (std::size_t i = 0; i < expect.size(); i += 37)
        EXPECT_EQ(mem.read64(1, base + i * kLineBytes), expect[i]);
    mem.flushAll();
    for (std::size_t i = 0; i < expect.size(); i += 53) {
        std::uint64_t at_rest = 0;
        mem.nvmArray().rawRead(
            fs.filePage(fd, i / kLinesPerPage) +
                (i % kLinesPerPage) * kLineBytes,
            &at_rest, 8);
        EXPECT_EQ(at_rest, expect[i]) << "line " << i;
    }
}

TEST(MemorySystemDesign, TvarakLosesLlcWays)
{
    SimConfig cfg = test::smallConfig();
    MemorySystem base(cfg, DesignKind::Baseline);
    MemorySystem tv(cfg, DesignKind::Tvarak);
    EXPECT_EQ(base.llcDataWays(), cfg.llcBank.ways);
    EXPECT_EQ(tv.llcDataWays(),
              cfg.llcBank.ways - cfg.tvarak.redundancyWays -
                  cfg.tvarak.diffWays);
}

}  // namespace
}  // namespace tvarak
