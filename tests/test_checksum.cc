/**
 * @file
 * Unit and property tests for the checksum/parity kernels.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>

#include "checksum/checksum.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace tvarak {
namespace {

TEST(Crc32c, KnownVectors)
{
    // RFC 3720 test vectors for CRC-32C.
    std::array<std::uint8_t, 32> zeros{};
    EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8a9136aau);

    std::array<std::uint8_t, 32> ones;
    ones.fill(0xff);
    EXPECT_EQ(crc32c(ones.data(), ones.size()), 0x62a8ab43u);

    std::array<std::uint8_t, 32> incr;
    for (std::size_t i = 0; i < incr.size(); i++)
        incr[i] = static_cast<std::uint8_t>(i);
    EXPECT_EQ(crc32c(incr.data(), incr.size()), 0x46dd794eu);
}

TEST(Crc32c, EmptyIsZero)
{
    EXPECT_EQ(crc32c(nullptr, 0), 0u);
}

TEST(Crc32c, UnalignedTailMatchesBytewise)
{
    // Slicing path (>= 8 bytes) and byte path must agree with a
    // byte-at-a-time reference fold.
    Rng rng(7);
    std::array<std::uint8_t, 61> buf;
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng.next());
    std::uint32_t whole = crc32c(buf.data(), buf.size());
    std::uint32_t split = crc32c(buf.data(), 13);
    split = crc32c(buf.data() + 13, buf.size() - 13, split);
    EXPECT_EQ(whole, split);
}

TEST(LineChecksum, DistinguishesLineFromPageTag)
{
    std::array<std::uint8_t, kPageBytes> page{};
    std::uint64_t lc = lineChecksum(page.data());
    std::uint64_t pc = pageChecksum(page.data());
    EXPECT_NE(lc >> 56, pc >> 56);
}

class BitFlipProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitFlipProperty, SingleBitFlipChangesLineChecksum)
{
    Rng rng(GetParam());
    std::array<std::uint8_t, kLineBytes> line;
    for (auto &b : line)
        b = static_cast<std::uint8_t>(rng.next());
    std::uint64_t before = lineChecksum(line.data());
    std::size_t byte = rng.nextBounded(kLineBytes);
    unsigned bit = static_cast<unsigned>(rng.nextBounded(8));
    line[byte] ^= static_cast<std::uint8_t>(1u << bit);
    EXPECT_NE(before, lineChecksum(line.data()))
        << "flip at byte " << byte << " bit " << bit;
}

TEST_P(BitFlipProperty, SingleBitFlipChangesPageChecksum)
{
    Rng rng(GetParam() + 1000);
    std::array<std::uint8_t, kPageBytes> page;
    for (auto &b : page)
        b = static_cast<std::uint8_t>(rng.next());
    std::uint64_t before = pageChecksum(page.data());
    page[rng.nextBounded(kPageBytes)] ^=
        static_cast<std::uint8_t>(1u << rng.nextBounded(8));
    EXPECT_NE(before, pageChecksum(page.data()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitFlipProperty,
                         ::testing::Range(0u, 32u));

TEST(XorLine, SelfInverse)
{
    Rng rng(3);
    std::array<std::uint8_t, kLineBytes> a, b, saved;
    for (std::size_t i = 0; i < kLineBytes; i++) {
        a[i] = static_cast<std::uint8_t>(rng.next());
        b[i] = static_cast<std::uint8_t>(rng.next());
    }
    saved = a;
    xorLine(a.data(), b.data());
    xorLine(a.data(), b.data());
    EXPECT_EQ(a, saved);
}

TEST(XorLine, IntoMatchesInPlace)
{
    Rng rng(4);
    std::array<std::uint8_t, kLineBytes> a, b, out, inplace;
    for (std::size_t i = 0; i < kLineBytes; i++) {
        a[i] = static_cast<std::uint8_t>(rng.next());
        b[i] = static_cast<std::uint8_t>(rng.next());
    }
    inplace = a;
    xorLine(inplace.data(), b.data());
    xorLineInto(out.data(), a.data(), b.data());
    EXPECT_EQ(out, inplace);
}

TEST(XorLine, AliasedDestination)
{
    // xorLineInto must tolerate dst == a (used in parity rebuild).
    Rng rng(5);
    std::array<std::uint8_t, kLineBytes> a, b, expect;
    for (std::size_t i = 0; i < kLineBytes; i++) {
        a[i] = static_cast<std::uint8_t>(rng.next());
        b[i] = static_cast<std::uint8_t>(rng.next());
        expect[i] = a[i] ^ b[i];
    }
    xorLineInto(a.data(), a.data(), b.data());
    EXPECT_EQ(a, expect);
}

TEST(LineIsZero, Works)
{
    std::array<std::uint8_t, kLineBytes> line{};
    EXPECT_TRUE(lineIsZero(line.data()));
    line[63] = 1;
    EXPECT_FALSE(lineIsZero(line.data()));
}

TEST(Fletcher64, SensitiveToOrder)
{
    std::array<std::uint8_t, 16> a{};
    a[0] = 1;
    std::array<std::uint8_t, 16> b{};
    b[8] = 1;
    EXPECT_NE(fletcher64(a.data(), a.size()),
              fletcher64(b.data(), b.size()));
}

TEST(Fletcher64, TailBytes)
{
    const char *s = "abcdefg";  // 7 bytes: 1 word + 3 tail bytes
    EXPECT_NE(fletcher64(s, 7), fletcher64(s, 6));
}

}  // namespace
}  // namespace tvarak
