/**
 * @file
 * Access-trace record & replay tests.
 *
 * The load-bearing property (ISSUE 3 acceptance criterion): a trace
 * recorded once under Baseline, replayed under each of the four
 * designs, produces Stats bit-identical to direct execution of the
 * same workload under that design — for both a raw-access workload
 * (stream triad, RawCoverage commit path) and a transactional
 * key-value workload (C-Tree inserts, PmemPool commit path).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "apps/stream/stream.hh"
#include "apps/trees/tree_workload.hh"
#include "test_util.hh"
#include "trace/trace.hh"

namespace tvarak {
namespace {

/** Two stream-triad threads over small persistent arrays. */
WorkloadFactory
streamFactory()
{
    return [](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        auto scheme = makeScheme(mem.design(), mem);
        WorkloadSet set;
        StreamWorkload::Params p;
        p.kernel = StreamWorkload::Kernel::Triad;
        p.chunkBytes = 64 * 1024;
        p.sliceLines = 256;
        for (int t = 0; t < 2; t++) {
            set.workloads.push_back(std::make_unique<StreamWorkload>(
                mem, fs, t, scheme.get(), p));
        }
        set.shared = std::shared_ptr<void>(
            scheme.release(),
            [](void *q) { delete static_cast<RedundancyScheme *>(q); });
        set.beforeMeasure = [](MemorySystem &m) { m.dropCaches(); };
        return set;
    };
}

/** Two C-Tree insert-only instances (transactional commit path). */
WorkloadFactory
ctreeFactory()
{
    return [](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        auto scheme = makeScheme(mem.design(), mem);
        WorkloadSet set;
        TreeWorkload::Params p;
        p.kind = MapKind::CTree;
        p.mix = TreeWorkload::Mix::InsertOnly;
        p.preload = 512;
        p.ops = 512;
        p.sliceOps = 128;
        p.poolBytes = 4ull << 20;
        for (int t = 0; t < 2; t++) {
            set.workloads.push_back(std::make_unique<TreeWorkload>(
                mem, fs, t, scheme.get(), p));
        }
        set.shared = std::shared_ptr<void>(
            scheme.release(),
            [](void *q) { delete static_cast<RedundancyScheme *>(q); });
        return set;
    };
}

/** Record under Baseline, then assert replay == direct per design. */
void
expectReplayEquivalence(const WorkloadFactory &make, const char *label)
{
    SimConfig cfg = test::smallConfig();
    trace::RecordResult rec = trace::recordExperiment(
        cfg, DesignKind::Baseline, make, label);
    ASSERT_NE(rec.trace, nullptr);
    EXPECT_GT(rec.trace->eventCount, 0u);

    // The recording run is itself an undisturbed Baseline run.
    RunResult directBase =
        runExperiment(cfg, DesignKind::Baseline, make);
    EXPECT_EQ(statsDiff(rec.result.stats, directBase.stats), "")
        << label << ": recording perturbed the recorded run";

    for (DesignKind d : allDesigns()) {
        RunResult direct = runExperiment(cfg, d, make);
        RunResult replayed = trace::replayExperiment(rec.trace, d);
        EXPECT_EQ(statsDiff(direct.stats, replayed.stats), "")
            << label << " under " << designName(d);
        EXPECT_EQ(direct.runtimeCycles, replayed.runtimeCycles);
    }
}

TEST(Trace, StreamReplayBitIdenticalAllDesigns)
{
    expectReplayEquivalence(streamFactory(), "stream-triad");
}

TEST(Trace, CtreeReplayBitIdenticalAllDesigns)
{
    expectReplayEquivalence(ctreeFactory(), "ctree-insert");
}

TEST(Trace, VarintZigzagRoundTrip)
{
    const std::uint64_t values[] = {0, 1, 127, 128, 300, 16383, 16384,
                                    ~std::uint64_t{0}};
    std::vector<std::uint8_t> buf;
    for (std::uint64_t v : values)
        trace::putVarint(buf, v);
    const std::uint8_t *p = buf.data();
    const std::uint8_t *end = p + buf.size();
    for (std::uint64_t v : values)
        EXPECT_EQ(trace::getVarint(p, end), v);
    EXPECT_EQ(p, end);

    const std::int64_t deltas[] = {0, 1, -1, 63, -64, 1'000'000,
                                   -1'000'000};
    for (std::int64_t s : deltas)
        EXPECT_EQ(trace::unzigzag(trace::zigzag(s)), s);
}

TEST(Trace, WriterCursorRoundTrip)
{
    trace::TraceWriter w(test::smallConfig(), DesignKind::Baseline,
                         "unit");
    const std::uint8_t payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    w.onRead(0, 0x1000, 64);
    w.onWrite(1, 0x2000, payload, sizeof(payload));
    w.onCompute(0, 42);
    w.onComputeChecksum(1, 4096);
    w.onDropCaches();
    DirtyRange r;
    r.vaddr = 0x3000;
    r.len = 16;
    r.objBase = lineBase(r.vaddr);
    r.objLen = kLineBytes;
    r.csumVaddr = 0x9000;
    w.onCommit(1, {r}, true, true);
    w.onFsCreate("f", 4096, 3);
    w.onFsPwrite(0, 3, 128, payload, sizeof(payload));
    w.onMarker(trace::kMarkerResetStats);
    auto t = w.finish();
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->eventCount, 9u);
    EXPECT_EQ(t->threads, 2u);

    trace::TraceCursor c(*t);
    trace::TraceEvent e;
    ASSERT_TRUE(c.next(e));
    EXPECT_EQ(e.op, trace::Op::Read);
    EXPECT_EQ(e.tid, 0);
    EXPECT_EQ(e.vaddr, 0x1000u);
    EXPECT_EQ(e.len, 64u);
    ASSERT_TRUE(c.next(e));
    EXPECT_EQ(e.op, trace::Op::Write);
    EXPECT_EQ(e.tid, 1);
    EXPECT_EQ(e.vaddr, 0x2000u);
    ASSERT_EQ(e.len, sizeof(payload));
    EXPECT_EQ(std::memcmp(e.payload, payload, sizeof(payload)), 0);
    ASSERT_TRUE(c.next(e));
    EXPECT_EQ(e.op, trace::Op::Compute);
    EXPECT_EQ(e.cycles, 42u);
    ASSERT_TRUE(c.next(e));
    EXPECT_EQ(e.op, trace::Op::ComputeChecksum);
    EXPECT_EQ(e.bytes, 4096u);
    ASSERT_TRUE(c.next(e));
    EXPECT_EQ(e.op, trace::Op::DropCaches);
    ASSERT_TRUE(c.next(e));
    EXPECT_EQ(e.op, trace::Op::Commit);
    EXPECT_TRUE(e.runScheme);
    EXPECT_TRUE(e.countsTxCommit);
    ASSERT_EQ(e.ranges.size(), 1u);
    EXPECT_EQ(e.ranges[0].vaddr, r.vaddr);
    EXPECT_EQ(e.ranges[0].len, r.len);
    EXPECT_EQ(e.ranges[0].objBase, r.objBase);
    EXPECT_EQ(e.ranges[0].objLen, r.objLen);
    EXPECT_EQ(e.ranges[0].csumVaddr, r.csumVaddr);
    EXPECT_TRUE(e.ranges[0].appData);
    ASSERT_TRUE(c.next(e));
    EXPECT_EQ(e.op, trace::Op::FsCreate);
    EXPECT_EQ(e.name, "f");
    EXPECT_EQ(e.bytes, 4096u);
    EXPECT_EQ(e.fd, 3);
    ASSERT_TRUE(c.next(e));
    EXPECT_EQ(e.op, trace::Op::FsPwrite);
    EXPECT_EQ(e.fd, 3);
    EXPECT_EQ(e.offset, 128u);
    ASSERT_EQ(e.len, sizeof(payload));
    EXPECT_EQ(std::memcmp(e.payload, payload, sizeof(payload)), 0);
    ASSERT_TRUE(c.next(e));
    EXPECT_EQ(e.op, trace::Op::Marker);
    EXPECT_EQ(e.subtype, trace::kMarkerResetStats);
    EXPECT_FALSE(c.next(e));
}

TEST(Trace, SaveLoadRoundTrip)
{
    const char *path = "test_trace_roundtrip.trace";
    SimConfig cfg = test::smallConfig();
    trace::RecordResult rec = trace::recordExperiment(
        cfg, DesignKind::Baseline, streamFactory(), "stream-triad");
    ASSERT_NE(rec.trace, nullptr);
    ASSERT_TRUE(rec.trace->save(path));

    auto loaded = trace::TraceData::load(path);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->version, rec.trace->version);
    EXPECT_EQ(loaded->recordedDesign, rec.trace->recordedDesign);
    EXPECT_EQ(loaded->configFingerprint, rec.trace->configFingerprint);
    EXPECT_EQ(loaded->threads, rec.trace->threads);
    EXPECT_EQ(loaded->workloadName, rec.trace->workloadName);
    EXPECT_EQ(loaded->eventCount, rec.trace->eventCount);
    EXPECT_EQ(loaded->records, rec.trace->records);

    // A loaded trace replays like the in-memory one.
    RunResult a = trace::replayExperiment(rec.trace, DesignKind::Tvarak);
    RunResult b = trace::replayExperiment(loaded, DesignKind::Tvarak);
    EXPECT_EQ(statsDiff(a.stats, b.stats), "");
    std::remove(path);
}

TEST(Trace, LoadRejectsGarbage)
{
    EXPECT_EQ(trace::TraceData::load("no-such-file.trace"), nullptr);
    const char *path = "test_trace_garbage.trace";
    std::FILE *f = std::fopen(path, "wb");  // lint:allow(R7)
    ASSERT_NE(f, nullptr);
    std::fputs("not a trace", f);
    std::fclose(f);
    EXPECT_EQ(trace::TraceData::load(path), nullptr);
    std::remove(path);
}

TEST(Trace, ConfigSerializationRoundTrip)
{
    SimConfig cfg = test::smallConfig();
    cfg.tvarak.syncVerification = true;
    cfg.prefetchDegree = 2;
    auto blob = trace::serializeConfig(cfg);
    SimConfig back;
    ASSERT_TRUE(trace::deserializeConfig(blob, back));
    EXPECT_EQ(trace::serializeConfig(back), blob);
    EXPECT_EQ(back.cores, cfg.cores);
    EXPECT_EQ(back.llcBank.sizeBytes, cfg.llcBank.sizeBytes);
    EXPECT_TRUE(back.tvarak.syncVerification);
    EXPECT_EQ(back.prefetchDegree, 2u);

    blob.pop_back();
    EXPECT_FALSE(trace::deserializeConfig(blob, back));
}

}  // namespace
}  // namespace tvarak
