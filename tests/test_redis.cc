/**
 * @file
 * Functional tests for the Redis-equivalent store: set/get semantics,
 * incremental rehashing, transactionality, and TVARAK invariants.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "apps/redis/redis.hh"
#include "test_util.hh"

namespace tvarak {
namespace {

class RedisTest : public ::testing::Test
{
  protected:
    RedisTest()
        : mem(test::smallConfig(), DesignKind::Tvarak),
          fs(mem),
          pool(mem, fs, "redis", 8ull << 20, nullptr, 1),
          store(mem, pool, 8, 8)  // tiny table: rehash early and often
    {}

    void key(std::uint64_t id, char *out)
    {
        std::snprintf(out, RedisStore::kKeyBytes, "key:%011llu",
                      static_cast<unsigned long long>(id));
    }

    MemorySystem mem;
    DaxFs fs;
    PmemPool pool;
    RedisStore store;
};

TEST_F(RedisTest, GetMissingReturnsFalse)
{
    char k[16];
    std::uint64_t v = 0;
    key(1, k);
    EXPECT_FALSE(store.get(0, k, &v));
}

TEST_F(RedisTest, SetGetRoundtrip)
{
    char k[16];
    key(42, k);
    std::uint64_t w = 0x1234, r = 0;
    store.set(0, k, &w);
    ASSERT_TRUE(store.get(0, k, &r));
    EXPECT_EQ(r, w);
    EXPECT_EQ(store.used(), 1u);
}

TEST_F(RedisTest, SetOverwrites)
{
    char k[16];
    key(7, k);
    std::uint64_t v1 = 1, v2 = 2, r = 0;
    store.set(0, k, &v1);
    store.set(0, k, &v2);
    ASSERT_TRUE(store.get(0, k, &r));
    EXPECT_EQ(r, v2);
    EXPECT_EQ(store.used(), 1u);
}

TEST_F(RedisTest, SurvivesManyRehashes)
{
    // 8 initial buckets + 500 keys => several table doublings, all
    // performed incrementally while serving requests.
    char k[16];
    std::uint64_t r;
    for (std::uint64_t id = 0; id < 500; id++) {
        std::uint64_t v = id * 3 + 1;
        key(id, k);
        store.set(0, k, &v);
    }
    EXPECT_EQ(store.used(), 500u);
    for (std::uint64_t id = 0; id < 500; id++) {
        key(id, k);
        ASSERT_TRUE(store.get(0, k, &r)) << "key " << id;
        EXPECT_EQ(r, id * 3 + 1);
    }
}

TEST_F(RedisTest, GetsDriveRehashForward)
{
    char k[16];
    std::uint64_t v = 9, r;
    for (std::uint64_t id = 0; id < 64; id++) {
        key(id, k);
        store.set(0, k, &v);
    }
    ASSERT_TRUE(store.rehashing());
    // Issue gets only; the incremental rehash must complete anyway.
    for (int i = 0; i < 200 && store.rehashing(); i++) {
        key(static_cast<std::uint64_t>(i) % 64, k);
        (void)store.get(0, k, &r);
    }
    EXPECT_FALSE(store.rehashing())
        << "gets perform rehash steps, as in Redis";
}

TEST_F(RedisTest, GetsCommitTransactions)
{
    char k[16];
    key(1, k);
    std::uint64_t v = 5;
    store.set(0, k, &v);
    std::uint64_t commits_before = mem.stats().txCommits;
    std::uint64_t r;
    (void)store.get(0, k, &r);
    EXPECT_EQ(mem.stats().txCommits, commits_before + 1)
        << "Redis gets run inside transactions (paper Section IV-B)";
}

TEST_F(RedisTest, DelRemovesKeys)
{
    char k[16];
    std::uint64_t v = 3, r;
    key(1, k);
    EXPECT_FALSE(store.del(0, k)) << "del of a missing key";
    store.set(0, k, &v);
    EXPECT_EQ(store.used(), 1u);
    EXPECT_TRUE(store.del(0, k));
    EXPECT_EQ(store.used(), 0u);
    EXPECT_FALSE(store.get(0, k, &r));
    // Chain integrity: delete the middle of a bucket chain.
    for (std::uint64_t id = 0; id < 30; id++) {
        key(id, k);
        v = id;
        store.set(0, k, &v);
    }
    key(13, k);
    EXPECT_TRUE(store.del(0, k));
    for (std::uint64_t id = 0; id < 30; id++) {
        key(id, k);
        EXPECT_EQ(store.get(0, k, &r), id != 13) << id;
        if (id != 13) {
            EXPECT_EQ(r, id);
        }
    }
}

TEST_F(RedisTest, IncrSemantics)
{
    char k[16];
    key(5, k);
    EXPECT_EQ(store.incr(0, k, 7), 7) << "INCR creates at delta";
    EXPECT_EQ(store.incr(0, k, 3), 10);
    EXPECT_EQ(store.incr(0, k, -4), 6);
    std::uint64_t r = 0;
    ASSERT_TRUE(store.get(0, k, &r));
    EXPECT_EQ(r, 6u);
}

TEST_F(RedisTest, DelKeepsInvariants)
{
    char k[16];
    std::uint64_t v;
    for (std::uint64_t id = 0; id < 300; id++) {
        key(id, k);
        v = id;
        store.set(0, k, &v);
    }
    for (std::uint64_t id = 0; id < 300; id += 3) {
        key(id, k);
        EXPECT_TRUE(store.del(0, k));
    }
    mem.flushAll();
    EXPECT_EQ(fs.scrub(false), 0u);
    EXPECT_EQ(fs.verifyParity(), 0u);
}

TEST_F(RedisTest, TvarakInvariantsAfterChurn)
{
    char k[16];
    Rng rng(3);
    for (int i = 0; i < 2000; i++) {
        std::uint64_t id = rng.nextBounded(300);
        std::uint64_t v = rng.next();
        key(id, k);
        store.set(0, k, &v);
    }
    mem.flushAll();
    EXPECT_EQ(fs.scrub(false), 0u);
    EXPECT_EQ(fs.verifyParity(), 0u);
}

TEST(RedisWorkloadDriver, RunsToCompletion)
{
    MemorySystem mem(test::smallConfig(), DesignKind::Baseline);
    DaxFs fs(mem);
    RedisWorkload::Params p;
    p.mode = RedisWorkload::Mode::SetOnly;
    p.requests = 2000;
    p.keyspace = 512;
    p.poolBytes = 4ull << 20;
    RedisWorkload w(mem, fs, 0, nullptr, p);
    w.setup();
    while (w.step()) {}
    EXPECT_GT(w.store().used(), 0u);
    EXPECT_LE(w.store().used(), 512u);
}

}  // namespace
}  // namespace tvarak
