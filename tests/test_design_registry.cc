/**
 * @file
 * The design registry: lookup semantics, registration invariants, and
 * the refactor's machine-checkable correctness pin — replaying the
 * recorded golden traces under every registered design, with the four
 * paper designs required to reproduce their pre-refactor Stats dumps
 * bit for bit (tests/golden/stats_*.txt).
 */

#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/kernels.hh"
#include "mem/memory_system.hh"
#include "sim/stats.hh"
#include "redundancy/registry.hh"
#include "redundancy/scheme.hh"
#include "trace/trace.hh"

namespace tvarak {
namespace {

std::string
goldenPath(const std::string &file)
{
    return std::string(TVARAK_GOLDEN_DIR) + "/" + file;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing golden file " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

// ------------------------------------------------------------------
// Registry lookup semantics.
// ------------------------------------------------------------------

TEST(DesignRegistry, BuiltinsRegisteredInStableOrder)
{
    const auto &all = allRegisteredDesigns();
    ASSERT_GE(all.size(), 8u);
    const char *expect[] = {"baseline",
                            "tvarak",
                            "txb-object-csums",
                            "txb-page-csums",
                            "vilamb",
                            "tvarak-naive",
                            "tvarak-no-red-cache",
                            "tvarak-no-diffs"};
    for (std::size_t i = 0; i < 8; i++)
        EXPECT_EQ(all[i]->cliName(), expect[i]);
    // Same order again: iteration order is stable across calls.
    const auto &again = allRegisteredDesigns();
    EXPECT_EQ(&all, &again);
}

TEST(DesignRegistry, FindDesignIsCaseInsensitiveOnBothNames)
{
    ASSERT_NE(findDesign("vilamb"), nullptr);
    EXPECT_EQ(findDesign("Vilamb"), findDesign("vilamb"));
    EXPECT_EQ(findDesign("VILAMB"), findDesign("vilamb"));
    // displayName spellings resolve too (classic CLI compatibility).
    EXPECT_EQ(findDesign("TxB-Page-Csums"), findDesign("txb-page-csums"));
    EXPECT_EQ(findDesign("Baseline"), findDesign("baseline"));
    EXPECT_EQ(findDesign("no-such-design"), nullptr);
    EXPECT_EQ(findDesign(""), nullptr);
}

TEST(DesignRegistry, DesignOfReturnsCanonicalNotVariant)
{
    EXPECT_EQ(designOf(DesignKind::Tvarak).cliName(), "tvarak");
    EXPECT_EQ(designOf(DesignKind::Baseline).cliName(), "baseline");
    EXPECT_EQ(designOf(DesignKind::Vilamb).cliName(), "vilamb");
    for (DesignKind d : allDesigns())
        EXPECT_TRUE(isRegisteredKind(d));
    EXPECT_TRUE(isRegisteredKind(DesignKind::Vilamb));
    EXPECT_FALSE(isRegisteredKind(static_cast<DesignKind>(200)));
}

TEST(DesignRegistry, PaperDesignsInPaperOrder)
{
    auto paper = paperDesigns();
    ASSERT_EQ(paper.size(), 4u);
    EXPECT_EQ(paper[0]->displayName(), std::string("Baseline"));
    EXPECT_EQ(paper[1]->displayName(), std::string("Tvarak"));
    EXPECT_EQ(paper[2]->displayName(), std::string("TxB-Object-Csums"));
    EXPECT_EQ(paper[3]->displayName(), std::string("TxB-Page-Csums"));
}

TEST(DesignRegistry, RegisteredNameListMentionsEveryDesign)
{
    std::string names = registeredNameList();
    for (const Design *d : allRegisteredDesigns())
        EXPECT_NE(names.find(d->cliName()), std::string::npos)
            << d->cliName();
}

// ------------------------------------------------------------------
// Policy bits and variant config pinning.
// ------------------------------------------------------------------

TEST(DesignRegistry, PolicyBitsMatchTheDesignTaxonomy)
{
    const Design &base = designOf(DesignKind::Baseline);
    EXPECT_FALSE(base.engineCoversDaxData());
    EXPECT_TRUE(base.absorbsWritesWhileDegraded());
    EXPECT_EQ(base.faultDetection(), FaultDetection::None);

    const Design &tvk = designOf(DesignKind::Tvarak);
    EXPECT_TRUE(tvk.engineCoversDaxData());
    EXPECT_TRUE(tvk.coversMappedFiles());
    EXPECT_TRUE(tvk.absorbsWritesWhileDegraded());
    EXPECT_TRUE(tvk.maintainsMappedParity());
    EXPECT_TRUE(tvk.detectsTransientReads());
    EXPECT_EQ(tvk.faultDetection(), FaultDetection::FillVerify);

    const Design &obj = designOf(DesignKind::TxBObjectCsums);
    EXPECT_FALSE(obj.coversMappedFiles());
    EXPECT_TRUE(obj.maintainsMappedParity());
    EXPECT_EQ(obj.faultDetection(), FaultDetection::ObjectSweep);

    // Vilamb is the TxB-Page machine model, batched: same coverage
    // surface, same scrub-based detection.
    const Design &pg = designOf(DesignKind::TxBPageCsums);
    const Design &vl = designOf(DesignKind::Vilamb);
    for (const Design *d : {&pg, &vl}) {
        EXPECT_FALSE(d->engineCoversDaxData()) << d->cliName();
        EXPECT_TRUE(d->coversMappedFiles()) << d->cliName();
        EXPECT_FALSE(d->absorbsWritesWhileDegraded()) << d->cliName();
        EXPECT_TRUE(d->maintainsMappedParity()) << d->cliName();
        EXPECT_FALSE(d->detectsTransientReads()) << d->cliName();
        EXPECT_EQ(d->faultDetection(), FaultDetection::PageScrub)
            << d->cliName();
    }
}

TEST(DesignRegistry, VariantsPinAblationSwitchesPlainTvarakDoesNot)
{
    struct Expect {
        const char *name;
        bool cl, cache, diffs;
    };
    const Expect expects[] = {
        {"tvarak-naive", false, false, false},
        {"tvarak-no-red-cache", true, false, false},
        {"tvarak-no-diffs", true, true, false},
    };
    for (const Expect &e : expects) {
        const Design *d = findDesign(e.name);
        ASSERT_NE(d, nullptr) << e.name;
        EXPECT_EQ(d->kind(), DesignKind::Tvarak) << e.name;
        SimConfig cfg;
        d->adjustConfig(cfg);
        EXPECT_EQ(cfg.tvarak.useDaxClChecksums, e.cl) << e.name;
        EXPECT_EQ(cfg.tvarak.useRedundancyCaching, e.cache) << e.name;
        EXPECT_EQ(cfg.tvarak.useDataDiffs, e.diffs) << e.name;
    }
    // The plain design leaves the deprecated switches alone, so traces
    // that serialized non-default values replay identically.
    SimConfig cfg;
    cfg.tvarak.useDataDiffs = false;
    designOf(DesignKind::Tvarak).adjustConfig(cfg);
    EXPECT_FALSE(cfg.tvarak.useDataDiffs);
}

TEST(DesignRegistry, VilambDesignVendsItsAsyncScheme)
{
    SimConfig cfg;
    cfg.cores = 2;
    cfg.nvm.dimmBytes = 16ull << 20;
    MemorySystem mem(cfg, designOf(DesignKind::Vilamb));
    auto scheme = mem.designObj().makeScheme(mem);
    ASSERT_NE(scheme, nullptr);
    EXPECT_EQ(std::string(scheme->name()), "Vilamb-Async");
    // The scheme-less designs vend nothing.
    EXPECT_EQ(designOf(DesignKind::Baseline).makeScheme(mem), nullptr);
    EXPECT_EQ(designOf(DesignKind::Tvarak).makeScheme(mem), nullptr);
}

// ------------------------------------------------------------------
// Refactor invariance: golden traces replayed under every design.
// ------------------------------------------------------------------

class TraceInvariance : public ::testing::TestWithParam<const char *>
{};

TEST_P(TraceInvariance, ReplayMatchesPreRefactorGoldens)
{
    const std::string id = GetParam();
    auto trace = trace::TraceData::load(goldenPath(id + ".trace"));
    ASSERT_NE(trace, nullptr);

    for (const Design *d : allRegisteredDesigns()) {
        RunResult r = trace::replayExperiment(trace, *d);
        EXPECT_GT(r.runtimeCycles, 0u) << d->cliName();
        if (d != &designOf(d->kind()))
            continue;  // variants have no pre-refactor golden
        if (d->kind() == DesignKind::Vilamb)
            continue;  // promoted post-goldens; pinned for cycles below
        std::ostringstream os;
        r.stats.dump(os);
        EXPECT_EQ(os.str(),
                  readFile(goldenPath("stats_" + id + "_" +
                                      d->displayName() + ".txt")))
            << id << " under " << d->displayName()
            << ": replayed Stats differ from the pre-refactor golden";
    }
}

INSTANTIATE_TEST_SUITE_P(GoldenTraces, TraceInvariance,
                         ::testing::Values("stream", "ctree"));

TEST(TraceInvariance, KernelBackendsReplayBitIdentical)
{
    // The dispatch contract: simulated Stats are a function of the
    // trace and the design, never of the host's SIMD level. Replay
    // every design under the forced scalar backend and under the best
    // available one; statsDiff must come back empty.
    auto trace = trace::TraceData::load(goldenPath("stream.trace"));
    ASSERT_NE(trace, nullptr);
    kernels::Backend best = kernels::bestBackend();
    for (const Design *d : allRegisteredDesigns()) {
        ASSERT_TRUE(kernels::selectBackend(kernels::Backend::Scalar));
        RunResult scalar = trace::replayExperiment(trace, *d);
        ASSERT_TRUE(kernels::selectBackend(best));
        RunResult simd = trace::replayExperiment(trace, *d);
        EXPECT_EQ(statsDiff(scalar.stats, simd.stats), "")
            << d->cliName() << ": scalar vs "
            << kernels::backendName(best);
    }
}

TEST(TraceInvariance, AblationVariantsActuallyAblate)
{
    auto trace = trace::TraceData::load(goldenPath("stream.trace"));
    ASSERT_NE(trace, nullptr);
    RunResult full =
        trace::replayExperiment(trace, designOf(DesignKind::Tvarak));
    RunResult naive =
        trace::replayExperiment(trace, *findDesign("tvarak-naive"));
    // The naive controller re-reads whole pages per writeback; on the
    // streaming trace it must cost strictly more than full TVARAK.
    EXPECT_GT(naive.runtimeCycles, full.runtimeCycles);
}

// ------------------------------------------------------------------
// Registration invariants (mutating; keep these last in the file).
// ------------------------------------------------------------------

class NullTestDesign final : public Design
{
  public:
    NullTestDesign(std::string cli, std::string display)
        : Design(DesignKind::Baseline, std::move(cli),
                 std::move(display))
    {}
};

TEST(DesignRegistryMutation, DuplicateRegistrationDies)
{
    static NullTestDesign dupeCli("TVARAK", "Test-Dupe-A");
    static NullTestDesign dupeDisplay("test-dupe-b", "txb-page-csums");
    EXPECT_DEATH(registerDesign(&dupeCli), "collides");
    EXPECT_DEATH(registerDesign(&dupeDisplay), "collides");
}

TEST(DesignRegistryMutation, NewDesignsAppendInRegistrationOrder)
{
    static NullTestDesign extra("test-extra", "Test-Extra");
    std::size_t before = allRegisteredDesigns().size();
    registerDesign(&extra);
    const auto &all = allRegisteredDesigns();
    ASSERT_EQ(all.size(), before + 1);
    EXPECT_EQ(all.back(), &extra);
    EXPECT_EQ(findDesign("Test-Extra"), &extra);
    EXPECT_NE(registeredNameList().find("test-extra"),
              std::string::npos);
    // Kind-based resolution still prefers the canonical design.
    EXPECT_EQ(designOf(DesignKind::Baseline).cliName(), "baseline");
}

}  // namespace
}  // namespace tvarak
