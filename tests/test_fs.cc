/**
 * @file
 * DaxFs tests: allocation, DAX map/unmap checksum conversion, the
 * non-DAX software-redundancy I/O path, scrub and recovery.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "checksum/checksum.hh"
#include "fs/dax_fs.hh"
#include "mem/memory_system.hh"
#include "sim/rng.hh"
#include "test_util.hh"

namespace tvarak {
namespace {

// Default test-file size, in pages.
constexpr std::size_t kFilePages = 8;

class FsTest : public ::testing::Test
{
  protected:
    FsTest() : mem(test::smallConfig(), DesignKind::Tvarak), fs(mem) {}

    MemorySystem mem;
    DaxFs fs;
};

TEST_F(FsTest, CreateOpenRoundtrip)
{
    int fd = fs.create("alpha", 10 * kPageBytes);
    EXPECT_EQ(fs.open("alpha"), fd);
    EXPECT_EQ(fs.open("missing"), -1);
    EXPECT_EQ(fs.fileBytes(fd), 10 * kPageBytes);
    EXPECT_EQ(fs.filePages(fd), 10u);
}

TEST_F(FsTest, SizesArePageRounded)
{
    int fd = fs.create("beta", kPageBytes + 1);
    EXPECT_EQ(fs.fileBytes(fd), 2 * kPageBytes);
}

TEST_F(FsTest, FilesGetDisjointPages)
{
    int a = fs.create("a", kFilePages * kPageBytes);
    int b = fs.create("b", kFilePages * kPageBytes);
    for (std::size_t i = 0; i < 8; i++) {
        for (std::size_t j = 0; j < 8; j++)
            EXPECT_NE(fs.filePage(a, i), fs.filePage(b, j));
    }
}

TEST_F(FsTest, FilePagesAreNeverParityPages)
{
    int fd = fs.create("c", 32 * kPageBytes);
    for (std::size_t i = 0; i < 32; i++)
        EXPECT_FALSE(mem.layout().isParityPage(fs.filePage(fd, i)));
}

TEST_F(FsTest, FreshFileScrubsCleanAndParityHolds)
{
    fs.create("d", 16 * kPageBytes);
    EXPECT_EQ(fs.scrub(false), 0u);
    EXPECT_EQ(fs.verifyParity(), 0u);
}

TEST_F(FsTest, MapInstallsClChecksums)
{
    int fd = fs.create("e", 4 * kPageBytes);
    // Pre-populate through the FS write path, then map.
    std::vector<std::uint8_t> data(kPageBytes, 0x5a);
    fs.pwrite(0, fd, 0, data.data(), data.size());
    fs.daxMap(fd);
    Addr line = fs.filePage(fd, 0);
    std::uint64_t stored;
    mem.nvmArray().rawRead(mem.layout().daxClCsumAddr(line), &stored, 8);
    std::uint8_t at_rest[kLineBytes];
    mem.nvmArray().rawRead(line, at_rest, kLineBytes);
    EXPECT_EQ(stored, lineChecksum(at_rest));
    EXPECT_EQ(at_rest[0], 0x5a);
}

TEST_F(FsTest, UnmapRestoresPageChecksums)
{
    int fd = fs.create("f", 4 * kPageBytes);
    Addr base = fs.daxMap(fd);
    mem.write64(0, base + 100, 0x77);
    fs.daxUnmap(fd);
    EXPECT_FALSE(fs.isMapped(fd));
    // Page checksums must now cover the new content.
    EXPECT_EQ(fs.scrub(false), 0u);
    // And TVARAK must no longer intercept accesses to these pages.
    EXPECT_FALSE(mem.tvarak().isDaxData(fs.filePage(fd, 0)));
}

TEST_F(FsTest, MapUnmapRoundtripPreservesData)
{
    int fd = fs.create("g", kFilePages * kPageBytes);
    Addr base = fs.daxMap(fd);
    Rng rng(9);
    std::vector<std::uint64_t> vals(kFilePages * kLinesPerPage);
    for (std::size_t i = 0; i < vals.size(); i++) {
        vals[i] = rng.next();
        mem.write64(0, base + i * kLineBytes, vals[i]);
    }
    fs.daxUnmap(fd);
    Addr base2 = fs.daxMap(fd);
    EXPECT_EQ(base, base2);
    for (std::size_t i = 0; i < vals.size(); i += 17)
        EXPECT_EQ(mem.read64(0, base + i * kLineBytes), vals[i]);
    EXPECT_EQ(fs.scrub(false), 0u);
    EXPECT_EQ(fs.verifyParity(), 0u);
}

TEST_F(FsTest, PwritePreadRoundtripUnmapped)
{
    int fd = fs.create("h", kFilePages * kPageBytes);
    std::vector<std::uint8_t> w(3000);
    Rng rng(1);
    for (auto &b : w)
        b = static_cast<std::uint8_t>(rng.next());
    fs.pwrite(0, fd, 1234, w.data(), w.size());
    std::vector<std::uint8_t> r(w.size());
    EXPECT_TRUE(fs.pread(0, fd, 1234, r.data(), r.size()));
    EXPECT_EQ(r, w);
    mem.flushAll();
    EXPECT_EQ(fs.scrub(false), 0u);
    EXPECT_EQ(fs.verifyParity(), 0u)
        << "software parity path must preserve the stripe invariant";
}

TEST_F(FsTest, PreadDetectsAndRepairsLostWrite)
{
    int fd = fs.create("i", 4 * kPageBytes);
    std::uint64_t v1 = 0xAAAA, v2 = 0xBBBB;
    fs.pwrite(0, fd, 0, &v1, 8);
    mem.flushAll();
    // Lose the next writeback of the first line.
    Addr target = fs.filePage(fd, 0);
    auto &dimm = mem.nvmArray().dimm(mem.nvmArray().dimmOf(target));
    dimm.injectLostWrite(mem.nvmArray().mediaAddrOf(target));
    fs.pwrite(0, fd, 0, &v2, 8);
    mem.dropCaches();
    EXPECT_EQ(dimm.bugsTriggered(), 1u);

    std::uint64_t r = 0;
    EXPECT_TRUE(fs.pread(0, fd, 0, &r, 8));
    EXPECT_EQ(r, v2) << "FS read path must recover the lost write";
    EXPECT_GE(mem.stats().corruptionsDetected, 1u);
    EXPECT_EQ(fs.scrub(false), 0u);
}

TEST_F(FsTest, ScrubRepairsSilentCorruption)
{
    int fd = fs.create("j", 4 * kPageBytes);
    Addr base = fs.daxMap(fd);
    mem.write64(0, base, 0x1234);
    mem.flushAll();
    // Corrupt media behind TVARAK's back via a misdirected write
    // landing from another page's update.
    Addr victim = fs.filePage(fd, 0);
    auto &nvm = mem.nvmArray();
    std::uint8_t junk[kLineBytes];
    std::memset(junk, 0xee, sizeof(junk));
    nvm.dimm(nvm.dimmOf(victim))
        .rawWrite(nvm.mediaAddrOf(victim), junk, kLineBytes);

    EXPECT_EQ(fs.scrub(false), 1u);
    EXPECT_EQ(fs.scrub(true), 1u);   // repair pass
    EXPECT_EQ(fs.scrub(false), 0u);  // now clean
    std::uint64_t at_rest = 0;
    nvm.rawRead(victim, &at_rest, 8);
    EXPECT_EQ(at_rest, 0x1234u);
}

TEST_F(FsTest, NvmFullIsFatal)
{
    EXPECT_DEATH(
        {
            // Far larger than the 64 MB test array.
            fs.create("huge", 1ull << 40);
        },
        "NVM full");
}

TEST_F(FsTest, RemoveRecyclesPages)
{
    int a = fs.create("doomed", kFilePages * kPageBytes);
    Addr first_page = fs.filePage(a, 0);
    Addr base = fs.daxMap(a);
    mem.write64(0, base + 64, 0xdead);
    fs.remove(a);

    // The namespace entry is gone and integrity holds over the zeroed
    // pages.
    EXPECT_EQ(fs.open("doomed"), -1);
    mem.flushAll();
    EXPECT_EQ(fs.verifyParity(), 0u);

    // A new file of the same size reuses the extent, reads as zero,
    // and is fully functional.
    int b = fs.create("reborn", kFilePages * kPageBytes);
    EXPECT_EQ(fs.filePage(b, 0), first_page) << "extent recycled";
    Addr base2 = fs.daxMap(b);
    EXPECT_EQ(mem.read64(0, base2 + 64), 0u)
        << "no data leaks across remove/create";
    mem.write64(0, base2, 77);
    mem.flushAll();
    EXPECT_EQ(fs.scrub(false), 0u);
}

TEST_F(FsTest, RemoveSplitsAndReusesPartially)
{
    int a = fs.create("big", kFilePages * kPageBytes);
    Addr first = fs.filePage(a, 0);
    fs.remove(a);
    int b = fs.create("small1", 3 * kPageBytes);
    int c = fs.create("small2", 3 * kPageBytes);
    EXPECT_EQ(fs.filePage(b, 0), first);
    EXPECT_NE(fs.filePage(c, 0), fs.filePage(b, 0));
    EXPECT_EQ(fs.scrub(false), 0u);
}

TEST_F(FsTest, RemoveMappedFileUnmapsFirst)
{
    int a = fs.create("mapped", 4 * kPageBytes);
    Addr base = fs.daxMap(a);
    mem.write64(0, base, 5);
    fs.remove(a);  // must not panic; handles the unmap itself
    EXPECT_EQ(fs.open("mapped"), -1);
    mem.flushAll();
    EXPECT_EQ(fs.verifyParity(), 0u);
}

TEST(FsDesigns, ScrubSkipsUncoveredMappedFiles)
{
    // Under Baseline, a mapped file has no maintained checksums; scrub
    // must not report garbage (Table I: no coverage while DAX mapped).
    MemorySystem mem(test::smallConfig(), DesignKind::Baseline);
    DaxFs fs(mem);
    int fd = fs.create("k", 4 * kPageBytes);
    Addr base = fs.daxMap(fd);
    mem.write64(0, base, 42);
    mem.flushAll();
    EXPECT_EQ(fs.scrub(false), 0u);
}

}  // namespace
}  // namespace tvarak
