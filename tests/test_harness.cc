/**
 * @file
 * Harness tests: experiment runner semantics (setup/measure split,
 * interleaving, beforeMeasure), report normalization, and SimConfig
 * validation.
 */

#include <gtest/gtest.h>

#include <memory>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "test_util.hh"

namespace tvarak {
namespace {

/** Trivial workload: N timed reads over a small DAX file. */
class PingWorkload final : public Workload
{
  public:
    PingWorkload(MemorySystem &mem, DaxFs &fs, int tid, int steps)
        : mem_(mem), fs_(fs), tid_(tid), steps_(steps)
    {}

    void setup() override
    {
        int fd = fs_.create("ping" + std::to_string(tid_),
                            4 * kPageBytes);
        base_ = fs_.daxMap(fd);
        // Setup work that must NOT be measured:
        for (int i = 0; i < 100; i++)
            mem_.write64(tid_, base_ + 8 * (i % 64), 1);
    }

    bool step() override
    {
        (void)mem_.read64(tid_, base_);
        stepsRun_++;
        return stepsRun_ < steps_;
    }

    int tid() const override { return tid_; }
    std::string name() const override { return "ping"; }
    int stepsRun() const { return stepsRun_; }

  private:
    MemorySystem &mem_;
    DaxFs &fs_;
    int tid_;
    int steps_;
    Addr base_ = 0;
    int stepsRun_ = 0;
};

TEST(Runner, SetupIsNotMeasured)
{
    auto make = [](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        WorkloadSet set;
        set.workloads.push_back(
            std::make_unique<PingWorkload>(mem, fs, 0, 3));
        return set;
    };
    RunResult r =
        runExperiment(test::smallConfig(), DesignKind::Baseline, make);
    // 3 steps x 1 read + the flush tail; far fewer than the 100 setup
    // writes, which must have been excluded by the stats reset.
    EXPECT_LE(r.stats.l1Accesses, 10u);
    EXPECT_GE(r.stats.l1Accesses, 3u);
}

TEST(Runner, InterleavesUnevenWorkloads)
{
    auto make = [](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        WorkloadSet set;
        set.workloads.push_back(
            std::make_unique<PingWorkload>(mem, fs, 0, 2));
        set.workloads.push_back(
            std::make_unique<PingWorkload>(mem, fs, 1, 7));
        return set;
    };
    RunResult r =
        runExperiment(test::smallConfig(), DesignKind::Baseline, make);
    EXPECT_EQ(r.stats.l1Accesses, 9u + /*flush-path accesses*/ 0u);
}

TEST(Runner, BeforeMeasureHookRuns)
{
    bool ran = false;
    auto make = [&ran](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        WorkloadSet set;
        set.workloads.push_back(
            std::make_unique<PingWorkload>(mem, fs, 0, 1));
        set.beforeMeasure = [&ran](MemorySystem &) { ran = true; };
        return set;
    };
    (void)runExperiment(test::smallConfig(), DesignKind::Baseline, make);
    EXPECT_TRUE(ran);
}

TEST(Runner, ResultFieldsConsistent)
{
    auto make = [](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        WorkloadSet set;
        set.workloads.push_back(
            std::make_unique<PingWorkload>(mem, fs, 0, 50));
        return set;
    };
    SimConfig cfg = test::smallConfig();
    RunResult r = runExperiment(cfg, DesignKind::Tvarak, make);
    EXPECT_EQ(r.design, DesignKind::Tvarak);
    EXPECT_EQ(r.runtimeCycles, r.stats.runtimeCycles());
    EXPECT_NEAR(r.runtimeMs,
                static_cast<double>(r.runtimeCycles) /
                    (cfg.coreGhz * 1e6),
                1e-9);
    EXPECT_NEAR(r.energyMj, r.stats.totalEnergy() * 1e-9, 1e-12);
}

TEST(Report, NormalizationAgainstBaseline)
{
    FigureRow row;
    row.workload = "w";
    RunResult base;
    base.runtimeCycles = 1000;
    RunResult tv;
    tv.runtimeCycles = 1030;
    row.results[DesignKind::Baseline] = base;
    row.results[DesignKind::Tvarak] = tv;
    EXPECT_DOUBLE_EQ(normRuntime(row, DesignKind::Tvarak), 1.03);
    EXPECT_DOUBLE_EQ(normRuntime(row, DesignKind::Baseline), 1.0);
}

TEST(Report, AllDesignsInPaperOrder)
{
    const auto &d = allDesigns();
    ASSERT_EQ(d.size(), 4u);
    EXPECT_EQ(d[0], DesignKind::Baseline);
    EXPECT_EQ(d[1], DesignKind::Tvarak);
    EXPECT_EQ(d[2], DesignKind::TxBObjectCsums);
    EXPECT_EQ(d[3], DesignKind::TxBPageCsums);
}

TEST(Runner, FullyDeterministic)
{
    // Same config + same workload => bit-identical statistics. The
    // whole simulator is deterministic (no wall-clock, no host
    // randomness), which is what makes results reproducible and
    // resumable debugging possible.
    auto make = [](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        WorkloadSet set;
        set.workloads.push_back(
            std::make_unique<PingWorkload>(mem, fs, 0, 200));
        set.workloads.push_back(
            std::make_unique<PingWorkload>(mem, fs, 1, 100));
        return set;
    };
    SimConfig cfg = test::smallConfig();
    RunResult a = runExperiment(cfg, DesignKind::Tvarak, make);
    RunResult b = runExperiment(cfg, DesignKind::Tvarak, make);
    EXPECT_EQ(a.runtimeCycles, b.runtimeCycles);
    EXPECT_EQ(a.stats.l1Accesses, b.stats.l1Accesses);
    EXPECT_EQ(a.stats.llcMisses, b.stats.llcMisses);
    EXPECT_EQ(a.stats.nvmAccesses(), b.stats.nvmAccesses());
    EXPECT_DOUBLE_EQ(a.stats.totalEnergy(), b.stats.totalEnergy());
    EXPECT_EQ(a.stats.readVerifications, b.stats.readVerifications);
}

TEST(Config, ValidateCatchesBadGeometry)
{
    SimConfig cfg = test::smallConfig();
    cfg.llcBank.sizeBytes = 100;  // not divisible into ways of lines
    EXPECT_DEATH(cfg.validate(), "ways");

    cfg = test::smallConfig();
    cfg.tvarak.redundancyWays = 10;
    cfg.tvarak.diffWays = 6;  // no data ways left
    EXPECT_DEATH(cfg.validate(), "no data ways");

    cfg = test::smallConfig();
    cfg.nvm.dimms = 1;  // cross-DIMM parity impossible
    EXPECT_DEATH(cfg.validate(), "striped parity");
}

TEST(Config, DesignNamesAreStable)
{
    EXPECT_STREQ(designName(DesignKind::Baseline), "Baseline");
    EXPECT_STREQ(designName(DesignKind::Tvarak), "Tvarak");
    EXPECT_STREQ(designName(DesignKind::TxBObjectCsums),
                 "TxB-Object-Csums");
    EXPECT_STREQ(designName(DesignKind::TxBPageCsums),
                 "TxB-Page-Csums");
}

}  // namespace
}  // namespace tvarak
