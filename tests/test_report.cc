/**
 * @file
 * Golden-file tests for the harness report printers. The bench
 * drivers' human tables and csv lines are parsed by plotting scripts
 * and eyeballed in CI logs, so the exact formatting (column widths,
 * precision, normalization) is pinned here against synthetic rows
 * with hand-checkable values.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/report.hh"

namespace tvarak {
namespace {

RunResult
makeResult(DesignKind d, Cycles cycles, double energyMj,
           std::uint64_t data, std::uint64_t red, std::uint64_t cache)
{
    RunResult r;
    r.design = d;
    r.runtimeCycles = cycles;
    r.energyMj = energyMj;
    r.nvmDataAccesses = data;
    r.nvmRedAccesses = red;
    r.cacheAccesses = cache;
    return r;
}

/** Two workloads; "beta" lacks the TxB designs (the "-" cells). */
std::vector<FigureRow>
sampleRows()
{
    FigureRow alpha;
    alpha.workload = "alpha";
    alpha.results[DesignKind::Baseline] =
        makeResult(DesignKind::Baseline, 1000, 1.0, 100, 0, 1000);
    alpha.results[DesignKind::Tvarak] =
        makeResult(DesignKind::Tvarak, 1250, 1.5, 100, 50, 1200);
    alpha.results[DesignKind::TxBObjectCsums] =
        makeResult(DesignKind::TxBObjectCsums, 1500, 2.0, 100, 100,
                   1400);
    alpha.results[DesignKind::TxBPageCsums] =
        makeResult(DesignKind::TxBPageCsums, 2000, 4.0, 100, 300, 1600);

    FigureRow beta;
    beta.workload = "beta";
    beta.results[DesignKind::Baseline] =
        makeResult(DesignKind::Baseline, 500, 0.5, 40, 0, 800);
    beta.results[DesignKind::Tvarak] =
        makeResult(DesignKind::Tvarak, 600, 0.8, 40, 10, 880);
    return {alpha, beta};
}

TEST(Report, NormRuntime)
{
    auto rows = sampleRows();
    EXPECT_DOUBLE_EQ(normRuntime(rows[0], DesignKind::Baseline), 1.0);
    EXPECT_DOUBLE_EQ(normRuntime(rows[0], DesignKind::Tvarak), 1.25);
    EXPECT_DOUBLE_EQ(normRuntime(rows[1], DesignKind::Tvarak), 1.2);
}

TEST(Report, FigureGroupGolden)
{
    testing::internal::CaptureStdout();
    printFigureGroup("Fig X: sample", sampleRows());
    std::string out = testing::internal::GetCapturedStdout();
    const std::string golden = R"(
== Fig X: sample ==

  Runtime (normalized to Baseline)
  workload                             Baseline             Tvarak   TxB-Object-Csums     TxB-Page-Csums
  alpha                                   1.000              1.250              1.500              2.000
  beta                                    1.000              1.200                  -                  -

  Energy (normalized to Baseline)
  workload                             Baseline             Tvarak   TxB-Object-Csums     TxB-Page-Csums
  alpha                                   1.000              1.500              2.000              4.000
  beta                                    1.000              1.600                  -                  -

  NVM accesses (normalized to Baseline)
  workload                             Baseline             Tvarak   TxB-Object-Csums     TxB-Page-Csums
  alpha                                   1.000              1.500              2.000              4.000
  beta                                    1.000              1.250                  -                  -

  Cache accesses (normalized to Baseline)
  workload                             Baseline             Tvarak   TxB-Object-Csums     TxB-Page-Csums
  alpha                                   1.000              1.200              1.400              1.600
  beta                                    1.000              1.100                  -                  -

  NVM access split (absolute, data + redundancy)
  alpha                      Baseline           data=100          red=0
  alpha                      Tvarak             data=100          red=50
  alpha                      TxB-Object-Csums   data=100          red=100
  alpha                      TxB-Page-Csums     data=100          red=300
  beta                       Baseline           data=40           red=0
  beta                       Tvarak             data=40           red=10
)";
    EXPECT_EQ(out, golden);
}

/**
 * Rows with fault activity grow a resilience section; the all-zero
 * rows of FigureGroupGolden above pin that fault-free benches do not.
 */
TEST(Report, ResilienceSectionGolden)
{
    auto rows = sampleRows();
    Stats &tv = rows[0].results[DesignKind::Tvarak].stats;
    tv.corruptionsDetected = 3;
    tv.recoveries = 3;
    tv.degradedReads = 19390;
    tv.degradedReadsMulti = 421;
    tv.degradedWritesDropped = 12;
    tv.degradedRedSkips = 7;
    tv.rebuildLines = 1572864;
    tv.rebuildRestarts = 2;
    tv.scrubLines = 4096;
    tv.scrubRepairs = 1;
    Stats &pg = rows[1].results[DesignKind::Tvarak].stats;
    pg.scrubLines = 128;

    testing::internal::CaptureStdout();
    printResilienceSection(rows);
    std::string out = testing::internal::GetCapturedStdout();
    const std::string golden = R"(
  Resilience events (absolute; faults, recovery, degraded mode)
  alpha                      Tvarak             det=3        rec=3        dread=19390    mread=421      wdrop=12       rskip=7        rebuild=1572864    restart=2    scrub=4096       fix=1
  beta                       Tvarak             det=0        rec=0        dread=0        mread=0        wdrop=0        rskip=0        rebuild=0          restart=0    scrub=128        fix=0
)";
    EXPECT_EQ(out, golden);

    // Event-free rows print nothing at all (no header, no blank line).
    testing::internal::CaptureStdout();
    printResilienceSection(sampleRows());
    EXPECT_EQ(testing::internal::GetCapturedStdout(), "");

    // printFigureGroup appends the section when events are present.
    testing::internal::CaptureStdout();
    printFigureGroup("Fig Z: faulty", rows);
    out = testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("Resilience events"), std::string::npos);
    EXPECT_NE(out.find("rebuild=1572864"), std::string::npos);
}

TEST(Report, FigureCsvGolden)
{
    testing::internal::CaptureStdout();
    printFigureCsv("fig_x", sampleRows());
    std::string out = testing::internal::GetCapturedStdout();
    const std::string golden = R"(
csv,fig_x,workload,design,runtime_cycles,norm_runtime,energy_mj,nvm_data,nvm_red,cache_accesses
csv,fig_x,alpha,Baseline,1000,1.0000,1.0000,100,0,1000
csv,fig_x,alpha,Tvarak,1250,1.2500,1.5000,100,50,1200
csv,fig_x,alpha,TxB-Object-Csums,1500,1.5000,2.0000,100,100,1400
csv,fig_x,alpha,TxB-Page-Csums,2000,2.0000,4.0000,100,300,1600
csv,fig_x,beta,Baseline,500,1.0000,0.5000,40,0,800
csv,fig_x,beta,Tvarak,600,1.2000,0.8000,40,10,880
)";
    EXPECT_EQ(out, golden);
}

TEST(Report, RuntimeTableGolden)
{
    testing::internal::CaptureStdout();
    printRuntimeTable("Fig Y: sensitivity", {"cfg-a", "cfg-b"},
                      {"stream", "ctree"},
                      {{1.0, 1.125}, {1.25, 1.5}});
    std::string out = testing::internal::GetCapturedStdout();
    const std::string golden = R"(
== Fig Y: sensitivity ==
  workload                              cfg-a            cfg-b
  stream                                1.000            1.125
  ctree                                 1.250            1.500
)";
    EXPECT_EQ(out, golden);
}

}  // namespace
}  // namespace tvarak
