/**
 * @file
 * N-Store tests: WAL-before-data transactions, chain linkage, the
 * fragmented (random) WAL layout, YCSB driver behaviour, and
 * redundancy invariants under TVARAK.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "apps/nstore/nstore.hh"
#include "test_util.hh"

namespace tvarak {
namespace {

class NStoreTest : public ::testing::Test
{
  protected:
    NStoreTest()
        : mem(test::smallConfig(), DesignKind::Tvarak),
          fs(mem),
          store(std::make_shared<NStore>(mem, fs, nullptr, 256, 128, 2))
    {}

    MemorySystem mem;
    DaxFs fs;
    std::shared_ptr<NStore> store;
};

TEST_F(NStoreTest, UpdateThenReadBack)
{
    std::uint8_t w[NStore::kFieldBytes], r[NStore::kFieldBytes];
    std::memset(w, 0x3c, sizeof(w));
    store->updateTx(0, 17, 3, w);
    store->readTx(0, 17, 3, r);
    EXPECT_EQ(std::memcmp(w, r, sizeof(w)), 0);
}

TEST_F(NStoreTest, FieldsAreIndependent)
{
    std::uint8_t a[NStore::kFieldBytes], b[NStore::kFieldBytes];
    std::uint8_t r[NStore::kFieldBytes];
    std::memset(a, 1, sizeof(a));
    std::memset(b, 2, sizeof(b));
    store->updateTx(0, 5, 0, a);
    store->updateTx(0, 5, 9, b);
    store->readTx(0, 5, 0, r);
    EXPECT_EQ(r[0], 1);
    store->readTx(0, 5, 9, r);
    EXPECT_EQ(r[0], 2);
    // The record keeps the tuple id in its header.
    std::uint8_t record[NStore::kTupleBytes];
    store->readRecord(0, 5, record);
    std::uint64_t id;
    std::memcpy(&id, record, 8);
    EXPECT_EQ(id, 5u);
}

TEST_F(NStoreTest, WalChainGrowsPerUpdate)
{
    std::uint8_t v[NStore::kFieldBytes] = {};
    EXPECT_EQ(store->walChainLength(0), 0u);
    for (int i = 0; i < 10; i++)
        store->updateTx(0, static_cast<std::uint64_t>(i), 0, v);
    EXPECT_EQ(store->walChainLength(0), 10u);
    // Client 1 has its own chain.
    EXPECT_EQ(store->walChainLength(1), 0u);
    store->updateTx(1, 3, 1, v);
    EXPECT_EQ(store->walChainLength(1), 1u);
}

TEST_F(NStoreTest, WalBeforeImageHoldsOldValue)
{
    std::uint8_t v1[NStore::kFieldBytes], v2[NStore::kFieldBytes];
    std::memset(v1, 0xaa, sizeof(v1));
    std::memset(v2, 0xbb, sizeof(v2));
    store->updateTx(0, 7, 2, v1);
    store->updateTx(0, 7, 2, v2);
    // The most recent WAL node must hold v1 as the before image:
    // recover it by walking the chain (head = latest).
    // (The chain head is private; verify indirectly: after the two
    // updates the tuple holds v2 and the chain has two nodes.)
    std::uint8_t r[NStore::kFieldBytes];
    store->readTx(0, 7, 2, r);
    EXPECT_EQ(r[0], 0xbb);
    EXPECT_EQ(store->walChainLength(0), 2u);
}

TEST_F(NStoreTest, TvarakInvariantsAfterUpdates)
{
    std::uint8_t v[NStore::kFieldBytes];
    Rng rng(9);
    for (int i = 0; i < 500; i++) {
        std::memset(v, static_cast<int>(i & 0xff), sizeof(v));
        store->updateTx(i % 2, rng.nextBounded(256),
                        rng.nextBounded(NStore::kFields), v);
    }
    mem.flushAll();
    EXPECT_EQ(fs.scrub(false), 0u);
    EXPECT_EQ(fs.verifyParity(), 0u);
}

TEST(NStoreDriver, MixFractions)
{
    EXPECT_DOUBLE_EQ(
        NStoreWorkload::updateFraction(NStoreWorkload::Mix::UpdateHeavy),
        0.9);
    EXPECT_DOUBLE_EQ(
        NStoreWorkload::updateFraction(NStoreWorkload::Mix::Balanced),
        0.5);
    EXPECT_DOUBLE_EQ(
        NStoreWorkload::updateFraction(NStoreWorkload::Mix::ReadHeavy),
        0.1);
}

TEST(NStoreDriver, RunsToCompletion)
{
    MemorySystem mem(test::smallConfig(), DesignKind::Baseline);
    DaxFs fs(mem);
    auto store = std::make_shared<NStore>(mem, fs, nullptr, 512, 256, 2);
    NStoreWorkload::Params p;
    p.mix = NStoreWorkload::Mix::Balanced;
    p.txPerClient = 1000;
    NStoreWorkload w0(mem, store, 0, p);
    NStoreWorkload w1(mem, store, 1, p);
    w0.setup();
    w1.setup();
    bool a = true, b = true;
    while (a || b) {
        if (a)
            a = w0.step();
        if (b)
            b = w1.step();
    }
    EXPECT_GT(store->walChainLength(0), 0u);
}

}  // namespace
}  // namespace tvarak
