/**
 * @file
 * Parallel experiment engine tests: results arrive in submission
 * order, statistics are bit-identical for every worker count (the
 * property that makes --jobs safe to default on), and the edge cases
 * (empty batch, more workers than jobs) behave.
 *
 * Deliberately uses only the runExperiments() API — tvarak-lint rule
 * R6 confines raw threading primitives to src/harness/.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "harness/parallel.hh"
#include "redundancy/registry.hh"
#include "test_util.hh"

namespace tvarak {
namespace {

/** Small DAX read/write workload; step count varies per job so every
 *  job produces distinct statistics. */
class ChurnWorkload final : public Workload
{
  public:
    ChurnWorkload(MemorySystem &mem, DaxFs &fs, int tid, int steps)
        : mem_(mem), fs_(fs), tid_(tid), steps_(steps)
    {}

    void setup() override
    {
        constexpr std::size_t kFilePages = 8;
        int fd = fs_.create("churn" + std::to_string(tid_),
                            kFilePages * kPageBytes);
        base_ = fs_.daxMap(fd);
    }

    bool step() override
    {
        constexpr Addr kWordBytes = sizeof(std::uint64_t);
        Addr a = base_ + kWordBytes * ((stepsRun_ * 7) % 512);
        mem_.write64(tid_, a, static_cast<std::uint64_t>(stepsRun_));
        (void)mem_.read64(tid_, a);
        stepsRun_++;
        return stepsRun_ < steps_;
    }

    int tid() const override { return tid_; }
    std::string name() const override { return "churn"; }

  private:
    MemorySystem &mem_;
    DaxFs &fs_;
    int tid_;
    int steps_;
    Addr base_ = 0;
    int stepsRun_ = 0;
};

WorkloadFactory
churnFactory(int steps)
{
    return [steps](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        WorkloadSet set;
        set.workloads.push_back(
            std::make_unique<ChurnWorkload>(mem, fs, 0, steps));
        set.workloads.push_back(
            std::make_unique<ChurnWorkload>(mem, fs, 1, steps / 2));
        return set;
    };
}

std::vector<ExperimentJob>
mixedBatch()
{
    SimConfig cfg = test::smallConfig();
    std::vector<ExperimentJob> jobs;
    int steps = 100;
    for (DesignKind d : allDesigns()) {
        jobs.push_back({std::string("churn-") + designName(d), cfg,
                        &designOf(d), churnFactory(steps)});
        steps += 60;  // distinct stats per job
    }
    return jobs;
}

TEST(Parallel, JobsInvariantBitIdenticalStats)
{
    // The ISSUE acceptance criterion: jobs=1 vs jobs=4 produce
    // identical Stats dumps for every experiment in the batch.
    auto jobs = mixedBatch();
    auto seq = runExperiments(jobs, 1);
    auto par = runExperiments(jobs, 4);
    ASSERT_EQ(seq.size(), jobs.size());
    ASSERT_EQ(par.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); i++) {
        EXPECT_EQ(statsDiff(seq[i].stats, par[i].stats), "")
            << jobs[i].label;
        EXPECT_EQ(seq[i].runtimeCycles, par[i].runtimeCycles);
        EXPECT_EQ(seq[i].design, par[i].design);
        EXPECT_DOUBLE_EQ(seq[i].energyMj, par[i].energyMj);
    }
}

TEST(Parallel, ResultsInSubmissionOrder)
{
    // Every result slot must hold its own job's outcome, not whichever
    // experiment finished first.
    auto jobs = mixedBatch();
    auto results = runExperiments(jobs, 3);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); i++) {
        EXPECT_EQ(results[i].design, jobs[i].design->kind());
        RunResult direct = runExperiment(jobs[i].cfg, *jobs[i].design,
                                         jobs[i].make);
        EXPECT_EQ(statsDiff(results[i].stats, direct.stats), "")
            << jobs[i].label;
    }
}

TEST(Parallel, EmptyBatch)
{
    EXPECT_TRUE(runExperiments({}, 4).empty());
    EXPECT_TRUE(runExperiments({}).empty());
}

TEST(Parallel, MoreWorkersThanJobs)
{
    auto jobs = mixedBatch();
    jobs.resize(2);
    auto results = runExperiments(jobs, 64);
    ASSERT_EQ(results.size(), 2u);
    RunResult direct =
        runExperiment(jobs[0].cfg, *jobs[0].design, jobs[0].make);
    EXPECT_EQ(statsDiff(results[0].stats, direct.stats), "");
}

TEST(Parallel, ZeroWorkersMeansHardwareConcurrency)
{
    EXPECT_GE(defaultJobs(), 1u);
    auto jobs = mixedBatch();
    jobs.resize(1);
    auto results = runExperiments(jobs, 0);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].design, jobs[0].design->kind());
}

}  // namespace
}  // namespace tvarak
