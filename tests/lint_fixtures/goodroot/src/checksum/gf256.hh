#pragma once

// Fixture GF(2^8) codec header: checksum/ sits at rank 1, the bottom
// of the layering DAG, so upper layers include it freely and it never
// includes upward.
inline unsigned char
fixtureGfDouble(unsigned char a)
{
    return static_cast<unsigned char>((a << 1) ^ (a & 0x80 ? 0x1d : 0));
}
