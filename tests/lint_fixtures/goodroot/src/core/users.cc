// Clean counterpart for the repo-model rules: every stats counter is
// incremented (R11), every config knob is read (R12), and the core ->
// sim include edges point down the layering DAG (R9).
#include "sim/config.hh"
#include "sim/stats.hh"

void
recordAccess(Stats &s, bool hit, bool nvm)
{
    s.accesses++;
    if (!hit)
        s.misses++;
    if (nvm)
        s.nvmReads++;
}

double
costOf(const FixtureParams &p)
{
    return static_cast<double>(p.dimms) * p.readNs;
}
