// Legal downward edge: redundancy/ (rank 6) -> checksum/ (rank 1).
// The Reed-Solomon erasure-coded designs consume the GF(2^8) codec
// this way; R9 must stay quiet.
#include "checksum/gf256.hh"

int
fixtureRsUsesGf()
{
    return fixtureGfDouble(7);
}
