// src/redundancy/registry.* is the one subtree allowed to dispatch on
// DesignKind enumerators: R8 must stay quiet here.

enum class DesignKind { Baseline, Tvarak };

const char *
designName(DesignKind k)
{
    switch (k) {
    case DesignKind::Baseline:
        return "Baseline";
    case DesignKind::Tvarak:
        return "Tvarak";
    }
    return "?";
}
