// Fixture stats registry: the dump below is the single source of
// truth for stats keys, exactly like the real Stats::dump.
#include <ostream>

void
dump(std::ostream &os)
{
    os << "cache.l1.accesses  " << 1 << "\n"
       << "cache.l1.misses    " << 2 << "\n"
       << "mem.nvm.reads      " << 3 << "\n";
}
