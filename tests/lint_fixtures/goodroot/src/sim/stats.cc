// Fixture stats registry: the dump below is the single source of
// truth for stats keys, exactly like the real Stats::dump.
#include <ostream>

#include "sim/stats.hh"

void
dump(const Stats &s, std::ostream &os)
{
    os << "cache.l1.accesses  " << s.accesses << "\n"
       << "cache.l1.misses    " << s.misses << "\n"
       << "mem.nvm.reads      " << s.nvmReads << "\n";
}
