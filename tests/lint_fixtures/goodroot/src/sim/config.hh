#pragma once

struct FixtureParams {
    unsigned long dimms = 4;
    double readNs = 60.0;
};
