#pragma once

// Fixture stats block: every counter is both incremented
// (src/core/users.cc) and reported (src/sim/stats.cc), so R11 stays
// quiet.
struct Stats {
    unsigned long accesses = 0;
    unsigned long misses = 0;
    unsigned long nvmReads = 0;
};
