#include <cstddef>

// Mirrors sim/types.hh: address math goes through named constants.
constexpr std::size_t kLineBytes = 64;

std::size_t
lineOffsetOf(std::size_t addr)
{
    return addr % kLineBytes;
}

const char *
statKey()
{
    return "cache.l1.misses";
}
