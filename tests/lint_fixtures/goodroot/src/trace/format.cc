// Binary file I/O is allowed inside src/trace/ (R7 owner subtree).
#include <cstdio>
#include <fstream>

bool
saveRecords(const char *path)
{
    std::FILE *f = std::fopen(path, "wb");
    if (f == nullptr)
        return false;
    return std::fclose(f) == 0;
}

bool
loadRecords(const char *path)
{
    std::ifstream is(path, std::ios::binary);
    return is.good();
}
