#include <cstddef>
#include <vector>

#include "sim/stats.hh"

// A clean service-layer file: the service -> sim edge points down the
// DAG, and latency values are accumulated in a deterministic order.
unsigned long
sumLatencies(const std::vector<unsigned long> &sorted, Stats &s)
{
    unsigned long sum = 0;
    for (unsigned long v : sorted)
        sum += v;
    s.accesses++;
    return sum;
}
