// src/harness/ is the one subtree allowed raw threading primitives:
// R6 must stay quiet here.
#include <mutex>
#include <thread>

void
poolWorker()
{
    std::mutex mu;
    std::lock_guard<std::mutex> lock(mu);
    (void)std::thread::hardware_concurrency();
}
