// SIMD intrinsics are legal inside src/kernels/: the kernel layer is
// the single owner of vector code (R14 exemption by path).
#include <immintrin.h>

void
xorBlock(unsigned char *dst, const unsigned char *other)
{
    __m128i a =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(dst));
    __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(other));
    _mm_storeu_si128(reinterpret_cast<__m128i *>(dst),
                     _mm_xor_si128(a, b));
}
