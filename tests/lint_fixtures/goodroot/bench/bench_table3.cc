#include <cstdio>

int
main()
{
    unsigned long dimms = 4;
    double readNs = 60.0;
    std::printf("dimms  %lu\nreadNs %f\n", dimms, readNs);
    return 0;
}
