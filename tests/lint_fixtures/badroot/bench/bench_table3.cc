#include <cstdio>

int
main()
{
    unsigned long dimms = 4;
    std::printf("dimms %lu\n", dimms);
    return 0;
}
