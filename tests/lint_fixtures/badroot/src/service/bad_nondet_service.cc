// Seeded violation: nondeterminism on a stats-feeding path (R10) in
// the service layer — this file's include closure reaches
// sim/stats.hh, and arrival seeds must come from the config, never
// from entropy.
#include <random>

#include "sim/stats.hh"

unsigned long
badArrivalSeed()
{
    std::random_device entropy;
    return entropy();
}

void
touchServiceCounters(Stats &s)
{
    s.hits++;
}
