#pragma once

// Stub upper-layer header: the service-rank R9 fixture's
// upward-include target (harness, rank 10, must not reach up here).
inline int
fixtureServiceValue()
{
    return 11;
}
