// Seeded violations: naked lock()/unlock() in the harness (R13);
// critical sections use scoped guards so every exit path releases.
#include <mutex>

int
criticalSection(std::mutex &mu, int v)
{
    mu.lock();
    int doubled = v * 2;
    mu.unlock();
    return doubled;
}

int
allowedRawLock(std::mutex &mu, int v)
{
    mu.lock();  // lint:allow(R13) suppression must hold
    int doubled = v * 2;
    mu.unlock();  // lint:allow(R13)
    return doubled;
}
