// Seeded violation: an upward include edge — harness/ (rank 10) must
// not depend on service/ (rank 11) in the layering DAG (R9). The
// service layer drives the harness, never the other way around.
#include "service/service_api.hh"

int
fixtureHarnessUsesService()
{
    return fixtureServiceValue();
}
