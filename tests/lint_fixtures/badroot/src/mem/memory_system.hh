#pragma once

// Stub upper-layer header: the R9 fixture's upward-include target.
inline int
fixtureMemValue()
{
    return 4;
}
