// Seeded violations: timing constants inlined in a memory model (R5).
double
nvmReadPenalty(double cycles)
{
    double latencyNs = 60.0;
    unsigned long fooLatency = 27;
    return cycles * latencyNs + static_cast<double>(fooLatency);
}
