// Seeded violations: SIMD intrinsics outside src/kernels/ (R14).
#include <immintrin.h>

void
accumulate(unsigned long long *acc, const unsigned long long *w)
{
    *acc = _mm_crc32_u64(*acc, *w);
}

void
allowedSimdUser(unsigned long long *acc, const unsigned long long *w)
{
    *acc = _mm_crc32_u64(*acc, *w);  // lint:allow(R14) suppression must hold
}
