// Second half of the seeded a.hh <-> b.hh include cycle (R9).
#pragma once

#include "layout/a.hh"

struct FixtureB {
    int b = 0;
};
