// Seeded violation: include cycle a.hh <-> b.hh (R9).
#pragma once

#include "layout/b.hh"

struct FixtureA {
    int a = 0;
};
