// Seeded violations: naked geometry literals in address math (R1).
using Addr = unsigned long long;

Addr
lineOffsetOf(Addr addr)
{
    return addr & 63;
}

Addr
pageNumberOf(Addr addr)
{
    return addr / 4096;
}

Addr
allowedPageNumberOf(Addr addr)
{
    return addr / 4096;  // lint:allow(R1) suppression must hold
}
