// Seeded violations: raw threading primitives outside src/harness/ (R6).
#include <thread>

void
spawnWorker()
{
    std::thread worker([] {});
    worker.join();
}

void
allowedMutexUser()
{
    std::mutex mu;  // lint:allow(R6) suppression must hold
    (void)mu;
}
