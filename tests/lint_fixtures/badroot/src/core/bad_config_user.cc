// Config-knob consumer for the R12 fixtures: `dimms` and
// `undocumentedKnob` are read (no R12 finding), `writeOnlyKnob` is
// only ever assigned, and `deadKnob` is never touched — both seeded
// violations anchor on src/sim/config.hh.
#include "sim/config.hh"

unsigned long
readKnobs(const FixtureParams &p)
{
    return p.dimms + p.undocumentedKnob;
}

void
setKnob(FixtureParams &p)
{
    p.writeOnlyKnob = 9;
}
