// Seeded violations: nondeterminism on a stats-feeding path (R10) —
// this file's include closure reaches sim/stats.hh — plus the
// counter increments the stats-dataflow rule (R11) checks against
// the fixture registry in src/sim/stats.cc.
#include <cstdlib>
#include <unordered_set>

#include "sim/stats.hh"

void
touchCounters(Stats &s)
{
    s.hits++;
    s.misses++;
}

unsigned long
badSeed()
{
    return std::rand();
}

unsigned long
allowedSeed()
{
    return std::rand();  // lint:allow(R10) suppression must hold
}

unsigned long
sumUnordered(const std::unordered_set<unsigned long> &work)
{
    unsigned long sum = 0;
    for (unsigned long v : work)
        sum += v;
    return sum;
}
