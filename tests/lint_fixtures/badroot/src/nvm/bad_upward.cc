// Seeded violation: an upward include edge — nvm/ (rank 2) must not
// depend on mem/ (rank 4) in the layering DAG (R9).
#include "mem/memory_system.hh"

// lint:allow(R9) suppression must hold for the line below.
#include "mem/memory_system.hh"

int
fixtureNvmUsesMem()
{
    return fixtureMemValue();
}
