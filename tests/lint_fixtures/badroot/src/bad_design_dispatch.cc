// Seeded violations: DesignKind enumerator dispatch outside
// src/redundancy/registry.* (R8).

enum class DesignKind { Baseline, Tvarak };

bool
isTvarakDesign(DesignKind k)
{
    return k == DesignKind::Tvarak;
}

int
reservedWaysFor(DesignKind k)
{
    return k == DesignKind::Baseline ? 0 : 2;
}

bool
allowedDispatch(DesignKind k)
{
    return k == DesignKind::Baseline;  // lint:allow(R8) must suppress
}
