#include <cstddef>

using namespace std;

std::size_t fixtureValue();
