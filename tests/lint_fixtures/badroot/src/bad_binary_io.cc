// Seeded violations: binary file I/O outside trace/harness/tools (R7).
#include <cstdio>
#include <fstream>

void
writeBlob(const char *path)
{
    std::FILE *f = std::fopen(path, "wb");
    std::fclose(f);
}

void
readBlob(const char *path)
{
    std::ifstream is(path, std::ios::binary);
    (void)is;
}

void
textModeIsFine(const char *path)
{
    std::FILE *f = std::fopen(path, "w");
    std::fclose(f);
    std::ofstream os(path);  // no binary flag: not a finding
    (void)os;
}

void
allowedDump(const char *path)
{
    // lint:allow(R7) suppression must hold
    std::FILE *f = std::fopen(path, "ab");
    std::fclose(f);
}
