// Seeded violation: "cache.l1.misses" is registered twice (R2).
#include <ostream>

void
dump(std::ostream &os)
{
    os << "cache.l1.accesses  " << 1 << "\n"
       << "cache.l1.misses    " << 2 << "\n"
       << "cache.l1.misses    " << 2 << "\n";
}
