// Seeded violation: "cache.l1.misses" is registered twice (R2). The
// dump body also seeds R11: it reports `stale` (never incremented)
// and drops `misses` (incremented in src/core/bad_nondet.cc).
#include <ostream>

#include "sim/stats.hh"

void
dump(const Stats &s, std::ostream &os)
{
    os << "cache.l1.accesses  " << s.hits << "\n"
       << "cache.l1.misses    " << s.stale << "\n"
       << "cache.l1.misses    " << s.stale << "\n";
}
