#pragma once

// Fixture stats block. Two of the three counters are seeded R11
// violations: `misses` is incremented (src/core/bad_nondet.cc) but
// never reported by dump(), and `stale` is reported but never
// incremented anywhere.
struct Stats {
    unsigned long hits = 0;
    unsigned long misses = 0;
    unsigned long stale = 0;
};
