#pragma once

struct FixtureParams {
    unsigned long dimms = 4;
    unsigned long undocumentedKnob = 7;
};
