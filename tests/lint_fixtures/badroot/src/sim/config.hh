#pragma once

// `undocumentedKnob` seeds R3 (missing from the bench dump and the
// design doc). `deadKnob` and `writeOnlyKnob` seed R12 — their R3
// findings are suppressed so each rule trips on its own fixture.
struct FixtureParams {
    unsigned long dimms = 4;
    unsigned long undocumentedKnob = 7;
    unsigned long deadKnob = 1;       // lint:allow(R3)
    unsigned long writeOnlyKnob = 0;  // lint:allow(R3)
};
