// Seeded violation: the GF(2^8) codec lives at the bottom of the
// layering DAG — checksum/ (rank 1) must never include mem/ (rank 4);
// the memory system consumes the erasure decode, not the reverse (R9).
#include "mem/memory_system.hh"

int
fixtureGfUsesMem()
{
    return fixtureMemValue();
}
