// Seeded violation: typo'd stats key splits a counter (R2).
const char *
typoKey()
{
    return "cache.l1.misess";
}
