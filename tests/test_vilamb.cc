/**
 * @file
 * Vilamb (asynchronous redundancy) tests: epoch batching, the window
 * of vulnerability and its closure, and the configurable-overhead
 * trade-off of Table I.
 */

#include <gtest/gtest.h>

#include <memory>

#include "apps/trees/pmem_map.hh"
#include "pmemlib/pmem_pool.hh"
#include "redundancy/vilamb.hh"
#include "test_util.hh"

namespace tvarak {
namespace {

struct VilambRig {
    MemorySystem mem;
    DaxFs fs;
    VilambAsyncCsums scheme;
    PmemPool pool;

    explicit VilambRig(std::size_t epoch)
        : mem(test::smallConfig(), DesignKind::TxBPageCsums),
          fs(mem),
          scheme(mem, epoch),
          pool(mem, fs, "p", 2ull << 20, &scheme, 1)
    {}
};

TEST(Vilamb, BatchesEveryEpoch)
{
    VilambRig rig(4);
    Addr obj = rig.pool.alloc(0, 64);
    std::uint64_t v = 0;
    for (int i = 0; i < 3; i++) {
        rig.pool.txBegin(0);
        v = static_cast<std::uint64_t>(i);
        rig.pool.txWrite(0, obj, &v, 8);
        rig.pool.txCommit(0);
    }
    EXPECT_GT(rig.scheme.pendingPages(), 0u)
        << "mid-epoch: redundancy work deferred";
    // Within one more epoch's worth of commits the batch must fire
    // (allocation-path coverage calls also advance the epoch counter).
    bool drained = false;
    for (int i = 0; i < 4 && !drained; i++) {
        rig.pool.txBegin(0);
        rig.pool.txWrite(0, obj, &v, 8);
        rig.pool.txCommit(0);
        drained = rig.scheme.pendingPages() == 0;
    }
    EXPECT_TRUE(drained) << "epoch must close within epochCommits";
}

TEST(Vilamb, WindowOfVulnerabilityAndClosure)
{
    VilambRig rig(1000);  // long epoch: everything deferred
    Addr obj = rig.pool.alloc(0, 64);
    rig.pool.txBegin(0);
    std::uint64_t v = 42;
    rig.pool.txWrite(0, obj, &v, 8);
    rig.pool.txCommit(0);

    // Mid-epoch: page checksums are stale — the window the paper's
    // Table I calls reduced coverage.
    rig.mem.flushAll();
    EXPECT_GT(rig.fs.scrub(false), 0u)
        << "data changed but its redundancy has not caught up";

    // The daemon catches up: coverage is whole again.
    rig.scheme.drain(0);
    rig.mem.flushAll();
    EXPECT_EQ(rig.fs.scrub(false), 0u);
    EXPECT_EQ(rig.fs.verifyParity(), 0u);
}

TEST(Vilamb, LongerEpochsCostLess)
{
    auto run = [](std::size_t epoch) {
        VilambRig rig(epoch);
        auto map = makeMap(MapKind::CTree, rig.mem, rig.pool, 64);
        rig.mem.stats().reset();
        std::uint8_t value[64] = {};
        for (std::uint64_t k = 0; k < 400; k++)
            map->insert(0, k * 977, value);
        rig.scheme.drain(0);
        return rig.mem.stats().maxThreadCycles();
    };
    Cycles epoch1 = run(1);
    Cycles epoch16 = run(16);
    Cycles epoch64 = run(64);
    EXPECT_LT(epoch16, epoch1);
    EXPECT_LT(epoch64, epoch16);
}

/*
 * The stale-redundancy window against an actual firmware bug: a lost
 * write landing inside the epoch is INVISIBLE to a scrub, because the
 * stale checksums still describe exactly the stale media the bug left
 * behind. Only after the epoch's drain brings the redundancy up to
 * date does the scrub catch — and repair — the corruption. This pins
 * the detection-latency trade-off the paper's Table I attributes to
 * Vilamb: coverage is epoch-delayed, not just cheaper.
 */
TEST(Vilamb, LostWriteInsideEpochIsMissedUntilDrain)
{
    VilambRig rig(1000);  // long epoch: nothing drains on its own
    Addr obj = rig.pool.alloc(0, 64);
    std::uint64_t v1 = 0x1111;
    rig.pool.txBegin(0);
    rig.pool.txWrite(0, obj, &v1, 8);
    rig.pool.txCommit(0);
    rig.scheme.drain(0);
    rig.mem.flushAll();
    ASSERT_EQ(rig.fs.scrub(false), 0u) << "clean baseline";

    // Locate the object's line and page.
    Addr pa;
    bool is_nvm;
    ASSERT_TRUE(rig.mem.translate(obj, pa, is_nvm) && is_nvm);
    Addr g = lineBase(pa - kNvmPhysBase);
    auto &nvm = rig.mem.nvmArray();
    int fd = rig.fs.open("p");
    ASSERT_GE(fd, 0);
    std::size_t objPage = rig.fs.filePages(fd);
    for (std::size_t p = 0; p < rig.fs.filePages(fd); p++)
        if (rig.fs.filePage(fd, p) == pageBase(g))
            objPage = p;
    ASSERT_LT(objPage, rig.fs.filePages(fd));

    // Lose the writeback of the object's line mid-epoch.
    nvm.dimm(nvm.dimmOf(g)).injectLostWrite(nvm.mediaAddrOf(g));
    std::uint64_t v2 = 0x2222;
    rig.pool.txBegin(0);
    rig.pool.txWrite(0, obj, &v2, 8);
    rig.pool.txCommit(0);
    rig.mem.flushAll();

    // The window: the object page's media holds v1, the acknowledged
    // value is v2 — and a scrub of that page sees nothing, because its
    // checksums are equally stale. The corruption is silently missed.
    // (The commit's log-page writebacks landed, so only those pages —
    // data newer than redundancy — are flagged, as the plain
    // window-of-vulnerability test already pins.)
    EXPECT_EQ(rig.fs.scrubPage(fd, objPage, false), 0u)
        << "stale redundancy cannot convict stale data";

    // Epoch closes: redundancy catches up with the acknowledged
    // state, and the same page scrub now convicts the lost write...
    rig.scheme.drain(0);
    rig.mem.flushAll();
    EXPECT_GT(rig.fs.scrubPage(fd, objPage, false), 0u);

    // ...and repairs it from the (now up-to-date) parity.
    rig.fs.scrub(true);
    rig.mem.dropCaches();
    std::uint64_t got = 0;
    rig.mem.read(0, obj, &got, sizeof(got));
    EXPECT_EQ(got, v2);
    EXPECT_EQ(rig.fs.scrub(false), 0u);
    EXPECT_EQ(rig.fs.verifyParity(), 0u);
}

TEST(Vilamb, DedupesRepeatedPageDirtying)
{
    VilambRig rig(64);
    Addr obj = rig.pool.alloc(0, 64);
    std::uint64_t v = 0;
    for (int i = 0; i < 32; i++) {
        rig.pool.txBegin(0);
        v = static_cast<std::uint64_t>(i);
        rig.pool.txWrite(0, obj, &v, 8);
        rig.pool.txCommit(0);
    }
    // 32 commits hit the same handful of pages (object, lane, log).
    EXPECT_LE(rig.scheme.pendingPages(), 12u);
}

}  // namespace
}  // namespace tvarak
