/**
 * @file
 * RNG and distribution tests (determinism, bounds, skew shapes).
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/rng.hh"

namespace tvarak {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42), c(43);
    bool differs = false;
    for (int i = 0; i < 100; i++) {
        std::uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
        differs = differs || va != c.next();
    }
    EXPECT_TRUE(differs);
}

TEST(Rng, BoundedStaysInBounds)
{
    Rng rng(1);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 1000; i++)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(2);
    for (int i = 0; i < 1000; i++) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BoundedRoughlyUniform)
{
    Rng rng(3);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; i++)
        counts[rng.nextBounded(10)]++;
    for (int c : counts)
        EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
}

TEST(Zipf, HeadIsHot)
{
    ZipfGenerator zipf(1000, 0.99, 7);
    std::map<std::uint64_t, int> counts;
    const int n = 100000;
    for (int i = 0; i < n; i++)
        counts[zipf.next()]++;
    // Item 0 is by far the most popular; the top-10 items draw a
    // large fraction of all accesses.
    int head = 0;
    for (std::uint64_t i = 0; i < 10; i++)
        head += counts.count(i) ? counts[i] : 0;
    EXPECT_GT(counts[0], counts.count(500) ? counts[500] * 10 : 100);
    EXPECT_GT(head, n / 5);
}

TEST(Zipf, CoversRange)
{
    ZipfGenerator zipf(50, 0.9, 8);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 50000; i++) {
        std::uint64_t v = zipf.next();
        ASSERT_LT(v, 50u);
        counts[v]++;
    }
    EXPECT_GT(counts.size(), 40u) << "tail must still be reachable";
}

TEST(HotSet, PaperSkew9010)
{
    // "90% of transactions go to 10% of tuples" (paper Section IV-D).
    HotSetGenerator gen(10000, 0.10, 0.90, 5);
    const int n = 200000;
    int hot = 0;
    for (int i = 0; i < n; i++) {
        if (gen.next() < 1000)
            hot++;
    }
    EXPECT_NEAR(static_cast<double>(hot) / n, 0.90, 0.01);
}

TEST(HotSet, DegenerateSingleItem)
{
    HotSetGenerator gen(1, 0.1, 0.9, 6);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(gen.next(), 0u);
}

}  // namespace
}  // namespace tvarak
