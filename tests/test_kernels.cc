/**
 * @file
 * The kernels module's contract: every compiled backend is
 * bit-identical to the scalar reference on random inputs (aligned,
 * unaligned, ragged tails), and backend dispatch honours explicit
 * selection with silent fallback for unavailable or unknown names.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "checksum/checksum.hh"
#include "checksum/gf256.hh"
#include "kernels/kernels.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace tvarak {
namespace {

using kernels::Backend;
using kernels::KernelOps;
using kernels::SeqDesc;

/** Every backend whose CPU requirements this host meets. */
std::vector<Backend>
availableBackends()
{
    std::vector<Backend> out;
    for (std::size_t i = 0; i < kernels::kBackendCount; i++) {
        Backend b = static_cast<Backend>(i);
        if (kernels::backendAvailable(b))
            out.push_back(b);
    }
    return out;
}

/** Random buffer with a guard slack so unaligned views stay in
 *  bounds. */
std::vector<std::uint8_t>
randomBuf(Rng &rng, std::size_t n)
{
    std::vector<std::uint8_t> buf(n);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng.next());
    return buf;
}

// Lengths that exercise the word loop, the vector chunks and every
// tail size: empty, sub-word, sub-vector, one line, ragged multiples.
const std::size_t kLens[] = {0,  1,  3,   7,   8,   9,  15, 16,
                             17, 31, 32,  33,  63,  64, 65, 100,
                             127, 128, 129, 255, 256, 1000};

TEST(KernelDispatch, ScalarAlwaysAvailable)
{
    EXPECT_TRUE(kernels::backendAvailable(Backend::Scalar));
    EXPECT_STREQ(kernels::backendName(Backend::Scalar), "scalar");
    EXPECT_STREQ(kernels::backendName(Backend::Sse42), "sse42");
    EXPECT_STREQ(kernels::backendName(Backend::Avx2), "avx2");
}

TEST(KernelDispatch, ExplicitSelectionRoundTrips)
{
    Backend before = kernels::activeBackend();
    for (Backend b : availableBackends()) {
        ASSERT_TRUE(kernels::selectBackend(b));
        EXPECT_EQ(kernels::activeBackend(), b);
        EXPECT_STREQ(kernels::ops().name, kernels::backendName(b));
    }
    // By name, including "auto".
    ASSERT_TRUE(kernels::selectBackend("scalar"));
    EXPECT_EQ(kernels::activeBackend(), Backend::Scalar);
    ASSERT_TRUE(kernels::selectBackend("auto"));
    EXPECT_EQ(kernels::activeBackend(), kernels::bestBackend());
    // Unknown names are rejected and leave the selection alone.
    Backend current = kernels::activeBackend();
    EXPECT_FALSE(kernels::selectBackend("neon"));
    EXPECT_FALSE(kernels::selectBackend(""));
    EXPECT_EQ(kernels::activeBackend(), current);
    ASSERT_TRUE(kernels::selectBackend(before));
}

TEST(KernelDispatch, BestBackendIsAvailable)
{
    EXPECT_TRUE(kernels::backendAvailable(kernels::bestBackend()));
}

class KernelBackendIdentity
    : public ::testing::TestWithParam<Backend>
{
  protected:
    const KernelOps &simd() { return kernels::opsFor(GetParam()); }
    const KernelOps &ref()
    {
        return kernels::opsFor(Backend::Scalar);
    }
};

TEST_P(KernelBackendIdentity, Crc32cMatchesScalar)
{
    if (!kernels::backendAvailable(GetParam()))
        GTEST_SKIP() << "backend not available on this host";
    Rng rng(0xc5c32c);
    for (std::size_t len : kLens) {
        for (std::size_t off = 0; off < 3; off++) {
            auto buf = randomBuf(rng, len + off);
            std::uint32_t seed =
                static_cast<std::uint32_t>(rng.next());
            EXPECT_EQ(simd().crc32c(buf.data() + off, len, seed),
                      ref().crc32c(buf.data() + off, len, seed))
                << "len " << len << " offset " << off;
        }
    }
}

TEST_P(KernelBackendIdentity, XorKernelsMatchScalar)
{
    if (!kernels::backendAvailable(GetParam()))
        GTEST_SKIP() << "backend not available on this host";
    Rng rng(0x0f0f);
    for (std::size_t len : kLens) {
        auto a = randomBuf(rng, len);
        auto b = randomBuf(rng, len);
        auto dstS = a;
        auto dstV = a;
        ref().xorInto(dstS.data(), b.data(), len);
        simd().xorInto(dstV.data(), b.data(), len);
        EXPECT_EQ(dstS, dstV) << "xorInto len " << len;

        std::vector<std::uint8_t> diffS(len), diffV(len);
        bool nzS = ref().xorDiff3(diffS.data(), a.data(), b.data(), len);
        bool nzV = simd().xorDiff3(diffV.data(), a.data(), b.data(), len);
        EXPECT_EQ(diffS, diffV) << "xorDiff3 len " << len;
        EXPECT_EQ(nzS, nzV) << "xorDiff3 nonzero flag, len " << len;

        // Identical inputs: diff must be all zero and flagged so.
        bool nzZ = simd().xorDiff3(diffV.data(), a.data(), a.data(), len);
        EXPECT_FALSE(nzZ) << "self-diff nonzero, len " << len;
    }
}

TEST_P(KernelBackendIdentity, IsZeroMatchesScalar)
{
    if (!kernels::backendAvailable(GetParam()))
        GTEST_SKIP() << "backend not available on this host";
    Rng rng(0x15ce70);
    for (std::size_t len : kLens) {
        std::vector<std::uint8_t> zeros(len, 0);
        EXPECT_EQ(simd().isZero(zeros.data(), len),
                  ref().isZero(zeros.data(), len));
        EXPECT_TRUE(simd().isZero(zeros.data(), len));
        if (len == 0)
            continue;
        // A single set bit anywhere flips the answer.
        auto buf = zeros;
        buf[rng.nextBounded(len)] = 1;
        EXPECT_FALSE(simd().isZero(buf.data(), len));
        auto rnd = randomBuf(rng, len);
        EXPECT_EQ(simd().isZero(rnd.data(), len),
                  ref().isZero(rnd.data(), len));
    }
}

TEST_P(KernelBackendIdentity, GfMulAccMatchesScalarForEveryCoeff)
{
    if (!kernels::backendAvailable(GetParam()))
        GTEST_SKIP() << "backend not available on this host";
    Rng rng(0x6f256);
    auto src = randomBuf(rng, kLineBytes);
    auto base = randomBuf(rng, kLineBytes);
    for (int c = 0; c < 256; c++) {
        auto dstS = base;
        auto dstV = base;
        ref().gfMulAcc(dstS.data(), src.data(),
                       static_cast<std::uint8_t>(c), kLineBytes);
        simd().gfMulAcc(dstV.data(), src.data(),
                        static_cast<std::uint8_t>(c), kLineBytes);
        EXPECT_EQ(dstS, dstV) << "coeff " << c;
    }
    // Ragged lengths with one nontrivial coefficient.
    for (std::size_t len : kLens) {
        auto s = randomBuf(rng, len);
        std::vector<std::uint8_t> dS(len, 0xa5), dV(len, 0xa5);
        ref().gfMulAcc(dS.data(), s.data(), 0x1d, len);
        simd().gfMulAcc(dV.data(), s.data(), 0x1d, len);
        EXPECT_EQ(dS, dV) << "ragged len " << len;
    }
}

TEST_P(KernelBackendIdentity, CopyLineMatchesScalar)
{
    if (!kernels::backendAvailable(GetParam()))
        GTEST_SKIP() << "backend not available on this host";
    Rng rng(0xc09f);
    auto src = randomBuf(rng, kLineBytes);
    std::array<std::uint8_t, kLineBytes> dst{};
    simd().copyLine(dst.data(), src.data());
    EXPECT_EQ(std::memcmp(dst.data(), src.data(), kLineBytes), 0);
}

TEST_P(KernelBackendIdentity, FindTagMatchesScalar)
{
    if (!kernels::backendAvailable(GetParam()))
        GTEST_SKIP() << "backend not available on this host";
    Rng rng(0xf1bd);
    for (std::size_t n : {std::size_t{0}, std::size_t{1},
                          std::size_t{3}, std::size_t{4},
                          std::size_t{7}, std::size_t{8},
                          std::size_t{11}, std::size_t{16},
                          std::size_t{33}}) {
        std::vector<std::uint64_t> tags(n);
        for (auto &t : tags)
            t = rng.nextBounded(8);  // plenty of duplicates
        for (std::uint64_t key = 0; key < 9; key++) {
            EXPECT_EQ(simd().findTag(tags.data(), n, key),
                      ref().findTag(tags.data(), n, key))
                << "n " << n << " key " << key;
        }
        // First-match semantics when the key repeats.
        if (n >= 2) {
            tags[n / 2] = 99;
            tags[n - 1] = 99;
            EXPECT_EQ(simd().findTag(tags.data(), n, 99), n / 2);
        }
    }
}

TEST_P(KernelBackendIdentity, SequenceCaptureModeMatchesScalar)
{
    if (!kernels::backendAvailable(GetParam()))
        GTEST_SKIP() << "backend not available on this host";
    Rng rng(0x5e01);
    RsCode rs(6, 4);
    for (std::size_t roles = 0; roles <= 4; roles++) {
        auto oldData = randomBuf(rng, kLineBytes);
        auto newData = randomBuf(rng, kLineBytes);
        std::vector<std::array<std::uint8_t, kLineBytes>> parS(roles);
        for (auto &p : parS)
            std::memcpy(p.data(), randomBuf(rng, kLineBytes).data(),
                        kLineBytes);
        auto parV = parS;

        auto runWith = [&](const KernelOps &ops, auto &par,
                           std::uint8_t *diff, std::uint64_t *csum) {
            SeqDesc d;
            d.oldData = oldData.data();
            d.newData = newData.data();
            d.diffOut = diff;
            d.src = diff;
            d.csumOut = csum;
            d.csumTag = kDaxClCsumTag;
            for (std::size_t r = 0; r < roles; r++) {
                d.parity[r] = par[r].data();
                d.coeff[r] = rs.coeff(r % rs.k(), 2);
            }
            d.roles = roles;
            return ops.sequence(d);
        };

        std::array<std::uint8_t, kLineBytes> diffS{}, diffV{};
        std::uint64_t csumS = 0, csumV = 0;
        bool nzS = runWith(ref(), parS, diffS.data(), &csumS);
        bool nzV = runWith(simd(), parV, diffV.data(), &csumV);
        EXPECT_EQ(nzS, nzV);
        EXPECT_EQ(csumS, csumV);
        EXPECT_EQ(diffS, diffV);
        for (std::size_t r = 0; r < roles; r++)
            EXPECT_EQ(parS[r], parV[r]) << "role " << r;
        // The checksum is the widened line checksum of the new data.
        EXPECT_EQ(csumS, lineChecksum(newData.data()));
        // And the diff is old ^ new.
        for (std::size_t i = 0; i < kLineBytes; i++)
            EXPECT_EQ(diffS[i], oldData[i] ^ newData[i]);
    }
}

TEST_P(KernelBackendIdentity, SequenceSourceModeMatchesScalar)
{
    if (!kernels::backendAvailable(GetParam()))
        GTEST_SKIP() << "backend not available on this host";
    Rng rng(0x50c1);
    RsCode rs(6, 2);
    auto src = randomBuf(rng, kLineBytes);
    for (std::size_t roles = 1; roles <= 2; roles++) {
        std::vector<std::array<std::uint8_t, kLineBytes>> parS(roles);
        for (auto &p : parS)
            p.fill(0x3c);
        auto parV = parS;
        std::uint64_t csumS = 0, csumV = 0;

        auto runWith = [&](const KernelOps &ops, auto &par,
                           std::uint64_t *csum) {
            kernels::SeqDesc d;
            d.src = src.data();
            d.csumOut = csum;
            d.csumTag = kObjectCsumTag;
            for (std::size_t r = 0; r < roles; r++) {
                d.parity[r] = par[r].data();
                d.coeff[r] = rs.coeff(r, 1);
            }
            d.roles = roles;
            return ops.sequence(d);
        };
        bool nzS = runWith(ref(), parS, &csumS);
        bool nzV = runWith(simd(), parV, &csumV);
        EXPECT_EQ(nzS, nzV);
        EXPECT_EQ(csumS, csumV);
        for (std::size_t r = 0; r < roles; r++) {
            EXPECT_EQ(parS[r], parV[r]) << "role " << r;
            // Reference semantics: parity ^= coeff * src.
            std::array<std::uint8_t, kLineBytes> expect;
            expect.fill(0x3c);
            RsCode check(6, 2);
            check.updateParity(expect.data(), src.data(), r, 1);
            EXPECT_EQ(parS[r], expect) << "role " << r;
        }
    }
    // An all-zero source line leaves parity untouched and reports it.
    std::array<std::uint8_t, kLineBytes> zeros{}, par{};
    par.fill(0x77);
    auto before = par;
    kernels::SeqDesc d;
    d.src = zeros.data();
    d.parity[0] = par.data();
    d.coeff[0] = 1;
    d.roles = 1;
    EXPECT_FALSE(simd().sequence(d));
    EXPECT_EQ(par, before);
}

TEST_P(KernelBackendIdentity, KernelSequenceBuilderMatchesFacade)
{
    if (!kernels::backendAvailable(GetParam()))
        GTEST_SKIP() << "backend not available on this host";
    Backend before = kernels::activeBackend();
    ASSERT_TRUE(kernels::selectBackend(GetParam()));
    Rng rng(0xb11d);
    auto oldData = randomBuf(rng, kLineBytes);
    auto newData = randomBuf(rng, kLineBytes);
    std::array<std::uint8_t, kLineBytes> diff{}, parity{};
    std::uint64_t csum = 0;
    kernels::KernelSequence seq;
    seq.captureDiff(diff.data(), oldData.data(), newData.data());
    seq.checksum(&csum, kDaxClCsumTag);
    seq.parityXor(parity.data());
    bool nz = seq.run();
    EXPECT_TRUE(nz);
    EXPECT_EQ(csum, lineChecksum(newData.data()));
    for (std::size_t i = 0; i < kLineBytes; i++) {
        EXPECT_EQ(diff[i], oldData[i] ^ newData[i]);
        EXPECT_EQ(parity[i], diff[i]) << "parityXor from zero";
    }
    ASSERT_TRUE(kernels::selectBackend(before));
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, KernelBackendIdentity,
    ::testing::Values(Backend::Scalar, Backend::Sse42, Backend::Avx2),
    [](const ::testing::TestParamInfo<Backend> &info) {
        return kernels::backendName(info.param);
    });

// ------------------------------------------------------------------
// Facade equivalences: the checksum module's entry points are the
// kernels under the active backend.
// ------------------------------------------------------------------

TEST(KernelFacade, ChecksumModuleDelegatesToKernels)
{
    Rng rng(0xfacade);
    auto buf = randomBuf(rng, 3 * kLineBytes + 5);
    EXPECT_EQ(crc32c(buf.data(), buf.size()),
              kernels::ops().crc32c(buf.data(), buf.size(), 0));
    EXPECT_EQ(fletcher64(buf.data(), buf.size()),
              kernels::fletcher64(buf.data(), buf.size()));
    EXPECT_EQ(lineChecksum(buf.data()),
              kDaxClCsumTag |
                  kernels::ops().crc32c(buf.data(), kLineBytes, 0));
}

}  // namespace
}  // namespace tvarak
