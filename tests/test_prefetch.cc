/**
 * @file
 * Prefetcher and stats-reporting tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "fs/dax_fs.hh"
#include "mem/memory_system.hh"
#include "test_util.hh"

namespace tvarak {
namespace {

// Size of the DAX-backed test file, in pages; kColdPage is an index
// whose lines no prior access has pulled into any cache.
constexpr std::size_t kFilePages = 64;
constexpr std::size_t kColdPage = 8;

class PrefetchTest : public ::testing::Test
{
  protected:
    PrefetchTest()
        : mem(test::smallConfig(), DesignKind::Baseline), fs(mem)
    {
        fd = fs.create("f", kFilePages * kPageBytes);
        base = fs.daxMap(fd);
    }

    MemorySystem mem;
    DaxFs fs;
    int fd;
    Addr base = 0;
};

TEST_F(PrefetchTest, SequentialLoadsTriggerPrefetch)
{
    mem.stats().reset();
    // Two consecutive line misses arm the next-line prefetcher.
    (void)mem.read64(0, base);
    (void)mem.read64(0, base + kLineBytes);
    std::uint64_t after_arm = mem.stats().nvmDataReads;
    EXPECT_GT(after_arm, 2u) << "prefetches issued beyond demand";

    // The prefetched lines now hit in the LLC: the demand load is
    // cheap (well under one NVM latency) even though the hit extends
    // the stream with further prefetches off the critical path.
    mem.stats().reset();
    (void)mem.read64(0, base + 2 * kLineBytes);
    EXPECT_LT(mem.stats().threadCycles[0],
              mem.config().nsToCycles(mem.config().nvm.readNs));
}

TEST_F(PrefetchTest, RandomLoadsDoNotPrefetch)
{
    mem.stats().reset();
    (void)mem.read64(0, base);
    (void)mem.read64(0, base + 17 * kLineBytes);
    (void)mem.read64(0, base + 5 * kLineBytes);
    EXPECT_EQ(mem.stats().nvmDataReads, 3u)
        << "non-sequential misses must not speculate";
}

TEST_F(PrefetchTest, PrefetchStopsAtPageBoundary)
{
    mem.stats().reset();
    // Arm at the last two lines of a page.
    (void)mem.read64(0, base + (kLinesPerPage - 2) * kLineBytes);
    (void)mem.read64(0, base + (kLinesPerPage - 1) * kLineBytes);
    // Degree-4 prefetch would cross into the next page; it must not.
    EXPECT_EQ(mem.stats().nvmDataReads, 2u);
}

TEST_F(PrefetchTest, StoresDoNotTrainThePrefetcher)
{
    mem.stats().reset();
    mem.write64(0, base + kColdPage * kPageBytes, 1);
    mem.write64(0, base + kColdPage * kPageBytes + kLineBytes, 2);
    // Write-allocate fills only; no speculative reads.
    EXPECT_EQ(mem.stats().nvmDataReads, 2u);
}

TEST_F(PrefetchTest, DisabledByConfig)
{
    SimConfig cfg = test::smallConfig();
    cfg.prefetchDegree = 0;
    MemorySystem m2(cfg, DesignKind::Baseline);
    DaxFs fs2(m2);
    Addr b2 = fs2.daxMap(fs2.create("g", 16 * kPageBytes));
    m2.stats().reset();
    for (int i = 0; i < 8; i++)
        (void)m2.read64(0, b2 + static_cast<Addr>(i) * kLineBytes);
    EXPECT_EQ(m2.stats().nvmDataReads, 8u);
}

TEST(StatsDump, ContainsEveryFigureQuantity)
{
    Stats s(2, 4);
    s.nvmDataReads = 7;
    s.tvarakCacheAccesses = 3;
    std::ostringstream os;
    s.dump(os);
    std::string out = os.str();
    for (const char *key :
         {"runtime.cycles", "cache.l1.accesses", "cache.tvarak.accesses",
          "mem.nvm.data.reads", "mem.nvm.red.writes", "energy.total.pJ",
          "red.readVerifications", "red.recoveries"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
    EXPECT_NE(out.find("7"), std::string::npos);
}

TEST(StatsReset, ClearsEverything)
{
    Stats s(2, 4);
    s.threadCycles[1] = 5;
    s.dimmBusyCycles[2] = 9;
    s.l1Accesses = 3;
    s.nvmEnergy = 1.5;
    s.corruptionsDetected = 2;
    s.reset();
    EXPECT_EQ(s.runtimeCycles(), 0u);
    EXPECT_EQ(s.l1Accesses, 0u);
    EXPECT_DOUBLE_EQ(s.totalEnergy(), 0.0);
    EXPECT_EQ(s.corruptionsDetected, 0u);
    EXPECT_EQ(s.threadCycles.size(), 2u) << "geometry preserved";
}

}  // namespace
}  // namespace tvarak
