/**
 * @file
 * Whole-DIMM failure end to end: a TVARAK workload survives
 * failDimm() mid-run with zero incorrect reads, keeps running through
 * the online rebuild after replaceDimm(), and the rebuilt array is
 * bit-exact against a twin machine that ran the same operations with
 * no failure. Also: the unmapped (software-redundancy) I/O path under
 * degraded mode, and the incremental background scrubber.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "apps/trees/pmem_map.hh"
#include "checksum/gf256.hh"
#include "fs/scrubber.hh"
#include "pmemlib/pmem_pool.hh"
#include "redundancy/rebuild.hh"
#include "redundancy/registry.hh"
#include "test_util.hh"

namespace tvarak {
namespace {

constexpr std::size_t kValueBytes = 48;
constexpr std::uint64_t kKeys = 96;
constexpr std::size_t kFilePages = 8;

void
valueFor(std::uint64_t key, std::uint64_t version, std::uint8_t *out)
{
    for (std::size_t i = 0; i < kValueBytes; i++) {
        out[i] = static_cast<std::uint8_t>(key * 131 + version * 17 + i);
    }
}

/** One machine + mapped-map workload; `atIter` runs failure-lifecycle
 *  actions on the faulty machine and nothing on the twin, so both see
 *  the identical operation stream. */
struct MapRig {
    explicit MapRig(DesignKind design)
        : mem(test::smallConfig(), design),
          fs(mem),
          pool(mem, fs, "p", 4ull << 20, nullptr, 1),
          map(makeMap(MapKind::CTree, mem, pool, kValueBytes))
    {
    }

    explicit MapRig(const Design &design)
        : mem(test::smallConfig(), design),
          fs(mem),
          pool(mem, fs, "p", 4ull << 20, nullptr, 1),
          map(makeMap(MapKind::CTree, mem, pool, kValueBytes))
    {
    }

    void
    run(const std::function<void(std::size_t)> &atIter)
    {
        std::uint8_t value[kValueBytes];
        for (std::uint64_t k = 0; k < kKeys; k++) {
            valueFor(k, 0, value);
            map->insert(0, k, value);
            version[k] = 0;
        }
        mem.flushAll();
        for (std::size_t i = 0; i < 240; i++) {
            atIter(i);
            std::uint64_t k = (i * 7) % kKeys;
            valueFor(k, i + 1, value);
            ASSERT_TRUE(map->update(0, k, value));
            version[k] = i + 1;
            // The invariant under test: every read during the
            // degraded and rebuilding windows returns exactly the
            // acknowledged data.
            std::uint64_t probe = (i * 13 + 5) % kKeys;
            std::uint8_t expect[kValueBytes];
            std::uint8_t got[kValueBytes] = {};
            valueFor(probe, version[probe], expect);
            ASSERT_TRUE(map->get(0, probe, got)) << "iter " << i;
            ASSERT_EQ(std::memcmp(expect, got, kValueBytes), 0)
                << "iter " << i;
            if (i == 100) {
                // Forces writebacks (dropped on the dead DIMM) and
                // makes every later read re-fill — i.e. reconstruct.
                mem.dropCaches();
            }
        }
        mem.flushAll();
    }

    MemorySystem mem;
    DaxFs fs;
    PmemPool pool;
    std::unique_ptr<PmemMap> map;
    std::map<std::uint64_t, std::uint64_t> version;
};

TEST(DimmFailure, TvarakSurvivesAndRebuildsBitExact)
{
    MapRig faulty(DesignKind::Tvarak);
    MapRig twin(DesignKind::Tvarak);

    std::size_t target =
        faulty.mem.nvmArray().dimmOf(faulty.fs.filePage(0, 1));
    std::unique_ptr<RebuildEngine> rebuild;
    faulty.run([&](std::size_t i) {
        if (i == 50)
            faulty.mem.failDimm(target);
        if (i == 140) {
            faulty.mem.replaceDimm(target);
            rebuild = std::make_unique<RebuildEngine>(faulty.mem,
                                                      &faulty.fs);
        }
        if (rebuild != nullptr && !rebuild->done())
            rebuild->step(512);  // online: interleaved with the workload
    });
    ASSERT_NE(rebuild, nullptr);
    std::uint64_t ctors = RsCode::constructions();
    rebuild->runToCompletion();
    EXPECT_EQ(RsCode::constructions(), ctors)
        << "the rebuild sweep must reuse the cached geometry codec "
           "(zero RsCode constructions per swept line)";
    EXPECT_EQ(faulty.mem.nvmArray().dimmState(target),
              NvmArray::DimmState::Healthy);

    twin.run([](std::size_t) {});

    // The campaign counters prove the windows were actually exercised.
    const Stats &stats = faulty.mem.stats();
    EXPECT_GT(stats.degradedReads, 0u);
    EXPECT_GT(stats.degradedWritesDropped, 0u);
    EXPECT_GT(stats.rebuildLines, 0u);

    // Full redundancy restored...
    faulty.mem.flushAll();
    EXPECT_EQ(faulty.fs.scrub(false), 0u);
    EXPECT_EQ(faulty.fs.verifyParity(), 0u);

    // ...and the raw media is bit-exact against the failure-free twin
    // (data, checksum metadata and parity included).
    NvmArray &a = faulty.mem.nvmArray();
    NvmArray &b = twin.mem.nvmArray();
    ASSERT_EQ(a.totalBytes(), b.totalBytes());
    std::vector<std::uint8_t> ia(a.totalBytes()), ib(b.totalBytes());
    a.rawRead(0, ia.data(), ia.size());
    b.rawRead(0, ib.data(), ib.size());
    if (ia != ib) {
        std::size_t off = 0;
        while (ia[off] == ib[off])
            off++;
        const Layout &layout = faulty.mem.layout();
        FAIL() << "images differ first at global 0x" << std::hex << off
               << (layout.isMetaAddr(off)
                       ? (off < layout.daxClBase() ? " (page csum)"
                                                   : " (dax-cl csum)")
                       : layout.isParityPage(off) ? " (parity)"
                                                  : " (data)");
    }
}

TEST(DimmFailure, RsSecondFailureMidRebuildBitExact)
{
    // The erasure-coded (k = 2) lifecycle in one run: DIMM a fails and
    // is replaced; while its rebuild is in flight, a fails *again*
    // (the sweep must restart from scratch) and then DIMM b fails too,
    // putting two DIMMs down at once. Every acknowledged read in every
    // window must be byte-correct, and the fully rebuilt array must be
    // bit-exact against a never-failed twin.
    const Design *d = findDesign("tvarak-rs4+2");
    ASSERT_NE(d, nullptr);
    ASSERT_EQ(d->survivableFailures(), 2u);
    MapRig faulty(*d);
    MapRig twin(*d);

    NvmArray &nvm = faulty.mem.nvmArray();
    std::size_t a = nvm.dimmOf(faulty.fs.filePage(0, 1));
    std::size_t b = (a + 1) % faulty.mem.config().nvm.dimms;
    std::unique_ptr<RebuildEngine> rebuild;
    faulty.run([&](std::size_t i) {
        if (i == 50)
            faulty.mem.failDimm(a);
        if (i == 90) {
            faulty.mem.replaceDimm(a);
            rebuild = std::make_unique<RebuildEngine>(faulty.mem,
                                                      &faulty.fs);
        }
        if (i == 110) {
            ASSERT_EQ(nvm.dimmState(a),
                      NvmArray::DimmState::Rebuilding)
                << "the restart scenario needs a's rebuild in flight";
            faulty.mem.failDimm(a);  // fail-during-rebuild: restart
            faulty.mem.failDimm(b);  // second concurrent failure
        }
        if (i == 150)
            faulty.mem.replaceDimm(a);
        if (i == 170)
            faulty.mem.replaceDimm(b);
        // Step unconditionally (even when done()): the engine's resync
        // is what adopts the re-replaced DIMMs.
        if (rebuild != nullptr)
            rebuild->step(256);
    });
    ASSERT_NE(rebuild, nullptr);
    std::uint64_t ctors = RsCode::constructions();
    rebuild->runToCompletion();
    EXPECT_EQ(RsCode::constructions(), ctors)
        << "the rebuild sweep must reuse the cached geometry codec "
           "(zero RsCode constructions per swept line)";
    EXPECT_EQ(nvm.dimmState(a), NvmArray::DimmState::Healthy);
    EXPECT_EQ(nvm.dimmState(b), NvmArray::DimmState::Healthy);

    const Stats &stats = faulty.mem.stats();
    EXPECT_GT(stats.degradedReads, 0u);
    EXPECT_GE(stats.rebuildRestarts, 1u)
        << "re-failing a rebuilding DIMM must count as a restart";
    EXPECT_GT(stats.rebuildLines, 0u);
    EXPECT_EQ(stats.corruptionsDetected, 0u)
        << "a 2-of-6 schedule is inside rs4+2's budget";

    twin.run([](std::size_t) {});

    faulty.mem.flushAll();
    twin.mem.flushAll();
    EXPECT_EQ(faulty.fs.scrub(false), 0u);
    EXPECT_EQ(faulty.fs.verifyParity(), 0u);

    NvmArray &tb = twin.mem.nvmArray();
    ASSERT_EQ(nvm.totalBytes(), tb.totalBytes());
    std::vector<std::uint8_t> ia(nvm.totalBytes()), ib(tb.totalBytes());
    nvm.rawRead(0, ia.data(), ia.size());
    tb.rawRead(0, ib.data(), ib.size());
    EXPECT_EQ(ia, ib) << "rebuilt image differs from never-failed twin";
}

TEST(DimmFailure, UnmappedIoDetectsOrServesCorrect)
{
    // The software-redundancy (pread/pwrite) path under Baseline: even
    // with no hardware scheme, unmapped files carry page checksums and
    // parity, so a dead DIMM is either reconstructed around or the
    // loss is *detected* — never a silently wrong read.
    MemorySystem mem(test::smallConfig(), DesignKind::Baseline);
    DaxFs fs(mem);
    int fd = fs.create("f", kFilePages * kPageBytes);
    std::vector<std::uint8_t> page(kPageBytes), got(kPageBytes);
    for (std::size_t p = 0; p < kFilePages; p++) {
        for (std::size_t i = 0; i < kPageBytes; i++)
            page[i] = static_cast<std::uint8_t>(p * 37 + i);
        fs.pwrite(0, fd, p * kPageBytes, page.data(), kPageBytes);
    }
    mem.flushAll();

    std::size_t target = mem.nvmArray().dimmOf(fs.filePage(fd, 0));
    mem.failDimm(target);
    mem.dropCaches();  // cold reads must reconstruct, not hit SRAM

    std::size_t served = 0, detected = 0;
    for (std::size_t p = 0; p < kFilePages; p++) {
        for (std::size_t i = 0; i < kPageBytes; i++)
            page[i] = static_cast<std::uint8_t>(p * 37 + i);
        if (fs.pread(0, fd, p * kPageBytes, got.data(), kPageBytes)) {
            // Acknowledged read: must be byte-correct.
            ASSERT_EQ(std::memcmp(page.data(), got.data(), kPageBytes),
                      0)
                << "page " << p;
            served++;
        } else {
            detected++;  // checksum storage lost with the DIMM
        }
    }
    EXPECT_EQ(served + detected, kFilePages);
    EXPECT_GT(served, 0u);
    EXPECT_GT(mem.stats().degradedReads, 0u);

    // Replace + rebuild restores everything, including the pages
    // whose checksum slots died with the DIMM.
    mem.replaceDimm(target);
    RebuildEngine rebuild(mem, &fs);
    rebuild.runToCompletion();
    mem.flushAll();
    EXPECT_EQ(fs.scrub(false), 0u);
    EXPECT_EQ(fs.verifyParity(), 0u);
    for (std::size_t p = 0; p < kFilePages; p++) {
        for (std::size_t i = 0; i < kPageBytes; i++)
            page[i] = static_cast<std::uint8_t>(p * 37 + i);
        ASSERT_TRUE(
            fs.pread(0, fd, p * kPageBytes, got.data(), kPageBytes));
        ASSERT_EQ(std::memcmp(page.data(), got.data(), kPageBytes), 0);
    }
}

TEST(Scrubber, IncrementalRepairAndDegradedSkip)
{
    MemorySystem mem(test::smallConfig(), DesignKind::Baseline);
    DaxFs fs(mem);
    int fd = fs.create("f", kFilePages * kPageBytes);
    std::vector<std::uint8_t> page(kPageBytes, 0x5a);
    for (std::size_t p = 0; p < kFilePages; p++)
        fs.pwrite(0, fd, p * kPageBytes, page.data(), kPageBytes);
    mem.flushAll();

    // Latent at-rest corruption the application never re-reads.
    Addr victim = fs.filePage(fd, 3) + 5 * kLineBytes;
    std::uint8_t junk[kLineBytes];
    std::memset(junk, 0xa7, sizeof(junk));
    mem.nvmArray().rawWrite(victim, junk, kLineBytes);

    Scrubber scrubber(fs, true);
    std::size_t steps = 0;
    while (scrubber.passes() == 0) {
        scrubber.step(2 * kLinesPerPage);
        ASSERT_LT(++steps, 100u);
    }
    EXPECT_GE(scrubber.badLinesTotal(), 1u);
    EXPECT_GE(mem.stats().scrubRepairs, 1u);
    EXPECT_GT(mem.stats().scrubLines, 0u);
    mem.refreshFromMedia(fs.vbase(fd), kFilePages * kPageBytes);
    EXPECT_EQ(fs.scrub(false), 0u);

    // With a DIMM down the scrubber keeps running and simply skips the
    // degraded pages instead of flagging reconstruction-served data.
    std::size_t target = mem.nvmArray().dimmOf(fs.filePage(fd, 0));
    mem.failDimm(target);
    Scrubber degraded_pass(fs, false);
    while (degraded_pass.passes() == 0)
        degraded_pass.step(4 * kLinesPerPage);
    EXPECT_EQ(degraded_pass.badLinesTotal(), 0u);
}

TEST(Scrubber, CursorPersistsAcrossFailureCycles)
{
    // One Scrubber object stepped across repeated failDimm/replaceDimm
    // cycles — including a k = 2 cycle with two DIMMs down at once —
    // must keep its (fd, page) cursor, keep completing passes, and
    // never flag reconstruction-served or freshly rebuilt data.
    const Design *d = findDesign("tvarak-rs4+2");
    ASSERT_NE(d, nullptr);
    MemorySystem mem(test::smallConfig(), *d);
    DaxFs fs(mem);
    int fd = fs.create("f", kFilePages * kPageBytes);
    std::vector<std::uint8_t> page(kPageBytes);
    for (std::size_t p = 0; p < kFilePages; p++) {
        for (std::size_t i = 0; i < kPageBytes; i++)
            page[i] = static_cast<std::uint8_t>(p * 53 + i);
        fs.pwrite(0, fd, p * kPageBytes, page.data(), kPageBytes);
    }
    mem.flushAll();

    std::size_t dimms = mem.config().nvm.dimms;
    std::size_t a = mem.nvmArray().dimmOf(fs.filePage(fd, 0));
    std::size_t b = (a + 1) % dimms;

    Scrubber scrubber(fs, true);
    auto passUntil = [&](std::size_t target) {
        std::size_t guard = 0;
        while (scrubber.passes() < target) {
            scrubber.step(2 * kLinesPerPage);
            ASSERT_LT(++guard, 200u) << "scrubber stopped advancing";
        }
    };

    for (std::size_t cycle = 0; cycle < 2; cycle++) {
        // Scrub partway into the namespace so the cursor is mid-pass
        // when the failure hits.
        scrubber.step(kLinesPerPage);
        mem.failDimm(a);
        if (cycle == 1)
            mem.failDimm(b);  // k = 2: two DIMMs down at once
        // The scrubber keeps running degraded: it skips dead pages
        // instead of flagging reconstruction-served data.
        passUntil(2 * cycle + 1);
        mem.replaceDimm(a);
        if (cycle == 1)
            mem.replaceDimm(b);
        RebuildEngine rebuild(mem, &fs);
        rebuild.runToCompletion();
        // And a full healthy pass after each rebuild stays clean.
        passUntil(2 * cycle + 2);
    }
    EXPECT_EQ(scrubber.badLinesTotal(), 0u);
    EXPECT_GE(scrubber.passes(), 4u);
    EXPECT_EQ(fs.scrub(false), 0u);
    EXPECT_EQ(fs.verifyParity(), 0u);
}

TEST(Layout, DataPageIndexRoundtrip)
{
    Layout layout(64ull << 20, 4);
    for (std::size_t i = 0; i < layout.allocatableDataPages();
         i += 17) {
        EXPECT_EQ(layout.dataPageIndexOf(layout.nthDataPage(i)), i);
    }
}

}  // namespace
}  // namespace tvarak
