/**
 * @file
 * Layout tests: RAID-5 geometry, metadata regions, address maths.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "layout/layout.hh"

namespace tvarak {
namespace {

TEST(Layout, RegionsAreOrderedAndDisjoint)
{
    Layout layout(64ull << 20, 4);
    EXPECT_EQ(layout.pageCsumBase(), 0u);
    EXPECT_LT(layout.pageCsumBase(), layout.daxClBase());
    EXPECT_LT(layout.daxClBase(), layout.dataBase());
    EXPECT_LT(layout.dataBase(), layout.end());
    EXPECT_EQ(layout.dataBase() % (4 * kPageBytes), 0u)
        << "data region must start on a stripe row";
}

TEST(Layout, MetadataSizedForAllDataPages)
{
    Layout layout(64ull << 20, 4);
    // The page checksum of the *last* data page must fit below the
    // DAX-CL region, and its last line checksum below the data base.
    Addr last_page = layout.end() - kPageBytes;
    EXPECT_LT(layout.pageCsumAddr(last_page), layout.daxClBase());
    EXPECT_LT(layout.daxClCsumAddr(layout.end() - kLineBytes),
              layout.dataBase());
}

class LayoutGeometry : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LayoutGeometry, ParityRotatesAcrossAllMembers)
{
    std::size_t dimms = GetParam();
    Layout layout(32ull << 20, dimms);
    // Over `dimms` consecutive stripes, every member index must serve
    // as parity exactly once (RAID-5 rotation).
    std::set<std::size_t> members;
    for (std::size_t s = 0; s < dimms; s++) {
        Addr in_stripe = layout.dataBase() +
            static_cast<Addr>(s) * dimms * kPageBytes;
        Addr parity = layout.parityPageOf(in_stripe);
        members.insert(static_cast<std::size_t>(
            (parity - layout.dataBase()) / kPageBytes) % dimms);
    }
    EXPECT_EQ(members.size(), dimms);
}

TEST_P(LayoutGeometry, EveryPageIsDataXorParity)
{
    std::size_t dimms = GetParam();
    Layout layout(16ull << 20, dimms);
    std::size_t data_count = 0;
    std::size_t check = std::min<std::size_t>(layout.dataPages(), 4096);
    for (std::size_t p = 0; p < check; p++) {
        Addr page = layout.dataBase() + p * kPageBytes;
        if (!layout.isParityPage(page))
            data_count++;
    }
    EXPECT_EQ(data_count, check - check / dimms);
}

TEST_P(LayoutGeometry, NthDataPageSkipsParityAndCoversAll)
{
    std::size_t dimms = GetParam();
    Layout layout(16ull << 20, dimms);
    std::set<Addr> seen;
    std::size_t n = std::min<std::size_t>(
        layout.allocatableDataPages(), 3000);
    for (std::size_t i = 0; i < n; i++) {
        Addr page = layout.nthDataPage(i);
        EXPECT_FALSE(layout.isParityPage(page)) << "i=" << i;
        EXPECT_TRUE(seen.insert(page).second) << "duplicate at " << i;
        if (i > 0)
            EXPECT_GT(page, layout.nthDataPage(i - 1));
    }
}

TEST_P(LayoutGeometry, StripeDataPagesExcludesParity)
{
    std::size_t dimms = GetParam();
    Layout layout(16ull << 20, dimms);
    std::vector<Addr> pages;
    for (std::size_t s = 0; s < 2 * dimms; s++) {
        Addr in_stripe = layout.dataBase() +
            static_cast<Addr>(s) * dimms * kPageBytes;
        layout.stripeDataPages(in_stripe, pages);
        EXPECT_EQ(pages.size(), dimms - 1);
        Addr parity = layout.parityPageOf(in_stripe);
        for (Addr p : pages) {
            EXPECT_NE(p, parity);
            EXPECT_EQ(layout.stripeOf(p), s);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(DimmCounts, LayoutGeometry,
                         ::testing::Values(2, 3, 4, 6, 8));

TEST(Layout, ParityLineSameInPageOffset)
{
    Layout layout(32ull << 20, 4);
    Addr data_page = layout.nthDataPage(17);
    Addr line = data_page + 23 * kLineBytes;
    Addr parity_line = layout.parityLineOf(line);
    EXPECT_EQ(lineInPage(parity_line), 23u);
    EXPECT_EQ(pageBase(parity_line), layout.parityPageOf(line));
}

TEST(Layout, DaxClChecksumPacking)
{
    Layout layout(32ull << 20, 4);
    Addr page = layout.nthDataPage(5);
    // Eight consecutive line checksums share one checksum line.
    Addr first = layout.daxClCsumLine(page);
    for (std::size_t l = 0; l < kChecksumsPerLine; l++) {
        EXPECT_EQ(layout.daxClCsumLine(page + l * kLineBytes), first);
    }
    EXPECT_NE(layout.daxClCsumLine(page + 8 * kLineBytes), first);
    // Entries are 8 bytes apart.
    EXPECT_EQ(layout.daxClCsumAddr(page + kLineBytes) -
                  layout.daxClCsumAddr(page),
              kChecksumBytes);
}

TEST(Layout, PageChecksumEntriesDistinct)
{
    Layout layout(32ull << 20, 4);
    std::set<Addr> entries;
    for (std::size_t i = 0; i < 512; i++)
        entries.insert(layout.pageCsumAddr(layout.nthDataPage(i)));
    EXPECT_EQ(entries.size(), 512u);
}

}  // namespace
}  // namespace tvarak
