/**
 * @file
 * Layout tests: RAID-5 geometry, metadata regions, address maths.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "layout/layout.hh"

namespace tvarak {
namespace {

TEST(Layout, RegionsAreOrderedAndDisjoint)
{
    Layout layout(64ull << 20, 4);
    EXPECT_EQ(layout.pageCsumBase(), 0u);
    EXPECT_LT(layout.pageCsumBase(), layout.daxClBase());
    EXPECT_LT(layout.daxClBase(), layout.dataBase());
    EXPECT_LT(layout.dataBase(), layout.end());
    EXPECT_EQ(layout.dataBase() % (4 * kPageBytes), 0u)
        << "data region must start on a stripe row";
}

TEST(Layout, MetadataSizedForAllDataPages)
{
    Layout layout(64ull << 20, 4);
    // The page checksum of the *last* data page must fit below the
    // DAX-CL region, and its last line checksum below the data base.
    Addr last_page = layout.end() - kPageBytes;
    EXPECT_LT(layout.pageCsumAddr(last_page), layout.daxClBase());
    EXPECT_LT(layout.daxClCsumAddr(layout.end() - kLineBytes),
              layout.dataBase());
}

class LayoutGeometry : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LayoutGeometry, ParityRotatesAcrossAllMembers)
{
    std::size_t dimms = GetParam();
    Layout layout(32ull << 20, dimms);
    // Over `dimms` consecutive stripes, every member index must serve
    // as parity exactly once (RAID-5 rotation).
    std::set<std::size_t> members;
    for (std::size_t s = 0; s < dimms; s++) {
        Addr in_stripe = layout.dataBase() +
            static_cast<Addr>(s) * dimms * kPageBytes;
        Addr parity = layout.parityPageOf(in_stripe);
        members.insert(static_cast<std::size_t>(
            (parity - layout.dataBase()) / kPageBytes) % dimms);
    }
    EXPECT_EQ(members.size(), dimms);
}

TEST_P(LayoutGeometry, EveryPageIsDataXorParity)
{
    std::size_t dimms = GetParam();
    Layout layout(16ull << 20, dimms);
    std::size_t data_count = 0;
    std::size_t check = std::min<std::size_t>(layout.dataPages(), 4096);
    for (std::size_t p = 0; p < check; p++) {
        Addr page = layout.dataBase() + p * kPageBytes;
        if (!layout.isParityPage(page))
            data_count++;
    }
    EXPECT_EQ(data_count, check - check / dimms);
}

TEST_P(LayoutGeometry, NthDataPageSkipsParityAndCoversAll)
{
    std::size_t dimms = GetParam();
    Layout layout(16ull << 20, dimms);
    std::set<Addr> seen;
    std::size_t n = std::min<std::size_t>(
        layout.allocatableDataPages(), 3000);
    for (std::size_t i = 0; i < n; i++) {
        Addr page = layout.nthDataPage(i);
        EXPECT_FALSE(layout.isParityPage(page)) << "i=" << i;
        EXPECT_TRUE(seen.insert(page).second) << "duplicate at " << i;
        if (i > 0) {
            EXPECT_GT(page, layout.nthDataPage(i - 1));
        }
    }
}

TEST_P(LayoutGeometry, StripeDataPagesExcludesParity)
{
    std::size_t dimms = GetParam();
    Layout layout(16ull << 20, dimms);
    std::vector<Addr> pages;
    for (std::size_t s = 0; s < 2 * dimms; s++) {
        Addr in_stripe = layout.dataBase() +
            static_cast<Addr>(s) * dimms * kPageBytes;
        layout.stripeDataPages(in_stripe, pages);
        EXPECT_EQ(pages.size(), dimms - 1);
        Addr parity = layout.parityPageOf(in_stripe);
        for (Addr p : pages) {
            EXPECT_NE(p, parity);
            EXPECT_EQ(layout.stripeOf(p), s);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(DimmCounts, LayoutGeometry,
                         ::testing::Values(2, 3, 4, 6, 8));

TEST(Layout, ParityLineSameInPageOffset)
{
    Layout layout(32ull << 20, 4);
    Addr data_page = layout.nthDataPage(17);
    Addr line = data_page + 23 * kLineBytes;
    Addr parity_line = layout.parityLineOf(line);
    EXPECT_EQ(lineInPage(parity_line), 23u);
    EXPECT_EQ(pageBase(parity_line), layout.parityPageOf(line));
}

TEST(Layout, DaxClChecksumPacking)
{
    Layout layout(32ull << 20, 4);
    Addr page = layout.nthDataPage(5);
    // Eight consecutive line checksums share one checksum line.
    Addr first = layout.daxClCsumLine(page);
    for (std::size_t l = 0; l < kChecksumsPerLine; l++) {
        EXPECT_EQ(layout.daxClCsumLine(page + l * kLineBytes), first);
    }
    EXPECT_NE(layout.daxClCsumLine(page + kChecksumsPerLine * kLineBytes),
              first);
    // Entries are 8 bytes apart.
    EXPECT_EQ(layout.daxClCsumAddr(page + kLineBytes) -
                  layout.daxClCsumAddr(page),
              kChecksumBytes);
}

TEST(Layout, PageChecksumEntriesDistinct)
{
    Layout layout(32ull << 20, 4);
    std::set<Addr> entries;
    for (std::size_t i = 0; i < 512; i++)
        entries.insert(layout.pageCsumAddr(layout.nthDataPage(i)));
    EXPECT_EQ(entries.size(), 512u);
}

//
// Boundary geometry: the device edges and region seams where
// off-by-one bugs in the address maths would hide.
//

TEST(LayoutBoundary, LastLineOfStripeKeepsParityGeometry)
{
    Layout layout(32ull << 20, 4);
    std::size_t dimms = layout.dimms();
    // Check the first and the very last stripe of the device: the
    // final line of the stripe's last data page must map to the same
    // in-page offset of that stripe's parity page, inside the device.
    for (std::size_t s : {std::size_t{0}, layout.stripes() - 1}) {
        Addr row = layout.dataBase() +
            static_cast<Addr>(s) * dimms * kPageBytes;
        Addr parity = layout.parityPageOf(row);
        Addr last_page = row + (dimms - 1) * kPageBytes;
        if (last_page == parity)
            last_page -= kPageBytes;
        Addr last_line = last_page + (kLinesPerPage - 1) * kLineBytes;
        EXPECT_EQ(layout.stripeOf(last_line), s);
        Addr parity_line = layout.parityLineOf(last_line);
        EXPECT_EQ(lineInPage(parity_line), kLinesPerPage - 1);
        EXPECT_EQ(pageBase(parity_line), parity);
        EXPECT_LE(parity_line + kLineBytes, layout.end());
    }
}

TEST(LayoutBoundary, ParityRotationMatchesFig3For4And8Dimms)
{
    // Stripe s keeps parity on member N-1 - s % N; growing the array
    // from 4 to 8 DIMMs must preserve exactly this rotation schedule.
    for (std::size_t dimms : {std::size_t{4}, std::size_t{8}}) {
        Layout layout(64ull << 20, dimms);
        for (std::size_t s = 0; s < 3 * dimms; s++) {
            Addr row = layout.dataBase() +
                static_cast<Addr>(s) * dimms * kPageBytes;
            Addr parity = layout.parityPageOf(row);
            std::size_t member =
                static_cast<std::size_t>((parity - row) / kPageBytes);
            EXPECT_EQ(member, dimms - 1 - s % dimms)
                << "dimms=" << dimms << " stripe=" << s;
        }
    }
}

TEST(LayoutBoundary, ChecksumSlotPackingWrapsAtLineBoundary)
{
    Layout layout(32ull << 20, 4);
    // Walking lines across a checksum-line seam must fill slots
    // 0..kChecksumsPerLine-1 and then wrap to slot 0 of the next one.
    Addr page = layout.dataBase();
    for (std::size_t l = 0; l < 2 * kChecksumsPerLine; l++) {
        Addr a = page + l * kLineBytes;
        EXPECT_EQ(lineOffset(layout.daxClCsumAddr(a)),
                  (l % kChecksumsPerLine) * kChecksumBytes)
            << "l=" << l;
    }
    // The very last data line's checksum lands in the final (possibly
    // partially used) checksum line, still below the data region.
    Addr last = layout.end() - kLineBytes;
    EXPECT_GE(layout.daxClCsumLine(last), layout.daxClBase());
    EXPECT_LE(layout.daxClCsumAddr(last) + kChecksumBytes,
              layout.dataBase());
}

}  // namespace
}  // namespace tvarak
