/**
 * @file
 * NVM DIMM and firmware-bug model tests (the Section II fault model).
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "nvm/nvm.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "test_util.hh"

namespace tvarak {
namespace {

std::array<std::uint8_t, kLineBytes>
pattern(std::uint8_t seed)
{
    std::array<std::uint8_t, kLineBytes> buf;
    for (std::size_t i = 0; i < buf.size(); i++)
        buf[i] = static_cast<std::uint8_t>(seed + i);
    return buf;
}

TEST(NvmDimm, WriteReadRoundtrip)
{
    NvmDimm dimm(1 << 20);
    auto w = pattern(5);
    dimm.firmwareWrite(kLineBytes * 3, w.data());
    std::array<std::uint8_t, kLineBytes> r{};
    dimm.firmwareRead(kLineBytes * 3, r.data());
    EXPECT_EQ(r, w);
    EXPECT_TRUE(dimm.eccCheck(kLineBytes * 3));
    EXPECT_EQ(dimm.bugsTriggered(), 0u);
}

TEST(NvmDimm, LostWriteKeepsOldDataAndCleanEcc)
{
    NvmDimm dimm(1 << 20);
    auto v1 = pattern(1), v2 = pattern(2);
    dimm.firmwareWrite(0, v1.data());
    dimm.injectLostWrite(0);
    dimm.firmwareWrite(0, v2.data());  // acked but dropped
    std::array<std::uint8_t, kLineBytes> r{};
    dimm.firmwareRead(0, r.data());
    EXPECT_EQ(r, v1) << "lost write must leave old data";
    // The device-level ECC is *consistent* with the (old) data: it
    // cannot flag the lost write (paper Section II-A).
    EXPECT_TRUE(dimm.eccCheck(0));
    EXPECT_EQ(dimm.bugsTriggered(), 1u);
}

TEST(NvmDimm, LostWriteIsSingleShot)
{
    NvmDimm dimm(1 << 20);
    auto v1 = pattern(1), v2 = pattern(2);
    dimm.injectLostWrite(0);
    dimm.firmwareWrite(0, v1.data());  // dropped
    dimm.firmwareWrite(0, v2.data());  // applied
    std::array<std::uint8_t, kLineBytes> r{};
    dimm.firmwareRead(0, r.data());
    EXPECT_EQ(r, v2);
}

TEST(NvmDimm, MisdirectedWriteCorruptsVictimConsistently)
{
    NvmDimm dimm(1 << 20);
    auto green = pattern(3), blue = pattern(4), w = pattern(5);
    dimm.firmwareWrite(0, green.data());           // intended target
    dimm.firmwareWrite(kLineBytes, blue.data());   // victim
    dimm.injectMisdirectedWrite(0, kLineBytes);
    dimm.firmwareWrite(0, w.data());
    std::array<std::uint8_t, kLineBytes> r{};
    dimm.firmwareRead(0, r.data());
    EXPECT_EQ(r, green) << "intended location not updated";
    dimm.firmwareRead(kLineBytes, r.data());
    EXPECT_EQ(r, w) << "victim overwritten";
    // Both locations' ECC pass: the firmware wrote data+ECC as an atom.
    EXPECT_TRUE(dimm.eccCheck(0));
    EXPECT_TRUE(dimm.eccCheck(kLineBytes));
}

TEST(NvmDimm, MisdirectedReadReturnsWrongLocation)
{
    NvmDimm dimm(1 << 20);
    auto a = pattern(6), b = pattern(7);
    dimm.firmwareWrite(0, a.data());
    dimm.firmwareWrite(kLineBytes, b.data());
    dimm.injectMisdirectedRead(0, kLineBytes);
    std::array<std::uint8_t, kLineBytes> r{};
    dimm.firmwareRead(0, r.data());
    EXPECT_EQ(r, b);
    // Media untouched: a retry returns the right data.
    dimm.firmwareRead(0, r.data());
    EXPECT_EQ(r, a);
}

TEST(NvmDimm, BitFlipCaughtByEcc)
{
    NvmDimm dimm(1 << 20);
    auto a = pattern(8);
    dimm.firmwareWrite(0, a.data());
    EXPECT_TRUE(dimm.eccCheck(0));
    dimm.injectBitFlip(5, 3);
    EXPECT_FALSE(dimm.eccCheck(0))
        << "media error must fail device ECC";
}

TEST(NvmDimm, RawAccessBypassesBugs)
{
    NvmDimm dimm(1 << 20);
    auto v = pattern(9);
    dimm.injectLostWrite(0);
    dimm.rawWrite(0, v.data(), kLineBytes);
    std::array<std::uint8_t, kLineBytes> r{};
    dimm.rawRead(0, r.data(), kLineBytes);
    EXPECT_EQ(r, v);
    EXPECT_EQ(dimm.bugsTriggered(), 0u);
}

TEST(NvmArray, PageStripingAcrossDimms)
{
    SimConfig cfg = test::smallConfig();
    Stats stats(1, cfg.nvm.dimms);
    NvmArray arr(cfg.nvm, cfg, stats);
    for (std::size_t p = 0; p < 8; p++) {
        Addr a = static_cast<Addr>(p) * kPageBytes;
        EXPECT_EQ(arr.dimmOf(a), p % cfg.nvm.dimms);
    }
    EXPECT_EQ(arr.mediaAddrOf(5 * kPageBytes + 100u),
              1 * kPageBytes + 100u);
}

TEST(NvmArray, AccessAccounting)
{
    SimConfig cfg = test::smallConfig();
    Stats stats(1, cfg.nvm.dimms);
    NvmArray arr(cfg.nvm, cfg, stats);
    std::array<std::uint8_t, kLineBytes> buf{};
    Cycles rl = arr.access(0, false, buf.data(), false);
    Cycles wl = arr.access(0, true, buf.data(), true);
    EXPECT_EQ(rl, cfg.nsToCycles(cfg.nvm.readNs));
    EXPECT_EQ(wl, cfg.nsToCycles(cfg.nvm.writeNs));
    EXPECT_EQ(stats.nvmDataReads, 1u);
    EXPECT_EQ(stats.nvmRedundancyWrites, 1u);
    EXPECT_GT(stats.dimmBusyCycles[0], 0u);
    EXPECT_DOUBLE_EQ(stats.nvmEnergy,
                     cfg.nvm.readEnergy + cfg.nvm.writeEnergy);
}

TEST(NvmArray, RawSpansPages)
{
    SimConfig cfg = test::smallConfig();
    Stats stats(1, cfg.nvm.dimms);
    NvmArray arr(cfg.nvm, cfg, stats);
    std::vector<std::uint8_t> w(3 * kPageBytes);
    for (std::size_t i = 0; i < w.size(); i++)
        w[i] = static_cast<std::uint8_t>(i * 7);
    arr.rawWrite(kPageBytes / 2, w.data(), w.size());
    std::vector<std::uint8_t> r(w.size());
    arr.rawRead(kPageBytes / 2, r.data(), r.size());
    EXPECT_EQ(r, w);
}

}  // namespace
}  // namespace tvarak
