/**
 * @file
 * Design-space exploration: how many LLC ways should TVARAK borrow?
 *
 * The paper's Section IV-H shows the answer is workload dependent:
 * redundancy-hungry workloads (random writes) want a bigger
 * redundancy partition, cache-sensitive workloads want none of their
 * LLC taken. This example sweeps the redundancy-partition size for a
 * write-heavy and a read-heavy key-value workload and prints a small
 * recommendation table — the kind of tuning a deployment would do
 * with the `TvarakParams` knobs.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "apps/fio/fio.hh"
#include "apps/trees/tree_workload.hh"
#include "harness/runner.hh"
#include "redundancy/scheme.hh"

using namespace tvarak;

namespace {

/** Random 64 B writes: redundancy traffic with no reuse — the
 *  workload that wants a big redundancy partition. */
WorkloadFactory
fioRandWriteFactory()
{
    return [](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        WorkloadSet set;
        FioWorkload::Params p;
        p.pattern = FioWorkload::Pattern::RandWrite;
        p.regionBytes = 2ull << 20;
        for (int t = 0; t < 12; t++) {
            set.workloads.push_back(std::make_unique<FioWorkload>(
                mem, fs, t, nullptr, p));
        }
        set.beforeMeasure = [](MemorySystem &m) { m.dropCaches(); };
        return set;
    };
}

/** Read-only trees whose working set is near the LLC capacity — the
 *  workload that suffers when ways are taken away. */
WorkloadFactory
btreeReadFactory()
{
    return [](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        WorkloadSet set;
        TreeWorkload::Params p;
        p.kind = MapKind::BTree;
        p.mix = TreeWorkload::Mix::ReadOnly;
        p.preload = 32768;
        p.ops = 32768;
        p.poolBytes = 16ull << 20;
        for (int t = 0; t < 12; t++) {
            set.workloads.push_back(std::make_unique<TreeWorkload>(
                mem, fs, t, nullptr, p));
        }
        return set;
    };
}

}  // namespace

int
main()
{
    SimConfig cfg;
    cfg.nvm.dimmBytes = 96ull << 20;
    cfg.dram.sizeBytes = 64ull << 20;

    struct Scenario {
        const char *name;
        WorkloadFactory factory;
    };
    const std::vector<Scenario> scenarios = {
        {"fio rand-write (redundancy-hungry)", fioRandWriteFactory()},
        {"btree read-only (cache-sensitive)", btreeReadFactory()},
    };
    const std::vector<std::size_t> way_options = {1, 2, 4, 8};

    std::printf("%-36s", "workload \\ redundancy ways");
    for (std::size_t w : way_options)
        std::printf(" %8zu", w);
    std::printf("   best\n");

    for (const Scenario &s : scenarios) {
        RunResult base =
            runExperiment(cfg, DesignKind::Baseline, s.factory);
        std::printf("%-36s", s.name);
        double best = 1e9;
        std::size_t best_ways = 0;
        for (std::size_t w : way_options) {
            SimConfig vcfg = cfg;
            vcfg.tvarak.redundancyWays = w;
            RunResult r =
                runExperiment(vcfg, DesignKind::Tvarak, s.factory);
            double norm = static_cast<double>(r.runtimeCycles) /
                static_cast<double>(base.runtimeCycles);
            std::printf(" %8.3f", norm);
            if (norm < best) {
                best = norm;
                best_ways = w;
            }
        }
        std::printf("   %zu ways\n", best_ways);
    }
    std::printf("\n(values are runtime normalized to a no-redundancy "
                "Baseline; lower is better)\n");
    return 0;
}
