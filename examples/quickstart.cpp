/**
 * @file
 * Quickstart: build a TVARAK-protected machine, DAX-map a file, do
 * some I/O, and look at what the redundancy controller did.
 *
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <cstring>
#include <iostream>

#include "fs/dax_fs.hh"
#include "mem/memory_system.hh"

using namespace tvarak;

int
main()
{
    // 1. A Table III machine (12 cores, 24 MB LLC, 4 NVM DIMMs) with
    //    the TVARAK controllers enabled. DesignKind::Baseline /
    //    TxBObjectCsums / TxBPageCsums select the comparison designs.
    SimConfig cfg;
    cfg.nvm.dimmBytes = 64ull << 20;
    cfg.dram.sizeBytes = 64ull << 20;
    MemorySystem mem(cfg, DesignKind::Tvarak);
    DaxFs fs(mem);

    // 2. Create a file and DAX-map it. The file system registers every
    //    page with TVARAK and installs DAX-CL-checksums; from here on,
    //    loads/stores through `mem` are hardware-protected.
    int fd = fs.create("mydata", 256 * kPageBytes);
    Addr base = fs.daxMap(fd);
    std::printf("mapped 1 MB file at vaddr 0x%llx\n",
                static_cast<unsigned long long>(base));

    // 3. Direct access: ordinary loads and stores, no system calls.
    const int tid = 0;
    const char msg[] = "hello, direct-access NVM";
    mem.write(tid, base + 4096, msg, sizeof(msg));
    char back[sizeof(msg)] = {};
    mem.read(tid, base + 4096, back, sizeof(back));
    std::printf("read back: \"%s\"\n", back);

    // 4. Dirty data reaches the NVM media on writeback; TVARAK updates
    //    checksums and cross-DIMM parity on the way out.
    mem.flushAll();
    std::printf("after flush: %llu redundancy updates, "
                "%llu verified fills\n",
                static_cast<unsigned long long>(
                    mem.stats().redundancyUpdates),
                static_cast<unsigned long long>(
                    mem.stats().readVerifications));

    // 5. The at-rest invariants the FS can check any time:
    std::printf("scrub: %zu corrupted lines, parity: %zu bad stripes\n",
                fs.scrub(false), fs.verifyParity());

    // 6. The full Fig 8-style statistics block:
    std::printf("\n-- statistics --\n");
    mem.stats().dump(std::cout);
    return 0;
}
