/**
 * @file
 * Firmware-bug walkthrough: a persistent key-value store survives a
 * lost write, a misdirected write, and a misdirected read — and a
 * Baseline machine silently serves corrupted data from the same bugs.
 *
 * This is the paper's Figures 1 and 2 acted out end-to-end on real
 * bytes: device ECC stays clean through every firmware bug, TVARAK's
 * DAX-CL-checksums catch the mismatch on the next read, and the line
 * is rebuilt from cross-DIMM parity.
 */

#include <cstdio>
#include <cstring>

#include "apps/trees/pmem_map.hh"
#include "fs/dax_fs.hh"
#include "pmemlib/pmem_pool.hh"

using namespace tvarak;

namespace {

struct Machine {
    MemorySystem mem;
    DaxFs fs;
    PmemPool pool;
    std::unique_ptr<PmemMap> map;

    explicit Machine(DesignKind design)
        : mem(
              [] {
                  SimConfig cfg;
                  cfg.nvm.dimmBytes = 64ull << 20;
                  cfg.dram.sizeBytes = 64ull << 20;
                  return cfg;
              }(),
              design),
          fs(mem),
          pool(mem, fs, "kv", 8ull << 20, nullptr, 1),
          map(makeMap(MapKind::BTree, mem, pool, 48))
    {}
};

// 48-byte values: header (16 B) + value fill one cache line exactly,
// so the whole object lives on a single NVM line the demo can target.
constexpr std::size_t kValueBytes = 48;

void
put(Machine &m, std::uint64_t key, char fill)
{
    std::uint8_t value[kValueBytes];
    std::memset(value, fill, sizeof(value));
    m.map->insert(0, key, value);
}

void
overwrite(Machine &m, std::uint64_t key, char fill)
{
    std::uint8_t value[kValueBytes];
    std::memset(value, fill, sizeof(value));
    // In-place update: the same NVM line is rewritten, which is what
    // the injected firmware bug will act on.
    m.map->update(0, key, value);
}

char
get(Machine &m, std::uint64_t key)
{
    std::uint8_t value[kValueBytes] = {};
    if (!m.map->get(0, key, value))
        return '?';
    return static_cast<char>(value[0]);
}

/** NVM-global line address backing @p key's value payload. */
Addr
findValueLine(Machine &m, std::uint64_t key)
{
    Addr vaddr = m.map->valueAddr(0, key);
    Addr paddr;
    bool is_nvm;
    if (vaddr == 0 || !m.mem.translate(vaddr, paddr, is_nvm) || !is_nvm)
        return 0;
    return lineBase(paddr - kNvmPhysBase);
}

}  // namespace

int
main()
{
    std::printf("=== TVARAK machine ===\n");
    Machine tv(DesignKind::Tvarak);
    put(tv, 1, 'A');
    tv.mem.flushAll();  // 'A' at rest, redundancy consistent

    // Overwrite with 'B', but the firmware loses the writeback.
    Addr victim_line = findValueLine(tv, 1);
    std::printf("value of key 1 rests at NVM line 0x%llx\n",
                static_cast<unsigned long long>(victim_line));

    auto &nvm = tv.mem.nvmArray();
    auto &dimm = nvm.dimm(nvm.dimmOf(victim_line));
    dimm.injectLostWrite(nvm.mediaAddrOf(victim_line));
    overwrite(tv, 1, 'B');
    tv.mem.dropCaches();  // cold restart: the lost write is now latent
    std::printf("firmware bugs triggered: %llu\n",
                static_cast<unsigned long long>(dimm.bugsTriggered()));
    std::printf("device ECC on the victim line: %s (blind to the bug)\n",
                dimm.eccCheck(nvm.mediaAddrOf(victim_line)) ? "CLEAN"
                                                            : "ERROR");

    char v = get(tv, 1);
    std::printf("get(1) -> '%c'   [detected %llu corruption(s), "
                "recovered %llu line(s) from parity]\n",
                v,
                static_cast<unsigned long long>(
                    tv.mem.stats().corruptionsDetected),
                static_cast<unsigned long long>(
                    tv.mem.stats().recoveries));

    std::printf("\n=== Baseline machine, same bug ===\n");
    Machine base(DesignKind::Baseline);
    put(base, 1, 'A');
    base.mem.flushAll();
    Addr victim2 = findValueLine(base, 1);
    auto &nvm2 = base.mem.nvmArray();
    nvm2.dimm(nvm2.dimmOf(victim2))
        .injectLostWrite(nvm2.mediaAddrOf(victim2));
    overwrite(base, 1, 'B');
    base.mem.dropCaches();
    std::printf("get(1) -> '%c'   [silent corruption: the application "
                "sees stale data]\n",
                get(base, 1));
    return 0;
}
