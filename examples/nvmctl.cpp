/**
 * @file
 * nvmctl: an operator's tour of the storage stack — layout inspection,
 * fault injection, scrubbing and repair, the kind of tooling a
 * deployment of TVARAK-protected NVM would ship with.
 *
 *   ./build/examples/nvmctl
 */

#include <cstdio>
#include <cstring>

#include "fs/dax_fs.hh"
#include "mem/memory_system.hh"
#include "sim/rng.hh"

using namespace tvarak;

int
main()
{
    SimConfig cfg;
    cfg.nvm.dimmBytes = 64ull << 20;
    cfg.dram.sizeBytes = 64ull << 20;
    MemorySystem mem(cfg, DesignKind::Tvarak);
    DaxFs fs(mem);
    const Layout &layout = mem.layout();

    std::printf("== layout ==\n");
    std::printf("NVM array: %zu DIMMs x %zu MB, %zu-wide RAID-5 "
                "stripes\n",
                mem.nvmArray().numDimms(), cfg.nvm.dimmBytes >> 20,
                layout.dimms());
    std::printf("page-checksum region:  [0x%08llx, 0x%08llx)\n",
                0ull,
                static_cast<unsigned long long>(layout.daxClBase()));
    std::printf("DAX-CL-checksum region:[0x%08llx, 0x%08llx)\n",
                static_cast<unsigned long long>(layout.daxClBase()),
                static_cast<unsigned long long>(layout.dataBase()));
    std::printf("data region:           [0x%08llx, 0x%08llx), "
                "%zu stripes\n",
                static_cast<unsigned long long>(layout.dataBase()),
                static_cast<unsigned long long>(layout.end()),
                layout.stripes());

    std::printf("\n== create and fill a volume ==\n");
    int fd = fs.create("volume", 128 * kPageBytes);
    Addr base = fs.daxMap(fd);
    Rng rng(42);
    for (int i = 0; i < 4096; i++) {
        mem.write64(0, base + rng.nextBounded(128 * kPageBytes - 8),
                    rng.next());
    }
    mem.flushAll();
    std::printf("512 KB volume, 4096 random writes, flushed.\n");
    std::printf("scrub: %zu bad lines, parity: %zu bad stripes\n",
                fs.scrub(false), fs.verifyParity());

    std::printf("\n== simulate a firmware corruption event ==\n");
    // Corrupt five random at-rest lines behind everyone's back (the
    // aftermath of, say, a misdirected-write firmware bug burst).
    auto &nvm = mem.nvmArray();
    std::uint8_t junk[kLineBytes];
    std::memset(junk, 0x66, sizeof(junk));
    for (int i = 0; i < 5; i++) {
        Addr page = fs.filePage(
            fd, rng.nextBounded(fs.filePages(fd)));
        Addr line = page + rng.nextBounded(kLinesPerPage) * kLineBytes;
        nvm.dimm(nvm.dimmOf(line))
            .rawWrite(nvm.mediaAddrOf(line), junk, kLineBytes);
    }
    std::size_t bad = fs.scrub(false);
    std::printf("scrub detects %zu corrupted lines\n", bad);

    std::printf("\n== repair from cross-DIMM parity ==\n");
    fs.scrub(true);
    std::printf("after repair: %zu bad lines, %zu bad stripes, "
                "%llu lines rebuilt\n",
                fs.scrub(false), fs.verifyParity(),
                static_cast<unsigned long long>(
                    mem.stats().recoveries));

    std::printf("\n== per-DIMM occupancy of this session ==\n");
    for (std::size_t d = 0; d < mem.stats().dimmBusyCycles.size();
         d++) {
        std::printf("  DIMM %zu: %llu busy cycles\n", d,
                    static_cast<unsigned long long>(
                        mem.stats().dimmBusyCycles[d]));
    }
    return 0;
}
