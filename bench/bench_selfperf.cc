/**
 * @file
 * Self-profiling microbench: how fast does the *simulator itself*
 * run? Each experiment is timed individually on the calling thread
 * and reported as simulated-cycles-per-wall-second, so hot-path work
 * in mem/ shows up as a number, not a vibe. The workloads are chosen
 * to stress the per-access paths differently:
 *
 *   stream-triad   streaming fills -> Cache::insert + prefetch path
 *   ctree-insert   pointer chasing -> accessLine hit path + LRU churn
 *
 * Runs each under Baseline and TVARAK, once per compiled kernel
 * backend (the JSON reports the per-backend simulator-speed delta;
 * pinning a non-best backend via --kernel/TVARAK_KERNEL measures just
 * that one). --jobs is accepted for flag uniformity but measurement
 * is always sequential: co-scheduled experiments would steal cycles
 * from each other and corrupt the per-experiment wall times.
 */

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>

#include "apps/stream/stream.hh"
#include "apps/trees/tree_workload.hh"
#include "bench_common.hh"
#include "kernels/kernels.hh"

using namespace tvarak;
using namespace tvarak::bench;

namespace {

WorkloadFactory
triadFactory(std::size_t chunk)
{
    return [chunk](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        auto scheme = makeScheme(mem.design(), mem);
        WorkloadSet set;
        StreamWorkload::Params p;
        p.kernel = StreamWorkload::Kernel::Triad;
        p.chunkBytes = chunk;
        for (int t = 0; t < 12; t++) {
            set.workloads.push_back(std::make_unique<StreamWorkload>(
                mem, fs, t, scheme.get(), p));
        }
        set.shared = std::shared_ptr<void>(
            scheme.release(),
            [](void *q) { delete static_cast<RedundancyScheme *>(q); });
        set.beforeMeasure = [](MemorySystem &m) { m.dropCaches(); };
        return set;
    };
}

WorkloadFactory
ctreeFactory(std::size_t scale)
{
    return [scale](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        auto scheme = makeScheme(mem.design(), mem);
        WorkloadSet set;
        TreeWorkload::Params p;
        p.kind = MapKind::CTree;
        p.mix = TreeWorkload::Mix::InsertOnly;
        p.preload = 16384 * scale;
        p.ops = 16384 * scale;
        for (int t = 0; t < 12; t++) {
            set.workloads.push_back(std::make_unique<TreeWorkload>(
                mem, fs, t, scheme.get(), p));
        }
        set.shared = std::shared_ptr<void>(
            scheme.release(),
            [](void *q) { delete static_cast<RedundancyScheme *>(q); });
        return set;
    };
}

/**
 * The perf-trajectory file CHANGES.md used to narrate: simulator
 * speed (Mcycles of simulated time per wall second) per (workload,
 * design), so a slowdown in the mem/ hot paths shows up as a diff in
 * results/BENCH_selfperf.json rather than a vibe.
 */
/** Per-backend totals of one full (workload x design) sweep. */
struct BackendTotal {
    std::string kernel;
    double mcycles = 0;
    double wall = 0;
};

void
writeSelfperfTrajectory(const BenchArgs &args,
                        const std::vector<BenchJsonEntry> &entries,
                        const std::vector<BackendTotal> &backends,
                        double totalMcycles, double totalWall)
{
    if (!args.json)
        return;
    std::filesystem::create_directories("results");
    const char *path = "results/BENCH_selfperf.json";
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "warning: cannot write %s\n", path);
        return;
    }
    out << "{\n  \"bench\": \"selfperf\",\n"
        << "  \"scale\": " << args.scale << ",\n"
        << "  \"kernel\": \""
        << kernels::backendName(kernels::activeBackend()) << "\",\n"
        << "  \"total_mcycles_per_sec\": "
        << (totalWall > 0 ? totalMcycles / totalWall : 0.0) << ",\n"
        << "  \"backends\": [\n";
    for (std::size_t i = 0; i < backends.size(); i++) {
        const BackendTotal &b = backends[i];
        out << "    {\"kernel\": \"" << b.kernel
            << "\", \"total_mcycles_per_sec\": "
            << (b.wall > 0 ? b.mcycles / b.wall : 0.0) << "}"
            << (i + 1 < backends.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"results\": [\n";
    for (std::size_t i = 0; i < entries.size(); i++) {
        const BenchJsonEntry &e = entries[i];
        double mcycles = static_cast<double>(e.runtimeCycles) / 1e6;
        out << "    {\"workload\": \"" << e.workload
            << "\", \"design\": \"" << e.design
            << "\", \"sim_mcycles\": " << mcycles
            << ", \"wall_seconds\": " << e.wallSeconds
            << ", \"mcycles_per_sec\": "
            << (e.wallSeconds > 0 ? mcycles / e.wallSeconds : 0.0)
            << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::fprintf(stderr, "  wrote %s\n", path);
}

}  // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(
        argc, argv, "Simulator self-profiling: sim-cycles per wall-sec",
        "selfperf");
    SimConfig cfg = evalConfig();

    struct Case {
        const char *name;
        WorkloadFactory make;
    };
    const std::vector<Case> cases = {
        {"stream-triad", triadFactory(args.scale * (2ull << 20))},
        {"ctree-insert", ctreeFactory(args.scale)},
    };
    const std::vector<DesignKind> designs = {DesignKind::Baseline,
                                             DesignKind::Tvarak};

    std::printf("== Simulator self-profiling "
                "(higher cycles/sec = faster simulator) ==\n");
    std::printf("%-16s %-16s %-8s %14s %10s %16s\n", "workload",
                "design", "kernel", "sim Mcycles", "wall s",
                "Mcycles/sec");

    // The full matrix runs once per compiled kernel backend, so the
    // JSON carries the per-backend simulator-speed delta. The entries
    // block (consumed by scripts/perf_compare.py) records the run
    // under the *active* backend — whatever --kernel/TVARAK_KERNEL
    // picked, best-available by default.
    kernels::Backend active = kernels::activeBackend();
    std::vector<kernels::Backend> sweep;
    if (active != kernels::bestBackend()) {
        // A weaker backend was pinned (--kernel / TVARAK_KERNEL):
        // measure just that one — CI's identity legs want speed, not
        // the cross-backend report.
        sweep.push_back(active);
    } else {
        for (std::size_t i = 0; i < kernels::kBackendCount; i++) {
            auto b = static_cast<kernels::Backend>(i);
            if (kernels::backendAvailable(b))
                sweep.push_back(b);
        }
    }

    std::vector<BenchJsonEntry> entries;
    std::vector<BackendTotal> backends;
    double totalCycles = 0, totalWall = 0;
    for (kernels::Backend b : sweep) {
        kernels::selectBackend(b);
        const char *kname = kernels::backendName(b);
        BackendTotal bt;
        bt.kernel = kname;
        for (const Case &c : cases) {
            for (DesignKind d : designs) {
                std::fprintf(stderr, "  timing %-16s under %s (%s)...\n",
                             c.name, designName(d), kname);
                auto t0 = std::chrono::steady_clock::now();
                RunResult r = runExperiment(cfg, d, c.make);
                double wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0).count();
                double mcycles =
                    static_cast<double>(r.runtimeCycles) / 1e6;
                std::printf("%-16s %-16s %-8s %14.1f %10.3f %16.1f\n",
                            c.name, designName(d), kname, mcycles,
                            wall, mcycles / wall);
                bt.mcycles += mcycles;
                bt.wall += wall;
                if (b != active)
                    continue;
                totalCycles += mcycles;
                totalWall += wall;
                BenchJsonEntry e;
                e.workload = c.name;
                e.design = designName(d);
                e.runtimeCycles = r.runtimeCycles;
                e.normRuntime = 1.0;
                e.energyMj = r.energyMj;
                e.nvmDataAccesses = r.nvmDataAccesses;
                e.nvmRedAccesses = r.nvmRedAccesses;
                e.cacheAccesses = r.cacheAccesses;
                e.wallSeconds = wall;
                entries.push_back(std::move(e));
            }
        }
        std::printf("%-16s %-16s %-8s %14.1f %10.3f %16.1f\n",
                    "TOTAL", "-", kname, bt.mcycles, bt.wall,
                    bt.wall > 0 ? bt.mcycles / bt.wall : 0.0);
        backends.push_back(std::move(bt));
    }
    kernels::selectBackend(active);
    writeBenchJson(args, entries);
    writeSelfperfTrajectory(args, entries, backends, totalCycles,
                            totalWall);
    return 0;
}
