#include "bench_common.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "kernels/kernels.hh"
#include "trace/trace.hh"

namespace tvarak::bench {

SimConfig
evalConfig()
{
    SimConfig cfg;  // Table III defaults
    cfg.nvm.dimmBytes = 96ull << 20;  // 4 x 96 MB: fits every bench
    cfg.dram.sizeBytes = 128ull << 20;
    return cfg;
}

namespace {

/** Prog name + extra-flag usage of the parse in progress, so the
 *  exported parse*Value helpers (called from ExtraFlag::apply during
 *  parseBenchArgs) can print a full usage message. */
std::string gProg = "bench";
std::string gExtraUsage;

[[noreturn]] void
usageError(const char *prog, const char *msg, const char *arg)
{
    std::fprintf(stderr, "%s: %s%s%s\n", prog, msg, arg ? ": " : "",
                 arg ? arg : "");
    std::fprintf(stderr,
                 "usage: %s [--scale N] [--jobs N] [--json]"
                 " [--design NAME]... [--kernel NAME]"
                 " [--trace-record F | --trace-replay F]%s\n",
                 prog, gExtraUsage.c_str());
    std::exit(2);
}

/** True if argv[i] is `--flag` or `--flag=value`. */
bool
matchesFlag(const char *arg, const char *flag)
{
    std::size_t n = std::strlen(flag);
    return std::strncmp(arg, flag, n) == 0 &&
        (arg[n] == '\0' || arg[n] == '=');
}

/** The value of `--flag=value` or `--flag value`; advances @p i in
 *  the space-separated form. Empty values are usage errors. */
std::string
flagValue(const char *prog, const char *flag, int argc, char **argv,
          int &i)
{
    const char *arg = argv[i];
    std::size_t n = std::strlen(flag);
    std::string value;
    if (arg[n] == '=') {
        value = arg + n + 1;
    } else {
        if (i + 1 >= argc) {
            std::string msg = std::string(flag) + " needs a value";
            usageError(prog, msg.c_str(), nullptr);
        }
        value = argv[++i];
    }
    if (value.empty()) {
        std::string msg = std::string("empty value for ") + flag;
        usageError(prog, msg.c_str(), nullptr);
    }
    return value;
}

/** Strict decimal parse of a flag value: the whole string must be a
 *  number, and zero / negative / overflow are rejected. */
std::size_t
parseCount(const char *prog, const char *flag, const char *value)
{
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0' || value[0] == '-' || errno == ERANGE ||
        v == 0) {
        std::string msg = std::string("invalid value for ") + flag;
        usageError(prog, msg.c_str(), value);
    }
    return static_cast<std::size_t>(v);
}

}  // namespace

std::size_t
parseCountValue(const char *flag, const std::string &value)
{
    return parseCount(gProg.c_str(), flag, value.c_str());
}

double
parseFracValue(const char *flag, const std::string &value)
{
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || errno == ERANGE ||
        !(v > 0.0) || v != v || v > 1e18) {
        std::string msg = std::string("invalid value for ") + flag;
        usageError(gProg.c_str(), msg.c_str(), value.c_str());
    }
    return v;
}

void
benchUsageError(const std::string &msg)
{
    usageError(gProg.c_str(), msg.c_str(), nullptr);
}

BenchArgs
parseBenchArgs(int argc, char **argv, const char *what,
               const char *benchName)
{
    BenchArgsSpec spec;
    spec.what = what;
    spec.benchName = benchName;
    return parseBenchArgs(argc, argv, spec);
}

BenchArgs
parseBenchArgs(int argc, char **argv, const BenchArgsSpec &spec)
{
    gProg = argv[0];
    gExtraUsage.clear();
    for (const ExtraFlag &x : spec.extras) {
        gExtraUsage += std::string(" [") + x.flag;
        if (x.valueName != nullptr)
            gExtraUsage += std::string(" ") + x.valueName;
        gExtraUsage += "]";
    }
    const char *what = spec.what;
    const char *benchName = spec.benchName;

    BenchArgs args;
    args.benchName = benchName;
    args.start = std::chrono::steady_clock::now();
    for (int i = 1; i < argc; i++) {
        const ExtraFlag *extra = nullptr;
        for (const ExtraFlag &x : spec.extras) {
            bool match = x.valueName != nullptr
                ? matchesFlag(argv[i], x.flag)
                : std::strcmp(argv[i], x.flag) == 0;
            if (match) {
                extra = &x;
                break;
            }
        }
        if (extra != nullptr) {
            std::string value;
            if (extra->valueName != nullptr)
                value = flagValue(argv[0], extra->flag, argc, argv, i);
            extra->apply(value);
            continue;
        }
        if (std::strcmp(argv[i], "--scale") == 0) {
            if (i + 1 >= argc)
                usageError(argv[0], "--scale needs a value", nullptr);
            args.scale = parseCount(argv[0], "--scale", argv[++i]);
        } else if (std::strcmp(argv[i], "--jobs") == 0) {
            if (i + 1 >= argc)
                usageError(argv[0], "--jobs needs a value", nullptr);
            args.jobs = parseCount(argv[0], "--jobs", argv[++i]);
        } else if (std::strcmp(argv[i], "--json") == 0) {
            args.json = true;
        } else if (matchesFlag(argv[i], "--trace-record")) {
            args.traceRecord =
                flagValue(argv[0], "--trace-record", argc, argv, i);
        } else if (matchesFlag(argv[i], "--trace-replay")) {
            args.traceReplay =
                flagValue(argv[0], "--trace-replay", argc, argv, i);
        } else if (matchesFlag(argv[i], "--design")) {
            std::string name =
                flagValue(argv[0], "--design", argc, argv, i);
            const Design *d = findDesign(name);
            if (d == nullptr) {
                std::string msg = "unknown design '" + name +
                    "' (registered: " + registeredNameList() + ")";
                usageError(argv[0], msg.c_str(), nullptr);
            }
            for (const Design *prev : args.designs) {
                if (prev == d) {
                    std::string msg = std::string("design '") +
                        d->cliName() + "' selected twice";
                    usageError(argv[0], msg.c_str(), nullptr);
                }
                if (spec.uniqueDesignKinds && prev->kind() == d->kind()) {
                    // Figure rows are keyed by DesignKind, so two
                    // designs sharing one (e.g. tvarak variants) would
                    // silently overwrite each other's column.
                    std::string msg = std::string("design '") +
                        d->cliName() + "' duplicates '" +
                        prev->cliName() + "' (same result column)";
                    usageError(argv[0], msg.c_str(), nullptr);
                }
            }
            args.designs.push_back(d);
        } else if (matchesFlag(argv[i], "--kernel")) {
            std::string name =
                flagValue(argv[0], "--kernel", argc, argv, i);
            if (!kernels::selectBackend(name)) {
                std::string msg = "unknown or unavailable kernel "
                                  "backend '" +
                    name + "' (this host: scalar";
                if (kernels::backendAvailable(kernels::Backend::Sse42))
                    msg += ", sse42";
                if (kernels::backendAvailable(kernels::Backend::Avx2))
                    msg += ", avx2";
                msg += ", auto)";
                usageError(argv[0], msg.c_str(), nullptr);
            }
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf("%s\nusage: %s [--scale N] [--jobs N] [--json]"
                        " [--design NAME]... [--kernel NAME]"
                        " [--trace-record F | --trace-replay F]%s\n"
                        "  --scale N  workload size multiplier "
                        "(default 1)\n"
                        "  --jobs N   experiment worker threads "
                        "(default: hardware concurrency)\n"
                        "  --json     write results/bench_%s.json\n"
                        "  --design NAME  sweep only the named design "
                        "(repeatable; registered: %s)\n"
                        "  --kernel NAME  force the data-plane kernel "
                        "backend (scalar, sse42, avx2, auto); results "
                        "are bit-identical, only wall-clock changes\n"
                        "  --trace-record F  record once under Baseline "
                        "into F, replay the other designs\n"
                        "  --trace-replay F  replay every design from a "
                        "previously recorded F\n",
                        what, argv[0], gExtraUsage.c_str(), benchName,
                        registeredNameList().c_str());
            for (const ExtraFlag &x : spec.extras) {
                std::string head = x.flag;
                if (x.valueName != nullptr)
                    head += std::string(" ") + x.valueName;
                std::printf("  %-14s %s\n", head.c_str(), x.help);
            }
            std::exit(0);
        } else {
            usageError(argv[0], "unknown argument", argv[i]);
        }
    }
    if (!args.traceRecord.empty() && !args.traceReplay.empty()) {
        usageError(argv[0],
                   "--trace-record and --trace-replay are exclusive",
                   nullptr);
    }
    if (!args.designs.empty()) {
        // Baseline is the normalization reference of every report.
        bool haveBaseline = false;
        for (const Design *d : args.designs)
            haveBaseline =
                haveBaseline || d->kind() == DesignKind::Baseline;
        if (!haveBaseline) {
            args.designs.insert(args.designs.begin(),
                                &designOf(DesignKind::Baseline));
        }
    }
    return args;
}

std::vector<const Design *>
selectedDesigns(const BenchArgs &args)
{
    return args.designs.empty() ? paperDesigns() : args.designs;
}

std::vector<FigureRow>
sweepRows(const std::vector<WorkloadSpec> &specs,
          const std::vector<const Design *> &designs, std::size_t jobs)
{
    std::vector<ExperimentJob> batch;
    batch.reserve(specs.size() * designs.size());
    for (const WorkloadSpec &spec : specs) {
        for (const Design *d : designs)
            batch.push_back({spec.name, spec.cfg, d, spec.make});
    }

    std::vector<RunResult> results = runExperiments(batch, jobs);

    std::vector<FigureRow> rows(specs.size());
    std::size_t k = 0;
    for (std::size_t s = 0; s < specs.size(); s++) {
        rows[s].workload = specs[s].name;
        for (const Design *d : designs)
            rows[s].results[d->kind()] = results[k++];
    }
    return rows;
}

std::vector<FigureRow>
sweepRows(const std::vector<WorkloadSpec> &specs,
          const std::vector<DesignKind> &designs, std::size_t jobs)
{
    std::vector<const Design *> resolved;
    for (DesignKind d : designs)
        resolved.push_back(&designOf(d));
    return sweepRows(specs, resolved, jobs);
}

namespace {

/** One trace file per workload: the flag value as-is for single-spec
 *  benches, "<file>.<workload>" when a bench sweeps several specs. */
std::string
tracePath(const std::string &base,
          const std::vector<WorkloadSpec> &specs, std::size_t s)
{
    return specs.size() == 1 ? base : base + "." + specs[s].name;
}

/** Replay jobs for @p designs from one trace, appended to @p batch. */
void
pushReplayJobs(std::vector<ExperimentJob> &batch,
               const std::string &label,
               const std::shared_ptr<trace::TraceData> &trace,
               const std::vector<const Design *> &designs,
               bool skipRecorded)
{
    for (const Design *d : designs) {
        if (skipRecorded && d->kind() == trace->recordedDesign)
            continue;
        batch.push_back({label, trace->cfg, d,
                         trace::makeReplayFactory(trace)});
    }
}

/** Record each spec once under Baseline, replay the other designs. */
std::vector<FigureRow>
recordAndReplayRows(const std::vector<WorkloadSpec> &specs,
                    const std::vector<const Design *> &designs,
                    const BenchArgs &args)
{
    std::vector<FigureRow> rows(specs.size());
    std::vector<ExperimentJob> batch;
    for (std::size_t s = 0; s < specs.size(); s++) {
        std::string path = tracePath(args.traceRecord, specs, s);
        std::fprintf(stderr, "  recording %s -> %s\n",
                     specs[s].name.c_str(), path.c_str());
        trace::RecordResult rec = trace::recordExperiment(
            specs[s].cfg, DesignKind::Baseline, specs[s].make,
            specs[s].name);
        if (!rec.trace->save(path)) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         path.c_str());
            std::exit(1);
        }
        rows[s].workload = specs[s].name;
        rows[s].results[DesignKind::Baseline] = rec.result;
        pushReplayJobs(batch, specs[s].name, rec.trace, designs, true);
    }

    std::vector<RunResult> results = runExperiments(batch, args.jobs);
    std::size_t k = 0;
    for (std::size_t s = 0; s < specs.size(); s++) {
        for (const Design *d : designs) {
            if (d->kind() == DesignKind::Baseline)
                continue;
            rows[s].results[d->kind()] = results[k++];
        }
    }
    return rows;
}

/** Replay every design from the trace files of a previous record. */
std::vector<FigureRow>
replayRows(const std::vector<WorkloadSpec> &specs,
           const std::vector<const Design *> &designs,
           const BenchArgs &args)
{
    std::vector<FigureRow> rows(specs.size());
    std::vector<ExperimentJob> batch;
    for (std::size_t s = 0; s < specs.size(); s++) {
        std::string path = tracePath(args.traceReplay, specs, s);
        auto trace = trace::TraceData::load(path);
        if (trace == nullptr) {
            std::fprintf(stderr, "error: cannot load trace %s\n",
                         path.c_str());
            std::exit(1);
        }
        if (trace->workloadName != specs[s].name) {
            std::fprintf(stderr,
                         "warning: %s was recorded as '%s', replaying "
                         "as '%s'\n",
                         path.c_str(), trace->workloadName.c_str(),
                         specs[s].name.c_str());
        }
        rows[s].workload = specs[s].name;
        pushReplayJobs(batch, specs[s].name, trace, designs, false);
    }

    std::vector<RunResult> results = runExperiments(batch, args.jobs);
    std::size_t k = 0;
    for (std::size_t s = 0; s < specs.size(); s++) {
        for (const Design *d : designs)
            rows[s].results[d->kind()] = results[k++];
    }
    return rows;
}

}  // namespace

std::vector<FigureRow>
sweepRows(const std::vector<WorkloadSpec> &specs, const BenchArgs &args)
{
    std::vector<const Design *> designs = selectedDesigns(args);
    if (!args.traceReplay.empty())
        return replayRows(specs, designs, args);
    if (!args.traceRecord.empty())
        return recordAndReplayRows(specs, designs, args);
    return sweepRows(specs, designs, args.jobs);
}

FigureRow
sweepDesigns(const std::string &workloadName, const SimConfig &cfg,
             const WorkloadFactory &make,
             const std::vector<DesignKind> &designs, std::size_t jobs)
{
    return sweepRows({{workloadName, cfg, make}}, designs, jobs).front();
}

FigureRow
sweepDesigns(const std::string &workloadName, const SimConfig &cfg,
             const WorkloadFactory &make, std::size_t jobs)
{
    return sweepDesigns(workloadName, cfg, make, allDesigns(), jobs);
}

FigureRow
sweepDesigns(const std::string &workloadName, const SimConfig &cfg,
             const WorkloadFactory &make, const BenchArgs &args)
{
    return sweepRows({{workloadName, cfg, make}}, args).front();
}

std::vector<BenchJsonEntry>
jsonEntries(const std::vector<FigureRow> &rows)
{
    std::vector<BenchJsonEntry> entries;
    for (const FigureRow &row : rows) {
        for (const auto &[design, res] : row.results) {
            BenchJsonEntry e;
            e.workload = row.workload;
            e.design = designName(design);
            e.runtimeCycles = res.runtimeCycles;
            e.normRuntime = normRuntime(row, design);
            e.energyMj = res.energyMj;
            e.nvmDataAccesses = res.nvmDataAccesses;
            e.nvmRedAccesses = res.nvmRedAccesses;
            e.cacheAccesses = res.cacheAccesses;
            entries.push_back(std::move(e));
        }
    }
    return entries;
}

namespace {

/** Minimal JSON string escape: the labels only contain printable
 *  ASCII, but quote/backslash must never corrupt the file. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

}  // namespace

void
writeBenchJson(const BenchArgs &args,
               const std::vector<BenchJsonEntry> &entries)
{
    if (!args.json)
        return;

    double wall = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - args.start).count();

    std::filesystem::create_directories("results");
    std::string path = "results/bench_" + args.benchName + ".json";
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
        return;
    }

    std::size_t jobs = args.jobs == 0 ? defaultJobs() : args.jobs;
    out << "{\n"
        << "  \"bench\": \"" << jsonEscape(args.benchName) << "\",\n"
        << "  \"scale\": " << args.scale << ",\n"
        << "  \"jobs\": " << jobs << ",\n"
        << "  \"wall_seconds\": " << wall << ",\n"
        << "  \"results\": [\n";
    for (std::size_t i = 0; i < entries.size(); i++) {
        const BenchJsonEntry &e = entries[i];
        out << "    {\"workload\": \"" << jsonEscape(e.workload)
            << "\", \"design\": \"" << jsonEscape(e.design)
            << "\", \"runtime_cycles\": " << e.runtimeCycles
            << ", \"norm_runtime\": " << e.normRuntime
            << ", \"energy_mj\": " << e.energyMj
            << ", \"nvm_data_accesses\": " << e.nvmDataAccesses
            << ", \"nvm_red_accesses\": " << e.nvmRedAccesses
            << ", \"cache_accesses\": " << e.cacheAccesses;
        if (e.wallSeconds > 0)
            out << ", \"wall_seconds\": " << e.wallSeconds;
        out << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::fprintf(stderr, "  wrote %s\n", path.c_str());
}

}  // namespace tvarak::bench
