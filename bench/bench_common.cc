#include "bench_common.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tvarak::bench {

SimConfig
evalConfig()
{
    SimConfig cfg;  // Table III defaults
    cfg.nvm.dimmBytes = 96ull << 20;  // 4 x 96 MB: fits every bench
    cfg.dram.sizeBytes = 128ull << 20;
    return cfg;
}

std::size_t
parseScale(int argc, char **argv, const char *what)
{
    std::size_t scale = 1;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
            scale = static_cast<std::size_t>(std::atoll(argv[i + 1]));
            if (scale == 0)
                scale = 1;
            i++;
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf("%s\nusage: %s [--scale N]\n", what, argv[0]);
            std::exit(0);
        }
    }
    return scale;
}

FigureRow
sweepDesigns(const std::string &workloadName, const SimConfig &cfg,
             const WorkloadFactory &make,
             const std::vector<DesignKind> &designs)
{
    FigureRow row;
    row.workload = workloadName;
    for (DesignKind d : designs) {
        std::fprintf(stderr, "  running %-24s under %s...\n",
                     workloadName.c_str(), designName(d));
        row.results[d] = runExperiment(cfg, d, make);
    }
    return row;
}

FigureRow
sweepDesigns(const std::string &workloadName, const SimConfig &cfg,
             const WorkloadFactory &make)
{
    return sweepDesigns(workloadName, cfg, make, allDesigns());
}

}  // namespace tvarak::bench
