/**
 * @file
 * Table I extension: the Vilamb row. Vilamb trades coverage for a
 * *configurable* overhead by batching page-granular redundancy work
 * over epochs. This bench sweeps the epoch length on a C-Tree
 * insert-only workload and prints the overhead alongside TVARAK's —
 * quantifying Table I's qualitative entries (Vilamb: configurable
 * overhead with vulnerability windows; TVARAK: low overhead, no
 * windows).
 */

#include <memory>

#include "apps/trees/tree_workload.hh"
#include "bench_common.hh"
#include "redundancy/vilamb.hh"

using namespace tvarak;
using namespace tvarak::bench;

namespace {

WorkloadFactory
treeFactory(RedundancyScheme *sharedScheme, std::size_t scale)
{
    return [sharedScheme, scale](MemorySystem &mem,
                                 DaxFs &fs) -> WorkloadSet {
        // For Vilamb rows the scheme is built per-machine outside;
        // for design rows fall back to the design's own scheme.
        auto own = makeScheme(mem.design(), mem);
        RedundancyScheme *scheme =
            sharedScheme != nullptr ? sharedScheme : own.get();
        WorkloadSet set;
        TreeWorkload::Params p;
        p.kind = MapKind::CTree;
        // Update-only: transactions re-dirty the same value pages, the
        // access pattern Vilamb's epoch batching amortizes best.
        p.mix = TreeWorkload::Mix::UpdateOnly;
        p.preload = 8192 * scale;
        p.ops = 16384 * scale;
        for (int t = 0; t < 12; t++) {
            set.workloads.push_back(std::make_unique<TreeWorkload>(
                mem, fs, t, scheme, p));
        }
        set.shared = std::shared_ptr<void>(
            own.release(),
            [](void *q) { delete static_cast<RedundancyScheme *>(q); });
        return set;
    };
}

/** Vilamb runs over the TxB-Page machine model (software,
 *  page-granular), differing only in *when* it does the work. */
WorkloadFactory
vilambFactory(std::size_t epoch, std::size_t scale)
{
    return [epoch, scale](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        auto scheme = std::make_shared<VilambAsyncCsums>(mem, epoch);
        WorkloadSet set;
        TreeWorkload::Params p;
        p.kind = MapKind::CTree;
        p.mix = TreeWorkload::Mix::UpdateOnly;
        p.preload = 8192 * scale;
        p.ops = 16384 * scale;
        for (int t = 0; t < 12; t++) {
            set.workloads.push_back(std::make_unique<TreeWorkload>(
                mem, fs, t, scheme.get(), p));
        }
        set.shared = scheme;
        return set;
    };
}

}  // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(
        argc, argv, "Table I extension: Vilamb epoch sweep vs TVARAK",
        "vilamb");
    SimConfig cfg = evalConfig();
    const std::vector<std::size_t> epochs = {1, 16, 64, 256};

    // One batch: the three design rows plus every epoch variant. The
    // epoch rows run on the registered Vilamb design's machine (same
    // model as TxB-Page-Csums) with the factory overriding the scheme
    // for the sweep.
    const Design *vilamb = findDesign("vilamb");
    std::vector<ExperimentJob> batch = {
        {"baseline", cfg, &designOf(DesignKind::Baseline),
         treeFactory(nullptr, args.scale)},
        {"tvarak", cfg, &designOf(DesignKind::Tvarak),
         treeFactory(nullptr, args.scale)},
        {"txb-page (sync)", cfg, &designOf(DesignKind::TxBPageCsums),
         treeFactory(nullptr, args.scale)},
    };
    for (std::size_t epoch : epochs) {
        batch.push_back({"vilamb epoch " + std::to_string(epoch), cfg,
                         vilamb, vilambFactory(epoch, args.scale)});
    }
    std::vector<RunResult> results = runExperiments(batch, args.jobs);
    const RunResult &base = results[0];
    const RunResult &tvarak = results[1];
    const RunResult &txb_page = results[2];

    std::printf("== Vilamb: configurable overhead (C-Tree update-only, "
                "runtime / Baseline) ==\n");
    std::printf("  %-28s %10s\n", "design", "runtime");
    std::printf("  %-28s %10.3f\n", "Baseline", 1.0);
    auto norm = [&](const RunResult &r) {
        return static_cast<double>(r.runtimeCycles) /
            static_cast<double>(base.runtimeCycles);
    };
    std::printf("  %-28s %10.3f\n", "TxB-Page-Csums (sync)",
                norm(txb_page));
    for (std::size_t k = 0; k < epochs.size(); k++) {
        std::printf("  Vilamb, epoch %-13zu %10.3f\n", epochs[k],
                    norm(results[3 + k]));
    }
    std::printf("  %-28s %10.3f\n", "TVARAK (hw, no windows)",
                norm(tvarak));
    std::printf("\ncsv,vilamb,design,norm_runtime\n");

    std::vector<BenchJsonEntry> entries;
    for (std::size_t i = 0; i < batch.size(); i++) {
        BenchJsonEntry e;
        e.workload = "ctree-update-only";
        e.design = batch[i].label;
        e.runtimeCycles = results[i].runtimeCycles;
        e.normRuntime = norm(results[i]);
        e.energyMj = results[i].energyMj;
        e.nvmDataAccesses = results[i].nvmDataAccesses;
        e.nvmRedAccesses = results[i].nvmRedAccesses;
        e.cacheAccesses = results[i].cacheAccesses;
        entries.push_back(std::move(e));
    }
    writeBenchJson(args, entries);
    return 0;
}
