/**
 * @file
 * Shared plumbing for the figure benches: the evaluation machine
 * configuration (Table III scaled to tractable workload sizes),
 * command-line handling, design-sweep helpers built on the parallel
 * experiment engine, and machine-readable JSON result emission.
 *
 * Every bench accepts:
 *
 *   --scale N   multiply the workload size (default 1), so tables can
 *               be regenerated at larger fixed-work sizes.
 *   --jobs N    worker threads for the experiment fan-out (default:
 *               hardware concurrency). Results are bit-identical for
 *               every N; only wall-clock changes.
 *   --json      also write results/bench_<name>.json with the
 *               per-design numbers and the wall time of the sweep.
 *
 *   --trace-record F   record each workload once under Baseline into
 *                      trace file F (multi-workload benches append
 *                      ".<workload>"), then produce the remaining
 *                      design columns by replaying the trace — the
 *                      record-once / replay-per-design methodology.
 *   --trace-replay F   skip direct execution entirely: load the trace
 *                      file(s) written by a previous --trace-record
 *                      run and replay every design from them.
 *
 *   --design NAME      sweep only the named registered design
 *                      (repeatable; e.g. --design vilamb). Baseline is
 *                      added automatically as the normalization
 *                      reference. Default: the four paper designs.
 *
 *   --kernel NAME      force the data-plane kernel backend (scalar,
 *                      sse42, avx2, or auto for the best this host
 *                      supports; also settable via TVARAK_KERNEL).
 *                      Simulated results are bit-identical across
 *                      backends — only the simulator's own wall-clock
 *                      changes.
 *
 * Unknown flags and malformed values are usage errors (exit 2) — a
 * typo must never silently run the wrong experiment.
 */

#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "harness/parallel.hh"
#include "harness/report.hh"
#include "harness/runner.hh"
#include "redundancy/registry.hh"
#include "redundancy/scheme.hh"

namespace tvarak::bench {

/** Table III machine; NVM DIMM capacity sized for the bench suite. */
SimConfig evalConfig();

/** Parsed common command line (see file header for the flags). */
struct BenchArgs {
    std::size_t scale = 1;
    /** Worker threads; 0 = defaultJobs() (hardware concurrency). */
    std::size_t jobs = 0;
    bool json = false;
    /** --trace-record target; empty = run every design directly. */
    std::string traceRecord;
    /** --trace-replay source; empty = run or record, per above. */
    std::string traceReplay;
    /** Designs selected via repeatable --design flags (Baseline is
     *  auto-prepended); empty = the four paper designs. */
    std::vector<const Design *> designs;
    /** results/bench_<name>.json target (set by parseBenchArgs). */
    std::string benchName;
    /** Start of the run, for the wall-time field of the JSON dump. */
    std::chrono::steady_clock::time_point start;
};

/**
 * Parse `--scale N`, `--jobs N`, `--json` and `--help`. @p what is
 * the one-line description printed by --help; @p benchName names the
 * JSON output file. Rejects unknown arguments and malformed or
 * out-of-range values with a usage message and exit(2).
 */
BenchArgs parseBenchArgs(int argc, char **argv, const char *what,
                         const char *benchName);

/**
 * A bench-specific flag handled inside parseBenchArgs, so extended
 * benches keep the common strictness (unknown flags and malformed
 * values exit 2) without reimplementing the parser.
 */
struct ExtraFlag {
    const char *flag;       //!< e.g. "--servers"
    /** Placeholder in help/usage (e.g. "N"); null = boolean switch. */
    const char *valueName = nullptr;
    const char *help = "";  //!< one help line (without the flag)
    /** Called with the parsed value ("" for switches). Use the
     *  parse*Value helpers below to reject malformed values. */
    std::function<void(const std::string &value)> apply;
};

/** Extension knobs for parseBenchArgs. */
struct BenchArgsSpec {
    const char *what = "";
    const char *benchName = "";
    /** Reject two --design selections sharing a DesignKind. Figure
     *  benches need this (rows are keyed by kind); benches keyed by
     *  registry name (bench_service) turn it off so the Fig-9 tvarak
     *  variants can be swept together. */
    bool uniqueDesignKinds = true;
    std::vector<ExtraFlag> extras;
};

/** parseBenchArgs with bench-specific extra flags. */
BenchArgs parseBenchArgs(int argc, char **argv,
                         const BenchArgsSpec &spec);

/** @name Strict value parsers for ExtraFlag::apply
 *  Malformed values print a usage message and exit(2), matching the
 *  common flags' behaviour. */
/**@{*/
/** Positive integer (zero and garbage rejected). */
std::size_t parseCountValue(const char *flag, const std::string &value);
/** Positive finite double. */
double parseFracValue(const char *flag, const std::string &value);
/** Print "<prog>: <msg>" + usage and exit(2). */
[[noreturn]] void benchUsageError(const std::string &msg);
/**@}*/

/** One workload of a figure: a label, the machine it runs on, and its
 *  factory. sweepRows() fans specs x designs in a single batch. */
struct WorkloadSpec {
    std::string name;
    SimConfig cfg;
    WorkloadFactory make;
};

/** @p args.designs if --design was given, else the four paper
 *  designs — the design set every sweep helper runs. */
std::vector<const Design *> selectedDesigns(const BenchArgs &args);

/** Run every spec under every design in one parallel batch; one
 *  FigureRow per spec, in spec order. */
std::vector<FigureRow> sweepRows(const std::vector<WorkloadSpec> &specs,
                                 const std::vector<const Design *> &designs,
                                 std::size_t jobs);

/** Shim: the canonical designs for @p designs. */
std::vector<FigureRow> sweepRows(const std::vector<WorkloadSpec> &specs,
                                 const std::vector<DesignKind> &designs,
                                 std::size_t jobs);

/**
 * As above, over selectedDesigns(args) and honoring
 * @p args.traceRecord / @p args.traceReplay: record each spec once
 * under Baseline and replay the other designs, or replay every design
 * from previously recorded trace files. With neither flag set this is
 * plain sweepRows(specs, selectedDesigns(args), args.jobs).
 */
std::vector<FigureRow> sweepRows(const std::vector<WorkloadSpec> &specs,
                                 const BenchArgs &args);

/** Run @p make under the four paper designs; collect a figure row. */
FigureRow sweepDesigns(const std::string &workloadName,
                       const SimConfig &cfg, const WorkloadFactory &make,
                       std::size_t jobs);

/** selectedDesigns(args), honoring the trace record/replay flags. */
FigureRow sweepDesigns(const std::string &workloadName,
                       const SimConfig &cfg, const WorkloadFactory &make,
                       const BenchArgs &args);

/** Run @p make under a subset of designs. */
FigureRow sweepDesigns(const std::string &workloadName,
                       const SimConfig &cfg, const WorkloadFactory &make,
                       const std::vector<DesignKind> &designs,
                       std::size_t jobs);

/** One record of the machine-readable result dump. */
struct BenchJsonEntry {
    std::string workload;
    std::string design;   //!< design or config label ("+red-caching")
    std::uint64_t runtimeCycles = 0;
    double normRuntime = 0;    //!< runtime / Baseline runtime
    double energyMj = 0;
    std::uint64_t nvmDataAccesses = 0;
    std::uint64_t nvmRedAccesses = 0;
    std::uint64_t cacheAccesses = 0;
    /** Per-experiment wall time; emitted only when > 0 (set by
     *  bench_selfperf, which times each experiment individually). */
    double wallSeconds = 0;
};

/** Flatten figure rows into JSON entries (norm against Baseline). */
std::vector<BenchJsonEntry>
jsonEntries(const std::vector<FigureRow> &rows);

/**
 * If @p args.json is set, write results/bench_<benchName>.json with
 * @p entries plus the sweep metadata (scale, jobs, wall seconds since
 * args.start). No-op otherwise.
 */
void writeBenchJson(const BenchArgs &args,
                    const std::vector<BenchJsonEntry> &entries);

}  // namespace tvarak::bench
