/**
 * @file
 * Shared plumbing for the figure benches: the evaluation machine
 * configuration (Table III scaled to tractable workload sizes) and a
 * design-sweep helper.
 *
 * Every bench accepts an optional `--scale N` argument (default 1)
 * multiplying the workload size, so the tables can be regenerated at
 * larger fixed-work sizes when more time is available.
 */

#pragma once

#include <string>
#include <vector>

#include "harness/report.hh"
#include "harness/runner.hh"
#include "redundancy/scheme.hh"

namespace tvarak::bench {

/** Table III machine; NVM DIMM capacity sized for the bench suite. */
SimConfig evalConfig();

/** Parse `--scale N` (and `--help`). Returns the scale factor. */
std::size_t parseScale(int argc, char **argv, const char *what);

/** Run @p make under all four designs and collect a figure row. */
FigureRow sweepDesigns(const std::string &workloadName,
                       const SimConfig &cfg, const WorkloadFactory &make);

/** Run @p make under a subset of designs. */
FigureRow sweepDesigns(const std::string &workloadName,
                       const SimConfig &cfg, const WorkloadFactory &make,
                       const std::vector<DesignKind> &designs);

}  // namespace tvarak::bench

