/**
 * @file
 * Section IV-H (second part): sensitivity to the number of NVM DIMMs
 * and to the underlying NVM technology. The paper reports the same
 * relative trends with 8 DIMMs and with battery-backed DRAM timing
 * as NVM; TVARAK keeps outperforming the TxB schemes "by orders of
 * magnitude for the stream microbenchmarks".
 */

#include "apps/stream/stream.hh"
#include "bench_common.hh"

using namespace tvarak;
using namespace tvarak::bench;

namespace {

WorkloadFactory
streamCopyFactory(std::size_t chunk)
{
    return [chunk](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        auto scheme = makeScheme(mem.design(), mem);
        WorkloadSet set;
        StreamWorkload::Params p;
        p.kernel = StreamWorkload::Kernel::Copy;
        p.chunkBytes = chunk;
        for (int t = 0; t < 12; t++) {
            set.workloads.push_back(std::make_unique<StreamWorkload>(
                mem, fs, t, scheme.get(), p));
        }
        set.shared = std::shared_ptr<void>(
            scheme.release(),
            [](void *q) { delete static_cast<RedundancyScheme *>(q); });
        set.beforeMeasure = [](MemorySystem &m) { m.dropCaches(); };
        return set;
    };
}

}  // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(
        argc, argv, "Sec IV-H: NVM DIMM count & technology sweep",
        "sec4h_dimms");
    std::size_t chunk = (1ull << 20) * args.scale;

    struct Variant {
        const char *name;
        std::size_t dimms;
        double readNs, writeNs;
    };
    const std::vector<Variant> variants = {
        {"4-dimms-pcm", 4, 60.0, 150.0},       // Table III default
        {"8-dimms-pcm", 8, 60.0, 150.0},
        {"4-dimms-bb-dram", 4, 15.0, 15.0},    // battery-backed DRAM
    };

    std::vector<WorkloadSpec> specs;
    for (const Variant &v : variants) {
        SimConfig cfg = evalConfig();
        cfg.nvm.dimms = v.dimms;
        cfg.nvm.readNs = v.readNs;
        cfg.nvm.writeNs = v.writeNs;
        specs.push_back({v.name, cfg, streamCopyFactory(chunk)});
    }
    std::vector<FigureRow> rows =
        sweepRows(specs, args);
    printFigureGroup(
        "Section IV-H: stream copy across NVM configurations", rows);
    printFigureCsv("sec4h", rows);
    writeBenchJson(args, jsonEntries(rows));
    return 0;
}
