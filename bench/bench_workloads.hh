/**
 * @file
 * The five representative workloads the paper uses for the design
 * ablation (Fig 9) and partition sensitivity (Fig 10) studies:
 * Redis set-only (6 instances), C-Tree insert-only, N-Store balanced,
 * fio random write, and stream triad. Sized smaller than the Fig 8
 * runs because these benches sweep many configurations.
 */

#pragma once

#include <memory>

#include "apps/fio/fio.hh"
#include "apps/nstore/nstore.hh"
#include "apps/redis/redis.hh"
#include "apps/stream/stream.hh"
#include "apps/trees/tree_workload.hh"
#include "bench_common.hh"

namespace tvarak::bench {

inline WorkloadFactory
redisSetFactory(std::size_t scale)
{
    return [scale](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        auto scheme = makeScheme(mem.design(), mem);
        WorkloadSet set;
        RedisWorkload::Params p;
        p.requests = 16384 * scale;
        p.keyspace = 16384 * scale;
        for (int t = 0; t < 6; t++) {
            set.workloads.push_back(std::make_unique<RedisWorkload>(
                mem, fs, t, scheme.get(), p));
        }
        set.shared = std::shared_ptr<void>(
            scheme.release(),
            [](void *q) { delete static_cast<RedundancyScheme *>(q); });
        return set;
    };
}

inline WorkloadFactory
ctreeInsertFactory(std::size_t scale)
{
    return [scale](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        auto scheme = makeScheme(mem.design(), mem);
        WorkloadSet set;
        TreeWorkload::Params p;
        p.kind = MapKind::CTree;
        p.mix = TreeWorkload::Mix::InsertOnly;
        p.preload = 16384 * scale;
        p.ops = 8192 * scale;
        for (int t = 0; t < 12; t++) {
            set.workloads.push_back(std::make_unique<TreeWorkload>(
                mem, fs, t, scheme.get(), p));
        }
        set.shared = std::shared_ptr<void>(
            scheme.release(),
            [](void *q) { delete static_cast<RedundancyScheme *>(q); });
        return set;
    };
}

inline WorkloadFactory
nstoreBalancedFactory(std::size_t scale)
{
    return [scale](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        auto scheme = makeScheme(mem.design(), mem);
        auto store = std::make_shared<NStore>(
            mem, fs, scheme.get(), 262144 * scale, 16384 * scale, 4);
        WorkloadSet set;
        NStoreWorkload::Params p;
        p.mix = NStoreWorkload::Mix::Balanced;
        p.txPerClient = 32768 * scale;
        for (int t = 0; t < 4; t++) {
            set.workloads.push_back(std::make_unique<NStoreWorkload>(
                mem, store, t, p));
        }
        struct Keep {
            std::shared_ptr<NStore> store;
            std::unique_ptr<RedundancyScheme> scheme;
        };
        set.shared =
            std::make_shared<Keep>(Keep{store, std::move(scheme)});
        return set;
    };
}

inline WorkloadFactory
fioRandWriteFactory(std::size_t scale)
{
    return [scale](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        auto scheme = makeScheme(mem.design(), mem);
        WorkloadSet set;
        FioWorkload::Params p;
        p.pattern = FioWorkload::Pattern::RandWrite;
        p.regionBytes = (2ull << 20) * scale;
        for (int t = 0; t < 12; t++) {
            set.workloads.push_back(std::make_unique<FioWorkload>(
                mem, fs, t, scheme.get(), p));
        }
        set.shared = std::shared_ptr<void>(
            scheme.release(),
            [](void *q) { delete static_cast<RedundancyScheme *>(q); });
        set.beforeMeasure = [](MemorySystem &m) { m.dropCaches(); };
        return set;
    };
}

inline WorkloadFactory
streamTriadFactory(std::size_t scale)
{
    return [scale](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        auto scheme = makeScheme(mem.design(), mem);
        WorkloadSet set;
        StreamWorkload::Params p;
        p.kernel = StreamWorkload::Kernel::Triad;
        p.chunkBytes = (1ull << 20) * scale;
        for (int t = 0; t < 12; t++) {
            set.workloads.push_back(std::make_unique<StreamWorkload>(
                mem, fs, t, scheme.get(), p));
        }
        set.shared = std::shared_ptr<void>(
            scheme.release(),
            [](void *q) { delete static_cast<RedundancyScheme *>(q); });
        set.beforeMeasure = [](MemorySystem &m) { m.dropCaches(); };
        return set;
    };
}

/** The Fig 9 / Fig 10 workload list, in paper order. */
struct NamedFactory {
    const char *name;
    WorkloadFactory factory;
    /** NVM DIMM capacity this workload needs. */
    std::size_t dimmBytes;
};

inline std::vector<NamedFactory>
fig9Workloads(std::size_t scale)
{
    return {
        {"redis-set", redisSetFactory(scale), 96ull << 20},
        {"ctree-insert", ctreeInsertFactory(scale), 96ull << 20},
        {"nstore-balanced", nstoreBalancedFactory(scale), 256ull << 20},
        {"fio-rand-write", fioRandWriteFactory(scale), 96ull << 20},
        {"stream-triad", streamTriadFactory(scale), 96ull << 20},
    };
}

}  // namespace tvarak::bench

