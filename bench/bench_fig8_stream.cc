/**
 * @file
 * Figure 8(q)-(t): stream copy/scale/add/triad kernels with 12
 * threads on persistent arrays.
 *
 * Expected shape (paper Section IV-F): all designs show their largest
 * relative overheads here (simple kernels, no reuse); overheads
 * decrease from copy (simplest) to triad (most compute); TVARAK stays
 * within a few tens of percent while TxB-Object-Csums and
 * TxB-Page-Csums are ~8-13x and ~19-33x slower.
 */

#include <memory>

#include "apps/stream/stream.hh"
#include "bench_common.hh"

using namespace tvarak;
using namespace tvarak::bench;

namespace {

WorkloadFactory
streamFactory(StreamWorkload::Kernel kernel, std::size_t chunkBytes)
{
    return [kernel, chunkBytes](MemorySystem &mem,
                                DaxFs &fs) -> WorkloadSet {
        auto scheme = makeScheme(mem.design(), mem);
        WorkloadSet set;
        StreamWorkload::Params p;
        p.kernel = kernel;
        p.chunkBytes = chunkBytes;
        for (int t = 0; t < 12; t++) {
            set.workloads.push_back(std::make_unique<StreamWorkload>(
                mem, fs, t, scheme.get(), p));
        }
        set.shared = std::shared_ptr<void>(
            scheme.release(),
            [](void *q) { delete static_cast<RedundancyScheme *>(q); });
        set.beforeMeasure = [](MemorySystem &m) { m.dropCaches(); };
        return set;
    };
}

}  // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(
        argc, argv, "Fig 8(q-t): stream kernels", "fig8_stream");
    SimConfig cfg = evalConfig();
    std::size_t chunk = args.scale * (2ull << 20);

    std::vector<WorkloadSpec> specs;
    for (auto kernel :
         {StreamWorkload::Kernel::Copy, StreamWorkload::Kernel::Scale,
          StreamWorkload::Kernel::Add, StreamWorkload::Kernel::Triad}) {
        specs.push_back({StreamWorkload::kernelName(kernel), cfg,
                         streamFactory(kernel, chunk)});
    }
    std::vector<FigureRow> rows =
        sweepRows(specs, args);
    printFigureGroup("Figure 8(q-t): stream, 12 threads", rows);
    printFigureCsv("fig8-stream", rows);
    writeBenchJson(args, jsonEntries(rows));
    return 0;
}
