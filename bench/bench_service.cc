/**
 * @file
 * Open-loop service sweep: tail latency vs offered load, per design.
 *
 * The bench calibrates each design's closed-loop capacity, then
 * sweeps every selected design over fractions of its own capacity
 * (src/service/sweep.hh), printing the latency table, the
 * knee-of-the-curve summary, and — with --json — a deterministic
 * results/bench_service.json (no timestamps: the same seed must
 * produce a byte-identical file, which CI checks with cmp).
 *
 * Designs are resolved through the registry and keyed by cliName, so
 * the Fig-9 tvarak variants can be swept side by side; the default
 * design set is *every* registered design. --fail-dimm additionally
 * fails DIMM 1 a quarter into the run and replaces it at the halfway
 * point (online rebuild in reactor idle gaps), making degraded-mode
 * and rebuild-in-progress tail latency visible; --fail-dimms i,j,...
 * generalizes that to a staggered multi-DIMM schedule where each
 * later DIMM fails while the previous one is still rebuilding, so the
 * erasure-coded designs' two-failure operation shows up at the knee
 * and the tail. Designs that cannot survive the schedule's failure
 * count are skipped in either mode; fault-DIMM indices are validated
 * against every selected design's (post-adjustConfig) DIMM count
 * before anything runs.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "service/sweep.hh"

using namespace tvarak;
using namespace tvarak::bench;
using namespace tvarak::service;

namespace {

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

/**
 * Parse a comma-separated DIMM index list. Exit-2 usage errors on
 * malformed numbers and duplicate indices; range checking against each
 * design's DIMM count happens later, once designs are resolved.
 */
std::vector<std::size_t>
parseFaultDimms(const std::string &spec)
{
    std::vector<std::size_t> dimms;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string tok = spec.substr(pos, comma - pos);
        errno = 0;
        char *end = nullptr;
        unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
        // Index 0 is a legal DIMM, so parseCountValue (which rejects
        // zero) cannot be reused here.
        if (tok.empty() || end == tok.c_str() || *end != '\0' ||
            tok[0] == '-' || errno == ERANGE) {
            benchUsageError("invalid --fail-dimms index '" + tok + "'");
        }
        dimms.push_back(static_cast<std::size_t>(v));
        pos = comma + 1;
    }
    for (std::size_t i = 0; i < dimms.size(); i++) {
        for (std::size_t j = i + 1; j < dimms.size(); j++) {
            if (dimms[i] == dimms[j]) {
                benchUsageError("--fail-dimms indices must be "
                                "distinct (DIMM " +
                                std::to_string(dimms[i]) +
                                " appears twice)");
            }
        }
    }
    return dimms;
}

void
writeServiceJson(const std::string &path, const ServiceConfig &svc,
                 std::size_t scale,
                 const std::vector<DesignSweep> &sweeps,
                 bool faultMode,
                 const std::vector<std::size_t> &faultDimms)
{
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path());
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
        return;
    }
    out << "{\n"
        << "  \"bench\": \"service\",\n"
        << "  \"workload\": \"" << svc.workload << "\",\n"
        << "  \"arrival\": \"" << arrivalKindName(svc.arrival.kind)
        << "\",\n"
        << "  \"servers\": " << svc.servers << ",\n"
        << "  \"requests\": " << svc.requests << ",\n"
        << "  \"scale\": " << scale << ",\n"
        << "  \"seed\": " << svc.arrival.seed << ",\n"
        << "  \"fault_mode\": " << (faultMode ? "true" : "false") << ",\n"
        << "  \"fault_dimms\": [";
    for (std::size_t i = 0; i < faultDimms.size(); i++)
        out << (i ? ", " : "") << faultDimms[i];
    out << "],\n"
        << "  \"designs\": [\n";
    for (std::size_t d = 0; d < sweeps.size(); d++) {
        const DesignSweep &sw = sweeps[d];
        out << "    {\"design\": \"" << sw.design->cliName() << "\",\n"
            << "     \"capacity_per_mcycle\": "
            << fmtDouble(sw.capacityPerMcycle) << ",\n";
        if (sw.kneeIndex >= 0) {
            const ServiceStats &k =
                sw.points[static_cast<std::size_t>(sw.kneeIndex)]
                    .result.service;
            out << "     \"knee_load_frac\": "
                << fmtDouble(sw.points[static_cast<std::size_t>(
                       sw.kneeIndex)].loadFrac)
                << ",\n     \"knee_achieved_per_mcycle\": "
                << fmtDouble(k.achievedPerMcycle) << ",\n";
        } else {
            out << "     \"knee_load_frac\": null,\n"
                << "     \"knee_achieved_per_mcycle\": null,\n";
        }
        out << "     \"points\": [\n";
        for (std::size_t i = 0; i < sw.points.size(); i++) {
            const SweepPoint &p = sw.points[i];
            const ServiceStats &s = p.result.service;
            out << "       {\"load_frac\": " << fmtDouble(p.loadFrac)
                << ", \"offered_per_mcycle\": "
                << fmtDouble(s.offeredPerMcycle)
                << ", \"achieved_per_mcycle\": "
                << fmtDouble(s.achievedPerMcycle)
                << ", \"completed\": " << s.completed
                << ", \"p50\": " << s.latency.percentile(0.50)
                << ", \"p99\": " << s.latency.percentile(0.99)
                << ", \"p999\": " << s.latency.percentile(0.999)
                << ", \"max\": " << s.latency.max()
                << ", \"mean\": " << fmtDouble(s.latency.mean())
                << ", \"max_outstanding\": " << s.maxOutstanding
                << ", \"idle_drains\": " << s.idleDrains
                << ", \"sustained\": "
                << (s.achievedPerMcycle >=
                    kKneeThreshold * s.offeredPerMcycle
                    ? "true" : "false")
                << "}" << (i + 1 < sw.points.size() ? "," : "") << "\n";
        }
        out << "     ]}" << (d + 1 < sweeps.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::fprintf(stderr, "  wrote %s\n", path.c_str());
}

}  // namespace

int
main(int argc, char **argv)
{
    ServiceConfig svc;
    bool faultMode = false;
    std::string failDimmsSpec;

    std::string workloadHelp = "service workload (";
    for (const ServiceWorkloadInfo &w : serviceWorkloads()) {
        if (workloadHelp.back() != '(')
            workloadHelp += ", ";
        workloadHelp += w.name;
    }
    workloadHelp += "); default redis-set";

    BenchArgsSpec spec;
    spec.what = "Open-loop service front-end: latency vs offered load "
        "per design";
    spec.benchName = "service";
    spec.uniqueDesignKinds = false;  // results keyed by registry name
    spec.extras = {
        {"--workload", "NAME", workloadHelp.c_str(),
         [&svc](const std::string &v) {
             bool known = false;
             for (const ServiceWorkloadInfo &w : serviceWorkloads())
                 known = known || v == w.name;
             if (!known)
                 benchUsageError("unknown service workload '" + v + "'");
             svc.workload = v;
         }},
        {"--servers", "N", "reactor threads (default 4)",
         [&svc](const std::string &v) {
             svc.servers = parseCountValue("--servers", v);
         }},
        {"--requests", "N", "open-loop requests per point (default 4096)",
         [&svc](const std::string &v) {
             svc.requests = parseCountValue("--requests", v);
         }},
        {"--arrival", "KIND", "arrival process: poisson | bursty",
         [&svc](const std::string &v) {
             if (!parseArrivalKind(v, svc.arrival.kind))
                 benchUsageError("unknown arrival kind '" + v +
                                 "' (poisson, bursty)");
         }},
        {"--seed", "N", "arrival/request stream seed (default 1)",
         [&svc](const std::string &v) {
             svc.arrival.seed = parseCountValue("--seed", v);
         }},
        {"--fail-dimm", nullptr,
         "fail DIMM 1 at 1/4 of the run, replace + rebuild at 1/2",
         [&faultMode](const std::string &) { faultMode = true; }},
        {"--fail-dimms", "LIST",
         "comma-separated DIMM indices failed in a staggered schedule "
         "(each later DIMM fails mid-rebuild of the previous one)",
         [&failDimmsSpec](const std::string &v) { failDimmsSpec = v; }},
    };
    BenchArgs args = parseBenchArgs(argc, argv, spec);
    svc.scale = args.scale;

    std::vector<std::size_t> faultDimms;
    if (!failDimmsSpec.empty()) {
        if (faultMode) {
            benchUsageError("--fail-dimm and --fail-dimms are "
                            "mutually exclusive");
        }
        faultDimms = parseFaultDimms(failDimmsSpec);
        // Staggered schedule: each DIMM's rebuild window is a quarter
        // of the run, and the next failure lands one sixteenth after
        // the previous replacement — well inside its idle-gap rebuild,
        // so every later failure is a fail-during-rebuild event.
        std::size_t base = svc.requests / 4;
        std::size_t gap = svc.requests / 16 > 0 ? svc.requests / 16 : 1;
        std::size_t at = base + 1;
        for (std::size_t dimm : faultDimms) {
            DimmFault f;
            f.dimm = dimm;
            f.failAt = at;
            f.replaceAt = at + base;
            if (f.failAt > svc.requests) {
                benchUsageError("--fail-dimms schedule does not fit in "
                                + std::to_string(svc.requests) +
                                " requests; raise --requests");
            }
            svc.faults.push_back(f);
            at = f.replaceAt + gap;
        }
    } else if (faultMode) {
        svc.failAtRequest = svc.requests / 4 + 1;
        svc.replaceAtRequest = svc.requests / 2 + 1;
        faultDimms.push_back(svc.faultDimm);
    }
    bool anyFault = faultMode || !svc.faults.empty();

    // Default to every registered design: the service layer turns each
    // one into a latency-vs-load curve, variants included.
    std::vector<const Design *> designs =
        args.designs.empty() ? allRegisteredDesigns() : args.designs;
    if (anyFault) {
        // A staggered --fail-dimms schedule can hold every listed DIMM
        // dead-or-rebuilding at once, so a design must survive that
        // many concurrent failures to run under it.
        std::size_t need = svc.faults.empty() ? 1 : svc.faults.size();
        std::vector<const Design *> survivors;
        for (const Design *d : designs) {
            if (d->maintainsMappedParity() &&
                d->absorbsWritesWhileDegraded() &&
                d->survivableFailures() >= need) {
                survivors.push_back(d);
            } else {
                std::fprintf(stderr,
                             "  skipping %s under --fail-dimm%s "
                             "(cannot survive %zu concurrent DIMM "
                             "%s)\n",
                             d->cliName().c_str(),
                             svc.faults.empty() ? "" : "s", need,
                             need == 1 ? "loss" : "losses");
            }
        }
        designs = survivors;
        if (designs.empty()) {
            std::fprintf(stderr,
                         "error: no selected design survives the "
                         "fault schedule\n");
            return 1;
        }
    }

    SimConfig cfg = evalConfig();
    // Range-check fault indices against each surviving design's own
    // machine shape (adjustConfig can change the DIMM count) before
    // anything runs, so a bad index is a clean usage error instead of
    // a panic deep inside MemorySystem.
    for (const Design *d : designs) {
        SimConfig probe = cfg;
        d->adjustConfig(probe);
        for (std::size_t dimm : faultDimms) {
            if (dimm >= probe.nvm.dimms) {
                benchUsageError("--fail-dimms index " +
                                std::to_string(dimm) +
                                " out of range: design " +
                                d->cliName() + " has " +
                                std::to_string(probe.nvm.dimms) +
                                " DIMMs");
            }
        }
    }

    std::fprintf(stderr, "  calibrating closed-loop capacity per "
                 "design (%s, %zu servers)...\n",
                 svc.workload.c_str(), svc.servers);
    std::vector<double> capacities =
        calibrateCapacities(cfg, designs, svc, args.jobs);
    std::string faultNote;
    if (anyFault) {
        faultNote = "  [fault mode: DIMM";
        if (faultDimms.size() > 1)
            faultNote += "s";
        for (std::size_t i = 0; i < faultDimms.size(); i++) {
            faultNote += i ? "," : " ";
            faultNote += std::to_string(faultDimms[i]);
        }
        faultNote += faultDimms.size() > 1
            ? " fail staggered mid-run]" : " fails mid-run]";
    }
    std::printf("== bench_service: %s, %s arrivals, %zu servers, "
                "%zu requests/point%s ==\n",
                svc.workload.c_str(),
                arrivalKindName(svc.arrival.kind), svc.servers,
                svc.requests, faultNote.c_str());

    std::vector<DesignSweep> sweeps =
        runSweep(cfg, designs, svc, capacities, defaultLoadFracs(),
                 args.jobs);

    std::vector<LatencyPoint> table;
    std::vector<KneeRow> knees;
    for (const DesignSweep &sw : sweeps) {
        for (const SweepPoint &p : sw.points) {
            const ServiceStats &s = p.result.service;
            LatencyPoint lp;
            lp.design = sw.design->cliName();
            lp.loadFrac = p.loadFrac;
            lp.offeredPerMcycle = s.offeredPerMcycle;
            lp.achievedPerMcycle = s.achievedPerMcycle;
            lp.p50 = s.latency.percentile(0.50);
            lp.p99 = s.latency.percentile(0.99);
            lp.p999 = s.latency.percentile(0.999);
            lp.maxLatency = s.latency.max();
            lp.sustained = s.achievedPerMcycle >=
                kKneeThreshold * s.offeredPerMcycle;
            table.push_back(std::move(lp));
        }
        KneeRow kr;
        kr.design = sw.design->cliName();
        kr.capacityPerMcycle = sw.capacityPerMcycle;
        kr.found = sw.kneeIndex >= 0;
        if (kr.found) {
            const SweepPoint &k =
                sw.points[static_cast<std::size_t>(sw.kneeIndex)];
            kr.kneeFrac = k.loadFrac;
            kr.kneeAchievedPerMcycle =
                k.result.service.achievedPerMcycle;
            kr.p999AtKnee = k.result.service.latency.percentile(0.999);
        }
        knees.push_back(std::move(kr));
    }

    printLatencySection(
        "Latency vs offered load (cycles; load = fraction of each "
        "design's capacity)", table);
    printKneeTable("Knee of the curve (largest sustained load)", knees);

    if (args.json) {
        writeServiceJson("results/bench_service.json", svc, args.scale,
                         sweeps, anyFault, faultDimms);
    }
    return 0;
}
