/**
 * @file
 * Open-loop service sweep: tail latency vs offered load, per design.
 *
 * The bench calibrates each design's closed-loop capacity, then
 * sweeps every selected design over fractions of its own capacity
 * (src/service/sweep.hh), printing the latency table, the
 * knee-of-the-curve summary, and — with --json — a deterministic
 * results/bench_service.json (no timestamps: the same seed must
 * produce a byte-identical file, which CI checks with cmp).
 *
 * Designs are resolved through the registry and keyed by cliName, so
 * the Fig-9 tvarak variants can be swept side by side; the default
 * design set is *every* registered design. --fail-dimm additionally
 * fails DIMM 1 a quarter into the run and replaces it at the halfway
 * point (online rebuild in reactor idle gaps), making degraded-mode
 * and rebuild-in-progress tail latency visible; designs that cannot
 * survive a DIMM loss are skipped in that mode.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "service/sweep.hh"

using namespace tvarak;
using namespace tvarak::bench;
using namespace tvarak::service;

namespace {

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
}

void
writeServiceJson(const std::string &path, const ServiceConfig &svc,
                 std::size_t scale,
                 const std::vector<DesignSweep> &sweeps,
                 bool faultMode)
{
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path());
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
        return;
    }
    out << "{\n"
        << "  \"bench\": \"service\",\n"
        << "  \"workload\": \"" << svc.workload << "\",\n"
        << "  \"arrival\": \"" << arrivalKindName(svc.arrival.kind)
        << "\",\n"
        << "  \"servers\": " << svc.servers << ",\n"
        << "  \"requests\": " << svc.requests << ",\n"
        << "  \"scale\": " << scale << ",\n"
        << "  \"seed\": " << svc.arrival.seed << ",\n"
        << "  \"fault_mode\": " << (faultMode ? "true" : "false") << ",\n"
        << "  \"designs\": [\n";
    for (std::size_t d = 0; d < sweeps.size(); d++) {
        const DesignSweep &sw = sweeps[d];
        out << "    {\"design\": \"" << sw.design->cliName() << "\",\n"
            << "     \"capacity_per_mcycle\": "
            << fmtDouble(sw.capacityPerMcycle) << ",\n";
        if (sw.kneeIndex >= 0) {
            const ServiceStats &k =
                sw.points[static_cast<std::size_t>(sw.kneeIndex)]
                    .result.service;
            out << "     \"knee_load_frac\": "
                << fmtDouble(sw.points[static_cast<std::size_t>(
                       sw.kneeIndex)].loadFrac)
                << ",\n     \"knee_achieved_per_mcycle\": "
                << fmtDouble(k.achievedPerMcycle) << ",\n";
        } else {
            out << "     \"knee_load_frac\": null,\n"
                << "     \"knee_achieved_per_mcycle\": null,\n";
        }
        out << "     \"points\": [\n";
        for (std::size_t i = 0; i < sw.points.size(); i++) {
            const SweepPoint &p = sw.points[i];
            const ServiceStats &s = p.result.service;
            out << "       {\"load_frac\": " << fmtDouble(p.loadFrac)
                << ", \"offered_per_mcycle\": "
                << fmtDouble(s.offeredPerMcycle)
                << ", \"achieved_per_mcycle\": "
                << fmtDouble(s.achievedPerMcycle)
                << ", \"completed\": " << s.completed
                << ", \"p50\": " << s.latency.percentile(0.50)
                << ", \"p99\": " << s.latency.percentile(0.99)
                << ", \"p999\": " << s.latency.percentile(0.999)
                << ", \"max\": " << s.latency.max()
                << ", \"mean\": " << fmtDouble(s.latency.mean())
                << ", \"max_outstanding\": " << s.maxOutstanding
                << ", \"idle_drains\": " << s.idleDrains
                << ", \"sustained\": "
                << (s.achievedPerMcycle >=
                    kKneeThreshold * s.offeredPerMcycle
                    ? "true" : "false")
                << "}" << (i + 1 < sw.points.size() ? "," : "") << "\n";
        }
        out << "     ]}" << (d + 1 < sweeps.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::fprintf(stderr, "  wrote %s\n", path.c_str());
}

}  // namespace

int
main(int argc, char **argv)
{
    ServiceConfig svc;
    bool faultMode = false;

    std::string workloadHelp = "service workload (";
    for (const ServiceWorkloadInfo &w : serviceWorkloads()) {
        if (workloadHelp.back() != '(')
            workloadHelp += ", ";
        workloadHelp += w.name;
    }
    workloadHelp += "); default redis-set";

    BenchArgsSpec spec;
    spec.what = "Open-loop service front-end: latency vs offered load "
        "per design";
    spec.benchName = "service";
    spec.uniqueDesignKinds = false;  // results keyed by registry name
    spec.extras = {
        {"--workload", "NAME", workloadHelp.c_str(),
         [&svc](const std::string &v) {
             bool known = false;
             for (const ServiceWorkloadInfo &w : serviceWorkloads())
                 known = known || v == w.name;
             if (!known)
                 benchUsageError("unknown service workload '" + v + "'");
             svc.workload = v;
         }},
        {"--servers", "N", "reactor threads (default 4)",
         [&svc](const std::string &v) {
             svc.servers = parseCountValue("--servers", v);
         }},
        {"--requests", "N", "open-loop requests per point (default 4096)",
         [&svc](const std::string &v) {
             svc.requests = parseCountValue("--requests", v);
         }},
        {"--arrival", "KIND", "arrival process: poisson | bursty",
         [&svc](const std::string &v) {
             if (!parseArrivalKind(v, svc.arrival.kind))
                 benchUsageError("unknown arrival kind '" + v +
                                 "' (poisson, bursty)");
         }},
        {"--seed", "N", "arrival/request stream seed (default 1)",
         [&svc](const std::string &v) {
             svc.arrival.seed = parseCountValue("--seed", v);
         }},
        {"--fail-dimm", nullptr,
         "fail DIMM 1 at 1/4 of the run, replace + rebuild at 1/2",
         [&faultMode](const std::string &) { faultMode = true; }},
    };
    BenchArgs args = parseBenchArgs(argc, argv, spec);
    svc.scale = args.scale;
    if (faultMode) {
        svc.failAtRequest = svc.requests / 4 + 1;
        svc.replaceAtRequest = svc.requests / 2 + 1;
    }

    // Default to every registered design: the service layer turns each
    // one into a latency-vs-load curve, variants included.
    std::vector<const Design *> designs =
        args.designs.empty() ? allRegisteredDesigns() : args.designs;
    if (faultMode) {
        std::vector<const Design *> survivors;
        for (const Design *d : designs) {
            if (d->maintainsMappedParity() &&
                d->absorbsWritesWhileDegraded()) {
                survivors.push_back(d);
            } else {
                std::fprintf(stderr,
                             "  skipping %s under --fail-dimm (cannot "
                             "survive a DIMM loss)\n",
                             d->cliName().c_str());
            }
        }
        designs = survivors;
        if (designs.empty()) {
            std::fprintf(stderr,
                         "error: no selected design survives a DIMM "
                         "loss\n");
            return 1;
        }
    }

    SimConfig cfg = evalConfig();

    std::fprintf(stderr, "  calibrating closed-loop capacity per "
                 "design (%s, %zu servers)...\n",
                 svc.workload.c_str(), svc.servers);
    std::vector<double> capacities =
        calibrateCapacities(cfg, designs, svc, args.jobs);
    std::printf("== bench_service: %s, %s arrivals, %zu servers, "
                "%zu requests/point%s ==\n",
                svc.workload.c_str(),
                arrivalKindName(svc.arrival.kind), svc.servers,
                svc.requests,
                faultMode ? "  [fault mode: DIMM 1 fails mid-run]" : "");

    std::vector<DesignSweep> sweeps =
        runSweep(cfg, designs, svc, capacities, defaultLoadFracs(),
                 args.jobs);

    std::vector<LatencyPoint> table;
    std::vector<KneeRow> knees;
    for (const DesignSweep &sw : sweeps) {
        for (const SweepPoint &p : sw.points) {
            const ServiceStats &s = p.result.service;
            LatencyPoint lp;
            lp.design = sw.design->cliName();
            lp.loadFrac = p.loadFrac;
            lp.offeredPerMcycle = s.offeredPerMcycle;
            lp.achievedPerMcycle = s.achievedPerMcycle;
            lp.p50 = s.latency.percentile(0.50);
            lp.p99 = s.latency.percentile(0.99);
            lp.p999 = s.latency.percentile(0.999);
            lp.maxLatency = s.latency.max();
            lp.sustained = s.achievedPerMcycle >=
                kKneeThreshold * s.offeredPerMcycle;
            table.push_back(std::move(lp));
        }
        KneeRow kr;
        kr.design = sw.design->cliName();
        kr.capacityPerMcycle = sw.capacityPerMcycle;
        kr.found = sw.kneeIndex >= 0;
        if (kr.found) {
            const SweepPoint &k =
                sw.points[static_cast<std::size_t>(sw.kneeIndex)];
            kr.kneeFrac = k.loadFrac;
            kr.kneeAchievedPerMcycle =
                k.result.service.achievedPerMcycle;
            kr.p999AtKnee = k.result.service.latency.percentile(0.999);
        }
        knees.push_back(std::move(kr));
    }

    printLatencySection(
        "Latency vs offered load (cycles; load = fraction of each "
        "design's capacity)", table);
    printKneeTable("Knee of the curve (largest sustained load)", knees);

    if (args.json) {
        writeServiceJson("results/bench_service.json", svc, args.scale,
                         sweeps, faultMode);
    }
    return 0;
}
