/**
 * @file
 * Table I: trade-offs among the DAX NVM storage redundancy designs.
 * The qualitative rows come from the paper; the measured column is
 * produced live by running a small write-heavy workload (C-Tree
 * insert-only) under every design on this build.
 */

#include <cstdio>

#include "apps/trees/tree_workload.hh"
#include "bench_common.hh"

using namespace tvarak;
using namespace tvarak::bench;

namespace {

WorkloadFactory
smallInsertFactory()
{
    return [](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        auto scheme = makeScheme(mem.design(), mem);
        WorkloadSet set;
        TreeWorkload::Params p;
        p.kind = MapKind::CTree;
        p.mix = TreeWorkload::Mix::InsertOnly;
        p.preload = 8192;
        p.ops = 8192;
        for (int t = 0; t < 12; t++) {
            set.workloads.push_back(std::make_unique<TreeWorkload>(
                mem, fs, t, scheme.get(), p));
        }
        set.shared = std::shared_ptr<void>(
            scheme.release(),
            [](void *q) { delete static_cast<RedundancyScheme *>(q); });
        return set;
    };
}

}  // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(
        argc, argv, "Table I: design-space trade-offs", "table1");
    SimConfig cfg = evalConfig();
    FigureRow row = sweepDesigns("ctree-insert-only", cfg,
                                 smallInsertFactory(), args);

    std::printf(
        "\n== Table I: trade-offs among DAX NVM redundancy designs ==\n"
        "%-22s %-12s %-26s %-26s %-18s\n",
        "design", "csum gran.", "update for DAX data", "verification",
        "measured overhead");
    struct QualRow {
        const char *design;
        DesignKind kind;
        bool measured;
        const char *gran, *update, *verify;
    };
    const QualRow qual[] = {
        {"Nova-Fortis/Plexistore", DesignKind::Baseline, false, "page",
         "no updates while mapped", "none while mapped"},
        {"Mojim/HotPot (TxB-Page)", DesignKind::TxBPageCsums, true,
         "page", "on application flush", "background scrubbing"},
        {"Pangolin (TxB-Object)", DesignKind::TxBObjectCsums, true,
         "object", "on application flush", "on NVM->DRAM copy"},
        // Measured when swept: pass --design vilamb (epoch details in
        // bench_vilamb).
        {"Vilamb", DesignKind::Vilamb, true, "page", "periodically",
         "background scrubbing"},
        {"TVARAK", DesignKind::Tvarak, true, "page (CL while mapped)",
         "on LLC->NVM writeback", "on NVM->LLC read"},
    };
    double base =
        static_cast<double>(row.results[DesignKind::Baseline]
                                .runtimeCycles);
    for (const QualRow &q : qual) {
        char measured[32] = "- (not built)";
        if (q.measured && row.results.count(q.kind) != 0) {
            double r = static_cast<double>(
                           row.results[q.kind].runtimeCycles) /
                base;
            std::snprintf(measured, sizeof(measured), "%+.1f%%",
                          (r - 1.0) * 100.0);
        } else if (q.measured) {
            std::snprintf(measured, sizeof(measured),
                          "- (not swept)");
        }
        std::printf("%-22s %-12s %-26s %-26s %-18s\n", q.design, q.gran,
                    q.update, q.verify, measured);
    }
    std::printf("\n(coverage semantics per paper Table I; 'measured "
                "overhead' is this build's C-Tree insert-only runtime "
                "vs Baseline)\n");
    writeBenchJson(args, jsonEntries({row}));
    return 0;
}
