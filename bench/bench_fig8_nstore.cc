/**
 * @file
 * Figure 8(i)-(l): N-Store YCSB workloads (update-heavy 90:10,
 * balanced 50:50, read-heavy 10:90 updates:reads) with high skew
 * (90% of transactions to 10% of tuples) and 4 client threads.
 *
 * Expected shape (paper Section IV-D): TVARAK +27..41% (its largest
 * application overhead — the linked-list WAL's random writes defeat
 * redundancy-cache reuse); TxB-Object-Csums +70..117%;
 * TxB-Page-Csums +264..600%.
 */

#include <memory>

#include "apps/nstore/nstore.hh"
#include "bench_common.hh"

using namespace tvarak;
using namespace tvarak::bench;

namespace {

WorkloadFactory
nstoreFactory(NStoreWorkload::Mix mix, std::size_t scale)
{
    return [mix, scale](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
        auto scheme = makeScheme(mem.design(), mem);
        // 262144 x 1KB tuples: the 8% hot set (~21.5 MB) fits the full
        // 24 MB LLC but not TVARAK's 19.5 MB data partition,
        // reproducing the paper's cache sensitivity.
        auto store = std::make_shared<NStore>(
            mem, fs, scheme.get(), 262144 * scale, 16384 * scale, 4);
        WorkloadSet set;
        NStoreWorkload::Params p;
        p.mix = mix;
        p.txPerClient = 131072 * scale;
        for (int t = 0; t < 4; t++) {
            set.workloads.push_back(std::make_unique<NStoreWorkload>(
                mem, store, t, p));
        }
        struct Keep {
            std::shared_ptr<NStore> store;
            std::unique_ptr<RedundancyScheme> scheme;
        };
        set.shared = std::make_shared<Keep>(
            Keep{store, std::move(scheme)});
        return set;
    };
}

}  // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(
        argc, argv, "Fig 8(i-l): N-Store YCSB, 4 clients, zipf 90/10",
        "fig8_nstore");
    SimConfig cfg = evalConfig();
    cfg.nvm.dimmBytes = 256ull << 20;  // room for the 268 MB table

    std::vector<WorkloadSpec> specs;
    for (auto mix :
         {NStoreWorkload::Mix::ReadHeavy, NStoreWorkload::Mix::Balanced,
          NStoreWorkload::Mix::UpdateHeavy}) {
        specs.push_back(
            {std::string("nstore-") + NStoreWorkload::mixName(mix), cfg,
             nstoreFactory(mix, args.scale)});
    }
    std::vector<FigureRow> rows =
        sweepRows(specs, args);
    printFigureGroup("Figure 8(i-l): N-Store YCSB, 4 clients", rows);
    printFigureCsv("fig8-nstore", rows);
    writeBenchJson(args, jsonEntries(rows));
    return 0;
}
