/**
 * @file
 * Figure 8(m)-(p): fio sequential/random reads/writes at 64 B
 * granularity with 12 threads on non-overlapping regions, under
 * Baseline / TVARAK / TxB-Object-Csums / TxB-Page-Csums.
 *
 * Expected shape (paper Section IV-E): TVARAK ~0% overhead for
 * sequential accesses, ~2% for random reads, ~33% for random writes;
 * the TxB schemes cost nothing on reads (they do not verify reads)
 * and far more than TVARAK on writes.
 */

#include <memory>

#include "apps/fio/fio.hh"
#include "bench_common.hh"

using namespace tvarak;
using namespace tvarak::bench;

namespace {

WorkloadFactory
fioFactory(FioWorkload::Pattern pattern, std::size_t regionBytes)
{
    return [pattern, regionBytes](MemorySystem &mem,
                                  DaxFs &fs) -> WorkloadSet {
        auto scheme = makeScheme(mem.design(), mem);
        WorkloadSet set;
        FioWorkload::Params p;
        p.pattern = pattern;
        p.regionBytes = regionBytes;
        for (int t = 0; t < 12; t++) {
            set.workloads.push_back(std::make_unique<FioWorkload>(
                mem, fs, t, scheme.get(), p));
        }
        set.shared = std::shared_ptr<void>(scheme.release(),
                                           [](void *p) {
            delete static_cast<RedundancyScheme *>(p);
        });
        // Paper: no cache line is accessed twice -> cold caches.
        set.beforeMeasure = [](MemorySystem &m) { m.dropCaches(); };
        return set;
    };
}

}  // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(
        argc, argv, "Fig 8(m-p): fio seq/rand x read/write", "fig8_fio");
    SimConfig cfg = evalConfig();
    std::size_t region = args.scale * (4ull << 20);

    std::vector<WorkloadSpec> specs;
    for (auto pattern :
         {FioWorkload::Pattern::SeqRead, FioWorkload::Pattern::SeqWrite,
          FioWorkload::Pattern::RandRead,
          FioWorkload::Pattern::RandWrite}) {
        specs.push_back({FioWorkload::patternName(pattern), cfg,
                         fioFactory(pattern, region)});
    }
    std::vector<FigureRow> rows =
        sweepRows(specs, args);
    printFigureGroup("Figure 8(m-p): fio, 12 threads, 64B accesses",
                     rows);
    printFigureCsv("fig8-fio", rows);
    writeBenchJson(args, jsonEntries(rows));
    return 0;
}
