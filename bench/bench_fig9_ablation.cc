/**
 * @file
 * Figure 9: impact of TVARAK's design choices. Starting from the
 * naive redundancy controller (page-granular checksums recomputed by
 * reading whole pages, no redundancy caching, old-data reads instead
 * of diffs), the optimizations are enabled cumulatively:
 *
 *   naive -> +DAX-CL-checksums -> +redundancy caching -> +data diffs
 *
 * The last configuration is full TVARAK; the one before it (diffs
 * off) is also the recommended configuration for exclusive-LLC
 * systems (paper Section IV-G).
 *
 * Expected shape: every step helps Redis, C-Tree and stream-triad;
 * redundancy caching and data diffs *hurt* N-Store and fio random
 * writes (taking LLC space from application data buys nothing when
 * redundancy lines have no reuse).
 */

#include "bench_workloads.hh"

using namespace tvarak;
using namespace tvarak::bench;

int
main(int argc, char **argv)
{
    std::size_t scale =
        parseScale(argc, argv, "Fig 9: TVARAK design-choice ablation");

    struct Config {
        const char *name;
        bool daxCl, redCache, diffs;
    };
    const std::vector<Config> configs = {
        {"naive", false, false, false},
        {"+dax-cl-csums", true, false, false},
        {"+red-caching", true, true, false},
        {"+data-diffs (TVARAK)", true, true, true},
    };

    std::vector<std::string> row_names;
    std::vector<std::vector<double>> table;
    std::vector<FigureRow> csv_rows;

    for (auto &w : fig9Workloads(scale)) {
        SimConfig cfg = evalConfig();
        cfg.nvm.dimmBytes = w.dimmBytes;
        std::fprintf(stderr, "  %s: baseline...\n", w.name);
        RunResult base =
            runExperiment(cfg, DesignKind::Baseline, w.factory);

        std::vector<double> row;
        FigureRow csv_row;
        csv_row.workload = w.name;
        csv_row.results[DesignKind::Baseline] = base;
        for (const Config &c : configs) {
            SimConfig vcfg = cfg;
            vcfg.tvarak.useDaxClChecksums = c.daxCl;
            vcfg.tvarak.useRedundancyCaching = c.redCache;
            vcfg.tvarak.useDataDiffs = c.diffs;
            std::fprintf(stderr, "  %s: %s...\n", w.name, c.name);
            RunResult r =
                runExperiment(vcfg, DesignKind::Tvarak, w.factory);
            row.push_back(static_cast<double>(r.runtimeCycles) /
                          static_cast<double>(base.runtimeCycles));
        }
        row_names.emplace_back(w.name);
        table.push_back(row);
        csv_rows.push_back(csv_row);
    }

    std::vector<std::string> columns;
    for (const Config &c : configs)
        columns.emplace_back(c.name);
    printRuntimeTable(
        "Figure 9: design ablation (runtime / Baseline)", columns,
        row_names, table);

    std::printf("\ncsv,fig9,workload");
    for (const Config &c : configs)
        std::printf(",%s", c.name);
    std::printf("\n");
    for (std::size_t i = 0; i < row_names.size(); i++) {
        std::printf("csv,fig9,%s", row_names[i].c_str());
        for (double v : table[i])
            std::printf(",%.4f", v);
        std::printf("\n");
    }
    return 0;
}
