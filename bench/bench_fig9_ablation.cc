/**
 * @file
 * Figure 9: impact of TVARAK's design choices. Starting from the
 * naive redundancy controller (page-granular checksums recomputed by
 * reading whole pages, no redundancy caching, old-data reads instead
 * of diffs), the optimizations are enabled cumulatively:
 *
 *   naive -> +DAX-CL-checksums -> +redundancy caching -> +data diffs
 *
 * The last configuration is full TVARAK; the one before it (diffs
 * off) is also the recommended configuration for exclusive-LLC
 * systems (paper Section IV-G).
 *
 * Expected shape: every step helps Redis, C-Tree and stream-triad;
 * redundancy caching and data diffs *hurt* N-Store and fio random
 * writes (taking LLC space from application data buys nothing when
 * redundancy lines have no reuse).
 */

#include "bench_workloads.hh"

using namespace tvarak;
using namespace tvarak::bench;

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(
        argc, argv, "Fig 9: TVARAK design-choice ablation",
        "fig9_ablation");

    // The cumulative ablation points are registered design variants
    // (each pins the deprecated TvarakParams::use* switches itself);
    // the classic Fig-9 column labels stay as output labels.
    struct Config {
        const char *name;
        const Design *design;
    };
    const std::vector<Config> configs = {
        {"naive", findDesign("tvarak-naive")},
        {"+dax-cl-csums", findDesign("tvarak-no-red-cache")},
        {"+red-caching", findDesign("tvarak-no-diffs")},
        {"+data-diffs (TVARAK)", findDesign("tvarak")},
    };

    // One batch: per workload, the baseline plus every cumulative
    // configuration. Stride through the flat result array below.
    const auto workloads = fig9Workloads(args.scale);
    std::vector<ExperimentJob> batch;
    for (auto &w : workloads) {
        SimConfig cfg = evalConfig();
        cfg.nvm.dimmBytes = w.dimmBytes;
        batch.push_back({std::string(w.name) + " baseline", cfg,
                         &designOf(DesignKind::Baseline), w.factory});
        for (const Config &c : configs) {
            batch.push_back({std::string(w.name) + " " + c.name, cfg,
                             c.design, w.factory});
        }
    }
    std::vector<RunResult> results = runExperiments(batch, args.jobs);

    std::vector<std::string> row_names;
    std::vector<std::vector<double>> table;
    std::vector<BenchJsonEntry> entries;
    const std::size_t stride = 1 + configs.size();
    for (std::size_t i = 0; i < workloads.size(); i++) {
        const RunResult &base = results[i * stride];
        BenchJsonEntry be;
        be.workload = workloads[i].name;
        be.design = "baseline";
        be.runtimeCycles = base.runtimeCycles;
        be.normRuntime = 1.0;
        be.energyMj = base.energyMj;
        be.nvmDataAccesses = base.nvmDataAccesses;
        be.nvmRedAccesses = base.nvmRedAccesses;
        be.cacheAccesses = base.cacheAccesses;
        entries.push_back(be);

        std::vector<double> row;
        for (std::size_t c = 0; c < configs.size(); c++) {
            const RunResult &r = results[i * stride + 1 + c];
            double norm = static_cast<double>(r.runtimeCycles) /
                static_cast<double>(base.runtimeCycles);
            row.push_back(norm);
            BenchJsonEntry e;
            e.workload = workloads[i].name;
            e.design = configs[c].name;
            e.runtimeCycles = r.runtimeCycles;
            e.normRuntime = norm;
            e.energyMj = r.energyMj;
            e.nvmDataAccesses = r.nvmDataAccesses;
            e.nvmRedAccesses = r.nvmRedAccesses;
            e.cacheAccesses = r.cacheAccesses;
            entries.push_back(e);
        }
        row_names.emplace_back(workloads[i].name);
        table.push_back(row);
    }

    std::vector<std::string> columns;
    for (const Config &c : configs)
        columns.emplace_back(c.name);
    printRuntimeTable(
        "Figure 9: design ablation (runtime / Baseline)", columns,
        row_names, table);

    std::printf("\ncsv,fig9,workload");
    for (const Config &c : configs)
        std::printf(",%s", c.name);
    std::printf("\n");
    for (std::size_t i = 0; i < row_names.size(); i++) {
        std::printf("csv,fig9,%s", row_names[i].c_str());
        for (double v : table[i])
            std::printf(",%.4f", v);
        std::printf("\n");
    }
    writeBenchJson(args, entries);
    return 0;
}
