/**
 * @file
 * Table III: dump the active simulation parameters, plus the TVARAK
 * area accounting of Section III-E (4 KB on-controller cache per 2 MB
 * LLC bank = 0.2% dedicated area).
 */

#include <cstdio>

#include "bench_common.hh"
#include "mem/memory_system.hh"

using namespace tvarak;
using namespace tvarak::bench;

int
main(int argc, char **argv)
{
    parseBenchArgs(argc, argv, "Table III: simulation parameters",
                   "table3");
    SimConfig cfg;  // unscaled Table III machine

    std::printf("== Table III: simulation parameters ==\n");
    std::printf("Cores            %zu, x86-64-like OOO accounting, %.2f GHz\n",
                cfg.cores, cfg.coreGhz);
    auto cacheRow = [](const char *name, const CacheParams &p) {
        std::printf("%-16s %zu KB, %zu-way, %llu cycle latency, "
                    "%.0f/%.0f pJ hit/miss\n",
                    name, p.sizeBytes / 1024, p.ways,
                    static_cast<unsigned long long>(p.latency),
                    p.hitEnergy, p.missEnergy);
    };
    cacheRow("L1 caches", cfg.l1);
    cacheRow("L2 caches", cfg.l2);
    std::printf("L3 cache         %zu MB (%zu x %zu MB banks), %zu-way, "
                "%llu cycle latency,\n"
                "                 shared, inclusive, 64B lines, "
                "%.0f/%.0f pJ hit/miss\n",
                cfg.llcBanks * cfg.llcBank.sizeBytes >> 20, cfg.llcBanks,
                cfg.llcBank.sizeBytes >> 20, cfg.llcBank.ways,
                static_cast<unsigned long long>(cfg.llcBank.latency),
                cfg.llcBank.hitEnergy, cfg.llcBank.missEnergy);
    std::printf("DRAM             %.0f ns reads/writes, %.1f nJ/access "
                "(documented assumption)\n",
                cfg.dram.accessNs, cfg.dram.accessEnergy / 1000.0);
    std::printf("NVM              %zu DIMMs x %zu MB, %.0f/%.0f ns "
                "read/write, %.1f/%.1f nJ per read/write\n",
                cfg.nvm.dimms, cfg.nvm.dimmBytes >> 20, cfg.nvm.readNs,
                cfg.nvm.writeNs, cfg.nvm.readEnergy / 1000.0,
                cfg.nvm.writeEnergy / 1000.0);
    std::printf("                 geometry (pinned by the selected "
                "design; see tvarak-rs4+2/-rs6+2):\n"
                "                 parityDimms=%zu, dimmsPerDomain=%zu\n",
                cfg.nvm.parityDimms, cfg.nvm.dimmsPerDomain);
    std::printf("TVARAK           %zu B %zu-way on-controller cache, "
                "%llu cycle latency, %.0f/%.0f pJ hit/miss,\n"
                "                 %llu cycles address range matching, "
                "%llu cycle per csum/parity computation,\n"
                "                 %zu/%zu LLC ways for redundancy/diffs\n",
                cfg.tvarak.cacheBytes, cfg.tvarak.cacheWays,
                static_cast<unsigned long long>(cfg.tvarak.cacheLatency),
                cfg.tvarak.cacheHitEnergy, cfg.tvarak.cacheMissEnergy,
                static_cast<unsigned long long>(
                    cfg.tvarak.rangeMatchLatency),
                static_cast<unsigned long long>(
                    cfg.tvarak.computeLatency),
                cfg.tvarak.redundancyWays, cfg.tvarak.diffWays);
    std::printf("                 features (pinned by the selected "
                "design; see tvarak-naive/-no-red-cache/-no-diffs):\n"
                "                 useDaxClChecksums=%s, "
                "useRedundancyCaching=%s, useDataDiffs=%s\n",
                cfg.tvarak.useDaxClChecksums ? "true" : "false",
                cfg.tvarak.useRedundancyCaching ? "true" : "false",
                cfg.tvarak.useDataDiffs ? "true" : "false");

    MemorySystem mem(cfg, DesignKind::Tvarak);
    double area = static_cast<double>(
                      mem.tvarak().dedicatedBytesPerController()) /
        static_cast<double>(cfg.llcBank.sizeBytes);
    std::printf("\n== Section III-E: area accounting ==\n"
                "Dedicated TVARAK SRAM per controller: %zu B per %zu MB "
                "LLC bank = %.2f%% (paper: 0.2%%)\n",
                mem.tvarak().dedicatedBytesPerController(),
                cfg.llcBank.sizeBytes >> 20, area * 100.0);
    std::printf("Timing-model knobs (this reproduction): "
                "storeIssueCycles=%llu, storeMissLatencyFactor=%.2f,\n"
                "prefetchDegree=%zu, occupancyRead/WriteFactor=%.2f/%.2f, "
                "swChecksumBytesPerCycle=%.0f,\n"
                "syncVerification=%s\n",
                static_cast<unsigned long long>(cfg.storeIssueCycles),
                cfg.storeMissLatencyFactor, cfg.prefetchDegree,
                cfg.nvm.occupancyReadFactor, cfg.nvm.occupancyWriteFactor,
                cfg.swChecksumBytesPerCycle,
                cfg.tvarak.syncVerification ? "true" : "false");
    return 0;
}
