/**
 * @file
 * Figure 8(e)-(h): tree-based key-value stores (C-Tree, B-Tree,
 * RB-Tree) with insert-only and balanced (50:50 updates:reads)
 * workloads, 12 independent single-threaded instances.
 *
 * Expected shape (paper Section IV-C): TVARAK within ~1.5% of
 * Baseline for insert-only and ~5% for balanced; TxB-Object-Csums
 * ~+43% (insert) / ~+20% (balanced); TxB-Page-Csums ~+171% / worse.
 */

#include <memory>

#include "apps/trees/tree_workload.hh"
#include "bench_common.hh"

using namespace tvarak;
using namespace tvarak::bench;

namespace {

WorkloadFactory
treeFactory(MapKind kind, TreeWorkload::Mix mix, std::size_t scale)
{
    return [kind, mix, scale](MemorySystem &mem,
                              DaxFs &fs) -> WorkloadSet {
        auto scheme = makeScheme(mem.design(), mem);
        WorkloadSet set;
        TreeWorkload::Params p;
        p.kind = kind;
        p.mix = mix;
        p.preload = 32768 * scale;
        p.ops = 8192 * scale;
        p.poolBytes = (16ull << 20) * scale;
        for (int t = 0; t < 12; t++) {
            set.workloads.push_back(std::make_unique<TreeWorkload>(
                mem, fs, t, scheme.get(), p));
        }
        set.shared = std::shared_ptr<void>(
            scheme.release(),
            [](void *q) { delete static_cast<RedundancyScheme *>(q); });
        return set;
    };
}

}  // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(
        argc, argv, "Fig 8(e-h): C/B/RB-Tree key-value structures",
        "fig8_kvstructs");
    SimConfig cfg = evalConfig();

    std::vector<WorkloadSpec> specs;
    for (MapKind kind :
         {MapKind::CTree, MapKind::BTree, MapKind::RBTree}) {
        for (TreeWorkload::Mix mix :
             {TreeWorkload::Mix::InsertOnly,
              TreeWorkload::Mix::Balanced}) {
            std::string label = std::string(mapKindName(kind)) + "-" +
                TreeWorkload::mixName(mix);
            specs.push_back({label, cfg,
                             treeFactory(kind, mix, args.scale)});
        }
    }
    std::vector<FigureRow> rows =
        sweepRows(specs, args);
    printFigureGroup(
        "Figure 8(e-h): key-value structures, 12 instances", rows);
    printFigureCsv("fig8-kvstructs", rows);
    writeBenchJson(args, jsonEntries(rows));
    return 0;
}
