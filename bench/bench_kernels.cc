/**
 * @file
 * google-benchmark microbenches for the data-plane kernels that both
 * TVARAK's functional model and the software schemes rely on. These
 * measure *host* throughput of the kernels (they justify the
 * swChecksumBytesPerCycle compute model used for the TxB schemes).
 *
 * Each kernel is benchmarked once per compiled backend (scalar,
 * sse42, avx2 — unavailable backends are skipped at registration), so
 * a single run shows the per-backend delta that the runtime dispatch
 * buys on this host.
 */

#include <benchmark/benchmark.h>

#include <array>
#include <string>
#include <vector>

#include "checksum/checksum.hh"
#include "kernels/kernels.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace {

using namespace tvarak;
using kernels::Backend;
using kernels::KernelOps;

std::vector<std::uint8_t>
randomBuf(std::size_t n)
{
    Rng rng(99);
    std::vector<std::uint8_t> buf(n);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng.next());
    return buf;
}

// ------------------------------------------------------------------
// Per-backend kernel rows. The benchmarked op goes through the
// backend's table directly (not the dispatched ops()), so one process
// reports every compiled backend side by side.
// ------------------------------------------------------------------

void
BM_KernelCrcLine(benchmark::State &state)
{
    const KernelOps &ops =
        kernels::opsFor(static_cast<Backend>(state.range(0)));
    auto buf = randomBuf(kLineBytes);
    for (auto _ : state)
        benchmark::DoNotOptimize(ops.crc32c(buf.data(), kLineBytes, 0));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * kLineBytes));
}

void
BM_KernelCrcPage(benchmark::State &state)
{
    const KernelOps &ops =
        kernels::opsFor(static_cast<Backend>(state.range(0)));
    auto buf = randomBuf(kPageBytes);
    for (auto _ : state)
        benchmark::DoNotOptimize(ops.crc32c(buf.data(), kPageBytes, 0));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * kPageBytes));
}

void
BM_KernelXorLine(benchmark::State &state)
{
    const KernelOps &ops =
        kernels::opsFor(static_cast<Backend>(state.range(0)));
    auto a = randomBuf(kLineBytes);
    auto b = randomBuf(kLineBytes);
    for (auto _ : state) {
        ops.xorInto(a.data(), b.data(), kLineBytes);
        benchmark::DoNotOptimize(a.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * kLineBytes));
}

void
BM_KernelGfMacLine(benchmark::State &state)
{
    const KernelOps &ops =
        kernels::opsFor(static_cast<Backend>(state.range(0)));
    auto src = randomBuf(kLineBytes);
    auto dst = randomBuf(kLineBytes);
    for (auto _ : state) {
        ops.gfMulAcc(dst.data(), src.data(), 0x1d, kLineBytes);
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * kLineBytes));
}

void
BM_KernelSequence(benchmark::State &state)
{
    // The full writeback pass: capture diff + checksum + two parity
    // roles, all in one traversal of the 64B line.
    const KernelOps &ops =
        kernels::opsFor(static_cast<Backend>(state.range(0)));
    auto oldData = randomBuf(kLineBytes);
    auto newData = randomBuf(kLineBytes);
    std::array<std::uint8_t, kLineBytes> diff{}, p0{}, p1{};
    std::uint64_t csum = 0;
    kernels::SeqDesc d;
    d.oldData = oldData.data();
    d.newData = newData.data();
    d.diffOut = diff.data();
    d.src = diff.data();
    d.csumOut = &csum;
    d.csumTag = kDaxClCsumTag;
    d.parity[0] = p0.data();
    d.coeff[0] = 1;
    d.parity[1] = p1.data();
    d.coeff[1] = 0x1d;
    d.roles = 2;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops.sequence(d));
        benchmark::DoNotOptimize(csum);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * kLineBytes));
}

void
BM_KernelFindTag(benchmark::State &state)
{
    // A 16-way LLC set probe that misses (worst case: full scan).
    const KernelOps &ops =
        kernels::opsFor(static_cast<Backend>(state.range(0)));
    std::vector<std::uint64_t> tags(16);
    for (std::size_t i = 0; i < tags.size(); i++)
        tags[i] = i * kLineBytes;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            ops.findTag(tags.data(), tags.size(), ~std::uint64_t{0}));
}

void
registerBackendRows()
{
    struct Row {
        const char *name;
        void (*fn)(benchmark::State &);
    };
    const Row rows[] = {
        {"BM_KernelCrcLine", BM_KernelCrcLine},
        {"BM_KernelCrcPage", BM_KernelCrcPage},
        {"BM_KernelXorLine", BM_KernelXorLine},
        {"BM_KernelGfMacLine", BM_KernelGfMacLine},
        {"BM_KernelSequence", BM_KernelSequence},
        {"BM_KernelFindTag", BM_KernelFindTag},
    };
    for (const Row &row : rows) {
        for (std::size_t i = 0; i < kernels::kBackendCount; i++) {
            Backend b = static_cast<Backend>(i);
            if (!kernels::backendAvailable(b))
                continue;
            std::string name = std::string(row.name) + "/" +
                kernels::backendName(b);
            benchmark::RegisterBenchmark(name.c_str(), row.fn)
                ->Arg(static_cast<int>(i));
        }
    }
}

// ------------------------------------------------------------------
// Facade rows (dispatched backend — whatever TVARAK_KERNEL picked).
// ------------------------------------------------------------------

void
BM_Crc32cLine(benchmark::State &state)
{
    auto buf = randomBuf(kLineBytes);
    for (auto _ : state)
        benchmark::DoNotOptimize(lineChecksum(buf.data()));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * kLineBytes));
}
BENCHMARK(BM_Crc32cLine);

void
BM_Crc32cPage(benchmark::State &state)
{
    auto buf = randomBuf(kPageBytes);
    for (auto _ : state)
        benchmark::DoNotOptimize(pageChecksum(buf.data()));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * kPageBytes));
}
BENCHMARK(BM_Crc32cPage);

void
BM_Fletcher64Page(benchmark::State &state)
{
    auto buf = randomBuf(kPageBytes);
    for (auto _ : state)
        benchmark::DoNotOptimize(fletcher64(buf.data(), buf.size()));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * kPageBytes));
}
BENCHMARK(BM_Fletcher64Page);

void
BM_XorLine(benchmark::State &state)
{
    auto a = randomBuf(kLineBytes);
    auto b = randomBuf(kLineBytes);
    for (auto _ : state) {
        xorLine(a.data(), b.data());
        benchmark::DoNotOptimize(a.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * kLineBytes));
}
BENCHMARK(BM_XorLine);

void
BM_ZipfDraw(benchmark::State &state)
{
    ZipfGenerator zipf(1u << 20, 0.99);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.next());
}
BENCHMARK(BM_ZipfDraw);

}  // namespace

int
main(int argc, char **argv)
{
    registerBackendRows();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
