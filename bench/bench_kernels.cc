/**
 * @file
 * google-benchmark microbenches for the checksum/parity kernels that
 * both TVARAK's functional model and the software schemes rely on.
 * These measure *host* throughput of the kernels (they justify the
 * swChecksumBytesPerCycle compute model used for the TxB schemes).
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "checksum/checksum.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace {

using namespace tvarak;

std::vector<std::uint8_t>
randomBuf(std::size_t n)
{
    Rng rng(99);
    std::vector<std::uint8_t> buf(n);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng.next());
    return buf;
}

void
BM_Crc32cLine(benchmark::State &state)
{
    auto buf = randomBuf(kLineBytes);
    for (auto _ : state)
        benchmark::DoNotOptimize(lineChecksum(buf.data()));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * kLineBytes));
}
BENCHMARK(BM_Crc32cLine);

void
BM_Crc32cPage(benchmark::State &state)
{
    auto buf = randomBuf(kPageBytes);
    for (auto _ : state)
        benchmark::DoNotOptimize(pageChecksum(buf.data()));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * kPageBytes));
}
BENCHMARK(BM_Crc32cPage);

void
BM_Fletcher64Page(benchmark::State &state)
{
    auto buf = randomBuf(kPageBytes);
    for (auto _ : state)
        benchmark::DoNotOptimize(fletcher64(buf.data(), buf.size()));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * kPageBytes));
}
BENCHMARK(BM_Fletcher64Page);

void
BM_XorLine(benchmark::State &state)
{
    auto a = randomBuf(kLineBytes);
    auto b = randomBuf(kLineBytes);
    for (auto _ : state) {
        xorLine(a.data(), b.data());
        benchmark::DoNotOptimize(a.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * kLineBytes));
}
BENCHMARK(BM_XorLine);

void
BM_ZipfDraw(benchmark::State &state)
{
    ZipfGenerator zipf(1u << 20, 0.99);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.next());
}
BENCHMARK(BM_ZipfDraw);

}  // namespace

BENCHMARK_MAIN();
