/**
 * @file
 * Figure 10: sensitivity to the LLC way-partition sizes.
 *
 * (a) ways (out of 16) reserved for caching redundancy information;
 * (b) ways reserved for storing data diffs.
 *
 * Expected shape (paper Section IV-H): Redis and C-Tree largely flat;
 * stream and fio improve with more redundancy-cache ways; N-Store is
 * cache-sensitive and degrades as ways are taken from application
 * data; the data-diff sweep is non-monotone for stream/fio (fewer
 * diff evictions vs. less application cache).
 *
 * Both sweeps share one batch, so each workload's Baseline runs once
 * (the sequential version ran it twice) and the whole figure fans out
 * across --jobs workers.
 */

#include "bench_workloads.hh"

using namespace tvarak;
using namespace tvarak::bench;

namespace {

void
printSweep(const char *caption, const char *csvId,
           const std::vector<std::size_t> &ways,
           const std::vector<std::string> &row_names,
           const std::vector<std::vector<double>> &table)
{
    std::vector<std::string> columns;
    for (std::size_t n : ways)
        columns.push_back(std::to_string(n) + " ways");
    printRuntimeTable(caption, columns, row_names, table);

    std::printf("\ncsv,%s,workload", csvId);
    for (std::size_t n : ways)
        std::printf(",%zu", n);
    std::printf("\n");
    for (std::size_t i = 0; i < row_names.size(); i++) {
        std::printf("csv,%s,%s", csvId, row_names[i].c_str());
        for (double v : table[i])
            std::printf(",%.4f", v);
        std::printf("\n");
    }
}

}  // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(
        argc, argv, "Fig 10: LLC partition sensitivity sweeps",
        "fig10_sensitivity");
    const std::vector<std::size_t> ways = {1, 2, 4, 6, 8};

    // Per workload: one baseline, then the redundancy-way sweep and
    // the diff-way sweep. Stride through the flat results below.
    const auto workloads = fig9Workloads(args.scale);
    std::vector<ExperimentJob> batch;
    for (auto &w : workloads) {
        SimConfig cfg = evalConfig();
        cfg.nvm.dimmBytes = w.dimmBytes;
        batch.push_back({std::string(w.name) + " baseline", cfg,
                         &designOf(DesignKind::Baseline), w.factory});
        for (std::size_t n : ways) {
            SimConfig vcfg = cfg;
            vcfg.tvarak.redundancyWays = n;
            batch.push_back({std::string(w.name) + " red-ways " +
                                 std::to_string(n),
                             vcfg, &designOf(DesignKind::Tvarak),
                             w.factory});
        }
        for (std::size_t n : ways) {
            SimConfig vcfg = cfg;
            vcfg.tvarak.diffWays = n;
            batch.push_back({std::string(w.name) + " diff-ways " +
                                 std::to_string(n),
                             vcfg, &designOf(DesignKind::Tvarak),
                             w.factory});
        }
    }
    std::vector<RunResult> results = runExperiments(batch, args.jobs);

    std::vector<std::string> row_names;
    std::vector<std::vector<double>> redTable, diffTable;
    std::vector<BenchJsonEntry> entries;
    const std::size_t stride = 1 + 2 * ways.size();
    auto record = [&entries](const char *workload, std::string design,
                             const RunResult &r, double norm) {
        BenchJsonEntry e;
        e.workload = workload;
        e.design = std::move(design);
        e.runtimeCycles = r.runtimeCycles;
        e.normRuntime = norm;
        e.energyMj = r.energyMj;
        e.nvmDataAccesses = r.nvmDataAccesses;
        e.nvmRedAccesses = r.nvmRedAccesses;
        e.cacheAccesses = r.cacheAccesses;
        entries.push_back(std::move(e));
    };
    for (std::size_t i = 0; i < workloads.size(); i++) {
        const RunResult &base = results[i * stride];
        record(workloads[i].name, "baseline", base, 1.0);
        std::vector<double> redRow, diffRow;
        for (std::size_t k = 0; k < ways.size(); k++) {
            const RunResult &r = results[i * stride + 1 + k];
            double norm = static_cast<double>(r.runtimeCycles) /
                static_cast<double>(base.runtimeCycles);
            redRow.push_back(norm);
            record(workloads[i].name,
                   "red-ways-" + std::to_string(ways[k]), r, norm);
        }
        for (std::size_t k = 0; k < ways.size(); k++) {
            const RunResult &r =
                results[i * stride + 1 + ways.size() + k];
            double norm = static_cast<double>(r.runtimeCycles) /
                static_cast<double>(base.runtimeCycles);
            diffRow.push_back(norm);
            record(workloads[i].name,
                   "diff-ways-" + std::to_string(ways[k]), r, norm);
        }
        row_names.emplace_back(workloads[i].name);
        redTable.push_back(redRow);
        diffTable.push_back(diffRow);
    }

    printSweep(
        "Figure 10(a): redundancy-cache ways (runtime / Baseline)",
        "fig10a", ways, row_names, redTable);
    printSweep("Figure 10(b): data-diff ways (runtime / Baseline)",
               "fig10b", ways, row_names, diffTable);
    writeBenchJson(args, entries);
    return 0;
}
