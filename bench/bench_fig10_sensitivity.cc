/**
 * @file
 * Figure 10: sensitivity to the LLC way-partition sizes.
 *
 * (a) ways (out of 16) reserved for caching redundancy information;
 * (b) ways reserved for storing data diffs.
 *
 * Expected shape (paper Section IV-H): Redis and C-Tree largely flat;
 * stream and fio improve with more redundancy-cache ways; N-Store is
 * cache-sensitive and degrades as ways are taken from application
 * data; the data-diff sweep is non-monotone for stream/fio (fewer
 * diff evictions vs. less application cache).
 */

#include "bench_workloads.hh"

using namespace tvarak;
using namespace tvarak::bench;

namespace {

void
sweep(const char *caption, const char *csvId,
      const std::vector<std::size_t> &ways, bool sweepDiff,
      std::size_t scale)
{
    std::vector<std::string> row_names;
    std::vector<std::vector<double>> table;

    for (auto &w : fig9Workloads(scale)) {
        SimConfig cfg = evalConfig();
        cfg.nvm.dimmBytes = w.dimmBytes;
        std::fprintf(stderr, "  %s: baseline...\n", w.name);
        RunResult base =
            runExperiment(cfg, DesignKind::Baseline, w.factory);

        std::vector<double> row;
        for (std::size_t n : ways) {
            SimConfig vcfg = cfg;
            if (sweepDiff)
                vcfg.tvarak.diffWays = n;
            else
                vcfg.tvarak.redundancyWays = n;
            std::fprintf(stderr, "  %s: %zu ways...\n", w.name, n);
            RunResult r =
                runExperiment(vcfg, DesignKind::Tvarak, w.factory);
            row.push_back(static_cast<double>(r.runtimeCycles) /
                          static_cast<double>(base.runtimeCycles));
        }
        row_names.emplace_back(w.name);
        table.push_back(row);
    }

    std::vector<std::string> columns;
    for (std::size_t n : ways)
        columns.push_back(std::to_string(n) + " ways");
    printRuntimeTable(caption, columns, row_names, table);

    std::printf("\ncsv,%s,workload", csvId);
    for (std::size_t n : ways)
        std::printf(",%zu", n);
    std::printf("\n");
    for (std::size_t i = 0; i < row_names.size(); i++) {
        std::printf("csv,%s,%s", csvId, row_names[i].c_str());
        for (double v : table[i])
            std::printf(",%.4f", v);
        std::printf("\n");
    }
}

}  // namespace

int
main(int argc, char **argv)
{
    std::size_t scale = parseScale(
        argc, argv, "Fig 10: LLC partition sensitivity sweeps");
    const std::vector<std::size_t> ways = {1, 2, 4, 6, 8};
    sweep("Figure 10(a): redundancy-cache ways (runtime / Baseline)",
          "fig10a", ways, false, scale);
    sweep("Figure 10(b): data-diff ways (runtime / Baseline)",
          "fig10b", ways, true, scale);
    return 0;
}
