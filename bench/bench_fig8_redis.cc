/**
 * @file
 * Figure 8(a)-(d): Redis set-only and get-only workloads with 6
 * independent instances (the paper shows 1-6; trends are identical).
 *
 * Expected shape (paper Section IV-B): TVARAK ~+3% on both workloads;
 * TxB-Object-Csums ~+50% (set) / <=+5% (get); TxB-Page-Csums ~+200%
 * (set) / <=+28% (get). Gets cost the software schemes because Redis
 * runs transactions (with metadata writes) even for gets.
 */

#include <memory>

#include "apps/redis/redis.hh"
#include "bench_common.hh"

using namespace tvarak;
using namespace tvarak::bench;

namespace {

WorkloadFactory
redisFactory(RedisWorkload::Mode mode, std::size_t scale,
             int instances)
{
    return [mode, scale, instances](MemorySystem &mem,
                                    DaxFs &fs) -> WorkloadSet {
        auto scheme = makeScheme(mem.design(), mem);
        WorkloadSet set;
        RedisWorkload::Params p;
        p.mode = mode;
        p.requests = 65536 * scale;
        p.keyspace = 65536 * scale;
        for (int t = 0; t < instances; t++) {
            set.workloads.push_back(std::make_unique<RedisWorkload>(
                mem, fs, t, scheme.get(), p));
        }
        set.shared = std::shared_ptr<void>(
            scheme.release(),
            [](void *q) { delete static_cast<RedundancyScheme *>(q); });
        return set;
    };
}

}  // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = parseBenchArgs(
        argc, argv, "Fig 8(a-d): Redis set/get, 6 instances",
        "fig8_redis");
    SimConfig cfg = evalConfig();

    std::vector<WorkloadSpec> specs = {
        {"redis-set-only", cfg,
         redisFactory(RedisWorkload::Mode::SetOnly, args.scale, 6)},
        {"redis-get-only", cfg,
         redisFactory(RedisWorkload::Mode::GetOnly, args.scale, 6)},
    };
    std::vector<FigureRow> rows =
        sweepRows(specs, args);

    printFigureGroup("Figure 8(a-d): Redis, 6 instances", rows);
    printFigureCsv("fig8-redis", rows);
    writeBenchJson(args, jsonEntries(rows));
    return 0;
}
