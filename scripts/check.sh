#!/bin/bash
# Full local gate: build matrix -> tests -> tvarak-lint -> clang-tidy.
#
# Mirrors the CI matrix (.github/workflows/ci.yml):
#   1. RelWithDebInfo build with -Werror, full ctest run
#   2. ASan+UBSan build, full ctest run
#   3. tvarak-lint (R1..R14 + SARIF determinism) + fixture self-test
#   4. clang-tidy (skipped with a notice if not installed)
#
# Usage: scripts/check.sh [--fast]
#   --fast   skip the sanitizer build (matrix job 2)
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[ "${1:-}" = "--fast" ] && FAST=1

GEN=()
command -v ninja >/dev/null && GEN=(-G Ninja)

echo "== [1/4] RelWithDebInfo + -Werror build =="
cmake -B build-check "${GEN[@]}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DTVARAK_WERROR=ON >/dev/null
cmake --build build-check -j"$(nproc)"
ctest --test-dir build-check --output-on-failure -j"$(nproc)"

if [ "$FAST" = 0 ]; then
    echo "== [2/4] ASan+UBSan build =="
    cmake -B build-asan "${GEN[@]}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DTVARAK_WERROR=ON "-DTVARAK_SANITIZE=address;undefined" \
        >/dev/null
    cmake --build build-asan -j"$(nproc)"
    ctest --test-dir build-asan --output-on-failure -j"$(nproc)"
else
    echo "== [2/4] sanitizer build skipped (--fast) =="
fi

echo "== [3/4] tvarak-lint =="
./build-check/tools/lint/tvarak-lint --root . \
    --sarif build-check/tvarak-lint.sarif
./build-check/tools/lint/tvarak-lint --root . \
    --sarif build-check/tvarak-lint.run2.sarif
cmp build-check/tvarak-lint.sarif build-check/tvarak-lint.run2.sarif
./build-check/tools/lint/tvarak-lint --self-test tests/lint_fixtures

echo "== [4/4] clang-tidy =="
if command -v clang-tidy >/dev/null && command -v run-clang-tidy \
    >/dev/null; then
    cmake -B build-check -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    run-clang-tidy -p build-check -quiet "$(pwd)/src/" \
        "$(pwd)/tools/"
else
    echo "clang-tidy not installed; skipping (CI runs it)"
fi

echo "All checks passed."
