#!/usr/bin/env python3
"""Compare bench_selfperf JSON reports.

Two modes, both consuming the results/BENCH_selfperf.json schema
(written by `bench_selfperf --json`):

identity A.json B.json
    Assert that the *simulated* results of two runs are bit-identical:
    every (workload, design) row must agree on sim_mcycles exactly.
    This is the cross-backend contract — a run pinned to
    TVARAK_KERNEL=scalar and one under the best backend must simulate
    the same machine; only wall-clock may differ. Exit 1 with a
    per-row diff otherwise.

gate CURRENT.json BASELINE.json [--min-ratio R]
    Assert CURRENT's total_mcycles_per_sec is at least R times
    BASELINE's (default 0.5 — a loose floor, because shared CI runners
    are noisy; the ratio catches order-of-magnitude regressions, not
    single-digit ones). Also re-checks the identity of sim_mcycles for
    rows present in both files, so a perf "win" that changed simulated
    behaviour still fails.

Exit codes: 0 ok, 1 comparison failed, 2 usage/malformed input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("bench") != "selfperf" or "results" not in doc:
        print(f"perf_compare: {path} is not a selfperf report",
              file=sys.stderr)
        sys.exit(2)
    return doc


def rows(doc):
    return {(r["workload"], r["design"]): r for r in doc["results"]}


def check_identity(a, b, name_a, name_b):
    ra, rb = rows(a), rows(b)
    shared = sorted(set(ra) & set(rb))
    if not shared:
        print("perf_compare: no shared (workload, design) rows")
        return False
    ok = True
    for key in shared:
        ma, mb = ra[key]["sim_mcycles"], rb[key]["sim_mcycles"]
        if ma != mb:
            wl, d = key
            print(f"MISMATCH {wl}/{d}: sim_mcycles "
                  f"{ma} ({name_a}) != {mb} ({name_b})")
            ok = False
    if ok:
        print(f"identity ok: {len(shared)} rows, sim_mcycles "
              f"bit-identical ({name_a} vs {name_b})")
    return ok


def cmd_identity(args):
    a, b = load(args.a), load(args.b)
    return check_identity(a, b, args.a, args.b)


def cmd_gate(args):
    cur, base = load(args.current), load(args.baseline)
    if not check_identity(cur, base, args.current, args.baseline):
        return False
    tc = cur.get("total_mcycles_per_sec", 0.0)
    tb = base.get("total_mcycles_per_sec", 0.0)
    if tb <= 0:
        print("perf_compare: baseline total_mcycles_per_sec <= 0",
              file=sys.stderr)
        sys.exit(2)
    ratio = tc / tb
    print(f"throughput: current {tc:.4g} vs baseline {tb:.4g} "
          f"Mcycles/sec (ratio {ratio:.3f}, floor {args.min_ratio})")
    if ratio < args.min_ratio:
        print(f"FAIL: simulator throughput regressed below "
              f"{args.min_ratio}x of the committed baseline")
        return False
    return True


def main():
    ap = argparse.ArgumentParser(
        description="Compare bench_selfperf JSON reports")
    sub = ap.add_subparsers(dest="mode", required=True)

    p_id = sub.add_parser(
        "identity",
        help="sim_mcycles must match exactly (cross-backend contract)")
    p_id.add_argument("a")
    p_id.add_argument("b")
    p_id.set_defaults(run=cmd_identity)

    p_gate = sub.add_parser(
        "gate", help="throughput floor vs committed baseline")
    p_gate.add_argument("current")
    p_gate.add_argument("baseline")
    p_gate.add_argument("--min-ratio", type=float, default=0.5)
    p_gate.set_defaults(run=cmd_gate)

    args = ap.parse_args()
    sys.exit(0 if args.run(args) else 1)


if __name__ == "__main__":
    main()
