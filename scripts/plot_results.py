#!/usr/bin/env python3
"""Render the bench binaries' machine-readable `csv,` lines as ASCII
bar charts (one chart per figure), mirroring the paper's normalized
bar plots.

Usage:
    for b in build/bench/*; do $b; done | tee bench_output.txt
    scripts/plot_results.py bench_output.txt
"""

import sys
from collections import defaultdict


def parse(path):
    """figure -> workload -> [(design, norm_runtime)]"""
    figures = defaultdict(lambda: defaultdict(list))
    for line in open(path, errors="replace"):
        if not line.startswith("csv,"):
            continue
        parts = line.strip().split(",")
        # Fig 8 format: csv,<fig>,<workload>,<design>,<runtime>,<norm>,...
        if len(parts) >= 6 and parts[1].startswith("fig8"):
            fig, workload, design, norm = (
                parts[1], parts[2], parts[3], parts[5])
            try:
                value = float(norm)
            except ValueError:
                continue  # header line
            figures[fig][workload].append((design, value))
    return figures


def bar(value, scale, width=46):
    n = min(width, max(1, int(round(value * scale))))
    return "#" * n


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    figures = parse(path)
    if not figures:
        print(f"no csv lines found in {path}", file=sys.stderr)
        return 1
    for fig in sorted(figures):
        print(f"\n=== {fig}: runtime normalized to Baseline ===")
        rows = figures[fig]
        peak = max(v for w in rows.values() for _, v in w)
        scale = 46.0 / peak
        for workload in rows:
            print(f"  {workload}")
            for design, norm in rows[workload]:
                print(f"    {design:<18} {norm:7.2f} "
                      f"|{bar(norm, scale)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
