/**
 * @file
 * tvarak-fault: seeded randomized fault campaigns against the
 * simulated machine, checking the paper's end-to-end promise — every
 * acknowledged write is either served back correct or its loss is
 * *detected*; it is never silently wrong.
 *
 *   tvarak-fault map    --seed N [--design <d>] [--ops N] [--keys N]
 *                       [--events N] [--out report.json]
 *   tvarak-fault replay <file.trace> --seed N [--out report.json]
 *
 * `map` runs a key-value workload (C-Tree over pmemlib) against a
 * shadow std::map oracle while a seeded schedule of firmware bugs
 * (lost / misdirected writes, misdirected reads), media bit flips and
 * one whole-DIMM loss fires at random operation boundaries. What each
 * design is expected to catch — and how — differs:
 *
 *  - Tvarak            detects on the very next read (fill-time
 *                      checksum verification) and recovers from
 *                      parity transparently; DIMM loss is survived
 *                      in place with degraded reads and online
 *                      rebuild, with updates continuing throughout.
 *  - TxB-Page-Csums    detects at quiesce via a page-checksum scrub
 *                      of the at-rest media, repairs from parity.
 *  - TxB-Object-Csums  detects at quiesce via the object-checksum
 *                      sweep and the parity cross-check, recovers at
 *                      application level (rewrite from a good copy).
 *                      Both TxB schemes recompute parity at commit,
 *                      so they too survive DIMM loss — but only with
 *                      writes quiesced while degraded (recomputation
 *                      reads stripe siblings, which is unsafe against
 *                      a half-updated stripe).
 *  - Baseline          detects nothing but device ECC (bit flips);
 *                      firmware bugs go *silently wrong* — the
 *                      campaign pins that non-detection.
 *
 * `replay` re-runs a recorded access trace under TVARAK and injects a
 * whole-DIMM failure plus online rebuild at seeded points mid-replay;
 * the faulted run's final NVM image must be bit-exact against a clean
 * replay of the same trace.
 *
 * Reports are deterministic JSON: same binary + same arguments =>
 * byte-identical output (no timestamps, no floats, fixed field
 * order), so campaigns can be diffed and pinned in CI.
 */

#include <climits>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/trees/pmem_map.hh"
#include "fs/dax_fs.hh"
#include "harness/runner.hh"
#include "pmemlib/pmem_pool.hh"
#include "redundancy/rebuild.hh"
#include "redundancy/registry.hh"
#include "redundancy/scheme.hh"
#include "sim/log.hh"
#include "trace/trace.hh"

namespace tvarak::faultcli {
namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  tvarak-fault map    --seed N [--design <d>] [--ops N]"
        " [--keys N]\n"
        "                      [--events N] [--out report.json]\n"
        "  tvarak-fault multi  --seed N [--design <d>] [--ops N]"
        " [--keys N]\n"
        "                      [--fail-dimms i,j | --fail-dimms i"
        " --refail]\n"
        "                      [--out report.json]\n"
        "  tvarak-fault replay <file.trace> --seed N"
        " [--out report.json]\n"
        "designs: %s\n",
        registeredNameList().c_str());
    return 2;
}

// ------------------------------------------------------------------
// Deterministic PRNG: xoshiro256** seeded via splitmix64, so one
// 64-bit seed reproduces the whole campaign on any platform.
// ------------------------------------------------------------------
class Rng
{
  public:
    explicit Rng(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : s_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    std::uint64_t
    next()
    {
        auto rotl = [](std::uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform in [0, n). */
    std::uint64_t
    below(std::uint64_t n)
    {
        return n == 0 ? 0 : next() % n;
    }

  private:
    std::uint64_t s_[4];
};

// ------------------------------------------------------------------
// Command-line plumbing (same shape as tvarak-trace).
// ------------------------------------------------------------------
struct Args {
    std::vector<std::string> positional;
    std::unordered_map<std::string, std::string> flags;
};

bool
parseArgs(const std::vector<std::string> &raw,
          const std::vector<std::string> &valueFlags,
          const std::vector<std::string> &boolFlags, Args &out)
{
    auto listed = [](const std::vector<std::string> &list,
                     const std::string &k) {
        for (const auto &f : list)
            if (f == k)
                return true;
        return false;
    };
    for (std::size_t i = 0; i < raw.size(); i++) {
        const std::string &a = raw[i];
        if (a.rfind("--", 0) != 0) {
            out.positional.push_back(a);
            continue;
        }
        std::string key = a;
        std::string val;
        bool hasVal = false;
        if (auto eq = a.find('='); eq != std::string::npos) {
            key = a.substr(0, eq);
            val = a.substr(eq + 1);
            hasVal = true;
        }
        if (listed(boolFlags, key)) {
            if (hasVal)
                return false;
            out.flags[key] = "1";
            continue;
        }
        if (!listed(valueFlags, key))
            return false;
        if (!hasVal) {
            if (i + 1 >= raw.size())
                return false;
            val = raw[++i];
        }
        out.flags[key] = val;
    }
    return true;
}

bool
parseArgs(const std::vector<std::string> &raw,
          const std::vector<std::string> &valueFlags, Args &out)
{
    return parseArgs(raw, valueFlags, {}, out);
}

std::uint64_t
parseU64(const std::string &s, bool allowZero)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    fatal_if(s.empty() || end == nullptr || *end != '\0' ||
                 (!allowZero && v == 0),
             "bad number '%s'", s.c_str());
    return v;
}

const Design &
parseDesign(const std::string &s)
{
    const Design *d = findDesign(s);
    if (d == nullptr) {
        std::fprintf(stderr,
                     "tvarak-fault: unknown design '%s' "
                     "(registered: %s)\n",
                     s.c_str(), registeredNameList().c_str());
        std::exit(2);
    }
    return *d;
}

// ------------------------------------------------------------------
// Deterministic JSON assembly: fixed field order, integers only.
// ------------------------------------------------------------------
class Json
{
  public:
    void
    key(const std::string &k)
    {
        comma();
        out_ += '"';
        out_ += k;
        out_ += "\": ";
        fresh_ = false;
    }

    void
    value(std::uint64_t v)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(v));
        out_ += buf;
    }

    void value(bool v) { out_ += v ? "true" : "false"; }

    void
    value(const std::string &v)
    {
        out_ += '"';
        for (char c : v) {
            if (c == '"' || c == '\\')
                out_ += '\\';
            out_ += c;
        }
        out_ += '"';
    }

    template <typename T>
    void
    field(const std::string &k, T v)
    {
        key(k);
        value(v);
    }

    void field(const std::string &k, const char *v)
    {
        key(k);
        value(std::string(v));
    }

    void open(char c) { out_ += c; fresh_ = true; }
    void openField(const std::string &k, char c) { key(k); open(c); }
    void close(char c) { out_ += c; fresh_ = false; }
    void item() { comma(); fresh_ = false; }

    const std::string &str() const { return out_; }

  private:
    void
    comma()
    {
        if (!fresh_)
            out_ += ", ";
        fresh_ = true;
    }

    std::string out_;
    bool fresh_ = true;
};

void
appendCounters(Json &json, const Stats &stats)
{
    json.openField("counters", '{');
    json.field("corruptions_detected", stats.corruptionsDetected);
    json.field("recoveries", stats.recoveries);
    json.field("degraded_reads", stats.degradedReads);
    json.field("degraded_writes_dropped", stats.degradedWritesDropped);
    json.field("degraded_red_skips", stats.degradedRedSkips);
    json.field("degraded_reads_multi", stats.degradedReadsMulti);
    json.field("rebuild_lines", stats.rebuildLines);
    json.field("rebuild_restarts", stats.rebuildRestarts);
    json.field("scrub_lines", stats.scrubLines);
    json.field("scrub_repairs", stats.scrubRepairs);
    json.close('}');
}

int
emit(const Json &json, const std::string &outPath, bool pass)
{
    std::string text = json.str() + "\n";
    if (outPath.empty()) {
        std::fputs(text.c_str(), stdout);
    } else {
        std::FILE *f = std::fopen(outPath.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "tvarak-fault: cannot write %s\n",
                         outPath.c_str());
            return 2;
        }
        std::fputs(text.c_str(), f);
        std::fclose(f);
        std::printf("%s: %s\n", pass ? "PASS" : "FAIL",
                    outPath.c_str());
    }
    return pass ? 0 : 1;
}

// ------------------------------------------------------------------
// The map-oracle campaign.
// ------------------------------------------------------------------
enum class FaultKind {
    LostWrite,
    MisdirectedWrite,
    MisdirectedRead,
    BitFlip,
    DimmLoss,
};

const char *
faultName(FaultKind k)
{
    switch (k) {
      case FaultKind::LostWrite:        return "lost-write";
      case FaultKind::MisdirectedWrite: return "misdirected-write";
      case FaultKind::MisdirectedRead:  return "misdirected-read";
      case FaultKind::BitFlip:          return "bit-flip";
      case FaultKind::DimmLoss:         return "dimm-loss";
    }
    return "?";
}

struct ScheduledFault {
    std::size_t op;
    FaultKind kind;
};

struct EventRecord {
    std::size_t op;
    FaultKind kind;
    std::string target;
    std::string result;    //!< detected / silent-expected / skipped...
    std::string detector;  //!< tvarak-fill / page-scrub / ...
    bool ok;               //!< matched this design's expectation
};

/** The scaled-down test machine: small caches so evictions (and thus
 *  writebacks and refills, where redundancy acts) happen quickly. */
SimConfig
campaignConfig()
{
    SimConfig cfg;
    cfg.cores = 2;
    cfg.l1 = {4 * 1024, 4, 4, 15.0, 33.0};
    cfg.l2 = {16 * 1024, 8, 7, 46.0, 94.0};
    cfg.llcBank = {64 * 1024, 16, 27, 240.0, 500.0};
    cfg.llcBanks = 4;
    cfg.dram.sizeBytes = 8ull << 20;
    cfg.nvm.dimms = 4;
    cfg.nvm.dimmBytes = 16ull << 20;
    return cfg;
}

class MapCampaign
{
  public:
    MapCampaign(const Design &design, std::uint64_t seed,
                std::size_t ops, std::size_t keys, std::size_t events)
        : design_(&design), seed_(seed), ops_(ops), keys_(keys),
          nEvents_(events), rng_(seed),
          mem_(campaignConfig(), design), fs_(mem_),
          scheme_(design.makeScheme(mem_)),
          pool_(mem_, fs_, "p", 4ull << 20, scheme_.get(), 1),
          map_(makeMap(MapKind::CTree, mem_, pool_, kValueBytes)),
          version_(keys, 0)
    {
    }

    bool run();
    void report(Json &json) const;

  private:
    static constexpr std::size_t kValueBytes = 48;
    /** Online rebuild budget per operation: fast enough that the
     *  campaign regains full redundancy with room for more faults,
     *  slow enough that many ops overlap the rebuilding window. */
    static constexpr std::size_t kRebuildLinesPerOp = 8192;

    void valueFor(std::uint64_t key, std::uint64_t version,
                  std::uint8_t *out) const;
    void schedule();
    bool degraded() { return mem_.nvmArray().anyDegraded(); }
    Addr lineOfKey(std::uint64_t key);
    void updateKey(std::uint64_t key, std::uint64_t version);
    bool getCheck(std::uint64_t key, bool expectCorrect);
    void probe(std::size_t op);
    void clearInjected();
    void runEvent(std::size_t op, FaultKind kind);
    void lineBugEvent(std::size_t op, FaultKind kind);
    void dimmLossEvent(std::size_t op);
    void appDetectRepair(EventRecord &ev,
                         const std::vector<std::uint64_t> &victims);
    /** Out-of-band recovery for designs that can detect but not
     *  repair mapped data (Baseline, object csums): a pre-fault good
     *  copy of each victim's whole line. Line-granular because pool
     *  objects are not line aligned — a corrupted line can clip a
     *  neighbouring object or tree node that rewriting the attacked
     *  keys would never heal. */
    struct SavedLine {
        Addr vline;   //!< virtual address of the line
        Addr global;  //!< NVM-global media address
        std::uint8_t bytes[kLineBytes];
    };
    std::vector<SavedLine>
    snapshotLines(const std::vector<std::uint64_t> &victims);
    void restoreLines(const std::vector<SavedLine> &saved);
    /** Close any batched redundancy work (Vilamb's open epoch) so the
     *  at-rest sweeps judge a consistent image; no-op for the sync
     *  schemes and the scheme-less designs. */
    void drainScheme();
    void finish();

    const Design *design_;
    std::uint64_t seed_;
    std::size_t ops_;
    std::size_t keys_;
    std::size_t nEvents_;
    Rng rng_;
    MemorySystem mem_;
    DaxFs fs_;
    std::unique_ptr<RedundancyScheme> scheme_;
    PmemPool pool_;
    std::unique_ptr<PmemMap> map_;
    std::vector<std::uint64_t> version_;  //!< shadow oracle
    int poolFd_ = -1;

    std::vector<ScheduledFault> schedule_;
    std::vector<EventRecord> events_;
    std::unique_ptr<RebuildEngine> rebuild_;
    std::size_t replaceAtOp_ = 0;
    std::size_t failedDimm_ = 0;

    // Campaign counters.
    std::uint64_t readsCorrect_ = 0;
    std::uint64_t readsRecovered_ = 0;
    std::uint64_t silentWrong_ = 0;
    std::uint64_t expectedSilent_ = 0;
    std::uint64_t updatesPaused_ = 0;
    bool shadowVerified_ = false;
    std::uint64_t finalScrubBad_ = 0;
    std::uint64_t finalParityBad_ = 0;
    std::size_t lineBugEvents_ = 0;
    bool eventFailure_ = false;
    bool pass_ = false;
};

void
MapCampaign::valueFor(std::uint64_t key, std::uint64_t version,
                      std::uint8_t *out) const
{
    for (std::size_t i = 0; i < kValueBytes; i++) {
        out[i] = static_cast<std::uint8_t>(key * 131 + version * 17 +
                                           seed_ + i);
    }
}

void
MapCampaign::schedule()
{
    // Which faults a design participates in, from its registry
    // policy bits. Misdirected reads are transient (they never land
    // at rest), so only fill-time verification can see them;
    // quiesce-time sweeps cannot. DIMM loss needs maintained parity,
    // which Baseline lacks for DAX-mapped data.
    std::vector<FaultKind> pool = {FaultKind::LostWrite,
                                   FaultKind::MisdirectedWrite};
    if (design_->detectsTransientReads())
        pool.push_back(FaultKind::MisdirectedRead);
    pool.push_back(FaultKind::BitFlip);
    if (design_->maintainsMappedParity())
        pool.push_back(FaultKind::DimmLoss);
    bool haveDimmLoss = false;
    std::size_t lo = ops_ / 12 + 1;
    std::size_t hi = ops_ - ops_ / 3;  // leave room for the rebuild
    for (std::size_t i = 0; i < nEvents_; i++) {
        ScheduledFault f;
        f.op = lo + static_cast<std::size_t>(rng_.below(hi - lo));
        f.kind = pool[rng_.below(pool.size())];
        if (f.kind == FaultKind::DimmLoss) {
            // RAID-5: one simultaneous device fault.
            if (haveDimmLoss)
                f.kind = FaultKind::LostWrite;
            haveDimmLoss = true;
        }
        schedule_.push_back(f);
    }
    for (std::size_t i = 1; i < schedule_.size(); i++) {
        for (std::size_t j = i; j > 0 && schedule_[j].op <
                 schedule_[j - 1].op; j--) {
            std::swap(schedule_[j], schedule_[j - 1]);
        }
    }
}

Addr
MapCampaign::lineOfKey(std::uint64_t key)
{
    Addr vaddr = map_->valueAddr(0, key);
    panic_if(vaddr == 0, "campaign key %llu has no value object",
             static_cast<unsigned long long>(key));
    Addr paddr;
    bool is_nvm;
    panic_if(!mem_.translate(vaddr, paddr, is_nvm) || !is_nvm,
             "campaign value not on NVM");
    return lineBase(paddr - kNvmPhysBase);
}

std::vector<MapCampaign::SavedLine>
MapCampaign::snapshotLines(const std::vector<std::uint64_t> &victims)
{
    // Called post-flushAll, pre-dropCaches: the coherent view still
    // holds the acknowledged bytes even though the media does not.
    std::vector<SavedLine> saved;
    for (std::uint64_t k : victims) {
        Addr vaddr = map_->valueAddr(0, k);
        panic_if(vaddr == 0, "campaign key %llu has no value object",
                 static_cast<unsigned long long>(k));
        Addr vline = lineBase(vaddr);
        bool dup = false;
        for (const SavedLine &s : saved)
            dup = dup || s.vline == vline;
        if (dup)
            continue;
        SavedLine s;
        s.vline = vline;
        s.global = lineOfKey(k);
        mem_.peek(vline, s.bytes, kLineBytes);
        saved.push_back(s);
    }
    return saved;
}

void
MapCampaign::restoreLines(const std::vector<SavedLine> &saved)
{
    for (const SavedLine &s : saved) {
        mem_.nvmArray().rawWrite(s.global, s.bytes, kLineBytes);
        mem_.refreshFromMedia(s.vline, kLineBytes);
    }
}

void
MapCampaign::updateKey(std::uint64_t key, std::uint64_t version)
{
    std::uint8_t value[kValueBytes];
    valueFor(key, version, value);
    panic_if(!map_->update(0, key, value), "campaign key vanished");
    version_[key] = version;
}

/** One oracle-checked read. @return true iff the bytes matched the
 *  shadow value. Detection-and-recovery during the read (TVARAK's
 *  fill verification) still counts as correct — that is the point. */
bool
MapCampaign::getCheck(std::uint64_t key, bool expectCorrect)
{
    std::uint8_t expect[kValueBytes];
    std::uint8_t got[kValueBytes] = {};
    valueFor(key, version_[key], expect);
    std::uint64_t before = mem_.stats().corruptionsDetected;
    bool found = map_->get(0, key, got);
    bool correct =
        found && std::memcmp(expect, got, kValueBytes) == 0;
    if (correct) {
        if (mem_.stats().corruptionsDetected > before)
            readsRecovered_++;
        else
            readsCorrect_++;
    } else if (expectCorrect) {
        silentWrong_++;
    } else {
        expectedSilent_++;
    }
    return correct;
}

void
MapCampaign::probe(std::size_t op)
{
    std::uint64_t key = rng_.below(keys_);
    if (!getCheck(key, true)) {
        warn("silent wrong read of key %llu at op %zu",
             static_cast<unsigned long long>(key), op);
    }
}

void
MapCampaign::clearInjected()
{
    auto &nvm = mem_.nvmArray();
    for (std::size_t d = 0; d < nvm.numDimms(); d++)
        nvm.dimm(d).clearInjectedBugs();
}

/** Application-level detect + repair used by the quiesce-time
 *  designs: sweep the at-rest invariants, then rewrite the attacked
 *  keys from the oracle (the "recover from a good copy" leg of the
 *  paper's fault model) and re-sweep to prove the system is whole. */
void
MapCampaign::drainScheme()
{
    if (scheme_ != nullptr)
        scheme_->drain(0);
}

void
MapCampaign::appDetectRepair(EventRecord &ev,
                             const std::vector<std::uint64_t> &victims)
{
    // By the time we sweep, the epoch is closed: lineBugEvent drains
    // at the injection boundaries (draining *here* would be too late —
    // re-reading a page whose media the bug already corrupted would
    // launder the corruption into a fresh checksum).
    mem_.flushAll();
    switch (design_->faultDetection()) {
      case FaultDetection::FillVerify: {
        // Fill-time verification: reading the victims detects and
        // transparently recovers; a repairing scrub then mops up the
        // at-rest copy (and any latent line nobody re-read).
        mem_.dropCaches();
        bool correct = true;
        for (std::uint64_t k : victims)
            correct = getCheck(k, true) && correct;
        bool detected = mem_.stats().corruptionsDetected > 0;
        mem_.flushAll();
        fs_.scrub(true);
        bool whole =
            fs_.scrub(false) == 0 && fs_.verifyParity() == 0;
        ev.result = detected ? "detected" : "missed";
        ev.detector = detected ? "tvarak-fill" : "none";
        ev.ok = detected && correct && whole;
        break;
      }
      case FaultDetection::PageScrub: {
        // Page-checksum scrub over the at-rest media of the victim
        // pages; parity repairs them in place. Ordered set: the scrub
        // order feeds the deterministic JSON report (lint R10).
        std::set<std::size_t> pages;
        for (std::uint64_t k : victims) {
            Addr vaddr = map_->valueAddr(0, k);
            pages.insert(static_cast<std::size_t>(
                (pageBase(vaddr) - fs_.vbase(poolFd_)) / kPageBytes));
        }
        std::size_t bad = 0;
        for (std::size_t p : pages)
            bad += fs_.scrubPage(poolFd_, p, false);
        for (std::size_t p : pages)
            fs_.scrubPage(poolFd_, p, true);
        std::size_t after = 0;
        for (std::size_t p : pages)
            after += fs_.scrubPage(poolFd_, p, false);
        mem_.dropCaches();
        bool correct = true;
        for (std::uint64_t k : victims)
            correct = getCheck(k, true) && correct;
        ev.result = bad > 0 ? "detected" : "missed";
        ev.detector = bad > 0 ? "page-scrub" : "none";
        ev.ok = bad > 0 && after == 0 && correct;
        break;
      }
      case FaultDetection::ObjectSweep: {
        // Object-checksum sweep (payload corruption) plus the parity
        // cross-check (catches the self-consistent-stale case a
        // whole-object lost write leaves behind). The design has no
        // locate-and-repair story for mapped data, so recovery is
        // out-of-band: the harness restores the attacked lines from
        // a pre-fault good copy (pool objects are not line aligned —
        // a corrupted line can clip a neighbouring object or tree
        // node that no key-level rewrite would heal).
        auto saved = snapshotLines(victims);
        mem_.dropCaches();
        std::size_t objBad = pool_.verifyObjects();
        std::size_t parityBad = fs_.verifyParity();
        restoreLines(saved);
        bool whole = pool_.verifyObjects() == 0 &&
            fs_.verifyParity() == 0;
        bool correct = true;
        for (std::uint64_t k : victims)
            correct = getCheck(k, true) && correct;
        bool detected = objBad + parityBad > 0;
        ev.result = detected ? "detected" : "missed";
        ev.detector = objBad > 0 ? "object-sweep"
            : parityBad > 0      ? "parity-scrub"
                                 : "none";
        ev.ok = detected && whole && correct;
        break;
      }
      case FaultDetection::None: {
        // Pinned non-detection: when a victim's read is wrong,
        // nothing notices. Recovery is out-of-band from a good copy,
        // as above.
        auto saved = snapshotLines(victims);
        mem_.dropCaches();
        std::size_t wrong = 0;
        for (std::uint64_t k : victims)
            wrong += getCheck(k, false) ? 0 : 1;
        restoreLines(saved);
        bool correct = true;
        for (std::uint64_t k : victims)
            correct = getCheck(k, true) && correct;
        // Whether a given victim ends up wrong depends on eviction
        // timing (the victim's own dirty line, written back after the
        // redirected write lands, masks the damage), so per-event
        // wrongness is recorded but not asserted; finish() pins the
        // aggregate: zero detections ever, silence observed at least
        // once across the campaign.
        ev.result = wrong > 0 ? "silent-expected" : "masked-by-writeback";
        ev.detector = "none";
        ev.ok = correct;
        break;
      }
    }
}

void
MapCampaign::lineBugEvent(std::size_t op, FaultKind kind)
{
    lineBugEvents_++;
    EventRecord ev;
    ev.op = op;
    ev.kind = kind;
    ev.ok = false;

    // Close any open epoch before arming the bug: the fault must land
    // on *covered* data (a fault inside Vilamb's open window is the
    // documented vulnerability, pinned by the scheme's own tests, not
    // what this campaign judges). No bug is armed yet, so the drain's
    // page re-reads are safe.
    drainScheme();

    std::uint64_t vk = rng_.below(keys_);
    Addr g = lineOfKey(vk);
    auto &nvm = mem_.nvmArray();
    auto &dimm = nvm.dimm(nvm.dimmOf(g));
    Addr media = nvm.mediaAddrOf(g);
    ev.target = "key " + std::to_string(vk);

    switch (kind) {
      case FaultKind::LostWrite: {
        dimm.injectLostWrite(media);
        updateKey(vk, version_[vk] + 1);
        // Close the epoch while the event's writes are still cache-hot
        // (the coherent view, not the bug-corrupted media), so the
        // at-rest checksums and parity cover the acknowledged bytes.
        drainScheme();
        mem_.flushAll();  // the acked writeback is dropped at-rest
        appDetectRepair(ev, {vk});
        break;
      }
      case FaultKind::MisdirectedWrite: {
        // Another key's writeback lands on our victim: its own line
        // goes stale-but-self-consistent, the victim's is corrupted.
        std::uint64_t wk = 0;
        Addr wg = 0;
        bool haveWriter = false;
        for (std::uint64_t i = 1; i < keys_; i++) {
            wk = (vk + i) % keys_;
            wg = lineOfKey(wk);
            if (wg != g && nvm.dimmOf(wg) == nvm.dimmOf(g)) {
                haveWriter = true;
                break;
            }
        }
        if (!haveWriter) {
            ev.result = "skipped-no-same-dimm-writer";
            ev.detector = "none";
            ev.ok = true;
            break;
        }
        ev.target += " <- key " + std::to_string(wk);
        dimm.injectMisdirectedWrite(nvm.mediaAddrOf(wg), media);
        updateKey(wk, version_[wk] + 1);
        drainScheme();  // cache-hot epoch close, as for lost writes
        mem_.flushAll();
        appDetectRepair(ev, {vk, wk});
        break;
      }
      case FaultKind::MisdirectedRead: {
        // Transient: the firmware returns the neighbouring line once.
        Addr other = lineInPage(g) + 1 < kLinesPerPage
            ? g + kLineBytes
            : g - kLineBytes;
        dimm.injectMisdirectedRead(media, nvm.mediaAddrOf(other));
        mem_.flushAll();
        mem_.dropCaches();
        std::uint64_t before = mem_.stats().corruptionsDetected;
        bool correct = getCheck(vk, true);
        bool detected = mem_.stats().corruptionsDetected > before;
        ev.result = detected ? "detected" : "missed";
        ev.detector = detected ? "tvarak-fill" : "none";
        ev.ok = detected && correct;
        break;
      }
      case FaultKind::BitFlip: {
        unsigned bit = static_cast<unsigned>(
            rng_.below(kLineBytes * CHAR_BIT));
        mem_.flushAll();
        if (design_->faultDetection() == FaultDetection::None) {
            // The one fault class the baseline *does* catch: device
            // ECC. Recovery still needs a good copy — of the whole
            // line: the flip can land in a neighbouring object's
            // bytes, which rewriting the attacked key cannot heal.
            auto saved = snapshotLines({vk});
            dimm.injectBitFlip(media, bit);
            bool detected = !dimm.eccCheck(media);
            mem_.dropCaches();
            getCheck(vk, false);  // flip may miss vk's own payload
            restoreLines(saved);
            bool correct = getCheck(vk, true);
            ev.result = detected ? "detected" : "missed";
            ev.detector = detected ? "device-ecc" : "none";
            ev.ok = detected && correct && dimm.eccCheck(media);
        } else {
            dimm.injectBitFlip(media, bit);
            appDetectRepair(ev, {vk});
        }
        break;
      }
      case FaultKind::DimmLoss:
        panic("dimm loss is not a line bug");
    }
    clearInjected();
    if (!ev.ok)
        eventFailure_ = true;
    events_.push_back(std::move(ev));
}

void
MapCampaign::dimmLossEvent(std::size_t op)
{
    // Quiesce and mop up latent corruption first: single-fault
    // discipline — a device loss on top of an undetected line error
    // exceeds the RAID-5 redundancy. Batched schemes (Vilamb) must
    // close their epoch before the repairing scrub judges the media.
    drainScheme();
    mem_.flushAll();
    fs_.scrub(true);
    failedDimm_ = static_cast<std::size_t>(
        rng_.below(mem_.nvmArray().numDimms()));
    mem_.failDimm(failedDimm_);
    mem_.dropCaches();  // every later read of the DIMM reconstructs
    replaceAtOp_ = op + std::max<std::size_t>(ops_ / 6, 8);

    EventRecord ev;
    ev.op = op;
    ev.kind = FaultKind::DimmLoss;
    ev.target = "dimm " + std::to_string(failedDimm_) +
        ", replace at op " + std::to_string(replaceAtOp_);
    ev.result = "degraded";
    ev.detector = "degraded-read";
    ev.ok = true;  // judged by the probes + final sweeps
    events_.push_back(std::move(ev));
}

void
MapCampaign::runEvent(std::size_t op, FaultKind kind)
{
    if (kind == FaultKind::DimmLoss) {
        dimmLossEvent(op);
        return;
    }
    if (degraded()) {
        // Single-fault discipline again: no firmware bugs while a
        // whole device is already out.
        EventRecord ev;
        ev.op = op;
        ev.kind = kind;
        ev.target = "-";
        ev.result = "skipped-degraded";
        ev.detector = "none";
        ev.ok = true;
        events_.push_back(std::move(ev));
        return;
    }
    lineBugEvent(op, kind);
}

void
MapCampaign::finish()
{
    if (rebuild_ == nullptr &&
        mem_.nvmArray().anyDegraded()) {
        mem_.replaceDimm(failedDimm_);
        rebuild_ = std::make_unique<RebuildEngine>(mem_, &fs_);
    }
    if (rebuild_ != nullptr)
        rebuild_->runToCompletion();
    drainScheme();
    mem_.flushAll();

    // Design-appropriate at-rest invariants...
    switch (design_->faultDetection()) {
      case FaultDetection::FillVerify:
      case FaultDetection::PageScrub:
        finalScrubBad_ = fs_.scrub(false);
        finalParityBad_ = fs_.verifyParity();
        break;
      case FaultDetection::ObjectSweep:
        mem_.dropCaches();
        finalScrubBad_ = pool_.verifyObjects();
        finalParityBad_ = fs_.verifyParity();
        break;
      case FaultDetection::None:
        // Nothing to sweep: mapped-data redundancy does not exist.
        break;
    }

    // ...and the oracle's last word: every key, read cold from the
    // at-rest media, must return exactly its acknowledged bytes.
    mem_.dropCaches();
    shadowVerified_ = true;
    for (std::uint64_t k = 0; k < keys_; k++)
        shadowVerified_ = getCheck(k, true) && shadowVerified_;

    pass_ = !eventFailure_ && silentWrong_ == 0 && shadowVerified_ &&
        finalScrubBad_ == 0 && finalParityBad_ == 0;
    if (rebuild_ != nullptr) {
        pass_ = pass_ && mem_.stats().degradedReads > 0 &&
            mem_.stats().rebuildLines > 0;
    }
    if (design_->faultDetection() == FaultDetection::None) {
        // The aggregate Baseline pin: across the whole campaign the
        // design never once claimed a detection, and at least one
        // injected fault was observed as a silent wrong read.
        pass_ = pass_ && mem_.stats().corruptionsDetected == 0 &&
            (lineBugEvents_ == 0 || expectedSilent_ > 0);
    }
}

bool
MapCampaign::run()
{
    poolFd_ = fs_.open("p");
    panic_if(poolFd_ < 0, "campaign pool file missing");
    schedule();

    std::uint8_t value[kValueBytes];
    for (std::uint64_t k = 0; k < keys_; k++) {
        valueFor(k, 0, value);
        map_->insert(0, k, value);
        version_[k] = 0;
    }
    mem_.flushAll();

    std::size_t nextEvent = 0;
    for (std::size_t op = 0; op < ops_; op++) {
        while (nextEvent < schedule_.size() &&
               schedule_[nextEvent].op == op) {
            runEvent(op, schedule_[nextEvent].kind);
            nextEvent++;
        }
        if (replaceAtOp_ != 0 && op == replaceAtOp_) {
            mem_.replaceDimm(failedDimm_);
            rebuild_ = std::make_unique<RebuildEngine>(mem_, &fs_);
        }
        if (rebuild_ != nullptr && !rebuild_->done()) {
            // The rebuilder reconstructs from parity; batched schemes
            // must catch up first or it reads parity that does not yet
            // cover the epoch's acknowledged writebacks.
            drainScheme();
            rebuild_->step(kRebuildLinesPerOp);
        }

        // The TxB schemes (and Vilamb) maintain parity by
        // recomputation over the stripe, which is only safe against a
        // quiesced, consistent image — so their degraded window is
        // read-only. TVARAK's diff-based at-rest updates keep
        // absorbing writes throughout.
        bool writesAllowed =
            !degraded() || design_->absorbsWritesWhileDegraded();
        if (writesAllowed) {
            std::uint64_t k = rng_.below(keys_);
            updateKey(k, version_[k] + 1);
        } else {
            rng_.next();  // keep the draw stream aligned
            updatesPaused_++;
        }
        probe(op);
    }
    finish();
    return pass_;
}

void
MapCampaign::report(Json &json) const
{
    json.open('{');
    json.field("tool", "tvarak-fault");
    json.field("mode", "map");
    json.field("seed", seed_);
    json.field("design", design_->displayName());
    json.field("ops", static_cast<std::uint64_t>(ops_));
    json.field("keys", static_cast<std::uint64_t>(keys_));
    json.openField("events", '[');
    for (const EventRecord &ev : events_) {
        json.item();
        json.open('{');
        json.field("op", static_cast<std::uint64_t>(ev.op));
        json.field("kind", faultName(ev.kind));
        json.field("target", ev.target);
        json.field("result", ev.result);
        json.field("detector", ev.detector);
        json.field("ok", ev.ok);
        json.close('}');
    }
    json.close(']');
    json.openField("reads", '{');
    json.field("correct", readsCorrect_);
    json.field("detected_and_recovered", readsRecovered_);
    json.field("silent_wrong", silentWrong_);
    json.field("silent_expected_baseline", expectedSilent_);
    json.field("updates_paused_degraded", updatesPaused_);
    json.close('}');
    appendCounters(json, mem_.stats());
    json.openField("final", '{');
    json.field("shadow_verified", shadowVerified_);
    json.field("sweep_bad", finalScrubBad_);
    json.field("parity_bad", finalParityBad_);
    json.close('}');
    json.field("verdict", pass_ ? "PASS" : "FAIL");
    json.close('}');
}

int
cmdMap(const std::vector<std::string> &raw)
{
    Args a;
    if (!parseArgs(raw,
                   {"--seed", "--design", "--ops", "--keys",
                    "--events", "--out"},
                   a) ||
        !a.positional.empty() || a.flags.count("--seed") == 0) {
        return usage();
    }
    std::uint64_t seed = parseU64(a.flags.at("--seed"), true);
    const Design &design = a.flags.count("--design") != 0
        ? parseDesign(a.flags.at("--design"))
        : designOf(DesignKind::Tvarak);
    auto flagOr = [&](const char *key, std::uint64_t dflt) {
        return a.flags.count(key) != 0 ? parseU64(a.flags.at(key), false)
                                       : dflt;
    };
    std::size_t ops = static_cast<std::size_t>(flagOr("--ops", 240));
    std::size_t keys = static_cast<std::size_t>(flagOr("--keys", 96));
    std::size_t events =
        static_cast<std::size_t>(flagOr("--events", 5));
    fatal_if(ops < 24, "--ops must be at least 24");

    inform("map campaign: %s, seed %llu, %zu ops, %zu events",
           design.displayName(), static_cast<unsigned long long>(seed),
           ops, events);
    MapCampaign campaign(design, seed, ops, keys, events);
    bool pass = campaign.run();
    Json json;
    campaign.report(json);
    std::string out =
        a.flags.count("--out") != 0 ? a.flags.at("--out") : "";
    return emit(json, out, pass);
}

// ------------------------------------------------------------------
// Trace replay under injected DIMM loss.
// ------------------------------------------------------------------

/** FNV-1a over the full at-rest NVM image, in line-sized chunks. */
std::uint64_t
imageHash(NvmArray &nvm)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    std::uint8_t buf[kLineBytes];
    for (Addr a = 0; a < nvm.totalBytes(); a += kLineBytes) {
        nvm.rawRead(a, buf, kLineBytes);
        for (std::uint8_t b : buf) {
            h ^= b;
            h *= 0x100000001b3ull;
        }
    }
    return h;
}

int
cmdReplay(const std::vector<std::string> &raw)
{
    Args a;
    if (!parseArgs(raw, {"--seed", "--design", "--out"}, a) ||
        a.positional.size() != 1 || a.flags.count("--seed") == 0) {
        return usage();
    }
    const Design *design = &designOf(DesignKind::Tvarak);
    if (a.flags.count("--design") != 0)
        design = &parseDesign(a.flags.at("--design"));
    if (!(design->absorbsWritesWhileDegraded() &&
          design->maintainsMappedParity())) {
        std::fprintf(
            stderr,
            "tvarak-fault: replay fault injection needs a design that "
            "maintains mapped-data parity AND absorbs writes while "
            "degraded; only Tvarak's diff-based at-rest updates do "
            "(the TxB schemes and Vilamb recompute over the stripe, "
            "which is unsafe mid-replay)\n");
        return 2;
    }
    auto trace = trace::TraceData::load(a.positional[0]);
    if (trace == nullptr) {
        std::fprintf(stderr, "tvarak-fault: cannot load trace %s\n",
                     a.positional[0].c_str());
        return 2;
    }
    std::uint64_t seed = parseU64(a.flags.at("--seed"), true);
    Rng rng(seed);

    // Clean replay: reference image and pass count.
    inform("clean replay of %s (%llu events) ...",
           trace->workloadName.c_str(),
           static_cast<unsigned long long>(trace->eventCount));
    std::size_t passes = 0;
    std::uint64_t cleanHash = 0;
    RunHooks cleanHooks;
    cleanHooks.onStep = [&](MemorySystem &, std::size_t p) {
        passes = p;
    };
    cleanHooks.beforeFlush = [&](MemorySystem &m) {
        m.flushAll();
        cleanHash = imageHash(m.nvmArray());
    };
    RunResult clean = runExperiment(trace->cfg, *design,
                                    trace::makeReplayFactory(trace),
                                    cleanHooks);

    // Faulted replay: lose a random DIMM at a seeded pass, replace it
    // later, rebuild online while the replay keeps running.
    std::size_t failPass =
        1 + static_cast<std::size_t>(
                rng.below(std::max<std::size_t>(passes / 2, 1)));
    std::size_t replacePass = failPass +
        std::max<std::size_t>(passes / 6, 1);
    std::size_t dimm = static_cast<std::size_t>(
        rng.below(trace->cfg.nvm.dimms));
    inform("faulted replay: fail dimm %zu at pass %zu/%zu, replace at "
           "pass %zu ...",
           dimm, failPass, passes, replacePass);

    DaxFs *fsPtr = nullptr;
    std::unique_ptr<RebuildEngine> rebuild;
    bool failed = false;
    std::uint64_t faultedHash = 0;
    std::uint64_t scrubBad = 0;
    std::uint64_t parityBad = 0;
    RunHooks faultHooks;
    faultHooks.onMachine = [&](MemorySystem &, DaxFs &fs) {
        fsPtr = &fs;
    };
    faultHooks.onStep = [&](MemorySystem &m, std::size_t p) {
        if (p == failPass) {
            m.flushAll();
            fsPtr->scrub(true);  // single-fault discipline
            m.failDimm(dimm);
            m.dropCaches();
            failed = true;
        }
        if (p == replacePass && failed && rebuild == nullptr) {
            m.replaceDimm(dimm);
            rebuild = std::make_unique<RebuildEngine>(m, fsPtr);
        }
        if (rebuild != nullptr && !rebuild->done())
            rebuild->step(2048);
    };
    faultHooks.beforeFlush = [&](MemorySystem &m) {
        if (failed && rebuild == nullptr) {
            m.replaceDimm(dimm);
            rebuild = std::make_unique<RebuildEngine>(m, fsPtr);
        }
        if (rebuild != nullptr)
            rebuild->runToCompletion();
        m.flushAll();
        scrubBad = fsPtr->scrub(false);
        parityBad = fsPtr->verifyParity();
        faultedHash = imageHash(m.nvmArray());
    };
    RunResult faulted = runExperiment(trace->cfg, *design,
                                      trace::makeReplayFactory(trace),
                                      faultHooks);

    bool bitexact = faultedHash == cleanHash;
    bool exercised = failed && faulted.stats.degradedReads > 0 &&
        faulted.stats.rebuildLines > 0;
    bool pass =
        bitexact && exercised && scrubBad == 0 && parityBad == 0;

    Json json;
    json.open('{');
    json.field("tool", "tvarak-fault");
    json.field("mode", "replay");
    json.field("seed", seed);
    json.field("design", design->displayName());
    json.field("workload", trace->workloadName);
    json.field("trace_events", trace->eventCount);
    json.field("passes", static_cast<std::uint64_t>(passes));
    json.field("fail_pass", static_cast<std::uint64_t>(failPass));
    json.field("replace_pass",
               static_cast<std::uint64_t>(replacePass));
    json.field("failed_dimm", static_cast<std::uint64_t>(dimm));
    appendCounters(json, faulted.stats);
    json.openField("final", '{');
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(cleanHash));
    json.field("clean_image", std::string(hex));
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(faultedHash));
    json.field("faulted_image", std::string(hex));
    json.field("image_bitexact", bitexact);
    json.field("scrub_bad", scrubBad);
    json.field("parity_bad", parityBad);
    json.close('}');
    json.field("verdict", pass ? "PASS" : "FAIL");
    json.close('}');
    (void)clean;

    std::string out =
        a.flags.count("--out") != 0 ? a.flags.at("--out") : "";
    return emit(json, out, pass);
}

// ------------------------------------------------------------------
// Multi-DIMM failure schedules: lose up to two devices, the second
// one arriving while the first is still rebuilding, and judge the
// outcome against a never-failed twin running the identical op
// sequence.
//
// Two shapes, selected by the flags:
//
//  - two distinct DIMMs (--fail-dimms i,j): fail i, replace it, then
//    fail j mid-rebuild. Two devices are concurrently dead, so only a
//    design with survivableFailures() >= 2 (the RS n+2 geometries)
//    passes with zero data loss and a bit-exact rebuilt image. A
//    single-parity design is the pinned *negative control*: the loss
//    must be detected (poison + detection counters), never silent.
//  - re-fail (--fail-dimms i --refail): the second fault hits the
//    DIMM that is itself rebuilding. Only one device is ever dead at
//    once, so even single-parity survives — but the rebuild must
//    start over (rebuildRestarts), never serve the stale partial
//    sweep.
// ------------------------------------------------------------------

class MultiCampaign
{
  public:
    MultiCampaign(const Design &design, std::uint64_t seed,
                  std::size_t ops, std::size_t keys,
                  std::vector<std::size_t> failDimms, bool refail)
        : design_(&design), seed_(seed), ops_(ops), keys_(keys),
          failDimms_(std::move(failDimms)), refail_(refail)
    {
        sched_.fail1 = std::max<std::size_t>(ops_ / 6, 4);
        sched_.replace1 =
            sched_.fail1 + std::max<std::size_t>(ops_ / 6, 8);
        sched_.fail2 =
            sched_.replace1 + std::max<std::size_t>(ops_ / 48, 2);
        sched_.replace2 =
            sched_.fail2 + std::max<std::size_t>(ops_ / 48, 2);
        panic_if(sched_.replace2 >= ops_,
                 "multi schedule does not fit in %zu ops", ops_);
        std::size_t maxDead = refail_ ? 1 : 2;
        survivable_ = maxDead <= design.survivableFailures();
        Rng rng(seed_);
        seq_.resize(ops_);
        for (OpSpec &op : seq_) {
            op.updateKey = rng.below(keys_);
            op.probeKey = rng.below(keys_);
        }
    }

    bool run();
    void report(Json &json) const;

  private:
    static constexpr std::size_t kValueBytes = 48;
    static_assert(kValueBytes % 8 == 0, "probeAddr reads 64-bit words");
    /** Online rebuild budget per op, deliberately slower than map
     *  mode's: the campaign's hot pages sit at the start of the data
     *  region, just past each DIMM's metadata share, and the second
     *  fault must land while they are still above the first sweep's
     *  watermark — otherwise the double-degraded window never sees a
     *  demand read of a degraded line and proves nothing. */
    static constexpr std::size_t kRebuildLinesPerOp = 2048;

    struct OpSpec {
        std::uint64_t updateKey;
        std::uint64_t probeKey;
    };
    struct Schedule {
        std::size_t fail1, replace1, fail2, replace2;
    };
    /** One complete simulated machine; the clean and the faulted twin
     *  each get a fresh one, built identically. */
    struct Machine {
        MemorySystem mem;
        DaxFs fs;
        std::unique_ptr<RedundancyScheme> scheme;
        PmemPool pool;
        std::unique_ptr<PmemMap> map;

        explicit Machine(const Design &design)
            : mem(campaignConfig(), design), fs(mem),
              scheme(design.makeScheme(mem)),
              pool(mem, fs, "p", 4ull << 20, scheme.get(), 1),
              map(makeMap(MapKind::CTree, mem, pool, kValueBytes))
        {}

        void
        drain()
        {
            if (scheme != nullptr)
                scheme->drain(0);
        }
    };

    /** Probe outcome, worst first. */
    enum class Probe { Correct, Recovered, DetectedLoss, Silent };

    void
    valueFor(std::uint64_t key, std::uint64_t version,
             std::uint8_t *out) const
    {
        for (std::size_t i = 0; i < kValueBytes; i++) {
            out[i] = static_cast<std::uint8_t>(key * 131 +
                                               version * 17 + seed_ + i);
        }
    }

    Probe
    classify(Machine &m, bool correct, std::uint64_t detectedBefore)
    {
        bool det = m.mem.stats().corruptionsDetected > detectedBefore;
        if (correct)
            return det ? Probe::Recovered : Probe::Correct;
        return det ? Probe::DetectedLoss : Probe::Silent;
    }

    /** Oracle-checked read through the map (tree traversal); only
     *  safe while reconstruction stays within the parity budget. */
    Probe
    probeMap(Machine &m, const std::vector<std::uint64_t> &ver,
             std::uint64_t key)
    {
        std::uint8_t expect[kValueBytes];
        std::uint8_t got[kValueBytes] = {};
        valueFor(key, ver[key], expect);
        std::uint64_t before = m.mem.stats().corruptionsDetected;
        bool found = m.map->get(0, key, got);
        return classify(
            m, found && std::memcmp(expect, got, kValueBytes) == 0,
            before);
    }

    /** Oracle-checked read at a pre-recorded value address. Used once
     *  the redundancy budget is exceeded: the tree structure itself
     *  may be unreconstructable, so no traversal. */
    Probe
    probeAddr(Machine &m, const std::vector<std::uint64_t> &ver,
              std::uint64_t key, Addr vaddr)
    {
        std::uint8_t expect[kValueBytes];
        std::uint8_t got[kValueBytes];
        valueFor(key, ver[key], expect);
        std::uint64_t before = m.mem.stats().corruptionsDetected;
        for (std::size_t i = 0; i < kValueBytes; i += 8) {
            std::uint64_t w = m.mem.read64(0, vaddr + i);
            std::memcpy(got + i, &w, 8);
        }
        return classify(
            m, std::memcmp(expect, got, kValueBytes) == 0, before);
    }

    void
    tally(Probe p, bool cleanTwin)
    {
        if (cleanTwin) {
            cleanWrong_ += p == Probe::Correct ? 0 : 1;
            return;
        }
        switch (p) {
          case Probe::Correct:      readsCorrect_++; break;
          case Probe::Recovered:    readsRecovered_++; break;
          case Probe::DetectedLoss: detectedLoss_++; break;
          case Probe::Silent:       silentWrong_++; break;
        }
    }

    void
    setup(Machine &m)
    {
        std::uint8_t value[kValueBytes];
        for (std::uint64_t k = 0; k < keys_; k++) {
            valueFor(k, 0, value);
            m.map->insert(0, k, value);
        }
        m.mem.flushAll();
    }

    void
    applyOp(Machine &m, std::vector<std::uint64_t> &ver,
            const OpSpec &op, bool cleanTwin)
    {
        std::uint8_t value[kValueBytes];
        ver[op.updateKey]++;
        valueFor(op.updateKey, ver[op.updateKey], value);
        panic_if(!m.map->update(0, op.updateKey, value),
                 "campaign key vanished");
        tally(probeMap(m, ver, op.probeKey), cleanTwin);
    }

    /** Quiesce, then lose a device: acked writes must be at rest (or
     *  cache-hot) first, and the cold caches force every later read
     *  of the dead DIMM through reconstruction. */
    void
    failEvent(Machine &m, std::size_t dimm)
    {
        m.drain();
        m.mem.flushAll();
        m.mem.failDimm(dimm);
        m.mem.dropCaches();
    }

    /** Over-budget endgame (the negative control): record every
     *  value's address while reconstruction still works, lose the
     *  second device, then read each key cold and directly. Every
     *  unreconstructable value must come back *detected* — poison
     *  plus a detection count — never as plausible stale bytes. No
     *  rebuild afterwards: rebuilding from insufficient survivors
     *  would launder garbage into freshly checksummed lines. */
    void
    overBudgetProbes(Machine &m, const std::vector<std::uint64_t> &ver)
    {
        std::vector<Addr> addr(keys_);
        for (std::uint64_t k = 0; k < keys_; k++) {
            addr[k] = m.map->valueAddr(0, k);
            panic_if(addr[k] == 0, "campaign key %llu has no value",
                     static_cast<unsigned long long>(k));
        }
        failEvent(m, failDimms_[1]);
        for (std::uint64_t k = 0; k < keys_; k++) {
            // Cold caches per key: an earlier probe's poisoned fill
            // must not be served back as a plain cache hit, which
            // would read as wrong-without-detection for a neighbour
            // sharing the line.
            m.mem.dropCaches();
            tally(probeAddr(m, ver, k, addr[k]), false);
        }
    }

    void runFaulted();
    void runClean();

    const Design *design_;
    std::uint64_t seed_;
    std::size_t ops_;
    std::size_t keys_;
    std::vector<std::size_t> failDimms_;
    bool refail_;
    Schedule sched_{};
    bool survivable_ = false;
    std::vector<OpSpec> seq_;
    std::unique_ptr<RebuildEngine> rebuild_;

    // Outcomes.
    std::uint64_t readsCorrect_ = 0;
    std::uint64_t readsRecovered_ = 0;
    std::uint64_t detectedLoss_ = 0;
    std::uint64_t silentWrong_ = 0;
    std::uint64_t cleanWrong_ = 0;
    bool fail2MidRebuild_ = false;
    bool shadowVerified_ = false;
    std::uint64_t scrubBad_ = 0;
    std::uint64_t parityBad_ = 0;
    std::uint64_t cleanHash_ = 0;
    std::uint64_t faultedHash_ = 0;
    bool bitexact_ = false;
    Stats stats_{0, 0};  //!< final faulted-twin counters
    bool pass_ = false;
};

void
MultiCampaign::runFaulted()
{
    Machine m(*design_);
    setup(m);
    std::vector<std::uint64_t> ver(keys_, 0);
    std::size_t d1 = failDimms_[0];
    std::size_t second = refail_ ? d1 : failDimms_[1];
    for (std::size_t op = 0; op < ops_; op++) {
        if (op == sched_.fail1)
            failEvent(m, d1);
        if (op == sched_.replace1) {
            m.mem.replaceDimm(d1);
            rebuild_ = std::make_unique<RebuildEngine>(m.mem, &m.fs);
        }
        if (op == sched_.fail2) {
            // The second fault must genuinely interrupt the sweep.
            fail2MidRebuild_ = m.mem.nvmArray().dimmState(d1) ==
                NvmArray::DimmState::Rebuilding;
            if (!survivable_) {
                overBudgetProbes(m, ver);
                stats_ = m.mem.stats();
                return;
            }
            failEvent(m, second);
        }
        if (op == sched_.replace2)
            m.mem.replaceDimm(second);
        if (rebuild_ != nullptr) {
            // Step even when the sweep list drained: resync() adopts
            // DIMMs replaced after the last step (the re-replaced
            // device in --refail mode). Batched schemes must catch up
            // first or the rebuilder reads parity that does not yet
            // cover the epoch's acknowledged writebacks.
            m.drain();
            rebuild_->step(kRebuildLinesPerOp);
        }
        applyOp(m, ver, seq_[op], false);
    }
    while (m.mem.nvmArray().anyDegraded()) {
        m.drain();
        rebuild_->step(~std::size_t{0});
    }
    m.drain();
    m.mem.flushAll();
    scrubBad_ = m.fs.scrub(false);
    parityBad_ = m.fs.verifyParity();
    faultedHash_ = imageHash(m.mem.nvmArray());
    // The oracle's last word: every key, read cold from the rebuilt
    // at-rest media, returns exactly its acknowledged bytes.
    m.mem.dropCaches();
    shadowVerified_ = true;
    for (std::uint64_t k = 0; k < keys_; k++) {
        Probe p = probeMap(m, ver, k);
        tally(p, false);
        shadowVerified_ = shadowVerified_ &&
            (p == Probe::Correct || p == Probe::Recovered);
    }
    stats_ = m.mem.stats();
}

void
MultiCampaign::runClean()
{
    Machine m(*design_);
    setup(m);
    std::vector<std::uint64_t> ver(keys_, 0);
    for (std::size_t op = 0; op < ops_; op++)
        applyOp(m, ver, seq_[op], true);
    m.drain();
    m.mem.flushAll();
    cleanHash_ = imageHash(m.mem.nvmArray());
}

bool
MultiCampaign::run()
{
    runFaulted();
    if (survivable_) {
        runClean();
        bitexact_ = faultedHash_ == cleanHash_;
        pass_ = silentWrong_ == 0 && detectedLoss_ == 0 &&
            cleanWrong_ == 0 && shadowVerified_ && scrubBad_ == 0 &&
            parityBad_ == 0 && bitexact_ && fail2MidRebuild_ &&
            stats_.degradedReads > 0 && stats_.rebuildLines > 0 &&
            (refail_ ? stats_.rebuildRestarts > 0
                     : stats_.degradedReadsMulti > 0);
    } else {
        // Negative control: loss is expected — but *detected* loss.
        pass_ = silentWrong_ == 0 && detectedLoss_ > 0 &&
            fail2MidRebuild_ && stats_.degradedReads > 0;
    }
    return pass_;
}

void
MultiCampaign::report(Json &json) const
{
    json.open('{');
    json.field("tool", "tvarak-fault");
    json.field("mode", "multi");
    json.field("seed", seed_);
    json.field("design", design_->displayName());
    json.field("ops", static_cast<std::uint64_t>(ops_));
    json.field("keys", static_cast<std::uint64_t>(keys_));
    json.field("refail", refail_);
    json.openField("fail_dimms", '[');
    for (std::size_t d : failDimms_) {
        json.item();
        json.value(static_cast<std::uint64_t>(d));
    }
    json.close(']');
    json.openField("schedule", '{');
    json.field("fail1_op", static_cast<std::uint64_t>(sched_.fail1));
    json.field("replace1_op",
               static_cast<std::uint64_t>(sched_.replace1));
    json.field("fail2_op", static_cast<std::uint64_t>(sched_.fail2));
    json.field("replace2_op",
               static_cast<std::uint64_t>(sched_.replace2));
    json.close('}');
    json.field("survivable_failures", static_cast<std::uint64_t>(
                                          design_->survivableFailures()));
    json.field("survivable", survivable_);
    json.field("fail2_mid_rebuild", fail2MidRebuild_);
    json.openField("reads", '{');
    json.field("correct", readsCorrect_);
    json.field("detected_and_recovered", readsRecovered_);
    json.field("detected_loss", detectedLoss_);
    json.field("silent_wrong", silentWrong_);
    json.field("clean_twin_wrong", cleanWrong_);
    json.close('}');
    appendCounters(json, stats_);
    json.openField("final", '{');
    json.field("shadow_verified", shadowVerified_);
    json.field("sweep_bad", scrubBad_);
    json.field("parity_bad", parityBad_);
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(cleanHash_));
    json.field("clean_image", std::string(hex));
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(faultedHash_));
    json.field("faulted_image", std::string(hex));
    json.field("image_compared", survivable_);
    json.field("image_bitexact", bitexact_);
    json.close('}');
    json.field("verdict", pass_ ? "PASS" : "FAIL");
    json.close('}');
}

/** Parse and validate --fail-dimms against the machine the design
 *  actually pins (exit 2 on any bad input — bad indices must never
 *  reach MemorySystem as an assertion). */
std::vector<std::size_t>
parseFailDimms(const std::string &spec, bool refail,
               std::size_t dimmCount, const char *designName)
{
    std::vector<std::size_t> out;
    std::string cur;
    std::string padded = spec + ",";
    for (char c : padded) {
        if (c != ',') {
            cur += c;
            continue;
        }
        if (cur.empty()) {
            std::fprintf(stderr,
                         "tvarak-fault: --fail-dimms wants a "
                         "comma-separated index list, got '%s'\n",
                         spec.c_str());
            std::exit(2);
        }
        char *end = nullptr;
        unsigned long long v = std::strtoull(cur.c_str(), &end, 10);
        if (end == nullptr || *end != '\0') {
            std::fprintf(stderr,
                         "tvarak-fault: bad --fail-dimms index '%s'\n",
                         cur.c_str());
            std::exit(2);
        }
        out.push_back(static_cast<std::size_t>(v));
        cur.clear();
    }
    std::size_t want = refail ? 1 : 2;
    if (out.size() != want) {
        std::fprintf(stderr,
                     "tvarak-fault: --fail-dimms wants %zu %s, got "
                     "%zu (use --refail to re-fail the one "
                     "rebuilding DIMM)\n",
                     want, refail ? "index" : "distinct indices",
                     out.size());
        std::exit(2);
    }
    for (std::size_t d : out) {
        if (d >= dimmCount) {
            std::fprintf(stderr,
                         "tvarak-fault: --fail-dimms index %zu out of "
                         "range: design %s has %zu DIMMs\n",
                         d, designName, dimmCount);
            std::exit(2);
        }
    }
    if (!refail && out[0] == out[1]) {
        std::fprintf(stderr,
                     "tvarak-fault: --fail-dimms indices must be "
                     "distinct (got %zu,%zu); use --refail to re-fail "
                     "the rebuilding DIMM itself\n",
                     out[0], out[1]);
        std::exit(2);
    }
    return out;
}

int
cmdMulti(const std::vector<std::string> &raw)
{
    Args a;
    if (!parseArgs(raw,
                   {"--seed", "--design", "--ops", "--keys",
                    "--fail-dimms", "--out"},
                   {"--refail"}, a) ||
        !a.positional.empty() || a.flags.count("--seed") == 0) {
        return usage();
    }
    std::uint64_t seed = parseU64(a.flags.at("--seed"), true);
    const Design &design = a.flags.count("--design") != 0
        ? parseDesign(a.flags.at("--design"))
        : designOf(DesignKind::Tvarak);
    if (!(design.absorbsWritesWhileDegraded() &&
          design.maintainsMappedParity())) {
        std::fprintf(
            stderr,
            "tvarak-fault: multi-DIMM schedules need a design that "
            "maintains mapped-data parity AND absorbs writes while "
            "degraded (the Tvarak family); the TxB schemes and Vilamb "
            "recompute over the stripe, which is unsafe mid-schedule\n");
        return 2;
    }
    auto flagOr = [&](const char *key, std::uint64_t dflt) {
        return a.flags.count(key) != 0 ? parseU64(a.flags.at(key), false)
                                       : dflt;
    };
    std::size_t ops = static_cast<std::size_t>(flagOr("--ops", 240));
    std::size_t keys = static_cast<std::size_t>(flagOr("--keys", 96));
    fatal_if(ops < 48, "--ops must be at least 48");
    bool refail = a.flags.count("--refail") != 0;

    // The DIMM count the schedule runs against is whatever geometry
    // the design pins, not the campaign default.
    SimConfig cfg = campaignConfig();
    design.adjustConfig(cfg);
    std::vector<std::size_t> failDimms = parseFailDimms(
        a.flags.count("--fail-dimms") != 0 ? a.flags.at("--fail-dimms")
        : refail                           ? std::string("0")
                                           : std::string("0,1"),
        refail, cfg.nvm.dimms, design.displayName());

    inform("multi campaign: %s, seed %llu, %zu ops, %s dimm %zu%s",
           design.displayName(), static_cast<unsigned long long>(seed),
           ops, refail ? "re-fail of rebuilding" : "fail of",
           failDimms[0],
           refail ? ""
                  : (" then dimm " + std::to_string(failDimms[1]))
                        .c_str());
    MultiCampaign campaign(design, seed, ops, keys,
                           std::move(failDimms), refail);
    bool pass = campaign.run();
    Json json;
    campaign.report(json);
    std::string out =
        a.flags.count("--out") != 0 ? a.flags.at("--out") : "";
    return emit(json, out, pass);
}

}  // namespace
}  // namespace tvarak::faultcli

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        return tvarak::faultcli::usage();
    std::string cmd = args[0];
    args.erase(args.begin());
    if (cmd == "map")
        return tvarak::faultcli::cmdMap(args);
    if (cmd == "multi")
        return tvarak::faultcli::cmdMulti(args);
    if (cmd == "replay")
        return tvarak::faultcli::cmdReplay(args);
    return tvarak::faultcli::usage();
}
