/**
 * @file
 * tvarak-trace: record, inspect and replay access traces.
 *
 *   tvarak-trace record <stream|ctree> <out.trace> [--scale N]
 *                                                  [--design <d>]
 *   tvarak-trace info   <file.trace>
 *   tvarak-trace stat   <file.trace>
 *   tvarak-trace replay <file.trace> --design <d> [--verify]
 *
 * `record` runs a canned workload (stream = STREAM triad over
 * persistent arrays, ctree = C-Tree insert-only over pmemlib) with the
 * recorder attached and writes the trace. The canned identity and
 * scale are embedded in the trace's workload name ("stream@2"), which
 * is how `replay --verify` reconstructs the matching direct run and
 * asserts the replayed Stats are bit-identical.
 *
 * `stat` decodes the record stream and reports per-thread footprints,
 * the read/write mix, and a line-reuse histogram — the trace-level
 * quantities that explain per-design replay behavior (reuse hits in
 * cache; unique lines pay NVM and redundancy costs).
 */

#include <cstdlib>
#include <cstring>
#include <string>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "apps/stream/stream.hh"
#include "apps/trees/tree_workload.hh"
#include "redundancy/registry.hh"
#include "redundancy/scheme.hh"
#include "sim/log.hh"
#include "trace/trace.hh"

namespace tvarak::tracecli {
namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  tvarak-trace record <stream|ctree> <out.trace>"
        " [--scale N] [--design <d>]\n"
        "  tvarak-trace info   <file.trace>\n"
        "  tvarak-trace stat   <file.trace>\n"
        "  tvarak-trace replay <file.trace> --design <d> [--verify]\n"
        "designs: %s\n",
        registeredNameList().c_str());
    return 2;
}

/** Parsed command line: positionals plus --key[=| ]value flags. */
struct Args {
    std::vector<std::string> positional;
    std::unordered_map<std::string, std::string> flags;
    std::unordered_set<std::string> switches;
};

bool
parseArgs(const std::vector<std::string> &raw,
          const std::vector<std::string> &valueFlags,
          const std::vector<std::string> &switchFlags, Args &out)
{
    auto isValueFlag = [&](const std::string &k) {
        for (const auto &f : valueFlags)
            if (f == k)
                return true;
        return false;
    };
    auto isSwitch = [&](const std::string &k) {
        for (const auto &f : switchFlags)
            if (f == k)
                return true;
        return false;
    };
    for (std::size_t i = 0; i < raw.size(); i++) {
        const std::string &a = raw[i];
        if (a.rfind("--", 0) != 0) {
            out.positional.push_back(a);
            continue;
        }
        std::string key = a;
        std::string val;
        bool hasVal = false;
        if (auto eq = a.find('='); eq != std::string::npos) {
            key = a.substr(0, eq);
            val = a.substr(eq + 1);
            hasVal = true;
        }
        if (isSwitch(key)) {
            if (hasVal)
                return false;
            out.switches.insert(key);
            continue;
        }
        if (!isValueFlag(key))
            return false;
        if (!hasVal) {
            if (i + 1 >= raw.size())
                return false;
            val = raw[++i];
        }
        out.flags[key] = val;
    }
    return true;
}

std::size_t
parseCount(const std::string &s)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    fatal_if(s.empty() || end == nullptr || *end != '\0' || v == 0,
             "bad count '%s'", s.c_str());
    return static_cast<std::size_t>(v);
}

const Design &
parseDesign(const std::string &s)
{
    const Design *d = findDesign(s);
    if (d == nullptr) {
        std::fprintf(stderr,
                     "tvarak-trace: unknown design '%s' "
                     "(registered: %s)\n",
                     s.c_str(), registeredNameList().c_str());
        std::exit(2);
    }
    return *d;
}

/** The canned machine: Table III, NVM sized for the canned workloads. */
SimConfig
cannedConfig()
{
    SimConfig cfg;
    cfg.nvm.dimmBytes = 96ull << 20;
    return cfg;
}

/** Canned workload factory; @p id is "stream" or "ctree". */
WorkloadFactory
cannedFactory(const std::string &id, std::size_t scale)
{
    if (id == "stream") {
        return [scale](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
            auto scheme = mem.designObj().makeScheme(mem);
            WorkloadSet set;
            StreamWorkload::Params p;
            p.kernel = StreamWorkload::Kernel::Triad;
            p.chunkBytes = 256 * 1024 * scale;
            for (int t = 0; t < 12; t++) {
                set.workloads.push_back(
                    std::make_unique<StreamWorkload>(mem, fs, t,
                                                     scheme.get(), p));
            }
            set.shared = std::shared_ptr<void>(
                scheme.release(), [](void *q) {
                    delete static_cast<RedundancyScheme *>(q);
                });
            set.beforeMeasure = [](MemorySystem &m) { m.dropCaches(); };
            return set;
        };
    }
    if (id == "ctree") {
        return [scale](MemorySystem &mem, DaxFs &fs) -> WorkloadSet {
            auto scheme = mem.designObj().makeScheme(mem);
            WorkloadSet set;
            TreeWorkload::Params p;
            p.kind = MapKind::CTree;
            p.mix = TreeWorkload::Mix::InsertOnly;
            p.preload = 4096;
            p.ops = 4096 * scale;
            for (int t = 0; t < 12; t++) {
                set.workloads.push_back(
                    std::make_unique<TreeWorkload>(mem, fs, t,
                                                   scheme.get(), p));
            }
            set.shared = std::shared_ptr<void>(
                scheme.release(), [](void *q) {
                    delete static_cast<RedundancyScheme *>(q);
                });
            return set;
        };
    }
    fatal("unknown canned workload '%s' (want stream or ctree)",
          id.c_str());
}

/** Split a canned workload name, e.g. "stream@2" -> ("stream", 2). */
bool
splitCannedName(const std::string &name, std::string &id,
                std::size_t &scale)
{
    auto at = name.find('@');
    if (at == std::string::npos)
        return false;
    id = name.substr(0, at);
    scale = parseCount(name.substr(at + 1));
    return id == "stream" || id == "ctree";
}

/** Load @p path or exit with the usage status: a truncated, corrupt
 *  or otherwise unusable trace is a command-line input error (load
 *  already printed the specific diagnostic), not a simulator fault. */
std::shared_ptr<trace::TraceData>
loadOrDie(const std::string &path)
{
    auto t = trace::TraceData::load(path);
    if (t == nullptr) {
        std::fprintf(stderr, "tvarak-trace: cannot load trace %s\n",
                     path.c_str());
        std::exit(2);
    }
    return t;
}

void
printRunResult(const RunResult &r)
{
    std::printf("  design           %s\n", designName(r.design));
    std::printf("  runtime          %llu cycles (%.3f ms)\n",
                static_cast<unsigned long long>(r.runtimeCycles),
                r.runtimeMs);
    std::printf("  energy           %.3f mJ\n", r.energyMj);
    std::printf("  nvm accesses     %llu data + %llu redundancy\n",
                static_cast<unsigned long long>(r.nvmDataAccesses),
                static_cast<unsigned long long>(r.nvmRedAccesses));
    std::printf("  cache accesses   %llu\n",
                static_cast<unsigned long long>(r.cacheAccesses));
}

int
cmdRecord(const std::vector<std::string> &raw)
{
    Args a;
    if (!parseArgs(raw, {"--scale", "--design"}, {}, a) ||
        a.positional.size() != 2) {
        return usage();
    }
    const std::string &id = a.positional[0];
    const std::string &out = a.positional[1];
    std::size_t scale = a.flags.count("--scale") != 0
        ? parseCount(a.flags.at("--scale"))
        : 1;
    const Design &design = a.flags.count("--design") != 0
        ? parseDesign(a.flags.at("--design"))
        : *findDesign("baseline");

    std::string name = id + "@" + std::to_string(scale);
    inform("recording %s under %s ...", name.c_str(),
           design.displayName());
    trace::RecordResult rec = trace::recordExperiment(
        cannedConfig(), design, cannedFactory(id, scale), name);
    fatal_if(!rec.trace->save(out), "cannot write %s", out.c_str());
    std::printf("recorded %s: %llu events, %zu record bytes, "
                "%u threads\n",
                out.c_str(),
                static_cast<unsigned long long>(rec.trace->eventCount),
                rec.trace->records.size(), rec.trace->threads);
    printRunResult(rec.result);
    return 0;
}

int
cmdInfo(const std::vector<std::string> &raw)
{
    Args a;
    if (!parseArgs(raw, {}, {}, a) || a.positional.size() != 1)
        return usage();
    auto t = loadOrDie(a.positional[0]);
    std::printf("trace            %s\n", a.positional[0].c_str());
    std::printf("format version   %u\n", t->version);
    std::printf("recorded design  %s\n", designName(t->recordedDesign));
    std::printf("config fp        %016llx\n",
                static_cast<unsigned long long>(t->configFingerprint));
    std::printf("workload         %s\n", t->workloadName.c_str());
    std::printf("threads          %u\n", t->threads);
    std::printf("events           %llu\n",
                static_cast<unsigned long long>(t->eventCount));
    std::printf("record bytes     %zu (%.2f B/event)\n",
                t->records.size(),
                t->eventCount == 0
                    ? 0.0
                    : static_cast<double>(t->records.size()) /
                        static_cast<double>(t->eventCount));
    std::printf("machine          %zu cores, %zu x %zu MB NVM DIMMs\n",
                t->cfg.cores, t->cfg.nvm.dimms,
                t->cfg.nvm.dimmBytes >> 20);
    return 0;
}

int
cmdStat(const std::vector<std::string> &raw)
{
    Args a;
    if (!parseArgs(raw, {}, {}, a) || a.positional.size() != 1)
        return usage();
    auto t = loadOrDie(a.positional[0]);

    struct PerThread {
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        std::uint64_t readBytes = 0;
        std::uint64_t writeBytes = 0;
        std::unordered_set<std::uint64_t> lines;
    };
    std::vector<PerThread> threads(t->threads);
    // Ordered map: the reuse histogram below iterates it, and stat
    // output must not depend on hash iteration order (lint R10).
    std::map<std::uint64_t, std::uint64_t> lineAccesses;

    trace::TraceCursor cursor(*t);
    trace::TraceEvent e;
    while (cursor.next(e)) {
        if (e.op != trace::Op::Read && e.op != trace::Op::Write)
            continue;
        auto idx = static_cast<std::size_t>(e.tid);
        if (idx >= threads.size())
            threads.resize(idx + 1);
        PerThread &pt = threads[idx];
        if (e.op == trace::Op::Read) {
            pt.reads++;
            pt.readBytes += e.len;
        } else {
            pt.writes++;
            pt.writeBytes += e.len;
        }
        std::uint64_t first = lineNumber(e.vaddr);
        std::uint64_t last = lineNumber(e.vaddr + e.len - 1);
        for (std::uint64_t ln = first; ln <= last; ln++) {
            pt.lines.insert(ln);
            lineAccesses[ln]++;
        }
    }

    std::printf("%-6s %12s %12s %14s %14s %12s\n", "tid", "reads",
                "writes", "read-bytes", "write-bytes", "footprint");
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    for (std::size_t i = 0; i < threads.size(); i++) {
        const PerThread &pt = threads[i];
        if (pt.reads == 0 && pt.writes == 0)
            continue;
        std::printf("%-6zu %12llu %12llu %14llu %14llu %9zu KiB\n", i,
                    static_cast<unsigned long long>(pt.reads),
                    static_cast<unsigned long long>(pt.writes),
                    static_cast<unsigned long long>(pt.readBytes),
                    static_cast<unsigned long long>(pt.writeBytes),
                    pt.lines.size() * kLineBytes / 1024);
        reads += pt.reads;
        writes += pt.writes;
    }
    double total = static_cast<double>(reads + writes);
    std::printf("mix: %llu reads / %llu writes (%.1f%% reads)\n",
                static_cast<unsigned long long>(reads),
                static_cast<unsigned long long>(writes),
                total == 0 ? 0.0
                           : 100.0 * static_cast<double>(reads) / total);

    // Line-reuse histogram: how often is the same 64 B line touched?
    // log2 buckets; bucket 0 = touched once (streaming), high buckets
    // = hot lines that replay from cache under every design.
    std::vector<std::uint64_t> histogram;
    for (const auto &[ln, count] : lineAccesses) {
        (void)ln;
        std::size_t bucket = 0;
        for (std::uint64_t c = count; c > 1; c >>= 1)
            bucket++;
        if (bucket >= histogram.size())
            histogram.resize(bucket + 1, 0);
        histogram[bucket]++;
    }
    std::printf("line reuse (distinct lines: %zu)\n",
                lineAccesses.size());
    for (std::size_t b = 0; b < histogram.size(); b++) {
        if (histogram[b] == 0)
            continue;
        std::uint64_t lo = std::uint64_t{1} << b;
        std::uint64_t hi = (std::uint64_t{1} << (b + 1)) - 1;
        std::printf("  %6llu-%-6llu accesses: %10llu lines\n",
                    static_cast<unsigned long long>(lo),
                    static_cast<unsigned long long>(hi),
                    static_cast<unsigned long long>(histogram[b]));
    }
    return 0;
}

int
cmdReplay(const std::vector<std::string> &raw)
{
    Args a;
    if (!parseArgs(raw, {"--design"}, {"--verify"}, a) ||
        a.positional.size() != 1 || a.flags.count("--design") == 0) {
        return usage();
    }
    auto t = loadOrDie(a.positional[0]);
    const Design &design = parseDesign(a.flags.at("--design"));

    inform("replaying %s (%llu events) under %s ...",
           t->workloadName.c_str(),
           static_cast<unsigned long long>(t->eventCount),
           design.displayName());
    RunResult replayed = trace::replayExperiment(t, design);
    printRunResult(replayed);

    if (a.switches.count("--verify") == 0)
        return 0;
    std::string id;
    std::size_t scale = 1;
    fatal_if(!splitCannedName(t->workloadName, id, scale),
             "--verify needs a canned workload trace, not '%s'",
             t->workloadName.c_str());
    inform("verifying against direct execution ...");
    RunResult direct =
        runExperiment(t->cfg, design, cannedFactory(id, scale));
    std::string diff = statsDiff(direct.stats, replayed.stats);
    if (!diff.empty()) {
        std::fprintf(stderr, "VERIFY FAILED: %s\n", diff.c_str());
        return 1;
    }
    std::printf("verify: replayed Stats bit-identical to direct "
                "execution\n");
    return 0;
}

}  // namespace
}  // namespace tvarak::tracecli

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty())
        return tvarak::tracecli::usage();
    std::string cmd = args[0];
    args.erase(args.begin());
    if (cmd == "record")
        return tvarak::tracecli::cmdRecord(args);
    if (cmd == "info")
        return tvarak::tracecli::cmdInfo(args);
    if (cmd == "stat")
        return tvarak::tracecli::cmdStat(args);
    if (cmd == "replay")
        return tvarak::tracecli::cmdReplay(args);
    return tvarak::tracecli::usage();
}
