/**
 * @file
 * Shared token view over a blanked code line. The lexer (lint.cc)
 * owns the implementation; the per-file rules and the repo-model
 * rules (rules_model.cc) both consume it.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tvarak::lint {

/** One lexical token of a blanked code line. */
struct Tok {
    enum Kind { Ident, Number, Punct };
    Kind kind;
    std::string text;
    std::size_t line;  //!< 1-based
    std::size_t col;   //!< 0-based start column
};

/** Tokenize one code line (comments/literals already blanked). */
void tokenizeLine(const std::string &code, std::size_t lineNo,
                  std::vector<Tok> &out);

/** Tokenize every code line of a pre-lexed file. */
std::vector<Tok> tokenizeFile(const std::vector<std::string> &code);

/** Numeric value of a number token (integers only; 0 for floats). */
std::uint64_t numberValue(const std::string &text);

/** Is @p text a floating-point literal (1.5, 1e9 — not hex)? */
bool isFloatLiteral(const std::string &text);

}  // namespace tvarak::lint
