/**
 * @file
 * tvarak-lint CLI.
 *
 *   tvarak-lint [--root DIR] [paths...]
 *       Scan DIR (default: cwd) — paths are root-relative directories
 *       or files, default {src, tests, bench}. Prints one
 *       `file:line: [R#] message` per finding; exit 1 iff any.
 *
 *   tvarak-lint --self-test DIR
 *       DIR must hold `goodroot/` (expected clean) and `badroot/`
 *       (expected to trip every rule R1..R8). Exit 0 iff both hold.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "lint.hh"

namespace fs = std::filesystem;
using namespace tvarak::lint;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: tvarak-lint [--root DIR] [paths...]\n"
                 "       tvarak-lint --self-test FIXTURE_DIR\n");
    return 2;
}

int
selfTest(const fs::path &dir)
{
    if (!fs::is_directory(dir / "goodroot") ||
        !fs::is_directory(dir / "badroot")) {
        std::fprintf(stderr,
                     "self-test: %s must contain goodroot/ and badroot/\n",
                     dir.string().c_str());
        return 2;
    }

    int failures = 0;

    Options good{dir / "goodroot", {}};
    for (const Finding &f : run(good)) {
        std::fprintf(stderr, "self-test: goodroot not clean: %s\n",
                     f.str().c_str());
        failures++;
    }

    Options bad{dir / "badroot", {}};
    std::set<std::string> hit;
    for (const Finding &f : run(bad))
        hit.insert(f.rule);
    for (const char *rule :
         {"R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"}) {
        if (!hit.count(rule)) {
            std::fprintf(stderr,
                         "self-test: badroot did not trip %s\n", rule);
            failures++;
        }
    }

    if (failures == 0) {
        std::printf("tvarak-lint self-test: OK "
                    "(goodroot clean, badroot trips R1..R8)\n");
        return 0;
    }
    return 1;
}

}  // namespace

int
main(int argc, char **argv)
{
    Options opts;
    opts.root = fs::current_path();

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--root") {
            if (++i >= argc)
                return usage();
            opts.root = argv[i];
        } else if (arg == "--self-test") {
            if (++i >= argc)
                return usage();
            return selfTest(argv[i]);
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else if (arg.rfind("-", 0) == 0) {
            return usage();
        } else {
            opts.paths.push_back(arg);
        }
    }

    if (!fs::is_directory(opts.root)) {
        std::fprintf(stderr, "tvarak-lint: no such directory: %s\n",
                     opts.root.string().c_str());
        return 2;
    }

    std::vector<Finding> findings = run(opts);
    for (const Finding &f : findings)
        std::printf("%s\n", f.str().c_str());
    if (!findings.empty()) {
        std::fprintf(stderr, "tvarak-lint: %zu finding(s)\n",
                     findings.size());
        return 1;
    }
    return 0;
}
