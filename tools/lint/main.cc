/**
 * @file
 * tvarak-lint CLI.
 *
 *   tvarak-lint [--root DIR] [--sarif FILE] [--baseline FILE]
 *               [--jobs N] [paths...]
 *       Scan DIR (default: cwd) — paths are root-relative directories
 *       or files, default {src, tests, bench, tools, examples}.
 *       Prints one `file:line: [R#] message` per non-baselined
 *       finding; --sarif also writes a SARIF 2.1.0 document (byte-
 *       deterministic; baselined findings carry an external
 *       suppression). --baseline defaults to DIR/.lint-baseline when
 *       that file exists.
 *
 *   tvarak-lint --self-test DIR
 *       DIR must hold `goodroot/` (expected clean) and `badroot/`
 *       (expected to trip every rule R1..R14). Exit 0 iff both hold.
 *
 * Exit codes: 0 clean (all findings baselined), 1 findings, 2 usage
 * or I/O error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "lint.hh"
#include "sarif.hh"

namespace fs = std::filesystem;
using namespace tvarak::lint;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: tvarak-lint [--root DIR] [--sarif FILE] "
                 "[--baseline FILE] [--jobs N] [paths...]\n"
                 "       tvarak-lint --self-test FIXTURE_DIR\n");
    return 2;
}

int
selfTest(const fs::path &dir)
{
    if (!fs::is_directory(dir / "goodroot") ||
        !fs::is_directory(dir / "badroot")) {
        std::fprintf(stderr,
                     "self-test: %s must contain goodroot/ and badroot/\n",
                     dir.string().c_str());
        return 2;
    }

    int failures = 0;

    Options good{dir / "goodroot", {}};
    for (const Finding &f : run(good)) {
        std::fprintf(stderr, "self-test: goodroot not clean: %s\n",
                     f.str().c_str());
        failures++;
    }

    Options bad{dir / "badroot", {}};
    std::set<std::string> hit;
    for (const Finding &f : run(bad))
        hit.insert(f.rule);
    for (const char *rule :
         {"R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10",
          "R11", "R12", "R13", "R14"}) {
        if (!hit.count(rule)) {
            std::fprintf(stderr,
                         "self-test: badroot did not trip %s\n", rule);
            failures++;
        }
    }

    if (failures == 0) {
        std::printf("tvarak-lint self-test: OK "
                    "(goodroot clean, badroot trips R1..R14)\n");
        return 0;
    }
    return 1;
}

}  // namespace

int
main(int argc, char **argv)
{
    Options opts;
    opts.root = fs::current_path();
    std::string sarifPath;
    std::string baselinePath;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--root") {
            if (++i >= argc)
                return usage();
            opts.root = argv[i];
        } else if (arg == "--sarif") {
            if (++i >= argc)
                return usage();
            sarifPath = argv[i];
        } else if (arg == "--baseline") {
            if (++i >= argc)
                return usage();
            baselinePath = argv[i];
        } else if (arg == "--jobs") {
            if (++i >= argc)
                return usage();
            char *end = nullptr;
            opts.jobs = std::strtoul(argv[i], &end, 10);
            if (end == argv[i] || *end != '\0')
                return usage();
        } else if (arg == "--self-test") {
            if (++i >= argc)
                return usage();
            return selfTest(argv[i]);
        } else if (arg == "-h" || arg == "--help") {
            usage();
            return 0;
        } else if (arg.rfind("-", 0) == 0) {
            return usage();
        } else {
            opts.paths.push_back(arg);
        }
    }

    if (!fs::is_directory(opts.root)) {
        std::fprintf(stderr, "tvarak-lint: no such directory: %s\n",
                     opts.root.string().c_str());
        return 2;
    }
    if (baselinePath.empty() &&
        fs::is_regular_file(opts.root / ".lint-baseline"))
        baselinePath = (opts.root / ".lint-baseline").string();

    try {
        std::set<std::string> baseline;
        if (!baselinePath.empty())
            baseline = loadBaseline(baselinePath);

        std::vector<Finding> findings = run(opts);

        if (!sarifPath.empty()) {
            std::ofstream os(sarifPath);
            if (!os)
                throw std::runtime_error("cannot write SARIF file: " +
                                         sarifPath);
            os << toSarif(findings, baseline);
        }

        std::size_t fresh = 0, suppressed = 0;
        std::set<std::string> matched;
        for (const Finding &f : findings) {
            if (baseline.count(baselineKey(f))) {
                matched.insert(baselineKey(f));
                suppressed++;
                continue;
            }
            fresh++;
            std::printf("%s\n", f.str().c_str());
        }
        for (const std::string &entry : baseline)
            if (!matched.count(entry))
                std::fprintf(stderr,
                             "tvarak-lint: stale baseline entry "
                             "(no matching finding): %s\n",
                             entry.c_str());

        if (fresh > 0) {
            std::fprintf(stderr,
                         "tvarak-lint: %zu finding(s), %zu baselined\n",
                         fresh, suppressed);
            return 1;
        }
        if (suppressed > 0)
            std::fprintf(stderr, "tvarak-lint: clean (%zu baselined)\n",
                         suppressed);
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "tvarak-lint: %s\n", e.what());
        return 2;
    }
}
