/**
 * @file
 * tvarak-lint: project-specific static analysis for the simulator.
 *
 * The engine walks a source tree and enforces rules that generic
 * tooling cannot know about — the same class of silent-corruption
 * hazards TVARAK itself exists to catch:
 *
 *   R1  No naked 64/4096/8-style geometry literals in address math;
 *       use kLineBytes / kPageBytes / kChecksumBytes /
 *       kChecksumsPerLine from sim/types.hh.
 *   R2  Every stats-counter key string is registered exactly once in
 *       src/sim/stats.cc, and every reference elsewhere names a
 *       registered key (catches typo-split counters).
 *   R3  Every config field in src/sim/config.hh appears in the
 *       bench_table3 parameter dump and in DESIGN.md §6
 *       (config-docs drift check).
 *   R4  Header hygiene: every .hh starts with `#pragma once` (or a
 *       classic include guard) and has no `using namespace` at
 *       header scope.
 *   R5  Latency/energy constants live in sim/config.hh, never inline
 *       in mem/, nvm/, or core/.
 *   R6  Raw threading primitives (std::thread, std::jthread,
 *       std::mutex, locks, futures and their headers) are confined to
 *       src/harness/ — the simulator core is single-threaded by
 *       construction; parallelism goes through harness/parallel.hh.
 *   R7  Binary file I/O (fopen in a binary mode, std::ofstream /
 *       std::ifstream / std::fstream with std::ios::binary) is
 *       confined to src/trace/, src/harness/ and tools/ — every
 *       on-disk format has exactly one owner.
 *   R8  DesignKind enumerator dispatch (`DesignKind::...` switches and
 *       comparisons) in src/ is confined to src/redundancy/registry.* —
 *       everything else resolves behaviour through the Design registry
 *       (designOf / findDesign) and the Design policy hooks.
 *   R14 SIMD intrinsics — <immintrin.h>-family includes, _mm_* /
 *       _mm256_* / _mm512_* calls and the __m128/__m256/__m512 vector
 *       types — are confined to src/kernels/: the data-plane kernel
 *       layer is the single owner of vector code, everything else goes
 *       through kernels::ops() so backends stay swappable and
 *       bit-identity is provable in one place.
 *
 * On top of the per-file rules, the repo-model pass (tvarak-analyze)
 * builds the `#include` graph and symbol/use tables and checks:
 *
 *   R9  Architecture layering: include edges follow the dependency
 *       DAG in DESIGN.md section 11 (no upward edges, no include
 *       cycles).
 *   R10 Determinism hazards (rand(), std::random_device, wall-clock
 *       reads, unordered-container iteration, pointer-keyed maps) on
 *       any path that feeds Stats, trace output or campaign JSON.
 *   R11 Stats dataflow: counters incremented but never reported, or
 *       reported but never incremented.
 *   R12 Config-knob drift: SimConfig fields never read (or set but
 *       never read) by the simulator.
 *   R13 Lock discipline: naked lock()/unlock() in src/harness/.
 *
 * A finding on line N is suppressed by `// lint:allow(R#)` (comma
 * lists allowed) on line N or on the line directly above it.
 */

#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

namespace tvarak::lint {

/** One rule violation. */
struct Finding {
    std::string file;    //!< path as reported (relative to root)
    std::size_t line;    //!< 1-based
    std::string rule;    //!< "R1".."R14"
    std::string message;

    /** `file:line: [R#] message` */
    std::string str() const;
};

struct Options {
    /** Repo root; R2/R3 registry artifacts (src/sim/stats.cc,
     *  src/sim/config.hh, bench/bench_table3.cc, DESIGN.md) are
     *  located relative to it. */
    std::filesystem::path root;
    /** Directories (or files), relative to root, to scan.
     *  Empty = {"src", "tests", "bench", "tools", "examples"}
     *  (missing defaults are skipped; explicitly named paths must
     *  exist). */
    std::vector<std::string> paths;
    /** Worker threads for the file scan (0 = one per core). The scan
     *  is deterministic regardless: results land in per-file slots. */
    std::size_t jobs = 0;
};

/**
 * Run every rule; findings come back sorted by (file, line, rule).
 * Throws std::runtime_error on I/O errors (unreadable file, explicit
 * path that does not exist) — the CLI maps that to exit code 2.
 */
std::vector<Finding> run(const Options &opts);

/** @name Exposed for the self-test / unit tests. */
/**@{*/

/** Per-line view of one source file with literals/comments separated. */
struct SourceFile {
    std::string path;                      //!< as reported in findings
    std::vector<std::string> raw;          //!< original lines
    std::vector<std::string> code;         //!< comments+literals blanked
    struct StringLit {
        std::size_t line;                  //!< 1-based
        std::string value;
    };
    std::vector<StringLit> strings;        //!< string literal contents

    /** True iff @p rule is suppressed on 1-based line @p line. */
    bool allows(const std::string &rule, std::size_t line) const;
};

/** Load and pre-lex @p file; @p reportPath is used in findings. */
SourceFile lexFile(const std::filesystem::path &file,
                   const std::string &reportPath);

/** Pre-lex in-memory text (fixture-free unit tests). */
SourceFile lexText(const std::string &text, const std::string &reportPath);

/** Data-member names of every struct in a config header, with the
 *  1-based line each was declared on. */
struct ConfigField {
    std::string structName;
    std::string name;
    std::size_t line;
};
std::vector<ConfigField> parseConfigFields(const SourceFile &f);

/**@}*/

}  // namespace tvarak::lint
