/**
 * @file
 * tvarak-analyze repo model: the whole-program view the cross-file
 * rules (R9..R13) run on.
 *
 * The model is built from the already-lexed SourceFiles: it resolves
 * every quoted `#include` against the scanned file set, classifies
 * each file into an architecture *module* (usually its directory,
 * with a handful of sanctioned interface-header overrides), and
 * assigns each module a *rank* in the layering DAG documented in
 * DESIGN.md section 11. An include edge is legal iff it stays within
 * one module or points strictly downward (higher rank includes lower
 * rank). File-level include cycles are always illegal, even inside a
 * module.
 *
 * Everything here is pure: no filesystem access, so unit tests can
 * build models from in-memory sources (lexText).
 */

#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint.hh"

namespace tvarak::lint {

/** One `#include` directive, resolved against the scanned files. */
struct IncludeEdge {
    std::size_t line;         //!< 1-based line of the directive
    std::string spec;         //!< text between the quotes / angles
    bool angled;              //!< `<...>` (system) vs `"..."` (project)
    std::size_t target;       //!< index into RepoModel::files, or npos
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    bool resolved() const { return target != npos; }
};

/** Whole-repo view: files, include graph, and derived closures. */
struct RepoModel {
    std::vector<SourceFile> files;
    /** report path -> index into files */
    std::map<std::string, std::size_t> byPath;
    /** per file, its include directives (resolved where possible) */
    std::vector<std::vector<IncludeEdge>> includes;

    /** Indices of every file reachable through resolved includes from
     *  @p file, including @p file itself. */
    std::set<std::size_t> includeClosure(std::size_t file) const;

    /** True iff some file in @p file's include closure has a report
     *  path ending in @p suffix. */
    bool closureHas(std::size_t file, const std::string &suffix) const;
};

/** Architecture module of a report path: the src/ subdirectory name
 *  (or bench/tools/tests/examples), with the sanctioned
 *  interface-header overrides applied ("" = unclassified). */
std::string moduleOf(const std::string &path);

/** Rank of @p module in the layering DAG (-1 = unknown module; an
 *  edge touching an unknown module is never a violation). */
int moduleRank(const std::string &module);

/** Is an include edge from @p fromPath to @p toPath legal under the
 *  layering DAG? (Same module, unknown module, or strictly downward.) */
bool layerEdgeLegal(const std::string &fromPath, const std::string &toPath);

/** Parse the include directives of @p f (no resolution). */
std::vector<IncludeEdge> parseIncludes(const SourceFile &f);

/** Build the model: parse + resolve includes for every file. Quoted
 *  specs resolve against `src/<spec>`, `<spec>`, `<dir>/<spec>` and
 *  `tools/lint/<spec>` (the build's include dirs); angled and
 *  unmatched specs stay external. */
RepoModel buildRepoModel(std::vector<SourceFile> files);

/**
 * File-level include cycles (strongly connected components of size
 * > 1, plus self-includes). Each cycle lists the member report paths,
 * sorted; the list of cycles is sorted by first member, so output is
 * deterministic.
 */
std::vector<std::vector<std::string>> findIncludeCycles(const RepoModel &m);

/** Run the whole-repo rules R9..R13 over @p m, appending findings. */
void runModelRules(const RepoModel &m, std::vector<Finding> &out);

}  // namespace tvarak::lint
