#include "lint.hh"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "harness/parallel.hh"
#include "repo_model.hh"
#include "tokens.hh"

namespace fs = std::filesystem;

namespace tvarak::lint {

std::string
Finding::str() const
{
    std::ostringstream os;
    os << file << ":" << line << ": [" << rule << "] " << message;
    return os.str();
}

namespace {

std::string
toLower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

void
tokenizeLine(const std::string &code, std::size_t lineNo,
             std::vector<Tok> &out)
{
    std::size_t i = 0;
    while (i < code.size()) {
        char c = code[i];
        if (std::isspace(static_cast<unsigned char>(c))) {
            i++;
        } else if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            // Numbers incl. hex, digit separators, suffixes, floats.
            while (j < code.size() &&
                   (isIdentChar(code[j]) || code[j] == '\'' ||
                    code[j] == '.' ||
                    ((code[j] == '+' || code[j] == '-') && j > i &&
                     (code[j - 1] == 'e' || code[j - 1] == 'E' ||
                      code[j - 1] == 'p' || code[j - 1] == 'P'))))
                j++;
            out.push_back({Tok::Number, code.substr(i, j - i), lineNo, i});
            i = j;
        } else if (isIdentChar(c)) {
            std::size_t j = i;
            while (j < code.size() && isIdentChar(code[j]))
                j++;
            out.push_back({Tok::Ident, code.substr(i, j - i), lineNo, i});
            i = j;
        } else {
            out.push_back({Tok::Punct, std::string(1, c), lineNo, i});
            i++;
        }
    }
}

std::vector<Tok>
tokenizeFile(const std::vector<std::string> &code)
{
    std::vector<Tok> toks;
    for (std::size_t i = 0; i < code.size(); i++)
        tokenizeLine(code[i], i + 1, toks);
    return toks;
}

std::uint64_t
numberValue(const std::string &text)
{
    std::string t;
    for (char c : text)
        if (c != '\'')
            t += c;
    if (t.find('.') != std::string::npos)
        return 0;
    return std::strtoull(t.c_str(), nullptr, 0);
}

bool
isFloatLiteral(const std::string &text)
{
    if (text.size() > 1 && text[0] == '0' &&
        (text[1] == 'x' || text[1] == 'X'))
        return false;  // hex
    if (text.find('.') != std::string::npos)
        return true;
    // 1e9 style.
    return text.find('e') != std::string::npos ||
        text.find('E') != std::string::npos;
}

bool
SourceFile::allows(const std::string &rule, std::size_t line) const
{
    auto lineAllows = [&](std::size_t n) {
        if (n < 1 || n > raw.size())
            return false;
        const std::string &s = raw[n - 1];
        std::size_t p = s.find("lint:allow(");
        if (p == std::string::npos)
            return false;
        std::size_t open = p + std::string("lint:allow(").size() - 1;
        std::size_t close = s.find(')', open);
        if (close == std::string::npos)
            return false;
        std::string list = s.substr(open + 1, close - open - 1);
        std::istringstream is(list);
        std::string item;
        while (std::getline(is, item, ',')) {
            item.erase(0, item.find_first_not_of(" \t"));
            item.erase(item.find_last_not_of(" \t") + 1);
            if (item == rule)
                return true;
        }
        return false;
    };
    return lineAllows(line) || lineAllows(line - 1);
}

SourceFile
lexText(const std::string &text, const std::string &reportPath)
{
    SourceFile f;
    f.path = reportPath;

    {
        std::istringstream is(text);
        std::string line;
        while (std::getline(is, line))
            f.raw.push_back(line);
        if (!text.empty() && text.back() == '\n') {
            // getline drops the final empty segment; nothing to add.
        }
    }

    enum State { Code, LineComment, BlockComment, Str, Chr };
    State st = Code;
    std::string code;
    std::string lit;
    std::size_t litLine = 1;
    std::size_t lineNo = 1;

    for (std::size_t i = 0; i < text.size(); i++) {
        char c = text[i];
        char n = i + 1 < text.size() ? text[i + 1] : '\0';
        if (c == '\n') {
            if (st == LineComment || st == Str || st == Chr)
                st = Code;  // unterminated literal: recover
            f.code.push_back(code);
            code.clear();
            lineNo++;
            continue;
        }
        switch (st) {
        case Code:
            if (c == '/' && n == '/') {
                st = LineComment;
                code += "  ";
                i++;
            } else if (c == '/' && n == '*') {
                st = BlockComment;
                code += "  ";
                i++;
            } else if (c == '"') {
                st = Str;
                lit.clear();
                litLine = lineNo;
                code += ' ';
            } else if (c == '\'') {
                // Digit separator (1'000) vs char literal.
                if (i > 0 && isIdentChar(text[i - 1]) &&
                    std::isdigit(static_cast<unsigned char>(text[i - 1]))) {
                    code += c;
                } else {
                    st = Chr;
                    code += ' ';
                }
            } else {
                code += c;
            }
            break;
        case LineComment:
            code += ' ';
            break;
        case BlockComment:
            code += ' ';
            if (c == '*' && n == '/') {
                st = Code;
                code += ' ';
                i++;
            }
            break;
        case Str:
            if (c == '\\' && n != '\0') {
                lit += c;
                lit += n;
                code += "  ";
                i++;
            } else if (c == '"') {
                st = Code;
                f.strings.push_back({litLine, lit});
                code += ' ';
            } else {
                lit += c;
                code += ' ';
            }
            break;
        case Chr:
            if (c == '\\' && n != '\0') {
                code += "  ";
                i++;
            } else if (c == '\'') {
                st = Code;
                code += ' ';
            } else {
                code += ' ';
            }
            break;
        }
    }
    if (!code.empty() || f.code.size() < f.raw.size())
        f.code.push_back(code);
    while (f.code.size() < f.raw.size())
        f.code.emplace_back();
    return f;
}

SourceFile
lexFile(const fs::path &file, const std::string &reportPath)
{
    std::ifstream is(file, std::ios::binary);
    if (!is)
        throw std::runtime_error("cannot read " + file.string());
    std::ostringstream buf;
    buf << is.rdbuf();
    return lexText(buf.str(), reportPath);
}

std::vector<ConfigField>
parseConfigFields(const SourceFile &f)
{
    std::vector<Tok> toks;
    for (std::size_t i = 0; i < f.code.size(); i++)
        tokenizeLine(f.code[i], i + 1, toks);

    std::vector<ConfigField> fields;
    std::size_t i = 0;
    auto skipBalanced = [&](const char *open, const char *close) {
        // toks[i] is the opener; advance past its match.
        int depth = 0;
        for (; i < toks.size(); i++) {
            if (toks[i].kind == Tok::Punct && toks[i].text == open)
                depth++;
            else if (toks[i].kind == Tok::Punct && toks[i].text == close) {
                depth--;
                if (depth == 0) {
                    i++;
                    return;
                }
            }
        }
    };

    while (i < toks.size()) {
        if (toks[i].kind == Tok::Ident && toks[i].text == "enum") {
            // enum [class] Name { ... };  — skip entirely.
            while (i < toks.size() &&
                   !(toks[i].kind == Tok::Punct && toks[i].text == "{"))
                i++;
            skipBalanced("{", "}");
            continue;
        }
        if (!(toks[i].kind == Tok::Ident &&
              (toks[i].text == "struct" || toks[i].text == "class"))) {
            i++;
            continue;
        }
        i++;
        if (i >= toks.size() || toks[i].kind != Tok::Ident)
            continue;
        std::string structName = toks[i].text;
        i++;
        if (i >= toks.size() ||
            !(toks[i].kind == Tok::Punct && toks[i].text == "{"))
            continue;  // forward declaration
        i++;  // past '{'

        std::vector<Tok> stmt;
        bool done = false;
        while (i < toks.size() && !done) {
            const Tok &t = toks[i];
            if (t.kind == Tok::Punct && t.text == "{") {
                bool isFunc = std::any_of(
                    stmt.begin(), stmt.end(), [](const Tok &s) {
                        return s.kind == Tok::Punct && s.text == "(";
                    });
                skipBalanced("{", "}");
                if (isFunc)
                    stmt.clear();  // function definition, no trailing ';'
                continue;
            }
            if (t.kind == Tok::Punct && t.text == "}") {
                done = true;
                i++;
                continue;
            }
            if (t.kind == Tok::Punct && t.text == ";") {
                bool hasParen = std::any_of(
                    stmt.begin(), stmt.end(), [](const Tok &s) {
                        return s.kind == Tok::Punct && s.text == "(";
                    });
                // Truncate at '=' (default member initializer).
                std::size_t end = stmt.size();
                for (std::size_t k = 0; k < stmt.size(); k++) {
                    if (stmt[k].kind == Tok::Punct && stmt[k].text == "=") {
                        end = k;
                        break;
                    }
                }
                const Tok *name = nullptr;
                std::size_t idents = 0;
                for (std::size_t k = 0; k < end; k++) {
                    if (stmt[k].kind == Tok::Ident) {
                        idents++;
                        name = &stmt[k];
                    }
                }
                if (!hasParen && name && idents >= 2 &&
                    name->text != "const" && name->text != "static")
                    fields.push_back({structName, name->text, name->line});
                stmt.clear();
                i++;
                continue;
            }
            stmt.push_back(t);
            i++;
        }
    }
    return fields;
}

namespace {

// ---------------------------------------------------------------- R1

const std::set<std::uint64_t> kGeometryLiterals = {8, 63, 64, 4095, 4096};

/** Does @p id smell like address arithmetic? */
bool
isAddressishIdent(const std::string &id)
{
    std::string l = toLower(id);
    static const char *const kPlain[] = {
        "addr", "vaddr", "page", "stripe", "csum", "checksum",
        "offset", "dax", "parity",
    };
    for (const char *k : kPlain)
        if (l.find(k) != std::string::npos)
            return true;
    // "line" needs care: inline / baseline / pipeline / newline /
    // online / deadline are not address math.
    static const char *const kNotLine[] = {
        "inline", "baseline", "pipeline", "newline", "online", "deadline",
    };
    for (const char *k : kNotLine) {
        std::size_t n = std::string_view(k).size();
        std::size_t p = 0;
        while ((p = l.find(k, p)) != std::string::npos) {
            for (std::size_t i = 0; i < n; i++)
                l[p + i] = '#';
            p += n;
        }
    }
    return l.find("line") != std::string::npos;
}

/** Nearest non-space char before @p col (or '\0'), and the one before
 *  it (to recognise << and >>). */
std::pair<char, char>
prevChars(const std::string &s, std::size_t col)
{
    std::size_t i = col;
    while (i > 0 &&
           std::isspace(static_cast<unsigned char>(s[i - 1])))
        i--;
    char a = i > 0 ? s[i - 1] : '\0';
    char b = i > 1 ? s[i - 2] : '\0';
    return {a, b};
}

std::pair<char, char>
nextChars(const std::string &s, std::size_t col)
{
    std::size_t i = col;
    while (i < s.size() &&
           std::isspace(static_cast<unsigned char>(s[i])))
        i++;
    char a = i < s.size() ? s[i] : '\0';
    char b = i + 1 < s.size() ? s[i + 1] : '\0';
    return {a, b};
}

bool
isArithAdjacent(const std::string &code, std::size_t start, std::size_t end)
{
    auto isOp = [](char a, char b) {
        switch (a) {
        case '*': case '/': case '%': case '&': case '|': case '^':
            return true;
        case '<': return b == '<';
        case '>': return b == '>';
        default: return false;
        }
    };
    auto [pa, pb] = prevChars(code, start);
    // For "<< 20" the nearest-prev char of the literal is the second
    // '<'; pb is the first.
    if (isOp(pa, pa == '<' || pa == '>' ? pb : '\0') ||
        ((pa == '<' || pa == '>') && pb == pa))
        return true;
    auto [na, nb] = nextChars(code, end);
    return isOp(na, nb);
}

void
ruleR1(const SourceFile &f, std::vector<Finding> &out)
{
    // The geometry constants themselves are defined from raw literals.
    if (f.path.ends_with("sim/types.hh"))
        return;
    for (std::size_t ln = 0; ln < f.code.size(); ln++) {
        const std::string &code = f.code[ln];
        std::vector<Tok> toks;
        tokenizeLine(code, ln + 1, toks);
        bool addressish = std::any_of(
            toks.begin(), toks.end(), [](const Tok &t) {
                return t.kind == Tok::Ident && isAddressishIdent(t.text);
            });
        if (!addressish)
            continue;
        for (const Tok &t : toks) {
            if (t.kind != Tok::Number || isFloatLiteral(t.text))
                continue;
            std::uint64_t v = numberValue(t.text);
            if (!kGeometryLiterals.count(v))
                continue;
            if (!isArithAdjacent(code, t.col, t.col + t.text.size()))
                continue;
            if (f.allows("R1", ln + 1))
                continue;
            out.push_back(
                {f.path, ln + 1, "R1",
                 "naked geometry literal " + t.text +
                     " in address math; use kLineBytes / kPageBytes / "
                     "kChecksumBytes / kChecksumsPerLine "
                     "(sim/types.hh) or a named constant"});
        }
    }
}

// ---------------------------------------------------------------- R2

bool
isStatKey(const std::string &raw)
{
    std::string s = raw;
    s.erase(0, s.find_first_not_of(" \t"));
    s.erase(s.find_last_not_of(" \t") + 1);
    if (s.empty() ||
        !std::islower(static_cast<unsigned char>(s[0])))
        return false;
    bool sawDot = false;
    char prev = '\0';
    for (char c : s) {
        if (c == '.') {
            if (prev == '.' || prev == '\0')
                return false;
            sawDot = true;
        } else if (!std::isalnum(static_cast<unsigned char>(c)) &&
                   c != '_') {
            return false;
        }
        prev = c;
    }
    return sawDot && prev != '.';
}

std::string
trimmedKey(const std::string &raw)
{
    std::string s = raw;
    s.erase(0, s.find_first_not_of(" \t"));
    s.erase(s.find_last_not_of(" \t") + 1);
    return s;
}

void
ruleR2(const std::vector<SourceFile> &files, std::vector<Finding> &out)
{
    const SourceFile *registry = nullptr;
    for (const SourceFile &f : files)
        if (f.path.ends_with("sim/stats.cc"))
            registry = &f;
    if (!registry)
        return;

    std::map<std::string, std::vector<std::size_t>> registered;
    std::set<std::string> namespaces;
    for (const auto &lit : registry->strings) {
        if (!isStatKey(lit.value))
            continue;
        std::string key = trimmedKey(lit.value);
        registered[key].push_back(lit.line);
        namespaces.insert(key.substr(0, key.find('.')));
    }

    for (const auto &[key, lines] : registered) {
        if (lines.size() > 1 && !registry->allows("R2", lines[1]))
            out.push_back({registry->path, lines[1], "R2",
                           "stats key '" + key + "' registered " +
                               std::to_string(lines.size()) +
                               " times in Stats::dump (first at line " +
                               std::to_string(lines[0]) + ")"});
    }

    for (const SourceFile &f : files) {
        if (&f == registry)
            continue;
        for (const auto &lit : f.strings) {
            if (!isStatKey(lit.value))
                continue;
            std::string key = trimmedKey(lit.value);
            std::string ns = key.substr(0, key.find('.'));
            if (!namespaces.count(ns) || registered.count(key))
                continue;
            if (f.allows("R2", lit.line))
                continue;
            out.push_back({f.path, lit.line, "R2",
                           "stats key '" + key +
                               "' is not registered in Stats::dump "
                               "(src/sim/stats.cc) — typo-split counter?"});
        }
    }
}

// ---------------------------------------------------------------- R3

void
ruleR3(const Options &opts, std::vector<Finding> &out)
{
    fs::path cfgPath = opts.root / "src" / "sim" / "config.hh";
    fs::path dumpPath = opts.root / "bench" / "bench_table3.cc";
    fs::path designPath = opts.root / "DESIGN.md";
    if (!fs::exists(cfgPath))
        return;

    SourceFile cfg = lexFile(cfgPath, "src/sim/config.hh");
    std::vector<ConfigField> fields = parseConfigFields(cfg);

    std::set<std::string> dumpIdents;
    if (fs::exists(dumpPath)) {
        SourceFile dump = lexFile(dumpPath, "bench/bench_table3.cc");
        std::vector<Tok> toks;
        for (std::size_t i = 0; i < dump.code.size(); i++)
            tokenizeLine(dump.code[i], i + 1, toks);
        for (const Tok &t : toks)
            if (t.kind == Tok::Ident)
                dumpIdents.insert(t.text);
    }

    // DESIGN.md section 6 as whole-word text.
    std::string design6;
    if (fs::exists(designPath)) {
        std::ifstream is(designPath);
        std::string line;
        bool inSec = false;
        while (std::getline(is, line)) {
            if (line.rfind("## ", 0) == 0)
                inSec = line.rfind("## 6", 0) == 0;
            else if (inSec)
                design6 += line + "\n";
        }
    }
    auto inDesign = [&](const std::string &word) {
        std::size_t p = 0;
        while ((p = design6.find(word, p)) != std::string::npos) {
            bool lb = p == 0 || !isIdentChar(design6[p - 1]);
            std::size_t e = p + word.size();
            bool rb = e >= design6.size() || !isIdentChar(design6[e]);
            if (lb && rb)
                return true;
            p = e;
        }
        return false;
    };

    for (const ConfigField &fld : fields) {
        if (cfg.allows("R3", fld.line))
            continue;
        if (!dumpIdents.count(fld.name))
            out.push_back({cfg.path, fld.line, "R3",
                           "config field '" + fld.structName +
                               "::" + fld.name +
                               "' missing from the bench_table3 "
                               "parameter dump (bench/bench_table3.cc)"});
        if (!inDesign(fld.name))
            out.push_back({cfg.path, fld.line, "R3",
                           "config field '" + fld.structName +
                               "::" + fld.name +
                               "' missing from DESIGN.md section 6 "
                               "(config reference)"});
    }
}

// ---------------------------------------------------------------- R4

void
ruleR4(const SourceFile &f, std::vector<Finding> &out)
{
    if (!f.path.ends_with(".hh") && !f.path.ends_with(".h"))
        return;

    // Guard check: first non-blank code line must open a guard.
    bool guarded = false;
    std::string firstDirective;
    for (const std::string &code : f.code) {
        std::string t = code;
        t.erase(0, t.find_first_not_of(" \t"));
        t.erase(t.find_last_not_of(" \t") + 1);
        if (t.empty())
            continue;
        firstDirective = t;
        break;
    }
    if (firstDirective.rfind("#pragma", 0) == 0 &&
        firstDirective.find("once") != std::string::npos) {
        guarded = true;
    } else if (firstDirective.rfind("#ifndef", 0) == 0) {
        for (const std::string &code : f.code)
            if (code.find("#define") != std::string::npos) {
                guarded = true;
                break;
            }
    }
    if (!guarded && !f.allows("R4", 1))
        out.push_back({f.path, 1, "R4",
                       "header has no #pragma once (preferred) or "
                       "include guard"});

    // `using namespace` at header scope. Namespace braces do not count
    // as scope depth; function/class braces do.
    std::vector<Tok> toks;
    for (std::size_t i = 0; i < f.code.size(); i++)
        tokenizeLine(f.code[i], i + 1, toks);
    int depth = 0;
    bool pendingNs = false;
    std::vector<bool> nsBrace;
    for (std::size_t i = 0; i < toks.size(); i++) {
        const Tok &t = toks[i];
        if (t.kind == Tok::Ident && t.text == "namespace") {
            bool usingDirective =
                i > 0 && toks[i - 1].kind == Tok::Ident &&
                toks[i - 1].text == "using";
            if (usingDirective) {
                if (depth == 0 && !f.allows("R4", t.line))
                    out.push_back({f.path, t.line, "R4",
                                   "'using namespace' at header scope "
                                   "leaks into every includer"});
            } else {
                pendingNs = true;
            }
        } else if (t.kind == Tok::Punct && t.text == "{") {
            nsBrace.push_back(pendingNs);
            if (!pendingNs)
                depth++;
            pendingNs = false;
        } else if (t.kind == Tok::Punct && t.text == "}") {
            if (!nsBrace.empty()) {
                if (!nsBrace.back())
                    depth--;
                nsBrace.pop_back();
            }
        } else if (t.kind == Tok::Punct && t.text == ";") {
            pendingNs = false;
        }
    }
}

// ---------------------------------------------------------------- R5

bool
isTimingName(const std::string &id)
{
    std::string l = toLower(id);
    static const char *const kSuffixes[] = {
        "latency", "energy", "cycles", "ns", "ghz", "nanos", "picojoules",
    };
    for (const char *s : kSuffixes) {
        std::string suf(s);
        if (l.size() >= suf.size() &&
            l.compare(l.size() - suf.size(), suf.size(), suf) == 0)
            return true;
    }
    return false;
}

void
ruleR5(const SourceFile &f, std::vector<Finding> &out)
{
    bool covered = false;
    for (const char *dir : {"/mem/", "/nvm/", "/core/"})
        if (f.path.find(dir) != std::string::npos ||
            f.path.rfind(std::string(dir).substr(1), 0) == 0)
            covered = true;
    if (!covered)
        return;

    for (std::size_t ln = 0; ln < f.code.size(); ln++) {
        std::vector<Tok> toks;
        tokenizeLine(f.code[ln], ln + 1, toks);
        for (std::size_t i = 0; i < toks.size(); i++) {
            const Tok &t = toks[i];
            if (t.kind == Tok::Number && isFloatLiteral(t.text)) {
                double v = std::strtod(t.text.c_str(), nullptr);
                if (v == 0.0 || v == 0.5 || v == 1.0)
                    continue;
                if (f.allows("R5", ln + 1))
                    continue;
                out.push_back({f.path, ln + 1, "R5",
                               "inline floating-point constant " + t.text +
                                   " in a timing/energy module; move it "
                                   "into sim/config.hh"});
            } else if (t.kind == Tok::Ident && isTimingName(t.text) &&
                       i + 2 < toks.size() &&
                       toks[i + 1].kind == Tok::Punct &&
                       toks[i + 1].text == "=" &&
                       toks[i + 2].kind == Tok::Number &&
                       !isFloatLiteral(toks[i + 2].text) &&
                       numberValue(toks[i + 2].text) >= 2) {
                if (f.allows("R5", ln + 1))
                    continue;
                out.push_back({f.path, ln + 1, "R5",
                               "timing constant assigned inline ('" +
                                   t.text + " = " + toks[i + 2].text +
                                   "'); parameters belong in "
                                   "sim/config.hh"});
            }
        }
    }
}

// ---------------------------------------------------------------- R6

const std::set<std::string> kThreadingHeaders = {
    "thread", "mutex", "shared_mutex", "condition_variable",
    "stop_token", "future", "semaphore", "barrier", "latch",
};

const std::set<std::string> kThreadingIdents = {
    "thread", "jthread", "mutex", "recursive_mutex", "timed_mutex",
    "recursive_timed_mutex", "shared_mutex", "shared_timed_mutex",
    "condition_variable", "condition_variable_any", "lock_guard",
    "unique_lock", "scoped_lock", "shared_lock", "stop_token",
    "stop_source", "future", "shared_future", "promise", "async",
    "barrier", "latch", "counting_semaphore", "binary_semaphore",
};

/** The one subtree allowed to touch raw threading primitives. */
bool
isHarnessPath(const std::string &path)
{
    return path.find("src/harness/") != std::string::npos ||
        path.rfind("harness/", 0) == 0;
}

void
ruleR6(const SourceFile &f, std::vector<Finding> &out)
{
    if (isHarnessPath(f.path))
        return;
    for (std::size_t ln = 0; ln < f.code.size(); ln++) {
        const std::string &code = f.code[ln];
        std::string hit;

        // #include <thread> and friends (quoted includes are string
        // literals and cannot name standard threading headers).
        std::string t = code;
        t.erase(0, t.find_first_not_of(" \t"));
        if (t.rfind("#", 0) == 0 &&
            t.find("include") != std::string::npos) {
            std::size_t open = t.find('<');
            std::size_t close = t.find('>');
            if (open != std::string::npos &&
                close != std::string::npos && close > open) {
                std::string hdr = t.substr(open + 1, close - open - 1);
                if (kThreadingHeaders.count(hdr))
                    hit = "#include <" + hdr + ">";
            }
        }

        // std::thread / std::jthread / std::mutex / ... tokens.
        if (hit.empty()) {
            std::vector<Tok> toks;
            tokenizeLine(code, ln + 1, toks);
            for (std::size_t i = 0; i + 3 < toks.size(); i++) {
                if (toks[i].kind == Tok::Ident &&
                    toks[i].text == "std" &&
                    toks[i + 1].kind == Tok::Punct &&
                    toks[i + 1].text == ":" &&
                    toks[i + 2].kind == Tok::Punct &&
                    toks[i + 2].text == ":" &&
                    toks[i + 3].kind == Tok::Ident &&
                    kThreadingIdents.count(toks[i + 3].text)) {
                    hit = "std::" + toks[i + 3].text;
                    break;
                }
            }
        }

        if (hit.empty() || f.allows("R6", ln + 1))
            continue;
        out.push_back({f.path, ln + 1, "R6",
                       "raw threading primitive " + hit +
                           " outside src/harness/; the simulator core "
                           "is single-threaded by construction — "
                           "parallelism goes through the experiment "
                           "engine (harness/parallel.hh)"});
    }
}

// ---------------------------------------------------------------- R7

/** Subtrees allowed to own on-disk binary formats: the trace codec,
 *  the harness (NVM image save/load), and the standalone tools. */
bool
isBinaryIoPath(const std::string &path)
{
    return isHarnessPath(path) ||
        path.find("src/trace/") != std::string::npos ||
        path.rfind("trace/", 0) == 0 ||
        path.find("tools/") != std::string::npos;
}

/** A C stdio mode string that opens in binary mode ("wb", "r+b", …). */
bool
isBinaryModeString(const std::string &s)
{
    if (s.empty() || s.find('b') == std::string::npos)
        return false;
    for (char c : s)
        if (c != 'r' && c != 'w' && c != 'a' && c != 'b' && c != '+')
            return false;
    return true;
}

void
ruleR7(const SourceFile &f, std::vector<Finding> &out)
{
    if (isBinaryIoPath(f.path))
        return;
    for (std::size_t ln = 0; ln < f.code.size(); ln++) {
        std::vector<Tok> toks;
        tokenizeLine(f.code[ln], ln + 1, toks);
        bool hasFopen = false;
        bool hasBinaryTag = false;
        std::string streamName;
        for (const Tok &t : toks) {
            if (t.kind != Tok::Ident)
                continue;
            if (t.text == "fopen" || t.text == "freopen")
                hasFopen = true;
            else if (t.text == "ofstream" || t.text == "ifstream" ||
                     t.text == "fstream")
                streamName = t.text;
            else if (t.text == "binary")
                hasBinaryTag = true;
        }

        std::string hit;
        if (hasFopen) {
            for (const auto &lit : f.strings) {
                if (lit.line == ln + 1 &&
                    isBinaryModeString(lit.value)) {
                    hit = "fopen(..., \"" + lit.value + "\")";
                    break;
                }
            }
        }
        if (hit.empty() && !streamName.empty() && hasBinaryTag)
            hit = "std::" + streamName + " with std::ios::binary";

        if (hit.empty() || f.allows("R7", ln + 1))
            continue;
        out.push_back({f.path, ln + 1, "R7",
                       "binary file I/O (" + hit +
                           ") outside src/trace/, src/harness/ and "
                           "tools/; on-disk formats are owned by the "
                           "trace codec and the image/tool helpers"});
    }
}

// ---------------------------------------------------------------- R8

/** The one subtree allowed to dispatch on DesignKind enumerators. */
bool
isRegistryPath(const std::string &path)
{
    return path.find("redundancy/registry.") != std::string::npos;
}

void
ruleR8(const SourceFile &f, std::vector<Finding> &out)
{
    // Only the simulator core is covered: bench/, tools/ and tests/
    // legitimately name designs when building tables and fixtures.
    bool covered = f.path.rfind("src/", 0) == 0 ||
        f.path.find("/src/") != std::string::npos;
    if (!covered || isRegistryPath(f.path))
        return;
    for (std::size_t ln = 0; ln < f.code.size(); ln++) {
        std::vector<Tok> toks;
        tokenizeLine(f.code[ln], ln + 1, toks);
        bool hit = false;
        for (std::size_t i = 0; i + 2 < toks.size() && !hit; i++) {
            hit = toks[i].kind == Tok::Ident &&
                toks[i].text == "DesignKind" &&
                toks[i + 1].kind == Tok::Punct &&
                toks[i + 1].text == ":" &&
                toks[i + 2].kind == Tok::Punct &&
                toks[i + 2].text == ":";
        }
        if (!hit || f.allows("R8", ln + 1))
            continue;
        out.push_back({f.path, ln + 1, "R8",
                       "DesignKind enumerator dispatch outside "
                       "src/redundancy/registry.*; resolve the design "
                       "through the registry (designOf / findDesign) and "
                       "its policy hooks instead of switching on the "
                       "kind"});
    }
}

// --------------------------------------------------------------- R14

/** The one subtree allowed to touch SIMD intrinsics directly. */
bool
isKernelsPath(const std::string &path)
{
    return path.find("src/kernels/") != std::string::npos ||
        path.rfind("kernels/", 0) == 0;
}

/** An intrinsics header: the x86 <*intrin.h> family or ARM NEON. */
bool
isSimdHeader(const std::string &hdr)
{
    if (hdr == "arm_neon.h")
        return true;
    const std::string suffix = "intrin.h";
    return hdr.size() >= suffix.size() &&
        hdr.compare(hdr.size() - suffix.size(), suffix.size(),
                    suffix) == 0;
}

/** An intrinsic call or vector-register type identifier. */
bool
isSimdIdent(const std::string &id)
{
    return id.rfind("_mm_", 0) == 0 || id.rfind("_mm256_", 0) == 0 ||
        id.rfind("_mm512_", 0) == 0 || id.rfind("__m128", 0) == 0 ||
        id.rfind("__m256", 0) == 0 || id.rfind("__m512", 0) == 0;
}

void
ruleR14(const SourceFile &f, std::vector<Finding> &out)
{
    if (isKernelsPath(f.path))
        return;
    for (std::size_t ln = 0; ln < f.code.size(); ln++) {
        const std::string &code = f.code[ln];
        std::string hit;

        // #include <immintrin.h> and friends.
        std::string t = code;
        t.erase(0, t.find_first_not_of(" \t"));
        if (t.rfind("#", 0) == 0 &&
            t.find("include") != std::string::npos) {
            std::size_t open = t.find('<');
            std::size_t close = t.find('>');
            if (open != std::string::npos &&
                close != std::string::npos && close > open) {
                std::string hdr = t.substr(open + 1, close - open - 1);
                if (isSimdHeader(hdr))
                    hit = "#include <" + hdr + ">";
            }
        }

        // _mm_* / _mm256_* / _mm512_* intrinsics and __m128/__m256/
        // __m512 register types.
        if (hit.empty()) {
            std::vector<Tok> toks;
            tokenizeLine(code, ln + 1, toks);
            for (const Tok &tok : toks) {
                if (tok.kind == Tok::Ident && isSimdIdent(tok.text)) {
                    hit = tok.text;
                    break;
                }
            }
        }

        if (hit.empty() || f.allows("R14", ln + 1))
            continue;
        out.push_back({f.path, ln + 1, "R14",
                       "SIMD intrinsic " + hit +
                           " outside src/kernels/; vector code is "
                           "owned by the kernel layer — call through "
                           "kernels::ops() so every byte loop has one "
                           "scalar reference and swappable backends"});
    }
}

// --------------------------------------------------------- file walk

bool
isSourceExt(const fs::path &p)
{
    std::string e = p.extension().string();
    return e == ".cc" || e == ".hh" || e == ".cpp" || e == ".h";
}

void
collect(const fs::path &root, const fs::path &p,
        std::vector<fs::path> &out)
{
    if (fs::is_regular_file(p)) {
        if (isSourceExt(p))
            out.push_back(p);
        return;
    }
    if (!fs::is_directory(p))
        return;
    for (const auto &e : fs::directory_iterator(p)) {
        std::string name = e.path().filename().string();
        if (name == "lint_fixtures" || name == ".git" ||
            name.rfind("build", 0) == 0)
            continue;
        collect(root, e.path(), out);
    }
}

}  // namespace

std::vector<Finding>
run(const Options &opts)
{
    std::vector<std::string> paths = opts.paths;
    bool explicitPaths = !paths.empty();
    if (paths.empty())
        paths = {"src", "tests", "bench", "tools", "examples"};

    std::vector<fs::path> files;
    for (const std::string &p : paths) {
        if (explicitPaths && !fs::exists(opts.root / p))
            throw std::runtime_error("no such path: " +
                                     (opts.root / p).string());
        collect(opts.root, opts.root / p, files);
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    // Lex + run the per-file rules in parallel over the harness pool.
    // Each file writes its own slot, so the merged result is
    // deterministic no matter how the pool schedules the work.
    std::vector<SourceFile> sources(files.size());
    std::vector<std::vector<Finding>> perFile(files.size());
    std::vector<std::string> errors(files.size());
    parallelFor(
        files.size(),
        [&](std::size_t i) {
            try {
                std::string rel =
                    fs::relative(files[i], opts.root).generic_string();
                sources[i] = lexFile(files[i], rel);
                ruleR1(sources[i], perFile[i]);
                ruleR4(sources[i], perFile[i]);
                ruleR5(sources[i], perFile[i]);
                ruleR6(sources[i], perFile[i]);
                ruleR7(sources[i], perFile[i]);
                ruleR8(sources[i], perFile[i]);
                ruleR14(sources[i], perFile[i]);
            } catch (const std::exception &e) {
                errors[i] = e.what();
            }
        },
        opts.jobs);
    for (const std::string &err : errors)
        if (!err.empty())
            throw std::runtime_error(err);

    std::vector<Finding> out;
    for (const std::vector<Finding> &pf : perFile)
        out.insert(out.end(), pf.begin(), pf.end());
    ruleR2(sources, out);
    ruleR3(opts, out);

    // Whole-repo pass: include graph + symbol/use tables (R9..R13).
    runModelRules(buildRepoModel(std::move(sources)), out);

    std::sort(out.begin(), out.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return out;
}

}  // namespace tvarak::lint
