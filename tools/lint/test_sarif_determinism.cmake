# The SARIF document must be byte-identical across repeated runs (no
# timestamps, no absolute paths, parallel scan lands in ordered
# slots). Driven by ctest (lint_sarif_deterministic); needs -DLINT=
# and -DROOT=.

set(out1 ${CMAKE_CURRENT_BINARY_DIR}/lint_run1.sarif)
set(out2 ${CMAKE_CURRENT_BINARY_DIR}/lint_run2.sarif)

foreach(out ${out1} ${out2})
    execute_process(COMMAND ${LINT} --root ${ROOT} --sarif ${out}
                    RESULT_VARIABLE rc
                    OUTPUT_QUIET ERROR_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "tvarak-lint --sarif exited ${rc} on ${ROOT}")
    endif()
endforeach()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${out1} ${out2}
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
    message(FATAL_ERROR "SARIF output differs between identical runs")
endif()
