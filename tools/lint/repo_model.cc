#include "repo_model.hh"

#include <algorithm>

#include "tokens.hh"

namespace tvarak::lint {

namespace {

/**
 * Sanctioned interface headers: files that live in one directory but
 * belong, architecturally, to a lower layer so that both sides of a
 * boundary can include them. Kept deliberately short — every entry is
 * a boundary the design doc (DESIGN.md section 11) has to justify.
 */
const std::pair<const char *, const char *> kModuleOverrides[] = {
    // The trace ABI (record layout + sink interface) is written by
    // the core/mem instrumentation and read by the codec.
    {"src/trace/format.hh", "trace_abi"},
    {"src/trace/sink.hh", "trace_abi"},
    // The design registry's *interface* is consumed by low layers
    // (cache reservations); its implementation stays in redundancy/.
    {"src/redundancy/registry.hh", "design_api"},
    // The cache model is below the core (cores own caches).
    {"src/mem/cache.hh", "cache"},
    // The workload interface is implemented by apps/, driven by the
    // harness.
    {"src/harness/workload.hh", "workload_api"},
};

/** module -> rank in the layering DAG; higher may include lower. */
const std::pair<const char *, int> kModuleRanks[] = {
    {"sim", 0},
    // The data-plane kernel layer sits directly above sim/ and below
    // everything that moves bytes: any module may call kernels, the
    // kernels know nothing but sim/types.
    {"kernels", 1},
    {"checksum", 2},
    {"layout", 2},
    {"trace_abi", 2},
    {"design_api", 2},
    {"nvm", 3},
    {"cache", 3},
    {"core", 4},
    {"mem", 5},
    {"fs", 6},
    {"redundancy", 7},
    {"pmemlib", 8},
    {"workload_api", 9},
    {"apps", 10},
    {"harness", 11},
    {"service", 12},
    {"trace", 12},
    {"bench", 13},
    {"tools", 13},
    {"examples", 13},
    {"tests", 14},
};

}  // namespace

std::string
moduleOf(const std::string &path)
{
    for (const auto &[file, mod] : kModuleOverrides)
        if (path == file)
            return mod;
    for (const char *top : {"bench", "tools", "tests", "examples"})
        if (path.rfind(std::string(top) + "/", 0) == 0)
            return top;
    if (path.rfind("src/", 0) == 0) {
        std::size_t slash = path.find('/', 4);
        if (slash != std::string::npos)
            return path.substr(4, slash - 4);
    }
    return "";
}

int
moduleRank(const std::string &module)
{
    for (const auto &[mod, rank] : kModuleRanks)
        if (module == mod)
            return rank;
    return -1;
}

bool
layerEdgeLegal(const std::string &fromPath, const std::string &toPath)
{
    std::string from = moduleOf(fromPath);
    std::string to = moduleOf(toPath);
    if (from == to)
        return true;
    int rf = moduleRank(from);
    int rt = moduleRank(to);
    if (rf < 0 || rt < 0)
        return true;  // unclassified: not this rule's business
    return rf > rt;
}

std::vector<IncludeEdge>
parseIncludes(const SourceFile &f)
{
    std::vector<IncludeEdge> out;
    for (std::size_t ln = 0; ln < f.code.size(); ln++) {
        std::string t = f.code[ln];
        t.erase(0, t.find_first_not_of(" \t"));
        if (t.rfind("#", 0) != 0)
            continue;
        std::string rest = t.substr(1);
        rest.erase(0, rest.find_first_not_of(" \t"));
        if (rest.rfind("include", 0) != 0)
            continue;
        std::size_t open = rest.find('<');
        std::size_t close = rest.find('>');
        if (open != std::string::npos && close != std::string::npos &&
            close > open) {
            out.push_back({ln + 1,
                           rest.substr(open + 1, close - open - 1), true,
                           IncludeEdge::npos});
            continue;
        }
        // Quoted spec: the lexer blanked it into f.strings.
        for (const auto &lit : f.strings) {
            if (lit.line == ln + 1) {
                out.push_back({ln + 1, lit.value, false,
                               IncludeEdge::npos});
                break;
            }
        }
    }
    return out;
}

RepoModel
buildRepoModel(std::vector<SourceFile> files)
{
    RepoModel m;
    m.files = std::move(files);
    for (std::size_t i = 0; i < m.files.size(); i++)
        m.byPath.emplace(m.files[i].path, i);

    m.includes.resize(m.files.size());
    for (std::size_t i = 0; i < m.files.size(); i++) {
        std::vector<IncludeEdge> edges = parseIncludes(m.files[i]);
        std::string dir;
        std::size_t slash = m.files[i].path.rfind('/');
        if (slash != std::string::npos)
            dir = m.files[i].path.substr(0, slash + 1);
        for (IncludeEdge &e : edges) {
            if (e.angled)
                continue;  // system header: external by definition
            // Mirror the build's include dirs: -Isrc, -I., the file's
            // own directory, and -Itools/lint (test_lint.cc).
            for (const std::string &cand :
                 {"src/" + e.spec, e.spec, dir + e.spec,
                  "tools/lint/" + e.spec}) {
                auto it = m.byPath.find(cand);
                if (it != m.byPath.end()) {
                    e.target = it->second;
                    break;
                }
            }
        }
        m.includes[i] = std::move(edges);
    }
    return m;
}

std::set<std::size_t>
RepoModel::includeClosure(std::size_t file) const
{
    std::set<std::size_t> seen;
    std::vector<std::size_t> stack{file};
    while (!stack.empty()) {
        std::size_t cur = stack.back();
        stack.pop_back();
        if (!seen.insert(cur).second)
            continue;
        for (const IncludeEdge &e : includes[cur])
            if (e.resolved())
                stack.push_back(e.target);
    }
    return seen;
}

bool
RepoModel::closureHas(std::size_t file, const std::string &suffix) const
{
    for (std::size_t i : includeClosure(file))
        if (files[i].path.size() >= suffix.size() &&
            files[i].path.compare(files[i].path.size() - suffix.size(),
                                  suffix.size(), suffix) == 0)
            return true;
    return false;
}

std::vector<std::vector<std::string>>
findIncludeCycles(const RepoModel &m)
{
    // Iterative Tarjan SCC over the resolved include graph.
    const std::size_t n = m.files.size();
    const std::size_t kUnset = static_cast<std::size_t>(-1);
    std::vector<std::size_t> index(n, kUnset), low(n, 0);
    std::vector<bool> onStack(n, false);
    std::vector<std::size_t> sccStack;
    std::size_t next = 0;
    std::vector<std::vector<std::string>> cycles;

    struct Frame {
        std::size_t v;
        std::size_t edge;
    };
    for (std::size_t root = 0; root < n; root++) {
        if (index[root] != kUnset)
            continue;
        std::vector<Frame> call{{root, 0}};
        while (!call.empty()) {
            Frame &fr = call.back();
            std::size_t v = fr.v;
            if (fr.edge == 0) {
                index[v] = low[v] = next++;
                sccStack.push_back(v);
                onStack[v] = true;
            }
            bool descended = false;
            while (fr.edge < m.includes[v].size()) {
                const IncludeEdge &e = m.includes[v][fr.edge++];
                if (!e.resolved())
                    continue;
                std::size_t w = e.target;
                if (index[w] == kUnset) {
                    call.push_back({w, 0});
                    descended = true;
                    break;
                }
                if (onStack[w])
                    low[v] = std::min(low[v], index[w]);
            }
            if (descended)
                continue;
            if (low[v] == index[v]) {
                std::vector<std::string> scc;
                std::size_t w;
                do {
                    w = sccStack.back();
                    sccStack.pop_back();
                    onStack[w] = false;
                    scc.push_back(m.files[w].path);
                } while (w != v);
                bool selfLoop = false;
                for (const IncludeEdge &e : m.includes[v])
                    if (e.resolved() && e.target == v)
                        selfLoop = true;
                if (scc.size() > 1 || selfLoop) {
                    std::sort(scc.begin(), scc.end());
                    cycles.push_back(std::move(scc));
                }
            }
            call.pop_back();
            if (!call.empty())
                low[call.back().v] =
                    std::min(low[call.back().v], low[v]);
        }
    }
    std::sort(cycles.begin(), cycles.end());
    return cycles;
}

}  // namespace tvarak::lint
