/**
 * @file
 * Whole-repo rules R9..R13. Each runs over the RepoModel (include
 * graph + lexed sources) rather than one file at a time:
 *
 *   R9  architecture layering: every resolved include edge must stay
 *       inside one module or point strictly down the layering DAG,
 *       and the file-level include graph must be acyclic.
 *   R10 determinism hazards on stats-feeding paths: rand()/srand(),
 *       std::random_device, wall-clock reads, iteration over
 *       unordered containers, and pointer-keyed ordered containers in
 *       any file whose include closure reaches sim/stats.hh (or that
 *       lives under tools/fault/, tools/trace/ or bench/).
 *   R11 stats dataflow: every Stats counter must be reported by
 *       Stats::dump and incremented somewhere in src/ (and appear in
 *       reset()/statsDiff() when those exist).
 *   R12 config-knob drift: every config field must be read somewhere
 *       in src/ outside sim/config.* — knobs that are dead, or set
 *       but never consulted, silently diverge from the tables.
 *   R13 lock discipline: no naked lock()/unlock() calls in
 *       src/harness/; critical sections use scoped guards.
 */

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "repo_model.hh"
#include "tokens.hh"

namespace tvarak::lint {

namespace {

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

// ---------------------------------------------------------------- R9

void
ruleR9(const RepoModel &m, std::vector<Finding> &out)
{
    for (std::size_t i = 0; i < m.files.size(); i++) {
        const SourceFile &f = m.files[i];
        for (const IncludeEdge &e : m.includes[i]) {
            if (!e.resolved())
                continue;
            const std::string &to = m.files[e.target].path;
            if (layerEdgeLegal(f.path, to))
                continue;
            if (f.allows("R9", e.line))
                continue;
            std::ostringstream msg;
            msg << "upward include: " << moduleOf(f.path) << " (rank "
                << moduleRank(moduleOf(f.path)) << ") must not include "
                << to << " [" << moduleOf(to) << ", rank "
                << moduleRank(moduleOf(to))
                << "]; invert the dependency (callback / interface "
                   "header) or move the shared piece down the DAG "
                   "(DESIGN.md section 11)";
            out.push_back({f.path, e.line, "R9", msg.str()});
        }
    }

    for (const std::vector<std::string> &cycle : findIncludeCycles(m)) {
        // Anchor the finding on the lexicographically-first member's
        // include that stays inside the cycle.
        const std::string &anchor = cycle.front();
        std::size_t idx = m.byPath.at(anchor);
        std::size_t line = 1;
        for (const IncludeEdge &e : m.includes[idx]) {
            if (e.resolved() &&
                std::find(cycle.begin(), cycle.end(),
                          m.files[e.target].path) != cycle.end()) {
                line = e.line;
                break;
            }
        }
        if (m.files[idx].allows("R9", line))
            continue;
        std::ostringstream msg;
        msg << "include cycle: ";
        for (const std::string &p : cycle)
            msg << p << " -> ";
        msg << cycle.front()
            << "; break it with a forward declaration or an interface "
               "header";
        out.push_back({anchor, line, "R9", msg.str()});
    }
}

// --------------------------------------------------------------- R10

/** Is @p file on a path that feeds reported output (stats dumps,
 *  trace/campaign JSON, bench tables)? */
bool
statsSensitive(const RepoModel &m, std::size_t file)
{
    const std::string &p = m.files[file].path;
    if (startsWith(p, "tools/fault/") || startsWith(p, "tools/trace/") ||
        startsWith(p, "bench/"))
        return true;
    return m.closureHas(file, "sim/stats.hh");
}

const char *const kUnorderedContainers[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
};

/** Names declared (variable, member or parameter) with an unordered
 *  container type in @p toks. */
std::set<std::string>
unorderedDeclNames(const std::vector<Tok> &toks)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < toks.size(); i++) {
        if (toks[i].kind != Tok::Ident)
            continue;
        bool isUnordered = false;
        for (const char *c : kUnorderedContainers)
            isUnordered |= toks[i].text == c;
        if (!isUnordered || i + 1 >= toks.size() ||
            toks[i + 1].kind != Tok::Punct || toks[i + 1].text != "<")
            continue;
        // Skip the template argument list.
        std::size_t j = i + 1;
        int depth = 0;
        for (; j < toks.size(); j++) {
            if (toks[j].kind != Tok::Punct)
                continue;
            if (toks[j].text == "<")
                depth++;
            else if (toks[j].text == ">" && --depth == 0) {
                j++;
                break;
            }
        }
        // Past refs/pointers/cv to the declared name, if any.
        while (j < toks.size() &&
               ((toks[j].kind == Tok::Punct &&
                 (toks[j].text == "&" || toks[j].text == "*")) ||
                (toks[j].kind == Tok::Ident && toks[j].text == "const")))
            j++;
        if (j < toks.size() && toks[j].kind == Tok::Ident)
            names.insert(toks[j].text);
    }
    return names;
}

void
ruleR10(const RepoModel &m, std::vector<Finding> &out)
{
    for (std::size_t fi = 0; fi < m.files.size(); fi++) {
        if (!statsSensitive(m, fi))
            continue;
        const SourceFile &f = m.files[fi];
        std::vector<Tok> toks = tokenizeFile(f.code);

        // Unordered-container names visible here: declared in this
        // file or anywhere in its include closure (members declared
        // in a header, iterated in the .cc).
        std::set<std::string> unordered;
        for (std::size_t ci : m.includeClosure(fi)) {
            std::set<std::string> names =
                unorderedDeclNames(tokenizeFile(m.files[ci].code));
            unordered.insert(names.begin(), names.end());
        }

        auto report = [&](std::size_t line, const std::string &what,
                          const std::string &fix) {
            if (f.allows("R10", line))
                return;
            out.push_back({f.path, line, "R10",
                           what + " on a stats/report-feeding path; " +
                               fix});
        };

        for (std::size_t i = 0; i < toks.size(); i++) {
            const Tok &t = toks[i];
            if (t.kind != Tok::Ident)
                continue;
            bool called = i + 1 < toks.size() &&
                toks[i + 1].kind == Tok::Punct && toks[i + 1].text == "(";
            bool member = i > 0 && toks[i - 1].kind == Tok::Punct &&
                (toks[i - 1].text == "." ||
                 (toks[i - 1].text == ">" && i > 1 &&
                  toks[i - 2].text == "-"));

            if ((t.text == "rand" || t.text == "srand") && called &&
                !member) {
                report(t.line, "rand()/srand()",
                       "derive values from the seeded SimConfig RNG or "
                       "a fixed constant");
            } else if (t.text == "random_device") {
                report(t.line, "std::random_device",
                       "seed from SimConfig so runs replay bit-exactly");
            } else if (t.text == "system_clock" ||
                       t.text == "high_resolution_clock") {
                report(t.line, "wall-clock time (std::chrono::" + t.text +
                           ")",
                       "use std::chrono::steady_clock for intervals and "
                       "keep timestamps out of reported output");
            } else if (t.text == "time" && called && !member) {
                report(t.line, "time()",
                       "wall-clock reads make reruns diverge; use a "
                       "fixed seed or steady_clock intervals");
            } else if (t.text == "for" && called) {
                // Range-for over an unordered container: iteration
                // order is implementation-defined.
                int depth = 0;
                std::size_t colon = 0;
                for (std::size_t j = i + 1; j < toks.size(); j++) {
                    if (toks[j].kind != Tok::Punct)
                        continue;
                    if (toks[j].text == "(")
                        depth++;
                    else if (toks[j].text == ")" && --depth == 0)
                        break;
                    else if (toks[j].text == ":" && depth == 1 &&
                             j + 1 < toks.size() &&
                             toks[j + 1].text != ":" &&
                             toks[j - 1].text != ":") {
                        colon = j;
                        break;
                    }
                }
                if (colon != 0 && colon + 2 < toks.size() &&
                    toks[colon + 1].kind == Tok::Ident &&
                    toks[colon + 2].kind == Tok::Punct &&
                    toks[colon + 2].text == ")" &&
                    unordered.count(toks[colon + 1].text)) {
                    report(t.line,
                           "iteration over unordered container '" +
                               toks[colon + 1].text + "'",
                           "copy to a sorted vector (or use "
                           "std::map/std::set) before iterating");
                }
            } else if ((t.text == "map" || t.text == "set") && i >= 2 &&
                       toks[i - 1].text == ":" && toks[i - 2].text == ":" &&
                       i + 1 < toks.size() && toks[i + 1].text == "<") {
                // Pointer-keyed ordered container: ordered by address,
                // which varies run to run.
                int depth = 0;
                for (std::size_t j = i + 1; j < toks.size(); j++) {
                    if (toks[j].kind != Tok::Punct)
                        continue;
                    if (toks[j].text == "<")
                        depth++;
                    else if (toks[j].text == ">") {
                        if (--depth == 0)
                            break;
                    } else if (depth == 1 && toks[j].text == ",") {
                        break;  // key type ends at the first comma
                    } else if (depth == 1 && toks[j].text == "*") {
                        report(t.line,
                               "pointer-keyed std::" + t.text,
                               "pointer order varies run to run; key by "
                               "a stable id instead");
                        break;
                    }
                }
            }
        }
    }
}

// --------------------------------------------------------------- R11

/** Idents appearing in the body of every `name(...) ... {` function
 *  definition in @p toks, keyed by function name. */
std::map<std::string, std::set<std::string>>
functionBodyIdents(const std::vector<Tok> &toks)
{
    std::map<std::string, std::set<std::string>> bodies;
    for (std::size_t i = 0; i + 1 < toks.size(); i++) {
        if (toks[i].kind != Tok::Ident || toks[i + 1].kind != Tok::Punct ||
            toks[i + 1].text != "(")
            continue;
        static const std::set<std::string> kKeywords = {
            "if", "for", "while", "switch", "catch", "return", "sizeof",
        };
        if (kKeywords.count(toks[i].text))
            continue;
        // Match the parameter list.
        std::size_t j = i + 1;
        int depth = 0;
        for (; j < toks.size(); j++) {
            if (toks[j].kind != Tok::Punct)
                continue;
            if (toks[j].text == "(")
                depth++;
            else if (toks[j].text == ")" && --depth == 0) {
                j++;
                break;
            }
        }
        while (j < toks.size() && toks[j].kind == Tok::Ident &&
               (toks[j].text == "const" || toks[j].text == "noexcept" ||
                toks[j].text == "override"))
            j++;
        if (j >= toks.size() || toks[j].kind != Tok::Punct ||
            toks[j].text != "{")
            continue;
        // Capture body idents.
        std::set<std::string> &idents = bodies[toks[i].text];
        depth = 0;
        for (; j < toks.size(); j++) {
            if (toks[j].kind == Tok::Punct && toks[j].text == "{")
                depth++;
            else if (toks[j].kind == Tok::Punct && toks[j].text == "}") {
                if (--depth == 0)
                    break;
            } else if (toks[j].kind == Tok::Ident) {
                idents.insert(toks[j].text);
            }
        }
    }
    return bodies;
}

void
ruleR11(const RepoModel &m, std::vector<Finding> &out)
{
    auto hdrIt = m.byPath.find("src/sim/stats.hh");
    auto srcIt = m.byPath.find("src/sim/stats.cc");
    if (hdrIt == m.byPath.end() || srcIt == m.byPath.end())
        return;
    const SourceFile &hdr = m.files[hdrIt->second];
    const SourceFile &src = m.files[srcIt->second];

    std::vector<ConfigField> fields;
    for (const ConfigField &fld : parseConfigFields(hdr))
        if (fld.structName == "Stats")
            fields.push_back(fld);
    if (fields.empty())
        return;

    std::map<std::string, std::set<std::string>> bodies =
        functionBodyIdents(tokenizeFile(src.code));
    if (!bodies.count("dump"))
        return;

    // "Reported" = reachable from dump()'s body through helper
    // functions defined in stats.cc (runtimeCycles -> maxThreadCycles
    // -> threadCycles).
    std::set<std::string> reported;
    std::vector<std::string> work{"dump"};
    std::set<std::string> visited;
    while (!work.empty()) {
        std::string fn = work.back();
        work.pop_back();
        if (!visited.insert(fn).second)
            continue;
        auto it = bodies.find(fn);
        if (it == bodies.end())
            continue;
        for (const std::string &id : it->second) {
            reported.insert(id);
            work.push_back(id);
        }
    }

    // "Used" = the ident appears in some src/ file other than the
    // stats pair itself (the increment sites).
    std::set<std::string> used;
    for (const SourceFile &f : m.files) {
        if (!startsWith(f.path, "src/") ||
            startsWith(f.path, "src/sim/stats."))
            continue;
        for (const Tok &t : tokenizeFile(f.code))
            if (t.kind == Tok::Ident)
                used.insert(t.text);
    }

    for (const ConfigField &fld : fields) {
        if (hdr.allows("R11", fld.line))
            continue;
        bool isReported = reported.count(fld.name);
        bool isUsed = used.count(fld.name);
        if (isUsed && !isReported) {
            out.push_back({hdr.path, fld.line, "R11",
                           "stats counter '" + fld.name +
                               "' is incremented but never reported by "
                               "Stats::dump — the result silently drops "
                               "it"});
        } else if (isReported && !isUsed) {
            out.push_back({hdr.path, fld.line, "R11",
                           "stats counter '" + fld.name +
                               "' is reported by Stats::dump but never "
                               "incremented anywhere in src/ — it can "
                               "only ever print 0"});
        }
        for (const char *fn : {"reset", "statsDiff"}) {
            auto it = bodies.find(fn);
            if (it != bodies.end() && !it->second.count(fld.name))
                out.push_back({hdr.path, fld.line, "R11",
                               "stats counter '" + fld.name +
                                   "' is missing from " + fn +
                                   "() — stale values survive "
                                   "reset/compare"});
        }
    }
}

// --------------------------------------------------------------- R12

void
ruleR12(const RepoModel &m, std::vector<Finding> &out)
{
    auto cfgIt = m.byPath.find("src/sim/config.hh");
    if (cfgIt == m.byPath.end())
        return;
    const SourceFile &cfg = m.files[cfgIt->second];
    std::vector<ConfigField> fields = parseConfigFields(cfg);
    if (fields.empty())
        return;

    // Member accesses (`.field` / `->field`) across src/, split into
    // reads and writes. bench/tools only *print* the knobs, so they
    // do not count as consumers.
    std::set<std::string> read, written;
    for (const SourceFile &f : m.files) {
        if (!startsWith(f.path, "src/") ||
            startsWith(f.path, "src/sim/config."))
            continue;
        std::vector<Tok> toks = tokenizeFile(f.code);
        for (std::size_t i = 1; i < toks.size(); i++) {
            if (toks[i].kind != Tok::Ident)
                continue;
            bool memberAccess = toks[i - 1].kind == Tok::Punct &&
                (toks[i - 1].text == "." ||
                 (toks[i - 1].text == ">" && i > 1 &&
                  toks[i - 2].text == "-"));
            if (!memberAccess)
                continue;
            bool assigned = i + 1 < toks.size() &&
                toks[i + 1].kind == Tok::Punct &&
                toks[i + 1].text == "=" &&
                (i + 2 >= toks.size() || toks[i + 2].text != "=");
            (assigned ? written : read).insert(toks[i].text);
        }
    }

    for (const ConfigField &fld : fields) {
        if (read.count(fld.name) || cfg.allows("R12", fld.line))
            continue;
        if (written.count(fld.name)) {
            out.push_back({cfg.path, fld.line, "R12",
                           "config knob '" + fld.structName +
                               "::" + fld.name +
                               "' is set but never read in src/ — "
                               "tuning it changes nothing"});
        } else {
            out.push_back({cfg.path, fld.line, "R12",
                           "config knob '" + fld.structName +
                               "::" + fld.name +
                               "' is never read in src/ — dead knob; "
                               "wire it up or delete it"});
        }
    }
}

// --------------------------------------------------------------- R13

void
ruleR13(const RepoModel &m, std::vector<Finding> &out)
{
    for (const SourceFile &f : m.files) {
        if (f.path.find("src/harness/") == std::string::npos &&
            !startsWith(f.path, "harness/"))
            continue;
        std::vector<Tok> toks = tokenizeFile(f.code);
        for (std::size_t i = 1; i + 1 < toks.size(); i++) {
            if (toks[i].kind != Tok::Ident ||
                (toks[i].text != "lock" && toks[i].text != "unlock"))
                continue;
            bool member = toks[i - 1].kind == Tok::Punct &&
                (toks[i - 1].text == "." ||
                 (toks[i - 1].text == ">" && i > 1 &&
                  toks[i - 2].text == "-"));
            bool called = toks[i + 1].kind == Tok::Punct &&
                toks[i + 1].text == "(";
            if (!member || !called || f.allows("R13", toks[i].line))
                continue;
            out.push_back({f.path, toks[i].line, "R13",
                           "naked ." + toks[i].text +
                               "() in the harness; use std::lock_guard "
                               "/ std::scoped_lock / std::unique_lock "
                               "so every exit path releases the mutex"});
        }
    }
}

}  // namespace

void
runModelRules(const RepoModel &m, std::vector<Finding> &out)
{
    ruleR9(m, out);
    ruleR10(m, out);
    ruleR11(m, out);
    ruleR12(m, out);
    ruleR13(m, out);
}

}  // namespace tvarak::lint
