# CLI exit-code contract: 0 clean, 1 findings, 2 usage/IO error.
# Driven by ctest (lint_exit_codes); needs -DLINT= and -DFIXTURES=.

function(expect_exit code)
    execute_process(COMMAND ${LINT} ${ARGN}
                    RESULT_VARIABLE rc
                    OUTPUT_QUIET ERROR_QUIET)
    if(NOT rc EQUAL ${code})
        message(FATAL_ERROR
                "tvarak-lint ${ARGN}: expected exit ${code}, got ${rc}")
    endif()
endfunction()

expect_exit(0 --root ${FIXTURES}/goodroot)
expect_exit(1 --root ${FIXTURES}/badroot)
# Explicitly named path that does not exist: I/O error, not "clean".
expect_exit(2 --root ${FIXTURES}/goodroot no_such_dir)
# Unreadable baseline file: I/O error.
expect_exit(2 --root ${FIXTURES}/goodroot --baseline ${FIXTURES}/absent)
# Unknown flag / missing operand: usage error.
expect_exit(2 --bogus-flag)
expect_exit(2 --root)
