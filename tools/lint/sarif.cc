#include "sarif.hh"

#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace tvarak::lint {

namespace {

/** Rule metadata embedded in the SARIF tool.driver.rules array. */
const std::pair<const char *, const char *> kRules[] = {
    {"R1", "No naked geometry literals in address math"},
    {"R2", "Stats keys registered exactly once in Stats::dump"},
    {"R3", "Config fields documented in bench_table3 and DESIGN.md"},
    {"R4", "Header hygiene: guards, no using namespace at header scope"},
    {"R5", "Timing/energy constants live in sim/config.hh"},
    {"R6", "Raw threading confined to src/harness/"},
    {"R7", "Binary file I/O confined to trace/harness/tools"},
    {"R8", "DesignKind dispatch confined to the design registry"},
    {"R9", "Include edges follow the architecture layering DAG"},
    {"R10", "No nondeterminism on stats/report-feeding paths"},
    {"R11", "Stats counters both incremented and reported"},
    {"R12", "Config knobs read by the simulator, not just declared"},
    {"R13", "No naked lock()/unlock() in the harness"},
};

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::size_t
ruleIndexOf(const std::string &rule)
{
    for (std::size_t i = 0; i < std::size(kRules); i++)
        if (rule == kRules[i].first)
            return i;
    return 0;
}

}  // namespace

std::string
baselineKey(const Finding &f)
{
    return f.file + ": [" + f.rule + "] " + f.message;
}

std::set<std::string>
loadBaseline(const std::filesystem::path &file)
{
    std::ifstream is(file);
    if (!is)
        throw std::runtime_error("cannot read baseline file: " +
                                 file.string());
    std::set<std::string> entries;
    std::string line;
    while (std::getline(is, line)) {
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        line.erase(0, line.find_first_not_of(" \t"));
        line.erase(line.find_last_not_of(" \t") + 1);
        if (!line.empty())
            entries.insert(line);
    }
    return entries;
}

std::string
toSarif(const std::vector<Finding> &findings,
        const std::set<std::string> &baselined)
{
    std::ostringstream os;
    os << "{\n"
       << "  \"$schema\": "
          "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
       << "  \"version\": \"2.1.0\",\n"
       << "  \"runs\": [\n"
       << "    {\n"
       << "      \"tool\": {\n"
       << "        \"driver\": {\n"
       << "          \"name\": \"tvarak-lint\",\n"
       << "          \"rules\": [\n";
    for (std::size_t i = 0; i < std::size(kRules); i++) {
        os << "            {\"id\": \"" << kRules[i].first
           << "\", \"shortDescription\": {\"text\": \""
           << jsonEscape(kRules[i].second) << "\"}}"
           << (i + 1 < std::size(kRules) ? "," : "") << "\n";
    }
    os << "          ]\n"
       << "        }\n"
       << "      },\n"
       << "      \"results\": [\n";
    for (std::size_t i = 0; i < findings.size(); i++) {
        const Finding &f = findings[i];
        os << "        {\n"
           << "          \"ruleId\": \"" << f.rule << "\",\n"
           << "          \"ruleIndex\": " << ruleIndexOf(f.rule) << ",\n"
           << "          \"level\": \"error\",\n"
           << "          \"message\": {\"text\": \""
           << jsonEscape(f.message) << "\"},\n"
           << "          \"locations\": [\n"
           << "            {\n"
           << "              \"physicalLocation\": {\n"
           << "                \"artifactLocation\": {\"uri\": \""
           << jsonEscape(f.file) << "\"},\n"
           << "                \"region\": {\"startLine\": " << f.line
           << "}\n"
           << "              }\n"
           << "            }\n"
           << "          ]";
        if (baselined.count(baselineKey(f)))
            os << ",\n          \"suppressions\": [{\"kind\": "
                  "\"external\"}]";
        os << "\n        }" << (i + 1 < findings.size() ? "," : "")
           << "\n";
    }
    os << "      ]\n"
       << "    }\n"
       << "  ]\n"
       << "}\n";
    return os.str();
}

}  // namespace tvarak::lint
