/**
 * @file
 * SARIF 2.1.0 output and the findings baseline.
 *
 * The SARIF document is byte-deterministic: fixed key order, no
 * timestamps, no absolute paths — two runs over the same tree produce
 * identical bytes, which CI checks by running the analyzer twice.
 *
 * The baseline file (`.lint-baseline` at the repo root) lists known
 * findings to tolerate during a migration, one per line in the
 * line-number-insensitive form `file: [R#] message` (`#` comments and
 * blank lines allowed). Baselined findings still appear in the SARIF
 * document — marked `suppressions: [{kind: "external"}]` — but do not
 * fail the run. The repo ships with an empty baseline: the tree is
 * clean under R1..R14.
 */

#pragma once

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "lint.hh"

namespace tvarak::lint {

/** Line-number-insensitive identity: `file: [R#] message`. */
std::string baselineKey(const Finding &f);

/** Parse a baseline file; throws std::runtime_error if unreadable. */
std::set<std::string> loadBaseline(const std::filesystem::path &file);

/**
 * Render @p findings (already sorted) as a SARIF 2.1.0 document.
 * Findings whose baselineKey appears in @p baselined are emitted with
 * an external suppression.
 */
std::string toSarif(const std::vector<Finding> &findings,
                    const std::set<std::string> &baselined);

}  // namespace tvarak::lint
