/**
 * @file
 * MemorySystem: the execution-driven memory hierarchy all workloads
 * run against, and the integration point for TVARAK.
 *
 * Topology (Table III): per-core L1 and L2, a shared inclusive banked
 * LLC, DRAM, and the NVM array. The active redundancy design (a
 * `Design` from redundancy/registry.hh) reserves its LLC way
 * partitions via reservedLlcWays() and installs a `MemController`
 * hook at the LLC<->NVM boundary: under the TVARAK design that hook
 * verifies every NVM->LLC fill of a DAX line, updates redundancy on
 * every LLC->NVM writeback and captures diffs on clean->dirty LLC
 * transitions. Designs without controller hardware install the null
 * controller and get the full LLC (software schemes issue their
 * redundancy work as ordinary timed accesses).
 *
 * Functional model: caches carry tags/state for timing; *current*
 * values live in flat per-space stores (DRAM buffer, NVM
 * current-value buffer), while the NVM media (at-rest state, where
 * firmware bugs act) is written only at writeback and read at fill
 * time. A fill therefore really observes whatever the (possibly
 * buggy) firmware returns, and TVARAK's verification really catches
 * it. Virtual addresses below kDaxBase are identity-mapped DRAM; DAX
 * addresses translate through a page table maintained by DaxFs.
 *
 * Timing model (documented in DESIGN.md): loads charge the demand
 * path latency to the issuing thread; stores charge
 * storeIssueCycles (store-buffer retirement); writebacks and
 * redundancy updates are off the critical path but consume NVM
 * occupancy and energy; reported runtime is
 * max(slowest thread, busiest DIMM).
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "checksum/gf256.hh"
#include "core/tvarak.hh"
#include "layout/layout.hh"
#include "mem/cache.hh"
#include "nvm/nvm.hh"
#include "sim/config.hh"
#include "sim/hostmem.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tvarak {

namespace trace {
class TraceSink;
}  // namespace trace

class Design;
class MemController;

class MemorySystem
{
  public:
    /** Run under @p design (a registered Design drives all
     *  design-specific behaviour; see redundancy/registry.hh). */
    MemorySystem(const SimConfig &cfg, const Design &design);
    /** Convenience shim: the canonical design for @p kind. */
    MemorySystem(const SimConfig &cfg, DesignKind kind);
    ~MemorySystem();

    /** @name Timed access API (what workloads call) */
    /**@{*/
    void read(int tid, Addr vaddr, void *buf, std::size_t len);
    void write(int tid, Addr vaddr, const void *buf, std::size_t len);
    std::uint64_t read64(int tid, Addr vaddr);
    void write64(int tid, Addr vaddr, std::uint64_t value);
    std::uint32_t read32(int tid, Addr vaddr);
    void write32(int tid, Addr vaddr, std::uint32_t value);
    /** Charge pure compute cycles to a thread. */
    void compute(int tid, Cycles cycles);
    /** Charge software checksum computation over @p bytes. */
    void computeChecksum(int tid, std::size_t bytes);
    /**@}*/

    /** @name Untimed functional access (setup & assertions) */
    /**@{*/
    /** Read the authoritative current value (cache-coherent view). */
    void peek(Addr vaddr, void *buf, std::size_t len) const;
    /**
     * Write bytes functionally. Allowed for DRAM only: NVM content
     * must be produced through timed writes (or DaxFs I/O) so that
     * media, checksums and parity stay consistent.
     */
    void poke(Addr vaddr, const void *buf, std::size_t len);
    /**@}*/

    /** Bump-allocate DRAM for volatile application state. */
    Addr dramAlloc(std::size_t bytes, std::size_t align = kLineBytes);

    /** @name DAX page-table management (used by DaxFs) */
    /**@{*/
    /** Map DAX virtual page index @p vpage to NVM-global @p nvmPage. */
    void mapDaxPage(std::size_t vpage, Addr nvmPage);
    void unmapDaxPage(std::size_t vpage);
    /** Virtual address of DAX virtual page index @p vpage. */
    static Addr daxVaddr(std::size_t vpage)
    {
        return kDaxBase + static_cast<Addr>(vpage) * kPageBytes;
    }
    /** Translate; returns false if unmapped/out of range. */
    bool translate(Addr vaddr, Addr &paddr, bool &isNvm) const;
    /**@}*/

    /** @name Whole-DIMM failure lifecycle (tentpole of the fault model)
     *  failDimm() kills a device mid-workload: its media content is
     *  gone, cached lines survive in SRAM, and every subsequent fill
     *  of a lost line is reconstructed on the fly from cross-DIMM
     *  parity + surviving data (a *degraded read*, charged one device
     *  latency since the surviving DIMMs are read in parallel).
     *  replaceDimm() installs a fresh device; the RebuildEngine
     *  (src/redundancy/rebuild.*) then sweeps it back to full
     *  redundancy while the workload keeps running. */
    /**@{*/
    void failDimm(std::size_t dimm);
    void replaceDimm(std::size_t dimm);
    /**
     * Best-effort reconstruction of @p nvmAddr's content without its
     * home DIMM. Data lines come from parity + stripe siblings (the
     * TVARAK engine's at-rest world for registered pages, the
     * current-value world otherwise); parity lines are recomputed from
     * their stripe members; metadata is not parity protected and comes
     * back as poison.
     *
     * @param charge  account the surviving-DIMM reads (energy,
     *                occupancy) — true on architectural paths, false
     *                for untimed maintenance.
     * @return false iff the content is unrecoverable (metadata).
     */
    bool reconstructLine(Addr nvmAddr, std::uint8_t *out, bool charge);
    /**
     * Install @p data as the current value of @p nvmAddr unless some
     * cache still holds the line (then the cached value is newer).
     * Used by the rebuild engine as it un-degrades lines.
     */
    void refreshCurIfUncached(Addr nvmAddr, const std::uint8_t *data);
    /**
     * Degraded-aware untimed read of data line @p nvmAddr in its
     * redundancy world (at-rest media for TVARAK-registered lines,
     * current value otherwise); reconstructs if the line is degraded.
     * Used by the rebuild engine to recompute checksum metadata.
     */
    void rebuildRead(Addr nvmAddr, std::uint8_t *out);
    /**@}*/

    /** Write back every dirty line everywhere (battery flush). */
    void flushAll();

    /** flushAll() followed by dropping every (now clean) cached line
     *  everywhere — models a cold restart. Subsequent reads re-fill
     *  from the NVM media through the firmware. */
    void dropCaches();

    /**
     * Re-load the current-value store from the NVM media for @p len
     * bytes at @p vaddr (used after out-of-band recovery repaired the
     * media, so cached views reflect the repaired bytes). The touched
     * lines must be clean.
     */
    void refreshFromMedia(Addr vaddr, std::size_t len);

    /** Invalidate-without-writeback is deliberately not offered:
     *  redundancy consistency requires writebacks. */

    /** The active design's serialization identity. */
    DesignKind design() const;
    /** The active design object (policy queries, scheme vending). */
    const Design &designObj() const { return *design_; }
    const SimConfig &config() const { return cfg_; }
    Stats &stats() { return stats_; }
    const Stats &stats() const { return stats_; }
    Layout &layout() { return layout_; }
    NvmArray &nvmArray() { return nvm_; }
    TvarakEngine &tvarak() { return engine_; }

    /** LLC data-partition ways actually available to applications. */
    std::size_t llcDataWays() const { return llcDataWays_; }

    /**
     * The cached Reed-Solomon codec for this layout's n+k geometry
     * (parityCount >= 2 layouts only). Built once on first use;
     * degraded reads, rebuild sweeps, and the software schemes all
     * share it instead of re-deriving the Cauchy matrix per line.
     */
    const RsCode &rsCodec();

    /** @name Access-trace recording (src/trace/)
     *  The sink observes the timed API; when unset (the default) the
     *  only overhead is one pointer compare per call. Components that
     *  record higher-level events (DaxFs, PmemPool, RawCoverage) reach
     *  the sink through here too. */
    /**@{*/
    void setTraceSink(trace::TraceSink *sink) { traceSink_ = sink; }
    trace::TraceSink *traceSink() const { return traceSink_; }
    /**@}*/

    /** @name Machine checkpointing
     *  Save/restore the NVM at-rest image (see NvmArray). Restore
     *  re-syncs the current-value store; caches must be cold. */
    /**@{*/
    bool saveNvmImage(const std::string &path);
    bool loadNvmImage(const std::string &path);
    /**@}*/

  private:
    struct Translation {
        Addr paddr;
        bool isNvm;
    };
    Translation translateOrDie(Addr vaddr) const;

    std::size_t bankOf(Addr paddr) const
    {
        return static_cast<std::size_t>(lineNumber(paddr)) %
            llc_.size();
    }
    static Addr nvmGlobal(Addr paddr) { return paddr - kNvmPhysBase; }

    /** Pointer into the current-value store for @p paddr. */
    std::uint8_t *funcPtr(Addr paddr, bool isNvm);
    const std::uint8_t *funcPtr(Addr paddr, bool isNvm) const;

    /** One line-granular timed access. */
    void accessLine(int tid, Addr vaddr, std::size_t offset,
                    std::size_t len, void *buf, bool isWrite);

    /**
     * Ensure @p paddr is present in the LLC, performing the fill (and
     * TVARAK verification) if needed; handles coherence with other
     * cores' private caches.
     * @return pointer to the LLC line; adds demand latency to @p lat.
     */
    Cache::Line *llcEnsure(int core, Addr paddr, bool isNvm, bool isWrite,
                           Cycles &lat);

    /** Mark an LLC line dirty (captures TVARAK diffs). */
    void markLlcDirty(std::size_t bank, Cache::Line &line);

    /** Next-line prefetch into the LLC on sequential demand misses;
     *  stops at the 4 KB page boundary. Off the demand path.
     *  @return true if any line was actually prefetched (the caller's
     *  probed Line may have been reshuffled and must be re-probed). */
    bool maybePrefetch(std::size_t core, Addr paddr, bool isNvm);
    /** Fill one line into the LLC without demand-latency charging. */
    void prefetchLine(Addr paddr, bool isNvm);

    /** Handle an eviction from an LLC data partition. */
    void llcHandleVictim(std::size_t bank, const Cache::Victim &victim);

    /** Degraded-mode fill of @p g: reconstruct instead of reading the
     *  dead DIMM. @return demand-path cycles. */
    Cycles degradedFill(std::size_t bank, Addr g, std::uint8_t *media);

    /** Reed-Solomon joint decode of @p line's stripe (parityCount >=
     *  2): any n surviving members recover the rest, in whichever
     *  world maintains the stripe's parity. @return false past the
     *  k-failure budget (@p out poisoned). */
    bool reconstructLineRs(Addr line, std::uint8_t *out, bool charge);

    /** One stripe member's value for reconstruction (at-rest for
     *  TVARAK-registered pages, current otherwise). */
    void memberLine(Addr nvmAddr, std::uint8_t *out, bool charge);

    /** True iff @p line's stripe has a TVARAK-registered member, i.e.
     *  the engine maintains the stripe's parity in the at-rest world
     *  (raw superblock writes keep that invariant too). */
    bool stripeIsEngineWorld(Addr line);

    /** Re-derive current values of all degraded lines (cold caches). */
    void refreshDegradedCurrent();

    /** Write one dirty NVM line back to media (controller update
     *  hook). @p forcedByDiffEviction marks writebacks forced by a
     *  diff-partition eviction (the controller uses the handed-over
     *  diff instead of its stored one). */
    void writebackNvmLine(std::size_t bank, Addr paddr,
                          bool forcedByDiffEviction);

    /** Is this NVM-global address checksum/parity storage? */
    bool isRedundancyAddr(Addr nvmAddr) const;

    SimConfig cfg_;
    const Design *design_;
    std::unique_ptr<MemController> ctrl_;  //!< design's LLC/NVM hook
    Stats stats_;
    Layout layout_;
    NvmArray nvm_;
    TvarakEngine engine_;

    std::vector<Cache> l1_;   //!< per core
    std::vector<Cache> l2_;   //!< per core
    std::vector<Cache> llc_;  //!< per bank, data partition only
    std::size_t llcDataWays_;

    HostBuffer dram_;    //!< DRAM current values (huge-page backed)
    HostBuffer nvmCur_;  //!< NVM current values (huge-page backed)
    std::vector<Addr> daxPageTable_;    //!< vpage -> NVM page | kUnmapped
    std::unique_ptr<RsCode> rsCodec_;   //!< lazily built geometry codec
    Addr dramBrk_;
    std::vector<std::uint64_t> lastMissLine_;  //!< per-core stride state
    trace::TraceSink *traceSink_ = nullptr;    //!< access-trace recorder

    static constexpr Addr kUnmapped = ~Addr{0};
};

}  // namespace tvarak

