/**
 * @file
 * A set-associative cache container with LRU replacement.
 *
 * Cache is a *container*, not an agent: hierarchy logic (fills,
 * writebacks, inclusion, coherence) lives in MemorySystem and
 * TvarakController.
 *
 * Payload storage is optional: the application-data caches are
 * tag-only (functional values live in MemorySystem's current-value
 * store), while TVARAK's redundancy caches carry real checksum/parity
 * bytes. Tags live in their own compact array so a way scan touches
 * two host cache lines instead of dragging payloads around — the
 * simulator's hottest loop.
 *
 * LLC way-partitions (paper Section III-D/E) are modelled as separate
 * Cache instances with the same set count and fewer ways, which is
 * exactly way-partitioning of one physical bank: the partitions share
 * nothing and are looked up independently, as the paper specifies
 * ("completely decoupled from the application data partitions").
 */

#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace tvarak {

class Cache
{
  public:
    /** Per-line metadata (payload, if any, lives in a side array). */
    struct Line {
        static constexpr Addr kNoTag = ~Addr{0};

        Addr addr = kNoTag;       //!< full line address (tag+index)
        /** Private-cache presence (used by the LLC): bit per core. */
        std::uint32_t sharers = 0;
        bool dirty = false;
        /** Core whose private hierarchy may hold a dirtier copy. */
        std::int8_t owner = -1;

        bool valid() const { return addr != kNoTag; }
    };

    /** Outcome of an insertion that displaced a valid line. */
    struct Victim {
        bool valid = false;
        Addr addr = 0;
        bool dirty = false;
        std::uint32_t sharers = 0;
        std::int8_t owner = -1;
        std::array<std::uint8_t, kLineBytes> data{};
    };

    /**
     * @param name        for diagnostics.
     * @param sets        power-of-two set count.
     * @param ways        associativity.
     * @param setDivisor  line numbers are divided by this before set
     *                    indexing. Banked caches that receive every
     *                    setDivisor-th line (bank = line % banks) must
     *                    strip the interleave factor, or — whenever
     *                    gcd(banks, sets) > 1 — whole groups of sets
     *                    go unused.
     * @param carriesData allocate payload storage (redundancy caches);
     *                    tag-only otherwise.
     */
    Cache(std::string name, std::size_t sets, std::size_t ways,
          std::size_t setDivisor = 1, bool carriesData = false);

    /** Build from a size in bytes. */
    static Cache fromSize(std::string name, std::size_t bytes,
                          std::size_t ways, std::size_t setDivisor = 1,
                          bool carriesData = false);

    /** Find @p lineAddr; nullptr on miss. Does not update LRU. */
    Line *probe(Addr lineAddr);
    const Line *probe(Addr lineAddr) const;

    /** Mark @p line most recently used. */
    void touch(Line &line) { stamps_[indexOf(line)] = ++stamp_; }

    /**
     * Insert @p lineAddr (must not be present), evicting the LRU line
     * of the set if full.
     * @return reference to the inserted line (payload zeroed, clean).
     */
    Line &insert(Addr lineAddr, Victim &victim);

    /** Drop @p lineAddr if present (no writeback). */
    void invalidate(Addr lineAddr);

    /** Payload bytes of @p line. @pre carriesData. */
    std::uint8_t *dataOf(Line &line);
    const std::uint8_t *dataOf(const Line &line) const;

    /** Apply @p fn to every valid line (flush walks). Template so the
     *  visitor inlines — no std::function indirection per line. */
    template <typename Fn>
    void forEachLine(Fn &&fn)
    {
        for (auto &line : lines_) {
            if (line.valid())
                fn(line);
        }
    }

    /** Drop every line. */
    void reset();

    std::size_t sets() const { return sets_; }
    std::size_t ways() const { return ways_; }
    std::size_t sizeBytes() const { return sets_ * ways_ * kLineBytes; }
    bool carriesData() const { return !data_.empty(); }
    const std::string &name() const { return name_; }

    /** Count of currently valid lines (tests). */
    std::size_t validLines() const;

  private:
    std::size_t setOf(Addr lineAddr) const
    {
        auto n = lineNumber(lineAddr);
        // Most caches are unbanked (divisor 1): skip the 64-bit
        // divide on the hottest lookup path.
        if (setDivisor_ != 1)
            n /= setDivisor_;
        return static_cast<std::size_t>(n) & (sets_ - 1);
    }
    std::size_t indexOf(const Line &line) const
    {
        return static_cast<std::size_t>(&line - lines_.data());
    }

    std::string name_;
    std::size_t sets_;
    std::size_t ways_;
    std::size_t setDivisor_;
    std::uint64_t stamp_ = 0;
    /** Compact tag mirror of lines_[i].addr: the probe scan array. */
    std::vector<Addr> tags_;
    /** Compact LRU stamps, parallel to tags_: the insert() victim
     *  scan reads only these two dense arrays instead of dragging
     *  each way's full Line struct through the host cache. */
    std::vector<std::uint64_t> stamps_;
    std::vector<Line> lines_;
    /** Payloads, parallel to lines_ (empty when tag-only). */
    std::vector<std::array<std::uint8_t, kLineBytes>> data_;
};

}  // namespace tvarak

