#include "mem/memory_system.hh"

#include <algorithm>
#include <cstring>

#include "checksum/checksum.hh"
#include "redundancy/registry.hh"
#include "sim/log.hh"
#include "trace/sink.hh"

namespace tvarak {

namespace {

/** The design's forced config fields applied to a private copy
 *  before any member reads it. */
SimConfig
designAdjusted(SimConfig cfg, const Design &design)
{
    design.adjustConfig(cfg);
    return cfg;
}

}  // namespace

MemorySystem::MemorySystem(const SimConfig &cfg, const Design &design)
    : cfg_(designAdjusted(cfg, design)),
      design_(&design),
      stats_(cfg_.cores, cfg_.nvm.dimms),
      layout_(cfg_.nvm.dimms * cfg_.nvm.dimmBytes, cfg_.nvm.dimms,
              cfg_.nvm.parityDimms),
      // cfg_ (declared first) is the object's own copy; engine_ keeps
      // a reference to its SimConfig, so it must not see the caller's
      // possibly-temporary argument.
      nvm_(cfg_.nvm, cfg_, stats_),
      engine_(cfg_, layout_, nvm_, stats_),
      dram_(cfg_.dram.sizeBytes),
      nvmCur_(cfg_.nvm.dimms * cfg_.nvm.dimmBytes),
      dramBrk_(kLineBytes)  // never hand out address 0
{
    cfg_.validate();
    // A failure-domain fault takes out dimmsPerDomain DIMMs at once;
    // grouping DIMMs into multi-DIMM domains is only meaningful when
    // the active design can decode through a whole-domain loss.
    fatal_if(cfg_.nvm.dimmsPerDomain > 1 &&
                 cfg_.nvm.dimmsPerDomain > design.survivableFailures(),
             "nvm.dimmsPerDomain (%zu) exceeds design '%s' "
             "survivable failures (%zu)",
             cfg_.nvm.dimmsPerDomain, design.cliName().c_str(),
             design.survivableFailures());
    // The design's hardware borrows LLC ways for its partitions;
    // designs without controller hardware (and disabled ablation
    // elements) leave those ways to application data.
    llcDataWays_ = cfg_.llcBank.ways - design.reservedLlcWays(cfg_);
    std::size_t llc_sets =
        cfg_.llcBank.sizeBytes / (cfg_.llcBank.ways * kLineBytes);
    for (std::size_t c = 0; c < cfg_.cores; c++) {
        l1_.push_back(Cache::fromSize("l1-" + std::to_string(c),
                                      cfg_.l1.sizeBytes, cfg_.l1.ways));
        l2_.push_back(Cache::fromSize("l2-" + std::to_string(c),
                                      cfg_.l2.sizeBytes, cfg_.l2.ways));
    }
    for (std::size_t b = 0; b < cfg_.llcBanks; b++) {
        llc_.emplace_back("llc-" + std::to_string(b), llc_sets,
                          llcDataWays_, cfg_.llcBanks);
    }
    std::size_t vpages = layout_.allocatableDataPages();
    daxPageTable_.assign(vpages, kUnmapped);
    lastMissLine_.assign(cfg_.cores, ~std::uint64_t{0});
    ctrl_ = design.makeController(*this);
}

MemorySystem::MemorySystem(const SimConfig &cfg, DesignKind kind)
    : MemorySystem(cfg, designOf(kind))
{}

MemorySystem::~MemorySystem() = default;

DesignKind
MemorySystem::design() const
{
    return design_->kind();
}

const RsCode &
MemorySystem::rsCodec()
{
    if (!rsCodec_) {
        rsCodec_ = std::make_unique<RsCode>(layout_.dataCount(),
                                            layout_.parityCount());
    }
    return *rsCodec_;
}

//
// Translation & functional plumbing
//

bool
MemorySystem::translate(Addr vaddr, Addr &paddr, bool &isNvm) const
{
    if (vaddr >= kNvmDirectBase) {
        Addr g = vaddr - kNvmDirectBase;
        if (g >= nvmCur_.size())
            return false;
        paddr = kNvmPhysBase + g;
        isNvm = true;
        return true;
    }
    if (!isDaxAddr(vaddr)) {
        if (vaddr >= dram_.size())
            return false;
        paddr = vaddr;
        isNvm = false;
        return true;
    }
    std::size_t vpage =
        static_cast<std::size_t>((vaddr - kDaxBase) / kPageBytes);
    if (vpage >= daxPageTable_.size() ||
        daxPageTable_[vpage] == kUnmapped) {
        return false;
    }
    paddr = kNvmPhysBase + daxPageTable_[vpage] + pageOffset(vaddr);
    isNvm = true;
    return true;
}

MemorySystem::Translation
MemorySystem::translateOrDie(Addr vaddr) const
{
    Translation t{};
    panic_if(!translate(vaddr, t.paddr, t.isNvm),
             "access to unmapped address %llx",
             static_cast<unsigned long long>(vaddr));
    return t;
}

std::uint8_t *
MemorySystem::funcPtr(Addr paddr, bool isNvm)
{
    if (isNvm)
        return nvmCur_.data() + nvmGlobal(paddr);
    return dram_.data() + paddr;
}

const std::uint8_t *
MemorySystem::funcPtr(Addr paddr, bool isNvm) const
{
    return const_cast<MemorySystem *>(this)->funcPtr(paddr, isNvm);
}

Addr
MemorySystem::dramAlloc(std::size_t bytes, std::size_t align)
{
    dramBrk_ = (dramBrk_ + align - 1) & ~static_cast<Addr>(align - 1);
    Addr base = dramBrk_;
    fatal_if(base + bytes > dram_.size(),
             "DRAM exhausted: need %zu more bytes", bytes);
    dramBrk_ += bytes;
    return base;
}

void
MemorySystem::mapDaxPage(std::size_t vpage, Addr nvmPage)
{
    panic_if(vpage >= daxPageTable_.size(), "vpage out of range");
    panic_if(daxPageTable_[vpage] != kUnmapped, "vpage already mapped");
    daxPageTable_[vpage] = nvmPage;
}

void
MemorySystem::unmapDaxPage(std::size_t vpage)
{
    panic_if(vpage >= daxPageTable_.size() ||
                 daxPageTable_[vpage] == kUnmapped,
             "unmap of unmapped vpage");
    daxPageTable_[vpage] = kUnmapped;
}

void
MemorySystem::peek(Addr vaddr, void *buf, std::size_t len) const
{
    auto *out = static_cast<std::uint8_t *>(buf);
    while (len > 0) {
        Translation t = translateOrDie(vaddr);
        std::size_t chunk =
            std::min(len, kPageBytes - pageOffset(vaddr));
        std::memcpy(out, funcPtr(t.paddr, t.isNvm), chunk);
        vaddr += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
MemorySystem::poke(Addr vaddr, const void *buf, std::size_t len)
{
    panic_if(isDaxAddr(vaddr),
             "poke into NVM is forbidden; use timed writes or DaxFs");
    panic_if(vaddr + len > dram_.size(), "poke out of DRAM range");
    std::memcpy(dram_.data() + vaddr, buf, len);
}

//
// Timed access path
//

void
MemorySystem::read(int tid, Addr vaddr, void *buf, std::size_t len)
{
    if (traceSink_ != nullptr && traceSink_->active())
        traceSink_->onRead(tid, vaddr, len);
    auto *out = static_cast<std::uint8_t *>(buf);
    while (len > 0) {
        std::size_t off = lineOffset(vaddr);
        std::size_t chunk = std::min(len, kLineBytes - off);
        accessLine(tid, lineBase(vaddr), off, chunk, out, false);
        vaddr += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
MemorySystem::write(int tid, Addr vaddr, const void *buf, std::size_t len)
{
    if (traceSink_ != nullptr && traceSink_->active())
        traceSink_->onWrite(tid, vaddr, buf, len);
    const auto *in = static_cast<const std::uint8_t *>(buf);
    while (len > 0) {
        std::size_t off = lineOffset(vaddr);
        std::size_t chunk = std::min(len, kLineBytes - off);
        accessLine(tid, lineBase(vaddr), off, chunk,
                   const_cast<std::uint8_t *>(in), true);
        vaddr += chunk;
        in += chunk;
        len -= chunk;
    }
}

std::uint64_t
MemorySystem::read64(int tid, Addr vaddr)
{
    std::uint64_t v;
    read(tid, vaddr, &v, 8);
    return v;
}

void
MemorySystem::write64(int tid, Addr vaddr, std::uint64_t value)
{
    write(tid, vaddr, &value, 8);
}

std::uint32_t
MemorySystem::read32(int tid, Addr vaddr)
{
    std::uint32_t v;
    read(tid, vaddr, &v, 4);
    return v;
}

void
MemorySystem::write32(int tid, Addr vaddr, std::uint32_t value)
{
    write(tid, vaddr, &value, 4);
}

void
MemorySystem::compute(int tid, Cycles cycles)
{
    if (traceSink_ != nullptr && traceSink_->active())
        traceSink_->onCompute(tid, cycles);
    // Thread ids alias onto cores; work by two tids on one core
    // serializes, so accumulating per core is the fixed-work view.
    stats_.threadCycles[static_cast<std::size_t>(tid) % l1_.size()] +=
        cycles;
}

void
MemorySystem::computeChecksum(int tid, std::size_t bytes)
{
    bool rec = traceSink_ != nullptr && traceSink_->active();
    if (rec)
        traceSink_->onComputeChecksum(tid, bytes);
    // Suspend over the body: the internal compute() charge belongs to
    // this event and must not be recorded separately.
    trace::SinkSuspend guard(rec ? traceSink_ : nullptr);
    stats_.swChecksumBytes += bytes;
    compute(tid, static_cast<Cycles>(
                     static_cast<double>(bytes) /
                     cfg_.swChecksumBytesPerCycle));
}

void
MemorySystem::accessLine(int tid, Addr vaddr, std::size_t offset,
                         std::size_t len, void *buf, bool isWrite)
{
    Translation t = translateOrDie(vaddr);
    auto core = static_cast<std::size_t>(tid) % l1_.size();
    Cycles lat = 0;

    stats_.l1Accesses++;
    Cache &l1 = l1_[core];
    Cache::Line *l1_line = l1.probe(t.paddr);
    if (l1_line != nullptr) {
        stats_.l1Energy += cfg_.l1.hitEnergy;
        l1.touch(*l1_line);
        lat += cfg_.l1.latency;
    } else {
        stats_.l1Energy += cfg_.l1.missEnergy;
        stats_.l1Misses++;
        lat += cfg_.l1.latency;

        stats_.l2Accesses++;
        Cache &l2 = l2_[core];
        Cache::Line *l2_line = l2.probe(t.paddr);
        if (l2_line != nullptr) {
            stats_.l2Energy += cfg_.l2.hitEnergy;
            l2.touch(*l2_line);
            lat += cfg_.l2.latency;
        } else {
            stats_.l2Energy += cfg_.l2.missEnergy;
            stats_.l2Misses++;
            lat += cfg_.l2.latency;

            llcEnsure(static_cast<int>(core), t.paddr, t.isNvm, isWrite,
                      lat);

            // Fill L2 (inclusive of L1).
            Cache::Victim victim;
            l2_line = &l2.insert(t.paddr, victim);
            if (victim.valid) {
                bool dirty = victim.dirty;
                if (Cache::Line *v1 = l1.probe(victim.addr)) {
                    dirty = dirty || v1->dirty;
                    l1.invalidate(victim.addr);
                }
                if (dirty) {
                    std::size_t vbank = bankOf(victim.addr);
                    Cache::Line *llc_victim =
                        llc_[vbank].probe(victim.addr);
                    panic_if(llc_victim == nullptr,
                             "LLC inclusion violated (L2 victim)");
                    markLlcDirty(vbank, *llc_victim);
                }
            }
        }

        // Fill L1.
        Cache::Victim victim;
        l1_line = &l1.insert(t.paddr, victim);
        if (victim.valid && victim.dirty) {
            Cache::Line *l2_home = l2.probe(victim.addr);
            panic_if(l2_home == nullptr,
                     "L2 inclusion violated (L1 victim)");
            l2_home->dirty = true;
        }
    }

    // Functional data movement against the current-value store.
    // Cycles are charged straight to the already-resolved core —
    // going through compute(tid, ...) would redo the tid->core
    // modulo on every single access.
    std::uint8_t *cur = funcPtr(t.paddr, t.isNvm);
    if (isWrite) {
        std::memcpy(cur + offset, buf, len);
        l1_line->dirty = true;
        // Stores drain through the store queue: only a fraction of
        // the miss path stalls the thread.
        stats_.threadCycles[core] +=
            cfg_.storeIssueCycles +
            static_cast<Cycles>(cfg_.storeMissLatencyFactor *
                                static_cast<double>(lat));
    } else {
        std::memcpy(buf, cur + offset, len);
        stats_.threadCycles[core] += lat;
    }
}

bool
MemorySystem::isRedundancyAddr(Addr nvmAddr) const
{
    return layout_.isMetaAddr(nvmAddr) ||
        (layout_.isDataAddr(nvmAddr) && layout_.isParityPage(nvmAddr));
}

Cache::Line *
MemorySystem::llcEnsure(int core, Addr paddr, bool isNvm, bool isWrite,
                        Cycles &lat)
{
    std::size_t bank = bankOf(paddr);
    Cache &llc = llc_[bank];
    stats_.llcAccesses++;
    lat += cfg_.llcBank.latency;

    Cache::Line *line = llc.probe(paddr);
    if (line != nullptr) {
        stats_.llcEnergy += cfg_.llcBank.hitEnergy;
        llc.touch(*line);
        // Keep a running stream alive: demand hits on prefetched
        // lines must extend the prefetch window, or the prefetcher
        // stalls on its own success.
        if (!isWrite)
            maybePrefetch(static_cast<std::size_t>(core), paddr, isNvm);
    } else {
        stats_.llcEnergy += cfg_.llcBank.missEnergy;
        stats_.llcMisses++;
        if (isNvm) {
            Addr g = nvmGlobal(paddr);
            std::uint8_t media[kLineBytes];
            if (nvm_.anyDegraded() && nvm_.lineDegraded(g)) {
                lat += degradedFill(bank, g, media);
            } else {
                lat += nvm_.access(g, false, media, isRedundancyAddr(g));
                lat += ctrl_->fillLine(bank, g, media);
            }
            // The fill's view becomes the architectural value.
            std::memcpy(funcPtr(paddr, true), media, kLineBytes);
        } else {
            stats_.dramReads++;
            stats_.dramEnergy += cfg_.dram.accessEnergy;
            lat += cfg_.nsToCycles(cfg_.dram.accessNs);
        }
        Cache::Victim victim;
        line = &llc.insert(paddr, victim);
        llcHandleVictim(bank, victim);
        if (!isWrite &&
            // The next-line prefetcher trains on load misses only;
            // store streams drain through the store queue instead.
            maybePrefetch(static_cast<std::size_t>(core), paddr,
                          isNvm)) {
            line = llc.probe(paddr);  // prefetch reshuffled the set
            panic_if(line == nullptr, "demand line lost during prefetch");
        }
    }

    // Coherence with other cores' private copies.
    std::uint32_t others =
        line->sharers & ~(1u << static_cast<unsigned>(core));
    if (others != 0) {
        for (std::size_t c = 0; c < l1_.size(); c++) {
            if (!(others & (1u << c)))
                continue;
            bool dirty = false;
            if (Cache::Line *p = l1_[c].probe(paddr)) {
                dirty = dirty || p->dirty;
                if (isWrite)
                    l1_[c].invalidate(paddr);
                else
                    p->dirty = false;
            }
            if (Cache::Line *p = l2_[c].probe(paddr)) {
                dirty = dirty || p->dirty;
                if (isWrite)
                    l2_[c].invalidate(paddr);
                else
                    p->dirty = false;
            }
            if (dirty)
                markLlcDirty(bank, *line);
            if (isWrite)
                line->sharers &= ~(1u << c);
        }
    }
    line->sharers |= 1u << static_cast<unsigned>(core);
    return line;
}

bool
MemorySystem::maybePrefetch(std::size_t core, Addr paddr, bool isNvm)
{
    std::uint64_t line_no = lineNumber(paddr);
    std::uint64_t prev = lastMissLine_[core];
    lastMissLine_[core] = line_no;
    if (cfg_.prefetchDegree == 0 || line_no != prev + 1)
        return false;
    bool issued = false;
    for (std::size_t i = 1; i <= cfg_.prefetchDegree; i++) {
        Addr next = paddr + i * kLineBytes;
        if (pageBase(next) != pageBase(paddr))
            break;  // hardware prefetchers stop at page boundaries
        if (!isNvm && next >= dram_.size())
            break;
        prefetchLine(next, isNvm);
        issued = true;
    }
    return issued;
}

void
MemorySystem::prefetchLine(Addr paddr, bool isNvm)
{
    std::size_t bank = bankOf(paddr);
    Cache &llc = llc_[bank];
    if (llc.probe(paddr) != nullptr)
        return;
    stats_.llcAccesses++;
    stats_.llcEnergy += cfg_.llcBank.missEnergy;
    stats_.llcMisses++;
    if (isNvm) {
        Addr g = nvmGlobal(paddr);
        std::uint8_t media[kLineBytes];
        if (nvm_.anyDegraded() && nvm_.lineDegraded(g)) {
            degradedFill(bank, g, media);
        } else {
            nvm_.access(g, false, media, isRedundancyAddr(g));
            // Prefetches are off the demand path: verification
            // happens (energy, stats) but its cycles are discarded.
            (void)ctrl_->fillLine(bank, g, media);
        }
        std::memcpy(funcPtr(paddr, true), media, kLineBytes);
    } else {
        stats_.dramReads++;
        stats_.dramEnergy += cfg_.dram.accessEnergy;
    }
    Cache::Victim victim;
    llc.insert(paddr, victim);
    llcHandleVictim(bank, victim);
}

void
MemorySystem::markLlcDirty(std::size_t bank, Cache::Line &line)
{
    line.dirty = true;
    if (!isNvmPhys(line.addr))
        return;
    Addr g = nvmGlobal(line.addr);
    if (auto evicted = ctrl_->captureDirty(bank, g)) {
        // A diff-partition eviction forces an early writeback of the
        // victim's data line; the data line itself stays cached, clean.
        Cache::Line *victim_line =
            llc_[bank].probe(kNvmPhysBase + *evicted);
        panic_if(victim_line == nullptr || !victim_line->dirty,
                 "diff stored for a non-dirty LLC line");
        writebackNvmLine(bank, victim_line->addr, true);
        victim_line->dirty = false;
    }
}

void
MemorySystem::writebackNvmLine(std::size_t bank, Addr paddr,
                               bool forcedByDiffEviction)
{
    Addr g = nvmGlobal(paddr);
    std::uint8_t *cur = funcPtr(paddr, true);
    ctrl_->writeback(bank, g, cur, forcedByDiffEviction);
    if (nvm_.anyDegraded() && nvm_.writeBlocked(g)) {
        // The home DIMM is dead: the data write is dropped — but the
        // redundancy update above already absorbed the new value into
        // parity, so a degraded read reconstructs it. The write is
        // lost only where no scheme maintains parity, and then it is
        // *detectably* lost (checksums) or pinned as unprotected
        // (Baseline).
        stats_.degradedWritesDropped++;
        return;
    }
    nvm_.access(g, true, cur, isRedundancyAddr(g));
}

void
MemorySystem::llcHandleVictim(std::size_t bank,
                              const Cache::Victim &victim)
{
    if (!victim.valid)
        return;
    // A dirty NVM victim ends in updateRedundancy's old-line media
    // read — a near-guaranteed host cache miss into the big media
    // array. Start that miss now so it overlaps the back-invalidation
    // probes and the controller dispatch (host-side only, no simulated
    // effect; spurious for clean victims, which is harmless).
    if (isNvmPhys(victim.addr))
        nvm_.prefetchRaw(nvmGlobal(victim.addr));
    bool dirty = victim.dirty;
    // Back-invalidate private copies (strict inclusion).
    if (victim.sharers != 0) {
        for (std::size_t c = 0; c < l1_.size(); c++) {
            if (!(victim.sharers & (1u << c)))
                continue;
            if (Cache::Line *p = l1_[c].probe(victim.addr)) {
                dirty = dirty || p->dirty;
                l1_[c].invalidate(victim.addr);
            }
            if (Cache::Line *p = l2_[c].probe(victim.addr)) {
                dirty = dirty || p->dirty;
                l2_[c].invalidate(victim.addr);
            }
        }
    }
    if (isNvmPhys(victim.addr)) {
        Addr g = nvmGlobal(victim.addr);
        if (dirty) {
            writebackNvmLine(bank, victim.addr, false);
        } else {
            ctrl_->dropVictim(bank, g);
        }
    } else if (dirty) {
        stats_.dramWrites++;
        stats_.dramEnergy += cfg_.dram.accessEnergy;
    }
}

void
MemorySystem::failDimm(std::size_t dimm)
{
    // A second fault on a DIMM that was mid-rebuild throws that
    // rebuild's progress away: the sweep must start over once the
    // device is replaced again. Counted here (not in the engine's
    // resync) so the accounting does not depend on whether an engine
    // happened to observe the fail/replace transition.
    if (nvm_.dimmState(dimm) == NvmArray::DimmState::Rebuilding)
        stats_.rebuildRestarts++;
    // Order matters: the array flips the DIMM state and poisons its
    // media first, so everything below sees the degraded world.
    nvm_.failDimm(dimm);
    // Cached redundancy lines homed on the dead DIMM could never be
    // written back; the rebuild engine recomputes them from data.
    engine_.invalidateRedLinesOfDimm(dimm);
    // Current values that no cache still holds are architecturally
    // lost until reconstructed. Poison them so any path that consumes
    // one without going through a (reconstructing) fill is loudly
    // wrong, never silently stale. LLC inclusion makes the LLC probe
    // cover the private levels too.
    for (Addr m = 0; m < cfg_.nvm.dimmBytes; m += kLineBytes) {
        Addr paddr = kNvmPhysBase + nvm_.globalAddrOf(dimm, m);
        if (llc_[bankOf(paddr)].probe(paddr) == nullptr) {
            std::memset(funcPtr(paddr, true), NvmDimm::kPoisonByte,
                        kLineBytes);
        }
    }
}

void
MemorySystem::replaceDimm(std::size_t dimm)
{
    nvm_.replaceDimm(dimm);
}

void
MemorySystem::memberLine(Addr nvmAddr, std::uint8_t *out, bool charge)
{
    if (ctrl_->atRestLine(nvmAddr)) {
        // At-rest-world designs maintain parity against media values.
        nvm_.rawRead(nvmAddr, out, kLineBytes);
    } else {
        // Software schemes update parity synchronously with the data
        // write (DaxFs pwrite; TxB schemes at commit), i.e. against
        // current values.
        std::memcpy(out, funcPtr(kNvmPhysBase + nvmAddr, true),
                    kLineBytes);
    }
    if (charge)
        nvm_.charge(nvmAddr, false, false);
}

bool
MemorySystem::stripeIsEngineWorld(Addr line)
{
    if (!design_->engineCoversDaxData())
        return false;
    std::vector<Addr> pages;
    layout_.stripeDataPages(line, pages);
    for (Addr p : pages) {
        if (engine_.isDaxData(p))
            return true;
    }
    return false;
}

bool
MemorySystem::reconstructLine(Addr nvmAddr, std::uint8_t *out, bool charge)
{
    Addr line = lineBase(nvmAddr);
    if (layout_.isMetaAddr(line)) {
        // Checksum metadata is not parity protected: its content is
        // gone with the DIMM. Loud poison turns every downstream
        // checksum consumer's mismatch into a *detected* loss instead
        // of a silent wrong answer; the rebuild engine recomputes the
        // slots from data.
        std::memset(out, NvmDimm::kPoisonByte, kLineBytes);
        return false;
    }
    if (!layout_.isDataAddr(line)) {
        // Capacity beyond the last full stripe is never allocated.
        std::memset(out, 0, kLineBytes);
        return true;
    }
    if (layout_.parityCount() > 1)
        return reconstructLineRs(line, out, charge);
    Addr off = pageOffset(line);
    std::vector<Addr> pages;
    layout_.stripeDataPages(line, pages);
    bool engine_world = stripeIsEngineWorld(line);
    if (layout_.isParityPage(line)) {
        // A parity member is the XOR of its stripe's data members, in
        // whichever world maintains this stripe's parity. A second
        // dead member makes the recompute undecodable: known erasure
        // overflow, loud poison.
        if (nvm_.anyDegraded()) {
            for (Addr page : pages) {
                if (nvm_.lineDegraded(page + off)) {
                    std::memset(out, NvmDimm::kPoisonByte, kLineBytes);
                    return false;
                }
            }
        }
        std::memset(out, 0, kLineBytes);
        for (Addr page : pages) {
            std::uint8_t sib[kLineBytes];
            if (engine_world)
                nvm_.rawRead(page + off, sib, kLineBytes);
            else
                memberLine(page + off, sib, false);
            if (charge)
                nvm_.charge(page + off, false, false);
            xorLine(out, sib);
        }
        return true;
    }
    Addr parity_line = layout_.parityLineOf(line);
    if (engine_world) {
        // At-rest world: the engine reads parity through its coherent
        // caches and the siblings from raw media (it poisons on
        // erasure overflow).
        bool ok = engine_.reconstructFromParity(line, out);
        if (charge) {
            nvm_.charge(parity_line, false, true);
            for (Addr page : pages) {
                if (page != pageBase(line))
                    nvm_.charge(page + off, false, false);
            }
        }
        return ok;
    }
    // Software world: single parity needs every other member alive.
    if (nvm_.anyDegraded()) {
        bool overflow = nvm_.lineDegraded(parity_line);
        for (Addr page : pages) {
            if (page != pageBase(line))
                overflow = overflow || nvm_.lineDegraded(page + off);
        }
        if (overflow) {
            std::memset(out, NvmDimm::kPoisonByte, kLineBytes);
            return false;
        }
    }
    std::memcpy(out, funcPtr(kNvmPhysBase + parity_line, true),
                kLineBytes);
    if (charge)
        nvm_.charge(parity_line, false, true);
    for (Addr page : pages) {
        if (page == pageBase(line))
            continue;
        std::uint8_t sib[kLineBytes];
        memberLine(page + off, sib, charge);
        xorLine(out, sib);
    }
    return true;
}

bool
MemorySystem::reconstructLineRs(Addr line, std::uint8_t *out, bool charge)
{
    const std::size_t n = layout_.dataCount();
    const std::size_t k = layout_.parityCount();
    Addr off = pageOffset(line);
    std::vector<Addr> pages;
    layout_.stripeDataPages(line, pages);  // coding-index order
    bool engine_world = stripeIsEngineWorld(line);

    std::vector<std::array<std::uint8_t, kLineBytes>> bufs(n + k);
    std::vector<std::uint8_t *> ptrs(n + k);
    std::vector<Addr> addrs(n + k);
    bool present[255];
    for (std::size_t i = 0; i < n; i++)
        addrs[i] = pages[i] + off;
    for (std::size_t j = 0; j < k; j++)
        addrs[n + j] = layout_.parityLineOf(line, j);

    std::size_t target = n + k;
    for (std::size_t m = 0; m < n + k; m++) {
        ptrs[m] = bufs[m].data();
        // The target is always an erasure, even when its media is
        // readable: trusting its bytes would return them unchanged.
        present[m] =
            addrs[m] != line && !nvm_.lineDegraded(addrs[m]);
        if (addrs[m] == line)
            target = m;
        if (!present[m])
            continue;
        if (!engine_world) {
            // Software-maintained stripes update parity synchronously
            // with the data write, i.e. in current values.
            memberLine(addrs[m], ptrs[m], false);
        } else if (m >= n) {
            // Authoritative parity may be dirty in the engine caches.
            engine_.peekRedLine(addrs[m], ptrs[m]);
        } else {
            nvm_.rawRead(addrs[m], ptrs[m], kLineBytes);
        }
        if (charge)
            nvm_.charge(addrs[m], false, m >= n);
    }
    panic_if(target == n + k, "reconstructLineRs: %llx not in stripe",
             static_cast<unsigned long long>(line));

    if (!rsCodec().decode(ptrs.data(), present)) {
        // More members lost than the code tolerates: loud poison so
        // every downstream checksum consumer sees a *detected* loss.
        std::memset(out, NvmDimm::kPoisonByte, kLineBytes);
        return false;
    }
    std::memcpy(out, ptrs[target], kLineBytes);
    return true;
}

Cycles
MemorySystem::degradedFill(std::size_t bank, Addr g, std::uint8_t *media)
{
    stats_.degradedReads++;
    if (nvm_.degradedCount() >= 2)
        stats_.degradedReadsMulti++;
    if (!reconstructLine(g, media, true)) {
        // Erasure overflow is detected at decode time, independent of
        // whether this line's checksum storage survived.
        stats_.corruptionsDetected++;
    }
    // The surviving DIMMs are read in parallel: one device latency on
    // the demand path (per-member occupancy and energy are charged by
    // reconstructLine above).
    Cycles lat = nvm_.readLatency();
    lat += ctrl_->verifyReconstructed(bank, g, media);
    return lat;
}

void
MemorySystem::refreshCurIfUncached(Addr nvmAddr, const std::uint8_t *data)
{
    Addr paddr = kNvmPhysBase + lineBase(nvmAddr);
    if (llc_[bankOf(paddr)].probe(paddr) == nullptr)
        std::memcpy(funcPtr(paddr, true), data, kLineBytes);
}

void
MemorySystem::rebuildRead(Addr nvmAddr, std::uint8_t *out)
{
    Addr line = lineBase(nvmAddr);
    if (nvm_.anyDegraded() && nvm_.lineDegraded(line))
        reconstructLine(line, out, false);
    else
        memberLine(line, out, false);
}

void
MemorySystem::refreshDegradedCurrent()
{
    std::uint8_t buf[kLineBytes];
    for (std::size_t d = 0; d < cfg_.nvm.dimms; d++) {
        if (nvm_.dimmState(d) == NvmArray::DimmState::Healthy)
            continue;
        Addr start = nvm_.dimmState(d) == NvmArray::DimmState::Rebuilding
            ? nvm_.rebuildWatermark(d)
            : 0;
        for (Addr m = start; m < cfg_.nvm.dimmBytes; m += kLineBytes) {
            Addr g = nvm_.globalAddrOf(d, m);
            reconstructLine(g, buf, false);
            std::memcpy(funcPtr(kNvmPhysBase + g, true), buf,
                        kLineBytes);
        }
    }
}

bool
MemorySystem::saveNvmImage(const std::string &path)
{
    // Only flushed (at-rest) state survives a power cycle.
    flushAll();
    return nvm_.saveImage(path);
}

bool
MemorySystem::loadNvmImage(const std::string &path)
{
    if (!nvm_.loadImage(path))
        return false;
    dropCaches();  // cold machine; current values = media
    return true;
}

void
MemorySystem::dropCaches()
{
    if (traceSink_ != nullptr && traceSink_->active())
        traceSink_->onDropCaches();
    flushAll();
    for (auto &c : l1_)
        c.reset();
    for (auto &c : l2_)
        c.reset();
    for (auto &c : llc_)
        c.reset();
    engine_.dropCleanState();
    // Re-sync the current-value store with the media so the cold
    // state is exactly what fills will observe.
    nvm_.rawRead(0, nvmCur_.data(), nvmCur_.size());
    // A degraded DIMM's media reads as poison; re-derive whatever is
    // recoverable so cold fills observe the reconstructed values.
    if (nvm_.anyDegraded())
        refreshDegradedCurrent();
}

void
MemorySystem::refreshFromMedia(Addr vaddr, std::size_t len)
{
    while (len > 0) {
        Translation t = translateOrDie(vaddr);
        panic_if(!t.isNvm, "refreshFromMedia on a DRAM address");
        std::size_t chunk =
            std::min(len, kPageBytes - pageOffset(vaddr));
        nvm_.rawRead(nvmGlobal(t.paddr), funcPtr(t.paddr, true), chunk);
        vaddr += chunk;
        len -= chunk;
    }
}

void
MemorySystem::flushAll()
{
    // Private caches first: propagate dirty bits down to the LLC so
    // diffs are captured through the normal path.
    for (std::size_t c = 0; c < l1_.size(); c++) {
        auto push_down = [&](Cache::Line &line) {
            if (!line.dirty)
                return;
            std::size_t bank = bankOf(line.addr);
            Cache::Line *llc_line = llc_[bank].probe(line.addr);
            panic_if(llc_line == nullptr, "LLC inclusion violated in flush");
            markLlcDirty(bank, *llc_line);
            line.dirty = false;
        };
        l1_[c].forEachLine(push_down);
        l2_[c].forEachLine(push_down);
    }
    for (std::size_t b = 0; b < llc_.size(); b++) {
        llc_[b].forEachLine([&](Cache::Line &line) {
            if (!line.dirty)
                return;
            if (isNvmPhys(line.addr)) {
                writebackNvmLine(b, line.addr, false);
            } else {
                stats_.dramWrites++;
                stats_.dramEnergy += cfg_.dram.accessEnergy;
            }
            line.dirty = false;
        });
    }
    engine_.flushRedundancy();
}

}  // namespace tvarak
