#include "mem/cache.hh"

#include "kernels/kernels.hh"
#include "sim/log.hh"

namespace tvarak {

Cache::Cache(std::string name, std::size_t sets, std::size_t ways,
             std::size_t setDivisor, bool carriesData)
    : name_(std::move(name)), sets_(sets), ways_(ways),
      setDivisor_(setDivisor)
{
    panic_if(sets == 0 || (sets & (sets - 1)) != 0,
             "%s: set count %zu not a power of two", name_.c_str(), sets);
    panic_if(ways == 0, "%s: zero ways", name_.c_str());
    panic_if(setDivisor == 0, "%s: zero set divisor", name_.c_str());
    tags_.assign(sets_ * ways_, Line::kNoTag);
    stamps_.assign(sets_ * ways_, 0);
    lines_.resize(sets_ * ways_);
    if (carriesData)
        data_.resize(sets_ * ways_);
}

Cache
Cache::fromSize(std::string name, std::size_t bytes, std::size_t ways,
                std::size_t setDivisor, bool carriesData)
{
    panic_if(bytes % (ways * kLineBytes) != 0,
             "%s: %zu bytes not divisible into %zu ways", name.c_str(),
             bytes, ways);
    return Cache(std::move(name), bytes / (ways * kLineBytes), ways,
                 setDivisor, carriesData);
}

Cache::Line *
Cache::probe(Addr lineAddr)
{
    panic_if(lineOffset(lineAddr) != 0, "%s: unaligned probe",
             name_.c_str());
    // The simulator's hottest loop: a vectorized scan over the set's
    // compact tag mirror (kernels::findTag compares 4 ways per step
    // under AVX2).
    std::size_t base = setOf(lineAddr) * ways_;
    std::size_t w = kernels::ops().findTag(&tags_[base], ways_, lineAddr);
    return w != ways_ ? &lines_[base + w] : nullptr;
}

const Cache::Line *
Cache::probe(Addr lineAddr) const
{
    return const_cast<Cache *>(this)->probe(lineAddr);
}

std::uint8_t *
Cache::dataOf(Line &line)
{
    panic_if(data_.empty(), "%s: tag-only cache has no payloads",
             name_.c_str());
    return data_[indexOf(line)].data();
}

const std::uint8_t *
Cache::dataOf(const Line &line) const
{
    return const_cast<Cache *>(this)->dataOf(const_cast<Line &>(line));
}

Cache::Line &
Cache::insert(Addr lineAddr, Victim &victim)
{
    // One pass over the set's compact tag and stamp mirrors does
    // triple duty: double-insert check, first-free-way search, and
    // the LRU stamp minimum (consulted only when the set is full).
    // In steady state every set is full, so the old
    // two-scans-plus-stamp-walk shape paid three full traversals —
    // each dragging the ways' full Line structs in — where this pays
    // one over two dense arrays. Victim choice is unchanged: first
    // free way wins, else min stamp with first index on ties.
    // (probe() stays on the vectorized kernels::findTag — a single
    // exact-match scan with no side lookups.)
    std::size_t base = setOf(lineAddr) * ways_;
    std::size_t freeWay = ways_;
    std::size_t lru = base;
    for (std::size_t w = 0; w < ways_; w++) {
        std::uint64_t t = tags_[base + w];
        panic_if(t == lineAddr, "%s: double insert of %llx",
                 name_.c_str(),
                 static_cast<unsigned long long>(lineAddr));
        if (t == Line::kNoTag) {
            if (freeWay == ways_)
                freeWay = w;
        } else if (stamps_[base + w] < stamps_[lru]) {
            lru = base + w;
        }
    }
    std::size_t target = freeWay != ways_ ? base + freeWay : lru;
    Line &line = lines_[target];
    victim.valid = line.valid();
    if (victim.valid) {
        victim.addr = line.addr;
        victim.dirty = line.dirty;
        victim.sharers = line.sharers;
        victim.owner = line.owner;
        if (!data_.empty())
            victim.data = data_[target];
    }
    line.addr = lineAddr;
    line.dirty = false;
    line.sharers = 0;
    line.owner = -1;
    if (!data_.empty())
        data_[target].fill(0);
    tags_[target] = lineAddr;
    touch(line);
    return line;
}

void
Cache::invalidate(Addr lineAddr)
{
    if (Line *line = probe(lineAddr)) {
        line->addr = Line::kNoTag;
        line->dirty = false;
        line->sharers = 0;
        line->owner = -1;
        tags_[indexOf(*line)] = Line::kNoTag;
    }
}

void
Cache::reset()
{
    for (auto &line : lines_)
        line = Line{};
    std::fill(tags_.begin(), tags_.end(), Line::kNoTag);
    std::fill(stamps_.begin(), stamps_.end(), 0);
    stamp_ = 0;
}

std::size_t
Cache::validLines() const
{
    std::size_t n = 0;
    for (const auto &line : lines_) {
        if (line.valid())
            n++;
    }
    return n;
}

}  // namespace tvarak
