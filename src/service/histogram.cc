#include "service/histogram.hh"

namespace tvarak::service {

std::size_t
LatencyHistogram::bucketIndex(Cycles value)
{
    if (value < kSubBuckets) {
        return static_cast<std::size_t>(value);
    }
    // Octave k = floor(log2 value) >= 4; within it, the top 4 bits
    // below the leading one select the linear sub-bucket.
    int k = 63 - __builtin_clzll(value);
    int shift = k - 4;
    std::size_t sub = static_cast<std::size_t>(value >> shift) & 0xf;
    return kSubBuckets + static_cast<std::size_t>(shift) * kSubBuckets +
        sub;
}

Cycles
LatencyHistogram::bucketUpper(std::size_t idx)
{
    if (idx < kSubBuckets) {
        return static_cast<Cycles>(idx);
    }
    std::size_t shift = (idx - kSubBuckets) / kSubBuckets;
    std::size_t sub = idx % kSubBuckets;
    return ((static_cast<Cycles>(kSubBuckets + sub) + 1) << shift) - 1;
}

void
LatencyHistogram::record(Cycles value)
{
    buckets_[bucketIndex(value)]++;
    count_++;
    sum_ += value;
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
}

Cycles
LatencyHistogram::percentile(double q) const
{
    if (count_ == 0) {
        return 0;
    }
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count_));
    if (rank * 1.0 < q * static_cast<double>(count_)) {
        rank++;  // ceil
    }
    if (rank == 0) rank = 1;

    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets_.size(); i++) {
        cumulative += buckets_[i];
        if (cumulative >= rank) {
            // Never report past the observed max (the top bucket's
            // edge can overshoot it by the sub-bucket width).
            Cycles upper = bucketUpper(i);
            return upper > max_ ? max_ : upper;
        }
    }
    return max_;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (std::size_t i = 0; i < buckets_.size(); i++) {
        buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_) {
        if (other.min_ < min_) min_ = other.min_;
        if (other.max_ > max_) max_ = other.max_;
    }
}

}  // namespace tvarak::service
