#include "service/source.hh"

#include <cstring>
#include <numeric>

#include "apps/nstore/nstore.hh"
#include "apps/redis/redis.hh"
#include "apps/trees/pmem_map.hh"
#include "pmemlib/pmem_pool.hh"
#include "redundancy/raw_coverage.hh"
#include "sim/rng.hh"

namespace tvarak::service {

namespace {

/** Decorrelate per-server request streams from one CLI seed. */
std::uint64_t
sourceSeed(std::uint64_t seed, int tid)
{
    return seed * 0x9e3779b97f4a7c15ull +
        static_cast<std::uint64_t>(tid) * 0xbf58476d1ce4e5b9ull + 1;
}

/** redis SET over a bounded keyspace: every request is one pmem
 *  transaction (plus a rehash step), the paper's Section IV-B load. */
class RedisSetSource final : public RequestSource
{
  public:
    RedisSetSource(MemorySystem &mem, DaxFs &fs, int tid,
                   RedundancyScheme *scheme, std::size_t scale,
                   std::uint64_t seed)
        : RequestSource(mem, tid), fs_(fs), scheme_(scheme),
          keyspace_(2048 * scale), rng_(sourceSeed(seed, tid)),
          poolBytes_((2ull << 20) * scale)
    {}

    void setup() override
    {
        pool_ = std::make_unique<PmemPool>(
            mem_, fs_, "svc-redis" + std::to_string(tid_), poolBytes_,
            scheme_, 1);
        store_ = std::make_unique<RedisStore>(mem_, *pool_, 8);
        // Preload the keyspace (scheme off: equivalent to restoring a
        // pre-built snapshot) so measured SETs overwrite in steady
        // state instead of growing the table mid-run.
        pool_->setSchemeEnabled(false);
        char key[RedisStore::kKeyBytes];
        std::uint64_t value = 0;
        for (std::uint64_t id = 0; id < keyspace_; id++) {
            makeKey(id, key);
            store_->set(tid_, key, &value);
        }
        pool_->setSchemeEnabled(true);
    }

    void serve(std::uint64_t reqId) override
    {
        char key[RedisStore::kKeyBytes];
        makeKey(rng_.nextBounded(keyspace_), key);
        store_->set(tid_, key, &reqId);
    }

    std::string name() const override { return "redis-set"; }

  private:
    void makeKey(std::uint64_t id, char *out) const
    {
        std::memcpy(out, "key:\0\0\0\0", 8);
        std::memcpy(out + 8, &id, sizeof(id));
    }

    DaxFs &fs_;
    RedundancyScheme *scheme_;
    std::uint64_t keyspace_;
    Rng rng_;
    std::size_t poolBytes_;
    std::unique_ptr<PmemPool> pool_;
    std::unique_ptr<RedisStore> store_;
};

/** ctree insert over a bounded keyspace: overwrites free the old
 *  value object, so pool usage stays bounded for any request count. */
class CTreeInsertSource final : public RequestSource
{
  public:
    CTreeInsertSource(MemorySystem &mem, DaxFs &fs, int tid,
                      RedundancyScheme *scheme, std::size_t scale,
                      std::uint64_t seed)
        : RequestSource(mem, tid), fs_(fs), scheme_(scheme),
          keyspace_(2048 * scale), rng_(sourceSeed(seed, tid)),
          poolBytes_((4ull << 20) * scale)
    {}

    void setup() override
    {
        pool_ = std::make_unique<PmemPool>(
            mem_, fs_, "svc-ctree" + std::to_string(tid_), poolBytes_,
            scheme_, 1);
        map_ = makeMap(MapKind::CTree, mem_, *pool_, kValueBytes);
        pool_->setSchemeEnabled(false);
        std::uint8_t value[kValueBytes] = {};
        for (std::uint64_t key = 0; key < keyspace_; key++) {
            map_->insert(tid_, key, value);
        }
        pool_->setSchemeEnabled(true);
    }

    void serve(std::uint64_t reqId) override
    {
        std::uint8_t value[kValueBytes];
        std::memset(value, static_cast<int>(reqId & 0xff), sizeof(value));
        map_->insert(tid_, rng_.nextBounded(keyspace_), value);
    }

    std::string name() const override { return "ctree-insert"; }

  private:
    static constexpr std::size_t kValueBytes = 64;

    DaxFs &fs_;
    RedundancyScheme *scheme_;
    std::uint64_t keyspace_;
    Rng rng_;
    std::size_t poolBytes_;
    std::unique_ptr<PmemPool> pool_;
    std::unique_ptr<PmemMap> map_;
};

/** N-Store YCSB-balanced: 50% one-field update transactions (WAL node
 *  + tuple write), 50% point reads, hot-set skew as in the paper. */
class NStoreBalancedSource final : public RequestSource
{
  public:
    NStoreBalancedSource(MemorySystem &mem, DaxFs &fs, int tid,
                         RedundancyScheme *scheme, std::size_t scale,
                         std::uint64_t seed)
        : RequestSource(mem, tid), fs_(fs), scheme_(scheme),
          tuples_(1024 * scale), rng_(sourceSeed(seed, tid)),
          keys_(tuples_, 0.08, 0.90, sourceSeed(seed, tid) ^ 0x5ca1ab1e)
    {}

    void setup() override
    {
        store_ = std::make_unique<NStore>(mem_, fs_, scheme_, tuples_,
                                          kWalSlots, 1);
    }

    void serve(std::uint64_t reqId) override
    {
        std::uint64_t tupleId = keys_.next();
        std::size_t field = rng_.nextBounded(NStore::kFields);
        if (rng_.nextBool(0.5)) {
            std::uint8_t value[NStore::kFieldBytes];
            std::memset(value, static_cast<int>(reqId & 0xff),
                        sizeof(value));
            store_->updateTx(tid_, tupleId, field, value);
        } else {
            std::uint8_t value[NStore::kFieldBytes];
            store_->readTx(tid_, tupleId, field, value);
        }
    }

    std::string name() const override { return "nstore-balanced"; }

  private:
    static constexpr std::size_t kWalSlots = 4096;

    DaxFs &fs_;
    RedundancyScheme *scheme_;
    std::size_t tuples_;
    Rng rng_;
    HotSetGenerator keys_;
    std::unique_ptr<NStore> store_;
};

/** fio random 64 B writes: a permutation walk over the region (no
 *  locality), a few lines per request, coverage informing the TxB
 *  schemes after each store. */
class FioRandWriteSource final : public RequestSource
{
  public:
    FioRandWriteSource(MemorySystem &mem, DaxFs &fs, int tid,
                       RedundancyScheme *scheme, std::size_t scale,
                       std::uint64_t /*seed*/)
        : RequestSource(mem, tid), fs_(fs), scheme_(scheme),
          regionBytes_((1ull << 20) * scale)
    {}

    void setup() override
    {
        std::size_t table = RawCoverage::tableBytes(regionBytes_);
        int fd = fs_.create("svc-fio" + std::to_string(tid_),
                            regionBytes_ + table);
        base_ = fs_.daxMap(fd);
        lines_ = regionBytes_ / kLineBytes;
        permStride_ = lines_ / 2 + 73;
        while (std::gcd(permStride_, lines_) != 1)
            permStride_++;
        coverage_ = std::make_unique<RawCoverage>(
            mem_, scheme_, base_, regionBytes_, base_ + regionBytes_);
    }

    void serve(std::uint64_t reqId) override
    {
        std::uint8_t buf[kLineBytes];
        for (std::size_t i = 0; i < kLinesPerRequest; i++) {
            Addr a = base_ +
                ((next_ * permStride_) % lines_) * kLineBytes;
            next_++;
            std::memset(buf, static_cast<int>(reqId & 0xff), sizeof(buf));
            mem_.write(tid_, a, buf, kLineBytes);
            coverage_->onWrite(tid_, a, kLineBytes);
        }
    }

    std::string name() const override { return "fio-rand-write"; }

  private:
    static constexpr std::size_t kLinesPerRequest = 4;

    DaxFs &fs_;
    RedundancyScheme *scheme_;
    std::size_t regionBytes_;
    Addr base_ = 0;
    std::size_t lines_ = 0;
    std::size_t permStride_ = 0;
    std::size_t next_ = 0;
    std::unique_ptr<RawCoverage> coverage_;
};

/** STREAM triad on persistent arrays: sequential, bandwidth bound —
 *  the workload where redundancy overheads are largest (Fig 8). */
class StreamTriadSource final : public RequestSource
{
  public:
    StreamTriadSource(MemorySystem &mem, DaxFs &fs, int tid,
                      RedundancyScheme *scheme, std::size_t scale,
                      std::uint64_t /*seed*/)
        : RequestSource(mem, tid), fs_(fs), scheme_(scheme),
          chunkBytes_((256ull << 10) * scale)
    {}

    void setup() override
    {
        std::size_t table = RawCoverage::tableBytes(chunkBytes_);
        int fd = fs_.create("svc-stream" + std::to_string(tid_),
                            3 * chunkBytes_ + table);
        Addr base = fs_.daxMap(fd);
        a_ = base;
        b_ = base + chunkBytes_;
        c_ = base + 2 * chunkBytes_;
        lines_ = chunkBytes_ / kLineBytes;
        coverage_ = std::make_unique<RawCoverage>(
            mem_, scheme_, c_, chunkBytes_, base + 3 * chunkBytes_);
        // Source arrays need resident data.
        std::uint8_t buf[kLineBytes];
        for (std::size_t l = 0; l < lines_; l++) {
            std::memset(buf, static_cast<int>(l & 0xff), sizeof(buf));
            mem_.write(tid_, a_ + l * kLineBytes, buf, sizeof(buf));
            mem_.write(tid_, b_ + l * kLineBytes, buf, sizeof(buf));
        }
    }

    void serve(std::uint64_t /*reqId*/) override
    {
        std::uint8_t bufA[kLineBytes], bufB[kLineBytes], bufC[kLineBytes];
        for (std::size_t i = 0; i < kLinesPerRequest; i++) {
            std::size_t l = next_ % lines_;
            next_++;
            mem_.read(tid_, a_ + l * kLineBytes, bufA, kLineBytes);
            mem_.read(tid_, b_ + l * kLineBytes, bufB, kLineBytes);
            mem_.compute(tid_, 16);
            for (std::size_t j = 0; j < kLineBytes; j++) {
                bufC[j] = static_cast<std::uint8_t>(bufA[j] + 3 * bufB[j]);
            }
            mem_.write(tid_, c_ + l * kLineBytes, bufC, kLineBytes);
            coverage_->onWrite(tid_, c_ + l * kLineBytes, kLineBytes);
        }
    }

    std::string name() const override { return "stream-triad"; }

  private:
    static constexpr std::size_t kLinesPerRequest = 16;

    DaxFs &fs_;
    RedundancyScheme *scheme_;
    std::size_t chunkBytes_;
    Addr a_ = 0, b_ = 0, c_ = 0;
    std::size_t lines_ = 0;
    std::size_t next_ = 0;
    std::unique_ptr<RawCoverage> coverage_;
};

}  // namespace

const std::vector<ServiceWorkloadInfo> &
serviceWorkloads()
{
    static const std::vector<ServiceWorkloadInfo> catalog = {
        {"redis-set", "redis SET transactions over a bounded keyspace"},
        {"ctree-insert", "PMDK ctree inserts (overwrite steady state)"},
        {"nstore-balanced", "N-Store YCSB 50/50 update/read, hot-set skew"},
        {"fio-rand-write", "fio random 64B writes, permutation walk"},
        {"stream-triad", "STREAM triad slices on persistent arrays"},
    };
    return catalog;
}

std::unique_ptr<RequestSource>
makeSource(const std::string &workload, MemorySystem &mem, DaxFs &fs,
           int tid, RedundancyScheme *scheme, std::size_t scale,
           std::uint64_t seed)
{
    if (workload == "redis-set") {
        return std::make_unique<RedisSetSource>(mem, fs, tid, scheme,
                                                scale, seed);
    }
    if (workload == "ctree-insert") {
        return std::make_unique<CTreeInsertSource>(mem, fs, tid, scheme,
                                                   scale, seed);
    }
    if (workload == "nstore-balanced") {
        return std::make_unique<NStoreBalancedSource>(mem, fs, tid,
                                                      scheme, scale,
                                                      seed);
    }
    if (workload == "fio-rand-write") {
        return std::make_unique<FioRandWriteSource>(mem, fs, tid, scheme,
                                                    scale, seed);
    }
    if (workload == "stream-triad") {
        return std::make_unique<StreamTriadSource>(mem, fs, tid, scheme,
                                                   scale, seed);
    }
    return nullptr;
}

}  // namespace tvarak::service
