/**
 * @file
 * Log-bucketed latency histogram (HDR style).
 *
 * Values below 16 get exact unit buckets; above that, each power of
 * two is split into 16 linear sub-buckets, bounding the relative
 * quantile error at ~1/16 (6.25%) while keeping the bucket array a
 * few hundred entries for the full 64-bit range. Percentiles report
 * the *upper edge* of the bucket containing the requested rank, so a
 * reported p99 is always >= the exact p99 and within one sub-bucket
 * of it — conservative in the direction that matters for tail-latency
 * claims.
 *
 * Everything is integer state updated in a deterministic order, so
 * two runs that record the same latencies produce bit-identical
 * histograms (the bucket array participates in the service-stats
 * equality used by the determinism tests).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace tvarak::service {

class LatencyHistogram
{
  public:
    /** 16 exact unit buckets + 16 sub-buckets for each octave
     *  [2^k, 2^(k+1)) with k in [4, 63]. */
    static constexpr std::size_t kSubBuckets = 16;
    static constexpr std::size_t kBucketCount =
        kSubBuckets + 60 * kSubBuckets;

    LatencyHistogram() : buckets_(kBucketCount, 0) {}

    void record(Cycles value);

    /** Quantile @p q in [0,1]: upper edge of the bucket holding rank
     *  ceil(q * count). 0 when empty. */
    Cycles percentile(double q) const;

    void merge(const LatencyHistogram &other);

    std::uint64_t count() const { return count_; }
    Cycles min() const { return count_ ? min_ : 0; }
    Cycles max() const { return max_; }
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) /
            static_cast<double>(count_) : 0.0;
    }

    /** Bucket index for @p value (exposed for tests). */
    static std::size_t bucketIndex(Cycles value);
    /** Inclusive upper edge of bucket @p idx (exposed for tests). */
    static Cycles bucketUpper(std::size_t idx);

    bool operator==(const LatencyHistogram &other) const
    {
        return count_ == other.count_ && sum_ == other.sum_ &&
            min_ == other.min_ && max_ == other.max_ &&
            buckets_ == other.buckets_;
    }
    bool operator!=(const LatencyHistogram &other) const
    {
        return !(*this == other);
    }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    Cycles min_ = ~Cycles{0};
    Cycles max_ = 0;
};

}  // namespace tvarak::service
