/**
 * @file
 * Open-loop arrival processes for the request service front-end.
 *
 * An ArrivalProcess hands out inter-arrival gaps in simulated core
 * cycles; the dispatcher accumulates them into absolute arrival
 * timestamps that do not depend on how fast requests are served —
 * that is what makes the load *open-loop*: a saturated server keeps
 * receiving requests and the backlog (and therefore tail latency)
 * grows, exactly like a production front-end behind a load balancer.
 *
 * Two processes cover the paper-adjacent space:
 *
 *  - Poisson: exponential gaps with mean 1/lambda, the memoryless
 *    arrival stream every queueing result is stated against.
 *  - Bursty (ON-OFF): geometric-length bursts of closely spaced
 *    arrivals separated by long OFF gaps, with the *same long-run
 *    offered rate* as the Poisson stream — so sweeping the two at one
 *    offered load isolates the cost of burstiness at the tail.
 *
 * All randomness comes from the seeded sim/rng generator: the same
 * seed produces byte-identical arrival streams (and therefore
 * byte-identical service statistics) on every run.
 */

#pragma once

#include <memory>
#include <string>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace tvarak::service {

enum class ArrivalKind {
    Poisson,  //!< exponential inter-arrival gaps
    Bursty,   //!< ON-OFF bursts at the same long-run rate
};

/** CLI spelling of @p kind ("poisson" / "bursty"). */
const char *arrivalKindName(ArrivalKind kind);

/** Parse a CLI spelling. @return false if @p name is unknown. */
bool parseArrivalKind(const std::string &name, ArrivalKind &out);

struct ArrivalParams {
    ArrivalKind kind = ArrivalKind::Poisson;
    /**
     * Mean inter-arrival gap in core cycles (1 / offered rate).
     * 0 selects the closed-loop limit: every request is ready the
     * moment a server frees up (gap 1), used to measure capacity.
     */
    double meanGapCycles = 0.0;
    std::uint64_t seed = 1;
    /** @name Bursty (ON-OFF) shape */
    /**@{*/
    /** Mean arrivals per ON burst (geometric). */
    double burstMeanLen = 16.0;
    /** Intra-burst gap as a fraction of the mean gap (< 1). */
    double burstGapFactor = 0.25;
    /**@}*/
};

class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /** Gap to the next arrival, in cycles (>= 1). */
    virtual Cycles nextGap() = 0;

    virtual const char *name() const = 0;
};

/** Build the process @p p describes (closed-loop when meanGapCycles
 *  is 0, regardless of kind). */
std::unique_ptr<ArrivalProcess> makeArrivalProcess(const ArrivalParams &p);

}  // namespace tvarak::service
