/**
 * @file
 * Request sources: the per-server unit of work behind the dispatcher.
 *
 * A RequestSource adapts one of the existing applications (redis,
 * trees, nstore, fio, stream) to request granularity: setup() builds
 * the persistent state (outside the measured window), serve() performs
 * exactly one request's worth of timed work on the source's thread.
 * The dispatcher measures each serve() call by differencing the
 * thread's demand-cycle counter, so whatever the application does —
 * pmem transactions, software checksums, raw stores with coverage
 * calls — lands in that request's service time.
 *
 * Each server owns an independent source instance (own pool/file/rng),
 * mirroring N independent single-threaded application instances, so
 * serve() calls on different servers never share mutable state.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fs/dax_fs.hh"
#include "mem/memory_system.hh"
#include "redundancy/scheme.hh"

namespace tvarak::service {

class RequestSource
{
  public:
    virtual ~RequestSource() = default;

    /** Build persistent state (runs before the stats reset). */
    virtual void setup() = 0;

    /** Perform one request. @p reqId is the global request index
     *  (deterministic payload material). */
    virtual void serve(std::uint64_t reqId) = 0;

    virtual std::string name() const = 0;

    int tid() const { return tid_; }

  protected:
    RequestSource(MemorySystem &mem, int tid) : mem_(mem), tid_(tid) {}

    MemorySystem &mem_;
    int tid_;
};

/** One row of the service workload catalog. */
struct ServiceWorkloadInfo {
    const char *name;         //!< CLI spelling
    const char *description;  //!< one line for --help / docs
};

/** The catalog (stable order; drives bench_service --workload). */
const std::vector<ServiceWorkloadInfo> &serviceWorkloads();

/**
 * Build the request source @p workload names for server thread @p tid.
 *
 * @param scheme  the machine's software redundancy hook (may be null);
 *                shared across servers, as PR-5 benches do.
 * @param scale   linear size knob (keyspace / region bytes).
 * @param seed    request-stream seed; combined with @p tid so servers
 *                draw independent but reproducible streams.
 * @return null if @p workload is unknown.
 */
std::unique_ptr<RequestSource> makeSource(const std::string &workload,
                                          MemorySystem &mem, DaxFs &fs,
                                          int tid,
                                          RedundancyScheme *scheme,
                                          std::size_t scale,
                                          std::uint64_t seed);

}  // namespace tvarak::service
