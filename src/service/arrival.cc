#include "service/arrival.hh"

#include <cmath>

namespace tvarak::service {

namespace {

/** Closed-loop limit: a request is always waiting (gap 1). */
class ClosedLoopArrivals : public ArrivalProcess
{
  public:
    Cycles nextGap() override { return 1; }
    const char *name() const override { return "closed-loop"; }
};

/**
 * Exponential gaps via inverse-transform sampling. nextDouble() is in
 * [0,1); 1-u is in (0,1] so the log is finite. Gaps round to whole
 * cycles and are clamped to >= 1 so time always advances.
 */
class PoissonArrivals : public ArrivalProcess
{
  public:
    explicit PoissonArrivals(const ArrivalParams &p)
        : rng_(p.seed), meanGap_(p.meanGapCycles)
    {}

    Cycles nextGap() override
    {
        double u = rng_.nextDouble();
        double gap = -meanGap_ * std::log(1.0 - u);
        auto cycles = static_cast<Cycles>(std::llround(gap));
        return cycles < 1 ? 1 : cycles;
    }

    const char *name() const override { return "poisson"; }

  private:
    Rng rng_;
    double meanGap_;
};

/**
 * ON-OFF bursts with the same long-run offered rate as the Poisson
 * stream. A burst holds a geometric number of arrivals (mean
 * burstMeanLen) spaced burstGapFactor * meanGap apart; the OFF gap
 * between bursts makes up the deficit so that over one mean-length
 * burst the average gap equals meanGap:
 *
 *   offGap = B * meanGap - (B - 1) * intraGap      (B = burstMeanLen)
 *
 * i.e. B arrivals still span B mean gaps on average, they are just
 * front-loaded. The instantaneous rate inside a burst is
 * 1/burstGapFactor times the offered rate, which is what stresses the
 * queue and separates synchronous from deferred redundancy at p999.
 */
class BurstyArrivals : public ArrivalProcess
{
  public:
    explicit BurstyArrivals(const ArrivalParams &p)
        : rng_(p.seed), meanGap_(p.meanGapCycles),
          continueProb_(1.0 - 1.0 / (p.burstMeanLen < 1.0
                                     ? 1.0 : p.burstMeanLen))
    {
        double intra = p.burstGapFactor * meanGap_;
        intraGap_ = clampGap(intra);
        double off = p.burstMeanLen * meanGap_ -
            (p.burstMeanLen - 1.0) * intra;
        offGap_ = clampGap(off);
    }

    Cycles nextGap() override
    {
        if (inBurst_ && rng_.nextBool(continueProb_)) {
            return intraGap_;
        }
        // Burst ended (or first call): pay the OFF gap, start a new
        // burst whose first arrival rides on that gap.
        inBurst_ = true;
        return offGap_;
    }

    const char *name() const override { return "bursty"; }

  private:
    static Cycles clampGap(double gap)
    {
        auto cycles = static_cast<Cycles>(std::llround(gap));
        return cycles < 1 ? 1 : cycles;
    }

    Rng rng_;
    double meanGap_;
    double continueProb_;
    Cycles intraGap_;
    Cycles offGap_;
    bool inBurst_ = false;
};

}  // namespace

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::Poisson: return "poisson";
      case ArrivalKind::Bursty: return "bursty";
    }
    return "?";
}

bool
parseArrivalKind(const std::string &name, ArrivalKind &out)
{
    if (name == "poisson") {
        out = ArrivalKind::Poisson;
        return true;
    }
    if (name == "bursty") {
        out = ArrivalKind::Bursty;
        return true;
    }
    return false;
}

std::unique_ptr<ArrivalProcess>
makeArrivalProcess(const ArrivalParams &p)
{
    if (p.meanGapCycles <= 0.0) {
        return std::make_unique<ClosedLoopArrivals>();
    }
    switch (p.kind) {
      case ArrivalKind::Poisson:
        return std::make_unique<PoissonArrivals>(p);
      case ArrivalKind::Bursty:
        return std::make_unique<BurstyArrivals>(p);
    }
    return std::make_unique<PoissonArrivals>(p);
}

}  // namespace tvarak::service
