#include "service/dispatcher.hh"

#include <functional>
#include <memory>
#include <queue>
#include <sstream>
#include <vector>

#include "redundancy/rebuild.hh"
#include "redundancy/scheme.hh"
#include "sim/log.hh"

namespace tvarak::service {

namespace {

/** Demand cycles @p fn adds to thread @p tid. */
template <typename Fn>
Cycles
measuredCycles(MemorySystem &mem, int tid, Fn &&fn)
{
    Cycles before = mem.stats().threadCycles[static_cast<std::size_t>(tid)];
    fn();
    Cycles after = mem.stats().threadCycles[static_cast<std::size_t>(tid)];
    return after - before;
}

}  // namespace

std::string
serviceStatsDiff(const ServiceStats &a, const ServiceStats &b)
{
    std::ostringstream os;
    auto field = [&os](const char *name, auto va, auto vb) {
        if (os.tellp() == 0 && !(va == vb)) {
            os << name << ": " << va << " vs " << vb;
        }
    };
    field("requests", a.requests, b.requests);
    field("completed", a.completed, b.completed);
    field("lastArrivalCycle", a.lastArrivalCycle, b.lastArrivalCycle);
    field("spanCycles", a.spanCycles, b.spanCycles);
    field("offeredPerMcycle", a.offeredPerMcycle, b.offeredPerMcycle);
    field("achievedPerMcycle", a.achievedPerMcycle, b.achievedPerMcycle);
    field("totalServiceCycles", a.totalServiceCycles,
          b.totalServiceCycles);
    field("totalQueueCycles", a.totalQueueCycles, b.totalQueueCycles);
    field("totalLatencyCycles", a.totalLatencyCycles,
          b.totalLatencyCycles);
    field("maxOutstanding", a.maxOutstanding, b.maxOutstanding);
    field("idleDrains", a.idleDrains, b.idleDrains);
    field("idleDrainCycles", a.idleDrainCycles, b.idleDrainCycles);
    field("rebuildIdleLines", a.rebuildIdleLines, b.rebuildIdleLines);
    if (os.tellp() == 0 && a.latency != b.latency) {
        os << "latency histogram: count " << a.latency.count() << " vs "
           << b.latency.count() << ", max " << a.latency.max() << " vs "
           << b.latency.max();
    }
    return os.str();
}

ServiceResult
runService(const SimConfig &cfg, const Design &design,
           const ServiceConfig &svc)
{
    panic_if(svc.servers == 0, "service needs at least one server");
    panic_if(svc.servers > cfg.cores,
             "service servers (%zu) exceed cores (%zu)", svc.servers,
             cfg.cores);
    panic_if(svc.requests == 0, "service needs at least one request");

    MemorySystem mem(cfg, design);
    DaxFs fs(mem);
    std::unique_ptr<RedundancyScheme> scheme = design.makeScheme(mem);

    std::vector<std::unique_ptr<RequestSource>> sources;
    for (std::size_t s = 0; s < svc.servers; s++) {
        auto src = makeSource(svc.workload, mem, fs,
                              static_cast<int>(s), scheme.get(),
                              svc.scale, svc.arrival.seed);
        panic_if(src == nullptr, "unknown service workload '%s'",
                 svc.workload.c_str());
        sources.push_back(std::move(src));
    }
    for (auto &src : sources)
        src->setup();
    // Setup (preload) is outside the measured window, like
    // runExperiment's beforeMeasure: the sweep measures steady state.
    if (scheme)
        for (std::size_t s = 0; s < svc.servers; s++)
            scheme->drain(static_cast<int>(s));
    mem.flushAll();
    mem.stats().reset();

    std::unique_ptr<ArrivalProcess> arrivals =
        makeArrivalProcess(svc.arrival);
    std::unique_ptr<RebuildEngine> rebuild;

    // Effective fault schedule: explicit entries plus the legacy
    // single-DIMM shorthand.
    std::vector<DimmFault> faults = svc.faults;
    if (svc.failAtRequest != 0 || svc.replaceAtRequest != 0) {
        faults.push_back(
            {svc.faultDimm, svc.failAtRequest, svc.replaceAtRequest});
    }
    for (const DimmFault &f : faults) {
        // mem.config(), not cfg: the design's adjustConfig may have
        // changed the DIMM count (the erasure-coded variants do).
        panic_if(f.dimm >= mem.config().nvm.dimms,
                 "fault schedule names DIMM %zu but the machine has "
                 "%zu DIMMs", f.dimm, mem.config().nvm.dimms);
    }

    ServiceStats out;
    out.requests = svc.requests;

    std::vector<Cycles> freeAt(svc.servers, 0);
    // Outstanding = assigned requests not yet completed at the current
    // arrival instant (the open-loop backlog).
    std::priority_queue<Cycles, std::vector<Cycles>,
                        std::greater<Cycles>> completions;

    Cycles now = 0;
    Cycles lastCompletion = 0;
    for (std::uint64_t req = 1; req <= svc.requests; req++) {
        now += arrivals->nextGap();

        for (const DimmFault &f : faults) {
            if (f.failAt != 0 && req == f.failAt)
                mem.failDimm(f.dimm);
            if (f.replaceAt != 0 && req == f.replaceAt) {
                mem.replaceDimm(f.dimm);
                // One engine sweeps every replaced DIMM: step()'s
                // resync adopts DIMMs replaced after construction.
                if (!rebuild)
                    rebuild = std::make_unique<RebuildEngine>(mem, &fs);
            }
        }

        while (!completions.empty() && completions.top() <= now)
            completions.pop();

        // FCFS: the earliest-free reactor takes the request
        // (ties break toward the lowest index — deterministic).
        std::size_t server = 0;
        for (std::size_t s = 1; s < svc.servers; s++) {
            if (freeAt[s] < freeAt[server])
                server = s;
        }
        int tid = static_cast<int>(server);

        Cycles readyAt = freeAt[server];
        if (svc.idleDrain && now > readyAt &&
            (scheme != nullptr || rebuild != nullptr)) {
            // Reactor idle gap: run the idle pollers. Their cycles are
            // real — a long drain can delay this very request — but
            // below saturation they hide in the gap. The rebuild step
            // runs even when the engine looks done: its resync adopts
            // DIMMs replaced after the previous sweep finished.
            Cycles drained = measuredCycles(mem, tid, [&] {
                if (scheme)
                    scheme->drain(tid);
                if (rebuild) {
                    out.rebuildIdleLines +=
                        rebuild->step(svc.rebuildLinesPerIdle);
                }
            });
            if (drained > 0) {
                out.idleDrains++;
                out.idleDrainCycles += drained;
                readyAt += drained;
            }
        }

        Cycles start = now > readyAt ? now : readyAt;
        Cycles serviceCycles = measuredCycles(mem, tid, [&] {
            sources[server]->serve(req);
        });
        Cycles completion = start + serviceCycles;
        freeAt[server] = completion;
        if (completion > lastCompletion)
            lastCompletion = completion;

        completions.push(completion);
        if (completions.size() > out.maxOutstanding)
            out.maxOutstanding = completions.size();

        Cycles queueCycles = start - now;
        out.latency.record(completion - now);
        out.totalServiceCycles += serviceCycles;
        out.totalQueueCycles += queueCycles;
        out.totalLatencyCycles += completion - now;
        out.completed++;
    }
    out.lastArrivalCycle = now;

    // Epilogue (outside the latency accounting): finish deferred
    // redundancy and any rebuild, then flush — the covered/rebuilt
    // state is what the sim counters summarize.
    if (scheme)
        for (std::size_t s = 0; s < svc.servers; s++)
            scheme->drain(static_cast<int>(s));
    if (rebuild)
        rebuild->runToCompletion();
    mem.flushAll();

    out.spanCycles = lastCompletion > now ? lastCompletion : now;
    double span = static_cast<double>(out.spanCycles);
    double arrivalSpan = static_cast<double>(out.lastArrivalCycle);
    out.offeredPerMcycle = arrivalSpan > 0.0
        ? static_cast<double>(out.requests) * 1e6 / arrivalSpan : 0.0;
    out.achievedPerMcycle = span > 0.0
        ? static_cast<double>(out.completed) * 1e6 / span : 0.0;

    ServiceResult result;
    result.workload = svc.workload;
    result.design = design.cliName();
    result.service = out;
    result.sim = mem.stats();
    return result;
}

}  // namespace tvarak::service
