#include "service/sweep.hh"

#include "harness/parallel.hh"
#include "sim/log.hh"

namespace tvarak::service {

const std::vector<double> &
defaultLoadFracs()
{
    static const std::vector<double> fracs = {0.3, 0.5, 0.7, 0.85,
                                              1.0, 1.2};
    return fracs;
}

double
calibrateCapacity(const SimConfig &cfg, const Design &design,
                  const ServiceConfig &svc)
{
    ServiceConfig closed = svc;
    closed.arrival.meanGapCycles = 0.0;  // closed-loop limit
    ServiceResult r = runService(cfg, design, closed);
    panic_if(r.service.achievedPerMcycle <= 0.0,
             "capacity calibration produced no throughput");
    return r.service.achievedPerMcycle;
}

void
detectKnee(DesignSweep &sweep)
{
    // Prefix semantics: the knee is the last point of the leading
    // all-sustained run. A sustained point *after* an unsustained one
    // is a finite-run artifact (lumpy deferred work can transiently
    // beat the closed-loop ceiling) and must not resurrect the knee.
    sweep.kneeIndex = -1;
    for (std::size_t i = 0; i < sweep.points.size(); i++) {
        const ServiceStats &s = sweep.points[i].result.service;
        if (s.achievedPerMcycle < kKneeThreshold * s.offeredPerMcycle)
            break;
        sweep.kneeIndex = static_cast<int>(i);
    }
}

std::vector<double>
calibrateCapacities(const SimConfig &cfg,
                    const std::vector<const Design *> &designs,
                    const ServiceConfig &svc, std::size_t jobs)
{
    std::vector<double> capacities(designs.size(), 0.0);
    parallelFor(designs.size(), [&](std::size_t d) {
        capacities[d] = calibrateCapacity(cfg, *designs[d], svc);
    }, jobs);
    return capacities;
}

std::vector<DesignSweep>
runSweep(const SimConfig &cfg, const std::vector<const Design *> &designs,
         const ServiceConfig &svc, const std::vector<double> &capacities,
         const std::vector<double> &loadFracs, std::size_t jobs)
{
    panic_if(capacities.size() != designs.size(),
             "capacity list does not match design list");
    for (double c : capacities)
        panic_if(c <= 0.0, "invalid capacity calibration");
    panic_if(loadFracs.empty(), "empty load grid");

    // One flat task list; results land in index-private slots so the
    // output is identical for any worker count.
    std::size_t tasks = designs.size() * loadFracs.size();
    std::vector<SweepPoint> flat(tasks);
    parallelFor(tasks, [&](std::size_t idx) {
        std::size_t d = idx / loadFracs.size();
        std::size_t f = idx % loadFracs.size();
        ServiceConfig point = svc;
        double offered = capacities[d] * loadFracs[f];
        point.arrival.meanGapCycles = 1e6 / offered;
        flat[idx].loadFrac = loadFracs[f];
        flat[idx].result = runService(cfg, *designs[d], point);
    }, jobs);

    std::vector<DesignSweep> out(designs.size());
    for (std::size_t d = 0; d < designs.size(); d++) {
        out[d].design = designs[d];
        out[d].capacityPerMcycle = capacities[d];
        out[d].points.assign(
            flat.begin() + static_cast<std::ptrdiff_t>(
                d * loadFracs.size()),
            flat.begin() + static_cast<std::ptrdiff_t>(
                (d + 1) * loadFracs.size()));
        detectKnee(out[d]);
    }
    return out;
}

}  // namespace tvarak::service
