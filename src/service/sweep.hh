/**
 * @file
 * Offered-load sweeps and knee detection.
 *
 * A sweep first calibrates each design's closed-loop capacity
 * (arrival gap ~0: every reactor is always busy, so achieved
 * throughput is that design's service-rate ceiling), then runs the
 * design at offered loads expressed as fractions of its *own*
 * capacity — so every design's curve brackets its saturation point
 * and the *knee* (the largest offered load still sustained: achieved
 * >= 95% of offered) is detectable for slow and fast designs alike.
 * Absolute cross-design comparison lives in the capacity itself and
 * in the offered/achieved columns, which stay in requests per Mcycle.
 *
 * Every (design x load) point is an independent machine, so the sweep
 * fans out over harness/parallel.hh with index-private result slots:
 * bit-identical output for any --jobs N.
 */

#pragma once

#include <string>
#include <vector>

#include "service/dispatcher.hh"

namespace tvarak::service {

/** One (design, offered-load) measurement. */
struct SweepPoint {
    double loadFrac = 0.0;  //!< offered load / the design's capacity
    ServiceResult result;
};

/** One design's full load sweep. */
struct DesignSweep {
    const Design *design = nullptr;
    /** The design's own closed-loop capacity — the absolute-throughput
     *  comparison across designs (a design with redundancy overhead
     *  has a lower ceiling). */
    double capacityPerMcycle = 0.0;
    std::vector<SweepPoint> points;  //!< in ascending loadFrac order
    /** Index into points of the knee: the last point of the leading
     *  run where achieved >= kneeThreshold * offered (-1 if even the
     *  lightest load saturates). Prefix semantics — later sustained
     *  points after a saturated one are finite-run artifacts. */
    int kneeIndex = -1;
};

/** Achieved/offered ratio above which a point counts as sustained. */
constexpr double kKneeThreshold = 0.95;

/** The default sweep grid (fractions of baseline capacity). */
const std::vector<double> &defaultLoadFracs();

/**
 * Closed-loop capacity calibration: run @p svc with a zero arrival
 * gap under @p design and return achieved requests per Mcycle.
 */
double calibrateCapacity(const SimConfig &cfg, const Design &design,
                         const ServiceConfig &svc);

/** Calibrate every design's capacity in one parallel batch
 *  (results[i] belongs to designs[i]; 0 jobs = defaultJobs()). */
std::vector<double>
calibrateCapacities(const SimConfig &cfg,
                    const std::vector<const Design *> &designs,
                    const ServiceConfig &svc, std::size_t jobs);

/**
 * Sweep each design in @p designs over @p loadFracs of its *own*
 * capacity (@p capacities, from calibrateCapacities — same order), so
 * every design's sweep brackets its knee; absolute throughput remains
 * comparable through the capacity and offered/achieved columns.
 * Fans out over @p jobs workers (0 = defaultJobs()).
 * svc.arrival.meanGapCycles is derived per point; everything else in
 * @p svc applies unchanged.
 */
std::vector<DesignSweep> runSweep(const SimConfig &cfg,
                                  const std::vector<const Design *> &designs,
                                  const ServiceConfig &svc,
                                  const std::vector<double> &capacities,
                                  const std::vector<double> &loadFracs,
                                  std::size_t jobs);

/** Recompute @p sweep.kneeIndex from its points. */
void detectKnee(DesignSweep &sweep);

}  // namespace tvarak::service
