/**
 * @file
 * The service dispatcher: an open-loop G/G/c queue over the simulated
 * machine, modeled on SPDK's reactor/event loop.
 *
 * Requests arrive on a single queue (timestamps from an
 * ArrivalProcess) and are served FCFS by `servers` single-threaded
 * reactors, each owning a private RequestSource. The dispatcher
 * advances simulated time itself: a request's *service time* is the
 * demand-cycle delta its serve() call adds to the server thread's
 * Stats::threadCycles counter, its *queueing delay* is how long it sat
 * waiting for a reactor, and its reported latency is the sum — so
 * saturation shows up as unbounded queueing, exactly as in an
 * open-loop load test.
 *
 * Reactor idle behaviour mirrors SPDK's idle pollers: when a reactor
 * has no request waiting, it drains deferred redundancy work
 * (RedundancyScheme::drain — Vilamb's asynchronous checksums) and
 * steps an in-progress DIMM rebuild. Idle work is charged real cycles
 * and can delay the next request (a poll iteration is not preempted),
 * but below saturation it hides in the arrival gaps — which is the
 * mechanism that separates deferred-redundancy designs from
 * synchronous ones at the tail.
 *
 * Optional fault hooks: fail DIMMs at given request indices and
 * replace them at later ones, turning degraded-mode and
 * rebuild-in-progress tail latency into measurable quantities. The
 * schedule may hold several DIMMs at once (staggered so a later
 * failure lands mid-rebuild of an earlier one); a single RebuildEngine
 * adopts every replaced DIMM through its resync pass.
 */

#pragma once

#include <string>
#include <vector>

#include "redundancy/registry.hh"
#include "service/arrival.hh"
#include "service/histogram.hh"
#include "service/source.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace tvarak::service {

/**
 * One entry of a multi-DIMM fault schedule: fail @p dimm when request
 * @p failAt arrives, replace it (starting an online rebuild) when
 * request @p replaceAt arrives. Indices are 1-based; 0 disables the
 * event, so a fail-only entry leaves the DIMM dead for the rest of the
 * run. Entries may overlap in time — a later failure landing while an
 * earlier DIMM is still rebuilding is exactly the fail-during-rebuild
 * scenario the erasure-coded designs are built to survive.
 */
struct DimmFault {
    std::size_t dimm = 1;
    std::size_t failAt = 0;
    std::size_t replaceAt = 0;
};

struct ServiceConfig {
    std::string workload = "redis-set";
    std::size_t scale = 1;
    std::size_t servers = 4;
    std::size_t requests = 4096;
    ArrivalParams arrival;
    /** Drain deferred redundancy + rebuild work in reactor idle gaps. */
    bool idleDrain = true;
    /** Rebuild lines swept per idle gap while a rebuild is active. */
    std::size_t rebuildLinesPerIdle = 64;
    /** @name Single-DIMM fault shorthand (0 = disabled; 1-based
     *  request indices). Folded into the schedule below at run time. */
    /**@{*/
    std::size_t failAtRequest = 0;
    std::size_t replaceAtRequest = 0;
    std::size_t faultDimm = 1;
    /**@}*/
    /** Multi-DIMM fault schedule, applied in addition to the
     *  single-DIMM shorthand above. */
    std::vector<DimmFault> faults;
};

struct ServiceStats {
    std::uint64_t requests = 0;
    std::uint64_t completed = 0;
    /** Arrival span: cycle of the last arrival. */
    Cycles lastArrivalCycle = 0;
    /** Completion span: cycle of the last completion (after final
     *  drains). */
    Cycles spanCycles = 0;
    /** Requests per Mcycle the arrival stream offered / the machine
     *  actually sustained. */
    double offeredPerMcycle = 0.0;
    double achievedPerMcycle = 0.0;
    LatencyHistogram latency;
    Cycles totalServiceCycles = 0;
    Cycles totalQueueCycles = 0;
    Cycles totalLatencyCycles = 0;  //!< == queue + service, conserved
    std::uint64_t maxOutstanding = 0;
    std::uint64_t idleDrains = 0;
    Cycles idleDrainCycles = 0;
    std::uint64_t rebuildIdleLines = 0;
};

/**
 * Exact field-by-field comparison (doubles compared bitwise: the
 * determinism contract is bit-identical runs). @return empty string
 * when equal, else a one-line description of the first difference.
 */
std::string serviceStatsDiff(const ServiceStats &a, const ServiceStats &b);

struct ServiceResult {
    std::string workload;
    std::string design;   //!< registry cliName
    ServiceStats service;
    Stats sim{1, 1};      //!< machine counters over the measured window
};

/**
 * Run one service experiment: build the machine under @p design, set
 * up one RequestSource per server, reset stats, and dispatch
 * @p svc.requests open-loop requests. Fatal on unknown workload or
 * servers > cores.
 */
ServiceResult runService(const SimConfig &cfg, const Design &design,
                         const ServiceConfig &svc);

}  // namespace tvarak::service
