/**
 * @file
 * Fundamental address/size types and geometry helpers shared by every
 * module of the simulator.
 *
 * The simulated machine uses a single flat virtual address space:
 *
 *   [0, dramBytes)                DRAM, identity mapped.
 *   [kDaxBase, kDaxBase + ...)    DAX-mapped NVM file pages, translated
 *                                 through the DaxFs page table to NVM
 *                                 "global" physical pages.
 *
 * NVM global physical addresses are linear across the whole NVM array;
 * the Layout module (layout/layout.hh) maps a global page to a
 * (DIMM, media page) pair and defines the RAID-5 parity geometry.
 */

#pragma once

#include <cstddef>
#include <cstdint>

namespace tvarak {

/** A simulated (virtual or physical) byte address. */
using Addr = std::uint64_t;

/** A count of core clock cycles. */
using Cycles = std::uint64_t;

/** Energy in picojoules. */
using PicoJoules = double;

/** Cache line size; DAX access and checksum granularity. */
constexpr std::size_t kLineBytes = 64;

/** Page size; system-checksum and parity-striping granularity. */
constexpr std::size_t kPageBytes = 4096;

/** Cache lines per page. */
constexpr std::size_t kLinesPerPage = kPageBytes / kLineBytes;

/** Bytes of one packed DAX-CL-checksum (we use CRC-32C zero-extended
 *  to 8 bytes so that 8 checksums pack exactly into one 64 B line). */
constexpr std::size_t kChecksumBytes = 8;

/** DAX-CL-checksums per checksum cache line. */
constexpr std::size_t kChecksumsPerLine = kLineBytes / kChecksumBytes;

/** Base of the DAX-mapped virtual region. */
constexpr Addr kDaxBase = Addr{1} << 40;

/** Base of the NVM window in the cache-visible physical space. */
constexpr Addr kNvmPhysBase = Addr{1} << 41;

/**
 * Base of the kernel "direct map" virtual window over the whole NVM
 * space. DAX applications use kDaxBase mappings; system software (the
 * file system's I/O paths and the software redundancy schemes) uses
 * this window to reach checksum and parity storage.
 */
constexpr Addr kNvmDirectBase = Addr{1} << 42;

/** Direct-map virtual address of NVM-global address @p g. */
constexpr Addr
nvmDirectVaddr(Addr g)
{
    return kNvmDirectBase + g;
}

/** True iff physical address @p a lies in the NVM window. */
constexpr bool
isNvmPhys(Addr a)
{
    return a >= kNvmPhysBase;
}

/** Align @p a down to its cache line. */
constexpr Addr
lineBase(Addr a)
{
    return a & ~Addr{kLineBytes - 1};
}

/** Align @p a down to its page. */
constexpr Addr
pageBase(Addr a)
{
    return a & ~Addr{kPageBytes - 1};
}

/** Byte offset of @p a within its cache line. */
constexpr std::size_t
lineOffset(Addr a)
{
    return static_cast<std::size_t>(a & (kLineBytes - 1));
}

/** Byte offset of @p a within its page. */
constexpr std::size_t
pageOffset(Addr a)
{
    return static_cast<std::size_t>(a & (kPageBytes - 1));
}

/** Index of the line containing @p a within its page (0..63). */
constexpr std::size_t
lineInPage(Addr a)
{
    return pageOffset(a) / kLineBytes;
}

/** Global line number of @p a (address / 64). */
constexpr std::uint64_t
lineNumber(Addr a)
{
    return a / kLineBytes;
}

/** Global page number of @p a (address / 4096). */
constexpr std::uint64_t
pageNumber(Addr a)
{
    return a / kPageBytes;
}

/** True iff @p a lies in the DAX-mapped virtual region. */
constexpr bool
isDaxAddr(Addr a)
{
    return a >= kDaxBase;
}

}  // namespace tvarak

