#include "sim/config.hh"

#include "sim/log.hh"

namespace tvarak {

// designName(DesignKind) is implemented by the design registry
// (src/redundancy/registry.cc), the single source of truth for
// design names.

void
SimConfig::validate() const
{
    fatal_if(cores == 0, "need at least one core");
    fatal_if(llcBanks == 0, "need at least one LLC bank");
    auto check_cache = [](const char *name, const CacheParams &p) {
        fatal_if(p.sizeBytes == 0 || p.ways == 0,
                 "%s: zero size or ways", name);
        fatal_if(p.sizeBytes % (p.ways * kLineBytes) != 0,
                 "%s: size %zu not divisible into %zu ways of 64B lines",
                 name, p.sizeBytes, p.ways);
        std::size_t sets = p.sizeBytes / (p.ways * kLineBytes);
        fatal_if((sets & (sets - 1)) != 0,
                 "%s: set count %zu not a power of two", name, sets);
    };
    check_cache("L1", l1);
    check_cache("L2", l2);
    check_cache("LLC bank", llcBank);

    fatal_if(tvarak.redundancyWays + tvarak.diffWays >= llcBank.ways,
             "TVARAK partitions (%zu red + %zu diff) leave no data ways "
             "out of %zu",
             tvarak.redundancyWays, tvarak.diffWays, llcBank.ways);
    fatal_if(tvarak.cacheBytes % kLineBytes != 0,
             "on-controller cache must hold whole lines");
    fatal_if(nvm.dimms < 2, "striped parity needs at least 2 NVM DIMMs");
    fatal_if(nvm.parityDimms < 1 || nvm.parityDimms >= nvm.dimms,
             "parity count %zu needs at least %zu NVM DIMMs (n+k with "
             "n >= 1)",
             nvm.parityDimms, nvm.parityDimms + 1);
    fatal_if(nvm.dimmsPerDomain == 0 ||
             nvm.dimms % nvm.dimmsPerDomain != 0,
             "%zu DIMMs do not split into domains of %zu",
             nvm.dimms, nvm.dimmsPerDomain);
    fatal_if(nvm.dimmBytes % kPageBytes != 0,
             "NVM DIMM capacity must be page aligned");
    fatal_if(dram.sizeBytes % kPageBytes != 0,
             "DRAM capacity must be page aligned");
}

}  // namespace tvarak
