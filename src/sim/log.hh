/**
 * @file
 * Minimal gem5-style status/error reporting.
 *
 * panic()  - internal simulator invariant violated; aborts.
 * fatal()  - user/configuration error; exits with status 1.
 * warn()   - questionable but survivable condition.
 * inform() - plain status output.
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace tvarak {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Format helper: printf-style into std::string. */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace tvarak

#define panic(...) \
    ::tvarak::panicImpl(__FILE__, __LINE__, ::tvarak::strfmt(__VA_ARGS__))
#define fatal(...) \
    ::tvarak::fatalImpl(__FILE__, __LINE__, ::tvarak::strfmt(__VA_ARGS__))
#define warn(...) ::tvarak::warnImpl(::tvarak::strfmt(__VA_ARGS__))
#define inform(...) ::tvarak::informImpl(::tvarak::strfmt(__VA_ARGS__))

/** panic() unless @p cond holds. */
#define panic_if(cond, ...)             \
    do {                                \
        if (cond) { panic(__VA_ARGS__); } \
    } while (0)

#define fatal_if(cond, ...)             \
    do {                                \
        if (cond) { fatal(__VA_ARGS__); } \
    } while (0)

