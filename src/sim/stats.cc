#include "sim/stats.hh"

#include <algorithm>

namespace tvarak {

Cycles
Stats::maxThreadCycles() const
{
    Cycles m = 0;
    for (Cycles c : threadCycles)
        m = std::max(m, c);
    return m;
}

Cycles
Stats::maxDimmBusyCycles() const
{
    Cycles m = 0;
    for (Cycles c : dimmBusyCycles)
        m = std::max(m, c);
    return m;
}

Cycles
Stats::runtimeCycles() const
{
    return std::max(maxThreadCycles(), maxDimmBusyCycles());
}

void
Stats::reset()
{
    std::fill(threadCycles.begin(), threadCycles.end(), 0);
    std::fill(dimmBusyCycles.begin(), dimmBusyCycles.end(), 0);
    l1Accesses = l1Misses = l2Accesses = l2Misses = 0;
    llcAccesses = llcMisses = 0;
    tvarakCacheAccesses = tvarakCacheMisses = 0;
    dramReads = dramWrites = 0;
    nvmDataReads = nvmDataWrites = 0;
    nvmRedundancyReads = nvmRedundancyWrites = 0;
    nvmCsumLineAccesses = nvmParityLineAccesses = 0;
    l1Energy = l2Energy = llcEnergy = dramEnergy = nvmEnergy =
        tvarakEnergy = 0;
    readVerifications = redundancyUpdates = 0;
    diffCaptures = diffEvictions = redundancyInvalidations = 0;
    corruptionsDetected = recoveries = 0;
    swChecksumBytes = txCommits = 0;
}

void
Stats::dump(std::ostream &os) const
{
    os << "runtime.cycles            " << runtimeCycles() << "\n"
       << "runtime.maxThreadCycles   " << maxThreadCycles() << "\n"
       << "runtime.maxDimmBusyCycles " << maxDimmBusyCycles() << "\n"
       << "cache.l1.accesses         " << l1Accesses << "\n"
       << "cache.l1.misses           " << l1Misses << "\n"
       << "cache.l2.accesses         " << l2Accesses << "\n"
       << "cache.l2.misses           " << l2Misses << "\n"
       << "cache.llc.accesses        " << llcAccesses << "\n"
       << "cache.llc.misses          " << llcMisses << "\n"
       << "cache.tvarak.accesses     " << tvarakCacheAccesses << "\n"
       << "cache.tvarak.misses       " << tvarakCacheMisses << "\n"
       << "mem.dram.reads            " << dramReads << "\n"
       << "mem.dram.writes           " << dramWrites << "\n"
       << "mem.nvm.data.reads        " << nvmDataReads << "\n"
       << "mem.nvm.data.writes       " << nvmDataWrites << "\n"
       << "mem.nvm.red.reads         " << nvmRedundancyReads << "\n"
       << "mem.nvm.red.writes        " << nvmRedundancyWrites << "\n"
       << "energy.l1.pJ              " << l1Energy << "\n"
       << "energy.l2.pJ              " << l2Energy << "\n"
       << "energy.llc.pJ             " << llcEnergy << "\n"
       << "energy.dram.pJ            " << dramEnergy << "\n"
       << "energy.nvm.pJ             " << nvmEnergy << "\n"
       << "energy.tvarak.pJ          " << tvarakEnergy << "\n"
       << "energy.total.pJ           " << totalEnergy() << "\n"
       << "red.readVerifications     " << readVerifications << "\n"
       << "red.redundancyUpdates     " << redundancyUpdates << "\n"
       << "red.diffCaptures          " << diffCaptures << "\n"
       << "red.diffEvictions         " << diffEvictions << "\n"
       << "red.invalidations         " << redundancyInvalidations << "\n"
       << "red.corruptionsDetected   " << corruptionsDetected << "\n"
       << "red.recoveries            " << recoveries << "\n"
       << "sw.checksumBytes          " << swChecksumBytes << "\n"
       << "sw.txCommits              " << txCommits << "\n";
}

}  // namespace tvarak
