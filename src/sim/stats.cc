#include "sim/stats.hh"

#include <algorithm>
#include <sstream>

namespace tvarak {

Cycles
Stats::maxThreadCycles() const
{
    Cycles m = 0;
    for (Cycles c : threadCycles)
        m = std::max(m, c);
    return m;
}

Cycles
Stats::maxDimmBusyCycles() const
{
    Cycles m = 0;
    for (Cycles c : dimmBusyCycles)
        m = std::max(m, c);
    return m;
}

Cycles
Stats::runtimeCycles() const
{
    return std::max(maxThreadCycles(), maxDimmBusyCycles());
}

void
Stats::reset()
{
    std::fill(threadCycles.begin(), threadCycles.end(), 0);
    std::fill(dimmBusyCycles.begin(), dimmBusyCycles.end(), 0);
    l1Accesses = l1Misses = l2Accesses = l2Misses = 0;
    llcAccesses = llcMisses = 0;
    tvarakCacheAccesses = tvarakCacheMisses = 0;
    dramReads = dramWrites = 0;
    nvmDataReads = nvmDataWrites = 0;
    nvmRedundancyReads = nvmRedundancyWrites = 0;
    nvmCsumLineAccesses = nvmParityLineAccesses = 0;
    l1Energy = l2Energy = llcEnergy = dramEnergy = nvmEnergy =
        tvarakEnergy = 0;
    readVerifications = redundancyUpdates = 0;
    diffCaptures = diffEvictions = redundancyInvalidations = 0;
    corruptionsDetected = recoveries = 0;
    degradedReads = degradedReadsMulti = 0;
    degradedWritesDropped = degradedRedSkips = 0;
    rebuildLines = rebuildRestarts = scrubLines = scrubRepairs = 0;
    swChecksumBytes = txCommits = 0;
}

void
Stats::dump(std::ostream &os) const
{
    os << "runtime.cycles            " << runtimeCycles() << "\n"
       << "runtime.maxThreadCycles   " << maxThreadCycles() << "\n"
       << "runtime.maxDimmBusyCycles " << maxDimmBusyCycles() << "\n"
       << "cache.l1.accesses         " << l1Accesses << "\n"
       << "cache.l1.misses           " << l1Misses << "\n"
       << "cache.l2.accesses         " << l2Accesses << "\n"
       << "cache.l2.misses           " << l2Misses << "\n"
       << "cache.llc.accesses        " << llcAccesses << "\n"
       << "cache.llc.misses          " << llcMisses << "\n"
       << "cache.tvarak.accesses     " << tvarakCacheAccesses << "\n"
       << "cache.tvarak.misses       " << tvarakCacheMisses << "\n"
       << "mem.dram.reads            " << dramReads << "\n"
       << "mem.dram.writes           " << dramWrites << "\n"
       << "mem.nvm.data.reads        " << nvmDataReads << "\n"
       << "mem.nvm.data.writes       " << nvmDataWrites << "\n"
       << "mem.nvm.red.reads         " << nvmRedundancyReads << "\n"
       << "mem.nvm.red.writes        " << nvmRedundancyWrites << "\n"
       << "mem.nvm.csumLine.accesses " << nvmCsumLineAccesses << "\n"
       << "mem.nvm.parityLine.accesses " << nvmParityLineAccesses << "\n"
       << "energy.l1.pJ              " << l1Energy << "\n"
       << "energy.l2.pJ              " << l2Energy << "\n"
       << "energy.llc.pJ             " << llcEnergy << "\n"
       << "energy.dram.pJ            " << dramEnergy << "\n"
       << "energy.nvm.pJ             " << nvmEnergy << "\n"
       << "energy.tvarak.pJ          " << tvarakEnergy << "\n"
       << "energy.total.pJ           " << totalEnergy() << "\n"
       << "red.readVerifications     " << readVerifications << "\n"
       << "red.redundancyUpdates     " << redundancyUpdates << "\n"
       << "red.diffCaptures          " << diffCaptures << "\n"
       << "red.diffEvictions         " << diffEvictions << "\n"
       << "red.invalidations         " << redundancyInvalidations << "\n"
       << "red.corruptionsDetected   " << corruptionsDetected << "\n"
       << "red.recoveries            " << recoveries << "\n"
       << "red.degradedReads         " << degradedReads << "\n"
       << "red.degradedReadsMulti    " << degradedReadsMulti << "\n"
       << "red.degradedWritesDropped " << degradedWritesDropped << "\n"
       << "red.degradedRedSkips      " << degradedRedSkips << "\n"
       << "red.rebuildLines          " << rebuildLines << "\n"
       << "red.rebuildRestarts       " << rebuildRestarts << "\n"
       << "red.scrubLines            " << scrubLines << "\n"
       << "red.scrubRepairs          " << scrubRepairs << "\n"
       << "sw.checksumBytes          " << swChecksumBytes << "\n"
       << "sw.txCommits              " << txCommits << "\n";
}

namespace {

/** @return true (with @p out set) if @p a and @p b differ. */
template <typename T>
bool
diffScalar(const char *name, T a, T b, std::string &out)
{
    if (a == b)
        return false;
    std::ostringstream os;
    os << name << ": " << a << " != " << b;
    out = os.str();
    return true;
}

bool
diffVector(const char *name, const std::vector<Cycles> &a,
           const std::vector<Cycles> &b, std::string &out)
{
    if (a.size() != b.size()) {
        std::ostringstream os;
        os << name << ": size " << a.size() << " != " << b.size();
        out = os.str();
        return true;
    }
    for (std::size_t i = 0; i < a.size(); i++) {
        if (a[i] != b[i]) {
            std::ostringstream os;
            os << name << "[" << i << "]: " << a[i] << " != " << b[i];
            out = os.str();
            return true;
        }
    }
    return false;
}

}  // namespace

std::string
statsDiff(const Stats &a, const Stats &b)
{
    std::string d;
    if (diffVector("threadCycles", a.threadCycles, b.threadCycles, d) ||
        diffVector("dimmBusyCycles", a.dimmBusyCycles, b.dimmBusyCycles,
                   d)) {
        return d;
    }
// Field names use the member spelling, not dump()'s dotted registry
// style (whose uniqueness tvarak-lint R2 checks within this file).
#define TVARAK_DIFF_FIELD(field)                \
    if (diffScalar(#field, a.field, b.field, d)) \
        return d
    TVARAK_DIFF_FIELD(l1Accesses);
    TVARAK_DIFF_FIELD(l1Misses);
    TVARAK_DIFF_FIELD(l2Accesses);
    TVARAK_DIFF_FIELD(l2Misses);
    TVARAK_DIFF_FIELD(llcAccesses);
    TVARAK_DIFF_FIELD(llcMisses);
    TVARAK_DIFF_FIELD(tvarakCacheAccesses);
    TVARAK_DIFF_FIELD(tvarakCacheMisses);
    TVARAK_DIFF_FIELD(dramReads);
    TVARAK_DIFF_FIELD(dramWrites);
    TVARAK_DIFF_FIELD(nvmDataReads);
    TVARAK_DIFF_FIELD(nvmDataWrites);
    TVARAK_DIFF_FIELD(nvmRedundancyReads);
    TVARAK_DIFF_FIELD(nvmRedundancyWrites);
    TVARAK_DIFF_FIELD(nvmCsumLineAccesses);
    TVARAK_DIFF_FIELD(nvmParityLineAccesses);
    TVARAK_DIFF_FIELD(l1Energy);
    TVARAK_DIFF_FIELD(l2Energy);
    TVARAK_DIFF_FIELD(llcEnergy);
    TVARAK_DIFF_FIELD(dramEnergy);
    TVARAK_DIFF_FIELD(nvmEnergy);
    TVARAK_DIFF_FIELD(tvarakEnergy);
    TVARAK_DIFF_FIELD(readVerifications);
    TVARAK_DIFF_FIELD(redundancyUpdates);
    TVARAK_DIFF_FIELD(diffCaptures);
    TVARAK_DIFF_FIELD(diffEvictions);
    TVARAK_DIFF_FIELD(redundancyInvalidations);
    TVARAK_DIFF_FIELD(corruptionsDetected);
    TVARAK_DIFF_FIELD(recoveries);
    TVARAK_DIFF_FIELD(degradedReads);
    TVARAK_DIFF_FIELD(degradedReadsMulti);
    TVARAK_DIFF_FIELD(degradedWritesDropped);
    TVARAK_DIFF_FIELD(degradedRedSkips);
    TVARAK_DIFF_FIELD(rebuildLines);
    TVARAK_DIFF_FIELD(rebuildRestarts);
    TVARAK_DIFF_FIELD(scrubLines);
    TVARAK_DIFF_FIELD(scrubRepairs);
    TVARAK_DIFF_FIELD(swChecksumBytes);
    TVARAK_DIFF_FIELD(txCommits);
#undef TVARAK_DIFF_FIELD
    return "";
}

}  // namespace tvarak
