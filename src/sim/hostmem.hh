/**
 * @file
 * Host-side backing storage for the simulator's large flat arrays
 * (NVM media images, the current-value mirror — hundreds of MB that
 * the data plane hits at effectively random line granularity).
 *
 * HostBuffer allocates with mmap and asks for transparent huge pages
 * *before first touch*, so a 96MB media image costs ~48 TLB entries
 * instead of ~24k and the hot-path media reads stop paying a page
 * walk per access. This is purely a host-performance choice: the
 * bytes, their zero-initialization, and every simulated Stat are
 * identical to a plain std::vector backing (the huge-page request is
 * advisory and its failure is ignored).
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "sim/log.hh"

namespace tvarak {

/** A fixed-size, zero-initialized, movable byte buffer backed by mmap
 *  with a transparent-huge-page hint (falls back to operator new off
 *  Linux). Deliberately vector-shaped: data/size/begin/end/[]. */
class HostBuffer
{
  public:
    HostBuffer() = default;

    explicit HostBuffer(std::size_t bytes) : size_(bytes)
    {
        if (bytes == 0)
            return;
#if defined(__linux__)
        void *p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                         MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
        fatal_if(p == MAP_FAILED, "HostBuffer: mmap of %zu bytes failed",
                 bytes);
        data_ = static_cast<std::uint8_t *>(p);
#if defined(MADV_HUGEPAGE)
        // Advisory, and it must land before the first touch: pages
        // fault in huge from the start instead of waiting for
        // khugepaged to collapse them long after the run is over.
        (void)::madvise(data_, bytes, MADV_HUGEPAGE);
#endif
#else
        data_ = new std::uint8_t[bytes]();
#endif
    }

    HostBuffer(const HostBuffer &) = delete;
    HostBuffer &operator=(const HostBuffer &) = delete;

    HostBuffer(HostBuffer &&other) noexcept
        : data_(other.data_), size_(other.size_)
    {
        other.data_ = nullptr;
        other.size_ = 0;
    }

    HostBuffer &
    operator=(HostBuffer &&other) noexcept
    {
        if (this != &other) {
            release();
            data_ = other.data_;
            size_ = other.size_;
            other.data_ = nullptr;
            other.size_ = 0;
        }
        return *this;
    }

    ~HostBuffer() { release(); }

    std::uint8_t *data() { return data_; }
    const std::uint8_t *data() const { return data_; }
    std::size_t size() const { return size_; }

    std::uint8_t *begin() { return data_; }
    std::uint8_t *end() { return data_ + size_; }
    const std::uint8_t *begin() const { return data_; }
    const std::uint8_t *end() const { return data_ + size_; }

    std::uint8_t &operator[](std::size_t i) { return data_[i]; }
    const std::uint8_t &operator[](std::size_t i) const
    {
        return data_[i];
    }

  private:
    void
    release()
    {
#if defined(__linux__)
        if (data_ != nullptr)
            ::munmap(data_, size_);
#else
        delete[] data_;
#endif
        data_ = nullptr;
        size_ = 0;
    }

    std::uint8_t *data_ = nullptr;
    std::size_t size_ = 0;
};

}  // namespace tvarak
