/**
 * @file
 * Deterministic random number generation for workloads.
 *
 * Rng is a xoshiro256** generator seeded via SplitMix64; ZipfGenerator
 * produces the skewed key distribution YCSB uses (the paper's N-Store
 * runs use "90% of transactions go to 10% of tuples"; a zipfian with
 * theta ~= 0.99 plus a hot-set remap reproduces that).
 */

#pragma once

#include <cstdint>
#include <vector>

namespace tvarak {

/** xoshiro256** PRNG; fast, deterministic, seedable. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Uniform 64-bit value. */
    std::uint64_t next();

    /** Uniform value in [0, bound). @pre bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p. */
    bool nextBool(double p);

  private:
    std::uint64_t s_[4];
};

/**
 * Zipfian generator over [0, n) using the Gray/Jim YCSB rejection-free
 * formula (Knuth vol. 3). Item 0 is the most popular.
 */
class ZipfGenerator
{
  public:
    ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed = 1);

    /** Draw one item id in [0, n). */
    std::uint64_t next();

    std::uint64_t items() const { return n_; }

  private:
    double zeta(std::uint64_t n, double theta) const;

    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
    Rng rng_;
};

/**
 * Hot-set distribution: with probability @p hotFrac the draw is uniform
 * over the first hotItems ids, otherwise uniform over the rest. The
 * paper's "90% of transactions go to 10% of tuples" is
 * HotSetGenerator(n, 0.10, 0.90).
 */
class HotSetGenerator
{
  public:
    HotSetGenerator(std::uint64_t n, double hotItemFrac, double hotOpFrac,
                    std::uint64_t seed = 1);

    std::uint64_t next();

  private:
    std::uint64_t n_;
    std::uint64_t hotItems_;
    double hotOpFrac_;
    Rng rng_;
};

}  // namespace tvarak

