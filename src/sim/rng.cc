#include "sim/rng.hh"

#include <cmath>

#include "sim/log.hh"

namespace tvarak {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    panic_if(bound == 0, "nextBounded(0)");
    // Lemire-style multiply-shift; bias is negligible for our bounds.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta,
                             std::uint64_t seed)
    : n_(n), theta_(theta), rng_(seed)
{
    panic_if(n == 0, "zipf over empty set");
    zetan_ = zeta(n_, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    double zeta2 = zeta(2, theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
        (1.0 - zeta2 / zetan_);
}

double
ZipfGenerator::zeta(std::uint64_t n, double theta) const
{
    double sum = 0;
    for (std::uint64_t i = 1; i <= n; i++)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

std::uint64_t
ZipfGenerator::next()
{
    double u = rng_.nextDouble();
    double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    auto v = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
}

HotSetGenerator::HotSetGenerator(std::uint64_t n, double hotItemFrac,
                                 double hotOpFrac, std::uint64_t seed)
    : n_(n),
      hotItems_(static_cast<std::uint64_t>(
          static_cast<double>(n) * hotItemFrac)),
      hotOpFrac_(hotOpFrac),
      rng_(seed)
{
    panic_if(n == 0, "hot-set over empty set");
    if (hotItems_ == 0)
        hotItems_ = 1;
    if (hotItems_ > n_)
        hotItems_ = n_;
}

std::uint64_t
HotSetGenerator::next()
{
    if (hotItems_ < n_ && !rng_.nextBool(hotOpFrac_)) {
        return hotItems_ + rng_.nextBounded(n_ - hotItems_);
    }
    return rng_.nextBounded(hotItems_);
}

}  // namespace tvarak
