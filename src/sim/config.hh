/**
 * @file
 * Simulation parameters.
 *
 * Defaults reproduce Table III of the TVARAK paper (ISCA 2020):
 * 12 Westmere-like cores at 2.27 GHz, 32 KB L1s, 256 KB L2s, a 24 MB
 * shared inclusive LLC in 12 x 2 MB 16-way banks, 6 DRAM DIMMs at 15 ns
 * and 4 NVM DIMMs at 60/150 ns read/write (Lee et al. PCM parameters),
 * and a TVARAK controller per LLC bank with a 4 KB on-controller cache,
 * 2 LLC ways reserved for redundancy caching and 1 way for data diffs.
 */

#pragma once

#include <cstddef>

#include "sim/types.hh"

namespace tvarak {

/**
 * Which redundancy design a simulation runs. The enum is the stable
 * on-disk/serialization identity of a design; all behavioral dispatch
 * goes through the `Design` objects in redundancy/registry.hh, which
 * is the only translation unit allowed to switch over it (lint R8).
 */
enum class DesignKind {
    /** No redundancy maintenance at all. */
    Baseline,
    /** Hardware offload at the LLC banks (the paper's contribution). */
    Tvarak,
    /** Software object-granular checksums at transaction boundary
     *  (Pangolin-like). */
    TxBObjectCsums,
    /** Software page-granular checksums at transaction boundary
     *  (Mojim/HotPot-like). */
    TxBPageCsums,
    /** Software page-granular checksums batched over epochs
     *  (Vilamb, Kateja et al. 2020). */
    Vilamb,
};

/** Printable name of a design (implemented by the design registry). */
const char *designName(DesignKind kind);

/** Parameters of one cache level. */
struct CacheParams {
    std::size_t sizeBytes;
    std::size_t ways;
    Cycles latency;          //!< access latency charged on a hit
    PicoJoules hitEnergy;    //!< per-hit energy (pJ)
    PicoJoules missEnergy;   //!< per-miss (tag probe + fill) energy (pJ)
};

/** DRAM timing/energy. The paper gives 15 ns reads/writes; it does not
 *  quote DRAM energy, so we document a 1.3 nJ/access assumption. */
struct DramParams {
    std::size_t sizeBytes = 512ull << 20;
    double accessNs = 15.0;
    PicoJoules accessEnergy = 1300.0;
};

/** NVM array parameters (Table III, from Lee et al. [37]). */
struct NvmParams {
    std::size_t dimms = 4;
    std::size_t dimmBytes = 512ull << 20;
    double readNs = 60.0;
    double writeNs = 150.0;
    PicoJoules readEnergy = 1600.0;   //!< 1.6 nJ
    PicoJoules writeEnergy = 9000.0;  //!< 9 nJ
    /**
     * Fraction of the device read/write latency for which an access
     * occupies the DIMM (bandwidth model). Internal banking and write
     * buffering let a DIMM overlap parts of concurrent accesses;
     * 1.0 = fully serialized. Writes overlap more (buffered).
     */
    double occupancyReadFactor = 0.02;
    double occupancyWriteFactor = 0.01;
    /**
     * Parity members per stripe (the k of an n+k code). 1 is the
     * paper's RAID-5 XOR geometry; k >= 2 selects the Reed-Solomon
     * designs. Set through Design::adjustConfig (tvarak-rs4+2 etc.),
     * not by hand — the value must match the active design's codec.
     */
    std::size_t parityDimms = 1;
    /**
     * DIMMs per failure domain (adjacent indices share a domain: a
     * domain fault takes out dimmsPerDomain consecutive DIMMs, e.g. a
     * riser card or power rail). Page striping already places a
     * stripe's members on distinct DIMMs, so a domain loss costs at
     * most dimmsPerDomain stripe members — survivable iff
     * dimmsPerDomain <= the design's survivableFailures().
     */
    std::size_t dimmsPerDomain = 1;
};

/** TVARAK controller parameters and design-ablation switches. */
struct TvarakParams {
    /** On-controller redundancy cache size (per LLC bank). */
    std::size_t cacheBytes = 4096;
    std::size_t cacheWays = 8;
    Cycles cacheLatency = 1;
    PicoJoules cacheHitEnergy = 15.0;
    PicoJoules cacheMissEnergy = 33.0;
    /** Cycles for DAX address range matching (comparators). */
    Cycles rangeMatchLatency = 2;
    /**
     * If true, NVM->LLC fills block until the DAX-CL-checksum
     * verification completes (adds its latency to the demand path).
     * The default models verification concurrent with data delivery:
     * the controller raises an interrupt on mismatch (Section III-E),
     * so the common case costs bandwidth and energy but no latency.
     */
    bool syncVerification = false;
    /** Cycles per checksum/parity computation or verification. */
    Cycles computeLatency = 1;
    /** LLC ways (out of llc.ways) reserved for caching redundancy. */
    std::size_t redundancyWays = 2;
    /** LLC ways reserved for storing data diffs. */
    std::size_t diffWays = 1;

    /**
     * @name Fig 9 ablation switches (all on == full TVARAK).
     *
     * Deprecated as user-facing knobs: select a registered design
     * variant instead (`--design tvarak-naive` /
     * `tvarak-no-red-cache` / `tvarak-no-diffs`), whose
     * `Design::adjustConfig()` forces these fields. They remain in
     * SimConfig only because the frozen trace header serializes them;
     * the plain "tvarak" design leaves them untouched so old traces
     * that recorded non-default values still replay identically.
     */
    /**@{*/
    /** Cache-line granular checksums; off = page-granular naive
     *  checksums that force whole-page reads on every writeback. */
    bool useDaxClChecksums = true;
    /** Cache redundancy lines (on-controller cache + LLC partition);
     *  off = every redundancy access goes to NVM. */
    bool useRedundancyCaching = true;
    /** Keep data diffs in an LLC partition; off = re-read old data
     *  from NVM at writeback time (also the exclusive-LLC config). */
    bool useDataDiffs = true;
    /**@}*/
};

/** Whole-machine configuration (defaults == Table III). */
struct SimConfig {
    std::size_t cores = 12;
    double coreGhz = 2.27;

    CacheParams l1{32 * 1024, 8, 4, 15.0, 33.0};
    CacheParams l2{256 * 1024, 8, 7, 46.0, 94.0};
    /** One LLC bank (paper: 12 banks of 2 MB, 16-way, 27 cycles). */
    CacheParams llcBank{2 * 1024 * 1024, 16, 27, 240.0, 500.0};
    std::size_t llcBanks = 12;

    DramParams dram;
    NvmParams nvm;
    TvarakParams tvarak;

    /**
     * Store latency charged on the issuing thread. Stores retire
     * through the store buffer in an OOO core, so beyond the issue
     * cycle only a fraction of the miss path lands on the critical
     * path (sustained store misses drain at a store-queue-limited
     * rate).
     */
    Cycles storeIssueCycles = 1;
    double storeMissLatencyFactor = 0.25;

    /**
     * Next-line LLC prefetch degree on sequentially-striding demand
     * misses (0 disables). Sequential workloads hide fill and
     * verification latency behind prefetches, exactly why the paper
     * sees near-zero TVARAK overhead for sequential access patterns.
     */
    std::size_t prefetchDegree = 4;

    /** Software checksum throughput, bytes per core cycle. Westmere
     *  has the SSE4.2 crc32 instruction (8 B per cycle sustained);
     *  used by the TxB schemes. */
    double swChecksumBytesPerCycle = 8.0;

    /** Convert nanoseconds to core cycles. */
    Cycles nsToCycles(double ns) const
    {
        return static_cast<Cycles>(ns * coreGhz + 0.5);
    }

    /** Sanity-check invariants (way counts, partition sizes, ...). */
    void validate() const;
};

}  // namespace tvarak

