/**
 * @file
 * Central statistics block.
 *
 * One Stats object is owned by the MemorySystem and shared (by
 * reference) with every component. Fields map directly onto the
 * quantities plotted in the paper's Figure 8: runtime (cycles), energy
 * (pJ, by component), NVM accesses split into data vs. redundancy, and
 * cache accesses split by level including the on-TVARAK cache.
 */

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace tvarak {

struct Stats {
    explicit Stats(std::size_t threads, std::size_t dimms)
        : threadCycles(threads, 0), dimmBusyCycles(dimms, 0)
    {}

    /** @name Runtime (fixed-work methodology) */
    /**@{*/
    std::vector<Cycles> threadCycles;     //!< demand-path cycles per thread
    std::vector<Cycles> dimmBusyCycles;   //!< occupancy per NVM DIMM
    /**@}*/

    /** @name Cache accesses (Fig 8, fourth column) */
    /**@{*/
    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t llcAccesses = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t tvarakCacheAccesses = 0;
    std::uint64_t tvarakCacheMisses = 0;
    /**@}*/

    /** @name Memory accesses (Fig 8, third column) */
    /**@{*/
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t nvmDataReads = 0;
    std::uint64_t nvmDataWrites = 0;
    std::uint64_t nvmRedundancyReads = 0;   //!< checksum/parity/diff traffic
    std::uint64_t nvmRedundancyWrites = 0;
    std::uint64_t nvmCsumLineAccesses = 0;   //!< subset: checksum lines
    std::uint64_t nvmParityLineAccesses = 0; //!< subset: parity lines
    /**@}*/

    /** @name Energy (pJ, by component) */
    /**@{*/
    PicoJoules l1Energy = 0;
    PicoJoules l2Energy = 0;
    PicoJoules llcEnergy = 0;
    PicoJoules dramEnergy = 0;
    PicoJoules nvmEnergy = 0;
    PicoJoules tvarakEnergy = 0;
    /**@}*/

    /** @name TVARAK / redundancy events */
    /**@{*/
    std::uint64_t readVerifications = 0;    //!< NVM->LLC reads verified
    std::uint64_t redundancyUpdates = 0;    //!< LLC->NVM writebacks covered
    std::uint64_t diffCaptures = 0;         //!< data diffs stored in LLC
    std::uint64_t diffEvictions = 0;        //!< diff-partition evictions
    std::uint64_t redundancyInvalidations = 0;  //!< MESI invals, ctrl caches
    std::uint64_t corruptionsDetected = 0;
    std::uint64_t recoveries = 0;       //!< lines/pages rebuilt from parity
    /**@}*/

    /** @name Degraded mode / rebuild / scrub (whole-DIMM failure) */
    /**@{*/
    std::uint64_t degradedReads = 0;    //!< fills reconstructed via parity
    std::uint64_t degradedReadsMulti = 0;  //!< ...served with >= 2 DIMMs down
    std::uint64_t degradedWritesDropped = 0;  //!< writebacks to dead DIMM
    std::uint64_t degradedRedSkips = 0; //!< csum/parity updates skipped
    std::uint64_t rebuildLines = 0;     //!< lines restored by RebuildEngine
    std::uint64_t rebuildRestarts = 0;  //!< rebuilds aborted by a new fault
    std::uint64_t scrubLines = 0;       //!< lines verified by the scrubber
    std::uint64_t scrubRepairs = 0;     //!< lines/pages the scrubber fixed
    /**@}*/

    /** @name Software-scheme events */
    /**@{*/
    std::uint64_t swChecksumBytes = 0;      //!< bytes checksummed in sw
    std::uint64_t txCommits = 0;
    /**@}*/

    /** Sum of all per-component energies. */
    PicoJoules totalEnergy() const
    {
        return l1Energy + l2Energy + llcEnergy + dramEnergy + nvmEnergy +
            tvarakEnergy;
    }

    std::uint64_t nvmReads() const { return nvmDataReads + nvmRedundancyReads; }
    std::uint64_t nvmWrites() const
    {
        return nvmDataWrites + nvmRedundancyWrites;
    }
    std::uint64_t nvmAccesses() const { return nvmReads() + nvmWrites(); }
    std::uint64_t cacheAccesses() const
    {
        return l1Accesses + l2Accesses + llcAccesses + tvarakCacheAccesses;
    }

    /** Max over threads of demand cycles. */
    Cycles maxThreadCycles() const;
    /** Max over DIMMs of busy cycles. */
    Cycles maxDimmBusyCycles() const;
    /**
     * Reported runtime: fixed work finishes when the slowest thread
     * retires and the most-loaded DIMM drains (bandwidth bound).
     */
    Cycles runtimeCycles() const;

    /** Human-readable dump of every counter. */
    void dump(std::ostream &os) const;

    /** Zero every counter (thread/DIMM vectors keep their size). */
    void reset();
};

/**
 * Field-by-field comparison of two Stats blocks (exact, including
 * energies: bit-identical runs must produce bit-identical doubles).
 * @return empty string when equal, otherwise a one-line description
 *         of the first differing field with both values.
 */
std::string statsDiff(const Stats &a, const Stats &b);

}  // namespace tvarak

