/**
 * @file
 * Backend detection and dispatch for the data-plane kernels.
 *
 * The active table is a single pointer: ops() costs one load, and the
 * kernels themselves are reached through the table's function pointers
 * — no per-call CPUID or feature branches. The pointer starts at the
 * scalar table (safe under any static-initialization order) and is
 * upgraded once during startup to the best available backend, unless
 * TVARAK_KERNEL pins one.
 */

#include "kernels/tables.hh"

#include <cstdlib>
#include <cstring>

namespace tvarak::kernels {

namespace detail {
constinit const KernelOps *gActive = &kScalarOps;
}  // namespace detail

namespace {

bool
cpuHas(Backend b)
{
#if defined(__x86_64__)
    switch (b) {
      case Backend::Scalar:
        return true;
      case Backend::Sse42:
        return __builtin_cpu_supports("sse4.2") != 0;
      case Backend::Avx2:
        return __builtin_cpu_supports("avx2") != 0 &&
               __builtin_cpu_supports("sse4.2") != 0;
    }
    return false;
#else
    return b == Backend::Scalar;
#endif
}

const KernelOps &
tableOf(Backend b)
{
    switch (b) {
      case Backend::Sse42:
        return kSse42Ops;
      case Backend::Avx2:
        return kAvx2Ops;
      case Backend::Scalar:
        break;
    }
    return kScalarOps;
}

/** Resolve TVARAK_KERNEL once at startup; unknown or unavailable
 *  values silently fall back to auto (the best backend). */
struct DispatchInit {
    DispatchInit()
    {
        const char *env = std::getenv("TVARAK_KERNEL");
        if (env == nullptr || !selectBackend(env))
            selectBackend(bestBackend());
    }
};

const DispatchInit gDispatchInit;

}  // namespace

const KernelOps &
opsFor(Backend b)
{
    return tableOf(b);
}

const char *
backendName(Backend b)
{
    return tableOf(b).name;
}

bool
backendAvailable(Backend b)
{
    static const bool have[kBackendCount] = {
        cpuHas(Backend::Scalar),
        cpuHas(Backend::Sse42),
        cpuHas(Backend::Avx2),
    };
    return have[static_cast<std::size_t>(b)];
}

Backend
activeBackend()
{
    if (detail::gActive == &kAvx2Ops)
        return Backend::Avx2;
    if (detail::gActive == &kSse42Ops)
        return Backend::Sse42;
    return Backend::Scalar;
}

Backend
bestBackend()
{
    if (backendAvailable(Backend::Avx2))
        return Backend::Avx2;
    if (backendAvailable(Backend::Sse42))
        return Backend::Sse42;
    return Backend::Scalar;
}

bool
selectBackend(Backend b)
{
    if (!backendAvailable(b))
        return false;
    detail::gActive = &tableOf(b);
    return true;
}

bool
selectBackend(std::string_view name)
{
    if (name == "auto")
        return selectBackend(bestBackend());
    for (std::size_t i = 0; i < kBackendCount; i++) {
        Backend b = static_cast<Backend>(i);
        if (name == backendName(b))
            return selectBackend(b);
    }
    return false;
}

std::uint64_t
fletcher64(const void *data, std::size_t n)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint64_t lo = 0, hi = 0;
    std::size_t words = n / 4;
    for (std::size_t i = 0; i < words; i++) {
        std::uint32_t w;
        std::memcpy(&w, p + i * 4, 4);
        lo += w;
        hi += lo;
    }
    // Trailing bytes (if any) are folded in one at a time.
    for (std::size_t i = words * 4; i < n; i++) {
        lo += p[i];
        hi += lo;
    }
    return (hi << 32) | (lo & 0xffffffffull);
}

}  // namespace tvarak::kernels
