/**
 * @file
 * Portable scalar backend — the reference every SIMD backend must
 * match bit-for-bit (tests/test_kernels.cc).
 */

#include <cstring>

#include "kernels/tables.hh"

namespace tvarak::kernels {

namespace detail {

namespace {

constexpr std::size_t kWordBytes = sizeof(std::uint64_t);
constexpr std::size_t kLineWords = kLineBytes / kWordBytes;

std::uint64_t
loadWord(const std::uint8_t *p)
{
    std::uint64_t w;
    std::memcpy(&w, p, kWordBytes);
    return w;
}

void
storeWord(std::uint8_t *p, std::uint64_t w)
{
    std::memcpy(p, &w, kWordBytes);
}

}  // namespace

std::uint32_t
scalarCrc32c(const void *data, std::size_t n, std::uint32_t seed)
{
    const CrcTables &tb = crcTables();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t crc = ~seed;
    while (n >= kWordBytes) {
        crc = crcWordStep(tb, crc, loadWord(p));
        p += kWordBytes;
        n -= kWordBytes;
    }
    while (n--)
        crc = tb.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
    return ~crc;
}

void
scalarXorInto(void *dst, const void *src, std::size_t n)
{
    auto *d = static_cast<std::uint8_t *>(dst);
    const auto *s = static_cast<const std::uint8_t *>(src);
    while (n >= kWordBytes) {
        storeWord(d, loadWord(d) ^ loadWord(s));
        d += kWordBytes;
        s += kWordBytes;
        n -= kWordBytes;
    }
    while (n--)
        *d++ ^= *s++;
}

bool
scalarXorDiff3(void *diff, const void *a, const void *b, std::size_t n)
{
    auto *o = static_cast<std::uint8_t *>(diff);
    const auto *pa = static_cast<const std::uint8_t *>(a);
    const auto *pb = static_cast<const std::uint8_t *>(b);
    std::uint64_t acc = 0;
    while (n >= kWordBytes) {
        std::uint64_t w = loadWord(pa) ^ loadWord(pb);
        storeWord(o, w);
        acc |= w;
        o += kWordBytes;
        pa += kWordBytes;
        pb += kWordBytes;
        n -= kWordBytes;
    }
    while (n--) {
        std::uint8_t v = *pa++ ^ *pb++;
        *o++ = v;
        acc |= v;
    }
    return acc != 0;
}

bool
scalarIsZero(const void *data, std::size_t n)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint64_t acc = 0;
    while (n >= kWordBytes) {
        acc |= loadWord(p);
        p += kWordBytes;
        n -= kWordBytes;
    }
    while (n--)
        acc |= *p++;
    return acc == 0;
}

void
scalarGfMulAcc(void *dst, const void *src, std::uint8_t c, std::size_t n)
{
    if (c == 0)
        return;
    if (c == 1) {
        scalarXorInto(dst, src, n);
        return;
    }
    const GfTables &tb = gfTables();
    const unsigned logc = tb.logt[c];
    auto *d = static_cast<std::uint8_t *>(dst);
    const auto *s = static_cast<const std::uint8_t *>(src);
    for (std::size_t i = 0; i < n; i++) {
        if (s[i] != 0)
            d[i] ^= tb.alog[logc + tb.logt[s[i]]];
    }
}

void
scalarCopyLine(void *dst, const void *src)
{
    std::memcpy(dst, src, kLineBytes);
}

std::size_t
scalarFindTag(const std::uint64_t *tags, std::size_t n,
              std::uint64_t key)
{
    for (std::size_t i = 0; i < n; i++) {
        if (tags[i] == key)
            return i;
    }
    return n;
}

void
scalarApplyRoles(const SeqDesc &d)
{
    for (std::size_t r = 0; r < d.roles; r++)
        scalarGfMulAcc(d.parity[r], d.src, d.coeff[r], kLineBytes);
}

bool
scalarSequence(const SeqDesc &d)
{
    const CrcTables &ct = crcTables();
    std::uint64_t acc = 0;
    std::uint32_t crc = ~0u;
    if (d.diffOut != nullptr) {
        for (std::size_t w = 0; w < kLineWords; w++) {
            std::uint64_t nw = loadWord(d.newData + w * kWordBytes);
            std::uint64_t dw =
                loadWord(d.oldData + w * kWordBytes) ^ nw;
            storeWord(d.diffOut + w * kWordBytes, dw);
            acc |= dw;
            if (d.csumOut != nullptr)
                crc = crcWordStep(ct, crc, nw);
        }
    } else {
        for (std::size_t w = 0; w < kLineWords; w++) {
            std::uint64_t sw = loadWord(d.src + w * kWordBytes);
            acc |= sw;
            if (d.csumOut != nullptr)
                crc = crcWordStep(ct, crc, sw);
        }
    }
    if (d.csumOut != nullptr)
        *d.csumOut = d.csumTag |
            static_cast<std::uint64_t>(static_cast<std::uint32_t>(~crc));
    // A zero source makes every role update the identity; skip them.
    if (acc != 0)
        scalarApplyRoles(d);
    return acc != 0;
}

}  // namespace detail

const KernelOps kScalarOps = {
    "scalar",
    detail::scalarCrc32c,
    detail::scalarXorInto,
    detail::scalarXorDiff3,
    detail::scalarIsZero,
    detail::scalarGfMulAcc,
    detail::scalarCopyLine,
    detail::scalarFindTag,
    detail::scalarSequence,
};

}  // namespace tvarak::kernels
