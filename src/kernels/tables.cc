/**
 * @file
 * Construction of the kernels' lookup tables.
 */

#include "kernels/tables.hh"

namespace tvarak::kernels::detail {

CrcTables::CrcTables()
{
    constexpr std::uint32_t poly = 0x82f63b78u;  // reflected 0x1EDC6F41
    for (std::uint32_t i = 0; i < 256; i++) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; k++)
            c = (c & 1) ? (poly ^ (c >> 1)) : (c >> 1);
        t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; i++) {
        std::uint32_t c = t[0][i];
        for (std::size_t s = 1; s < 8; s++) {
            c = t[0][c & 0xff] ^ (c >> 8);
            t[s][i] = c;
        }
    }
}

const CrcTables &
crcTables()
{
    static const CrcTables t;
    return t;
}

GfTables::GfTables()
{
    constexpr unsigned kPoly = 0x11D;  // x^8 + x^4 + x^3 + x^2 + 1
    unsigned v = 1;
    for (unsigned e = 0; e < 255; e++) {
        alog[e] = static_cast<std::uint8_t>(v);
        alog[e + 255] = static_cast<std::uint8_t>(v);
        logt[v] = static_cast<std::uint8_t>(e);
        v <<= 1;
        if (v & 0x100)
            v ^= kPoly;
    }
    logt[0] = 0;  // never consulted: multiply special-cases 0

    auto mul = [this](std::uint8_t a, std::uint8_t b) -> std::uint8_t {
        if (a == 0 || b == 0)
            return 0;
        return alog[logt[a] + logt[b]];
    };
    for (unsigned c = 0; c < 256; c++) {
        for (unsigned x = 0; x < 16; x++) {
            mulLo[c][x] = mul(static_cast<std::uint8_t>(c),
                              static_cast<std::uint8_t>(x));
            mulHi[c][x] = mul(static_cast<std::uint8_t>(c),
                              static_cast<std::uint8_t>(x << 4));
        }
    }
}

const GfTables &
gfTables()
{
    static const GfTables t;
    return t;
}

}  // namespace tvarak::kernels::detail
