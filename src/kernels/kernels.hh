/**
 * @file
 * Runtime-dispatched data-plane kernels.
 *
 * Every byte loop the simulator's data plane runs — CRC-32C, XOR
 * parity/diff application, GF(2^8) multiply-accumulate for the
 * Reed-Solomon designs, cache tag scans — lives behind the KernelOps
 * function-pointer table defined here. Three backends implement the
 * table: portable scalar, SSE4.2 (hardware CRC32), and AVX2. The best
 * available backend is chosen once at startup by CPUID; the hot path
 * pays one indirect call and stays branch-free.
 *
 * Selection is overridable for testing and benchmarking:
 *   - environment: TVARAK_KERNEL=scalar|sse42|avx2|auto
 *   - programmatic: selectBackend() (the bench drivers' --kernel flag)
 *
 * Every backend is bit-identical to scalar by construction — CRC-32C
 * is a pure function, XOR is XOR, and GF(2^8) multiplication
 * distributes over XOR so the nibble-table SIMD formulation equals the
 * log/alog scalar one. tests/test_kernels.cc pins this property on
 * random buffers, and the golden-trace replay tests pin that simulated
 * Stats do not depend on the backend.
 *
 * KernelSequence chains {capture-diff, k parity-role updates,
 * checksum} over one cache line into a single pass, modeled on SPDK's
 * chained accel sequences (spdk_accel_append_*): callers append the
 * ops they need and run() executes the fused loop.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "sim/types.hh"

namespace tvarak::kernels {

/** Kernel backend tiers, in ascending preference order. */
enum class Backend { Scalar = 0, Sse42 = 1, Avx2 = 2 };

constexpr std::size_t kBackendCount = 3;

/** Parity roles a single sequence can update (max supported k). */
constexpr std::size_t kSeqMaxRoles = 8;

/**
 * One fused pass over a single cache line, built by KernelSequence.
 *
 * Modes:
 *   - capture: diffOut = oldData ^ newData (src == diffOut after the
 *     builder runs); the checksum, if requested, covers newData.
 *   - source:  src supplied directly (no capture); the checksum, if
 *     requested, covers src.
 *
 * Parity roles apply parity[r] ^= coeff[r] * src over GF(2^8) (a
 * coefficient of 1 degenerates to plain XOR). Roles are skipped when
 * the src line is all zero — the update would be the identity.
 */
struct SeqDesc {
    const std::uint8_t *src = nullptr;      //!< diff source (kLineBytes)
    const std::uint8_t *oldData = nullptr;  //!< capture mode only
    const std::uint8_t *newData = nullptr;  //!< capture mode only
    std::uint8_t *diffOut = nullptr;        //!< capture mode only
    std::uint64_t *csumOut = nullptr;       //!< widened checksum out
    std::uint64_t csumTag = 0;              //!< high-byte tag to fold in
    std::uint8_t *parity[kSeqMaxRoles] = {};
    std::uint8_t coeff[kSeqMaxRoles] = {};
    std::size_t roles = 0;
};

/**
 * The per-backend kernel table. All buffer kernels accept arbitrary
 * lengths and alignments; `sequence` operates on whole cache lines.
 */
struct KernelOps {
    const char *name;

    /** CRC-32C (Castagnoli), incremental over @p seed. */
    std::uint32_t (*crc32c)(const void *data, std::size_t n,
                            std::uint32_t seed);

    /** dst ^= src over @p n bytes. */
    void (*xorInto)(void *dst, const void *src, std::size_t n);

    /** diff = a ^ b over @p n bytes; true iff any diff byte is set. */
    bool (*xorDiff3)(void *diff, const void *a, const void *b,
                     std::size_t n);

    /** True iff all @p n bytes are zero. */
    bool (*isZero)(const void *data, std::size_t n);

    /** dst ^= c * src over GF(2^8) / 0x11D, @p n bytes. */
    void (*gfMulAcc)(void *dst, const void *src, std::uint8_t c,
                     std::size_t n);

    /** Copy one cache line (kLineBytes). */
    void (*copyLine)(void *dst, const void *src);

    /** Index of @p key in @p tags[0..n), or @p n if absent (cache tag
     *  scan; first match wins). */
    std::size_t (*findTag)(const std::uint64_t *tags, std::size_t n,
                           std::uint64_t key);

    /** Run a fused line pass; returns true iff the src line was
     *  nonzero (capture mode: iff old and new differ). */
    bool (*sequence)(const SeqDesc &d);
};

namespace detail {
extern const KernelOps *gActive;
}  // namespace detail

/** The active backend's kernel table (hot-path accessor). */
inline const KernelOps &
ops()
{
    return *detail::gActive;
}

/** The table of a specific backend. @pre backendAvailable(b). */
const KernelOps &opsFor(Backend b);

/** Lower-case backend name ("scalar", "sse42", "avx2"). */
const char *backendName(Backend b);

/** Can this CPU run backend @p b? Scalar is always available. */
bool backendAvailable(Backend b);

/** The backend ops() currently dispatches to. */
Backend activeBackend();

/** The best backend this CPU supports (what "auto" resolves to). */
Backend bestBackend();

/**
 * Route ops() to @p b.
 * @return false (and leave dispatch unchanged) if unavailable.
 */
bool selectBackend(Backend b);

/**
 * Route ops() by name: "scalar", "sse42", "avx2", or "auto".
 * @return false (and leave dispatch unchanged) on unknown names or
 *         unavailable backends.
 */
bool selectBackend(std::string_view name);

/** Fletcher-64 over 32-bit words (shared scalar implementation). */
std::uint64_t fletcher64(const void *data, std::size_t n);

/**
 * Builder for one fused pass over a cache line. Typical writeback:
 *
 *   KernelSequence seq;
 *   seq.captureDiff(diff, oldData, newData)
 *      .checksum(&csum, kTag)
 *      .parityXor(p0)
 *      .parityGfMac(p1, c1);
 *   bool dirty = seq.run();
 */
class KernelSequence
{
  public:
    /** diff = oldData ^ newData; the diff drives parity roles. */
    KernelSequence &
    captureDiff(std::uint8_t *diff, const std::uint8_t *oldData,
                const std::uint8_t *newData)
    {
        d_.diffOut = diff;
        d_.oldData = oldData;
        d_.newData = newData;
        d_.src = diff;
        return *this;
    }

    /** Use @p src directly as the parity-role source (no capture). */
    KernelSequence &
    source(const std::uint8_t *src)
    {
        d_.src = src;
        return *this;
    }

    /** Emit tag | crc32c(line) into @p out (capture mode checksums
     *  the new data; source mode checksums the source). */
    KernelSequence &
    checksum(std::uint64_t *out, std::uint64_t tag)
    {
        d_.csumOut = out;
        d_.csumTag = tag;
        return *this;
    }

    /** parity ^= src. */
    KernelSequence &
    parityXor(std::uint8_t *parity)
    {
        return parityGfMac(parity, 1);
    }

    /** parity ^= c * src over GF(2^8). */
    KernelSequence &
    parityGfMac(std::uint8_t *parity, std::uint8_t c)
    {
        d_.parity[d_.roles] = parity;
        d_.coeff[d_.roles] = c;
        d_.roles++;
        return *this;
    }

    /** Execute the fused pass on the active backend.
     *  @return true iff the src line was nonzero. */
    bool
    run() const
    {
        return ops().sequence(d_);
    }

  private:
    SeqDesc d_;
};

}  // namespace tvarak::kernels
