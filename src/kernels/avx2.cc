/**
 * @file
 * AVX2 backend: 32-byte XOR/zero-test/GF lanes, a 4-wide cache tag
 * scan, and the fused line sequence in two 32-byte chunks. CRC-32C
 * still uses the SSE4.2 hardware instruction — every AVX2 part has it,
 * and it beats any table walk.
 *
 * On non-x86 builds every slot aliases the scalar backend, and the
 * dispatcher reports the backend unavailable.
 */

#include "kernels/tables.hh"

#if defined(__x86_64__)

#include <immintrin.h>

#include <cstring>

namespace tvarak::kernels {

namespace {

using namespace detail;

constexpr std::size_t kWordBytes = sizeof(std::uint64_t);
constexpr std::size_t kVecBytes = sizeof(__m256i);

__attribute__((target("avx2,sse4.2"))) std::uint32_t
avx2Crc32c(const void *data, std::size_t n, std::uint32_t seed)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t crc = ~seed;
    std::uint64_t c = crc;
    while (n >= kWordBytes) {
        std::uint64_t word;
        std::memcpy(&word, p, kWordBytes);
        c = _mm_crc32_u64(c, word);
        p += kWordBytes;
        n -= kWordBytes;
    }
    crc = static_cast<std::uint32_t>(c);
    while (n--)
        crc = _mm_crc32_u8(crc, *p++);
    return ~crc;
}

__attribute__((target("avx2"))) void
avx2XorInto(void *dst, const void *src, std::size_t n)
{
    auto *d = static_cast<std::uint8_t *>(dst);
    const auto *s = static_cast<const std::uint8_t *>(src);
    while (n >= kVecBytes) {
        __m256i dv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(d));
        __m256i sv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(s));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(d),
                            _mm256_xor_si256(dv, sv));
        d += kVecBytes;
        s += kVecBytes;
        n -= kVecBytes;
    }
    if (n > 0)
        scalarXorInto(d, s, n);
}

__attribute__((target("avx2"))) bool
avx2XorDiff3(void *diff, const void *a, const void *b, std::size_t n)
{
    auto *o = static_cast<std::uint8_t *>(diff);
    const auto *pa = static_cast<const std::uint8_t *>(a);
    const auto *pb = static_cast<const std::uint8_t *>(b);
    __m256i acc = _mm256_setzero_si256();
    bool tailNonzero = false;
    while (n >= kVecBytes) {
        __m256i av = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(pa));
        __m256i bv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(pb));
        __m256i dv = _mm256_xor_si256(av, bv);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(o), dv);
        acc = _mm256_or_si256(acc, dv);
        o += kVecBytes;
        pa += kVecBytes;
        pb += kVecBytes;
        n -= kVecBytes;
    }
    if (n > 0)
        tailNonzero = scalarXorDiff3(o, pa, pb, n);
    return _mm256_testz_si256(acc, acc) == 0 || tailNonzero;
}

__attribute__((target("avx2"))) bool
avx2IsZero(const void *data, std::size_t n)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    __m256i acc = _mm256_setzero_si256();
    while (n >= kVecBytes) {
        acc = _mm256_or_si256(
            acc, _mm256_loadu_si256(
                     reinterpret_cast<const __m256i *>(p)));
        p += kVecBytes;
        n -= kVecBytes;
    }
    if (_mm256_testz_si256(acc, acc) == 0)
        return false;
    return n == 0 || scalarIsZero(p, n);
}

/** chunk ^= c * src over GF(2^8), 32 bytes. @pre c > 1. */
__attribute__((target("avx2"))) inline __m256i
gfMulVec(const GfTables &tb, __m256i v, std::uint8_t c)
{
    const __m256i lo = _mm256_broadcastsi128_si256(_mm_load_si128(
        reinterpret_cast<const __m128i *>(tb.mulLo[c])));
    const __m256i hi = _mm256_broadcastsi128_si256(_mm_load_si128(
        reinterpret_cast<const __m128i *>(tb.mulHi[c])));
    const __m256i mask = _mm256_set1_epi8(0x0f);
    __m256i ln = _mm256_and_si256(v, mask);
    __m256i hn = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
    return _mm256_xor_si256(_mm256_shuffle_epi8(lo, ln),
                            _mm256_shuffle_epi8(hi, hn));
}

__attribute__((target("avx2"))) void
avx2GfMulAcc(void *dst, const void *src, std::uint8_t c, std::size_t n)
{
    if (c == 0)
        return;
    if (c == 1) {
        avx2XorInto(dst, src, n);
        return;
    }
    const GfTables &tb = gfTables();
    auto *d = static_cast<std::uint8_t *>(dst);
    const auto *s = static_cast<const std::uint8_t *>(src);
    while (n >= kVecBytes) {
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(s));
        __m256i acc = _mm256_loadu_si256(
            reinterpret_cast<__m256i *>(d));
        acc = _mm256_xor_si256(acc, gfMulVec(tb, v, c));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(d), acc);
        d += kVecBytes;
        s += kVecBytes;
        n -= kVecBytes;
    }
    if (n > 0)
        scalarGfMulAcc(d, s, c, n);
}

__attribute__((target("avx2"))) void
avx2CopyLine(void *dst, const void *src)
{
    const auto *s = static_cast<const std::uint8_t *>(src);
    auto *d = static_cast<std::uint8_t *>(dst);
    __m256i a = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(s));
    __m256i b = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(s + kVecBytes));
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(d), a);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(d + kVecBytes), b);
}

__attribute__((target("avx2"))) std::size_t
avx2FindTag(const std::uint64_t *tags, std::size_t n, std::uint64_t key)
{
    const __m256i kv = _mm256_set1_epi64x(
        static_cast<long long>(key));
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i tv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tags + i));
        int m = _mm256_movemask_pd(_mm256_castsi256_pd(
            _mm256_cmpeq_epi64(tv, kv)));
        if (m != 0) {
            return i + static_cast<std::size_t>(
                           __builtin_ctz(static_cast<unsigned>(m)));
        }
    }
    for (; i < n; i++) {
        if (tags[i] == key)
            return i;
    }
    return n;
}

__attribute__((target("avx2,sse4.2"))) bool
avx2Sequence(const SeqDesc &d)
{
    constexpr std::size_t kVecs = kLineBytes / kVecBytes;
    __m256i chunk[kVecs];
    __m256i acc = _mm256_setzero_si256();
    if (d.diffOut != nullptr) {
        for (std::size_t i = 0; i < kVecs; i++) {
            __m256i ov = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(
                    d.oldData + i * kVecBytes));
            __m256i nv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(
                    d.newData + i * kVecBytes));
            chunk[i] = _mm256_xor_si256(ov, nv);
            _mm256_storeu_si256(
                reinterpret_cast<__m256i *>(
                    d.diffOut + i * kVecBytes),
                chunk[i]);
            acc = _mm256_or_si256(acc, chunk[i]);
        }
    } else {
        for (std::size_t i = 0; i < kVecs; i++) {
            chunk[i] = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(
                    d.src + i * kVecBytes));
            acc = _mm256_or_si256(acc, chunk[i]);
        }
    }
    bool nonzero = _mm256_testz_si256(acc, acc) == 0;
    if (d.csumOut != nullptr) {
        const std::uint8_t *cp =
            d.diffOut != nullptr ? d.newData : d.src;
        std::uint64_t c = 0xffffffffu;
        for (std::size_t w = 0; w < kLineBytes / kWordBytes; w++) {
            std::uint64_t word;
            std::memcpy(&word, cp + w * kWordBytes, kWordBytes);
            c = _mm_crc32_u64(c, word);
        }
        std::uint32_t crc = ~static_cast<std::uint32_t>(c);
        *d.csumOut = d.csumTag | static_cast<std::uint64_t>(crc);
    }
    if (nonzero) {
        const GfTables &tb = gfTables();
        for (std::size_t r = 0; r < d.roles; r++) {
            std::uint8_t c = d.coeff[r];
            if (c == 0)
                continue;
            auto *pp = d.parity[r];
            for (std::size_t i = 0; i < kVecs; i++) {
                __m256i pv = _mm256_loadu_si256(
                    reinterpret_cast<__m256i *>(pp + i * kVecBytes));
                __m256i update = c == 1
                    ? chunk[i]
                    : gfMulVec(tb, chunk[i], c);
                _mm256_storeu_si256(
                    reinterpret_cast<__m256i *>(pp + i * kVecBytes),
                    _mm256_xor_si256(pv, update));
            }
        }
    }
    return nonzero;
}

}  // namespace

const KernelOps kAvx2Ops = {
    "avx2",
    avx2Crc32c,
    avx2XorInto,
    avx2XorDiff3,
    avx2IsZero,
    avx2GfMulAcc,
    avx2CopyLine,
    avx2FindTag,
    avx2Sequence,
};

}  // namespace tvarak::kernels

#else  // !__x86_64__

namespace tvarak::kernels {

const KernelOps kAvx2Ops = {
    "avx2",
    detail::scalarCrc32c,
    detail::scalarXorInto,
    detail::scalarXorDiff3,
    detail::scalarIsZero,
    detail::scalarGfMulAcc,
    detail::scalarCopyLine,
    detail::scalarFindTag,
    detail::scalarSequence,
};

}  // namespace tvarak::kernels

#endif  // __x86_64__
