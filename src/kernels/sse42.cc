/**
 * @file
 * SSE4.2 backend: the hardware CRC32 instruction (Westmere's — the
 * swChecksumBytesPerCycle = 8 timing model's origin) plus pshufb
 * nibble-table GF(2^8) multiply. Plain XOR loops stay with the scalar
 * implementations, which the compiler already vectorizes to SSE2.
 *
 * On non-x86 builds every slot aliases the scalar backend, and the
 * dispatcher reports the backend unavailable.
 */

#include "kernels/tables.hh"

#if defined(__x86_64__)

#include <immintrin.h>

#include <cstring>

namespace tvarak::kernels {

namespace {

using namespace detail;

constexpr std::size_t kWordBytes = sizeof(std::uint64_t);
constexpr std::size_t kVecBytes = sizeof(__m128i);

__attribute__((target("sse4.2"))) std::uint32_t
sse42Crc32c(const void *data, std::size_t n, std::uint32_t seed)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t crc = ~seed;
    std::uint64_t c = crc;
    while (n >= kWordBytes) {
        std::uint64_t word;
        std::memcpy(&word, p, kWordBytes);
        c = _mm_crc32_u64(c, word);
        p += kWordBytes;
        n -= kWordBytes;
    }
    crc = static_cast<std::uint32_t>(c);
    while (n--)
        crc = _mm_crc32_u8(crc, *p++);
    return ~crc;
}

/** chunk ^= c * src over GF(2^8), 16 bytes. @pre c > 1. */
__attribute__((target("sse4.2"))) inline __m128i
gfMulVec(const GfTables &tb, __m128i v, std::uint8_t c)
{
    const __m128i lo = _mm_load_si128(
        reinterpret_cast<const __m128i *>(tb.mulLo[c]));
    const __m128i hi = _mm_load_si128(
        reinterpret_cast<const __m128i *>(tb.mulHi[c]));
    const __m128i mask = _mm_set1_epi8(0x0f);
    __m128i ln = _mm_and_si128(v, mask);
    __m128i hn = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
    return _mm_xor_si128(_mm_shuffle_epi8(lo, ln),
                         _mm_shuffle_epi8(hi, hn));
}

__attribute__((target("sse4.2"))) void
sse42GfMulAcc(void *dst, const void *src, std::uint8_t c, std::size_t n)
{
    if (c == 0)
        return;
    if (c == 1) {
        scalarXorInto(dst, src, n);
        return;
    }
    const GfTables &tb = gfTables();
    auto *d = static_cast<std::uint8_t *>(dst);
    const auto *s = static_cast<const std::uint8_t *>(src);
    while (n >= kVecBytes) {
        __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(s));
        __m128i acc = _mm_loadu_si128(reinterpret_cast<__m128i *>(d));
        acc = _mm_xor_si128(acc, gfMulVec(tb, v, c));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(d), acc);
        d += kVecBytes;
        s += kVecBytes;
        n -= kVecBytes;
    }
    if (n > 0)
        scalarGfMulAcc(d, s, c, n);
}

__attribute__((target("sse4.2"))) bool
sse42Sequence(const SeqDesc &d)
{
    constexpr std::size_t kVecs = kLineBytes / kVecBytes;
    __m128i chunk[kVecs];
    __m128i acc = _mm_setzero_si128();
    if (d.diffOut != nullptr) {
        for (std::size_t i = 0; i < kVecs; i++) {
            __m128i ov = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(
                    d.oldData + i * kVecBytes));
            __m128i nv = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(
                    d.newData + i * kVecBytes));
            chunk[i] = _mm_xor_si128(ov, nv);
            _mm_storeu_si128(
                reinterpret_cast<__m128i *>(d.diffOut + i * kVecBytes),
                chunk[i]);
            acc = _mm_or_si128(acc, chunk[i]);
        }
    } else {
        for (std::size_t i = 0; i < kVecs; i++) {
            chunk[i] = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(
                    d.src + i * kVecBytes));
            acc = _mm_or_si128(acc, chunk[i]);
        }
    }
    bool nonzero = _mm_testz_si128(acc, acc) == 0;
    if (d.csumOut != nullptr) {
        const std::uint8_t *cp =
            d.diffOut != nullptr ? d.newData : d.src;
        std::uint64_t c = ~std::uint64_t{0} & 0xffffffffu;
        for (std::size_t w = 0; w < kLineBytes / kWordBytes; w++) {
            std::uint64_t word;
            std::memcpy(&word, cp + w * kWordBytes, kWordBytes);
            c = _mm_crc32_u64(c, word);
        }
        std::uint32_t crc = ~static_cast<std::uint32_t>(c);
        *d.csumOut = d.csumTag | static_cast<std::uint64_t>(crc);
    }
    if (nonzero) {
        const GfTables &tb = gfTables();
        for (std::size_t r = 0; r < d.roles; r++) {
            std::uint8_t c = d.coeff[r];
            if (c == 0)
                continue;
            auto *pp = d.parity[r];
            for (std::size_t i = 0; i < kVecs; i++) {
                __m128i pv = _mm_loadu_si128(
                    reinterpret_cast<__m128i *>(pp + i * kVecBytes));
                __m128i update = c == 1
                    ? chunk[i]
                    : gfMulVec(tb, chunk[i], c);
                _mm_storeu_si128(
                    reinterpret_cast<__m128i *>(pp + i * kVecBytes),
                    _mm_xor_si128(pv, update));
            }
        }
    }
    return nonzero;
}

}  // namespace

const KernelOps kSse42Ops = {
    "sse42",
    sse42Crc32c,
    detail::scalarXorInto,
    detail::scalarXorDiff3,
    detail::scalarIsZero,
    sse42GfMulAcc,
    detail::scalarCopyLine,
    detail::scalarFindTag,
    sse42Sequence,
};

}  // namespace tvarak::kernels

#else  // !__x86_64__

namespace tvarak::kernels {

const KernelOps kSse42Ops = {
    "sse42",
    detail::scalarCrc32c,
    detail::scalarXorInto,
    detail::scalarXorDiff3,
    detail::scalarIsZero,
    detail::scalarGfMulAcc,
    detail::scalarCopyLine,
    detail::scalarFindTag,
    detail::scalarSequence,
};

}  // namespace tvarak::kernels

#endif  // __x86_64__
