/**
 * @file
 * Internal lookup tables and the scalar reference kernels shared by
 * every backend TU. Not part of the public kernels API.
 *
 * The loops live here (and in the backend TUs); the *semantic* tables
 * — gf256's log/alog used by the codec math and checksum's widened-tag
 * constants — stay with their owning modules. These copies exist so
 * the kernels module is self-contained and sits below checksum/ in the
 * layering DAG.
 */

#pragma once

#include <cstddef>
#include <cstdint>

#include "kernels/kernels.hh"

namespace tvarak::kernels::detail {

/** CRC-32C (Castagnoli) slicing-by-eight tables. */
struct CrcTables {
    std::uint32_t t[8][256];
    CrcTables();
};

const CrcTables &crcTables();

/**
 * GF(2^8) / 0x11D multiplication tables: log/alog for the scalar
 * backend (alog doubled so exponent sums skip the mod-255), plus
 * per-coefficient nibble product rows for the pshufb backends —
 * mulLo[c][x] = c*x and mulHi[c][x] = c*(x<<4), so by linearity of
 * GF(2^8) multiplication over XOR,
 * c*b == mulLo[c][b & 0xf] ^ mulHi[c][b >> 4].
 */
struct GfTables {
    std::uint8_t logt[256];
    std::uint8_t alog[510];
    alignas(16) std::uint8_t mulLo[256][16];
    alignas(16) std::uint8_t mulHi[256][16];
    GfTables();
};

const GfTables &gfTables();

/** Advance a CRC-32C state (already inverted) by one 8-byte word. */
inline std::uint32_t
crcWordStep(const CrcTables &tb, std::uint32_t crc, std::uint64_t word)
{
    word ^= crc;
    return tb.t[7][word & 0xff] ^
           tb.t[6][(word >> 8) & 0xff] ^
           tb.t[5][(word >> 16) & 0xff] ^
           tb.t[4][(word >> 24) & 0xff] ^
           tb.t[3][(word >> 32) & 0xff] ^
           tb.t[2][(word >> 40) & 0xff] ^
           tb.t[1][(word >> 48) & 0xff] ^
           tb.t[0][(word >> 56) & 0xff];
}

// The scalar backend's kernels, shared so the SIMD TUs can fall back
// to them for ops they do not specialize (and so non-x86 builds can
// alias every backend to scalar).
std::uint32_t scalarCrc32c(const void *data, std::size_t n,
                           std::uint32_t seed);
void scalarXorInto(void *dst, const void *src, std::size_t n);
bool scalarXorDiff3(void *diff, const void *a, const void *b,
                    std::size_t n);
bool scalarIsZero(const void *data, std::size_t n);
void scalarGfMulAcc(void *dst, const void *src, std::uint8_t c,
                    std::size_t n);
void scalarCopyLine(void *dst, const void *src);
std::size_t scalarFindTag(const std::uint64_t *tags, std::size_t n,
                          std::uint64_t key);
bool scalarSequence(const SeqDesc &d);

/** Apply the parity roles of @p d from the (nonzero) src line. */
void scalarApplyRoles(const SeqDesc &d);

}  // namespace tvarak::kernels::detail

namespace tvarak::kernels {

// One dispatch table per backend TU. Declared extern here so the
// namespace-scope const definitions keep external linkage for
// dispatch.cc to reference.
extern const KernelOps kScalarOps;
extern const KernelOps kSse42Ops;
extern const KernelOps kAvx2Ops;

}  // namespace tvarak::kernels
