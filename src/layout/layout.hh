/**
 * @file
 * NVM physical layout: metadata regions and RAID-5 parity geometry.
 *
 * NVM-global physical addresses are linear over all DIMMs with 4 KB
 * page striping (global page g lives on DIMM g % N). The space is
 * carved as:
 *
 *   [0, pageCsumBytes)           per-page system-checksums (8 B/page)
 *   [daxClBase, +daxClBytes)     DAX-CL-checksums (8 B per 64 B line,
 *                                packed 8 per checksum line)
 *   [dataBase, end)              data region, in RAID-5 stripes
 *
 * A stripe is one "row": N consecutive global pages, one per DIMM.
 * The parity member rotates (stripe s keeps parity on member
 * N-1 - s % N), exactly the Fig 3 geometry: page-granular interleaving
 * so the OS can map virtually-contiguous pages to data pages while
 * skipping parity pages.
 *
 * The metadata region is deliberately *not* parity protected (the
 * paper protects data pages; checksum blocks are their own
 * protection), and a real file system would allocate DAX-CL-checksum
 * space only for mapped files — we reserve it statically to keep the
 * address arithmetic pure, and DaxFs tracks which ranges are live.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "sim/types.hh"

namespace tvarak {

class Layout
{
  public:
    /**
     * @param totalBytes capacity of the whole NVM array.
     * @param dimms      number of DIMMs (stripe width).
     */
    Layout(std::size_t totalBytes, std::size_t dimms);

    /** @name Region boundaries (NVM-global addresses). */
    /**@{*/
    Addr pageCsumBase() const { return 0; }
    Addr daxClBase() const { return daxClBase_; }
    Addr dataBase() const { return dataBase_; }
    Addr end() const { return end_; }
    std::size_t dataPages() const { return dataPages_; }
    std::size_t stripes() const { return stripes_; }
    std::size_t dimms() const { return dimms_; }
    /**@}*/

    /** True iff @p a lies below the data region (checksum storage). */
    bool isMetaAddr(Addr a) const { return a < dataBase_; }
    /** True iff @p a lies in the data region (incl. parity pages). */
    bool isDataAddr(Addr a) const { return a >= dataBase_ && a < end_; }

    /** Stripe index of a data-region address. */
    std::size_t stripeOf(Addr a) const;
    /** True iff the page holding @p a is its stripe's parity member. */
    bool isParityPage(Addr a) const;
    /** Global address of the parity page of @p a's stripe. */
    Addr parityPageOf(Addr a) const;
    /** Parity line covering data line @p a (same in-page offset). */
    Addr parityLineOf(Addr a) const;
    /** The stripe's data pages (excludes the parity member). */
    void stripeDataPages(Addr a, std::vector<Addr> &out) const;

    /** Address of the 8 B page system-checksum slot for @p a's page. */
    Addr pageCsumAddr(Addr a) const;
    /** Address of the 8 B DAX-CL-checksum slot for @p a's line. */
    Addr daxClCsumAddr(Addr a) const;
    /** The checksum *line* holding @p a's DAX-CL-checksum. */
    Addr daxClCsumLine(Addr a) const { return lineBase(daxClCsumAddr(a)); }

    /**
     * Iterate the allocatable data pages in virtual-contiguity order
     * (global page order, skipping parity pages).
     * @param index  n-th data page, 0-based.
     */
    Addr nthDataPage(std::size_t index) const;
    /** Inverse of nthDataPage(); panics on a parity page. */
    std::size_t dataPageIndexOf(Addr a) const;
    /** Number of allocatable (non-parity) data pages. */
    std::size_t allocatableDataPages() const;

  private:
    std::size_t dimms_;
    Addr daxClBase_;
    Addr dataBase_;
    Addr end_;
    std::size_t dataPages_;   //!< pages in data region incl. parity
    std::size_t stripes_;
};

}  // namespace tvarak

