/**
 * @file
 * NVM physical layout: metadata regions and striped parity geometry.
 *
 * NVM-global physical addresses are linear over all DIMMs with 4 KB
 * page striping (global page g lives on DIMM g % N). The space is
 * carved as:
 *
 *   [0, pageCsumBytes)           per-page system-checksums (8 B/page)
 *   [daxClBase, +daxClBytes)     DAX-CL-checksums (8 B per 64 B line,
 *                                packed 8 per checksum line)
 *   [dataBase, end)              data region, in parity stripes
 *
 * A stripe is one "row": N consecutive global pages, one per DIMM.
 * Each stripe carries k parity members (k = 1 is classic RAID-5, the
 * paper's geometry; k >= 2 is the Reed-Solomon n+k family). The
 * parity members rotate with the stripe index — stripe s keeps parity
 * role j on member (N-1 - s%N - j) mod N, so role 0 matches the Fig 3
 * RAID-5 rotation exactly and the extra roles occupy the adjacent
 * slots. Page-granular interleaving lets the OS map
 * virtually-contiguous pages to data pages while skipping parity
 * pages; since a stripe's N pages land on N distinct DIMMs, stripe
 * members never share a failure domain.
 *
 * The metadata region is deliberately *not* parity protected (the
 * paper protects data pages; checksum blocks are their own
 * protection), and a real file system would allocate DAX-CL-checksum
 * space only for mapped files — we reserve it statically to keep the
 * address arithmetic pure, and DaxFs tracks which ranges are live.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "sim/types.hh"

namespace tvarak {

class Layout
{
  public:
    /**
     * @param totalBytes  capacity of the whole NVM array.
     * @param dimms       number of DIMMs (stripe width).
     * @param parityCount parity members per stripe (k; 1 = RAID-5).
     */
    Layout(std::size_t totalBytes, std::size_t dimms,
           std::size_t parityCount = 1);

    /** @name Region boundaries (NVM-global addresses). */
    /**@{*/
    Addr pageCsumBase() const { return 0; }
    Addr daxClBase() const { return daxClBase_; }
    Addr dataBase() const { return dataBase_; }
    Addr end() const { return end_; }
    std::size_t dataPages() const { return dataPages_; }
    std::size_t stripes() const { return stripes_; }
    std::size_t dimms() const { return dimms_; }
    /** Parity members per stripe (k). */
    std::size_t parityCount() const { return parityCount_; }
    /** Data members per stripe (n = dimms - k). */
    std::size_t dataCount() const { return dimms_ - parityCount_; }
    /**@}*/

    /** True iff @p a lies below the data region (checksum storage). */
    bool isMetaAddr(Addr a) const { return a < dataBase_; }
    /** True iff @p a lies in the data region (incl. parity pages). */
    bool isDataAddr(Addr a) const { return a >= dataBase_ && a < end_; }

    /** Stripe index of a data-region address. */
    std::size_t stripeOf(Addr a) const;
    /** True iff the page holding @p a is one of its stripe's parity
     *  members. */
    bool isParityPage(Addr a) const;
    /** Global address of parity member @p role of @p a's stripe. */
    Addr parityPageOf(Addr a, std::size_t role = 0) const;
    /** Parity line of role @p role covering data line @p a (same
     *  in-page offset). */
    Addr parityLineOf(Addr a, std::size_t role = 0) const;
    /** Parity role (0..k-1) of a parity page; panics on data pages. */
    std::size_t parityRoleOf(Addr a) const;
    /** The stripe's data pages (excludes all parity members), in
     *  ascending member order — i.e. coding-index order. */
    void stripeDataPages(Addr a, std::vector<Addr> &out) const;
    /** Reed-Solomon coding index (0..n-1) of a data page: its rank
     *  among the stripe's non-parity members. Panics on parity. */
    std::size_t dataMemberIndexOf(Addr a) const;

    /** Address of the 8 B page system-checksum slot for @p a's page. */
    Addr pageCsumAddr(Addr a) const;
    /** Address of the 8 B DAX-CL-checksum slot for @p a's line. */
    Addr daxClCsumAddr(Addr a) const;
    /** The checksum *line* holding @p a's DAX-CL-checksum. */
    Addr daxClCsumLine(Addr a) const { return lineBase(daxClCsumAddr(a)); }

    /**
     * Iterate the allocatable data pages in virtual-contiguity order
     * (global page order, skipping parity pages).
     * @param index  n-th data page, 0-based.
     */
    Addr nthDataPage(std::size_t index) const;
    /** Inverse of nthDataPage(); panics on a parity page. */
    std::size_t dataPageIndexOf(Addr a) const;
    /** Number of allocatable (non-parity) data pages. */
    std::size_t allocatableDataPages() const;

  private:
    /** Member slot (0..dimms-1) of parity role @p role in stripe
     *  @p s. */
    std::size_t parityMember(std::size_t s, std::size_t role) const
    {
        return (dimms_ - 1 - (s % dimms_) + dimms_ - role) % dimms_;
    }
    /** Is member slot @p m a parity member of stripe @p s? If so,
     *  sets @p role. */
    bool memberIsParity(std::size_t s, std::size_t m,
                        std::size_t &role) const;

    std::size_t dimms_;
    std::size_t parityCount_;
    Addr daxClBase_;
    Addr dataBase_;
    Addr end_;
    std::size_t dataPages_;   //!< pages in data region incl. parity
    std::size_t stripes_;
};

}  // namespace tvarak
