#include "layout/layout.hh"

#include "sim/log.hh"

namespace tvarak {

Layout::Layout(std::size_t totalBytes, std::size_t dimms)
    : dimms_(dimms)
{
    panic_if(dimms < 2, "RAID-5 needs >= 2 DIMMs");
    panic_if(totalBytes % kPageBytes != 0, "capacity not page aligned");
    std::size_t total_pages = totalBytes / kPageBytes;

    // Metadata sizing: 8 B page checksum + 512 B of DAX-CL-checksums
    // per data page. Solve conservatively, then round the data region
    // start up to a stripe (row) boundary so rows align with DIMMs.
    std::size_t meta_bytes_per_data_page =
        kChecksumBytes + kLinesPerPage * kChecksumBytes;
    std::size_t meta_pages =
        (total_pages * meta_bytes_per_data_page + kPageBytes - 1) /
        kPageBytes;
    // Split: page checksums first, then DAX-CL region.
    std::size_t page_csum_pages =
        (total_pages * kChecksumBytes + kPageBytes - 1) / kPageBytes;
    meta_pages = ((meta_pages + dimms_ - 1) / dimms_) * dimms_;
    panic_if(meta_pages >= total_pages, "NVM too small for metadata");

    daxClBase_ = static_cast<Addr>(page_csum_pages) * kPageBytes;
    dataBase_ = static_cast<Addr>(meta_pages) * kPageBytes;
    dataPages_ = total_pages - meta_pages;
    // Trim trailing partial stripe.
    stripes_ = dataPages_ / dimms_;
    dataPages_ = stripes_ * dimms_;
    end_ = dataBase_ + static_cast<Addr>(dataPages_) * kPageBytes;
}

std::size_t
Layout::stripeOf(Addr a) const
{
    panic_if(!isDataAddr(a), "stripeOf on non-data address");
    return static_cast<std::size_t>((a - dataBase_) / kPageBytes) / dimms_;
}

bool
Layout::isParityPage(Addr a) const
{
    std::size_t s = stripeOf(a);
    std::size_t member =
        static_cast<std::size_t>((a - dataBase_) / kPageBytes) % dimms_;
    return member == dimms_ - 1 - (s % dimms_);
}

Addr
Layout::parityPageOf(Addr a) const
{
    std::size_t s = stripeOf(a);
    std::size_t parity_member = dimms_ - 1 - (s % dimms_);
    return dataBase_ +
        static_cast<Addr>(s * dimms_ + parity_member) * kPageBytes;
}

Addr
Layout::parityLineOf(Addr a) const
{
    return parityPageOf(a) + lineInPage(a) * kLineBytes;
}

void
Layout::stripeDataPages(Addr a, std::vector<Addr> &out) const
{
    out.clear();
    std::size_t s = stripeOf(a);
    std::size_t parity_member = dimms_ - 1 - (s % dimms_);
    for (std::size_t m = 0; m < dimms_; m++) {
        if (m == parity_member)
            continue;
        out.push_back(dataBase_ +
                      static_cast<Addr>(s * dimms_ + m) * kPageBytes);
    }
}

Addr
Layout::pageCsumAddr(Addr a) const
{
    panic_if(!isDataAddr(a), "pageCsumAddr on non-data address");
    std::uint64_t idx = pageNumber(a - dataBase_);
    Addr addr = pageCsumBase() + idx * kChecksumBytes;
    panic_if(addr >= daxClBase_, "page checksum region overflow");
    return addr;
}

Addr
Layout::daxClCsumAddr(Addr a) const
{
    panic_if(!isDataAddr(a), "daxClCsumAddr on non-data address");
    std::uint64_t idx = lineNumber(a - dataBase_);
    Addr addr = daxClBase_ + idx * kChecksumBytes;
    panic_if(addr >= dataBase_, "DAX-CL checksum region overflow");
    return addr;
}

Addr
Layout::nthDataPage(std::size_t index) const
{
    // Each stripe contributes dimms_-1 data pages.
    std::size_t per_stripe = dimms_ - 1;
    std::size_t s = index / per_stripe;
    std::size_t k = index % per_stripe;
    panic_if(s >= stripes_, "data page index %zu out of range", index);
    std::size_t parity_member = dimms_ - 1 - (s % dimms_);
    // k-th member skipping the parity slot.
    std::size_t member = k < parity_member ? k : k + 1;
    return dataBase_ +
        static_cast<Addr>(s * dimms_ + member) * kPageBytes;
}

std::size_t
Layout::dataPageIndexOf(Addr a) const
{
    panic_if(isParityPage(a), "dataPageIndexOf on a parity page");
    std::size_t s = stripeOf(a);
    std::size_t member =
        static_cast<std::size_t>((a - dataBase_) / kPageBytes) % dimms_;
    std::size_t parity_member = dimms_ - 1 - (s % dimms_);
    std::size_t k = member < parity_member ? member : member - 1;
    return s * (dimms_ - 1) + k;
}

std::size_t
Layout::allocatableDataPages() const
{
    return stripes_ * (dimms_ - 1);
}

}  // namespace tvarak
