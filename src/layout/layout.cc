#include "layout/layout.hh"

#include "sim/log.hh"

namespace tvarak {

Layout::Layout(std::size_t totalBytes, std::size_t dimms,
               std::size_t parityCount)
    : dimms_(dimms), parityCount_(parityCount)
{
    panic_if(dimms < 2, "striped parity needs >= 2 DIMMs");
    panic_if(parityCount < 1 || parityCount >= dimms,
             "parity count %zu out of range for %zu DIMMs",
             parityCount, dimms);
    panic_if(totalBytes % kPageBytes != 0, "capacity not page aligned");
    std::size_t total_pages = totalBytes / kPageBytes;

    // Metadata sizing: 8 B page checksum + 512 B of DAX-CL-checksums
    // per data page. Solve conservatively, then round the data region
    // start up to a stripe (row) boundary so rows align with DIMMs.
    std::size_t meta_bytes_per_data_page =
        kChecksumBytes + kLinesPerPage * kChecksumBytes;
    std::size_t meta_pages =
        (total_pages * meta_bytes_per_data_page + kPageBytes - 1) /
        kPageBytes;
    // Split: page checksums first, then DAX-CL region.
    std::size_t page_csum_pages =
        (total_pages * kChecksumBytes + kPageBytes - 1) / kPageBytes;
    meta_pages = ((meta_pages + dimms_ - 1) / dimms_) * dimms_;
    panic_if(meta_pages >= total_pages, "NVM too small for metadata");

    daxClBase_ = static_cast<Addr>(page_csum_pages) * kPageBytes;
    dataBase_ = static_cast<Addr>(meta_pages) * kPageBytes;
    dataPages_ = total_pages - meta_pages;
    // Trim trailing partial stripe.
    stripes_ = dataPages_ / dimms_;
    dataPages_ = stripes_ * dimms_;
    end_ = dataBase_ + static_cast<Addr>(dataPages_) * kPageBytes;
}

bool
Layout::memberIsParity(std::size_t s, std::size_t m,
                       std::size_t &role) const
{
    // Parity roles occupy k consecutive slots descending from the
    // RAID-5 rotation point; invert parityMember() directly.
    std::size_t base = dimms_ - 1 - (s % dimms_);
    std::size_t r = (base + dimms_ - m) % dimms_;
    if (r < parityCount_) {
        role = r;
        return true;
    }
    return false;
}

std::size_t
Layout::stripeOf(Addr a) const
{
    panic_if(!isDataAddr(a), "stripeOf on non-data address");
    return static_cast<std::size_t>((a - dataBase_) / kPageBytes) / dimms_;
}

bool
Layout::isParityPage(Addr a) const
{
    std::size_t s = stripeOf(a);
    std::size_t member =
        static_cast<std::size_t>((a - dataBase_) / kPageBytes) % dimms_;
    std::size_t role;
    return memberIsParity(s, member, role);
}

Addr
Layout::parityPageOf(Addr a, std::size_t role) const
{
    panic_if(role >= parityCount_, "parity role %zu out of range", role);
    std::size_t s = stripeOf(a);
    return dataBase_ +
        static_cast<Addr>(s * dimms_ + parityMember(s, role)) *
        kPageBytes;
}

Addr
Layout::parityLineOf(Addr a, std::size_t role) const
{
    return parityPageOf(a, role) + lineInPage(a) * kLineBytes;
}

std::size_t
Layout::parityRoleOf(Addr a) const
{
    std::size_t s = stripeOf(a);
    std::size_t member =
        static_cast<std::size_t>((a - dataBase_) / kPageBytes) % dimms_;
    std::size_t role;
    panic_if(!memberIsParity(s, member, role),
             "parityRoleOf on a data page");
    return role;
}

void
Layout::stripeDataPages(Addr a, std::vector<Addr> &out) const
{
    out.clear();
    std::size_t s = stripeOf(a);
    for (std::size_t m = 0; m < dimms_; m++) {
        std::size_t role;
        if (memberIsParity(s, m, role))
            continue;
        out.push_back(dataBase_ +
                      static_cast<Addr>(s * dimms_ + m) * kPageBytes);
    }
}

std::size_t
Layout::dataMemberIndexOf(Addr a) const
{
    std::size_t s = stripeOf(a);
    std::size_t member =
        static_cast<std::size_t>((a - dataBase_) / kPageBytes) % dimms_;
    std::size_t idx = 0;
    for (std::size_t m = 0; m < member; m++) {
        std::size_t role;
        if (!memberIsParity(s, m, role))
            idx++;
    }
    std::size_t role;
    panic_if(memberIsParity(s, member, role),
             "dataMemberIndexOf on a parity page");
    return idx;
}

Addr
Layout::pageCsumAddr(Addr a) const
{
    panic_if(!isDataAddr(a), "pageCsumAddr on non-data address");
    std::uint64_t idx = pageNumber(a - dataBase_);
    Addr addr = pageCsumBase() + idx * kChecksumBytes;
    panic_if(addr >= daxClBase_, "page checksum region overflow");
    return addr;
}

Addr
Layout::daxClCsumAddr(Addr a) const
{
    panic_if(!isDataAddr(a), "daxClCsumAddr on non-data address");
    std::uint64_t idx = lineNumber(a - dataBase_);
    Addr addr = daxClBase_ + idx * kChecksumBytes;
    panic_if(addr >= dataBase_, "DAX-CL checksum region overflow");
    return addr;
}

Addr
Layout::nthDataPage(std::size_t index) const
{
    // Each stripe contributes dimms_ - parityCount_ data pages.
    std::size_t per_stripe = dataCount();
    std::size_t s = index / per_stripe;
    std::size_t k = index % per_stripe;
    panic_if(s >= stripes_, "data page index %zu out of range", index);
    // k-th member skipping the parity slots.
    std::size_t member = 0;
    for (std::size_t m = 0; m < dimms_; m++) {
        std::size_t role;
        if (memberIsParity(s, m, role))
            continue;
        if (k == 0) {
            member = m;
            break;
        }
        k--;
    }
    return dataBase_ +
        static_cast<Addr>(s * dimms_ + member) * kPageBytes;
}

std::size_t
Layout::dataPageIndexOf(Addr a) const
{
    panic_if(isParityPage(a), "dataPageIndexOf on a parity page");
    std::size_t s = stripeOf(a);
    return s * dataCount() + dataMemberIndexOf(a);
}

std::size_t
Layout::allocatableDataPages() const
{
    return stripes_ * dataCount();
}

}  // namespace tvarak
