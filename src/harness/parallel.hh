/**
 * @file
 * Parallel experiment engine.
 *
 * Every experiment builds a fully private MemorySystem and shares no
 * mutable state with any other experiment (workload factories create
 * their schemes and pools per machine, and all randomness comes from
 * per-experiment deterministic RNGs), so a (design x workload) sweep
 * is embarrassingly parallel. runExperiments() fans a batch of
 * independent runExperiment() calls out across a fixed-size worker
 * pool and returns the results in submission order, making the output
 * bit-identical regardless of the worker count.
 *
 * This file (and its .cc) is the only place in the tree allowed to
 * touch raw threading primitives — tvarak-lint rule R6 enforces the
 * confinement so the simulator core stays single-threaded by
 * construction.
 */

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "harness/runner.hh"

namespace tvarak {

/**
 * Generic deterministic fan-out: run @p fn(0) .. @p fn(count - 1) on a
 * fixed-size worker pool and return once every call has finished.
 *
 * Each index runs exactly once; any result must be written into an
 * index-private slot (results[i] from fn(i)), which makes the combined
 * output independent of the worker count and of completion order.
 * @p fn must not touch shared mutable state. With @p workers <= 1 (or
 * a single task) everything runs inline on the caller's thread.
 *
 * This is the primitive under runExperiments(); tvarak-lint reuses it
 * to lex and scan source files in parallel.
 *
 * @p workers  worker-thread count; 0 means defaultJobs().
 */
void parallelFor(std::size_t count,
                 const std::function<void(std::size_t)> &fn,
                 std::size_t workers = 0);

/** One independent experiment: a machine config, a redundancy design
 *  (any registered Design, variants included), and the factory that
 *  builds the workload set against the fresh machine. The label is
 *  used for progress reporting only. */
struct ExperimentJob {
    std::string label;
    SimConfig cfg;
    const Design *design = nullptr;
    WorkloadFactory make;
};

/**
 * Worker count used when the caller passes jobs == 0: the hardware
 * concurrency of this machine (at least 1).
 */
std::size_t defaultJobs();

/**
 * Run every job in @p jobs to completion and return the results in
 * submission order (results[i] belongs to jobs[i]).
 *
 * @p jobs     the batch; each entry runs exactly as
 *             runExperiment(cfg, design, make) would.
 * @p workers  worker-thread count; 0 means defaultJobs(). With 1 (or
 *             a single job) everything runs inline on the caller's
 *             thread — no pool is created.
 *
 * Statistics are bit-identical for every worker count: experiments
 * are isolated, and the submission-order result array removes any
 * dependence on completion order.
 */
std::vector<RunResult> runExperiments(const std::vector<ExperimentJob> &jobs,
                                      std::size_t workers = 0);

}  // namespace tvarak
