#include "harness/runner.hh"

#include "redundancy/registry.hh"
#include "sim/log.hh"

namespace tvarak {

const std::vector<DesignKind> &
allDesigns()
{
    static const std::vector<DesignKind> designs = [] {
        std::vector<DesignKind> kinds;
        for (const Design *d : paperDesigns())
            kinds.push_back(d->kind());
        return kinds;
    }();
    return designs;
}

RunResult
runExperiment(const SimConfig &cfg, DesignKind design,
              const WorkloadFactory &make)
{
    return runExperiment(cfg, designOf(design), make, RunHooks{});
}

RunResult
runExperiment(const SimConfig &cfg, DesignKind design,
              const WorkloadFactory &make, const RunHooks &hooks)
{
    return runExperiment(cfg, designOf(design), make, hooks);
}

RunResult
runExperiment(const SimConfig &cfg, const Design &design,
              const WorkloadFactory &make)
{
    return runExperiment(cfg, design, make, RunHooks{});
}

RunResult
runExperiment(const SimConfig &cfg, const Design &design,
              const WorkloadFactory &make, const RunHooks &hooks)
{
    MemorySystem mem(cfg, design);
    DaxFs fs(mem);
    if (hooks.onMachine)
        hooks.onMachine(mem, fs);
    WorkloadSet set = make(mem, fs);
    panic_if(set.workloads.empty(), "empty workload set");

    for (auto &w : set.workloads)
        w->setup();
    if (set.beforeMeasure)
        set.beforeMeasure(mem);
    if (hooks.beforeReset)
        hooks.beforeReset(mem);
    mem.stats().reset();

    std::vector<bool> done(set.workloads.size(), false);
    std::size_t remaining = set.workloads.size();
    std::size_t passes = 0;
    while (remaining > 0) {
        for (std::size_t i = 0; i < set.workloads.size(); i++) {
            if (done[i])
                continue;
            if (!set.workloads[i]->step()) {
                done[i] = true;
                remaining--;
            }
        }
        passes++;
        if (hooks.onStep)
            hooks.onStep(mem, passes);
    }
    if (hooks.beforeFlush)
        hooks.beforeFlush(mem);
    mem.flushAll();

    const Stats &s = mem.stats();
    RunResult r;
    r.design = design.kind();
    r.runtimeCycles = s.runtimeCycles();
    r.runtimeMs = static_cast<double>(r.runtimeCycles) /
        (cfg.coreGhz * 1e6);
    r.energyMj = s.totalEnergy() * 1e-9;
    r.nvmDataAccesses = s.nvmDataReads + s.nvmDataWrites;
    r.nvmRedAccesses = s.nvmRedundancyReads + s.nvmRedundancyWrites;
    r.cacheAccesses = s.cacheAccesses();
    r.stats = s;
    return r;
}

}  // namespace tvarak
