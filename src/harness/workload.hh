/**
 * @file
 * Workload interface for the experiment harness.
 *
 * A Workload is one simulated thread's worth of application work.
 * The Runner executes all workloads in round-robin slices so that
 * concurrent instances genuinely share the LLC and NVM bandwidth, and
 * uses the fixed-work methodology of the paper: every design runs the
 * same operations and the reported runtime is
 * max(slowest thread, busiest DIMM).
 *
 * setup() builds pools and preloads data; it runs before the stats are
 * reset, so only steady-state work is measured (caches stay warm).
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fs/dax_fs.hh"
#include "mem/memory_system.hh"

namespace tvarak {

class Workload
{
  public:
    virtual ~Workload() = default;

    /** Create files/pools and preload data (unmeasured). */
    virtual void setup() = 0;

    /**
     * Run one slice of work (a few hundred to a few thousand
     * operations; the runner interleaves slices across workloads).
     * @return false when this workload has no more work.
     */
    virtual bool step() = 0;

    /** Thread id this workload issues accesses under. */
    virtual int tid() const = 0;

    virtual std::string name() const = 0;
};

}  // namespace tvarak

