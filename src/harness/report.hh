/**
 * @file
 * Table printers for the bench binaries: each Fig 8 panel group prints
 * one table per plotted quantity (runtime, energy, NVM accesses split
 * data/redundancy, cache accesses), with values normalized to
 * Baseline exactly as the paper's bar charts are.
 */

#pragma once

#include <map>
#include <string>
#include <vector>

#include "harness/runner.hh"

namespace tvarak {

/** One cluster of bars: a workload under every design. */
struct FigureRow {
    std::string workload;
    std::map<DesignKind, RunResult> results;
};

/** Print all four panels (runtime/energy/NVM/cache) of a Fig 8 group. */
void printFigureGroup(const std::string &caption,
                      const std::vector<FigureRow> &rows);

/**
 * Print the resilience-event counters (detection, recovery, degraded
 * mode, rebuild, scrubbing) for every (workload, design) run that saw
 * at least one such event. Runs where nothing failed print nothing, so
 * fault-free benches keep their familiar output; printFigureGroup
 * appends this section automatically when any counter is nonzero.
 */
void printResilienceSection(const std::vector<FigureRow> &rows);

/** Print a single quantity table (used by Fig 9 / Fig 10 benches). */
void printRuntimeTable(const std::string &caption,
                       const std::vector<std::string> &columnNames,
                       const std::vector<std::string> &rowNames,
                       const std::vector<std::vector<double>> &normRuntime);

/** Normalized-to-baseline helper. */
double normRuntime(const FigureRow &row, DesignKind design);

/** CSV emission alongside the human tables (for plotting). */
void printFigureCsv(const std::string &figureId,
                    const std::vector<FigureRow> &rows);

/**
 * One measured point of a latency-vs-offered-load sweep. Plain data:
 * the service layer (src/service/, a layer above the harness) fills
 * these in, so the printer stays free of upward dependencies.
 */
struct LatencyPoint {
    std::string design;        //!< display label (registry cliName)
    double loadFrac = 0;       //!< offered / the design's capacity
    double offeredPerMcycle = 0;
    double achievedPerMcycle = 0;
    Cycles p50 = 0;            //!< latency percentiles, sim cycles
    Cycles p99 = 0;
    Cycles p999 = 0;
    Cycles maxLatency = 0;
    bool sustained = false;    //!< achieved kept up with offered
};

/** Print the latency sweep table: one line per (design, load) point,
 *  percentiles in simulated cycles, saturation marked. */
void printLatencySection(const std::string &caption,
                         const std::vector<LatencyPoint> &points);

/** One design's knee-of-the-curve summary line. */
struct KneeRow {
    std::string design;
    double capacityPerMcycle = 0;  //!< closed-loop ceiling
    bool found = false;         //!< false: saturated at every point
    double kneeFrac = 0;
    double kneeAchievedPerMcycle = 0;
    Cycles p999AtKnee = 0;
};

/** Print the knee summary table (one line per design). */
void printKneeTable(const std::string &caption,
                    const std::vector<KneeRow> &rows);

}  // namespace tvarak

