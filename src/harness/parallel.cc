#include "harness/parallel.hh"

#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "redundancy/registry.hh"
#include "sim/log.hh"

namespace tvarak {

namespace {

/**
 * Single-producer work queue over a pre-filled job vector: the queue
 * is just a cursor, claimed under a mutex so ThreadSanitizer can see
 * the handoff. Workers claim the next unclaimed index, run it, and
 * write the result into their private slot of the results array —
 * no two workers ever touch the same element.
 */
class JobQueue
{
  public:
    explicit JobQueue(std::size_t jobCount) : jobCount_(jobCount) {}

    /** Claim the next job index; false when the batch is drained. */
    bool claim(std::size_t &index)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (next_ >= jobCount_)
            return false;
        index = next_++;
        return true;
    }

  private:
    std::mutex mu_;
    std::size_t next_ = 0;
    std::size_t jobCount_;
};

void
announce(const ExperimentJob &job, std::size_t index, std::size_t total)
{
    // stderr is line-buffered per call; POSIX locks the FILE, so
    // concurrent workers interleave whole lines, never characters.
    std::fprintf(stderr, "  [%zu/%zu] running %-24s under %s...\n",
                 index + 1, total, job.label.c_str(),
                 job.design->displayName());
}

}  // namespace

std::size_t
defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

void
parallelFor(std::size_t count, const std::function<void(std::size_t)> &fn,
            std::size_t workers)
{
    if (workers == 0)
        workers = defaultJobs();
    if (workers > count)
        workers = count;

    if (workers <= 1) {
        for (std::size_t i = 0; i < count; i++)
            fn(i);
        return;
    }

    JobQueue queue(count);
    {
        std::vector<std::jthread> pool;
        pool.reserve(workers);
        for (std::size_t w = 0; w < workers; w++) {
            pool.emplace_back([&queue, &fn] {
                std::size_t i;
                while (queue.claim(i))
                    fn(i);
            });
        }
        // jthread joins on destruction: leaving the scope is the
        // barrier that makes every fn(i) effect safe to read.
    }
}

std::vector<RunResult>
runExperiments(const std::vector<ExperimentJob> &jobs, std::size_t workers)
{
    std::vector<RunResult> results(jobs.size());

    for (const ExperimentJob &job : jobs)
        panic_if(job.design == nullptr, "ExperimentJob '%s' without a "
                 "design", job.label.c_str());

    parallelFor(jobs.size(), [&jobs, &results](std::size_t i) {
        announce(jobs[i], i, jobs.size());
        results[i] =
            runExperiment(jobs[i].cfg, *jobs[i].design, jobs[i].make);
    }, workers);
    return results;
}

}  // namespace tvarak
