#include "harness/report.hh"

#include <algorithm>
#include <cstdio>

#include "redundancy/registry.hh"
#include "sim/log.hh"

namespace tvarak {

namespace {

const RunResult &
baselineOf(const FigureRow &row)
{
    // Paper order starts with Baseline (the normalization reference).
    auto it = row.results.find(allDesigns().front());
    panic_if(it == row.results.end(), "row %s lacks a Baseline run",
             row.workload.c_str());
    return it->second;
}

/**
 * Report columns: the paper's four designs, plus any other registered
 * kind (e.g. Vilamb) that actually appears in @p rows, in registry
 * order. Keeps the classic four-column layout byte-identical while
 * extra designs opt in by being measured.
 */
std::vector<DesignKind>
columnKinds(const std::vector<FigureRow> &rows)
{
    std::vector<DesignKind> cols = allDesigns();
    for (const Design *d : allRegisteredDesigns()) {
        DesignKind k = d->kind();
        if (std::find(cols.begin(), cols.end(), k) != cols.end())
            continue;
        bool present = false;
        for (const FigureRow &row : rows)
            present = present || row.results.count(k) != 0;
        if (present)
            cols.push_back(k);
    }
    return cols;
}

void
printPanel(const char *title, const std::vector<FigureRow> &rows,
           double (*value)(const RunResult &))
{
    std::vector<DesignKind> cols = columnKinds(rows);
    std::printf("\n  %s (normalized to Baseline)\n", title);
    std::printf("  %-26s", "workload");
    for (DesignKind d : cols)
        std::printf(" %18s", designName(d));
    std::printf("\n");
    for (const FigureRow &row : rows) {
        double base = value(baselineOf(row));
        std::printf("  %-26s", row.workload.c_str());
        for (DesignKind d : cols) {
            auto it = row.results.find(d);
            if (it == row.results.end()) {
                std::printf(" %18s", "-");
            } else {
                std::printf(" %18.3f",
                            base > 0 ? value(it->second) / base : 0.0);
            }
        }
        std::printf("\n");
    }
}

double runtimeValue(const RunResult &r)
{
    return static_cast<double>(r.runtimeCycles);
}
double energyValue(const RunResult &r) { return r.energyMj; }
double nvmValue(const RunResult &r)
{
    return static_cast<double>(r.nvmDataAccesses + r.nvmRedAccesses);
}
double cacheValue(const RunResult &r)
{
    return static_cast<double>(r.cacheAccesses);
}

bool
sawResilienceEvents(const Stats &s)
{
    return s.corruptionsDetected || s.recoveries || s.degradedReads ||
        s.degradedReadsMulti || s.degradedWritesDropped ||
        s.degradedRedSkips || s.rebuildLines || s.rebuildRestarts ||
        s.scrubLines || s.scrubRepairs;
}

}  // namespace

double
normRuntime(const FigureRow &row, DesignKind design)
{
    auto it = row.results.find(design);
    panic_if(it == row.results.end(), "missing design in row");
    return static_cast<double>(it->second.runtimeCycles) /
        static_cast<double>(baselineOf(row).runtimeCycles);
}

void
printFigureGroup(const std::string &caption,
                 const std::vector<FigureRow> &rows)
{
    std::printf("\n== %s ==\n", caption.c_str());
    printPanel("Runtime", rows, runtimeValue);
    printPanel("Energy", rows, energyValue);
    printPanel("NVM accesses", rows, nvmValue);
    printPanel("Cache accesses", rows, cacheValue);

    std::printf("\n  NVM access split (absolute, data + redundancy)\n");
    std::vector<DesignKind> cols = columnKinds(rows);
    for (const FigureRow &row : rows) {
        for (DesignKind d : cols) {
            auto it = row.results.find(d);
            if (it == row.results.end())
                continue;
            std::printf("  %-26s %-18s data=%-12llu red=%llu\n",
                        row.workload.c_str(), designName(d),
                        static_cast<unsigned long long>(
                            it->second.nvmDataAccesses),
                        static_cast<unsigned long long>(
                            it->second.nvmRedAccesses));
        }
    }

    printResilienceSection(rows);
}

void
printResilienceSection(const std::vector<FigureRow> &rows)
{
    bool any = false;
    for (const FigureRow &row : rows)
        for (const auto &kv : row.results)
            any = any || sawResilienceEvents(kv.second.stats);
    if (!any)
        return;

    std::printf("\n  Resilience events (absolute; faults, recovery, "
                "degraded mode)\n");
    std::vector<DesignKind> cols = columnKinds(rows);
    for (const FigureRow &row : rows) {
        for (DesignKind d : cols) {
            auto it = row.results.find(d);
            if (it == row.results.end() ||
                !sawResilienceEvents(it->second.stats))
                continue;
            const Stats &s = it->second.stats;
            // dread counts degraded reads served with one DIMM down,
            // mread those served with >= 2 down (the erasure-coded
            // designs' extra budget); restart counts rebuild sweeps
            // aborted by a fault landing mid-rebuild.
            std::printf("  %-26s %-18s det=%-8llu rec=%-8llu "
                        "dread=%-8llu mread=%-8llu wdrop=%-8llu "
                        "rskip=%-8llu rebuild=%-10llu restart=%-4llu "
                        "scrub=%-10llu fix=%llu\n",
                        row.workload.c_str(), designName(d),
                        static_cast<unsigned long long>(
                            s.corruptionsDetected),
                        static_cast<unsigned long long>(s.recoveries),
                        static_cast<unsigned long long>(s.degradedReads),
                        static_cast<unsigned long long>(
                            s.degradedReadsMulti),
                        static_cast<unsigned long long>(
                            s.degradedWritesDropped),
                        static_cast<unsigned long long>(
                            s.degradedRedSkips),
                        static_cast<unsigned long long>(s.rebuildLines),
                        static_cast<unsigned long long>(
                            s.rebuildRestarts),
                        static_cast<unsigned long long>(s.scrubLines),
                        static_cast<unsigned long long>(s.scrubRepairs));
        }
    }
}

void
printFigureCsv(const std::string &figureId,
               const std::vector<FigureRow> &rows)
{
    std::printf("\ncsv,%s,workload,design,runtime_cycles,norm_runtime,"
                "energy_mj,nvm_data,nvm_red,cache_accesses\n",
                figureId.c_str());
    std::vector<DesignKind> cols = columnKinds(rows);
    for (const FigureRow &row : rows) {
        double base =
            static_cast<double>(baselineOf(row).runtimeCycles);
        for (DesignKind d : cols) {
            auto it = row.results.find(d);
            if (it == row.results.end())
                continue;
            const RunResult &r = it->second;
            std::printf(
                "csv,%s,%s,%s,%llu,%.4f,%.4f,%llu,%llu,%llu\n",
                figureId.c_str(), row.workload.c_str(), designName(d),
                static_cast<unsigned long long>(r.runtimeCycles),
                static_cast<double>(r.runtimeCycles) / base, r.energyMj,
                static_cast<unsigned long long>(r.nvmDataAccesses),
                static_cast<unsigned long long>(r.nvmRedAccesses),
                static_cast<unsigned long long>(r.cacheAccesses));
        }
    }
}

void
printRuntimeTable(const std::string &caption,
                  const std::vector<std::string> &columnNames,
                  const std::vector<std::string> &rowNames,
                  const std::vector<std::vector<double>> &normRuntime)
{
    std::printf("\n== %s ==\n  %-26s", caption.c_str(), "workload");
    for (const auto &c : columnNames)
        std::printf(" %16s", c.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < rowNames.size(); i++) {
        std::printf("  %-26s", rowNames[i].c_str());
        for (double v : normRuntime[i])
            std::printf(" %16.3f", v);
        std::printf("\n");
    }
}

void
printLatencySection(const std::string &caption,
                    const std::vector<LatencyPoint> &points)
{
    std::printf("\n== %s ==\n", caption.c_str());
    std::printf("  %-20s %6s %12s %12s %10s %10s %10s %12s %4s\n",
                "design", "load", "offered/Mc", "achieved/Mc", "p50",
                "p99", "p999", "max", "sat");
    const std::string *prev = nullptr;
    for (const LatencyPoint &p : points) {
        if (prev != nullptr && *prev != p.design)
            std::printf("\n");
        prev = &p.design;
        std::printf("  %-20s %6.2f %12.2f %12.2f %10llu %10llu %10llu "
                    "%12llu %4s\n",
                    p.design.c_str(), p.loadFrac, p.offeredPerMcycle,
                    p.achievedPerMcycle,
                    static_cast<unsigned long long>(p.p50),
                    static_cast<unsigned long long>(p.p99),
                    static_cast<unsigned long long>(p.p999),
                    static_cast<unsigned long long>(p.maxLatency),
                    p.sustained ? "" : "SAT");
    }
}

void
printKneeTable(const std::string &caption,
               const std::vector<KneeRow> &rows)
{
    std::printf("\n== %s ==\n", caption.c_str());
    std::printf("  %-20s %12s %10s %14s %12s\n", "design",
                "capacity/Mc", "knee load", "achieved/Mc", "p999@knee");
    for (const KneeRow &r : rows) {
        if (!r.found) {
            std::printf("  %-20s %12.2f %10s %14s %12s\n",
                        r.design.c_str(), r.capacityPerMcycle, "-",
                        "saturated", "-");
            continue;
        }
        std::printf("  %-20s %12.2f %10.2f %14.2f %12llu\n",
                    r.design.c_str(), r.capacityPerMcycle, r.kneeFrac,
                    r.kneeAchievedPerMcycle,
                    static_cast<unsigned long long>(r.p999AtKnee));
    }
}

}  // namespace tvarak
