/**
 * @file
 * Experiment runner: builds a machine, runs a workload set under one
 * redundancy design, returns the Fig 8 quantities.
 */

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "harness/workload.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace tvarak {

/** Everything the paper plots, for one (workload, design) run. */
struct RunResult {
    DesignKind design{};  //!< serialization identity of the run's design
    Cycles runtimeCycles = 0;
    double runtimeMs = 0;
    double energyMj = 0;            //!< millijoules
    std::uint64_t nvmDataAccesses = 0;
    std::uint64_t nvmRedAccesses = 0;
    std::uint64_t cacheAccesses = 0;  //!< L1+L2+LLC+on-TVARAK
    Stats stats{1, 1};
};

/**
 * A bundle of per-thread workloads plus optional shared state that
 * must live as long as they do (shared pools, schemes, drivers).
 */
struct WorkloadSet {
    std::vector<std::unique_ptr<Workload>> workloads;
    /** Opaque keep-alive for state shared between the workloads. */
    std::shared_ptr<void> shared;
    /** Runs after all setup() calls, before stats reset — e.g.
     *  MemorySystem::dropCaches for cold-start workloads (fio). */
    std::function<void(MemorySystem &)> beforeMeasure;
};

/** Builds the workload set against a fresh machine. */
using WorkloadFactory =
    std::function<WorkloadSet(MemorySystem &, DaxFs &)>;

/**
 * Optional observation points in runExperiment, in call order. All
 * default to absent; the trace recorder (src/trace/) is the client.
 */
struct RunHooks {
    /** After machine + file system construction, before setup(). */
    std::function<void(MemorySystem &, DaxFs &)> onMachine;
    /** After beforeMeasure, immediately before the stats reset. */
    std::function<void(MemorySystem &)> beforeReset;
    /** After every round-robin scheduling pass over the workload set,
     *  with the number of passes completed so far (1-based). Lets a
     *  driver inject faults or run maintenance (rebuild, scrubbing)
     *  interleaved with the measured run. */
    std::function<void(MemorySystem &, std::size_t)> onStep;
    /** After the last step(), immediately before the final flushAll. */
    std::function<void(MemorySystem &)> beforeFlush;
};

class Design;

/**
 * Run @p make's workloads to completion under @p design (any
 * registered Design, variants included).
 *
 * Order: build machine -> setup() all -> stats reset -> round-robin
 * step() until all done -> flushAll() (the writeback tail is part of
 * the measured NVM occupancy) -> collect.
 */
RunResult runExperiment(const SimConfig &cfg, const Design &design,
                        const WorkloadFactory &make);

/** As above, with observation hooks. */
RunResult runExperiment(const SimConfig &cfg, const Design &design,
                        const WorkloadFactory &make,
                        const RunHooks &hooks);

/** Convenience shims: the canonical design for @p design. */
RunResult runExperiment(const SimConfig &cfg, DesignKind design,
                        const WorkloadFactory &make);
RunResult runExperiment(const SimConfig &cfg, DesignKind design,
                        const WorkloadFactory &make,
                        const RunHooks &hooks);

/** The four designs of the evaluation, in paper order. */
const std::vector<DesignKind> &allDesigns();

}  // namespace tvarak

