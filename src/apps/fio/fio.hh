/**
 * @file
 * Fio-like synthetic file benchmark (paper Section IV-E).
 *
 * Sequential and random 64 B reads/writes through the libpmem-style
 * DAX path: each of 12 threads owns a non-overlapping region and no
 * cache line is accessed twice (paper Table II). The random pattern is
 * a multiplicative-permutation walk over the region's lines, which
 * visits every line exactly once with no spatial locality.
 */

#pragma once

#include <memory>

#include "harness/workload.hh"
#include "redundancy/raw_coverage.hh"

namespace tvarak {

class FioWorkload final : public Workload
{
  public:
    enum class Pattern { SeqRead, SeqWrite, RandRead, RandWrite };

    struct Params {
        Pattern pattern = Pattern::SeqRead;
        std::size_t regionBytes = 4ull << 20;  //!< per thread (scaled)
        std::size_t sliceLines = 2048;
    };

    FioWorkload(MemorySystem &mem, DaxFs &fs, int tid,
                RedundancyScheme *scheme, Params params);

    void setup() override;
    bool step() override;
    int tid() const override { return tid_; }
    std::string name() const override;

    static const char *patternName(Pattern p);

  private:
    Addr lineAt(std::size_t i) const;

    MemorySystem &mem_;
    DaxFs &fs_;
    int tid_;
    RedundancyScheme *scheme_;
    Params params_;
    Addr base_ = 0;
    std::size_t lines_ = 0;
    std::size_t next_ = 0;
    std::size_t permStride_ = 0;
    std::unique_ptr<RawCoverage> coverage_;
};

}  // namespace tvarak

