#include "apps/fio/fio.hh"

#include <cstring>
#include <numeric>

#include "sim/log.hh"

namespace tvarak {

FioWorkload::FioWorkload(MemorySystem &mem, DaxFs &fs, int tid,
                         RedundancyScheme *scheme, Params params)
    : mem_(mem), fs_(fs), tid_(tid), scheme_(scheme), params_(params)
{
    panic_if(params_.regionBytes % kPageBytes != 0,
             "fio region must be page aligned");
}

const char *
FioWorkload::patternName(Pattern p)
{
    switch (p) {
      case Pattern::SeqRead:   return "seq-read";
      case Pattern::SeqWrite:  return "seq-write";
      case Pattern::RandRead:  return "rand-read";
      case Pattern::RandWrite: return "rand-write";
    }
    return "?";
}

std::string
FioWorkload::name() const
{
    return std::string("fio-") + patternName(params_.pattern) + "-" +
        std::to_string(tid_);
}

void
FioWorkload::setup()
{
    std::size_t table = RawCoverage::tableBytes(params_.regionBytes);
    int fd = fs_.create("fio" + std::to_string(tid_),
                        params_.regionBytes + table);
    base_ = fs_.daxMap(fd);
    lines_ = params_.regionBytes / kLineBytes;
    // A multiplier coprime with the line count scatters accesses.
    permStride_ = 0;
    if (params_.pattern == Pattern::RandRead ||
        params_.pattern == Pattern::RandWrite) {
        permStride_ = lines_ / 2 + 73;
        while (std::gcd(permStride_, lines_) != 1)
            permStride_++;
    }
    coverage_ = std::make_unique<RawCoverage>(
        mem_, scheme_, base_, params_.regionBytes,
        base_ + params_.regionBytes);

    // Read workloads need non-trivial resident data.
    if (params_.pattern == Pattern::SeqRead ||
        params_.pattern == Pattern::RandRead) {
        std::uint8_t buf[kLineBytes];
        for (std::size_t l = 0; l < lines_; l++) {
            std::memset(buf, static_cast<int>(l & 0xff), sizeof(buf));
            mem_.write(tid_, base_ + l * kLineBytes, buf, sizeof(buf));
        }
    }
}

Addr
FioWorkload::lineAt(std::size_t i) const
{
    std::size_t idx = permStride_ != 0
        ? (i * permStride_) % lines_
        : i;
    return base_ + idx * kLineBytes;
}

bool
FioWorkload::step()
{
    bool is_write = params_.pattern == Pattern::SeqWrite ||
        params_.pattern == Pattern::RandWrite;
    std::uint8_t buf[kLineBytes];
    std::size_t end = std::min(next_ + params_.sliceLines, lines_);
    for (; next_ < end; next_++) {
        Addr a = lineAt(next_);
        if (is_write) {
            std::memset(buf, static_cast<int>(next_ & 0xff),
                        sizeof(buf));
            mem_.write(tid_, a, buf, kLineBytes);
            coverage_->onWrite(tid_, a, kLineBytes);
        } else {
            mem_.read(tid_, a, buf, kLineBytes);
        }
    }
    return next_ < lines_;
}

}  // namespace tvarak
