/**
 * @file
 * Driver for the tree key-value stores (paper Table II): insert-only,
 * update-only, balanced (50:50 updates:reads) and read-only workloads
 * against C-Tree / B-Tree / RB-Tree, 12 independent single-threaded
 * instances (pmembench style; locks removed because instances do not
 * share state).
 */

#pragma once

#include <memory>

#include "apps/trees/pmem_map.hh"
#include "harness/workload.hh"
#include "sim/rng.hh"

namespace tvarak {

class TreeWorkload final : public Workload
{
  public:
    enum class Mix { InsertOnly, UpdateOnly, Balanced, ReadOnly };

    struct Params {
        MapKind kind = MapKind::CTree;
        Mix mix = Mix::InsertOnly;
        std::size_t preload = 8192;   //!< keys loaded before measuring
        std::size_t ops = 16384;      //!< measured operations
        std::size_t valueBytes = 64;
        std::size_t sliceOps = 512;
        std::size_t poolBytes = 8ull << 20;
    };

    TreeWorkload(MemorySystem &mem, DaxFs &fs, int tid,
                 RedundancyScheme *scheme, Params params);
    ~TreeWorkload() override;

    void setup() override;
    bool step() override;
    int tid() const override { return tid_; }
    std::string name() const override;

    static const char *mixName(Mix mix);

    PmemMap &map() { return *map_; }
    PmemPool &pool() { return *pool_; }

  private:
    void doOp();

    MemorySystem &mem_;
    DaxFs &fs_;
    int tid_;
    RedundancyScheme *scheme_;
    Params params_;
    Rng rng_;
    std::unique_ptr<PmemPool> pool_;
    std::unique_ptr<PmemMap> map_;
    std::size_t done_ = 0;
    std::vector<std::uint64_t> keys_;   //!< driver's key index
    std::vector<std::uint8_t> value_;   //!< reusable value buffer
};

}  // namespace tvarak

