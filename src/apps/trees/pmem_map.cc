#include "apps/trees/pmem_map.hh"

#include "apps/trees/trees_impl.hh"
#include "sim/log.hh"

namespace tvarak {

Addr
PmemMap::makeValue(int tid, const void *value)
{
    Addr v = pool_.alloc(tid, valueBytes_);
    pool_.txWrite(tid, v, value, valueBytes_);
    return v;
}

const char *
mapKindName(MapKind kind)
{
    switch (kind) {
      case MapKind::CTree:  return "ctree";
      case MapKind::BTree:  return "btree";
      case MapKind::RBTree: return "rbtree";
    }
    return "?";
}

std::unique_ptr<PmemMap>
makeMap(MapKind kind, MemorySystem &mem, PmemPool &pool,
        std::size_t valueBytes)
{
    switch (kind) {
      case MapKind::CTree:
        return std::make_unique<CTreeMap>(mem, pool, valueBytes);
      case MapKind::BTree:
        return std::make_unique<BTreeMap>(mem, pool, valueBytes);
      case MapKind::RBTree:
        return std::make_unique<RBTreeMap>(mem, pool, valueBytes);
    }
    panic("unknown map kind");
}

}  // namespace tvarak
