#include "apps/trees/tree_workload.hh"

#include <cstring>

#include "sim/log.hh"

namespace tvarak {

TreeWorkload::TreeWorkload(MemorySystem &mem, DaxFs &fs, int tid,
                           RedundancyScheme *scheme, Params params)
    : mem_(mem),
      fs_(fs),
      tid_(tid),
      scheme_(scheme),
      params_(params),
      rng_(0x1000 + static_cast<std::uint64_t>(tid))
{}

TreeWorkload::~TreeWorkload() = default;

const char *
TreeWorkload::mixName(Mix mix)
{
    switch (mix) {
      case Mix::InsertOnly: return "insert-only";
      case Mix::UpdateOnly: return "update-only";
      case Mix::Balanced:   return "balanced";
      case Mix::ReadOnly:   return "read-only";
    }
    return "?";
}

std::string
TreeWorkload::name() const
{
    return std::string(mapKindName(params_.kind)) + "-" +
        mixName(params_.mix) + "-" + std::to_string(tid_);
}

void
TreeWorkload::setup()
{
    pool_ = std::make_unique<PmemPool>(
        mem_, fs_, std::string(mapKindName(params_.kind)) + "-pool-" +
            std::to_string(tid_),
        params_.poolBytes, scheme_, 1);
    map_ = makeMap(params_.kind, mem_, *pool_, params_.valueBytes);
    value_.resize(params_.valueBytes);

    // The benchmark driver (like pmembench) knows its key set; the
    // index is volatile driver state, not simulated data.
    std::size_t preload = params_.mix == Mix::InsertOnly
        ? params_.preload / 8  // inserts build most of their own tree
        : params_.preload;
    keys_.reserve(preload);
    pool_->setSchemeEnabled(false);  // unmeasured load phase
    for (std::size_t i = 0; i < preload; i++) {
        std::uint64_t key = rng_.next();
        std::memset(value_.data(), static_cast<int>(key & 0xff),
                    value_.size());
        map_->insert(tid_, key, value_.data());
        keys_.push_back(key);
    }
    pool_->setSchemeEnabled(true);
}

void
TreeWorkload::doOp()
{
    std::uint64_t existing =
        keys_[rng_.nextBounded(keys_.size())];

    switch (params_.mix) {
      case Mix::InsertOnly:
        std::memset(value_.data(), static_cast<int>(done_ & 0xff),
                    value_.size());
        map_->insert(tid_, rng_.next(), value_.data());
        break;
      case Mix::UpdateOnly:
        std::memset(value_.data(), static_cast<int>(done_ & 0xff),
                    value_.size());
        (void)map_->update(tid_, existing, value_.data());
        break;
      case Mix::Balanced:
        if (rng_.nextBool(0.5)) {
            std::memset(value_.data(), static_cast<int>(done_ & 0xff),
                        value_.size());
            (void)map_->update(tid_, existing, value_.data());
        } else {
            (void)map_->get(tid_, existing, value_.data());
        }
        break;
      case Mix::ReadOnly:
        (void)map_->get(tid_, existing, value_.data());
        break;
    }
    done_++;
}

bool
TreeWorkload::step()
{
    std::size_t end = std::min(done_ + params_.sliceOps, params_.ops);
    while (done_ < end)
        doOp();
    return done_ < params_.ops;
}

}  // namespace tvarak
