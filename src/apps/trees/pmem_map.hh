/**
 * @file
 * Persistent key-value map interface over PmemPool, with the three
 * PMDK-style implementations the paper evaluates (Table II):
 *
 *  - CTree:  crit-bit binary tree (PMDK's ctree_map);
 *  - BTree:  order-8 B+-tree with in-node arrays (btree_map);
 *  - RBTree: red-black tree with parent pointers (rbtree_map).
 *
 * Keys are 64-bit integers; values are fixed-size byte blobs stored
 * in separate pool objects. Mutations run inside pool transactions
 * (undo-logged); lookups are transaction-free reads, as in PMDK's
 * examples. All persistent loads/stores go through the simulated
 * memory system, so every design's redundancy machinery sees exactly
 * the traffic a real PMDK workload would generate.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "pmemlib/pmem_pool.hh"

namespace tvarak {

class PmemMap
{
  public:
    virtual ~PmemMap() = default;

    /** Insert @p key -> value (overwrites an existing key). */
    virtual void insert(int tid, std::uint64_t key, const void *value) = 0;
    /** Overwrite the value of @p key in place. @return found. */
    virtual bool update(int tid, std::uint64_t key, const void *value) = 0;
    /** Read the value of @p key. @return found. */
    virtual bool get(int tid, std::uint64_t key, void *value) = 0;
    /** Remove @p key, freeing its value and structure nodes.
     *  @return found. */
    virtual bool erase(int tid, std::uint64_t key) = 0;
    /** Virtual address of @p key's value payload (0 if absent);
     *  for diagnostics and fault-injection tooling. */
    virtual Addr valueAddr(int tid, std::uint64_t key) = 0;

    std::size_t valueBytes() const { return valueBytes_; }
    virtual const char *kindName() const = 0;

  protected:
    PmemMap(MemorySystem &mem, PmemPool &pool, std::size_t valueBytes)
        : mem_(mem), pool_(pool), valueBytes_(valueBytes)
    {}

    /** Allocate + fill a value object; returns its address. */
    Addr makeValue(int tid, const void *value);

    MemorySystem &mem_;
    PmemPool &pool_;
    std::size_t valueBytes_;
};

enum class MapKind { CTree, BTree, RBTree };

const char *mapKindName(MapKind kind);

/** Construct a map of @p kind rooted in @p pool. */
std::unique_ptr<PmemMap> makeMap(MapKind kind, MemorySystem &mem,
                                 PmemPool &pool,
                                 std::size_t valueBytes = 64);

}  // namespace tvarak

