/**
 * @file
 * Order-8 B-tree (PMDK btree_map equivalent) with preemptive splits.
 *
 * Persistent node layout (16-byte header + arrays):
 *   [0]  u32 n            item count
 *   [4]  u32 leaf         1 if leaf
 *   [8]  u64 reserved
 *   [16] items: kOrder x {u64 key, u64 valueAddr}
 *   [16 + 16*kOrder] children: (kOrder+1) x u64
 *
 * Splits happen on the way down (split-full-child-before-descending),
 * so an insert never propagates upward — the classic preemptive
 * B-tree insertion, which keeps each transaction small.
 */

#include <cstring>

#include "apps/trees/trees_impl.hh"
#include "sim/log.hh"

namespace tvarak {

namespace {

/** Bytes of one child-pointer slot (u64). */
constexpr std::size_t kChildPtrBytes = 8;

constexpr std::size_t kItemsOff = 16;
constexpr std::size_t kChildrenOff =
    kItemsOff + 16 * BTreeMap::kOrder;
constexpr std::size_t kNodeBytes =
    kChildrenOff + kChildPtrBytes * (BTreeMap::kOrder + 1);

Addr itemAddr(Addr node, std::size_t i) { return node + kItemsOff + 16 * i; }
Addr childAddr(Addr node, std::size_t i)
{
    return node + kChildrenOff + kChildPtrBytes * i;
}

}  // namespace

BTreeMap::BTreeMap(MemorySystem &mem, PmemPool &pool,
                   std::size_t valueBytes)
    : PmemMap(mem, pool, valueBytes)
{
    Addr root = pool_.getRoot(0);
    if (root == 0) {
        root = pool_.alloc(0, 8);
        pool_.txBegin(0);
        Addr node = allocNode(0, true);
        pool_.txWrite(0, root, &node, 8);
        pool_.setRoot(0, root);
        pool_.txCommit(0);
    }
    rootSlot_ = root;
}

Addr
BTreeMap::allocNode(int tid, bool leaf)
{
    Addr node = pool_.alloc(tid, kNodeBytes);
    std::uint32_t hdr[2] = {0, leaf ? 1u : 0u};
    pool_.txWrite(tid, node, hdr, sizeof(hdr));
    return node;
}

/** Volatile snapshot of a node header. */
struct BTreeMap::NodeView {
    std::uint32_t n;
    std::uint32_t leaf;

    static NodeView
    read(MemorySystem &mem, int tid, Addr node)
    {
        std::uint32_t hdr[2];
        mem.read(tid, node, hdr, sizeof(hdr));
        return {hdr[0], hdr[1]};
    }
};

void
BTreeMap::splitChild(int tid, Addr parent, std::size_t childIdx)
{
    Addr child = mem_.read64(tid, childAddr(parent, childIdx));
    NodeView cv = NodeView::read(mem_, tid, child);
    panic_if(cv.n != kOrder, "splitting a non-full child");
    std::size_t mid = kOrder / 2;

    Addr right = allocNode(tid, cv.leaf != 0);
    // Move the upper half of child's items (and children) right.
    std::uint8_t items[16 * kOrder];
    mem_.read(tid, itemAddr(child, 0), items, sizeof(items));
    std::size_t moved = kOrder - mid - 1;
    pool_.txWrite(tid, itemAddr(right, 0), items + 16 * (mid + 1),
                  16 * moved);
    if (cv.leaf == 0) {
        std::uint8_t kids[kChildPtrBytes * (kOrder + 1)];
        mem_.read(tid, childAddr(child, 0), kids, sizeof(kids));
        pool_.txWrite(tid, childAddr(right, 0),
                      kids + kChildPtrBytes * (mid + 1),
                      kChildPtrBytes * (moved + 1));
    }
    std::uint32_t rn = static_cast<std::uint32_t>(moved);
    pool_.txWrite(tid, right, &rn, 4);
    std::uint32_t cn = static_cast<std::uint32_t>(mid);
    pool_.txWrite(tid, child, &cn, 4);

    // Shift the parent's items/children to make room at childIdx.
    NodeView pv = NodeView::read(mem_, tid, parent);
    std::uint8_t pitems[16 * kOrder];
    mem_.read(tid, itemAddr(parent, 0), pitems, 16 * pv.n);
    std::uint8_t pkids[kChildPtrBytes * (kOrder + 1)];
    mem_.read(tid, childAddr(parent, 0), pkids,
              kChildPtrBytes * (pv.n + 1));
    if (pv.n > childIdx) {
        pool_.txWrite(tid, itemAddr(parent, childIdx + 1),
                      pitems + 16 * childIdx, 16 * (pv.n - childIdx));
        pool_.txWrite(tid, childAddr(parent, childIdx + 2),
                      pkids + kChildPtrBytes * (childIdx + 1),
                      kChildPtrBytes * (pv.n - childIdx));
    }
    // Promote the median item.
    pool_.txWrite(tid, itemAddr(parent, childIdx), items + 16 * mid, 16);
    pool_.txWrite(tid, childAddr(parent, childIdx + 1), &right, 8);
    std::uint32_t pn = pv.n + 1;
    pool_.txWrite(tid, parent, &pn, 4);
}

void
BTreeMap::insertNonFull(int tid, Addr node, std::uint64_t key, Addr val)
{
    while (true) {
        NodeView v = NodeView::read(mem_, tid, node);
        // Locate position (linear scan; order 8 keeps this short).
        std::size_t i = 0;
        std::uint64_t k = 0;
        for (; i < v.n; i++) {
            k = mem_.read64(tid, itemAddr(node, i));
            if (k >= key)
                break;
        }
        if (i < v.n && k == key) {
            // Replace existing value.
            Addr old = mem_.read64(tid, itemAddr(node, i) + 8);
            pool_.txWrite(tid, itemAddr(node, i) + 8, &val, 8);
            pool_.free(tid, old);
            return;
        }
        if (v.leaf != 0) {
            std::uint8_t items[16 * kOrder];
            if (v.n > i) {
                mem_.read(tid, itemAddr(node, i), items,
                          16 * (v.n - i));
                pool_.txWrite(tid, itemAddr(node, i + 1), items,
                              16 * (v.n - i));
            }
            std::uint64_t item[2] = {key, val};
            pool_.txWrite(tid, itemAddr(node, i), item, 16);
            std::uint32_t n = v.n + 1;
            pool_.txWrite(tid, node, &n, 4);
            return;
        }
        Addr child = mem_.read64(tid, childAddr(node, i));
        if (NodeView::read(mem_, tid, child).n == kOrder) {
            splitChild(tid, node, i);
            // The promoted median may redirect us.
            std::uint64_t med = mem_.read64(tid, itemAddr(node, i));
            if (key == med) {
                Addr old = mem_.read64(tid, itemAddr(node, i) + 8);
                pool_.txWrite(tid, itemAddr(node, i) + 8, &val, 8);
                pool_.free(tid, old);
                return;
            }
            if (key > med)
                child = mem_.read64(tid, childAddr(node, i + 1));
            else
                child = mem_.read64(tid, childAddr(node, i));
        }
        node = child;
    }
}

void
BTreeMap::insert(int tid, std::uint64_t key, const void *value)
{
    pool_.txBegin(tid);
    Addr val = makeValue(tid, value);
    Addr root = mem_.read64(tid, rootSlot_);
    if (NodeView::read(mem_, tid, root).n == kOrder) {
        Addr nroot = allocNode(tid, false);
        pool_.txWrite(tid, childAddr(nroot, 0), &root, 8);
        pool_.txWrite(tid, rootSlot_, &nroot, 8);
        splitChild(tid, nroot, 0);
        root = nroot;
    }
    insertNonFull(tid, root, key, val);
    pool_.txCommit(tid);
}


namespace {

constexpr std::size_t kMinItems = BTreeMap::kOrder / 2;

}  // namespace

Addr
BTreeMap::fixChildForDelete(int tid, Addr parent, std::size_t childIdx)
{
    Addr child = mem_.read64(tid, childAddr(parent, childIdx));
    NodeView cv = NodeView::read(mem_, tid, child);
    if (cv.n > kMinItems - 1)
        return child;

    NodeView pv = NodeView::read(mem_, tid, parent);
    // Try borrowing from the left sibling.
    if (childIdx > 0) {
        Addr left = mem_.read64(tid, childAddr(parent, childIdx - 1));
        NodeView lv = NodeView::read(mem_, tid, left);
        if (lv.n > kMinItems - 1) {
            // Rotate right through the parent separator.
            std::uint8_t items[16 * kOrder];
            mem_.read(tid, itemAddr(child, 0), items, 16 * cv.n);
            pool_.txWrite(tid, itemAddr(child, 1), items, 16 * cv.n);
            std::uint8_t sep[16];
            mem_.read(tid, itemAddr(parent, childIdx - 1), sep, 16);
            pool_.txWrite(tid, itemAddr(child, 0), sep, 16);
            std::uint8_t moved[16];
            mem_.read(tid, itemAddr(left, lv.n - 1), moved, 16);
            pool_.txWrite(tid, itemAddr(parent, childIdx - 1), moved,
                          16);
            if (cv.leaf == 0) {
                std::uint8_t kids[kChildPtrBytes * (kOrder + 1)];
                mem_.read(tid, childAddr(child, 0), kids,
                          kChildPtrBytes * (cv.n + 1));
                pool_.txWrite(tid, childAddr(child, 1), kids,
                              kChildPtrBytes * (cv.n + 1));
                Addr k = mem_.read64(tid, childAddr(left, lv.n));
                pool_.txWrite(tid, childAddr(child, 0), &k, 8);
            }
            std::uint32_t cn = cv.n + 1, ln = lv.n - 1;
            pool_.txWrite(tid, child, &cn, 4);
            pool_.txWrite(tid, left, &ln, 4);
            return child;
        }
    }
    // Try borrowing from the right sibling.
    if (childIdx < pv.n) {
        Addr right = mem_.read64(tid, childAddr(parent, childIdx + 1));
        NodeView rv = NodeView::read(mem_, tid, right);
        if (rv.n > kMinItems - 1) {
            // Rotate left through the parent separator.
            std::uint8_t sep[16];
            mem_.read(tid, itemAddr(parent, childIdx), sep, 16);
            pool_.txWrite(tid, itemAddr(child, cv.n), sep, 16);
            std::uint8_t moved[16];
            mem_.read(tid, itemAddr(right, 0), moved, 16);
            pool_.txWrite(tid, itemAddr(parent, childIdx), moved, 16);
            std::uint8_t items[16 * kOrder];
            mem_.read(tid, itemAddr(right, 1), items, 16 * (rv.n - 1));
            pool_.txWrite(tid, itemAddr(right, 0), items,
                          16 * (rv.n - 1));
            if (cv.leaf == 0) {
                Addr k = mem_.read64(tid, childAddr(right, 0));
                pool_.txWrite(tid, childAddr(child, cv.n + 1), &k, 8);
                std::uint8_t kids[kChildPtrBytes * (kOrder + 1)];
                mem_.read(tid, childAddr(right, 1), kids, kChildPtrBytes * rv.n);
                pool_.txWrite(tid, childAddr(right, 0), kids, kChildPtrBytes * rv.n);
            }
            std::uint32_t cn = cv.n + 1, rn = rv.n - 1;
            pool_.txWrite(tid, child, &cn, 4);
            pool_.txWrite(tid, right, &rn, 4);
            return child;
        }
    }
    // Merge with a sibling (both at minimum): child absorbs the
    // separator and the right node of the pair.
    std::size_t left_idx = childIdx > 0 ? childIdx - 1 : childIdx;
    Addr left = mem_.read64(tid, childAddr(parent, left_idx));
    Addr right = mem_.read64(tid, childAddr(parent, left_idx + 1));
    NodeView lv = NodeView::read(mem_, tid, left);
    NodeView rv = NodeView::read(mem_, tid, right);

    std::uint8_t sep[16];
    mem_.read(tid, itemAddr(parent, left_idx), sep, 16);
    pool_.txWrite(tid, itemAddr(left, lv.n), sep, 16);
    std::uint8_t items[16 * kOrder];
    mem_.read(tid, itemAddr(right, 0), items, 16 * rv.n);
    pool_.txWrite(tid, itemAddr(left, lv.n + 1), items, 16 * rv.n);
    if (lv.leaf == 0) {
        std::uint8_t kids[kChildPtrBytes * (kOrder + 1)];
        mem_.read(tid, childAddr(right, 0), kids, kChildPtrBytes * (rv.n + 1));
        pool_.txWrite(tid, childAddr(left, lv.n + 1), kids,
                      kChildPtrBytes * (rv.n + 1));
    }
    std::uint32_t ln = lv.n + 1 + rv.n;
    pool_.txWrite(tid, left, &ln, 4);

    // Remove the separator and right pointer from the parent.
    NodeView pv2 = NodeView::read(mem_, tid, parent);
    if (pv2.n > left_idx + 1) {
        std::uint8_t pitems[16 * kOrder];
        mem_.read(tid, itemAddr(parent, left_idx + 1), pitems,
                  16 * (pv2.n - left_idx - 1));
        pool_.txWrite(tid, itemAddr(parent, left_idx), pitems,
                      16 * (pv2.n - left_idx - 1));
        std::uint8_t pkids[kChildPtrBytes * (kOrder + 1)];
        mem_.read(tid, childAddr(parent, left_idx + 2), pkids,
                  kChildPtrBytes * (pv2.n - left_idx - 1));
        pool_.txWrite(tid, childAddr(parent, left_idx + 1), pkids,
                      kChildPtrBytes * (pv2.n - left_idx - 1));
    }
    std::uint32_t pn = pv2.n - 1;
    pool_.txWrite(tid, parent, &pn, 4);
    pool_.free(tid, right);
    return left;
}

bool
BTreeMap::eraseFrom(int tid, Addr node, std::uint64_t key)
{
    while (true) {
        NodeView v = NodeView::read(mem_, tid, node);
        std::size_t i = 0;
        std::uint64_t k = 0;
        for (; i < v.n; i++) {
            k = mem_.read64(tid, itemAddr(node, i));
            if (k >= key)
                break;
        }
        bool found = i < v.n && k == key;

        if (v.leaf != 0) {
            if (!found)
                return false;
            Addr value = mem_.read64(tid, itemAddr(node, i) + 8);
            if (v.n > i + 1) {
                std::uint8_t items[16 * kOrder];
                mem_.read(tid, itemAddr(node, i + 1), items,
                          16 * (v.n - i - 1));
                pool_.txWrite(tid, itemAddr(node, i), items,
                              16 * (v.n - i - 1));
            }
            std::uint32_t n = v.n - 1;
            pool_.txWrite(tid, node, &n, 4);
            pool_.free(tid, value);
            return true;
        }
        if (found) {
            // Replace with the predecessor (rightmost item of the
            // left child), then delete that item below. Ensure the
            // left child is non-minimal first.
            Addr child = fixChildForDelete(tid, node, i);
            // The fix may have moved/merged items; retry from here.
            NodeView v2 = NodeView::read(mem_, tid, node);
            std::size_t j = 0;
            std::uint64_t k2 = 0;
            for (; j < v2.n; j++) {
                k2 = mem_.read64(tid, itemAddr(node, j));
                if (k2 >= key)
                    break;
            }
            if (j >= v2.n || k2 != key) {
                // The key moved down during the merge; keep walking.
                node = child;
                continue;
            }
            // Find the predecessor in the left subtree.
            Addr pred = mem_.read64(tid, childAddr(node, j));
            while (true) {
                NodeView pv = NodeView::read(mem_, tid, pred);
                if (pv.leaf != 0)
                    break;
                pred = fixChildForDelete(tid, pred, pv.n);
                NodeView check = NodeView::read(mem_, tid, pred);
                if (check.leaf != 0)
                    break;
                pred = mem_.read64(tid, childAddr(pred, check.n));
            }
            NodeView lv = NodeView::read(mem_, tid, pred);
            std::uint8_t item[16];
            mem_.read(tid, itemAddr(pred, lv.n - 1), item, 16);
            std::uint64_t pred_key;
            std::memcpy(&pred_key, item, 8);
            // Free the victim's value, move the predecessor item up.
            Addr victim_value =
                mem_.read64(tid, itemAddr(node, j) + 8);
            pool_.txWrite(tid, itemAddr(node, j), item, 16);
            pool_.free(tid, victim_value);
            // Delete the predecessor item (not its value) below.
            key = pred_key;
            node = mem_.read64(tid, childAddr(node, j));
            // Remove pred item when we reach it: it is now a
            // duplicate; the loop handles it, but its value must NOT
            // be freed twice — null it first.
            (void)lv;
            // Walk down deleting pred_key; since the leaf copy's
            // value pointer was moved up, overwrite it with 0 so the
            // leaf delete frees nothing.
            // (Handled by eraseDupLeafCopy below.)
            eraseDupLeafCopy(tid, node, pred_key);
            return true;
        }
        node = fixChildForDelete(tid, node, i);
    }
}

void
BTreeMap::eraseDupLeafCopy(int tid, Addr node, std::uint64_t key)
{
    // Delete the (duplicate) predecessor item whose value pointer was
    // promoted: descend non-minimally and drop the item without
    // freeing the value.
    while (true) {
        NodeView v = NodeView::read(mem_, tid, node);
        std::size_t i = 0;
        std::uint64_t k = 0;
        for (; i < v.n; i++) {
            k = mem_.read64(tid, itemAddr(node, i));
            if (k >= key)
                break;
        }
        if (v.leaf != 0) {
            panic_if(i >= v.n || k != key,
                     "predecessor copy vanished");
            if (v.n > i + 1) {
                std::uint8_t items[16 * kOrder];
                mem_.read(tid, itemAddr(node, i + 1), items,
                          16 * (v.n - i - 1));
                pool_.txWrite(tid, itemAddr(node, i), items,
                              16 * (v.n - i - 1));
            }
            std::uint32_t n = v.n - 1;
            pool_.txWrite(tid, node, &n, 4);
            return;
        }
        panic_if(i < v.n && k == key,
                 "predecessor must sit in the rightmost leaf");
        node = fixChildForDelete(tid, node, i);
    }
}

bool
BTreeMap::erase(int tid, std::uint64_t key)
{
    pool_.txBegin(tid);
    Addr root = mem_.read64(tid, rootSlot_);
    bool found = eraseFrom(tid, root, key);
    // Shrink the tree if the root emptied out.
    NodeView rv = NodeView::read(mem_, tid, root);
    if (rv.n == 0 && rv.leaf == 0) {
        Addr child = mem_.read64(tid, childAddr(root, 0));
        pool_.txWrite(tid, rootSlot_, &child, 8);
        pool_.free(tid, root);
    }
    pool_.txCommit(tid);
    return found;
}

Addr
BTreeMap::findValueSlot(int tid, std::uint64_t key)
{
    Addr node = mem_.read64(tid, rootSlot_);
    while (node != 0) {
        NodeView v = NodeView::read(mem_, tid, node);
        std::size_t i = 0;
        for (; i < v.n; i++) {
            std::uint64_t k = mem_.read64(tid, itemAddr(node, i));
            if (k == key)
                return itemAddr(node, i) + 8;
            if (k > key)
                break;
        }
        if (v.leaf != 0)
            return 0;
        node = mem_.read64(tid, childAddr(node, i));
    }
    return 0;
}

bool
BTreeMap::update(int tid, std::uint64_t key, const void *value)
{
    Addr slot = findValueSlot(tid, key);
    if (slot == 0)
        return false;
    Addr val = mem_.read64(tid, slot);
    pool_.txBegin(tid);
    pool_.txWrite(tid, val, value, valueBytes_);
    pool_.txCommit(tid);
    return true;
}

Addr
BTreeMap::valueAddr(int tid, std::uint64_t key)
{
    Addr slot = findValueSlot(tid, key);
    return slot == 0 ? 0 : mem_.read64(tid, slot);
}

bool
BTreeMap::get(int tid, std::uint64_t key, void *value)
{
    Addr slot = findValueSlot(tid, key);
    if (slot == 0)
        return false;
    mem_.read(tid, mem_.read64(tid, slot), value, valueBytes_);
    return true;
}

}  // namespace tvarak
