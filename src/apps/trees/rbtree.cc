/**
 * @file
 * Red-black tree (PMDK rbtree_map equivalent).
 *
 * Persistent node layout (48 B):
 *   [0] key  [8] valueAddr  [16] left  [24] right  [32] parent
 *   [40] color (0 = black, 1 = red)
 * Address 0 is the NIL sentinel (black, never dereferenced for
 * children). The root slot object holds the tree root pointer.
 */

#include "apps/trees/trees_impl.hh"
#include "sim/log.hh"

namespace tvarak {

namespace {

constexpr std::size_t kKey = 0, kVal = 8, kLeft = 16, kRight = 24,
                      kParent = 32, kColor = 40;
constexpr std::uint64_t kBlack = 0, kRed = 1;
constexpr std::size_t kNodeBytes = 48;

}  // namespace

RBTreeMap::RBTreeMap(MemorySystem &mem, PmemPool &pool,
                     std::size_t valueBytes)
    : PmemMap(mem, pool, valueBytes)
{
    Addr root = pool_.getRoot(0);
    if (root == 0) {
        root = pool_.alloc(0, 8);
        std::uint64_t zero = 0;
        pool_.txBegin(0);
        pool_.txWrite(0, root, &zero, 8);
        pool_.setRoot(0, root);
        pool_.txCommit(0);
    }
    rootSlot_ = root;
}

Addr
RBTreeMap::findNode(int tid, std::uint64_t key)
{
    Addr node = mem_.read64(tid, rootSlot_);
    while (node != 0) {
        std::uint64_t k = mem_.read64(tid, node + kKey);
        if (k == key)
            return node;
        node = mem_.read64(tid, node + (key < k ? kLeft : kRight));
    }
    return 0;
}

void
RBTreeMap::rotate(int tid, Addr x, bool left)
{
    std::size_t toward = left ? kRight : kLeft;
    std::size_t away = left ? kLeft : kRight;
    Addr y = mem_.read64(tid, x + toward);
    Addr y_away = mem_.read64(tid, y + away);

    pool_.txWrite(tid, x + toward, &y_away, 8);
    if (y_away != 0)
        pool_.txWrite(tid, y_away + kParent, &x, 8);

    Addr xp = mem_.read64(tid, x + kParent);
    pool_.txWrite(tid, y + kParent, &xp, 8);
    if (xp == 0) {
        pool_.txWrite(tid, rootSlot_, &y, 8);
    } else {
        std::size_t side =
            mem_.read64(tid, xp + kLeft) == x ? kLeft : kRight;
        pool_.txWrite(tid, xp + side, &y, 8);
    }
    pool_.txWrite(tid, y + away, &x, 8);
    pool_.txWrite(tid, x + kParent, &y, 8);
}

void
RBTreeMap::insertFixup(int tid, Addr z)
{
    while (true) {
        Addr zp = mem_.read64(tid, z + kParent);
        if (zp == 0 || mem_.read64(tid, zp + kColor) == kBlack)
            break;
        Addr zpp = mem_.read64(tid, zp + kParent);
        bool parent_is_left = mem_.read64(tid, zpp + kLeft) == zp;
        Addr uncle =
            mem_.read64(tid, zpp + (parent_is_left ? kRight : kLeft));
        if (uncle != 0 && mem_.read64(tid, uncle + kColor) == kRed) {
            pool_.txWrite(tid, zp + kColor, &kBlack, 8);
            pool_.txWrite(tid, uncle + kColor, &kBlack, 8);
            pool_.txWrite(tid, zpp + kColor, &kRed, 8);
            z = zpp;
            continue;
        }
        bool z_is_inner =
            mem_.read64(tid, zp + (parent_is_left ? kRight : kLeft)) == z;
        if (z_is_inner) {
            rotate(tid, zp, parent_is_left);
            z = zp;
            zp = mem_.read64(tid, z + kParent);
            zpp = mem_.read64(tid, zp + kParent);
        }
        pool_.txWrite(tid, zp + kColor, &kBlack, 8);
        pool_.txWrite(tid, zpp + kColor, &kRed, 8);
        rotate(tid, zpp, !parent_is_left);
        break;
    }
    Addr root = mem_.read64(tid, rootSlot_);
    if (mem_.read64(tid, root + kColor) != kBlack)
        pool_.txWrite(tid, root + kColor, &kBlack, 8);
}

void
RBTreeMap::insert(int tid, std::uint64_t key, const void *value)
{
    pool_.txBegin(tid);
    Addr val = makeValue(tid, value);

    // Standard BST descent, remembering the parent.
    Addr parent = 0;
    Addr node = mem_.read64(tid, rootSlot_);
    bool went_left = false;
    while (node != 0) {
        std::uint64_t k = mem_.read64(tid, node + kKey);
        if (k == key) {
            Addr old = mem_.read64(tid, node + kVal);
            pool_.txWrite(tid, node + kVal, &val, 8);
            pool_.free(tid, old);
            pool_.txCommit(tid);
            return;
        }
        parent = node;
        went_left = key < k;
        node = mem_.read64(tid, node + (went_left ? kLeft : kRight));
    }

    Addr z = pool_.alloc(tid, kNodeBytes);
    std::uint64_t init[6] = {key, val, 0, 0, parent, kRed};
    pool_.txWrite(tid, z, init, sizeof(init));
    if (parent == 0)
        pool_.txWrite(tid, rootSlot_, &z, 8);
    else
        pool_.txWrite(tid, parent + (went_left ? kLeft : kRight), &z, 8);
    insertFixup(tid, z);
    pool_.txCommit(tid);
}

bool
RBTreeMap::update(int tid, std::uint64_t key, const void *value)
{
    Addr node = findNode(tid, key);
    if (node == 0)
        return false;
    Addr val = mem_.read64(tid, node + kVal);
    pool_.txBegin(tid);
    pool_.txWrite(tid, val, value, valueBytes_);
    pool_.txCommit(tid);
    return true;
}


void
RBTreeMap::transplant(int tid, Addr u, Addr v)
{
    Addr up = mem_.read64(tid, u + kParent);
    if (up == 0) {
        pool_.txWrite(tid, rootSlot_, &v, 8);
    } else {
        std::size_t side =
            mem_.read64(tid, up + kLeft) == u ? kLeft : kRight;
        pool_.txWrite(tid, up + side, &v, 8);
    }
    if (v != 0)
        pool_.txWrite(tid, v + kParent, &up, 8);
}

void
RBTreeMap::eraseFixup(int tid, Addr x, Addr xParent)
{
    auto color_of = [&](Addr n) {
        return n == 0 ? kBlack : mem_.read64(tid, n + kColor);
    };
    while (true) {
        Addr root = mem_.read64(tid, rootSlot_);
        if (x == root || color_of(x) == kRed)
            break;
        bool x_is_left = mem_.read64(tid, xParent + kLeft) == x;
        std::size_t near = x_is_left ? kLeft : kRight;
        std::size_t far = x_is_left ? kRight : kLeft;
        Addr w = mem_.read64(tid, xParent + far);
        if (color_of(w) == kRed) {
            pool_.txWrite(tid, w + kColor, &kBlack, 8);
            pool_.txWrite(tid, xParent + kColor, &kRed, 8);
            rotate(tid, xParent, x_is_left);
            w = mem_.read64(tid, xParent + far);
        }
        if (color_of(mem_.read64(tid, w + kLeft)) == kBlack &&
            color_of(mem_.read64(tid, w + kRight)) == kBlack) {
            pool_.txWrite(tid, w + kColor, &kRed, 8);
            x = xParent;
            xParent = mem_.read64(tid, x + kParent);
            continue;
        }
        if (color_of(mem_.read64(tid, w + far)) == kBlack) {
            Addr w_near = mem_.read64(tid, w + near);
            if (w_near != 0)
                pool_.txWrite(tid, w_near + kColor, &kBlack, 8);
            pool_.txWrite(tid, w + kColor, &kRed, 8);
            rotate(tid, w, !x_is_left);
            w = mem_.read64(tid, xParent + far);
        }
        std::uint64_t pcolor = mem_.read64(tid, xParent + kColor);
        pool_.txWrite(tid, w + kColor, &pcolor, 8);
        pool_.txWrite(tid, xParent + kColor, &kBlack, 8);
        Addr w_far = mem_.read64(tid, w + far);
        if (w_far != 0)
            pool_.txWrite(tid, w_far + kColor, &kBlack, 8);
        rotate(tid, xParent, x_is_left);
        break;
    }
    if (x != 0)
        pool_.txWrite(tid, x + kColor, &kBlack, 8);
}

bool
RBTreeMap::erase(int tid, std::uint64_t key)
{
    Addr z = findNode(tid, key);
    if (z == 0)
        return false;
    pool_.txBegin(tid);
    Addr value = mem_.read64(tid, z + kVal);

    Addr y = z;
    std::uint64_t y_color = mem_.read64(tid, y + kColor);
    Addr x = 0, x_parent = 0;
    Addr z_left = mem_.read64(tid, z + kLeft);
    Addr z_right = mem_.read64(tid, z + kRight);
    if (z_left == 0) {
        x = z_right;
        x_parent = mem_.read64(tid, z + kParent);
        transplant(tid, z, z_right);
    } else if (z_right == 0) {
        x = z_left;
        x_parent = mem_.read64(tid, z + kParent);
        transplant(tid, z, z_left);
    } else {
        // Successor: minimum of the right subtree.
        y = z_right;
        for (Addr l = mem_.read64(tid, y + kLeft); l != 0;
             l = mem_.read64(tid, y + kLeft)) {
            y = l;
        }
        y_color = mem_.read64(tid, y + kColor);
        x = mem_.read64(tid, y + kRight);
        if (mem_.read64(tid, y + kParent) == z) {
            x_parent = y;
        } else {
            x_parent = mem_.read64(tid, y + kParent);
            transplant(tid, y, x);
            Addr zr = mem_.read64(tid, z + kRight);
            pool_.txWrite(tid, y + kRight, &zr, 8);
            pool_.txWrite(tid, zr + kParent, &y, 8);
        }
        transplant(tid, z, y);
        Addr zl = mem_.read64(tid, z + kLeft);
        pool_.txWrite(tid, y + kLeft, &zl, 8);
        pool_.txWrite(tid, zl + kParent, &y, 8);
        std::uint64_t zc = mem_.read64(tid, z + kColor);
        pool_.txWrite(tid, y + kColor, &zc, 8);
    }
    pool_.free(tid, z);
    pool_.free(tid, value);
    if (y_color == kBlack)
        eraseFixup(tid, x, x_parent);
    pool_.txCommit(tid);
    return true;
}

Addr
RBTreeMap::valueAddr(int tid, std::uint64_t key)
{
    Addr node = findNode(tid, key);
    return node == 0 ? 0 : mem_.read64(tid, node + kVal);
}

bool
RBTreeMap::get(int tid, std::uint64_t key, void *value)
{
    Addr node = findNode(tid, key);
    if (node == 0)
        return false;
    mem_.read(tid, mem_.read64(tid, node + kVal), value, valueBytes_);
    return true;
}

int
RBTreeMap::checkInvariants(int tid)
{
    // Iterative check via recursion on a helper lambda.
    struct Checker {
        RBTreeMap &t;
        int tid;
        bool ok = true;

        int visit(Addr node)
        {
            if (node == 0)
                return 1;  // NIL is black
            std::uint64_t color = t.mem_.read64(tid, node + kColor);
            Addr l = t.mem_.read64(tid, node + kLeft);
            Addr r = t.mem_.read64(tid, node + kRight);
            if (color == kRed) {
                if ((l != 0 &&
                     t.mem_.read64(tid, l + kColor) == kRed) ||
                    (r != 0 &&
                     t.mem_.read64(tid, r + kColor) == kRed)) {
                    ok = false;  // red node with red child
                }
            }
            std::uint64_t k = t.mem_.read64(tid, node + kKey);
            if (l != 0 && t.mem_.read64(tid, l + kKey) >= k)
                ok = false;
            if (r != 0 && t.mem_.read64(tid, r + kKey) <= k)
                ok = false;
            int lh = visit(l);
            int rh = visit(r);
            if (lh != rh)
                ok = false;
            return lh + (color == kBlack ? 1 : 0);
        }
    };
    Checker c{*this, tid};
    Addr root = mem_.read64(tid, rootSlot_);
    if (root != 0 && mem_.read64(tid, root + kColor) != kBlack)
        return -1;
    int h = c.visit(root);
    return c.ok ? h : -1;
}

}  // namespace tvarak
