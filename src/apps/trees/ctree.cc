/**
 * @file
 * Crit-bit tree implementation (PMDK ctree_map equivalent).
 *
 * Persistent layout:
 *   root slot (pool root object, 8 B): tagged pointer to the root.
 *   leaf (16 B):      [0] key        [8] value-object address
 *   internal (24 B):  [0] diff bit   [8] child0   [16] child1
 * Internal-node pointers carry tag bit 0 (allocations are 16-byte
 * aligned). The invariant is MSB-first: a node's diff bit is larger
 * than every diff bit below it.
 */

#include <bit>

#include "apps/trees/trees_impl.hh"
#include "sim/log.hh"

namespace tvarak {

namespace {

constexpr Addr kInternalTag = 1;

bool isInternal(Addr p) { return (p & kInternalTag) != 0; }
Addr untag(Addr p) { return p & ~kInternalTag; }

}  // namespace

CTreeMap::CTreeMap(MemorySystem &mem, PmemPool &pool,
                   std::size_t valueBytes)
    : PmemMap(mem, pool, valueBytes)
{
    // The root pointer lives in a dedicated 8 B root object.
    Addr root = pool_.getRoot(0);
    if (root == 0) {
        root = pool_.alloc(0, 8);
        std::uint64_t zero = 0;
        pool_.txBegin(0);
        pool_.txWrite(0, root, &zero, 8);
        pool_.setRoot(0, root);
        pool_.txCommit(0);
    }
    rootSlot_ = root;
}

Addr
CTreeMap::findLeaf(int tid, std::uint64_t key)
{
    Addr node = mem_.read64(tid, rootSlot_);
    if (node == 0)
        return 0;
    while (isInternal(node)) {
        Addr n = untag(node);
        std::uint64_t diff = mem_.read64(tid, n);
        std::size_t side = (key >> diff) & 1;
        node = mem_.read64(tid, n + 8 + 8 * side);
    }
    return node;
}

void
CTreeMap::insert(int tid, std::uint64_t key, const void *value)
{
    pool_.txBegin(tid);
    Addr val = makeValue(tid, value);

    Addr leaf = findLeaf(tid, key);
    if (leaf == 0) {
        Addr nleaf = pool_.alloc(tid, 16);
        pool_.txWrite(tid, nleaf, &key, 8);
        pool_.txWrite(tid, nleaf + 8, &val, 8);
        pool_.txWrite(tid, rootSlot_, &nleaf, 8);
        pool_.txCommit(tid);
        return;
    }

    std::uint64_t leaf_key = mem_.read64(tid, leaf);
    if (leaf_key == key) {
        // Replace: swing the value pointer, free the old value.
        Addr old = mem_.read64(tid, leaf + 8);
        pool_.txWrite(tid, leaf + 8, &val, 8);
        pool_.free(tid, old);
        pool_.txCommit(tid);
        return;
    }

    auto diff = static_cast<std::uint64_t>(
        63 - std::countl_zero(key ^ leaf_key));
    std::size_t side = (key >> diff) & 1;

    Addr nleaf = pool_.alloc(tid, 16);
    pool_.txWrite(tid, nleaf, &key, 8);
    pool_.txWrite(tid, nleaf + 8, &val, 8);

    // Descend to the edge where the new internal node belongs:
    // stop at the first node whose diff bit is below ours.
    Addr slot = rootSlot_;
    Addr node = mem_.read64(tid, slot);
    while (isInternal(node)) {
        Addr n = untag(node);
        std::uint64_t ndiff = mem_.read64(tid, n);
        if (ndiff < diff)
            break;
        slot = n + 8 + 8 * ((key >> ndiff) & 1);
        node = mem_.read64(tid, slot);
    }

    Addr internal = pool_.alloc(tid, 24);
    pool_.txWrite(tid, internal, &diff, 8);
    Addr kids[2];
    kids[side] = nleaf;
    kids[1 - side] = node;
    pool_.txWrite(tid, internal + 8, kids, 16);
    Addr tagged = internal | kInternalTag;
    pool_.txWrite(tid, slot, &tagged, 8);
    pool_.txCommit(tid);
}

bool
CTreeMap::update(int tid, std::uint64_t key, const void *value)
{
    Addr leaf = findLeaf(tid, key);
    if (leaf == 0 || mem_.read64(tid, leaf) != key)
        return false;
    Addr val = mem_.read64(tid, leaf + 8);
    pool_.txBegin(tid);
    pool_.txWrite(tid, val, value, valueBytes_);
    pool_.txCommit(tid);
    return true;
}

Addr
CTreeMap::valueAddr(int tid, std::uint64_t key)
{
    Addr leaf = findLeaf(tid, key);
    if (leaf == 0 || mem_.read64(tid, leaf) != key)
        return 0;
    return mem_.read64(tid, leaf + 8);
}

bool
CTreeMap::erase(int tid, std::uint64_t key)
{
    // Walk with one level of look-behind: the slot holding the leaf
    // and the internal node (plus its slot) above it.
    Addr node = mem_.read64(tid, rootSlot_);
    if (node == 0)
        return false;

    Addr leaf_slot = rootSlot_;
    Addr internal = 0;       //!< internal node above the leaf
    Addr internal_slot = 0;  //!< slot that points at that internal
    std::size_t sibling_side = 0;
    while (isInternal(node)) {
        Addr n = untag(node);
        std::uint64_t diff = mem_.read64(tid, n);
        std::size_t side = (key >> diff) & 1;
        internal = n;
        internal_slot = leaf_slot;
        sibling_side = 1 - side;
        leaf_slot = n + 8 + 8 * side;
        node = mem_.read64(tid, leaf_slot);
    }
    if (mem_.read64(tid, node) != key)
        return false;

    pool_.txBegin(tid);
    Addr value = mem_.read64(tid, node + 8);
    if (internal == 0) {
        // The leaf was the whole tree.
        std::uint64_t zero = 0;
        pool_.txWrite(tid, rootSlot_, &zero, 8);
    } else {
        // The sibling subtree replaces the internal node (crit-bit
        // collapse).
        Addr sibling =
            mem_.read64(tid, internal + 8 + 8 * sibling_side);
        pool_.txWrite(tid, internal_slot, &sibling, 8);
        pool_.free(tid, internal);
    }
    pool_.free(tid, node);
    pool_.free(tid, value);
    pool_.txCommit(tid);
    return true;
}

bool
CTreeMap::get(int tid, std::uint64_t key, void *value)
{
    Addr leaf = findLeaf(tid, key);
    if (leaf == 0 || mem_.read64(tid, leaf) != key)
        return false;
    Addr val = mem_.read64(tid, leaf + 8);
    mem_.read(tid, val, value, valueBytes_);
    return true;
}

}  // namespace tvarak
