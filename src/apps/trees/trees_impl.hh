/**
 * @file
 * Internal declarations of the three persistent map implementations.
 * Applications use makeMap(); this header exists for the factory and
 * for white-box tests.
 */

#pragma once

#include "apps/trees/pmem_map.hh"

namespace tvarak {

/** Crit-bit tree (PMDK ctree_map): internal nodes hold the index of
 *  the most significant differing bit; leaves hold (key, valuePtr). */
class CTreeMap final : public PmemMap
{
  public:
    CTreeMap(MemorySystem &mem, PmemPool &pool, std::size_t valueBytes);
    void insert(int tid, std::uint64_t key, const void *value) override;
    bool update(int tid, std::uint64_t key, const void *value) override;
    bool get(int tid, std::uint64_t key, void *value) override;
    bool erase(int tid, std::uint64_t key) override;
    Addr valueAddr(int tid, std::uint64_t key) override;
    const char *kindName() const override { return "ctree"; }

  private:
    /** Find the leaf a key would reach (0 if the tree is empty). */
    Addr findLeaf(int tid, std::uint64_t key);

    Addr rootSlot_ = 0;  //!< pool address of the root pointer
};

/** Order-8 B-tree (PMDK btree_map) with preemptive splits. */
class BTreeMap final : public PmemMap
{
  public:
    static constexpr std::size_t kOrder = 8;  //!< max items per node

    BTreeMap(MemorySystem &mem, PmemPool &pool, std::size_t valueBytes);
    void insert(int tid, std::uint64_t key, const void *value) override;
    bool update(int tid, std::uint64_t key, const void *value) override;
    bool get(int tid, std::uint64_t key, void *value) override;
    bool erase(int tid, std::uint64_t key) override;
    Addr valueAddr(int tid, std::uint64_t key) override;
    const char *kindName() const override { return "btree"; }

  private:
    struct NodeView;
    Addr allocNode(int tid, bool leaf);
    /** Ensure child @p childIdx of @p parent has > minimum items,
     *  borrowing from a sibling or merging (tx caller-held).
     *  @return the (possibly moved) child to descend into. */
    Addr fixChildForDelete(int tid, Addr parent, std::size_t childIdx);
    /** Delete @p key from the subtree at @p node (non-minimal). */
    bool eraseFrom(int tid, Addr node, std::uint64_t key);
    /** Drop the promoted predecessor's leaf copy without freeing its
     *  (now shared) value object. */
    void eraseDupLeafCopy(int tid, Addr node, std::uint64_t key);
    /** Split full child @p childIdx of @p parent (tx caller-held). */
    void splitChild(int tid, Addr parent, std::size_t childIdx);
    /** Insert into a guaranteed-non-full subtree. */
    void insertNonFull(int tid, Addr node, std::uint64_t key, Addr val);
    /** Find the value slot address for @p key (0 if absent). */
    Addr findValueSlot(int tid, std::uint64_t key);

    Addr rootSlot_ = 0;
};

/** Red-black tree (PMDK rbtree_map) with parent pointers. */
class RBTreeMap final : public PmemMap
{
  public:
    RBTreeMap(MemorySystem &mem, PmemPool &pool, std::size_t valueBytes);
    void insert(int tid, std::uint64_t key, const void *value) override;
    bool update(int tid, std::uint64_t key, const void *value) override;
    bool get(int tid, std::uint64_t key, void *value) override;
    bool erase(int tid, std::uint64_t key) override;
    Addr valueAddr(int tid, std::uint64_t key) override;
    const char *kindName() const override { return "rbtree"; }

    /** Validate red-black invariants (tests); returns black height,
     *  or -1 on violation. */
    int checkInvariants(int tid);

  private:
    Addr findNode(int tid, std::uint64_t key);
    void rotate(int tid, Addr x, bool left);
    void insertFixup(int tid, Addr z);
    /** Replace subtree rooted at @p u with @p v (parents fixed). */
    void transplant(int tid, Addr u, Addr v);
    /** Restore red-black invariants after deleting a black node;
     *  @p x may be NIL(0), in which case @p xParent locates it. */
    void eraseFixup(int tid, Addr x, Addr xParent);

    Addr rootSlot_ = 0;
};

}  // namespace tvarak

