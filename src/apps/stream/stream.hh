/**
 * @file
 * STREAM memory-bandwidth kernels on persistent arrays (paper
 * Section IV-F): Copy, Scale, Add, Triad. Each of 12 threads owns a
 * non-overlapping chunk of the a/b/c arrays; the baseline saturates
 * NVM bandwidth, which is why all redundancy designs show their
 * largest relative overheads here.
 */

#pragma once

#include <memory>

#include "harness/workload.hh"
#include "redundancy/raw_coverage.hh"

namespace tvarak {

class StreamWorkload final : public Workload
{
  public:
    enum class Kernel { Copy, Scale, Add, Triad };

    struct Params {
        Kernel kernel = Kernel::Copy;
        std::size_t chunkBytes = 2ull << 20;  //!< per array per thread
        std::size_t sliceLines = 2048;
    };

    StreamWorkload(MemorySystem &mem, DaxFs &fs, int tid,
                   RedundancyScheme *scheme, Params params);

    void setup() override;
    bool step() override;
    int tid() const override { return tid_; }
    std::string name() const override;

    static const char *kernelName(Kernel k);

  private:
    MemorySystem &mem_;
    DaxFs &fs_;
    int tid_;
    RedundancyScheme *scheme_;
    Params params_;
    Addr a_ = 0, b_ = 0, c_ = 0;
    std::size_t lines_ = 0;
    std::size_t next_ = 0;
    std::unique_ptr<RawCoverage> coverage_;
};

}  // namespace tvarak

