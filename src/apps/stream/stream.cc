#include "apps/stream/stream.hh"

#include <cstring>

#include "sim/log.hh"

namespace tvarak {

namespace {

/** Per-line FLOP-cost model (8 doubles per line): copy moves bytes,
 *  scale multiplies, add adds, triad does a fused multiply-add. The
 *  growing compute cost is why relative overheads shrink from copy to
 *  triad in the paper. */
Cycles
kernelComputeCycles(StreamWorkload::Kernel k)
{
    switch (k) {
      case StreamWorkload::Kernel::Copy:  return 1;
      case StreamWorkload::Kernel::Scale: return 8;
      case StreamWorkload::Kernel::Add:   return 10;
      case StreamWorkload::Kernel::Triad: return 16;
    }
    return 1;
}

}  // namespace

StreamWorkload::StreamWorkload(MemorySystem &mem, DaxFs &fs, int tid,
                               RedundancyScheme *scheme, Params params)
    : mem_(mem), fs_(fs), tid_(tid), scheme_(scheme), params_(params)
{
    panic_if(params_.chunkBytes % kPageBytes != 0,
             "stream chunk must be page aligned");
}

const char *
StreamWorkload::kernelName(Kernel k)
{
    switch (k) {
      case Kernel::Copy:  return "copy";
      case Kernel::Scale: return "scale";
      case Kernel::Add:   return "add";
      case Kernel::Triad: return "triad";
    }
    return "?";
}

std::string
StreamWorkload::name() const
{
    return std::string("stream-") + kernelName(params_.kernel) + "-" +
        std::to_string(tid_);
}

void
StreamWorkload::setup()
{
    std::size_t data = 3 * params_.chunkBytes;
    std::size_t table = RawCoverage::tableBytes(data);
    int fd = fs_.create("stream" + std::to_string(tid_), data + table);
    Addr base = fs_.daxMap(fd);
    a_ = base;
    b_ = base + params_.chunkBytes;
    c_ = base + 2 * params_.chunkBytes;
    lines_ = params_.chunkBytes / kLineBytes;
    coverage_ = std::make_unique<RawCoverage>(mem_, scheme_, base, data,
                                              base + data);

    // Initialize the input arrays with real doubles, informing the
    // interposing library (the TxB schemes must cover every write
    // that goes through them, including initialization).
    double vals[8];
    for (std::size_t l = 0; l < lines_; l++) {
        for (int i = 0; i < 8; i++)
            vals[i] = static_cast<double>(l * 8 + i);
        mem_.write(tid_, a_ + l * kLineBytes, vals, sizeof(vals));
        coverage_->onWrite(tid_, a_ + l * kLineBytes, kLineBytes);
        for (int i = 0; i < 8; i++)
            vals[i] = 2.0 * static_cast<double>(l * 8 + i);
        mem_.write(tid_, b_ + l * kLineBytes, vals, sizeof(vals));
        coverage_->onWrite(tid_, b_ + l * kLineBytes, kLineBytes);
    }
}

bool
StreamWorkload::step()
{
    constexpr double kScalar = 3.0;
    double in1[8], in2[8], out[8];
    std::size_t end = std::min(next_ + params_.sliceLines, lines_);
    Cycles flops = kernelComputeCycles(params_.kernel);

    for (; next_ < end; next_++) {
        Addr off = next_ * kLineBytes;
        switch (params_.kernel) {
          case Kernel::Copy:
            mem_.read(tid_, a_ + off, out, sizeof(out));
            break;
          case Kernel::Scale:
            mem_.read(tid_, a_ + off, in1, sizeof(in1));
            for (int i = 0; i < 8; i++)
                out[i] = kScalar * in1[i];
            break;
          case Kernel::Add:
            mem_.read(tid_, a_ + off, in1, sizeof(in1));
            mem_.read(tid_, b_ + off, in2, sizeof(in2));
            for (int i = 0; i < 8; i++)
                out[i] = in1[i] + in2[i];
            break;
          case Kernel::Triad:
            mem_.read(tid_, a_ + off, in1, sizeof(in1));
            mem_.read(tid_, b_ + off, in2, sizeof(in2));
            for (int i = 0; i < 8; i++)
                out[i] = in2[i] + kScalar * in1[i];
            break;
        }
        mem_.compute(tid_, flops);
        Addr dst = (params_.kernel == Kernel::Scale ? b_ : c_) + off;
        mem_.write(tid_, dst, out, sizeof(out));
        coverage_->onWrite(tid_, dst, kLineBytes);
    }
    return next_ < lines_;
}

}  // namespace tvarak
