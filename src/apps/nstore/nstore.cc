#include "apps/nstore/nstore.hh"

#include <cstring>

#include "sim/log.hh"

namespace tvarak {

namespace {

/** WAL node: txid, tupleId, field, before image, next. */
constexpr std::size_t kWalTxid = 0, kWalTuple = 8, kWalField = 16,
                      kWalBefore = 24;
constexpr std::size_t kWalNext = kWalBefore + NStore::kFieldBytes;
constexpr std::size_t kWalNodeBytes = kWalNext + 8;

}  // namespace

NStore::NStore(MemorySystem &mem, DaxFs &fs, RedundancyScheme *scheme,
               std::size_t tuples, std::size_t walSlots,
               std::size_t clients)
    : mem_(mem), tuples_(tuples), clients_(clients)
{
    panic_if(clients == 0 || clients > 8, "unreasonable client count");
    std::size_t heap = tuples * (kTupleBytes + 64) +
        walSlots * (kWalNodeBytes + 64) + (1u << 20);
    pool_ = std::make_unique<PmemPool>(mem, fs, "nstore", heap, scheme,
                                       clients);
    pool_->setSchemeEnabled(false);  // unmeasured load phase

    // Table: one object per tuple, ids written in place (setup is
    // part of the unmeasured load phase).
    tupleAddrs_.reserve(tuples);
    for (std::size_t i = 0; i < tuples; i++) {
        Addr t = pool_->alloc(static_cast<int>(i % clients),
                              kTupleBytes);
        mem_.write64(static_cast<int>(i % clients), t,
                     static_cast<std::uint64_t>(i));
        tupleAddrs_.push_back(t);
    }

    // WAL arena: pre-allocated nodes handed out in *shuffled* order,
    // reproducing the aged allocator's non-sequential layout.
    std::vector<Addr> all;
    all.reserve(walSlots);
    for (std::size_t i = 0; i < walSlots; i++) {
        all.push_back(pool_->alloc(static_cast<int>(i % clients),
                                   kWalNodeBytes));
    }
    Rng shuffle(0x5eed);
    for (std::size_t i = all.size(); i > 1; i--) {
        std::size_t j = shuffle.nextBounded(i);
        std::swap(all[i - 1], all[j]);
    }
    walSlots_.resize(clients);
    walCursor_.assign(clients, 0);
    for (std::size_t i = 0; i < all.size(); i++)
        walSlots_[i % clients].push_back(all[i]);

    // Persistent per-client WAL heads.
    for (std::size_t c = 0; c < clients; c++)
        walHeadSlot_.push_back(pool_->alloc(static_cast<int>(c), 8));
    pool_->setSchemeEnabled(true);
}

Addr
NStore::tupleAddr(std::uint64_t tupleId) const
{
    panic_if(tupleId >= tuples_, "tuple id out of range");
    return tupleAddrs_[static_cast<std::size_t>(tupleId)];
}

Addr
NStore::nextWalSlot(int tid)
{
    auto c = static_cast<std::size_t>(tid) % clients_;
    auto &slots = walSlots_[c];
    Addr slot = slots[walCursor_[c]];
    // Circular log: steady state reuses (checkpoint-truncated) slots.
    walCursor_[c] = (walCursor_[c] + 1) % slots.size();
    return slot;
}

void
NStore::updateTx(int tid, std::uint64_t tupleId, std::size_t field,
                 const void *value)
{
    panic_if(field >= kFields, "field out of range");
    Addr tuple = tupleAddr(tupleId);
    Addr field_addr = tuple + 8 + field * kFieldBytes;

    pool_->txBegin(tid);
    // WAL first: before-image into a (random-placed) list node.
    Addr node = nextWalSlot(tid);
    std::uint64_t hdr[3] = {nextTxid_++, tupleId,
                            static_cast<std::uint64_t>(field)};
    pool_->txWriteNoUndo(tid, node + kWalTxid, hdr, sizeof(hdr));
    std::uint8_t before[kFieldBytes];
    mem_.read(tid, field_addr, before, kFieldBytes);
    pool_->txWriteNoUndo(tid, node + kWalBefore, before, kFieldBytes);
    auto c = static_cast<std::size_t>(tid) % clients_;
    Addr head = mem_.read64(tid, walHeadSlot_[c]);
    pool_->txWriteNoUndo(tid, node + kWalNext, &head, 8);
    pool_->txWriteNoUndo(tid, walHeadSlot_[c], &node, 8);
    // Then the in-place tuple update.
    pool_->txWriteNoUndo(tid, field_addr, value, kFieldBytes);
    pool_->txCommit(tid);
}

void
NStore::readTx(int tid, std::uint64_t tupleId, std::size_t field,
               void *value)
{
    panic_if(field >= kFields, "field out of range");
    mem_.read(tid, tupleAddr(tupleId) + 8 + field * kFieldBytes, value,
              kFieldBytes);
}

void
NStore::readRecord(int tid, std::uint64_t tupleId, void *record)
{
    mem_.read(tid, tupleAddr(tupleId), record, kTupleBytes);
}

std::size_t
NStore::walChainLength(int tid)
{
    auto c = static_cast<std::size_t>(tid) % clients_;
    std::size_t n = 0;
    Addr node = mem_.read64(tid, walHeadSlot_[c]);
    while (node != 0 && n <= walSlots_[c].size()) {
        n++;
        node = mem_.read64(tid, node + kWalNext);
    }
    return n;
}

//
// YCSB driver
//

NStoreWorkload::NStoreWorkload(MemorySystem &mem,
                               std::shared_ptr<NStore> store, int tid,
                               Params params)
    : mem_(mem),
      store_(std::move(store)),
      tid_(tid),
      params_(params),
      rng_(0xdb + static_cast<std::uint64_t>(tid)),
      keys_(store_->tuples(), params.hotTupleFrac, params.hotOpFrac,
            0x9999 + static_cast<std::uint64_t>(tid))
{}

const char *
NStoreWorkload::mixName(Mix mix)
{
    switch (mix) {
      case Mix::UpdateHeavy: return "update-heavy";
      case Mix::Balanced:    return "balanced";
      case Mix::ReadHeavy:   return "read-heavy";
    }
    return "?";
}

double
NStoreWorkload::updateFraction(Mix mix)
{
    switch (mix) {
      case Mix::UpdateHeavy: return 0.9;
      case Mix::Balanced:    return 0.5;
      case Mix::ReadHeavy:   return 0.1;
    }
    return 0.5;
}

std::string
NStoreWorkload::name() const
{
    return std::string("nstore-") + mixName(params_.mix) + "-" +
        std::to_string(tid_);
}

bool
NStoreWorkload::step()
{
    std::uint8_t field[NStore::kFieldBytes];
    double update_frac = updateFraction(params_.mix);
    std::size_t end =
        std::min(done_ + params_.sliceOps, params_.txPerClient);
    for (; done_ < end; done_++) {
        std::uint64_t tuple = keys_.next();
        if (rng_.nextBool(update_frac)) {
            std::memset(field, static_cast<int>(done_ & 0xff),
                        sizeof(field));
            store_->updateTx(tid_, tuple,
                             rng_.nextBounded(NStore::kFields), field);
        } else {
            store_->readTx(tid_, tuple,
                           rng_.nextBounded(NStore::kFields), field);
        }
    }
    return done_ < params_.txPerClient;
}

}  // namespace tvarak
