/**
 * @file
 * N-Store equivalent: an NVM-optimized relational engine with a
 * linked-list write-ahead log (paper Section IV-D).
 *
 * The paper attributes N-Store's behaviour to one property: "each
 * update transaction allocates and writes to a linked list node.
 * Because the linked list layout is not sequential in NVM", updates
 * produce a random-write pattern that defeats redundancy-cache reuse.
 * We reproduce exactly that: a table of 1 KB YCSB-style tuples (10
 * fields of 100 B), per-client WAL chains whose nodes live in
 * deliberately fragmented (shuffled) slots — the state of an aged
 * allocator — and YCSB drivers with the paper's skew (90% of
 * transactions touch 10% of tuples).
 *
 * N-Store owns its durability via the WAL, so tuple/WAL writes are
 * not undo-logged by the pool (txWriteNoUndo); the transaction
 * boundary still drives the TxB schemes' redundancy work.
 */

#pragma once

#include <memory>
#include <vector>

#include "harness/workload.hh"
#include "pmemlib/pmem_pool.hh"
#include "sim/rng.hh"

namespace tvarak {

class NStore
{
  public:
    static constexpr std::size_t kFields = 10;
    static constexpr std::size_t kFieldBytes = 100;
    /** Tuple: u64 id + 10 fields. */
    static constexpr std::size_t kTupleBytes = 8 + kFields * kFieldBytes;

    NStore(MemorySystem &mem, DaxFs &fs, RedundancyScheme *scheme,
           std::size_t tuples, std::size_t walSlots,
           std::size_t clients);

    /** YCSB update: one field rewritten, WAL node first. */
    void updateTx(int tid, std::uint64_t tupleId, std::size_t field,
                  const void *value);
    /** YCSB read: one field (point query). */
    void readTx(int tid, std::uint64_t tupleId, std::size_t field,
                void *value);
    /** Full-record scan (tests / table scans). */
    void readRecord(int tid, std::uint64_t tupleId, void *record);

    std::size_t tuples() const { return tuples_; }
    PmemPool &pool() { return *pool_; }

    /** Verify a WAL chain's linkage (tests). @return chain length. */
    std::size_t walChainLength(int tid);

  private:
    Addr tupleAddr(std::uint64_t tupleId) const;
    Addr nextWalSlot(int tid);

    MemorySystem &mem_;
    std::unique_ptr<PmemPool> pool_;
    std::size_t tuples_;
    std::size_t clients_;
    std::vector<Addr> tupleAddrs_;
    /** Shuffled WAL slots per client (aged-allocator layout). */
    std::vector<std::vector<Addr>> walSlots_;
    std::vector<std::size_t> walCursor_;
    std::vector<Addr> walHeadSlot_;  //!< persistent head pointers
    std::uint64_t nextTxid_ = 1;
};

/** YCSB driver over a shared NStore (paper: 4 client threads). */
class NStoreWorkload final : public Workload
{
  public:
    enum class Mix { UpdateHeavy, Balanced, ReadHeavy };

    struct Params {
        Mix mix = Mix::Balanced;
        std::size_t txPerClient = 131072;
        double hotTupleFrac = 0.08;
        double hotOpFrac = 0.90;
        std::size_t sliceOps = 512;
    };

    NStoreWorkload(MemorySystem &mem, std::shared_ptr<NStore> store,
                   int tid, Params params);

    void setup() override {}
    bool step() override;
    int tid() const override { return tid_; }
    std::string name() const override;

    static const char *mixName(Mix mix);
    /** Update fraction of a mix (paper: 90/50/10 %). */
    static double updateFraction(Mix mix);

  private:
    MemorySystem &mem_;
    std::shared_ptr<NStore> store_;
    int tid_;
    Params params_;
    Rng rng_;
    HotSetGenerator keys_;
    std::size_t done_ = 0;
};

}  // namespace tvarak

