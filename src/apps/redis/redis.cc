#include "apps/redis/redis.hh"

#include <cstdio>
#include <cstring>

#include "sim/log.hh"

namespace tvarak {

namespace {

/** Root object field offsets. */
constexpr std::size_t kTable0 = 0, kSize0 = 8, kTable1 = 16, kSize1 = 24,
                      kRehashIdx = 32, kUsed = 40;
constexpr std::uint64_t kNoRehash = ~std::uint64_t{0};

/** Entry field offsets. */
constexpr std::size_t kNext = 0, kHash = 8, kKey = 16;

/** Bytes of one bucket slot (u64 entry pointer). */
constexpr std::size_t kSlotBytes = 8;

}  // namespace

RedisStore::RedisStore(MemorySystem &mem, PmemPool &pool,
                       std::size_t valueBytes,
                       std::size_t initialBuckets)
    : mem_(mem), pool_(pool), valueBytes_(valueBytes)
{
    root_ = pool_.getRoot(0);
    if (root_ == 0) {
        root_ = pool_.alloc(0, 48);
        pool_.txBegin(0);
        Addr table = pool_.alloc(0, initialBuckets * kSlotBytes);
        std::uint64_t init[6] = {table, initialBuckets, 0, 0, kNoRehash,
                                 0};
        pool_.txWrite(0, root_, init, sizeof(init));
        // Fresh tables are zero-filled by construction (new pool
        // memory is zero), but write the buckets explicitly the way
        // Redis's calloc-backed dict does.
        std::vector<std::uint64_t> zeros(initialBuckets, 0);
        pool_.txWrite(0, table, zeros.data(), initialBuckets * kSlotBytes);
        pool_.setRoot(0, root_);
        pool_.txCommit(0);
    } else {
        used_ = static_cast<std::size_t>(mem_.read64(0, root_ + kUsed));
    }
}

std::uint64_t
RedisStore::hashKey(int tid, const void *key)
{
    const auto *p = static_cast<const std::uint8_t *>(key);
    std::uint64_t h = 5381;
    for (std::size_t i = 0; i < kKeyBytes; i++)
        h = h * 33 + p[i];
    mem_.compute(tid, kKeyBytes);  // ~1 cycle per byte, dict-style
    return h;
}

bool
RedisStore::rehashing() const
{
    std::uint8_t buf[8];
    mem_.peek(root_ + kRehashIdx, buf, 8);
    std::uint64_t idx;
    std::memcpy(&idx, buf, 8);
    return idx != kNoRehash;
}

void
RedisStore::rehashStep(int tid)
{
    std::uint64_t idx = mem_.read64(tid, root_ + kRehashIdx);
    if (idx == kNoRehash)
        return;
    Addr t0 = mem_.read64(tid, root_ + kTable0);
    std::uint64_t size0 = mem_.read64(tid, root_ + kSize0);
    Addr t1 = mem_.read64(tid, root_ + kTable1);
    std::uint64_t size1 = mem_.read64(tid, root_ + kSize1);

    // Move every entry in bucket `idx` to table 1.
    Addr entry = mem_.read64(tid, t0 + idx * kSlotBytes);
    while (entry != 0) {
        Addr next = mem_.read64(tid, entry + kNext);
        std::uint64_t h = mem_.read64(tid, entry + kHash);
        Addr slot = t1 + (h & (size1 - 1)) * kSlotBytes;
        Addr head = mem_.read64(tid, slot);
        pool_.txWrite(tid, entry + kNext, &head, 8);
        pool_.txWrite(tid, slot, &entry, 8);
        entry = next;
    }
    std::uint64_t zero = 0;
    pool_.txWrite(tid, t0 + idx * kSlotBytes, &zero, 8);

    idx++;
    if (idx >= size0) {
        // Rehash complete: table1 becomes the primary.
        pool_.free(tid, t0);
        std::uint64_t fields[4] = {t1, size1, 0, 0};
        pool_.txWrite(tid, root_ + kTable0, fields, 32);
        idx = kNoRehash;
    }
    pool_.txWrite(tid, root_ + kRehashIdx, &idx, 8);
}

void
RedisStore::maybeStartRehash(int tid)
{
    if (mem_.read64(tid, root_ + kRehashIdx) != kNoRehash)
        return;
    std::uint64_t size0 = mem_.read64(tid, root_ + kSize0);
    if (used_ < size0)  // load factor < 1
        return;
    std::uint64_t size1 = size0 * 2;
    Addr t1 = pool_.alloc(tid, size1 * kSlotBytes);
    // Fresh table: no undo snapshot needed (its old content is
    // garbage), exactly how Redis's calloc'd dict tables behave.
    std::vector<std::uint64_t> zeros(size1, 0);
    pool_.txWriteNoUndo(tid, t1, zeros.data(), size1 * kSlotBytes);
    std::uint64_t fields[2] = {t1, size1};
    pool_.txWrite(tid, root_ + kTable1, fields, 16);
    std::uint64_t zero = 0;
    pool_.txWrite(tid, root_ + kRehashIdx, &zero, 8);
}

Addr
RedisStore::findInTable(int tid, Addr table, std::size_t buckets,
                        std::uint64_t hash, const void *key)
{
    if (table == 0 || buckets == 0)
        return 0;
    Addr entry =
        mem_.read64(tid, table + (hash & (buckets - 1)) * kSlotBytes);
    std::uint8_t kbuf[kKeyBytes];
    while (entry != 0) {
        if (mem_.read64(tid, entry + kHash) == hash) {
            mem_.read(tid, entry + kKey, kbuf, kKeyBytes);
            mem_.compute(tid, 4);  // memcmp
            if (std::memcmp(kbuf, key, kKeyBytes) == 0)
                return entry;
        }
        entry = mem_.read64(tid, entry + kNext);
    }
    return 0;
}

void
RedisStore::set(int tid, const void *key, const void *value)
{
    pool_.txBegin(tid);
    rehashStep(tid);
    std::uint64_t hash = hashKey(tid, key);

    Addr t0 = mem_.read64(tid, root_ + kTable0);
    std::uint64_t size0 = mem_.read64(tid, root_ + kSize0);
    Addr t1 = mem_.read64(tid, root_ + kTable1);
    std::uint64_t size1 = mem_.read64(tid, root_ + kSize1);
    bool rehash = mem_.read64(tid, root_ + kRehashIdx) != kNoRehash;

    Addr entry = findInTable(tid, t0, size0, hash, key);
    if (entry == 0 && rehash)
        entry = findInTable(tid, t1, size1, hash, key);

    if (entry != 0) {
        pool_.txWrite(tid, entry + kKey + kKeyBytes, value, valueBytes_);
        pool_.txCommit(tid);
        return;
    }

    entry = pool_.alloc(tid, kKey + kKeyBytes + valueBytes_);
    // New entries go to the rehash target table, as in Redis.
    Addr table = rehash ? t1 : t0;
    std::uint64_t buckets = rehash ? size1 : size0;
    Addr slot = table + (hash & (buckets - 1)) * kSlotBytes;
    Addr head = mem_.read64(tid, slot);
    std::uint64_t hdr[2] = {head, hash};
    pool_.txWrite(tid, entry, hdr, 16);
    pool_.txWrite(tid, entry + kKey, key, kKeyBytes);
    pool_.txWrite(tid, entry + kKey + kKeyBytes, value, valueBytes_);
    pool_.txWrite(tid, slot, &entry, 8);
    used_++;
    std::uint64_t used64 = used_;
    pool_.txWrite(tid, root_ + kUsed, &used64, 8);
    maybeStartRehash(tid);
    pool_.txCommit(tid);
}

bool
RedisStore::get(int tid, const void *key, void *value)
{
    // Redis wraps gets in transactions too (incremental rehashing may
    // write); the resulting metadata writes are what the software
    // schemes pay for on get-only workloads.
    pool_.txBegin(tid);
    rehashStep(tid);
    std::uint64_t hash = hashKey(tid, key);
    Addr t0 = mem_.read64(tid, root_ + kTable0);
    std::uint64_t size0 = mem_.read64(tid, root_ + kSize0);
    Addr entry = findInTable(tid, t0, size0, hash, key);
    if (entry == 0 &&
        mem_.read64(tid, root_ + kRehashIdx) != kNoRehash) {
        Addr t1 = mem_.read64(tid, root_ + kTable1);
        std::uint64_t size1 = mem_.read64(tid, root_ + kSize1);
        entry = findInTable(tid, t1, size1, hash, key);
    }
    if (entry != 0)
        mem_.read(tid, entry + kKey + kKeyBytes, value, valueBytes_);
    pool_.txCommit(tid);
    return entry != 0;
}

bool
RedisStore::del(int tid, const void *key)
{
    pool_.txBegin(tid);
    rehashStep(tid);
    std::uint64_t hash = hashKey(tid, key);

    // Unlink from whichever table holds the entry.
    Addr tables[2] = {mem_.read64(tid, root_ + kTable0),
                      mem_.read64(tid, root_ + kTable1)};
    std::uint64_t sizes[2] = {mem_.read64(tid, root_ + kSize0),
                              mem_.read64(tid, root_ + kSize1)};
    std::uint8_t kbuf[kKeyBytes];
    for (int t = 0; t < 2; t++) {
        if (tables[t] == 0 || sizes[t] == 0)
            continue;
        Addr slot = tables[t] + (hash & (sizes[t] - 1)) * kSlotBytes;
        Addr entry = mem_.read64(tid, slot);
        while (entry != 0) {
            bool match = false;
            if (mem_.read64(tid, entry + kHash) == hash) {
                mem_.read(tid, entry + kKey, kbuf, kKeyBytes);
                mem_.compute(tid, 4);
                match = std::memcmp(kbuf, key, kKeyBytes) == 0;
            }
            if (match) {
                Addr next = mem_.read64(tid, entry + kNext);
                pool_.txWrite(tid, slot, &next, 8);
                pool_.free(tid, entry);
                used_--;
                std::uint64_t used64 = used_;
                pool_.txWrite(tid, root_ + kUsed, &used64, 8);
                pool_.txCommit(tid);
                return true;
            }
            slot = entry + kNext;
            entry = mem_.read64(tid, slot);
        }
    }
    pool_.txCommit(tid);
    return false;
}

std::int64_t
RedisStore::incr(int tid, const void *key, std::int64_t delta)
{
    panic_if(valueBytes_ < 8, "INCR needs >= 8-byte values");
    pool_.txBegin(tid);
    rehashStep(tid);
    std::uint64_t hash = hashKey(tid, key);
    Addr t0 = mem_.read64(tid, root_ + kTable0);
    std::uint64_t size0 = mem_.read64(tid, root_ + kSize0);
    Addr entry = findInTable(tid, t0, size0, hash, key);
    if (entry == 0 &&
        mem_.read64(tid, root_ + kRehashIdx) != kNoRehash) {
        entry = findInTable(tid, mem_.read64(tid, root_ + kTable1),
                            mem_.read64(tid, root_ + kSize1), hash,
                            key);
    }
    pool_.txCommit(tid);
    if (entry == 0) {
        // Upsert: SET key = delta (its own transaction, as in Redis).
        std::vector<std::uint8_t> value(valueBytes_, 0);
        std::memcpy(value.data(), &delta, 8);
        set(tid, key, value.data());
        return delta;
    }
    pool_.txBegin(tid);
    std::int64_t cur;
    Addr vaddr = entry + kKey + kKeyBytes;
    cur = static_cast<std::int64_t>(mem_.read64(tid, vaddr));
    cur += delta;
    pool_.txWrite(tid, vaddr, &cur, 8);
    pool_.txCommit(tid);
    return cur;
}

//
// Driver
//

RedisWorkload::RedisWorkload(MemorySystem &mem, DaxFs &fs, int tid,
                             RedundancyScheme *scheme, Params params)
    : mem_(mem),
      fs_(fs),
      tid_(tid),
      scheme_(scheme),
      params_(params),
      rng_(0xbeef + static_cast<std::uint64_t>(tid))
{}

RedisWorkload::~RedisWorkload() = default;

const char *
RedisWorkload::modeName(Mode mode)
{
    return mode == Mode::SetOnly ? "set-only" : "get-only";
}

std::string
RedisWorkload::name() const
{
    return std::string("redis-") + modeName(params_.mode) + "-" +
        std::to_string(tid_);
}

void
RedisWorkload::makeKey(std::uint64_t id, char *out) const
{
    // Bound the value so the format provably fits kKeyBytes.
    std::snprintf(out, RedisStore::kKeyBytes, "key:%011llu",
                  static_cast<unsigned long long>(id) % 100000000000ULL);
}

void
RedisWorkload::setup()
{
    pool_ = std::make_unique<PmemPool>(
        mem_, fs_, "redis-" + std::to_string(tid_), params_.poolBytes,
        scheme_, 1);
    store_ =
        std::make_unique<RedisStore>(mem_, *pool_, params_.valueBytes);

    if (params_.mode == Mode::GetOnly) {
        // Populate the keyspace so gets hit (redis-benchmark preload);
        // the unmeasured load phase runs without software redundancy,
        // like restoring from a snapshot.
        pool_->setSchemeEnabled(false);
        char key[RedisStore::kKeyBytes];
        std::vector<std::uint8_t> value(params_.valueBytes, 0x42);
        for (std::uint64_t id = 0; id < params_.keyspace; id++) {
            makeKey(id, key);
            store_->set(tid_, key, value.data());
        }
        pool_->setSchemeEnabled(true);
    }
}

bool
RedisWorkload::step()
{
    char key[RedisStore::kKeyBytes];
    std::vector<std::uint8_t> value(params_.valueBytes, 0);
    std::size_t end = std::min(done_ + params_.sliceOps,
                               params_.requests);
    for (; done_ < end; done_++) {
        std::uint64_t id = rng_.nextBounded(params_.keyspace);
        makeKey(id, key);
        if (params_.mode == Mode::SetOnly) {
            std::memset(value.data(), static_cast<int>(done_ & 0xff),
                        value.size());
            store_->set(tid_, key, value.data());
        } else {
            (void)store_->get(tid_, key, value.data());
        }
    }
    return done_ < params_.requests;
}

}  // namespace tvarak
