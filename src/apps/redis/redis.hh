/**
 * @file
 * Redis-equivalent persistent key-value store (paper Section IV-B).
 *
 * Reproduces the paper-relevant aspects of Redis v3.1 on libpmemobj:
 *
 *  - a chained hashtable as the primary structure;
 *  - *incremental rehashing*: every request moves one bucket from the
 *    old table to the new one while a resize is in flight;
 *  - every request — including GET — runs inside a pmem transaction,
 *    whose lane-state metadata writes are precisely why the software
 *    TxB schemes pay even on read-only workloads (Section IV-B);
 *  - redis-benchmark-style drivers: N independent single-threaded
 *    instances, 16-byte keys drawn uniformly from a keyspace.
 *
 * Persistent layout: root object holds {table0, size0, table1, size1,
 * rehashIdx, used}; tables are arrays of entry pointers; entries are
 * {next, hash, key[16], value[valueBytes]}.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "harness/workload.hh"
#include "pmemlib/pmem_pool.hh"
#include "sim/rng.hh"

namespace tvarak {

class RedisStore
{
  public:
    static constexpr std::size_t kKeyBytes = 16;

    RedisStore(MemorySystem &mem, PmemPool &pool,
               std::size_t valueBytes = 8,
               std::size_t initialBuckets = 64);

    /** SET key -> value (transactional; performs one rehash step). */
    void set(int tid, const void *key, const void *value);
    /** GET key (transactional, as in Redis; one rehash step too). */
    bool get(int tid, const void *key, void *value);
    /** DEL key (transactional). @return found. */
    bool del(int tid, const void *key);
    /** INCR: interpret the first 8 value bytes as an integer counter,
     *  add @p delta (creating the key at @p delta if absent), and
     *  return the new value — Redis's INCR/INCRBY. */
    std::int64_t incr(int tid, const void *key, std::int64_t delta);

    std::size_t used() const { return used_; }
    bool rehashing() const;
    std::size_t valueBytes() const { return valueBytes_; }

  private:
    /** djb2-style hash of a key, with a compute charge. */
    std::uint64_t hashKey(int tid, const void *key);
    /** Move one bucket from table0 to table1 if a rehash is active. */
    void rehashStep(int tid);
    void maybeStartRehash(int tid);
    /** Search one table's chain. @return entry address or 0. */
    Addr findInTable(int tid, Addr table, std::size_t buckets,
                     std::uint64_t hash, const void *key);

    MemorySystem &mem_;
    PmemPool &pool_;
    std::size_t valueBytes_;
    Addr root_;       //!< root object: 6 x u64 fields
    std::size_t used_ = 0;
};

/** redis-benchmark equivalent driver. */
class RedisWorkload final : public Workload
{
  public:
    enum class Mode { SetOnly, GetOnly };

    struct Params {
        Mode mode = Mode::SetOnly;
        std::size_t requests = 65536;  //!< per instance (scaled)
        std::size_t keyspace = 65536;
        std::size_t valueBytes = 8;
        std::size_t sliceOps = 512;
        std::size_t poolBytes = 24ull << 20;
    };

    RedisWorkload(MemorySystem &mem, DaxFs &fs, int tid,
                  RedundancyScheme *scheme, Params params);
    ~RedisWorkload() override;

    void setup() override;
    bool step() override;
    int tid() const override { return tid_; }
    std::string name() const override;

    static const char *modeName(Mode mode);
    RedisStore &store() { return *store_; }

  private:
    void makeKey(std::uint64_t id, char *out) const;

    MemorySystem &mem_;
    DaxFs &fs_;
    int tid_;
    RedundancyScheme *scheme_;
    Params params_;
    Rng rng_;
    std::unique_ptr<PmemPool> pool_;
    std::unique_ptr<RedisStore> store_;
    std::size_t done_ = 0;
};

}  // namespace tvarak

