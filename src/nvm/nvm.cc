#include "nvm/nvm.hh"

#include <algorithm>
#include <climits>
#include <cstdio>
#include <cstring>

#include "checksum/checksum.hh"
#include "kernels/kernels.hh"
#include "sim/log.hh"

namespace tvarak {

NvmDimm::NvmDimm(std::size_t bytes)
    : media_(bytes), ecc_(bytes / kLineBytes, 0)
{
    panic_if(bytes % kPageBytes != 0, "DIMM size must be page aligned");
    // ECC of the all-zero initial media: computed once, replicated.
    std::uint8_t zero_ecc = computeEcc(0);
    std::fill(ecc_.begin(), ecc_.end(), zero_ecc);
}

void
NvmDimm::checkAddr(Addr mediaAddr, std::size_t len) const
{
    panic_if(mediaAddr + len > media_.size(),
             "media access [%llu, +%zu) out of range (%zu)",
             static_cast<unsigned long long>(mediaAddr), len,
             media_.size());
}

std::uint8_t
NvmDimm::computeEcc(Addr lineAddr) const
{
    // A one-byte inline "ECC" stand-in: enough to demonstrate that it
    // verifies data-at-rest but is blind to firmware bugs.
    return static_cast<std::uint8_t>(
        crc32c(media_.data() + lineAddr, kLineBytes));
}

void
NvmDimm::firmwareRead(Addr mediaAddr, void *buf)
{
    panic_if(failed_, "firmware read of a failed DIMM");
    panic_if(lineOffset(mediaAddr) != 0, "unaligned firmware read");
    checkAddr(mediaAddr, kLineBytes);
    Addr src = mediaAddr;
    auto it = readBugs_.empty() ? readBugs_.end()
                                : readBugs_.find(mediaAddr);
    if (it != readBugs_.end()) {
        // Misdirected read: the firmware fetches the wrong line (and
        // its ECC) and returns it as if it were the requested one.
        src = it->second.actual;
        readBugs_.erase(it);
        bugsTriggered_++;
        checkAddr(src, kLineBytes);
    }
    kernels::ops().copyLine(buf, media_.data() + src);
}

void
NvmDimm::firmwareWrite(Addr mediaAddr, const void *buf)
{
    panic_if(failed_, "firmware write of a failed DIMM");
    panic_if(lineOffset(mediaAddr) != 0, "unaligned firmware write");
    checkAddr(mediaAddr, kLineBytes);
    Addr dst = mediaAddr;
    auto it = writeBugs_.empty() ? writeBugs_.end()
                                 : writeBugs_.find(mediaAddr);
    if (it != writeBugs_.end()) {
        Bug bug = it->second;
        writeBugs_.erase(it);
        bugsTriggered_++;
        if (bug.kind == BugKind::LostWrite) {
            // Acked, never applied: neither data nor ECC changes, so
            // the device's ECC remains self-consistent.
            return;
        }
        dst = bug.actual;
        checkAddr(dst, kLineBytes);
    }
    kernels::ops().copyLine(media_.data() + dst, buf);
    // The firmware updates the inline ECC atomically with the data; a
    // misdirected write thus leaves a *consistent* wrong line.
    ecc_[dst / kLineBytes] = computeEcc(dst);
}

void
NvmDimm::rawRead(Addr mediaAddr, void *buf, std::size_t len) const
{
    checkAddr(mediaAddr, len);
    std::memcpy(buf, media_.data() + mediaAddr, len);
}

void
NvmDimm::rawWrite(Addr mediaAddr, const void *buf, std::size_t len)
{
    checkAddr(mediaAddr, len);
    if (failed_)
        return;  // writes to a dead device vanish
    std::memcpy(media_.data() + mediaAddr, buf, len);
    for (Addr a = lineBase(mediaAddr); a < mediaAddr + len;
         a += kLineBytes) {
        ecc_[a / kLineBytes] = computeEcc(a);
    }
}

bool
NvmDimm::eccCheck(Addr mediaAddr) const
{
    Addr line = lineBase(mediaAddr);
    checkAddr(line, kLineBytes);
    return ecc_[line / kLineBytes] == computeEcc(line);
}

void
NvmDimm::injectLostWrite(Addr mediaAddr)
{
    writeBugs_[lineBase(mediaAddr)] = Bug{BugKind::LostWrite, 0};
}

void
NvmDimm::injectMisdirectedWrite(Addr intended, Addr actual)
{
    writeBugs_[lineBase(intended)] =
        Bug{BugKind::MisdirectedWrite, lineBase(actual)};
}

void
NvmDimm::injectMisdirectedRead(Addr intended, Addr actual)
{
    readBugs_[lineBase(intended)] =
        Bug{BugKind::MisdirectedRead, lineBase(actual)};
}

void
NvmDimm::injectBitFlip(Addr mediaAddr, unsigned bit)
{
    checkAddr(mediaAddr, 1);
    media_[mediaAddr] ^= static_cast<std::uint8_t>(1u << (bit % CHAR_BIT));
    // Deliberately no ECC update: this is a media error, which the
    // device ECC exists to catch.
}

void
NvmDimm::clearInjectedBugs()
{
    readBugs_.clear();
    writeBugs_.clear();
}

void
NvmDimm::fail()
{
    failed_ = true;
    // The content is gone. Poison instead of zero so that any path
    // that wrongly consumes a dead line produces loudly wrong bytes
    // (which the system checksums then flag) rather than plausible
    // zeroes.
    std::fill(media_.begin(), media_.end(), kPoisonByte);
    std::fill(ecc_.begin(), ecc_.end(), std::uint8_t{0});
    clearInjectedBugs();
}

void
NvmDimm::replace()
{
    panic_if(!failed_, "replacing a healthy DIMM");
    failed_ = false;
    std::fill(media_.begin(), media_.end(), std::uint8_t{0});
    std::uint8_t zero_ecc = computeEcc(0);
    std::fill(ecc_.begin(), ecc_.end(), zero_ecc);
}

NvmArray::NvmArray(const NvmParams &params, const SimConfig &cfg,
                   Stats &stats)
    : params_(params), stats_(stats)
{
    for (std::size_t i = 0; i < params.dimms; i++)
        dimms_.push_back(std::make_unique<NvmDimm>(params.dimmBytes));
    state_.assign(dimms_.size(), DimmState::Healthy);
    watermark_.assign(dimms_.size(), 0);
    // Page-striping math runs on every raw/firmware access; when the
    // DIMM count is a power of two (the common geometries) the
    // divide/modulo pair folds to shift/mask.
    if ((params.dimms & (params.dimms - 1)) == 0) {
        dimmMask_ = params.dimms - 1;
        while ((std::size_t{1} << dimmShift_) < params.dimms)
            dimmShift_++;
    }
    readCycles_ = cfg.nsToCycles(params.readNs);
    writeCycles_ = cfg.nsToCycles(params.writeNs);
    readBusy_ =
        cfg.nsToCycles(params.readNs * params.occupancyReadFactor);
    writeBusy_ =
        cfg.nsToCycles(params.writeNs * params.occupancyWriteFactor);
}

std::size_t
NvmArray::dimmOf(Addr globalAddr) const
{
    if (dimmMask_ != 0 || dimms_.size() == 1)
        return static_cast<std::size_t>(pageNumber(globalAddr)) &
            dimmMask_;
    return pageNumber(globalAddr) % dimms_.size();
}

Addr
NvmArray::mediaAddrOf(Addr globalAddr) const
{
    if (dimmMask_ != 0 || dimms_.size() == 1) {
        return ((pageNumber(globalAddr) >> dimmShift_) * kPageBytes) +
            pageOffset(globalAddr);
    }
    return (pageNumber(globalAddr) / dimms_.size()) * kPageBytes +
        pageOffset(globalAddr);
}

Addr
NvmArray::globalAddrOf(std::size_t dimm, Addr mediaAddr) const
{
    return (pageNumber(mediaAddr) * dimms_.size() + dimm) * kPageBytes +
        pageOffset(mediaAddr);
}

void
NvmArray::failDimm(std::size_t dimm)
{
    panic_if(dimm >= dimms_.size(), "failDimm: bad DIMM index %zu", dimm);
    panic_if(state_[dimm] == DimmState::Failed,
             "failDimm: DIMM %zu already failed", dimm);
    // Failing a Rebuilding DIMM is the mid-rebuild second fault: the
    // partially restored content is gone again (it already counts as
    // degraded). Whether the array survives is the *code's* business
    // (k-survivability); the array models any number of dead devices
    // and reconstruction simply fails loudly past the code's budget.
    if (state_[dimm] == DimmState::Healthy)
        degradedDimms_++;
    state_[dimm] = DimmState::Failed;
    watermark_[dimm] = 0;
    dimms_[dimm]->fail();
}

void
NvmArray::replaceDimm(std::size_t dimm)
{
    panic_if(dimm >= dimms_.size(), "replaceDimm: bad DIMM index %zu",
             dimm);
    panic_if(state_[dimm] != DimmState::Failed,
             "replaceDimm: DIMM %zu has not failed", dimm);
    state_[dimm] = DimmState::Rebuilding;
    watermark_[dimm] = 0;
    dimms_[dimm]->replace();
}

void
NvmArray::setRebuildWatermark(std::size_t dimm, Addr mediaAddr)
{
    panic_if(state_[dimm] != DimmState::Rebuilding,
             "watermark on a DIMM that is not rebuilding");
    panic_if(mediaAddr < watermark_[dimm], "rebuild watermark moved back");
    watermark_[dimm] = mediaAddr;
}

void
NvmArray::finishRebuild(std::size_t dimm)
{
    panic_if(state_[dimm] != DimmState::Rebuilding,
             "finishRebuild on a DIMM that is not rebuilding");
    state_[dimm] = DimmState::Healthy;
    watermark_[dimm] = 0;
    degradedDimms_--;
}

bool
NvmArray::lineDegradedSlow(Addr globalAddr) const
{
    std::size_t d = dimmOf(globalAddr);
    switch (state_[d]) {
      case DimmState::Healthy:
        return false;
      case DimmState::Failed:
        return true;
      case DimmState::Rebuilding:
        return mediaAddrOf(globalAddr) >= watermark_[d];
    }
    return false;  // unreachable
}

Cycles
NvmArray::access(Addr globalAddr, bool isWrite, void *buf, bool redundancy)
{
    std::size_t d = dimmOf(globalAddr);
    Addr media = mediaAddrOf(globalAddr);
    if (isWrite) {
        panic_if(degradedDimms_ != 0 && writeBlocked(globalAddr),
                 "firmware write to failed DIMM %zu (caller must drop "
                 "blocked writes)", d);
        dimms_[d]->firmwareWrite(media, buf);
        stats_.nvmEnergy += params_.writeEnergy;
        stats_.dimmBusyCycles[d] += writeBusy_;
        if (redundancy)
            stats_.nvmRedundancyWrites++;
        else
            stats_.nvmDataWrites++;
        return writeCycles_;
    }
    panic_if(degradedDimms_ != 0 && lineDegraded(globalAddr),
             "firmware read of degraded line on DIMM %zu (caller must "
             "reconstruct)", d);
    dimms_[d]->firmwareRead(media, buf);
    stats_.nvmEnergy += params_.readEnergy;
    stats_.dimmBusyCycles[d] += readBusy_;
    if (redundancy)
        stats_.nvmRedundancyReads++;
    else
        stats_.nvmDataReads++;
    return readCycles_;
}

Cycles
NvmArray::charge(Addr globalAddr, bool isWrite, bool redundancy)
{
    std::size_t d = dimmOf(globalAddr);
    if (isWrite) {
        stats_.nvmEnergy += params_.writeEnergy;
        stats_.dimmBusyCycles[d] += writeBusy_;
        if (redundancy)
            stats_.nvmRedundancyWrites++;
        else
            stats_.nvmDataWrites++;
        return writeCycles_;
    }
    stats_.nvmEnergy += params_.readEnergy;
    stats_.dimmBusyCycles[d] += readBusy_;
    if (redundancy)
        stats_.nvmRedundancyReads++;
    else
        stats_.nvmDataReads++;
    return readCycles_;
}

void
NvmArray::rawRead(Addr globalAddr, void *buf, std::size_t len) const
{
    // Fast path: nearly every call is one line (or less) inside a
    // single page — one DIMM, one chunk, no straddle loop.
    if (len <= kPageBytes - pageOffset(globalAddr)) {
        dimms_[dimmOf(globalAddr)]->rawRead(mediaAddrOf(globalAddr),
                                            buf, len);
        return;
    }
    auto *out = static_cast<std::uint8_t *>(buf);
    while (len > 0) {
        std::size_t in_page = kPageBytes - pageOffset(globalAddr);
        std::size_t chunk = std::min(len, in_page);
        dimms_[dimmOf(globalAddr)]->rawRead(mediaAddrOf(globalAddr), out,
                                            chunk);
        globalAddr += chunk;
        out += chunk;
        len -= chunk;
    }
}

bool
NvmArray::saveImage(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");  // lint:allow(R7)
    if (f == nullptr)
        return false;
    std::uint64_t hdr[2] = {dimms_.size(), params_.dimmBytes};
    bool ok = std::fwrite(hdr, sizeof(hdr), 1, f) == 1;
    std::vector<std::uint8_t> buf(params_.dimmBytes);
    for (std::size_t d = 0; ok && d < dimms_.size(); d++) {
        dimms_[d]->rawRead(0, buf.data(), buf.size());
        ok = std::fwrite(buf.data(), buf.size(), 1, f) == 1;
    }
    return std::fclose(f) == 0 && ok;
}

bool
NvmArray::loadImage(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");  // lint:allow(R7)
    if (f == nullptr)
        return false;
    std::uint64_t hdr[2];
    bool ok = std::fread(hdr, sizeof(hdr), 1, f) == 1 &&
        hdr[0] == dimms_.size() && hdr[1] == params_.dimmBytes;
    std::vector<std::uint8_t> buf(params_.dimmBytes);
    for (std::size_t d = 0; ok && d < dimms_.size(); d++) {
        ok = std::fread(buf.data(), buf.size(), 1, f) == 1;
        if (ok)
            dimms_[d]->rawWrite(0, buf.data(), buf.size());
    }
    std::fclose(f);
    return ok;
}

void
NvmArray::rawWrite(Addr globalAddr, const void *buf, std::size_t len)
{
    if (len <= kPageBytes - pageOffset(globalAddr)) {
        dimms_[dimmOf(globalAddr)]->rawWrite(mediaAddrOf(globalAddr),
                                             buf, len);
        return;
    }
    const auto *in = static_cast<const std::uint8_t *>(buf);
    while (len > 0) {
        std::size_t in_page = kPageBytes - pageOffset(globalAddr);
        std::size_t chunk = std::min(len, in_page);
        dimms_[dimmOf(globalAddr)]->rawWrite(mediaAddrOf(globalAddr), in,
                                             chunk);
        globalAddr += chunk;
        in += chunk;
        len -= chunk;
    }
}

}  // namespace tvarak
