/**
 * @file
 * NVM DIMMs with a firmware model.
 *
 * Each NvmDimm holds a real byte array (the media), a per-line
 * device-level ECC that the firmware reads/writes *as an atom with the
 * data* (Section II-A of the paper), and a single-shot firmware bug
 * injection mechanism covering the paper's fault model:
 *
 *  - lost write:        the firmware acks a write without updating the
 *                       media (data AND ECC keep their old, mutually
 *                       consistent values);
 *  - misdirected write: the data (with freshly computed ECC) lands at
 *                       the wrong media line, corrupting it;
 *  - misdirected read:  the data and ECC of the wrong media line are
 *                       returned.
 *
 * In all three cases the ECC verifies clean, which is exactly why
 * system-checksums above the firmware are needed. Random bit flips
 * (which ECC *does* catch) can also be injected for contrast.
 *
 * NvmArray bundles the DIMMs with the Table III timing/energy model and
 * the per-DIMM bandwidth-occupancy accounting.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/config.hh"
#include "sim/hostmem.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tvarak {

/** One NVM DIMM: media array + firmware with injectable bugs. */
class NvmDimm
{
  public:
    explicit NvmDimm(std::size_t bytes);

    /** @name Firmware path (used by the memory system). Line granular.
     *  Addresses are media-local and line aligned. */
    /**@{*/
    void firmwareRead(Addr mediaAddr, void *buf);
    void firmwareWrite(Addr mediaAddr, const void *buf);
    /**@}*/

    /** @name Raw media access (recovery, scrubbing, tests).
     *  Bypasses the firmware, so injected bugs do not trigger. */
    /**@{*/
    void rawRead(Addr mediaAddr, void *buf, std::size_t len) const;
    void rawWrite(Addr mediaAddr, const void *buf, std::size_t len);

    /** Host-side prefetch for a coming rawRead/firmwareRead of
     *  @p mediaAddr: the media arrays are far larger than the host
     *  caches, so the hot paths start the miss early. Functionally a
     *  no-op.
     *
     *  Implemented as a real (discarded) load, not __builtin_prefetch:
     *  x86 drops software prefetches whose address misses the TLB, and
     *  with the media far bigger than the 4K-page TLB reach that is
     *  the common case here. A demand load walks the page table and
     *  warms both the TLB and the cache; its result is unused, so
     *  out-of-order execution hides the miss behind the caller's
     *  remaining work. */
    void prefetch(Addr mediaAddr) const
    {
        // Both host lines a (possibly unaligned) 64B span can touch.
        if (mediaAddr + kLineBytes <= media_.size()) {
            const std::uint8_t *p = media_.data() + mediaAddr;
            std::uint8_t a = p[0];
            std::uint8_t b = p[kLineBytes - 1];
            asm volatile("" : : "r"(a), "r"(b));
        }
    }
    /**@}*/

    /**
     * Device-level ECC check of one media line.
     * @return true iff the stored ECC matches the stored data. Firmware
     * bugs never make this fail; injected bit flips do.
     */
    bool eccCheck(Addr mediaAddr) const;

    /** @name Single-shot firmware bug injection */
    /**@{*/
    /** The next firmwareWrite to @p mediaAddr is acked but dropped. */
    void injectLostWrite(Addr mediaAddr);
    /** The next firmwareWrite to @p intended lands at @p actual. */
    void injectMisdirectedWrite(Addr intended, Addr actual);
    /** The next firmwareRead of @p intended returns @p actual's line. */
    void injectMisdirectedRead(Addr intended, Addr actual);
    /** Flip one media bit *without* updating ECC (a media error). */
    void injectBitFlip(Addr mediaAddr, unsigned bit);
    /** Drop all injected-but-untriggered bugs. */
    void clearInjectedBugs();
    /**@}*/

    /** @name Whole-device failure lifecycle
     *  fail() models the DIMM dying: the media content is gone (filled
     *  with a poison byte so that any read which should have been
     *  reconstructed instead returns loud garbage), pending injected
     *  bugs are dropped, and firmware accesses panic — the memory
     *  system must route around a failed device. Raw reads still
     *  return the poison (downstream checksum checks turn it into a
     *  *detected* loss); raw writes are silently discarded. replace()
     *  installs a fresh, zeroed device in the slot. */
    /**@{*/
    void fail();
    void replace();
    bool failed() const { return failed_; }
    /** The byte a failed device's media reads as. */
    static constexpr std::uint8_t kPoisonByte = 0xDB;
    /**@}*/

    std::size_t bytes() const { return media_.size(); }
    /** Number of firmware bugs that have fired so far. */
    std::uint64_t bugsTriggered() const { return bugsTriggered_; }

  private:
    enum class BugKind { LostWrite, MisdirectedWrite, MisdirectedRead };
    struct Bug {
        BugKind kind;
        Addr actual;  //!< redirect target for misdirected bugs
    };

    void checkAddr(Addr mediaAddr, std::size_t len) const;
    std::uint8_t computeEcc(Addr lineAddr) const;

    HostBuffer media_;  //!< huge-page backed: hot random line reads
    std::vector<std::uint8_t> ecc_;  //!< one byte per line, inline model
    std::unordered_map<Addr, Bug> writeBugs_;
    std::unordered_map<Addr, Bug> readBugs_;
    std::uint64_t bugsTriggered_ = 0;
    bool failed_ = false;
};

/** The set of NVM DIMMs plus timing/energy/bandwidth accounting. */
class NvmArray
{
  public:
    NvmArray(const NvmParams &params, const SimConfig &cfg, Stats &stats);

    /**
     * Perform one line-granular access through the firmware.
     *
     * @param globalAddr  NVM-global physical address (line aligned).
     * @param isWrite     direction.
     * @param buf         destination (read) or source (write).
     * @param redundancy  true if this access carries checksum/parity
     *                    traffic (for the Fig 8 NVM-access split).
     * @return device latency in core cycles (for demand-path charging).
     */
    Cycles access(Addr globalAddr, bool isWrite, void *buf,
                  bool redundancy);

    /**
     * Account for one line access (energy, occupancy, counters)
     * without moving data — used when the functional bytes are
     * transferred separately via rawRead/rawWrite but the access is
     * architecturally real (e.g. whole-page reads in the naive
     * page-checksum mode).
     */
    Cycles charge(Addr globalAddr, bool isWrite, bool redundancy);

    /** Map an NVM-global address to its DIMM index (page striping). */
    std::size_t dimmOf(Addr globalAddr) const;
    /** Map an NVM-global address to its media-local address. */
    Addr mediaAddrOf(Addr globalAddr) const;
    /** Inverse mapping: NVM-global address of (@p dimm, @p mediaAddr). */
    Addr globalAddrOf(std::size_t dimm, Addr mediaAddr) const;

    /** @name Whole-DIMM failure & rebuild state
     *  The array tracks one lifecycle per DIMM:
     *  Healthy -> (failDimm) Failed -> (replaceDimm) Rebuilding ->
     *  (finishRebuild) Healthy. While Rebuilding, a watermark over the
     *  device's media addresses separates restored content (below)
     *  from not-yet-rebuilt content (above): reads of the latter must
     *  still be reconstructed from parity. Any number of simultaneous
     *  device faults is modelled — including failing a DIMM that is
     *  mid-rebuild (its partial content is lost and the watermark
     *  resets); whether the loss is recoverable is decided by the
     *  active redundancy code (k-of-n survivability), not here. */
    /**@{*/
    enum class DimmState { Healthy, Failed, Rebuilding };
    /** Take a DIMM offline; its media content is lost. Failing a
     *  Rebuilding DIMM discards the partial rebuild. */
    void failDimm(std::size_t dimm);
    /** Swap in a fresh zeroed device; rebuild starts at watermark 0. */
    void replaceDimm(std::size_t dimm);
    /** Advance the rebuild watermark (line-aligned media address). */
    void setRebuildWatermark(std::size_t dimm, Addr mediaAddr);
    /** Rebuild complete: the DIMM is Healthy again. */
    void finishRebuild(std::size_t dimm);
    DimmState dimmState(std::size_t dimm) const { return state_[dimm]; }
    Addr rebuildWatermark(std::size_t dimm) const
    {
        return watermark_[dimm];
    }
    /** Fast path check: is any DIMM not Healthy? */
    bool anyDegraded() const { return degradedDimms_ != 0; }
    /** Number of DIMMs not in the Healthy state. */
    std::size_t degradedCount() const { return degradedDimms_; }
    /** Number of DIMMs in the Failed state (no replacement yet). */
    std::size_t failedCount() const
    {
        std::size_t n = 0;
        for (DimmState s : state_)
            n += s == DimmState::Failed ? 1 : 0;
        return n;
    }
    /**
     * Read-side degradation: true iff a firmware read of this line
     * cannot return its content (device Failed, or Rebuilding and the
     * line is above the watermark) and it must be reconstructed.
     */
    bool lineDegraded(Addr globalAddr) const
    {
        if (degradedDimms_ == 0)
            return false;
        return lineDegradedSlow(globalAddr);
    }
    /** Write-side: true iff a write to this line must be dropped
     *  (device Failed; a Rebuilding device accepts writes). */
    bool writeBlocked(Addr globalAddr) const
    {
        return degradedDimms_ != 0 &&
            state_[dimmOf(globalAddr)] == DimmState::Failed;
    }
    /**@}*/

    NvmDimm &dimm(std::size_t i) { return *dimms_[i]; }
    const NvmDimm &dimm(std::size_t i) const { return *dimms_[i]; }
    std::size_t numDimms() const { return dimms_.size(); }
    std::size_t totalBytes() const { return params_.dimmBytes * dimms_.size(); }

    /** Raw (bug-free, untimed) helpers addressed globally. */
    void rawRead(Addr globalAddr, void *buf, std::size_t len) const;
    void rawWrite(Addr globalAddr, const void *buf, std::size_t len);
    /** Host-side prefetch hint for the media backing @p globalAddr —
     *  purely a simulator-speed aid, no simulated timing or data
     *  effect. Issue it a little before the matching rawRead. */
    void prefetchRaw(Addr globalAddr) const
    {
        dimms_[dimmOf(globalAddr)]->prefetch(mediaAddrOf(globalAddr));
    }

    /** @name Image checkpointing
     *  Persist/restore the at-rest media (simulating NVM durability
     *  across simulator restarts). Only flushed state survives —
     *  exactly the semantics of real NVM across a power cycle. */
    /**@{*/
    /** Write all DIMM media to @p path. @return success. */
    bool saveImage(const std::string &path) const;
    /** Load DIMM media from @p path (geometry must match). */
    bool loadImage(const std::string &path);
    /**@}*/

    Cycles readLatency() const { return readCycles_; }
    Cycles writeLatency() const { return writeCycles_; }

  private:
    bool lineDegradedSlow(Addr globalAddr) const;

    NvmParams params_;
    Stats &stats_;
    std::vector<std::unique_ptr<NvmDimm>> dimms_;
    std::vector<DimmState> state_;
    std::vector<Addr> watermark_;
    /** Striping fast path when the DIMM count is a power of two:
     *  dimm = pageNumber & dimmMask_, media page = pageNumber >>
     *  dimmShift_. dimmMask_ 0 with >1 DIMMs = general divide path. */
    std::size_t dimmMask_ = 0;
    unsigned dimmShift_ = 0;
    std::size_t degradedDimms_ = 0;  //!< DIMMs not in Healthy state
    Cycles readCycles_;
    Cycles writeCycles_;
    Cycles readBusy_;
    Cycles writeBusy_;
};

}  // namespace tvarak

