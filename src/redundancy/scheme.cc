#include "redundancy/scheme.hh"

#include <algorithm>
#include <array>
#include <unordered_set>

#include "checksum/checksum.hh"
#include "checksum/gf256.hh"
#include "kernels/kernels.hh"
#include "sim/log.hh"

namespace tvarak {

void
RedundancyScheme::recomputeParityLine(int tid, Addr vline)
{
    Addr paddr;
    bool is_nvm;
    panic_if(!mem_.translate(vline, paddr, is_nvm) || !is_nvm,
             "parity recompute on a non-NVM address");
    Addr g = paddr - kNvmPhysBase;
    const Layout &layout = mem_.layout();

    // parity = code over the stripe's data lines at this page offset;
    // updating in place forfeits diff-based updates (paper Section IV),
    // so the siblings must be read.
    std::vector<Addr> pages;
    layout.stripeDataPages(g, pages);
    std::size_t offset = lineInPage(g) * kLineBytes;
    if (layout.parityCount() == 1) {
        std::uint8_t acc[kLineBytes];
        mem_.read(tid, lineBase(vline), acc, kLineBytes);
        for (Addr page : pages) {
            if (page == pageBase(g))
                continue;
            std::uint8_t sib[kLineBytes];
            mem_.read(tid, nvmDirectVaddr(page + offset), sib,
                      kLineBytes);
            xorLine(acc, sib);
        }
        mem_.write(tid, nvmDirectVaddr(layout.parityLineOf(g)), acc,
                   kLineBytes);
        return;
    }
    // Reed-Solomon geometries: a fused kernel sequence per data member
    // feeds every parity role its coefficient-weighted contribution in
    // one pass over the sibling line. The codec itself is the memory
    // system's cached one — never rebuilt per line.
    const RsCode &rs = mem_.rsCodec();
    std::vector<std::array<std::uint8_t, kLineBytes>> par(
        layout.parityCount());
    for (auto &p : par)
        p.fill(0);
    for (std::size_t i = 0; i < pages.size(); i++) {
        std::uint8_t sib[kLineBytes];
        if (pages[i] == pageBase(g))
            mem_.read(tid, lineBase(vline), sib, kLineBytes);
        else
            mem_.read(tid, nvmDirectVaddr(pages[i] + offset), sib,
                      kLineBytes);
        for (std::size_t j0 = 0; j0 < layout.parityCount();
             j0 += kernels::kSeqMaxRoles) {
            std::size_t jn = std::min(
                layout.parityCount(), j0 + kernels::kSeqMaxRoles);
            kernels::KernelSequence seq;
            seq.source(sib);
            for (std::size_t j = j0; j < jn; j++)
                seq.parityGfMac(par[j].data(), rs.coeff(j, i));
            seq.run();
        }
    }
    for (std::size_t j = 0; j < layout.parityCount(); j++) {
        mem_.write(tid, nvmDirectVaddr(layout.parityLineOf(g, j)),
                   par[j].data(), kLineBytes);
    }
}

namespace {

/** Unique dirty lines across the commit's ranges. */
std::vector<Addr>
dirtyLines(const std::vector<DirtyRange> &dirty, bool appDataOnly)
{
    std::unordered_set<Addr> seen;
    std::vector<Addr> lines;
    for (const DirtyRange &r : dirty) {
        if (appDataOnly && !r.appData)
            continue;
        for (Addr a = lineBase(r.vaddr); a < r.vaddr + r.len;
             a += kLineBytes) {
            if (seen.insert(a).second)
                lines.push_back(a);
        }
    }
    return lines;
}

}  // namespace

void
TxBObjectCsums::onCommit(int tid, const std::vector<DirtyRange> &dirty)
{
    // Patch each touched object's checksum *incrementally*, as
    // Pangolin does: the timed cost covers only the modified range
    // (read through the caches — typically hits — plus compute over
    // old+new bytes), never the whole object. The stored value is the
    // full-object CRC (the incremental CRC patch is numerically exact
    // in hardware; we recompute it functionally via an untimed peek).
    // Checksum slots are data-region writes, so their lines join the
    // parity recomputation set.
    std::unordered_set<Addr> csummed;
    std::unordered_set<Addr> extra_lines;
    std::vector<std::uint8_t> buf;
    for (const DirtyRange &r : dirty) {
        if (r.csumVaddr == 0)
            continue;
        // Timed incremental cost, per range.
        buf.resize(r.len);
        mem_.read(tid, r.vaddr, buf.data(), r.len);
        mem_.computeChecksum(tid, 2 * r.len);  // old + new bytes
        if (!csummed.insert(r.csumVaddr).second)
            continue;
        // Functional value: exact CRC of the current object bytes.
        Addr base = r.objBase != 0 ? r.objBase : r.vaddr;
        std::size_t len = r.objBase != 0 ? r.objLen : r.len;
        buf.resize(len);
        mem_.peek(base, buf.data(), len);
        std::uint64_t csum = kObjectCsumTag | crc32c(buf.data(), len);
        mem_.write64(tid, r.csumVaddr, csum);
        extra_lines.insert(lineBase(r.csumVaddr));
    }
    std::vector<Addr> lines = dirtyLines(dirty, false);
    for (Addr line : lines)
        extra_lines.erase(line);
    for (Addr line : lines)
        recomputeParityLine(tid, line);
    // The checksum-slot lines were deduplicated through a hash set;
    // recompute them in address order, not in the set's
    // implementation-defined iteration order (tvarak-lint R10).
    std::vector<Addr> extra(extra_lines.begin(), extra_lines.end());
    std::sort(extra.begin(), extra.end());
    for (Addr line : extra)
        recomputeParityLine(tid, line);
}

void
TxBPageCsums::onCommit(int tid, const std::vector<DirtyRange> &dirty)
{
    // Page-granular checksums: re-read each dirty page in full,
    // including the transaction runtime's metadata writes — that
    // coverage is exactly why even read-only Redis transactions cost
    // TxB-Page-Csums a whole-page re-read (paper Section IV-B).
    // Insert-guard only (never iterated, so hash order is immaterial
    // — and tvarak-lint R10 tracks container names file-wide, so the
    // name must not collide with the iterated vector above).
    std::unordered_set<Addr> seenPages;
    std::uint8_t page_buf[kPageBytes];
    for (const DirtyRange &r : dirty) {
        for (Addr p = pageBase(r.vaddr); p < r.vaddr + r.len;
             p += kPageBytes) {
            if (!seenPages.insert(p).second)
                continue;
            mem_.read(tid, p, page_buf, kPageBytes);
            mem_.computeChecksum(tid, kPageBytes);
            std::uint64_t csum = pageChecksum(page_buf);
            Addr paddr;
            bool is_nvm;
            panic_if(!mem_.translate(p, paddr, is_nvm) || !is_nvm,
                     "page checksum on a non-NVM address");
            mem_.write64(
                tid,
                nvmDirectVaddr(
                    mem_.layout().pageCsumAddr(paddr - kNvmPhysBase)),
                csum);
        }
    }
    for (Addr line : dirtyLines(dirty, false))
        recomputeParityLine(tid, line);
}

// makeScheme(DesignKind, MemorySystem&) is implemented by the design
// registry (src/redundancy/registry.cc): the Design object vends its
// scheme.

}  // namespace tvarak
