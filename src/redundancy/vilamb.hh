/**
 * @file
 * Vilamb-style asynchronous software redundancy (paper Table I, row 4;
 * Kateja et al., "Vilamb: Low Overhead Asynchronous Redundancy for
 * Direct Access NVM").
 *
 * Instead of updating page checksums and parity at every transaction
 * boundary, Vilamb tracks dirty pages (volatile DRAM state) and
 * processes them in batches every `epochCommits` transactions. Dirty
 * pages touched many times per epoch are covered once, amortizing the
 * page-granular work — the overhead is *configurable* via the epoch —
 * at the price of a window of vulnerability: between batches, data
 * whose redundancy is stale can be corrupted silently.
 *
 * drain() closes an epoch early (the equivalent of Vilamb's daemon
 * catching up); the invariant tests demonstrate both the window (scrub
 * fails mid-epoch) and its closure (scrub clean after drain).
 */

#pragma once

#include <unordered_set>

#include "redundancy/scheme.hh"

namespace tvarak {

class VilambAsyncCsums final : public RedundancyScheme
{
  public:
    /**
     * @param epochCommits  commits per batch; 1 degenerates to
     *                      synchronous TxB-page behaviour, larger
     *                      epochs trade coverage for performance.
     */
    VilambAsyncCsums(MemorySystem &mem, std::size_t epochCommits)
        : RedundancyScheme(mem), epochCommits_(epochCommits)
    {}

    void onCommit(int tid, const std::vector<DirtyRange> &dirty) override;
    void drain(int tid) override;
    const char *name() const override { return "Vilamb-Async"; }

    /** Pages currently awaiting redundancy (the vulnerability set). */
    std::size_t pendingPages() const { return dirtyPages_.size(); }

  private:
    void processBatch(int tid);

    std::size_t epochCommits_;
    std::size_t commitsSinceBatch_ = 0;
    /** Volatile dirty sets (Vilamb keeps these in DRAM): pages for
     *  checksum recomputation, lines for parity recomputation. */
    std::unordered_set<Addr> dirtyPages_;
    std::unordered_set<Addr> dirtyLines_;
};

}  // namespace tvarak

