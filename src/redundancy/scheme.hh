/**
 * @file
 * Software redundancy schemes (the paper's comparison points).
 *
 * The TxB ("transaction boundary") schemes hook PmemPool::txCommit and
 * perform their checksum/parity maintenance as ordinary timed loads,
 * stores and compute through the cache hierarchy — that is the whole
 * point of the comparison: the same logical work TVARAK does in
 * hardware at the LLC/NVM boundary costs core cycles and cache
 * traffic when done in software.
 *
 *  - TxBObjectCsums (Pangolin-like): object-granular checksums stored
 *    in the object header. No whole-page reads, but higher space
 *    overhead, and (per the paper's variant) no data copying between
 *    NVM and DRAM and no read verification.
 *  - TxBPageCsums (Mojim/HotPot + checksums): page-granular
 *    checksums; every commit re-reads the whole page per dirty page.
 *
 * Both update parity by *recomputation* over the stripe (they update
 * data in place, so no before-image diff is available), reading the
 * sibling lines and writing the parity line.
 */

#pragma once

#include <memory>
#include <vector>

#include "mem/memory_system.hh"
#include "sim/types.hh"

namespace tvarak {

/** A dirty byte range recorded by the transaction runtime. */
struct DirtyRange {
    Addr vaddr = 0;          //!< start of the modified bytes
    std::size_t len = 0;
    Addr objBase = 0;        //!< owning object payload base (0 = none)
    std::size_t objLen = 0;  //!< owning object payload length
    /** Where the object-granular checksum lives (0 = uncovered). */
    Addr csumVaddr = 0;
    /** True for application data ranges (the writes the application
     *  explicitly informs the library about); false for the library's
     *  own log/lane metadata. TxB-Page-Csums covers only the former,
     *  per the Mojim/HotPot model; Pangolin-style TxB-Object-Csums
     *  checksums its metadata too. */
    bool appData = true;
};

class RedundancyScheme
{
  public:
    virtual ~RedundancyScheme() = default;

    /** Maintain redundancy for the transaction's dirty ranges. */
    virtual void onCommit(int tid, const std::vector<DirtyRange> &dirty) = 0;

    /** Flush any deferred redundancy work (asynchronous schemes). */
    virtual void drain(int tid) { (void)tid; }

    virtual const char *name() const = 0;

  protected:
    explicit RedundancyScheme(MemorySystem &mem) : mem_(mem) {}

    /**
     * Recompute and write the parity line covering the data line that
     * backs @p vline: reads the stripe's sibling lines and the dirty
     * line itself through the caches, XORs, writes the parity line.
     */
    void recomputeParityLine(int tid, Addr vline);

    MemorySystem &mem_;
};

/** Pangolin-like object-granular checksums. */
class TxBObjectCsums final : public RedundancyScheme
{
  public:
    explicit TxBObjectCsums(MemorySystem &mem) : RedundancyScheme(mem) {}
    void onCommit(int tid, const std::vector<DirtyRange> &dirty) override;
    const char *name() const override { return "TxB-Object-Csums"; }
};

/** Mojim/HotPot-like page-granular checksums. */
class TxBPageCsums final : public RedundancyScheme
{
  public:
    explicit TxBPageCsums(MemorySystem &mem) : RedundancyScheme(mem) {}
    void onCommit(int tid, const std::vector<DirtyRange> &dirty) override;
    const char *name() const override { return "TxB-Page-Csums"; }
};

/** Scheme for @p design, or nullptr (Baseline and Tvarak need none).
 *  Convenience shim over the design registry: equivalent to
 *  `designOf(design).makeScheme(mem)` (redundancy/registry.hh). */
std::unique_ptr<RedundancyScheme> makeScheme(DesignKind design,
                                             MemorySystem &mem);

}  // namespace tvarak

