/**
 * @file
 * RebuildEngine: online reconstruction of a replaced NVM DIMM.
 *
 * After MemorySystem::replaceDimm() installs a fresh (zeroed) device,
 * the rebuild engine sweeps its media in address order and rewrites
 * every line to the content it must hold, while the workload keeps
 * running against the array:
 *
 *  - data-region lines are reconstructed from cross-DIMM parity +
 *    surviving stripe members (MemorySystem::reconstructLine, which
 *    picks the right redundancy world per line);
 *  - parity lines are recomputed from their stripe's data members;
 *  - checksum metadata is *not* parity protected and is recomputed
 *    from the (degraded-aware) data it covers: DAX-CL-checksum slots
 *    of registered pages get the line checksum, page-checksum slots of
 *    allocated unmapped pages get the page checksum, everything else
 *    returns to its canonical zero.
 *
 * Progress is published through NvmArray::setRebuildWatermark: lines
 * below the watermark are fully redundant again (reads hit the media,
 * writes land), lines above it still take the degraded path. step()
 * rebuilds a bounded number of lines so callers can interleave
 * foreground work, which is exactly how the fault campaign exercises
 * the degraded/rebuilding window.
 */

#pragma once

#include <cstddef>
#include <cstdint>

#include "fs/dax_fs.hh"
#include "mem/memory_system.hh"
#include "sim/types.hh"

namespace tvarak {

class RebuildEngine
{
  public:
    /**
     * @param fs  used to tell never-written page-checksum slots from
     *            live ones; may be null, in which case every slot of a
     *            non-registered data page is recomputed (safe, but not
     *            bit-exact for never-allocated pages).
     * @pre exactly one DIMM is in the Rebuilding state.
     */
    explicit RebuildEngine(MemorySystem &mem, DaxFs *fs = nullptr);

    /** Rebuild up to @p lineBudget media lines.
     *  @return lines actually rebuilt (0 once done). */
    std::size_t step(std::size_t lineBudget);

    /** Drain the remaining sweep in one call. */
    void runToCompletion();

    bool done() const { return done_; }
    std::size_t dimm() const { return dimm_; }
    /** Next media address the sweep will rebuild. */
    Addr cursor() const { return cursor_; }

  private:
    /** Rebuild one line of the checksum-metadata region. */
    void rebuildMetaLine(Addr g, std::uint8_t *out);
    /** The value an 8 B page-checksum slot must hold. */
    std::uint64_t pageCsumSlotValue(std::size_t slotIdx);
    /** The value an 8 B DAX-CL-checksum slot must hold. */
    std::uint64_t daxClSlotValue(std::size_t slotIdx);

    MemorySystem &mem_;
    DaxFs *fs_;
    std::size_t dimm_ = 0;
    Addr cursor_ = 0;  //!< media address within the DIMM
    Addr dimmBytes_;
    bool done_ = false;
};

}  // namespace tvarak
