/**
 * @file
 * RebuildEngine: online reconstruction of replaced NVM DIMMs.
 *
 * After MemorySystem::replaceDimm() installs a fresh (zeroed) device,
 * the rebuild engine sweeps its media in address order and rewrites
 * every line to the content it must hold, while the workload keeps
 * running against the array:
 *
 *  - data-region lines are reconstructed from cross-DIMM parity +
 *    surviving stripe members (MemorySystem::reconstructLine, which
 *    picks the right redundancy world per line and, for Reed-Solomon
 *    geometries, jointly decodes around every concurrently-dead
 *    member);
 *  - parity lines are recomputed from their stripe's data members;
 *  - checksum metadata is *not* parity protected and is recomputed
 *    from the (degraded-aware) data it covers: DAX-CL-checksum slots
 *    of registered pages get the line checksum, page-checksum slots of
 *    allocated unmapped pages get the page checksum, everything else
 *    returns to its canonical zero.
 *
 * Progress is published through NvmArray::setRebuildWatermark: lines
 * below the watermark are fully redundant again (reads hit the media,
 * writes land), lines above it still take the degraded path. step()
 * rebuilds a bounded number of lines so callers can interleave
 * foreground work, which is exactly how the fault campaign exercises
 * the degraded/rebuilding window.
 *
 * Multi-failure schedules: the engine tracks every DIMM that is in the
 * Rebuilding state and sweeps them lowest-index first. Each step()
 * resynchronizes with the array, so faults injected between steps are
 * honored:
 *
 *  - a tracked DIMM that failed again (state back to Failed) is
 *    dropped — its partial rebuild is gone and it cannot make progress
 *    until replaced;
 *  - a tracked DIMM whose watermark moved *behind* the sweep cursor
 *    was failed and re-replaced between steps: the sweep restarts from
 *    the watermark (Stats::rebuildRestarts) rather than trusting any
 *    line the previous pass wrote — stale media is never republished;
 *  - a Rebuilding DIMM the engine has not seen yet (a second
 *    replacement while the first rebuild is still running) is adopted.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fs/dax_fs.hh"
#include "mem/memory_system.hh"
#include "sim/types.hh"

namespace tvarak {

class RebuildEngine
{
  public:
    /**
     * @param fs  used to tell never-written page-checksum slots from
     *            live ones; may be null, in which case every slot of a
     *            non-registered data page is recomputed (safe, but not
     *            bit-exact for never-allocated pages).
     * @pre at least one DIMM is in the Rebuilding state.
     */
    explicit RebuildEngine(MemorySystem &mem, DaxFs *fs = nullptr);

    /** Rebuild up to @p lineBudget media lines.
     *  @return lines actually rebuilt (0 once done). */
    std::size_t step(std::size_t lineBudget);

    /** Drain the remaining sweep in one call. */
    void runToCompletion();

    /** @return true when no tracked DIMM still needs rebuilding.
     *  A DIMM that failed again and was not yet replaced does not
     *  keep the engine alive: it cannot progress until replaced. */
    bool done() const { return sweeps_.empty(); }
    /** DIMM the sweep is currently restoring (lowest index first). */
    std::size_t dimm() const;
    /** Next media address the sweep will rebuild on dimm(). */
    Addr cursor() const;

  private:
    /** One in-progress DIMM sweep. */
    struct Sweep {
        std::size_t dimm;
        Addr cursor;  //!< media address within the DIMM
    };

    /** Reconcile tracked sweeps with the array's DIMM states. */
    void resync();
    /** Rebuild one line of the checksum-metadata region. */
    void rebuildMetaLine(Addr g, std::uint8_t *out);
    /** The value an 8 B page-checksum slot must hold. */
    std::uint64_t pageCsumSlotValue(std::size_t slotIdx);
    /** The value an 8 B DAX-CL-checksum slot must hold. */
    std::uint64_t daxClSlotValue(std::size_t slotIdx);

    MemorySystem &mem_;
    DaxFs *fs_;
    Addr dimmBytes_;
    std::vector<Sweep> sweeps_;  //!< sorted by dimm index
};

}  // namespace tvarak
