#include "redundancy/rebuild.hh"

#include <cstring>

#include "checksum/checksum.hh"
#include "layout/layout.hh"
#include "redundancy/registry.hh"
#include "sim/log.hh"

namespace tvarak {

RebuildEngine::RebuildEngine(MemorySystem &mem, DaxFs *fs)
    : mem_(mem), fs_(fs), dimmBytes_(mem.config().nvm.dimmBytes)
{
    NvmArray &nvm = mem_.nvmArray();
    bool found = false;
    for (std::size_t d = 0; d < mem_.config().nvm.dimms; d++) {
        if (nvm.dimmState(d) == NvmArray::DimmState::Rebuilding) {
            panic_if(found, "two DIMMs in rebuild");
            dimm_ = d;
            found = true;
        }
    }
    panic_if(!found, "RebuildEngine with no replaced DIMM");
    cursor_ = nvm.rebuildWatermark(dimm_);
}

std::uint64_t
RebuildEngine::pageCsumSlotValue(std::size_t slotIdx)
{
    const Layout &layout = mem_.layout();
    Addr page = layout.dataBase() +
        static_cast<Addr>(slotIdx) * kPageBytes;
    if (page >= layout.end())
        return 0;  // padding slots beyond the trimmed data region
    if (layout.isParityPage(page))
        return 0;  // parity pages carry no page checksum
    if (mem_.designObj().engineCoversDaxData() &&
        mem_.tvarak().isDaxData(page)) {
        // Coverage moved to the DAX-CL-checksums at map time.
        return 0;
    }
    std::size_t vpage = layout.dataPageIndexOf(page);
    if (vpage == 0)
        return 0;  // the superblock page is never checksummed
    if (fs_ != nullptr && vpage >= fs_->vpageCursor())
        return 0;  // never allocated, never written
    std::uint8_t buf[kPageBytes];
    for (std::size_t l = 0; l < kLinesPerPage; l++)
        mem_.rebuildRead(page + l * kLineBytes, buf + l * kLineBytes);
    return pageChecksum(buf);
}

std::uint64_t
RebuildEngine::daxClSlotValue(std::size_t slotIdx)
{
    const Layout &layout = mem_.layout();
    Addr line = layout.dataBase() +
        static_cast<Addr>(slotIdx) * kLineBytes;
    if (line >= layout.end() || layout.isParityPage(line))
        return 0;
    if (!mem_.tvarak().isDaxData(line))
        return 0;  // slots return to zero at dax-unmap
    std::uint8_t buf[kLineBytes];
    mem_.rebuildRead(line, buf);
    return lineChecksum(buf);
}

void
RebuildEngine::rebuildMetaLine(Addr g, std::uint8_t *out)
{
    const Layout &layout = mem_.layout();
    for (std::size_t j = 0; j < kLineBytes / kChecksumBytes; j++) {
        Addr slot_addr = g + j * kChecksumBytes;
        std::uint64_t v = slot_addr < layout.daxClBase()
            ? pageCsumSlotValue(slot_addr / kChecksumBytes)
            : daxClSlotValue((slot_addr - layout.daxClBase()) /
                             kChecksumBytes);
        std::memcpy(out + j * kChecksumBytes, &v, kChecksumBytes);
    }
}

std::size_t
RebuildEngine::step(std::size_t lineBudget)
{
    if (done_)
        return 0;
    NvmArray &nvm = mem_.nvmArray();
    const Layout &layout = mem_.layout();
    std::size_t rebuilt = 0;
    std::uint8_t buf[kLineBytes];
    while (rebuilt < lineBudget && cursor_ < dimmBytes_) {
        Addr g = nvm.globalAddrOf(dimm_, cursor_);
        if (layout.isMetaAddr(g)) {
            // Checksum metadata is not parity protected: recompute it
            // from the (possibly still degraded) data it covers. The
            // recompute reads model software work and are untimed;
            // only the media write is charged.
            rebuildMetaLine(g, buf);
        } else if (layout.isDataAddr(g)) {
            bool parity = layout.isParityPage(g);
            mem_.reconstructLine(g, buf, true);
            nvm.access(g, true, buf, parity);
            mem_.stats().rebuildLines++;
            mem_.refreshCurIfUncached(g, buf);
            nvm.setRebuildWatermark(dimm_, cursor_ + kLineBytes);
            cursor_ += kLineBytes;
            rebuilt++;
            continue;
        } else {
            // Beyond the trimmed layout: the fresh device is already
            // zero; just advance the watermark.
            nvm.setRebuildWatermark(dimm_, cursor_ + kLineBytes);
            cursor_ += kLineBytes;
            continue;
        }
        nvm.access(g, true, buf, true);
        mem_.stats().rebuildLines++;
        mem_.refreshCurIfUncached(g, buf);
        nvm.setRebuildWatermark(dimm_, cursor_ + kLineBytes);
        cursor_ += kLineBytes;
        rebuilt++;
    }
    if (cursor_ >= dimmBytes_) {
        nvm.finishRebuild(dimm_);
        done_ = true;
    }
    return rebuilt;
}

void
RebuildEngine::runToCompletion()
{
    while (!done_)
        step(~std::size_t{0});
}

}  // namespace tvarak
