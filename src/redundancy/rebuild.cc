#include "redundancy/rebuild.hh"

#include <algorithm>
#include <cstring>

#include "checksum/checksum.hh"
#include "layout/layout.hh"
#include "redundancy/registry.hh"
#include "sim/log.hh"

namespace tvarak {

RebuildEngine::RebuildEngine(MemorySystem &mem, DaxFs *fs)
    : mem_(mem), fs_(fs), dimmBytes_(mem.config().nvm.dimmBytes)
{
    NvmArray &nvm = mem_.nvmArray();
    for (std::size_t d = 0; d < mem_.config().nvm.dimms; d++) {
        if (nvm.dimmState(d) == NvmArray::DimmState::Rebuilding)
            sweeps_.push_back({d, nvm.rebuildWatermark(d)});
    }
    panic_if(sweeps_.empty(), "RebuildEngine with no replaced DIMM");
}

std::size_t
RebuildEngine::dimm() const
{
    panic_if(sweeps_.empty(), "dimm() on a finished RebuildEngine");
    return sweeps_.front().dimm;
}

Addr
RebuildEngine::cursor() const
{
    panic_if(sweeps_.empty(), "cursor() on a finished RebuildEngine");
    return sweeps_.front().cursor;
}

void
RebuildEngine::resync()
{
    NvmArray &nvm = mem_.nvmArray();
    // Drop sweeps whose DIMM is no longer rebuilding (it failed again,
    // or some other engine finished it); rewind sweeps whose DIMM was
    // failed *and* re-replaced between steps — the watermark moved
    // behind the cursor, everything the previous pass wrote is gone.
    // (The restart itself is counted by MemorySystem::failDimm, which
    // sees every mid-rebuild fault whether or not an engine observes
    // the fail/replace transition.)
    for (std::size_t i = 0; i < sweeps_.size();) {
        Sweep &s = sweeps_[i];
        if (nvm.dimmState(s.dimm) != NvmArray::DimmState::Rebuilding) {
            sweeps_.erase(sweeps_.begin() +
                          static_cast<std::ptrdiff_t>(i));
            continue;
        }
        Addr watermark = nvm.rebuildWatermark(s.dimm);
        if (watermark < s.cursor)
            s.cursor = watermark;
        i++;
    }
    // Adopt DIMMs replaced after this engine was built.
    for (std::size_t d = 0; d < mem_.config().nvm.dimms; d++) {
        if (nvm.dimmState(d) != NvmArray::DimmState::Rebuilding)
            continue;
        bool tracked = false;
        for (const Sweep &s : sweeps_)
            tracked = tracked || s.dimm == d;
        if (!tracked)
            sweeps_.push_back({d, nvm.rebuildWatermark(d)});
    }
    std::sort(sweeps_.begin(), sweeps_.end(),
              [](const Sweep &a, const Sweep &b) {
                  return a.dimm < b.dimm;
              });
}

std::uint64_t
RebuildEngine::pageCsumSlotValue(std::size_t slotIdx)
{
    const Layout &layout = mem_.layout();
    Addr page = layout.dataBase() +
        static_cast<Addr>(slotIdx) * kPageBytes;
    if (page >= layout.end())
        return 0;  // padding slots beyond the trimmed data region
    if (layout.isParityPage(page))
        return 0;  // parity pages carry no page checksum
    if (mem_.designObj().engineCoversDaxData() &&
        mem_.tvarak().isDaxData(page)) {
        // Coverage moved to the DAX-CL-checksums at map time.
        return 0;
    }
    std::size_t vpage = layout.dataPageIndexOf(page);
    if (vpage == 0)
        return 0;  // the superblock page is never checksummed
    if (fs_ != nullptr && vpage >= fs_->vpageCursor())
        return 0;  // never allocated, never written
    std::uint8_t buf[kPageBytes];
    for (std::size_t l = 0; l < kLinesPerPage; l++)
        mem_.rebuildRead(page + l * kLineBytes, buf + l * kLineBytes);
    return pageChecksum(buf);
}

std::uint64_t
RebuildEngine::daxClSlotValue(std::size_t slotIdx)
{
    const Layout &layout = mem_.layout();
    Addr line = layout.dataBase() +
        static_cast<Addr>(slotIdx) * kLineBytes;
    if (line >= layout.end() || layout.isParityPage(line))
        return 0;
    if (!mem_.tvarak().isDaxData(line))
        return 0;  // slots return to zero at dax-unmap
    std::uint8_t buf[kLineBytes];
    mem_.rebuildRead(line, buf);
    return lineChecksum(buf);
}

void
RebuildEngine::rebuildMetaLine(Addr g, std::uint8_t *out)
{
    const Layout &layout = mem_.layout();
    for (std::size_t j = 0; j < kLineBytes / kChecksumBytes; j++) {
        Addr slot_addr = g + j * kChecksumBytes;
        std::uint64_t v = slot_addr < layout.daxClBase()
            ? pageCsumSlotValue(slot_addr / kChecksumBytes)
            : daxClSlotValue((slot_addr - layout.daxClBase()) /
                             kChecksumBytes);
        std::memcpy(out + j * kChecksumBytes, &v, kChecksumBytes);
    }
}

std::size_t
RebuildEngine::step(std::size_t lineBudget)
{
    resync();
    NvmArray &nvm = mem_.nvmArray();
    const Layout &layout = mem_.layout();
    std::size_t rebuilt = 0;
    std::uint8_t buf[kLineBytes];
    while (rebuilt < lineBudget && !sweeps_.empty()) {
        Sweep &s = sweeps_.front();
        if (s.cursor >= dimmBytes_) {
            nvm.finishRebuild(s.dimm);
            sweeps_.erase(sweeps_.begin());
            continue;
        }
        Addr g = nvm.globalAddrOf(s.dimm, s.cursor);
        if (layout.isMetaAddr(g)) {
            // Checksum metadata is not parity protected: recompute it
            // from the (possibly still degraded) data it covers. The
            // recompute reads model software work and are untimed;
            // only the media write is charged.
            rebuildMetaLine(g, buf);
        } else if (layout.isDataAddr(g)) {
            bool parity = layout.isParityPage(g);
            mem_.reconstructLine(g, buf, true);
            nvm.access(g, true, buf, parity);
            mem_.stats().rebuildLines++;
            mem_.refreshCurIfUncached(g, buf);
            nvm.setRebuildWatermark(s.dimm, s.cursor + kLineBytes);
            s.cursor += kLineBytes;
            rebuilt++;
            continue;
        } else {
            // Beyond the trimmed layout: the fresh device is already
            // zero; just advance the watermark.
            nvm.setRebuildWatermark(s.dimm, s.cursor + kLineBytes);
            s.cursor += kLineBytes;
            continue;
        }
        nvm.access(g, true, buf, true);
        mem_.stats().rebuildLines++;
        mem_.refreshCurIfUncached(g, buf);
        nvm.setRebuildWatermark(s.dimm, s.cursor + kLineBytes);
        s.cursor += kLineBytes;
        rebuilt++;
    }
    if (!sweeps_.empty() && sweeps_.front().cursor >= dimmBytes_) {
        nvm.finishRebuild(sweeps_.front().dimm);
        sweeps_.erase(sweeps_.begin());
    }
    return rebuilt;
}

void
RebuildEngine::runToCompletion()
{
    // Step at least once: done() only reflects the sweeps this engine
    // already tracks, and the first step's resync adopts any DIMM
    // replaced after the previous sweep list emptied.
    do {
        step(~std::size_t{0});
    } while (!done());
}

}  // namespace tvarak
