/**
 * @file
 * RawCoverage: TxB-scheme coverage for applications that access DAX
 * data with raw loads/stores instead of pmemlib transactions (fio,
 * stream).
 *
 * The paper's software schemes "update system-checksums and parity
 * when applications inform the interposing library after completing a
 * write"; for these microbenchmarks the application informs the
 * library after every store. TxB-Object-Csums treats each 64 B line
 * as an object with an 8-byte checksum slot in an app-managed table
 * at the end of the file (Pangolin's per-object space overhead);
 * TxB-Page-Csums uses the file-system page-checksum region.
 */

#pragma once

#include "redundancy/scheme.hh"
#include "trace/sink.hh"

namespace tvarak {

class RawCoverage
{
  public:
    /**
     * @param dataBase   virtual base of the covered data region.
     * @param dataBytes  size of the covered region.
     * @param tableBase  virtual base of the object-checksum table
     *                   (needs dataBytes/8 bytes); only used by
     *                   TxB-Object-Csums, may be 0 otherwise.
     */
    RawCoverage(MemorySystem &mem, RedundancyScheme *scheme,
                Addr dataBase, std::size_t dataBytes, Addr tableBase)
        : mem_(mem),
          scheme_(scheme),
          dataBase_(dataBase),
          dataBytes_(dataBytes),
          tableBase_(tableBase)
    {}

    /** Inform the library that @p len bytes at @p vaddr were written. */
    void
    onWrite(int tid, Addr vaddr, std::size_t len)
    {
        trace::TraceSink *sink = mem_.traceSink();
        bool rec = sink != nullptr && sink->active();
        if (scheme_ == nullptr && !rec)
            return;
        DirtyRange r;
        r.vaddr = vaddr;
        r.len = len;
        r.objBase = lineBase(vaddr);
        r.objLen = kLineBytes;
        if (tableBase_ != 0) {
            r.csumVaddr = tableBase_ +
                (lineNumber(vaddr - dataBase_)) * kChecksumBytes;
        }
        std::vector<DirtyRange> one{r};
        // Recorded even when this design has no scheme (Baseline), so
        // replay under a TxB design can re-run the scheme's work.
        if (rec)
            sink->onCommit(tid, one, true, false);
        if (scheme_ != nullptr) {
            trace::SinkSuspend guard(rec ? sink : nullptr);
            scheme_->onCommit(tid, one);
        }
    }

    /** Bytes of checksum table needed for @p dataBytes of data. */
    static std::size_t
    tableBytes(std::size_t dataBytes)
    {
        return dataBytes / kLineBytes * kChecksumBytes;
    }

  private:
    MemorySystem &mem_;
    RedundancyScheme *scheme_;
    Addr dataBase_;
    std::size_t dataBytes_;
    Addr tableBase_;
};

}  // namespace tvarak

