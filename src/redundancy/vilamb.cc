#include "redundancy/vilamb.hh"

#include "checksum/checksum.hh"
#include "sim/log.hh"

namespace tvarak {

void
VilambAsyncCsums::onCommit(int tid, const std::vector<DirtyRange> &dirty)
{
    // Only the volatile dirty-page set is touched on the commit path —
    // that is the whole point of the asynchronous design. Tracking
    // costs a few cycles of bookkeeping per range.
    for (const DirtyRange &r : dirty) {
        for (Addr p = pageBase(r.vaddr); p < r.vaddr + r.len;
             p += kPageBytes) {
            dirtyPages_.insert(p);
        }
        for (Addr l = lineBase(r.vaddr); l < r.vaddr + r.len;
             l += kLineBytes) {
            dirtyLines_.insert(l);
        }
    }
    mem_.compute(tid, 4 * dirty.size());

    if (++commitsSinceBatch_ >= epochCommits_) {
        processBatch(tid);
        commitsSinceBatch_ = 0;
    }
}

void
VilambAsyncCsums::drain(int tid)
{
    processBatch(tid);
    commitsSinceBatch_ = 0;
}

void
VilambAsyncCsums::processBatch(int tid)
{
    std::uint8_t page_buf[kPageBytes];
    for (Addr page : dirtyPages_) {
        // Page checksum: read the page, checksum, store the entry.
        mem_.read(tid, page, page_buf, kPageBytes);
        mem_.computeChecksum(tid, kPageBytes);
        std::uint64_t csum = pageChecksum(page_buf);
        Addr paddr;
        bool is_nvm;
        panic_if(!mem_.translate(page, paddr, is_nvm) || !is_nvm,
                 "Vilamb batch on a non-NVM page");
        mem_.write64(tid,
                     nvmDirectVaddr(mem_.layout().pageCsumAddr(
                         paddr - kNvmPhysBase)),
                     csum);
    }
    // Parity: per dirty line, by recomputation (no before-images are
    // kept across the epoch, so diff-based updates are impossible).
    for (Addr line : dirtyLines_)
        recomputeParityLine(tid, line);
    dirtyPages_.clear();
    dirtyLines_.clear();
}

}  // namespace tvarak
