#include "redundancy/vilamb.hh"

#include <algorithm>
#include <vector>

#include "checksum/checksum.hh"
#include "sim/log.hh"

namespace tvarak {

namespace {

/** Snapshot an epoch's dirty set in ascending address order. The
 *  tracking sets are hash tables (O(1) inserts on the commit path);
 *  batch processing must not inherit their iteration order, which is
 *  implementation-defined — bit-identical replay (tvarak-lint R10)
 *  needs a deterministic walk. */
std::vector<Addr>
sortedAddrs(const std::unordered_set<Addr> &s)
{
    std::vector<Addr> v(s.begin(), s.end());
    std::sort(v.begin(), v.end());
    return v;
}

}  // namespace

void
VilambAsyncCsums::onCommit(int tid, const std::vector<DirtyRange> &dirty)
{
    // Only the volatile dirty-page set is touched on the commit path —
    // that is the whole point of the asynchronous design. Tracking
    // costs a few cycles of bookkeeping per range.
    for (const DirtyRange &r : dirty) {
        for (Addr p = pageBase(r.vaddr); p < r.vaddr + r.len;
             p += kPageBytes) {
            dirtyPages_.insert(p);
        }
        for (Addr l = lineBase(r.vaddr); l < r.vaddr + r.len;
             l += kLineBytes) {
            dirtyLines_.insert(l);
        }
    }
    mem_.compute(tid, 4 * dirty.size());

    if (++commitsSinceBatch_ >= epochCommits_) {
        processBatch(tid);
        commitsSinceBatch_ = 0;
    }
}

void
VilambAsyncCsums::drain(int tid)
{
    processBatch(tid);
    commitsSinceBatch_ = 0;
}

void
VilambAsyncCsums::processBatch(int tid)
{
    std::uint8_t page_buf[kPageBytes];
    for (Addr page : sortedAddrs(dirtyPages_)) {
        // Page checksum: read the page, checksum, store the entry.
        mem_.read(tid, page, page_buf, kPageBytes);
        mem_.computeChecksum(tid, kPageBytes);
        std::uint64_t csum = pageChecksum(page_buf);
        Addr paddr;
        bool is_nvm;
        panic_if(!mem_.translate(page, paddr, is_nvm) || !is_nvm,
                 "Vilamb batch on a non-NVM page");
        mem_.write64(tid,
                     nvmDirectVaddr(mem_.layout().pageCsumAddr(
                         paddr - kNvmPhysBase)),
                     csum);
    }
    // Parity: per dirty line, by recomputation (no before-images are
    // kept across the epoch, so diff-based updates are impossible).
    for (Addr line : sortedAddrs(dirtyLines_))
        recomputeParityLine(tid, line);
    dirtyPages_.clear();
    dirtyLines_.clear();
}

}  // namespace tvarak
