/**
 * @file
 * The design registry: the single translation unit allowed to switch
 * over DesignKind (lint R8), and home of the concrete Design classes
 * and TVARAK's MemController implementation.
 */

#include "redundancy/registry.hh"

#include <cctype>

#include "core/tvarak.hh"
#include "mem/memory_system.hh"
#include "redundancy/scheme.hh"
#include "redundancy/vilamb.hh"
#include "sim/log.hh"

namespace tvarak {

namespace {

std::string
toLower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

// ------------------------------------------------ TVARAK's controller

/**
 * The hardware contribution of the paper: per-LLC-bank controllers
 * verifying DAX fills, capturing diffs on clean->dirty transitions
 * and updating checksums + parity at writeback. All heavy lifting
 * lives in TvarakEngine; this adapter scopes it to DAX lines and
 * applies the timing contract (verification cycles land on the
 * demand path only under syncVerification).
 */
class TvarakMemController final : public MemController
{
  public:
    explicit TvarakMemController(MemorySystem &mem)
        : engine_(mem.tvarak()),
          sync_(mem.config().tvarak.syncVerification)
    {}

    Cycles fillLine(std::size_t bank, Addr nvmAddr,
                    std::uint8_t *media) override
    {
        if (!engine_.isDaxData(nvmAddr))
            return 0;
        Cycles verify = engine_.verifyFill(bank, nvmAddr, media);
        return sync_ ? verify : 0;
    }

    std::optional<Addr> captureDirty(std::size_t bank,
                                     Addr nvmAddr) override
    {
        if (!engine_.isDaxData(nvmAddr))
            return std::nullopt;
        return engine_.captureDiff(bank, nvmAddr);
    }

    void writeback(std::size_t bank, Addr nvmAddr,
                   const std::uint8_t *newData,
                   bool forcedByDiffEviction) override
    {
        if (!engine_.isDaxData(nvmAddr))
            return;
        TvarakEngine::DiffSource source;
        if (forcedByDiffEviction)
            source = TvarakEngine::DiffSource::EvictedDiff;
        else if (engine_.hasDiff(bank, nvmAddr))
            source = TvarakEngine::DiffSource::Stored;
        else
            source = TvarakEngine::DiffSource::None;
        engine_.updateRedundancy(bank, nvmAddr, newData, source);
    }

    void dropVictim(std::size_t bank, Addr nvmAddr) override
    {
        engine_.dropDiff(bank, nvmAddr);
    }

    Cycles verifyReconstructed(std::size_t bank, Addr nvmAddr,
                               std::uint8_t *media) override
    {
        if (!engine_.isDaxData(nvmAddr))
            return 0;
        return engine_.verifyReconstructed(bank, nvmAddr, media);
    }

    bool atRestLine(Addr nvmAddr) override
    {
        return engine_.isDaxData(nvmAddr);
    }

  private:
    TvarakEngine &engine_;
    bool sync_;
};

// ------------------------------------------------- concrete designs

class BaselineDesign final : public Design
{
  public:
    BaselineDesign() : Design(DesignKind::Baseline, "baseline", "Baseline")
    {}

    // No redundancy: nothing breaks when a write lands unprotected.
    bool absorbsWritesWhileDegraded() const override { return true; }
};

class TvarakDesign : public Design
{
  public:
    TvarakDesign() : TvarakDesign("tvarak", "Tvarak") {}

    std::size_t reservedLlcWays(const SimConfig &cfg) const override
    {
        std::size_t ways = 0;
        if (cfg.tvarak.useRedundancyCaching)
            ways += cfg.tvarak.redundancyWays;
        if (cfg.tvarak.useDataDiffs)
            ways += cfg.tvarak.diffWays;
        return ways;
    }

    std::unique_ptr<MemController>
    makeController(MemorySystem &mem) const override
    {
        return std::make_unique<TvarakMemController>(mem);
    }

    bool engineCoversDaxData() const override { return true; }
    bool coversMappedFiles() const override { return true; }
    bool absorbsWritesWhileDegraded() const override { return true; }
    bool maintainsMappedParity() const override { return true; }
    bool detectsTransientReads() const override { return true; }
    FaultDetection faultDetection() const override
    {
        return FaultDetection::FillVerify;
    }

  protected:
    TvarakDesign(std::string cliName, std::string displayName)
        : Design(DesignKind::Tvarak, std::move(cliName),
                 std::move(displayName))
    {}
};

/** A Fig-9 ablation point: full TVARAK machinery with the cumulative
 *  optimization switches pinned by adjustConfig(). */
class TvarakVariantDesign final : public TvarakDesign
{
  public:
    TvarakVariantDesign(std::string cliName, std::string displayName,
                        bool daxClChecksums, bool redundancyCaching,
                        bool dataDiffs)
        : TvarakDesign(std::move(cliName), std::move(displayName)),
          daxClChecksums_(daxClChecksums),
          redundancyCaching_(redundancyCaching), dataDiffs_(dataDiffs)
    {}

    void adjustConfig(SimConfig &cfg) const override
    {
        cfg.tvarak.useDaxClChecksums = daxClChecksums_;
        cfg.tvarak.useRedundancyCaching = redundancyCaching_;
        cfg.tvarak.useDataDiffs = dataDiffs_;
    }

  private:
    bool daxClChecksums_;
    bool redundancyCaching_;
    bool dataDiffs_;
};

/**
 * A Reed-Solomon n+k geometry: full TVARAK machinery over a GF(2^8)
 * erasure code. adjustConfig pins the array shape the way the Fig-9
 * variants pin the ablation switches — the design owns its geometry,
 * so every harness (bench, trace, fault, service) gets a consistent
 * n+k array just by naming the design.
 */
class TvarakRsDesign final : public TvarakDesign
{
  public:
    TvarakRsDesign(std::string cliName, std::string displayName,
                   std::size_t dimms, std::size_t parityDimms)
        : TvarakDesign(std::move(cliName), std::move(displayName)),
          dimms_(dimms), parityDimms_(parityDimms)
    {}

    void adjustConfig(SimConfig &cfg) const override
    {
        cfg.nvm.dimms = dimms_;
        cfg.nvm.parityDimms = parityDimms_;
    }

    std::size_t survivableFailures() const override
    {
        return parityDimms_;
    }

  private:
    std::size_t dimms_;
    std::size_t parityDimms_;
};

class TxBObjectDesign final : public Design
{
  public:
    TxBObjectDesign()
        : Design(DesignKind::TxBObjectCsums, "txb-object-csums",
                 "TxB-Object-Csums")
    {}

    std::unique_ptr<RedundancyScheme>
    makeScheme(MemorySystem &mem) const override
    {
        return std::make_unique<TxBObjectCsums>(mem);
    }

    bool maintainsMappedParity() const override { return true; }
    FaultDetection faultDetection() const override
    {
        return FaultDetection::ObjectSweep;
    }
};

class TxBPageDesign final : public Design
{
  public:
    TxBPageDesign()
        : Design(DesignKind::TxBPageCsums, "txb-page-csums",
                 "TxB-Page-Csums")
    {}

    std::unique_ptr<RedundancyScheme>
    makeScheme(MemorySystem &mem) const override
    {
        return std::make_unique<TxBPageCsums>(mem);
    }

    bool coversMappedFiles() const override { return true; }
    bool maintainsMappedParity() const override { return true; }
    FaultDetection faultDetection() const override
    {
        return FaultDetection::PageScrub;
    }
};

class VilambDesign final : public Design
{
  public:
    explicit VilambDesign(std::size_t epochCommits = 64)
        : Design(DesignKind::Vilamb, "vilamb", "Vilamb"),
          epochCommits_(epochCommits)
    {}

    std::unique_ptr<RedundancyScheme>
    makeScheme(MemorySystem &mem) const override
    {
        return std::make_unique<VilambAsyncCsums>(mem, epochCommits_);
    }

    // Same machine model and coverage surface as TxB-Page-Csums; the
    // difference is *when* the page work runs (epoch batches), which
    // is why campaigns must drain() before scrubbing.
    bool coversMappedFiles() const override { return true; }
    bool maintainsMappedParity() const override { return true; }
    FaultDetection faultDetection() const override
    {
        return FaultDetection::PageScrub;
    }

  private:
    std::size_t epochCommits_;
};

// ------------------------------------------------------ the registry

std::vector<const Design *> &
registryVec()
{
    static std::vector<const Design *> designs;
    return designs;
}

void
registerLocked(const Design *design)
{
    fatal_if(design == nullptr, "registerDesign(nullptr)");
    std::string cli = toLower(design->cliName());
    std::string display = toLower(design->displayName());
    for (const Design *d : registryVec()) {
        fatal_if(toLower(d->cliName()) == cli ||
                     toLower(d->displayName()) == display,
                 "duplicate design registration: '%s' collides with "
                 "registered design '%s'",
                 design->cliName().c_str(), d->cliName().c_str());
    }
    registryVec().push_back(design);
}

/** Register the built-ins exactly once, in stable paper-then-extras
 *  order, before any lookup. */
void
ensureBuiltins()
{
    static const bool once = [] {
        static const BaselineDesign baseline;
        static const TvarakDesign tvarak;
        static const TxBObjectDesign txbObject;
        static const TxBPageDesign txbPage;
        static const VilambDesign vilamb;
        // Fig 9 cumulative ablation points (naive -> +DAX-CL-csums ->
        // +red-caching; adding +data-diffs is full "tvarak").
        static const TvarakVariantDesign naive(
            "tvarak-naive", "Tvarak-Naive", false, false, false);
        static const TvarakVariantDesign noRedCache(
            "tvarak-no-red-cache", "Tvarak-No-Red-Cache", true, false,
            false);
        static const TvarakVariantDesign noDiffs(
            "tvarak-no-diffs", "Tvarak-No-Diffs", true, true, false);
        // Reed-Solomon n+k geometries (double-failure survivable).
        static const TvarakRsDesign rs42("tvarak-rs4+2", "Tvarak-RS4+2",
                                         6, 2);
        static const TvarakRsDesign rs62("tvarak-rs6+2", "Tvarak-RS6+2",
                                         8, 2);
        registerLocked(&baseline);
        registerLocked(&tvarak);
        registerLocked(&txbObject);
        registerLocked(&txbPage);
        registerLocked(&vilamb);
        registerLocked(&naive);
        registerLocked(&noRedCache);
        registerLocked(&noDiffs);
        registerLocked(&rs42);
        registerLocked(&rs62);
        return true;
    }();
    (void)once;
}

}  // namespace

std::unique_ptr<MemController>
Design::makeController(MemorySystem &mem) const
{
    (void)mem;
    return std::make_unique<MemController>();
}

std::unique_ptr<RedundancyScheme>
Design::makeScheme(MemorySystem &mem) const
{
    (void)mem;
    return nullptr;
}

void
registerDesign(const Design *design)
{
    ensureBuiltins();
    registerLocked(design);
}

const std::vector<const Design *> &
allRegisteredDesigns()
{
    ensureBuiltins();
    return registryVec();
}

std::vector<const Design *>
paperDesigns()
{
    // lint:allow(R8) — registry-internal enumeration of the paper set.
    const DesignKind paper[] = {
        DesignKind::Baseline,
        DesignKind::Tvarak,
        DesignKind::TxBObjectCsums,
        DesignKind::TxBPageCsums,
    };
    std::vector<const Design *> out;
    for (DesignKind kind : paper)
        out.push_back(&designOf(kind));
    return out;
}

const Design *
findDesign(const std::string &name)
{
    ensureBuiltins();
    std::string key = toLower(name);
    for (const Design *d : allRegisteredDesigns()) {
        if (toLower(d->cliName()) == key ||
            toLower(d->displayName()) == key)
            return d;
    }
    return nullptr;
}

const Design &
designOf(DesignKind kind)
{
    for (const Design *d : allRegisteredDesigns())
        if (d->kind() == kind)
            return *d;
    fatal("designOf: invalid DesignKind %d", static_cast<int>(kind));
}

bool
isRegisteredKind(DesignKind kind)
{
    for (const Design *d : allRegisteredDesigns())
        if (d->kind() == kind)
            return true;
    return false;
}

std::string
registeredNameList()
{
    std::string out;
    for (const Design *d : allRegisteredDesigns()) {
        if (!out.empty())
            out += ", ";
        out += d->cliName();
    }
    return out;
}

const char *
designName(DesignKind kind)
{
    for (const Design *d : allRegisteredDesigns())
        if (d->kind() == kind)
            return d->displayName();
    return "?";
}

std::unique_ptr<RedundancyScheme>
makeScheme(DesignKind design, MemorySystem &mem)
{
    return designOf(design).makeScheme(mem);
}

}  // namespace tvarak
