/**
 * @file
 * The pluggable redundancy-design layer.
 *
 * A `Design` owns one redundancy design's complete behaviour across
 * the simulator: the hardware-side `MemController` hook invoked by
 * MemorySystem at the LLC/NVM boundary (fill verification, writeback
 * redundancy update, diff capture, victim handling, degraded-read
 * participation), the software-side `RedundancyScheme` run at
 * transaction commit, the LLC way-partition reservation, and the
 * policy queries that DaxFs, the scrubber and the fault tool key off.
 *
 * Designs live in a string-keyed registry that config, CLI, bench,
 * trace and fault tooling all resolve through: `--design vilamb`
 * works everywhere, and the Fig-9 ablation points are registered
 * `tvarak-*` variants rather than loose SimConfig switches.
 *
 * This translation unit pair is the only place allowed to switch or
 * compare on `DesignKind` (lint rule R8): everything else dispatches
 * through the Design object.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/config.hh"
#include "sim/types.hh"

namespace tvarak {

class MemorySystem;
class RedundancyScheme;

/**
 * Hardware hook a Design installs at the LLC/NVM boundary. The base
 * class is a concrete null object — every hook is a charge-free no-op,
 * which is exactly the memory-controller behaviour of the designs
 * without controller hardware (Baseline and the software schemes).
 *
 * All addresses are NVM-global line addresses (media offsets).
 */
class MemController
{
  public:
    virtual ~MemController() = default;

    /**
     * A line was just read from NVM media into the LLC. May verify
     * and repair @p media in place.
     * @return demand-path cycles to charge the loading thread
     *         (verification overlapped with data delivery returns 0).
     */
    virtual Cycles fillLine(std::size_t bank, Addr nvmAddr,
                            std::uint8_t *media)
    {
        (void)bank;
        (void)nvmAddr;
        (void)media;
        return 0;
    }

    /**
     * An LLC line transitioned clean->dirty (or took new dirty data).
     * @return the address of another line whose captured diff was
     *         evicted to make room — the caller must write that line
     *         back (forced writeback) and mark it clean.
     */
    virtual std::optional<Addr> captureDirty(std::size_t bank, Addr nvmAddr)
    {
        (void)bank;
        (void)nvmAddr;
        return std::nullopt;
    }

    /**
     * A dirty line is being written back from the LLC to NVM media;
     * @p newData is the 64 B about to land. @p forcedByDiffEviction is
     * true when the writeback was forced by captureDirty() evicting
     * this line's diff (the diff value is handed over in that case).
     */
    virtual void writeback(std::size_t bank, Addr nvmAddr,
                           const std::uint8_t *newData,
                           bool forcedByDiffEviction)
    {
        (void)bank;
        (void)nvmAddr;
        (void)newData;
        (void)forcedByDiffEviction;
    }

    /** A (clean) LLC line was evicted; drop any per-line state. */
    virtual void dropVictim(std::size_t bank, Addr nvmAddr)
    {
        (void)bank;
        (void)nvmAddr;
    }

    /**
     * A degraded read reconstructed @p media for @p nvmAddr; verify it
     * if the design can. @return demand-path cycles.
     */
    virtual Cycles verifyReconstructed(std::size_t bank, Addr nvmAddr,
                                       std::uint8_t *media)
    {
        (void)bank;
        (void)nvmAddr;
        (void)media;
        return 0;
    }

    /**
     * True iff the design maintains @p nvmAddr's redundancy in the
     * at-rest (media) world, so stripe members for reconstruction must
     * be read from media rather than the current-value store.
     */
    virtual bool atRestLine(Addr nvmAddr)
    {
        (void)nvmAddr;
        return false;
    }
};

/** How a design detects at-rest corruption (keys the fault tool's
 *  detect/repair strategy). */
enum class FaultDetection {
    None,        //!< no detection: corruption is expected to be silent
    FillVerify,  //!< per-fill checksum verification (TVARAK)
    PageScrub,   //!< page-checksum scrubbing (TxB-Page, Vilamb)
    ObjectSweep, //!< object-checksum sweep + parity scrub (TxB-Object)
};

/**
 * One redundancy design: the unified behaviour bundle behind a
 * registry name. Stateless and immutable — a single instance serves
 * every machine; per-machine state lives in the vended MemController
 * and RedundancyScheme objects.
 */
class Design
{
  public:
    virtual ~Design() = default;

    Design(const Design &) = delete;
    Design &operator=(const Design &) = delete;

    /** Stable serialization identity (shared by design variants). */
    DesignKind kind() const { return kind_; }

    /** Registry key: lowercase CLI spelling, e.g. "txb-page-csums". */
    const std::string &cliName() const { return cliName_; }

    /** Report/display spelling, e.g. "TxB-Page-Csums". */
    const char *displayName() const { return displayName_.c_str(); }

    /**
     * Force design-owned SimConfig fields (applied to MemorySystem's
     * private config copy before anything reads it). The Fig-9
     * variants pin the deprecated TvarakParams::use* switches here;
     * the plain designs leave the config untouched so traces that
     * serialized non-default switch values replay identically.
     */
    virtual void adjustConfig(SimConfig &cfg) const { (void)cfg; }

    /** LLC ways per bank the design's hardware reserves (evaluated
     *  after adjustConfig). */
    virtual std::size_t reservedLlcWays(const SimConfig &cfg) const
    {
        (void)cfg;
        return 0;
    }

    /** Hardware-side hook; the default is the null controller. */
    virtual std::unique_ptr<MemController>
    makeController(MemorySystem &mem) const;

    /** Software-side scheme; nullptr = no transaction-commit work. */
    virtual std::unique_ptr<RedundancyScheme>
    makeScheme(MemorySystem &mem) const;

    /** @name Policy queries (filesystem / scrubber / fault tool) */
    /**@{*/
    /** Redundancy of DAX-mapped data lives in the engine's at-rest
     *  world (cache-line checksums + media parity). */
    virtual bool engineCoversDaxData() const { return false; }
    /** Mapped files keep redundancy coverage, so the scrubber may
     *  verify/repair them while mapped. */
    virtual bool coversMappedFiles() const { return false; }
    /** Writes proceed while a DIMM is down (redundancy updates are
     *  dropped or unnecessary); false = the campaign pauses writes. */
    virtual bool absorbsWritesWhileDegraded() const { return false; }
    /** Cross-DIMM parity is maintained for mapped data, so DIMM loss
     *  is survivable. */
    virtual bool maintainsMappedParity() const { return false; }
    /**
     * Concurrent whole-DIMM losses the design's redundancy can
     * reconstruct through without data loss. 0 for designs with no
     * cross-DIMM parity, 1 for the single-XOR geometries, k for the
     * Reed-Solomon n+k designs. Fault schedules that fail more DIMMs
     * at once than this must expect *detected* loss, never silence.
     */
    virtual std::size_t survivableFailures() const
    {
        return maintainsMappedParity() ? 1 : 0;
    }
    /** Corruptions are caught on the read path (transient misdirected
     *  reads are detectable events, not silent). */
    virtual bool detectsTransientReads() const { return false; }
    /** Detect/repair strategy for at-rest corruption. */
    virtual FaultDetection faultDetection() const
    {
        return FaultDetection::None;
    }
    /**@}*/

  protected:
    Design(DesignKind kind, std::string cliName, std::string displayName)
        : kind_(kind), cliName_(std::move(cliName)),
          displayName_(std::move(displayName))
    {}

  private:
    DesignKind kind_;
    std::string cliName_;
    std::string displayName_;
};

/** @name The design registry */
/**@{*/

/**
 * Add @p design to the registry (appended: iteration order is
 * registration order). Fatal if the name (cliName or displayName,
 * case-insensitive) collides with a registered design. The built-in
 * designs are registered on first registry access, in this order:
 * baseline, tvarak, txb-object-csums, txb-page-csums, vilamb,
 * tvarak-naive, tvarak-no-red-cache, tvarak-no-diffs, tvarak-rs4+2,
 * tvarak-rs6+2.
 */
void registerDesign(const Design *design);

/** Every registered design, in stable registration order. */
const std::vector<const Design *> &allRegisteredDesigns();

/** The four paper designs, in paper order (Baseline, Tvarak,
 *  TxB-Object-Csums, TxB-Page-Csums). */
std::vector<const Design *> paperDesigns();

/** Case-insensitive lookup by cliName or displayName; nullptr if
 *  unknown. */
const Design *findDesign(const std::string &name);

/** The canonical design for @p kind (the first registered with it —
 *  Fig-9 variants share DesignKind::Tvarak and are never returned).
 *  Fatal on an invalid enum value. */
const Design &designOf(DesignKind kind);

/** True iff @p kind names a registered design (trace-header check). */
bool isRegisteredKind(DesignKind kind);

/** Comma-separated cliNames of every registered design (CLI errors). */
std::string registeredNameList();

/**@}*/

}  // namespace tvarak
